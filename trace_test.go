package fscoherence

import (
	"bytes"
	"encoding/json"
	"testing"

	"fscoherence/internal/obs"
)

// chromeEvent mirrors the fields of the Chrome trace-event format a viewer
// requires; unknown fields are rejected so schema drift is caught.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   uint64          `json:"ts"`
	Dur  uint64          `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s"`
	Cat  string          `json:"cat"`
	Args json.RawMessage `json:"args"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// traceLR runs LR under FSLite on a jobs-wide engine (alongside the two
// other protocol cells, as fsrun -compare would) with a fresh observability
// attachment, and returns the exported Chrome trace JSON.
func traceLR(t *testing.T, jobs int) []byte {
	t.Helper()
	o := obs.New(obs.Config{})
	eng := NewRunner(jobs)
	eng.Submit("LR", Options{Protocol: Baseline, Scale: 0.5})
	eng.Submit("LR", Options{Protocol: FSDetect, Scale: 0.5})
	f := eng.Submit("LR", Options{Protocol: FSLite, Scale: 0.5, Obs: o})
	if _, err := f.Result(); err != nil {
		t.Fatal(err)
	}
	eng.Wait()
	if o.Tracer.Dropped() > 0 {
		t.Logf("ring buffer dropped %d events (capacity %d)", o.Tracer.Dropped(), obs.DefaultTraceCapacity)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, o.Tracer.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeTraceAcceptance is the PR's acceptance criterion: tracing LR
// under FSLite emits valid Chrome trace-event JSON (parseable, with the
// ph/ts/pid/tid fields a viewer requires) that contains at least one PRV
// episode begin/terminate pair, and the bytes are identical whether the
// sweep ran on 1 or 8 workers.
func TestChromeTraceAcceptance(t *testing.T) {
	blob := traceLR(t, 1)

	var tr chromeTrace
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace contains no events")
	}

	begins := map[string]bool{} // prv.begin addresses
	pairs := 0
	for i, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Errorf("event %d: unexpected metadata %q", i, e.Name)
			}
			continue
		case "i":
			if e.S != "t" {
				t.Errorf("event %d (%s): instant scope %q, want \"t\"", i, e.Name, e.S)
			}
		case "X":
		default:
			t.Errorf("event %d (%s): unexpected phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			t.Errorf("event %d: empty name", i)
		}
		if e.Pid < 0 || e.Pid > 2 {
			t.Errorf("event %d (%s): pid %d outside the cores/llc/sim processes", i, e.Name, e.Pid)
		}
		if e.Tid < 0 {
			t.Errorf("event %d (%s): negative tid %d", i, e.Name, e.Tid)
		}

		var args map[string]any
		if err := json.Unmarshal(e.Args, &args); err != nil {
			t.Fatalf("event %d (%s): bad args: %v", i, e.Name, err)
		}
		addr, _ := args["addr"].(string)
		switch e.Name {
		case "prv.begin":
			begins[addr] = true
		case "prv.terminate":
			if begins[addr] {
				pairs++
			}
		}
	}
	if pairs == 0 {
		t.Errorf("trace has no PRV begin/terminate pair (begins seen: %d)", len(begins))
	}

	if blob8 := traceLR(t, 8); !bytes.Equal(blob, blob8) {
		t.Error("trace bytes differ between -j 1 and -j 8 sweeps")
	}
}

// traceMesh runs RC under FSLite on a 16-core mesh machine with the given
// engine and renders the tracer's event stream in the golden single-line
// format.
func traceMesh(t *testing.T, engine string) ([]obs.Event, string) {
	t.Helper()
	o := obs.New(obs.Config{})
	_, err := Run("RC", Options{
		Protocol: FSLite, Scale: 0.2, Engine: engine,
		Cores: 16, Topology: "mesh", Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := o.Tracer.Events()
	var b bytes.Buffer
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return events, b.String()
}

// TestMeshTraceEngineAttribution is the golden-trace attribution check on a
// big-machine configuration: on a 16-core mesh the tracer must produce a
// byte-identical event stream under every engine (skip, the cycle-stepped
// naive reference, and parallel — which conservatively falls back to skip
// when observability is attached), and every net event's (core, slice)
// track assignment must agree with the src/dst node pair it carries.
func TestMeshTraceEngineAttribution(t *testing.T) {
	events, golden := traceMesh(t, "skip")
	if len(events) == 0 {
		t.Fatal("mesh trace contains no events")
	}
	for _, engine := range []string{"naive", "parallel"} {
		if _, g := traceMesh(t, engine); g != golden {
			t.Errorf("%s engine trace differs from the skip golden trace", engine)
		}
	}

	// Attribution: a net.send is tracked at its source node, a net.recv at
	// its destination; L1 nodes 0..cores-1 map to core tracks, LLC nodes
	// cores..cores+slices-1 to slice tracks.
	const cores = 16
	coreTracked, sliceTracked := 0, 0
	for i, e := range events {
		if e.Kind != obs.KindNetSend && e.Kind != obs.KindNetRecv {
			continue
		}
		src, dst := e.SrcDst()
		node := src
		if e.Kind == obs.KindNetRecv {
			node = dst
		}
		if node < cores {
			coreTracked++
			if int(e.Core) != node || e.Slice != -1 {
				t.Fatalf("event %d (%s): node %d attributed to core=%d slice=%d, want core=%d slice=-1",
					i, e.Kind, node, e.Core, e.Slice, node)
			}
		} else {
			sliceTracked++
			if int(e.Slice) != node-cores || e.Core != -1 {
				t.Fatalf("event %d (%s): node %d attributed to core=%d slice=%d, want core=-1 slice=%d",
					i, e.Kind, node, e.Core, e.Slice, node-cores)
			}
		}
	}
	if coreTracked == 0 || sliceTracked == 0 {
		t.Errorf("attribution check exercised %d core-tracked and %d slice-tracked net events, want both > 0",
			coreTracked, sliceTracked)
	}
}
