package fscoherence

import (
	"bytes"
	"encoding/json"
	"testing"

	"fscoherence/internal/obs"
)

// chromeEvent mirrors the fields of the Chrome trace-event format a viewer
// requires; unknown fields are rejected so schema drift is caught.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   uint64          `json:"ts"`
	Dur  uint64          `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s"`
	Cat  string          `json:"cat"`
	Args json.RawMessage `json:"args"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// traceLR runs LR under FSLite on a jobs-wide engine (alongside the two
// other protocol cells, as fsrun -compare would) with a fresh observability
// attachment, and returns the exported Chrome trace JSON.
func traceLR(t *testing.T, jobs int) []byte {
	t.Helper()
	o := obs.New(obs.Config{})
	eng := NewRunner(jobs)
	eng.Submit("LR", Options{Protocol: Baseline, Scale: 0.5})
	eng.Submit("LR", Options{Protocol: FSDetect, Scale: 0.5})
	f := eng.Submit("LR", Options{Protocol: FSLite, Scale: 0.5, Obs: o})
	if _, err := f.Result(); err != nil {
		t.Fatal(err)
	}
	eng.Wait()
	if o.Tracer.Dropped() > 0 {
		t.Logf("ring buffer dropped %d events (capacity %d)", o.Tracer.Dropped(), obs.DefaultTraceCapacity)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, o.Tracer.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeTraceAcceptance is the PR's acceptance criterion: tracing LR
// under FSLite emits valid Chrome trace-event JSON (parseable, with the
// ph/ts/pid/tid fields a viewer requires) that contains at least one PRV
// episode begin/terminate pair, and the bytes are identical whether the
// sweep ran on 1 or 8 workers.
func TestChromeTraceAcceptance(t *testing.T) {
	blob := traceLR(t, 1)

	var tr chromeTrace
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace contains no events")
	}

	begins := map[string]bool{} // prv.begin addresses
	pairs := 0
	for i, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Errorf("event %d: unexpected metadata %q", i, e.Name)
			}
			continue
		case "i":
			if e.S != "t" {
				t.Errorf("event %d (%s): instant scope %q, want \"t\"", i, e.Name, e.S)
			}
		case "X":
		default:
			t.Errorf("event %d (%s): unexpected phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			t.Errorf("event %d: empty name", i)
		}
		if e.Pid < 0 || e.Pid > 2 {
			t.Errorf("event %d (%s): pid %d outside the cores/llc/sim processes", i, e.Name, e.Pid)
		}
		if e.Tid < 0 {
			t.Errorf("event %d (%s): negative tid %d", i, e.Name, e.Tid)
		}

		var args map[string]any
		if err := json.Unmarshal(e.Args, &args); err != nil {
			t.Fatalf("event %d (%s): bad args: %v", i, e.Name, err)
		}
		addr, _ := args["addr"].(string)
		switch e.Name {
		case "prv.begin":
			begins[addr] = true
		case "prv.terminate":
			if begins[addr] {
				pairs++
			}
		}
	}
	if pairs == 0 {
		t.Errorf("trace has no PRV begin/terminate pair (begins seen: %d)", len(begins))
	}

	if blob8 := traceLR(t, 8); !bytes.Equal(blob, blob8) {
		t.Error("trace bytes differ between -j 1 and -j 8 sweeps")
	}
}
