package fscoherence

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"fscoherence/internal/checkpoint"
	"fscoherence/internal/forensics"
	"fscoherence/internal/sim"
	"fscoherence/internal/workload"
)

// Crash-resilient runs: RunControlled wraps Run with deterministic
// checkpoint/restore. Checkpoints capture the complete architectural state
// of the drained machine (see internal/sim and internal/checkpoint); a
// resumed run continues byte-identically to an uninterrupted run with the
// same checkpoint cadence. Corrupt, truncated, version-skewed or
// wrong-configuration checkpoints are detected by the envelope's CRC,
// format version and identity hash, and degrade gracefully to a cold run
// with a warning in Result.Warnings — never a panic, never silent reuse of
// bad state.
//
// RunControl is deliberately separate from Options: Options is the memo key
// and seed source for sweeps (runner.Seed hashes its Go-syntax form), so
// checkpoint knobs must not change cell identity — the same cell resumed
// from a checkpoint IS the same cell.

// DefaultCheckpointEvery is the checkpoint cadence (committed L1D accesses
// between drain boundaries) used when checkpointing is requested without an
// explicit cadence.
const DefaultCheckpointEvery = 1_000_000

// RunControl configures crash-resilience for one run. The zero value runs
// exactly like Run.
type RunControl struct {
	// CheckpointPath, when set, receives a checkpoint at every boundary
	// (atomically: temp file + fsync + rename, each write replacing the
	// last).
	CheckpointPath string

	// CheckpointEvery is the boundary cadence in committed L1D accesses
	// (parse human-readable counts with sample.ParseCount). 0 picks
	// DefaultCheckpointEvery when checkpointing is otherwise enabled. The
	// cadence is part of the run's semantics: boundary drains perturb
	// timing, so byte-equality holds between runs of the same cadence
	// (sampled runs piggyback on their existing window boundaries and are
	// cadence-insensitive).
	CheckpointEvery uint64

	// Resume names a checkpoint file to restore before running. A missing,
	// corrupt, version-skewed or wrong-identity file degrades to a cold run
	// with a warning.
	Resume string

	// CacheDir, when set, is the warm-state cache: checkpoints are also
	// written to CacheDir/<bench>-<identity>.ckpt, and a run finding a valid
	// file under its own identity resumes from it automatically (explicit
	// Resume takes precedence).
	CacheDir string

	// Cancel, when non-nil, is polled by the simulator roughly once per
	// loop iteration; returning true aborts the run (the supervision
	// watchdog's cooperative kill).
	Cancel func() bool

	// OnCheckpoint, when non-nil, runs after the n-th successful checkpoint
	// write (n counts from 1). Returning an error aborts the run — tests
	// use it to crash at an exact boundary; supervisors use it to journal
	// checkpoint progress.
	OnCheckpoint func(n int) error
}

// enabled reports whether any crash-resilience feature is requested.
func (c RunControl) enabled() bool {
	return c.CheckpointPath != "" || c.CheckpointEvery > 0 || c.Resume != "" || c.CacheDir != ""
}

// CheckpointCompatible reports whether a cell's options support
// checkpoint/restore (mirrors validateCheckpointable; sweeps use it to skip
// checkpointing on incompatible cells instead of failing them).
func CheckpointCompatible(opt Options) bool {
	return validateCheckpointable(opt) == nil
}

// validateCheckpointable rejects options whose state cannot be fully
// serialized. The engine is not checked here: naive/parallel are
// byte-identical to skip and fall back with a warning instead.
func validateCheckpointable(opt Options) error {
	switch {
	case opt.OOO:
		return fmt.Errorf("checkpointing supports only the in-order core model")
	case opt.Verify:
		return fmt.Errorf("checkpointing is incompatible with -verify: oracle state is not serialized")
	case opt.Obs != nil:
		return fmt.Errorf("checkpointing is incompatible with observability attachments")
	case opt.Forensics != nil:
		return fmt.Errorf("checkpointing is incompatible with forensics recording")
	case opt.L2KB > 0:
		return fmt.Errorf("checkpointing requires the two-level hierarchy (drop -l2kb)")
	case opt.NonInclusiveLLC:
		return fmt.Errorf("checkpointing requires the inclusive LLC (drop -noninclusive)")
	case opt.Protocol == Hybrid:
		return fmt.Errorf("checkpointing does not support the hybrid backend (update-push state is not serialized)")
	}
	return nil
}

// ckptIdentity is the hashed identity of a checkpointed execution: the
// benchmark, the normalized options, the checkpoint cadence (cadence defines
// the execution) and the envelope format version. Everything that changes
// the machine's byte-exact trajectory is in here; everything that does not
// (engine choice, shard count) is normalized out.
type ckptIdentity struct {
	Bench   string
	Opt     Options
	Every   uint64
	Version uint32
}

// checkpointIdentity computes the identity hash stored in (and demanded
// from) every checkpoint envelope for this run.
func checkpointIdentity(bench string, opt Options, every uint64) uint64 {
	opt.Engine = "skip" // all engines are byte-identical; checkpointed runs use skip
	opt.Shards = 0
	opt.SwitchDispatch = false // dispatch paths are byte-identical
	if opt.Topology == "flat" {
		opt.Topology = "" // one identity for the two spellings of the default
	}
	if opt.Scale == 0 {
		opt.Scale = 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", ckptIdentity{Bench: bench, Opt: opt, Every: every, Version: checkpoint.Version})
	return h.Sum64()
}

// cacheFilePath names a cell's warm-state cache file: the benchmark for
// humans, the identity hash for the machine (a cadence or options change
// changes the name, so stale state is never even opened).
func cacheFilePath(dir, bench string, identity uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.ckpt", bench, identity))
}

// loadResume resolves and loads the resume state: the explicit Resume path
// first, else the warm-state cache file when present. Every failure mode —
// missing file, torn write, CRC mismatch, version skew, identity mismatch,
// undecodable payload — returns a nil state plus a warning; the caller runs
// cold.
func loadResume(ctl RunControl, cacheFile string, identity uint64) (*sim.MachineState, []string) {
	path := ctl.Resume
	if path == "" && cacheFile != "" {
		if _, err := os.Stat(cacheFile); err == nil {
			path = cacheFile
		}
	}
	if path == "" {
		return nil, nil
	}
	payload, err := checkpoint.Read(path, identity)
	if err != nil {
		return nil, []string{fmt.Sprintf("checkpoint %s rejected: %v; running cold", path, err)}
	}
	ms, err := sim.DecodeMachineState(payload)
	if err != nil {
		return nil, []string{fmt.Sprintf("checkpoint %s undecodable: %v; running cold", path, err)}
	}
	return ms, nil
}

// RunControlled executes benchmark bench under opt like Run, with
// crash-resilience per ctl: periodic checkpoints, resume, warm-state cache
// and cooperative cancellation. Warnings (engine fallback, rejected
// checkpoints) are reported in Result.Warnings.
func RunControlled(bench string, opt Options, ctl RunControl) (*Result, error) {
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	if err := validateMachine(opt); err != nil {
		return nil, err
	}
	if opt.Scale == 0 {
		opt.Scale = 1
	}
	var warnings []string
	if ctl.enabled() {
		if err := validateCheckpointable(opt); err != nil {
			return nil, err
		}
		switch opt.Engine {
		case "", "skip":
		default:
			// naive and parallel are byte-identical to skip, so falling back
			// preserves every result while making the state serializable.
			warnings = append(warnings,
				fmt.Sprintf("checkpointing runs under the skip engine (requested %q is byte-identical; falling back)", opt.Engine))
			opt.Engine = "skip"
		}
		if ctl.CheckpointEvery == 0 {
			ctl.CheckpointEvery = DefaultCheckpointEvery
		}
	}

	cfg := buildConfig(opt)
	// Cancellation is independent of checkpointing: a supervised cell polls
	// its watchdog even when its options cannot checkpoint.
	cfg.Cancel = ctl.Cancel
	var identity uint64
	var cacheFile string
	if ctl.enabled() {
		identity = checkpointIdentity(bench, opt, ctl.CheckpointEvery)
		cfg.CheckpointEvery = ctl.CheckpointEvery
		if ctl.CacheDir != "" {
			cacheFile = cacheFilePath(ctl.CacheDir, bench, identity)
		}
		if ctl.CheckpointPath != "" || cacheFile != "" || ctl.OnCheckpoint != nil {
			n := 0
			ckpt := ctl // capture by value; the sink outlives this frame
			cfg.CheckpointSink = func(ms *sim.MachineState) error {
				payload, err := ms.Encode()
				if err != nil {
					return err
				}
				if ckpt.CheckpointPath != "" {
					if err := checkpoint.Write(ckpt.CheckpointPath, identity, payload); err != nil {
						return err
					}
				}
				if cacheFile != "" {
					if err := checkpoint.Write(cacheFile, identity, payload); err != nil {
						return err
					}
				}
				n++
				if ckpt.OnCheckpoint != nil {
					return ckpt.OnCheckpoint(n)
				}
				return nil
			}
		}
	}

	// build assembles a fresh system; a failed restore rebuilds from scratch
	// (the failed replay may have advanced thread closures, so both the
	// system and the workload closures are remade).
	build := func() (*sim.System, *forensics.GroundTruth) {
		threads, regions, gt := spec.BuildLabeled(opt.Variant, workload.Scale(opt.Scale), opt.Cores)
		return sim.New(cfg, sim.Workload{Name: bench, Threads: threads, ReductionRegions: regions}), gt
	}
	system, gt := build()
	if ctl.enabled() {
		ms, w := loadResume(ctl, cacheFile, identity)
		warnings = append(warnings, w...)
		if ms != nil {
			if err := system.Restore(ms); err != nil {
				warnings = append(warnings, fmt.Sprintf("restore failed: %v; running cold", err))
				system.Stop()
				system, gt = build()
			}
		}
	}

	res, err := system.Run(bench)
	if err != nil {
		return nil, fmt.Errorf("run %s under %v: %w", bench, opt.Protocol, err)
	}
	out := assembleResult(bench, opt, gt, res)
	out.Warnings = warnings
	return out, nil
}
