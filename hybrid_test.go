package fscoherence

import "testing"

// TestHybridPushesUpdates smoke-tests the hybrid backend end to end on a
// read-involved false-sharing workload: the directory must push Upd copies,
// cores must install some of them, and the run must stay clean under the
// golden-memory oracle and SWMR scanner. uRW (readers racing a writer on one
// line) is the canonical push-producing workload — write-write ping-pong like
// RC never returns the line home, so it legitimately pushes nothing.
func TestHybridPushesUpdates(t *testing.T) {
	r, err := Run("uRW", Options{Protocol: Hybrid, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("oracle violations under hybrid: %v", r.Violations)
	}
	if n := r.Stats.Get("fs.upd_pushes"); n == 0 {
		t.Error("hybrid run pushed no Upd copies on uRW")
	}
	if n := r.Stats.Get("fs.upd_installs"); n == 0 {
		t.Error("no pushed Upd copy was installed by a core on uRW")
	}
	// The update path must not privatize: the hybrid backend repurposes the
	// policy's repair directive into update mode instead.
	if n := r.Stats.Get("fs.privatizations"); n != 0 {
		t.Errorf("hybrid run privatized %d lines; expected 0", n)
	}
}

// TestHybridWriteWritePushesNothing pins the backend's defining asymmetry:
// under pure write-write ping-pong (RC), ownership migrates core-to-core via
// 3-hop forwards and the flagged line never returns to the directory slice,
// so no push site ever fires and the hybrid run is cycle-identical to
// Baseline. Only read-involved sharing benefits from update pushes — the
// head-to-head experiment in EXPERIMENTS.md documents exactly this split.
func TestHybridWriteWritePushesNothing(t *testing.T) {
	base, err := Run("RC", Options{Protocol: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Run("RC", Options{Protocol: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if n := hyb.Stats.Get("fs.upd_pushes"); n != 0 {
		t.Errorf("hybrid pushed %d Upd copies on write-write RC; expected 0", n)
	}
	if hyb.Cycles != base.Cycles {
		t.Errorf("push-free hybrid run should match Baseline on RC: hybrid=%d baseline=%d", hyb.Cycles, base.Cycles)
	}
}
