package fscoherence

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"fscoherence/internal/stats"
)

// sampledTolerance is the validation gate for interval-sampling estimates:
// the estimate must land within max(2·CI95, 15% of the full-run value) of the
// fully-timed reference. The CI term covers high-variance workloads (where
// the estimator itself reports its uncertainty); the relative term covers
// low-variance ones whose CI collapses to ~0 while the interleaving still
// shifts the total slightly.
func sampledTolerance(est Estimate, full float64) float64 {
	return math.Max(2*est.CI95, 0.15*full)
}

// TestSampledVsFull is the acceptance gate for the sampling engine (`make
// samplecheck`): for representative benchmark/protocol cells, the sampled
// estimates of every timing-domain metric must agree with a fully-timed run
// within sampledTolerance.
func TestSampledVsFull(t *testing.T) {
	cells := []struct {
		bench string
		opt   Options
		spec  string
	}{
		{"RC", Options{Protocol: Baseline, Scale: 4}, "20k:60k"},
		{"RC", Options{Protocol: FSLite, Scale: 4}, "20k:60k"},
		{"LR", Options{Protocol: FSDetect}, "10k:30k"},
		{"uGRID", Options{Protocol: FSLite, Scale: 40, Cores: 16, Topology: "mesh"}, "50k:150k"},
	}
	metrics := []string{stats.CtrCycles, stats.CtrNetMessages, stats.CtrNetBytes, stats.CtrStallCycles}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("%s-%v", c.bench, c.opt.Protocol), func(t *testing.T) {
			t.Parallel()
			full, err := Run(c.bench, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			opt := c.opt
			opt.Sample = c.spec
			samp, err := Run(c.bench, opt)
			if err != nil {
				t.Fatal(err)
			}
			if samp.Sampled == nil {
				t.Fatal("run did not sample")
			}
			if samp.Sampled.Windows < 2 {
				t.Fatalf("only %d sampling windows; spec %s too coarse for this cell", samp.Sampled.Windows, c.spec)
			}
			for _, m := range metrics {
				est, ok := samp.Sampled.Estimates[m]
				if !ok {
					t.Errorf("no estimate for %s", m)
					continue
				}
				ref := float64(full.Stats.Get(m))
				if m == stats.CtrCycles {
					ref = float64(full.Cycles)
				}
				if tol := sampledTolerance(est, ref); math.Abs(est.Mean-ref) > tol {
					t.Errorf("%s: estimate %.0f ± %.0f vs full %.0f (tolerance %.0f)",
						m, est.Mean, est.CI95, ref, tol)
				}
			}
		})
	}
}

// TestSampledDeterministicAcrossWorkers checks that sampled runs are
// byte-identical no matter how the sweep engine schedules them: the same
// cells through a serial runner and an 8-worker runner must produce identical
// counter snapshots (including the written-back estimates) — the `-j N`
// determinism contract extended to sampling.
func TestSampledDeterministicAcrossWorkers(t *testing.T) {
	cells := []struct {
		bench string
		opt   Options
	}{
		{"RC", Options{Protocol: Baseline}},
		{"RC", Options{Protocol: FSLite}},
		{"LR", Options{Protocol: FSDetect}},
		{"uRED", Options{Protocol: FSLite}},
	}
	snap := func(workers int) []map[string]uint64 {
		r := NewRunner(workers)
		r.SetSample("5k:15k")
		var futs []*Future
		for _, c := range cells {
			futs = append(futs, r.Submit(c.bench, c.opt))
		}
		r.Wait()
		var out []map[string]uint64
		for _, f := range futs {
			res, err := f.Result()
			if err != nil {
				t.Fatal(err)
			}
			if res.Sampled == nil {
				t.Fatalf("%s did not sample", res.Benchmark)
			}
			out = append(out, res.Stats.Snapshot())
		}
		return out
	}
	serial, parallel := snap(1), snap(8)
	for i := range cells {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			for k, v := range serial[i] {
				if parallel[i][k] != v {
					t.Errorf("%s/%v: %s = %d serial vs %d parallel",
						cells[i].bench, cells[i].opt.Protocol, k, v, parallel[i][k])
				}
			}
		}
	}
}
