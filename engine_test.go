package fscoherence

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"fscoherence/internal/obs"
	"fscoherence/internal/workload"
)

// engineEquivalenceScale keeps the full workload × protocol × engine matrix
// affordable; the naive engine pays for every simulated cycle, so this is the
// most expensive test in the suite at larger scales.
const engineEquivalenceScale = 0.2

// TestEngineEquivalence is the tentpole acceptance test: for every registered
// workload under all three protocol modes, the quiescence-skipping engine and
// the naive cycle-stepped loop must produce identical cycle counts, identical
// counter snapshots, and identical detection lists. Skipping is a pure
// wall-clock optimization; any divergence here is a missed or late wake-up.
func TestEngineEquivalence(t *testing.T) {
	for _, bench := range workload.Names() {
		for _, mode := range []Protocol{Baseline, FSDetect, FSLite} {
			bench, mode := bench, mode
			t.Run(fmt.Sprintf("%s-%v", bench, mode), func(t *testing.T) {
				t.Parallel()
				naive, err := Run(bench, Options{Protocol: mode, Scale: engineEquivalenceScale, Engine: "naive"})
				if err != nil {
					t.Fatal(err)
				}
				skip, err := Run(bench, Options{Protocol: mode, Scale: engineEquivalenceScale, Engine: "skip"})
				if err != nil {
					t.Fatal(err)
				}
				if naive.Cycles != skip.Cycles {
					t.Errorf("cycles diverge: naive=%d skip=%d", naive.Cycles, skip.Cycles)
				}
				ns, ss := naive.Stats.Snapshot(), skip.Stats.Snapshot()
				if !reflect.DeepEqual(ns, ss) {
					for k, v := range ns {
						if ss[k] != v {
							t.Errorf("counter %s diverges: naive=%d skip=%d", k, v, ss[k])
						}
					}
					for k, v := range ss {
						if _, ok := ns[k]; !ok {
							t.Errorf("counter %s only under skip (=%d)", k, v)
						}
					}
				}
				if !reflect.DeepEqual(naive.Detections, skip.Detections) {
					t.Errorf("detections diverge:\nnaive: %v\nskip:  %v", naive.Detections, skip.Detections)
				}
				if !reflect.DeepEqual(naive.Contended, skip.Contended) {
					t.Errorf("contended lists diverge:\nnaive: %v\nskip:  %v", naive.Contended, skip.Contended)
				}
			})
		}
	}
}

// TestEngineEquivalenceBigMachine is the big-machine acceptance matrix:
// {naive, skip, parallel} × {flat, ring, mesh} × {8, 64, 256} cores on the
// scalable uGRID workload under FSLite. Every cell must produce identical
// cycle counts, byte-identical counter snapshots and identical detection
// lists — the parallel engine's deferred-send replay and the NoC models'
// deterministic link contention are both on trial here. (`make equiv` picks
// this up via the TestEngine prefix.)
func TestEngineEquivalenceBigMachine(t *testing.T) {
	const scale = 0.1
	for _, cores := range []int{8, 64, 256} {
		for _, topo := range []string{"flat", "ring", "mesh"} {
			cores, topo := cores, topo
			t.Run(fmt.Sprintf("%s-%dc", topo, cores), func(t *testing.T) {
				t.Parallel()
				var ref *Result
				for _, engine := range []string{"naive", "skip", "parallel"} {
					got, err := Run("uGRID", Options{
						Protocol: FSLite, Scale: scale, Engine: engine,
						Cores: cores, Topology: topo,
					})
					if err != nil {
						t.Fatalf("%s: %v", engine, err)
					}
					if ref == nil {
						ref = got
						continue
					}
					if got.Cycles != ref.Cycles {
						t.Errorf("%s: cycles diverge: naive=%d %s=%d", engine, ref.Cycles, engine, got.Cycles)
					}
					rs, gs := ref.Stats.Snapshot(), got.Stats.Snapshot()
					if !reflect.DeepEqual(rs, gs) {
						for k, v := range rs {
							if gs[k] != v {
								t.Errorf("%s: counter %s diverges: naive=%d got=%d", engine, k, v, gs[k])
							}
						}
						for k, v := range gs {
							if _, ok := rs[k]; !ok {
								t.Errorf("%s: counter %s only under %s (=%d)", engine, k, engine, v)
							}
						}
					}
					if !reflect.DeepEqual(got.Detections, ref.Detections) {
						t.Errorf("%s: detections diverge:\nnaive: %v\n%s: %v", engine, ref.Detections, engine, got.Detections)
					}
				}
			})
		}
	}
}

// TestEngineParallelShardInvariance pins determinism in the shard dimension:
// the shard count is a pure execution-resource knob, so any worker count must
// reproduce the sequential run bit-for-bit.
func TestEngineParallelShardInvariance(t *testing.T) {
	ref, err := Run("uGRID", Options{Protocol: FSLite, Scale: 0.1, Cores: 64, Topology: "mesh"})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 5, 8, 16} {
		got, err := Run("uGRID", Options{
			Protocol: FSLite, Scale: 0.1, Cores: 64, Topology: "mesh",
			Engine: "parallel", Shards: shards,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.Cycles != ref.Cycles {
			t.Errorf("shards=%d: cycles diverge: skip=%d parallel=%d", shards, ref.Cycles, got.Cycles)
		}
		if !reflect.DeepEqual(got.Stats.Snapshot(), ref.Stats.Snapshot()) {
			t.Errorf("shards=%d: counter snapshots diverge", shards)
		}
	}
}

// TestEngineParallelFallback verifies the parallel engine declines the
// order-sensitive configurations (verification oracles, observability) by
// falling back to the skipping engine rather than producing divergent runs.
func TestEngineParallelFallback(t *testing.T) {
	res, err := Run("uWW", Options{Protocol: FSLite, Scale: 0.2, Engine: "parallel", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations under parallel-with-verify fallback: %v", res.Violations)
	}
	ref, err := Run("uWW", Options{Protocol: FSLite, Scale: 0.2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != ref.Cycles {
		t.Errorf("fallback diverges from skip: %d vs %d", res.Cycles, ref.Cycles)
	}
}

// TestEngineEquivalenceVerified reruns one false-sharing cell per protocol
// with the oracle and SWMR scanner enabled under both engines: the per-cycle
// invariant machinery must observe the same architectural history.
func TestEngineEquivalenceVerified(t *testing.T) {
	for _, mode := range []Protocol{Baseline, FSDetect, FSLite} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			naive, err := Run("LR", Options{Protocol: mode, Scale: engineEquivalenceScale, Verify: true, Engine: "naive"})
			if err != nil {
				t.Fatal(err)
			}
			skip, err := Run("LR", Options{Protocol: mode, Scale: engineEquivalenceScale, Verify: true, Engine: "skip"})
			if err != nil {
				t.Fatal(err)
			}
			if len(naive.Violations) != 0 || len(skip.Violations) != 0 {
				t.Fatalf("violations: naive=%v skip=%v", naive.Violations, skip.Violations)
			}
			if naive.Cycles != skip.Cycles {
				t.Errorf("cycles diverge: naive=%d skip=%d", naive.Cycles, skip.Cycles)
			}
			if !reflect.DeepEqual(naive.Stats.Snapshot(), skip.Stats.Snapshot()) {
				t.Error("counter snapshots diverge under verification")
			}
		})
	}
}

// traceUnder runs the golden lock workload (LR under FSLite) with the full
// observability attachment on the given engine and returns the exported
// Chrome trace bytes.
func traceUnder(t *testing.T, engine string) []byte {
	t.Helper()
	o := obs.New(obs.Config{})
	if _, err := Run("LR", Options{Protocol: FSLite, Scale: 0.5, Obs: o, Engine: engine}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, o.Tracer.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineGoldenTraceIdentical pins the strongest equivalence property:
// with event tracing enabled (which forces the skipping engine to honor every
// cycle at which any event fires), the exported trace of the golden lock run
// is byte-identical between engines — same events, same cycle stamps, same
// order.
func TestEngineGoldenTraceIdentical(t *testing.T) {
	naive := traceUnder(t, "naive")
	skip := traceUnder(t, "skip")
	if !bytes.Equal(naive, skip) {
		t.Fatalf("golden trace diverges between engines: naive=%d bytes, skip=%d bytes", len(naive), len(skip))
	}
}

// TestEngineFigTablesIdentical renders one full figure table under each
// engine (via the Runner-level engine default, as fsexp -engine does) and
// compares the rendered output byte-for-byte.
func TestEngineFigTablesIdentical(t *testing.T) {
	render := func(engine string) string {
		r := NewRunner(0)
		r.SetEngine(engine)
		return Fig14Speedup(r, engineEquivalenceScale).String() +
			Fig13MissFractions(r, engineEquivalenceScale).String()
	}
	naive := render("naive")
	skip := render("skip")
	if naive != skip {
		t.Fatalf("figure tables diverge between engines:\n--- naive ---\n%s\n--- skip ---\n%s", naive, skip)
	}
}

// TestEngineDispatchEquivalence gates `make equiv` on the spec-driven
// dispatch layer: across every engine × topology combination, routing
// coherence messages through the table-driven interpreter built from
// internal/coherence/spec (the default) and through the retained
// hand-written switches (Options.SwitchDispatch) must produce byte-identical
// results — same cycle count, same counter snapshot, same detection and
// contention lists. The interpreter dispatches to the same handler methods
// the switches call, so any divergence here is a hole in the spec tables.
func TestEngineDispatchEquivalence(t *testing.T) {
	for _, engine := range []string{"naive", "skip", "parallel"} {
		for _, topo := range []string{"flat", "mesh"} {
			for _, mode := range []Protocol{FSLite, Hybrid} {
				engine, topo, mode := engine, topo, mode
				t.Run(fmt.Sprintf("%s-%s-%v", engine, topo, mode), func(t *testing.T) {
					t.Parallel()
					opt := Options{Protocol: mode, Scale: engineEquivalenceScale, Engine: engine, Topology: topo}
					table, err := Run("uRW", opt)
					if err != nil {
						t.Fatal(err)
					}
					opt.SwitchDispatch = true
					sw, err := Run("uRW", opt)
					if err != nil {
						t.Fatal(err)
					}
					if table.Cycles != sw.Cycles {
						t.Errorf("cycles diverge: table=%d switch=%d", table.Cycles, sw.Cycles)
					}
					ts, ss := table.Stats.Snapshot(), sw.Stats.Snapshot()
					if !reflect.DeepEqual(ts, ss) {
						for k, v := range ts {
							if ss[k] != v {
								t.Errorf("counter %s diverges: table=%d switch=%d", k, v, ss[k])
							}
						}
					}
					if !reflect.DeepEqual(table.Detections, sw.Detections) {
						t.Errorf("detections diverge:\ntable:  %v\nswitch: %v", table.Detections, sw.Detections)
					}
					if !reflect.DeepEqual(table.Contended, sw.Contended) {
						t.Errorf("contended lists diverge:\ntable:  %v\nswitch: %v", table.Contended, sw.Contended)
					}
				})
			}
		}
	}
}
