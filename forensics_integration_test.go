package fscoherence

import (
	"testing"

	"fscoherence/internal/forensics"
)

// TestForensicsPrecisionRecall is the accuracy acceptance gate: on workloads
// with known ground truth, the detector must find at least 90% of the
// contended falsely-shared lines (recall), and most of what it flags must
// really be falsely shared (precision). BS is deliberately absent — its lock
// pool is mixed true+false sharing, excluded from scoring by construction.
func TestForensicsPrecisionRecall(t *testing.T) {
	for _, bench := range []string{"RC", "uWW", "uRW", "uPH", "LL"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			rec := forensics.New()
			res, err := Run(bench, Options{Protocol: FSDetect, Forensics: rec})
			if err != nil {
				t.Fatal(err)
			}
			acc := forensics.Score(rec, res.GroundTruth)
			if acc.Positives == 0 {
				t.Fatalf("%s: no contended falsely-shared lines exercised", bench)
			}
			if acc.Recall < 0.9 {
				t.Errorf("%s: recall %.2f < 0.9 (TP=%d FN=%d of %d positives)",
					bench, acc.Recall, acc.TP, acc.FN, acc.Positives)
			}
			if acc.Precision < 0.9 {
				t.Errorf("%s: precision %.2f < 0.9 (TP=%d FP=%d)",
					bench, acc.Precision, acc.TP, acc.FP)
			}
			if acc.TP > 0 && acc.MeanTTD <= 0 {
				t.Errorf("%s: mean time-to-detection %.0f, want > 0", bench, acc.MeanTTD)
			}
		})
	}
}

// TestForensicsTrueSharingControl: on the true-sharing control workload the
// detector must not flag the shared word, and the ground truth must carry
// the shared label for it.
func TestForensicsTrueSharingControl(t *testing.T) {
	rec := forensics.New()
	res, err := Run("uTS", Options{Protocol: FSDetect, Forensics: rec})
	if err != nil {
		t.Fatal(err)
	}
	acc := forensics.Score(rec, res.GroundTruth)
	if acc.FP != 0 {
		t.Errorf("uTS: %d false positives, want 0", acc.FP)
	}
	if res.GroundTruth.Count(forensics.LabelShared) == 0 {
		t.Error("uTS ground truth has no truly-shared lines")
	}
}

// TestForensicsRepairEfficacy: under FSLite the hammered RC line must be
// privatized, and the recorder's before/after attribution must show the
// invalidation traffic collapsing during the repaired phase.
func TestForensicsRepairEfficacy(t *testing.T) {
	rec := forensics.New()
	if _, err := Run("RC", Options{Protocol: FSLite, Forensics: rec}); err != nil {
		t.Fatal(err)
	}
	var repaired *forensics.Line
	for _, ln := range rec.Lines() {
		if ln.PrvEpisodes > 0 {
			repaired = ln
			break
		}
	}
	if repaired == nil {
		t.Fatal("FSLite run privatized no line")
	}
	if repaired.InvBefore == 0 {
		t.Error("no invalidations recorded before privatization")
	}
	dets, _ := repaired.DetectCycle()
	if dets == 0 {
		t.Error("privatized line has no detect decision in its timeline")
	}
	// The episode begin must also appear on the timeline.
	found := false
	for _, d := range repaired.Timeline {
		if d.Kind == forensics.DecPrvBegin {
			found = true
		}
	}
	if !found {
		t.Error("timeline lacks a prv-begin decision")
	}
	// Byte×core heatmap: the falsely shared line must show at least two
	// cores touching disjoint bytes.
	if cores := repaired.Cores(); len(cores) < 2 {
		t.Errorf("heatmap shows %d cores on the privatized line, want >= 2", len(cores))
	}
}

// TestForensicsOffByDefault: attaching forensics must not change simulated
// timing or counters — the recorder is an observer, not a participant.
func TestForensicsOffByDefault(t *testing.T) {
	plain, err := Run("RC", Options{Protocol: FSLite, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rec := forensics.New()
	with, err := Run("RC", Options{Protocol: FSLite, Scale: 0.2, Forensics: rec})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != with.Cycles {
		t.Fatalf("forensics perturbed the run: %d vs %d cycles", plain.Cycles, with.Cycles)
	}
	if len(rec.Lines()) == 0 {
		t.Fatal("recorder attached but empty")
	}
	if plain.Forensics != nil || plain.GroundTruth == nil {
		t.Fatal("plain run: Forensics must be nil, GroundTruth populated")
	}
}
