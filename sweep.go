package fscoherence

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"fscoherence/internal/runner"
)

// Runner is the parallel experiment engine: it fans independent
// (benchmark, Options) cells out across a bounded worker pool, memoizes
// results for its lifetime — a cell shared by several tables (e.g. every
// Baseline reference run) is simulated exactly once — and captures panics
// from a misbehaving configuration as that cell's error instead of killing
// the whole sweep.
//
// Every simulation is a pure function of its (benchmark, Options) cell:
// sim.New builds a fully self-contained System (own *stats.Set, memory,
// controllers and thread closures; workload models use per-closure PRNG
// streams, never package-level state), so concurrent runs cannot observe
// each other and a parallel sweep is bit-for-bit identical to a serial one.
// NewRunner(1) executes cells inline in submission order, reproducing the
// historical serial harness exactly.
type Runner struct {
	eng       *runner.Engine
	engine    string
	cores     int
	topology  string
	shards    int
	sample    string
	ckptDir   string
	ckptEvery uint64

	mu      sync.Mutex
	sampled []*Result
	journal *Journal
}

// cellKey identifies one simulation cell. Options contains only comparable
// scalar fields, so the struct is a valid map key and two cells collide
// exactly when they would produce identical results.
type cellKey struct {
	Bench string
	Opt   Options
}

// NewRunner returns an engine running at most workers simulations at once;
// workers <= 0 selects runtime.NumCPU().
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Runner{eng: runner.New(workers)}
}

// Workers returns the concurrency bound.
func (r *Runner) Workers() int { return r.eng.Workers() }

// SetEngine sets the default simulation engine ("skip" or "naive") applied to
// submitted cells that do not specify one. cmd/fsexp's -engine flag uses it to
// rerun entire tables under the naive reference loop; results are identical
// either way (the engines are proven equivalent), only wall-clock differs.
func (r *Runner) SetEngine(engine string) { r.engine = engine }

// SetSample sets a default -sample interval spec ("detailed:warming" in
// committed accesses) applied to submitted cells that do not specify one.
// cmd/fsexp's -sample flag uses it to rerun entire tables under interval
// sampling; cells that ran sampled register in SampledCells for the
// estimate report. Cells whose options are incompatible with sampling
// (OOO cores, private L2s, non-inclusive LLC, verification or observability
// attachments) run fully timed instead, so mixed sweeps still complete.
func (r *Runner) SetSample(spec string) { r.sample = spec }

// sampleCompatible reports whether a cell may run under interval sampling
// (mirrors validateMachine's -sample gating).
func sampleCompatible(opt Options) bool {
	return (opt.Engine == "" || opt.Engine == "skip") &&
		!opt.OOO && !opt.Verify && opt.Obs == nil && opt.Forensics == nil &&
		opt.L2KB == 0 && !opt.NonInclusiveLLC && opt.Protocol != Hybrid
}

// SampledCells returns every distinct cell that completed as an interval-
// sampled run, in a deterministic order (benchmark, then protocol, then
// variant). Call after Wait.
func (r *Runner) SampledCells() []*Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Result, len(r.sampled))
	copy(out, r.sampled)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		if out[i].Protocol != out[j].Protocol {
			return out[i].Protocol < out[j].Protocol
		}
		return out[i].Variant < out[j].Variant
	})
	return out
}

// SetMachine sets default machine-shape fields (core count, interconnect
// topology, parallel shard count) applied to submitted cells that do not
// specify them. cmd/fsexp's -cores/-topology/-shards flags use it to rerun
// entire tables on big-machine configurations.
func (r *Runner) SetMachine(cores int, topology string, shards int) {
	r.cores, r.topology, r.shards = cores, topology, shards
}

// SetSupervision installs the per-cell supervision policy: a wall-clock
// watchdog per attempt (0 disables it), bounded retry after a failed attempt
// (error, panic or timeout), and a base backoff doubled per retry with
// deterministic jitter. cmd/fsexp's -timeout/-retries/-backoff flags use it
// so one hung or crashing configuration cannot take down a campaign.
func (r *Runner) SetSupervision(timeout time.Duration, retries int, backoff time.Duration) {
	r.eng.SetSupervision(runner.Supervision{Timeout: timeout, Retries: retries, Backoff: backoff})
}

// SetCheckpointDir enables the warm-state cache for submitted cells:
// checkpoint-compatible cells periodically snapshot into dir (cadence every
// committed L1D accesses; 0 picks DefaultCheckpointEvery) and automatically
// resume from a valid snapshot of their own identity, so a rerun after a
// crash — or a retry after a timeout — picks up mid-run instead of cold.
// Cells whose options cannot checkpoint (OOO, Verify, Obs, Forensics,
// private L2s, non-inclusive LLC) run normally without snapshots.
func (r *Runner) SetCheckpointDir(dir string, every uint64) {
	r.ckptDir, r.ckptEvery = dir, every
}

// cellCheckpointFile names the warm-state cache file a cell checkpoints
// into, or "" when the cell does not checkpoint.
func (r *Runner) cellCheckpointFile(bench string, opt Options) string {
	if r.ckptDir == "" || !CheckpointCompatible(opt) {
		return ""
	}
	every := r.ckptEvery
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	return cacheFilePath(r.ckptDir, bench, checkpointIdentity(bench, opt, every))
}

// SetProgress installs a per-cell completion callback (timing report).
// Calls are serialized by the engine.
func (r *Runner) SetProgress(fn func(bench string, opt Options, d time.Duration, err error)) {
	r.eng.SetProgress(func(c runner.Cell) {
		k := c.Key.(cellKey)
		fn(k.Bench, k.Opt, c.Duration, c.Err)
	})
}

// SetStream installs a JSONL progress stream on the underlying engine: one
// runner.ProgressRecord per executed cell (fsexp -progress). Pass nil to
// detach.
func (r *Runner) SetStream(w io.Writer) { r.eng.SetStream(w) }

// Future is a pending simulation cell.
type Future struct {
	bench string
	opt   Options
	h     *runner.Handle
}

// Submit schedules one cell and returns a future. Scale and Engine are
// normalized before keying so Options{Scale: 0} and Options{Scale: 1} (and
// Engine "" and "skip") share a cell.
func (r *Runner) Submit(bench string, opt Options) *Future {
	if opt.Scale == 0 {
		opt.Scale = 1
	}
	if opt.Engine == "" {
		opt.Engine = r.engine
	}
	if opt.Engine == "" {
		opt.Engine = "skip"
	}
	if opt.Cores == 0 {
		opt.Cores = r.cores
	}
	if opt.Topology == "" {
		opt.Topology = r.topology
	}
	if opt.Topology == "flat" {
		opt.Topology = "" // one cell for the two spellings of the default
	}
	if opt.Shards == 0 {
		opt.Shards = r.shards
	}
	if opt.Sample == "" && r.sample != "" && sampleCompatible(opt) {
		opt.Sample = r.sample
	}
	key := cellKey{Bench: bench, Opt: opt}
	h := r.eng.DoSupervised(key, func(seed uint64, att *runner.Attempt) (any, error) {
		ctl := RunControl{Cancel: att.Canceled}
		if r.ckptDir != "" && CheckpointCompatible(opt) {
			ctl.CacheDir = r.ckptDir
			ctl.CheckpointEvery = r.ckptEvery
		}
		res, err := RunControlled(bench, opt, ctl)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		if res.Sampled != nil {
			r.sampled = append(r.sampled, res)
		}
		j := r.journal
		r.mu.Unlock()
		if j != nil && journalEligible(opt) {
			j.record(JournalEntry{
				Status:     JournalOK,
				Bench:      bench,
				Opt:        opt,
				Seed:       seed,
				Checkpoint: r.cellCheckpointFile(bench, opt),
				Result:     wireResult(res),
			})
		}
		return res, nil
	})
	return &Future{bench: bench, opt: opt, h: h}
}

// SubmitBenches schedules one cell per benchmark with the same options.
func (r *Runner) SubmitBenches(benches []string, opt Options) []*Future {
	out := make([]*Future, len(benches))
	for i, b := range benches {
		out[i] = r.Submit(b, opt)
	}
	return out
}

// Run submits one cell and waits for it (memoized like any other cell).
func (r *Runner) Run(bench string, opt Options) (*Result, error) {
	return r.Submit(bench, opt).Result()
}

// MustRun is Run panicking on error — the historical experiment-harness
// contract where a failed reference run is fatal to its table.
func (r *Runner) MustRun(bench string, opt Options) *Result {
	return r.Submit(bench, opt).Must()
}

// Wait blocks until every submitted cell has finished.
func (r *Runner) Wait() { r.eng.Wait() }

// Report returns the engine's counters (cells executed, memo hits, summed
// simulation time). Call after Wait for sweep totals.
func (r *Runner) Report() runner.Report { return r.eng.Report() }

// Result blocks until the cell finishes.
func (f *Future) Result() (*Result, error) {
	v, err := f.h.Wait()
	if err != nil {
		return nil, fmt.Errorf("cell %s/%v: %w", f.bench, f.opt.Protocol, err)
	}
	return v.(*Result), nil
}

// Must blocks and panics if the cell failed. Table builders use it so a
// broken cell aborts only that table; cmd/fsexp recovers the panic and
// continues the sweep with the remaining experiments.
func (f *Future) Must() *Result {
	res, err := f.Result()
	if err != nil {
		panic(err)
	}
	return res
}
