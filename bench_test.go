package fscoherence

import (
	"runtime"
	"testing"
	"time"

	"fscoherence/internal/obs"
	"fscoherence/internal/stats"
	"fscoherence/internal/workload"
)

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// experiment index). Each runs the corresponding experiment once per
// iteration and reports the headline number the paper quotes as a custom
// metric, so `go test -bench` regenerates the full evaluation:
//
//	go test -bench . -benchmem
//
// benchScale trades precision for time; cmd/fsexp runs the same experiments
// at full scale. Each iteration uses a fresh serial Runner so the measured
// work matches the historical serial harness (memoization within one table
// still applies, as it does in fsexp).
const benchScale = 0.5

// serialRunner returns a fresh 1-worker engine (no cross-iteration caching).
func serialRunner() *Runner { return NewRunner(1) }

func reportGeo(b *testing.B, t *Table, col, metric string) {
	b.Helper()
	if v, ok := t.GeoMean[col]; ok {
		b.ReportMetric(v, metric)
	}
}

func BenchmarkFig02ManualFixSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := Fig2ManualFix(serialRunner(), benchScale)
		reportGeo(b, t, "manual", "geomean-speedup")
	}
}

func BenchmarkFig13L1DMissFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := Fig13MissFractions(serialRunner(), benchScale)
		reportGeo(b, t, "miss-fraction", "mean-miss-fraction")
	}
}

func BenchmarkFig14aSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := Fig14Speedup(serialRunner(), benchScale)
		reportGeo(b, t, "fslite", "fslite-geomean-speedup")
		reportGeo(b, t, "fsdetect", "fsdetect-geomean-speedup")
	}
}

// BenchmarkFig14aSpeedupNaiveEngine reruns the Fig 14a experiment under the
// naive cycle-stepped loop; the ns/op ratio to BenchmarkFig14aSpeedup (which
// uses the default quiescence-skipping engine) is the engine's wall-clock
// speedup. Results are byte-identical (TestEngineEquivalence).
func BenchmarkFig14aSpeedupNaiveEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := serialRunner()
		r.SetEngine("naive")
		t := Fig14Speedup(r, benchScale)
		reportGeo(b, t, "fslite", "fslite-geomean-speedup")
	}
}

func BenchmarkFig14bEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := Fig14Energy(serialRunner(), benchScale)
		reportGeo(b, t, "fslite", "fslite-geomean-energy")
	}
}

func BenchmarkFig15NoFalseSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := Fig15NoFalseSharing(serialRunner(), benchScale)
		reportGeo(b, t, "speedup", "fslite-geomean-speedup")
		reportGeo(b, t, "energy", "fslite-geomean-energy")
	}
}

func BenchmarkFig16TauPSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := Fig16TauP(serialRunner(), benchScale)
		reportGeo(b, t, "tauP=32", "tau32-geomean")
		reportGeo(b, t, "tauP=64", "tau64-geomean")
	}
}

func BenchmarkFig17HuronComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := Fig17Huron(serialRunner(), benchScale)
		reportGeo(b, t, "manual", "manual-geomean")
		reportGeo(b, t, "huron", "huron-geomean")
		reportGeo(b, t, "fslite", "fslite-geomean")
	}
}

func BenchmarkNetworkTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := NetworkTraffic(serialRunner(), benchScale)
		reportGeo(b, t, "requests", "request-ratio")
		reportGeo(b, t, "bytes", "byte-ratio")
	}
}

func BenchmarkSensitivitySAMSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := SAMSizeSensitivity(serialRunner(), benchScale)
		reportGeo(b, t, "speedup-256", "sam256-speedup")
	}
}

func BenchmarkSensitivityReaderOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := ReaderOptStudy(serialRunner(), benchScale)
		reportGeo(b, t, "speedup", "readeropt-speedup")
	}
}

func BenchmarkSensitivityGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := GranularityStudy(serialRunner(), benchScale)
		reportGeo(b, t, "grain=2", "grain2-speedup")
		reportGeo(b, t, "grain=4", "grain4-speedup")
	}
}

func BenchmarkSensitivityISOStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := ISOStorageStudy(serialRunner(), benchScale)
		reportGeo(b, t, "speedup", "fslite32K-vs-base128K")
	}
}

func BenchmarkSensitivityLargeL1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := LargeL1Study(serialRunner(), benchScale)
		reportGeo(b, t, "speedup", "fslite-geomean-512K")
	}
}

func BenchmarkSensitivityOOO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := OOOStudy(serialRunner(), benchScale)
		reportGeo(b, t, "ooo-vs-inorder", "ooo-baseline-speedup")
		reportGeo(b, t, "fslite-on-ooo", "fslite-on-ooo-speedup")
	}
}

func BenchmarkTableVRunTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TableVRunTimes(serialRunner(), benchScale)
	}
}

// primarySweep runs the primary-results sweep (fsexp's default set plus
// Fig 13) on the given engine — the workload for the serial-vs-parallel
// wall-clock comparison below.
func primarySweep(r *Runner, scale float64) {
	Fig2ManualFix(r, scale)
	Fig13MissFractions(r, scale)
	Fig14Speedup(r, scale)
	Fig14Energy(r, scale)
	Fig15NoFalseSharing(r, scale)
	r.Wait()
}

// BenchmarkSweepSerial and BenchmarkSweepParallel run the identical
// primary-results sweep with 1 worker and with one worker per CPU; the
// ns/op ratio between them is the engine's wall-clock speedup (≈ min(cores,
// independent cells) on an idle multi-core host; 1.0 by construction on a
// single-core host). Each iteration uses a fresh engine so memoization
// cannot carry results across iterations.
func BenchmarkSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		primarySweep(NewRunner(1), benchScale)
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	b.ReportMetric(float64(runtime.NumCPU()), "workers")
	for i := 0; i < b.N; i++ {
		primarySweep(NewRunner(runtime.NumCPU()), benchScale)
	}
}

// benchBigMachine runs the Fig 14a-shaped big-machine cell — uGRID on a
// mesh-NoC machine of the given core count, Baseline vs FSLite in the
// default (falsely shared) layout — under one simulation engine, reporting
// FSLite's speedup. The ns/op ratio between the SkipEngine and
// ParallelEngine variants at the same core count is the conservative
// parallel engine's wall-clock gain; results are byte-identical
// (TestEngineEquivalenceBigMachine), so the ratio is pure engine overhead.
// `make bench` records all four variants in BENCH_4.json.
func benchBigMachine(b *testing.B, cores int, engine string) {
	for i := 0; i < b.N; i++ {
		opt := Options{Protocol: Baseline, Scale: 1, Cores: cores, Topology: "mesh", Engine: engine}
		base, err := Run("uGRID", opt)
		if err != nil {
			b.Fatal(err)
		}
		opt.Protocol = FSLite
		fsl, err := Run("uGRID", opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fsl.Speedup(base), "fslite-speedup")
	}
}

func BenchmarkBigMachineMesh8SkipEngine(b *testing.B)      { benchBigMachine(b, 8, "skip") }
func BenchmarkBigMachineMesh8ParallelEngine(b *testing.B)  { benchBigMachine(b, 8, "parallel") }
func BenchmarkBigMachineMesh64SkipEngine(b *testing.B)     { benchBigMachine(b, 64, "skip") }
func BenchmarkBigMachineMesh64ParallelEngine(b *testing.B) { benchBigMachine(b, 64, "parallel") }

// BenchmarkSampledBillionAccessMesh64 is the interval-sampling headline cell:
// one billion committed accesses of the falsely-sharing uGRID microbenchmark
// on a 64-core mesh under FSLite, sampled at 50k-access detailed windows every
// 10M accesses (0.5% detailed coverage, 100 windows). A fully-timed reference
// at 1% of the size runs alongside to measure the detailed engine's
// throughput on the identical machine; the reported effective-speedup metric
// is the ratio of committed accesses per wall-second, sampled vs full — the
// ISSUE 8 acceptance gate asks for >= 20x. CI quality for the estimates is
// pinned separately by TestSampledVsFull (`make samplecheck`).
func BenchmarkSampledBillionAccessMesh64(b *testing.B) {
	const accesses = 1_000_000_000
	// Pad the budget slightly: per-thread iteration counts round down, and
	// the cell must not land just under the billion-access floor.
	scale := float64(workload.GridScaleForAccesses(64, accesses+2_000_000))
	for i := 0; i < b.N; i++ {
		refStart := time.Now()
		ref, err := Run("uGRID", Options{Protocol: FSLite, Scale: scale / 100, Cores: 64, Topology: "mesh"})
		if err != nil {
			b.Fatal(err)
		}
		refSecs := time.Since(refStart).Seconds()
		refAcc := float64(ref.Stats.Get(stats.CtrL1DAccesses))

		sampStart := time.Now()
		res, err := Run("uGRID", Options{Protocol: FSLite, Scale: scale, Cores: 64, Topology: "mesh", Sample: "50k:9950k"})
		if err != nil {
			b.Fatal(err)
		}
		sampSecs := time.Since(sampStart).Seconds()
		if res.Sampled == nil || res.Sampled.Accesses < accesses {
			b.Fatalf("sampled run committed %d accesses, want >= %d", res.Sampled.Accesses, uint64(accesses))
		}
		sampRate := float64(res.Sampled.Accesses) / sampSecs
		refRate := refAcc / refSecs
		b.ReportMetric(float64(res.Sampled.Accesses), "accesses")
		b.ReportMetric(sampRate, "accesses/s")
		b.ReportMetric(sampRate/refRate, "effective-speedup")
		b.ReportMetric(float64(res.Sampled.Windows), "windows")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles/sec) on
// the heaviest workload — a harness-health metric, not a paper figure.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		r, err := Run("RC", Options{Protocol: Baseline, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkRunTracerDisabled / BenchmarkRunTracerEnabled run the same FSLite
// cell with observability off and on. The disabled run pays one nil check
// per would-be event (no Event construction, no allocation — pinned by
// internal/obs's TestEmitBenchmarksDoNotAllocate); the ns/op gap between the
// pair is the full cost of tracing when requested.
func BenchmarkRunTracerDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run("LR", Options{Protocol: FSLite, Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTracerEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := obs.New(obs.Config{})
		if _, err := Run("LR", Options{Protocol: FSLite, Scale: benchScale, Obs: o}); err != nil {
			b.Fatal(err)
		}
		if o.Tracer.Total() == 0 {
			b.Fatal("enabled run traced no events")
		}
	}
}
