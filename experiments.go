package fscoherence

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fscoherence/internal/stats"
)

// Table is one reproduced figure or table: named rows of named columns, with
// geometric means where the paper reports them.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []TableRow
	GeoMean map[string]float64
}

// TableRow is one benchmark's values.
type TableRow struct {
	Name   string
	Values map[string]float64
}

// String renders the table in a fixed-width layout.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s", r.Name)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "%14.3f", r.Values[c])
		}
		b.WriteByte('\n')
	}
	if len(t.GeoMean) > 0 {
		fmt.Fprintf(&b, "%-10s", "geomean")
		for _, c := range t.Columns {
			if v, ok := t.GeoMean[c]; ok {
				fmt.Fprintf(&b, "%14.3f", v)
			} else {
				fmt.Fprintf(&b, "%14s", "")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (the artifact's consumable
// format: one row per benchmark, geomean last).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, c := range t.Columns {
		b.WriteString("," + c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Name)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, ",%.6f", r.Values[c])
		}
		b.WriteByte('\n')
	}
	if len(t.GeoMean) > 0 {
		b.WriteString("geomean")
		for _, c := range t.Columns {
			if v, ok := t.GeoMean[c]; ok {
				fmt.Fprintf(&b, ",%.6f", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| benchmark |")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r.Name)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, " %.3f |", r.Values[c])
		}
		b.WriteByte('\n')
	}
	if len(t.GeoMean) > 0 {
		b.WriteString("| **geomean** |")
		for _, c := range t.Columns {
			if v, ok := t.GeoMean[c]; ok {
				fmt.Fprintf(&b, " **%.3f** |", v)
			} else {
				b.WriteString(" |")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Every table builder is two-phase: it first submits all of its simulation
// cells to the engine (fanning them out across the worker pool), then
// collects futures in row order. Collection order fixes the table layout, so
// output is identical for any worker count; a cell that fails panics out of
// the builder (Future.Must) and cmd/fsexp recovers per experiment.

// Fig2ManualFix reproduces Figure 2: the speedup achieved by manually fixing
// false sharing (padded layouts) over the unmodified baseline protocol.
func Fig2ManualFix(r *Runner, scale float64) *Table {
	t := &Table{ID: "Fig 2", Title: "Speedup after manually fixing false sharing (baseline MESI)",
		Columns: []string{"manual"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	man := r.SubmitBenches(benches, Options{Protocol: Baseline, Variant: LayoutPadded, Scale: scale})
	var sp []float64
	for i, b := range benches {
		s := man[i].Must().Speedup(base[i].Must())
		sp = append(sp, s)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"manual": s}})
	}
	t.GeoMean["manual"] = geomean(sp)
	return t
}

// Fig13MissFractions reproduces Figure 13: the fraction of L1D accesses that
// miss, for the false-sharing benchmarks under the baseline protocol.
func Fig13MissFractions(r *Runner, scale float64) *Table {
	t := &Table{ID: "Fig 13", Title: "Fraction of L1D accesses that miss (baseline)",
		Columns: []string{"miss-fraction"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	cells := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	sum := 0.0
	for i, b := range benches {
		res := cells[i].Must()
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"miss-fraction": res.MissFraction}})
		sum += res.MissFraction
	}
	// The paper reports the arithmetic mean for Fig. 13.
	t.GeoMean["miss-fraction"] = sum / float64(len(t.Rows))
	return t
}

// Fig14Speedup reproduces Figure 14a: FSDetect and FSLite speedups over the
// baseline for the false-sharing benchmarks.
func Fig14Speedup(r *Runner, scale float64) *Table {
	t := &Table{ID: "Fig 14a", Title: "Speedup of FSDetect and FSLite over baseline",
		Columns: []string{"fsdetect", "fslite"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	det := r.SubmitBenches(benches, Options{Protocol: FSDetect, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	var sd, sl []float64
	for i, b := range benches {
		b0 := base[i].Must()
		vd, vl := det[i].Must().Speedup(b0), fsl[i].Must().Speedup(b0)
		sd = append(sd, vd)
		sl = append(sl, vl)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"fsdetect": vd, "fslite": vl}})
	}
	t.GeoMean["fsdetect"] = geomean(sd)
	t.GeoMean["fslite"] = geomean(sl)
	return t
}

// Fig14Energy reproduces Figure 14b: cache-hierarchy energy of FSDetect and
// FSLite normalized to the baseline.
func Fig14Energy(r *Runner, scale float64) *Table {
	t := &Table{ID: "Fig 14b", Title: "Normalized energy of FSDetect and FSLite",
		Columns: []string{"fsdetect", "fslite"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	det := r.SubmitBenches(benches, Options{Protocol: FSDetect, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	var ed, el []float64
	for i, b := range benches {
		b0 := base[i].Must()
		vd, vl := det[i].Must().NormalizedEnergy(b0), fsl[i].Must().NormalizedEnergy(b0)
		ed = append(ed, vd)
		el = append(el, vl)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"fsdetect": vd, "fslite": vl}})
	}
	t.GeoMean["fsdetect"] = geomean(ed)
	t.GeoMean["fslite"] = geomean(el)
	return t
}

// Fig15NoFalseSharing reproduces Figure 15: FSLite speedup and normalized
// energy for the applications without false sharing.
func Fig15NoFalseSharing(r *Runner, scale float64) *Table {
	t := &Table{ID: "Fig 15", Title: "FSLite on applications without false sharing",
		Columns: []string{"speedup", "energy"}, GeoMean: map[string]float64{}}
	benches := NoFalseSharingBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	var sp, en []float64
	for i, b := range benches {
		b0, f0 := base[i].Must(), fsl[i].Must()
		s, e := f0.Speedup(b0), f0.NormalizedEnergy(b0)
		sp = append(sp, s)
		en = append(en, e)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"speedup": s, "energy": e}})
	}
	t.GeoMean["speedup"] = geomean(sp)
	t.GeoMean["energy"] = geomean(en)
	return t
}

// Fig16TauP reproduces Figure 16: FSLite with privatization thresholds 32
// and 64, relative to the default threshold of 16.
func Fig16TauP(r *Runner, scale float64) *Table {
	t := &Table{ID: "Fig 16", Title: "FSLite sensitivity to the privatization threshold tauP (relative to tauP=16)",
		Columns: []string{"tauP=32", "tauP=64"}, GeoMean: map[string]float64{}}
	benches := []string{"BS", "LL", "LR", "LT", "RC", "SF", "SM"} // SC excluded (§VIII-B)
	ref := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	t32 := r.SubmitBenches(benches, Options{Protocol: FSLite, TauP: 32, Scale: scale})
	t64 := r.SubmitBenches(benches, Options{Protocol: FSLite, TauP: 64, Scale: scale})
	var s32s, s64s []float64
	for i, b := range benches {
		r0 := ref[i].Must()
		v32, v64 := t32[i].Must().Speedup(r0), t64[i].Must().Speedup(r0)
		s32s = append(s32s, v32)
		s64s = append(s64s, v64)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"tauP=32": v32, "tauP=64": v64}})
	}
	t.GeoMean["tauP=32"] = geomean(s32s)
	t.GeoMean["tauP=64"] = geomean(s64s)
	return t
}

// Fig17Huron reproduces Figure 17: manual fix, Huron and FSLite speedups
// over baseline for the Huron-artifact benchmarks.
func Fig17Huron(r *Runner, scale float64) *Table {
	t := &Table{ID: "Fig 17", Title: "Manual fix vs Huron vs FSLite (speedup over baseline)",
		Columns: []string{"manual", "huron", "fslite"}, GeoMean: map[string]float64{}}
	benches := HuronBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	man := r.SubmitBenches(benches, Options{Protocol: Baseline, Variant: LayoutPadded, Scale: scale})
	hur := r.SubmitBenches(benches, Options{Protocol: Baseline, Variant: LayoutHuron, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	var sm, sh, sl []float64
	for i, b := range benches {
		b0 := base[i].Must()
		vm, vh, vl := man[i].Must().Speedup(b0), hur[i].Must().Speedup(b0), fsl[i].Must().Speedup(b0)
		sm = append(sm, vm)
		sh = append(sh, vh)
		sl = append(sl, vl)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"manual": vm, "huron": vh, "fslite": vl}})
	}
	t.GeoMean["manual"] = geomean(sm)
	t.GeoMean["huron"] = geomean(sh)
	t.GeoMean["fslite"] = geomean(sl)
	return t
}

// NetworkTraffic reproduces the §VIII-B interconnect study: the reduction in
// L1-originated request messages and total traffic under FSLite, plus the
// metadata overhead.
func NetworkTraffic(r *Runner, scale float64) *Table {
	t := &Table{ID: "Net", Title: "FSLite interconnect traffic relative to baseline (false-sharing apps)",
		Columns: []string{"requests", "messages", "bytes", "metadata-share"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	var rq, ms, by []float64
	for i, b := range benches {
		b0, f0 := base[i].Must(), fsl[i].Must()
		reqRatio := float64(f0.Stats.Get("net.msg.request")) / float64(b0.Stats.Get("net.msg.request"))
		msgRatio := float64(f0.Stats.Get(stats.CtrNetMessages)) / float64(b0.Stats.Get(stats.CtrNetMessages))
		byteRatio := float64(f0.Stats.Get(stats.CtrNetBytes)) / float64(b0.Stats.Get(stats.CtrNetBytes))
		mdShare := float64(f0.Stats.Get("net.msg.metadata")) / float64(f0.Stats.Get(stats.CtrNetMessages))
		rq = append(rq, reqRatio)
		ms = append(ms, msgRatio)
		by = append(by, byteRatio)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{
			"requests": reqRatio, "messages": msgRatio, "bytes": byteRatio, "metadata-share": mdShare,
		}})
	}
	t.GeoMean["requests"] = geomean(rq)
	t.GeoMean["messages"] = geomean(ms)
	t.GeoMean["bytes"] = geomean(by)
	return t
}

// SAMSizeSensitivity reproduces the §VIII-B SAM-table study: FSLite with a
// 256-entry SAM table relative to the default 128 entries, plus the fraction
// of SAM insertions that replaced a valid entry.
func SAMSizeSensitivity(r *Runner, scale float64) *Table {
	t := &Table{ID: "SAM", Title: "FSLite sensitivity to SAM table size (256 vs 128 entries)",
		Columns: []string{"speedup-256", "replace-frac-128"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	ref := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	big := r.SubmitBenches(benches, Options{Protocol: FSLite, SAMEntries: 256, Scale: scale})
	var sp []float64
	for i, b := range benches {
		r0 := ref[i].Must()
		v := big[i].Must().Speedup(r0)
		repl := r0.Stats.Ratio(stats.CtrSAMReplacements, stats.CtrSAMLookups)
		sp = append(sp, v)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{
			"speedup-256": v, "replace-frac-128": repl,
		}})
	}
	t.GeoMean["speedup-256"] = geomean(sp)
	return t
}

// ReaderOptStudy reproduces the §VI/§VIII-B reader-metadata optimization
// study: FSLite with the last-reader+overflow SAM encoding must privatize
// the same blocks and match the performance of the full reader bit-vector.
func ReaderOptStudy(r *Runner, scale float64) *Table {
	t := &Table{ID: "ReaderOpt", Title: "Reader metadata optimization (last-reader+overflow vs full bit-vector)",
		Columns: []string{"speedup", "privatizations-ratio"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	full := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	opt := r.SubmitBenches(benches, Options{Protocol: FSLite, ReaderOpt: true, Scale: scale})
	var sp []float64
	for i, b := range benches {
		f0, o0 := full[i].Must(), opt[i].Must()
		v := o0.Speedup(f0)
		pr := 1.0
		if p := f0.Stats.Get(stats.CtrFSPrivatized); p > 0 {
			pr = float64(o0.Stats.Get(stats.CtrFSPrivatized)) / float64(p)
		}
		sp = append(sp, v)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{
			"speedup": v, "privatizations-ratio": pr,
		}})
	}
	t.GeoMean["speedup"] = geomean(sp)
	return t
}

// GranularityStudy reproduces the §VIII-B coarse-grain tracking study:
// FSLite with 2- and 4-byte metadata grains relative to byte-grain tracking.
func GranularityStudy(r *Runner, scale float64) *Table {
	t := &Table{ID: "Grain", Title: "FSLite with coarse-grain access tracking (relative to 1-byte grain)",
		Columns: []string{"grain=2", "grain=4"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	ref := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	g2 := r.SubmitBenches(benches, Options{Protocol: FSLite, Granularity: 2, Scale: scale})
	g4 := r.SubmitBenches(benches, Options{Protocol: FSLite, Granularity: 4, Scale: scale})
	var g2s, g4s []float64
	for i, b := range benches {
		r0 := ref[i].Must()
		v2, v4 := g2[i].Must().Speedup(r0), g4[i].Must().Speedup(r0)
		g2s = append(g2s, v2)
		g4s = append(g4s, v4)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"grain=2": v2, "grain=4": v4}})
	}
	t.GeoMean["grain=2"] = geomean(g2s)
	t.GeoMean["grain=4"] = geomean(g4s)
	return t
}

// ISOStorageStudy reproduces the §VIII-B iso-storage comparison: FSLite with
// a 32 KB L1D against the baseline protocol with a 128 KB L1D, across all 14
// applications.
func ISOStorageStudy(r *Runner, scale float64) *Table {
	t := &Table{ID: "ISO", Title: "FSLite@32KB L1D vs baseline@128KB L1D (all applications)",
		Columns: []string{"speedup"}, GeoMean: map[string]float64{}}
	all := append(append([]string{}, FalseSharingBenchmarks()...), NoFalseSharingBenchmarks()...)
	big := r.SubmitBenches(all, Options{Protocol: Baseline, L1KB: 128, Scale: scale})
	fsl := r.SubmitBenches(all, Options{Protocol: FSLite, Scale: scale})
	var sp []float64
	for i, b := range all {
		v := fsl[i].Must().Speedup(big[i].Must())
		sp = append(sp, v)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"speedup": v}})
	}
	t.GeoMean["speedup"] = geomean(sp)
	return t
}

// LargeL1Study reproduces the §VIII-B large-private-cache study: FSLite's
// speedup with a 512 KB L1D (mimicking a mid-level cache).
func LargeL1Study(r *Runner, scale float64) *Table {
	t := &Table{ID: "BigL1", Title: "FSLite speedup with a 512KB private cache (false-sharing apps)",
		Columns: []string{"speedup"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, L1KB: 512, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, L1KB: 512, Scale: scale})
	var sp []float64
	for i, b := range benches {
		v := fsl[i].Must().Speedup(base[i].Must())
		sp = append(sp, v)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"speedup": v}})
	}
	t.GeoMean["speedup"] = geomean(sp)
	return t
}

// ThreeLevelStudy exercises the §VII three-level hierarchy: a 256 KB
// private L2 per core between the L1D and the LLC. The paper argues FSLite's
// benefit is unchanged (metadata stays at the L1; the PAM-eviction traffic
// is a few percent of L1-to-LLC traffic).
func ThreeLevelStudy(r *Runner, scale float64) *Table {
	t := &Table{ID: "L2", Title: "FSLite with a 256KB private L2 per core (three-level hierarchy)",
		Columns: []string{"speedup", "metadata-share"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, L2KB: 256, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, L2KB: 256, Scale: scale})
	var sp []float64
	for i, b := range benches {
		f0 := fsl[i].Must()
		v := f0.Speedup(base[i].Must())
		mdShare := float64(f0.Stats.Get("net.msg.metadata")) / float64(f0.Stats.Get(stats.CtrNetMessages))
		sp = append(sp, v)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{
			"speedup": v, "metadata-share": mdShare,
		}})
	}
	t.GeoMean["speedup"] = geomean(sp)
	return t
}

// OOOStudy reproduces the §VIII-B out-of-order study: the 8-wide OOO
// baseline's speedup over the in-order baseline, and FSLite's speedup on top
// of the OOO baseline.
func OOOStudy(r *Runner, scale float64) *Table {
	t := &Table{ID: "OOO", Title: "8-wide out-of-order cores: OOO-baseline/in-order and FSLite/OOO-baseline",
		Columns: []string{"ooo-vs-inorder", "fslite-on-ooo"}, GeoMean: map[string]float64{}}
	// The paper could run six of the eight FS applications in SE mode.
	benches := []string{"BS", "LL", "LR", "LT", "RC", "SM"}
	inord := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	ooo := r.SubmitBenches(benches, Options{Protocol: Baseline, OOO: true, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, OOO: true, Scale: scale})
	var oi, fo []float64
	for i, b := range benches {
		o0 := ooo[i].Must()
		v1, v2 := o0.Speedup(inord[i].Must()), fsl[i].Must().Speedup(o0)
		oi = append(oi, v1)
		fo = append(fo, v2)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{"ooo-vs-inorder": v1, "fslite-on-ooo": v2}})
	}
	t.GeoMean["ooo-vs-inorder"] = geomean(oi)
	t.GeoMean["fslite-on-ooo"] = geomean(fo)
	return t
}

// DoSStudy quantifies the introduction's denial-of-service observation: a
// program with a very high volume of falsely shared blocks floods the
// interconnect with invalidations and interventions; FSLite defuses the
// attack by privatizing the contended lines.
func DoSStudy(r *Runner, scale float64) *Table {
	t := &Table{ID: "DoS", Title: "Interconnect flooding by high-volume false sharing (uDoS micro)",
		Columns: []string{"msgs-per-kcycle", "inv+interv", "speedup"}}
	baseF := r.Submit("uDoS", Options{Protocol: Baseline, Scale: scale})
	fslF := r.Submit("uDoS", Options{Protocol: FSLite, Scale: scale})
	base, fsl := baseF.Must(), fslF.Must()
	row := func(name string, res *Result) {
		t.Rows = append(t.Rows, TableRow{Name: name, Values: map[string]float64{
			"msgs-per-kcycle": 1000 * float64(res.Stats.Get(stats.CtrNetMessages)) / float64(res.Cycles),
			"inv+interv":      float64(res.Stats.Get("dir.invalidations") + res.Stats.Get("dir.interventions")),
			"speedup":         res.Speedup(base),
		}})
	}
	row("baseline", base)
	row("fslite", fsl)
	return t
}

// TableVRunTimes reproduces Table V's role (per-application run times) with
// simulated cycles per benchmark and protocol.
func TableVRunTimes(r *Runner, scale float64) *Table {
	t := &Table{ID: "Table V", Title: "Simulated cycles per application (baseline / FSLite)",
		Columns: []string{"baseline-cycles", "fslite-cycles"}}
	all := append(append([]string{}, NoFalseSharingBenchmarks()...), FalseSharingBenchmarks()...)
	sort.Strings(all)
	base := r.SubmitBenches(all, Options{Protocol: Baseline, Scale: scale})
	fsl := r.SubmitBenches(all, Options{Protocol: FSLite, Scale: scale})
	for i, b := range all {
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{
			"baseline-cycles": float64(base[i].Must().Cycles), "fslite-cycles": float64(fsl[i].Must().Cycles),
		}})
	}
	return t
}

// HybridStudy evaluates the hybrid update-push backend head-to-head against
// FSLite on the Fig 14a sweep: speedups over Baseline plus the raw count of
// Upd copies the directory pushed per benchmark. The push column is the
// diagnostic: write-write ping-pong (RC) pushes nothing because ownership
// migrates core-to-core and the line never returns to the slice, so hybrid
// degenerates to Baseline there, while read-involved sharing (uRW, SC, BS)
// pushes copies to displaced readers. See EXPERIMENTS.md, "Comparing
// protocol backends".
func HybridStudy(r *Runner, scale float64) *Table {
	t := &Table{ID: "Hybrid", Title: "Hybrid update-push backend vs FSLite (speedup over baseline)",
		Columns: []string{"fslite", "hybrid", "upd-pushes"}, GeoMean: map[string]float64{}}
	benches := FalseSharingBenchmarks()
	base := r.SubmitBenches(benches, Options{Protocol: Baseline, Scale: scale})
	fsl := r.SubmitBenches(benches, Options{Protocol: FSLite, Scale: scale})
	hyb := r.SubmitBenches(benches, Options{Protocol: Hybrid, Scale: scale})
	var sl, sh []float64
	for i, b := range benches {
		b0 := base[i].Must()
		h := hyb[i].Must()
		vl, vh := fsl[i].Must().Speedup(b0), h.Speedup(b0)
		sl = append(sl, vl)
		sh = append(sh, vh)
		t.Rows = append(t.Rows, TableRow{Name: b, Values: map[string]float64{
			"fslite": vl, "hybrid": vh, "upd-pushes": float64(h.Stats.Get(stats.CtrFSUpdPushes)),
		}})
	}
	t.GeoMean["fslite"] = geomean(sl)
	t.GeoMean["hybrid"] = geomean(sh)
	return t
}

// Experiments maps experiment IDs to their generators (used by cmd/fsexp).
// Generators share one Runner per invocation, so reference cells repeated
// across tables (every Baseline run, the FSLite defaults) simulate once.
var Experiments = []struct {
	ID   string
	Gen  func(r *Runner, scale float64) *Table
	Note string
}{
	{"fig2", Fig2ManualFix, "manual-fix speedups"},
	{"fig13", Fig13MissFractions, "L1D miss fractions"},
	{"fig14a", Fig14Speedup, "FSDetect/FSLite speedups"},
	{"fig14b", Fig14Energy, "normalized energy"},
	{"fig15", Fig15NoFalseSharing, "no-false-sharing applications"},
	{"fig16", Fig16TauP, "tauP sensitivity"},
	{"fig17", Fig17Huron, "Huron comparison"},
	{"net", NetworkTraffic, "interconnect traffic"},
	{"sam", SAMSizeSensitivity, "SAM table size"},
	{"readeropt", ReaderOptStudy, "reader metadata optimization"},
	{"grain", GranularityStudy, "coarse-grain tracking"},
	{"iso", ISOStorageStudy, "iso-storage 128KB baseline"},
	{"bigl1", LargeL1Study, "512KB private caches"},
	{"l2", ThreeLevelStudy, "three-level hierarchy (private L2)"},
	{"dos", DoSStudy, "interconnect DoS mitigation"},
	{"ooo", OOOStudy, "out-of-order cores"},
	{"tablev", TableVRunTimes, "per-application run times"},
	{"hybrid", HybridStudy, "hybrid update-push backend head-to-head"},
}
