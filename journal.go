package fscoherence

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"fscoherence/internal/energy"
	"fscoherence/internal/runner"
	"fscoherence/internal/stats"
	"fscoherence/internal/workload"
)

// Campaign journal: an append-only JSONL log of every cell a sweep
// completed, retried or abandoned. An interrupted campaign (crash, SIGKILL,
// power loss) restarts by loading the journal and priming the engine's memo
// with the completed cells, so only unfinished work reruns — and a cell that
// was checkpointing into the warm-state cache resumes mid-run on top of
// that.
//
// The format is truncation-tolerant: records are written one per line with a
// sync per record, and the loader skips a torn final line (the crash case)
// instead of failing, so a journal written up to the instant of death is
// always usable.

// Journal statuses.
const (
	JournalOK      = "ok"      // cell completed; Result holds its outcome
	JournalFail    = "fail"    // cell exhausted its retries
	JournalAttempt = "attempt" // one failed attempt (the cell may yet succeed)
)

// JournalEntry is one journal record.
type JournalEntry struct {
	Status string  `json:"status"`
	Bench  string  `json:"bench"`
	Opt    Options `json:"opt"`
	Seed   uint64  `json:"seed"`

	// Attempt and Error describe a failed attempt ("attempt", "fail");
	// BackoffMS is the backoff slept before the next attempt (0 when the
	// cell is out of retries).
	Attempt   int    `json:"attempt,omitempty"`
	Error     string `json:"error,omitempty"`
	BackoffMS int64  `json:"backoff_ms,omitempty"`

	// Checkpoint names the cell's warm-state cache file, when the campaign
	// checkpoints: a failed cell resumes from it on the next campaign.
	Checkpoint string `json:"checkpoint,omitempty"`

	// Result carries the completed cell's outcome ("ok" records only).
	Result *ResultWire `json:"result,omitempty"`
}

// ResultWire is the serializable subset of Result journaled for completed
// cells — everything a primed cell needs except the attachments (cells with
// Obs/Forensics attachments are not journaled) and the ground truth (cheaply
// rebuilt from the workload at prime time).
type ResultWire struct {
	Benchmark    string            `json:"benchmark"`
	Protocol     Protocol          `json:"protocol"`
	Variant      Variant           `json:"variant"`
	Cycles       uint64            `json:"cycles"`
	Stats        map[string]uint64 `json:"stats"`
	MissFraction float64           `json:"miss_fraction"`
	Energy       float64           `json:"energy"`
	Detections   []Detection       `json:"detections,omitempty"`
	Contended    []Detection       `json:"contended,omitempty"`
	Violations   []string          `json:"violations,omitempty"`
	Sampled      *SampledRun       `json:"sampled,omitempty"`
	Warnings     []string          `json:"warnings,omitempty"`
}

// wireResult converts a Result for journaling.
func wireResult(r *Result) *ResultWire {
	return &ResultWire{
		Benchmark:    r.Benchmark,
		Protocol:     r.Protocol,
		Variant:      r.Variant,
		Cycles:       r.Cycles,
		Stats:        r.Stats.Snapshot(),
		MissFraction: r.MissFraction,
		Energy:       r.Energy,
		Detections:   r.Detections,
		Contended:    r.Contended,
		Violations:   r.Violations,
		Sampled:      r.Sampled,
		Warnings:     r.Warnings,
	}
}

// unwire rebuilds a Result from its journaled form, reconstructing the
// counter set and (deterministically, from the workload registry) the
// ground-truth labels.
func (w *ResultWire) unwire() (*Result, error) {
	st := stats.NewSet()
	for name, v := range w.Stats {
		st.Set(name, v)
	}
	r := &Result{
		Benchmark:    w.Benchmark,
		Protocol:     w.Protocol,
		Variant:      w.Variant,
		Cycles:       w.Cycles,
		Stats:        st,
		MissFraction: w.MissFraction,
		Energy:       w.Energy,
		Detections:   w.Detections,
		Contended:    w.Contended,
		Violations:   w.Violations,
		Sampled:      w.Sampled,
		Warnings:     w.Warnings,
	}
	// Recompute what Run derives rather than trusting the file for it.
	r.Energy = energy.Default().Compute(st, w.Protocol != Baseline).Total()
	return r, nil
}

// Journal is an append-only campaign journal. Safe for concurrent use (the
// worker pool records cells as they finish).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) a journal for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// record appends one entry (line-atomic: a single Write call per record,
// synced so a crash immediately after still finds it on disk).
func (j *Journal) record(e JournalEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		return // a non-serializable entry is dropped, never fatal mid-sweep
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err == nil {
		j.f.Sync()
	}
}

// LoadJournal reads a journal, skipping blank and torn lines (a crash can
// leave a partial final record; everything before it is intact because each
// record is one synced write). A missing file is an empty campaign, not an
// error.
func LoadJournal(path string) ([]JournalEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var out []JournalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue // torn or foreign line: tolerate, don't fail the resume
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("journal: %w", err)
	}
	return out, nil
}

// journalEligible reports whether a cell's result can be journaled: cells
// carrying Obs/Forensics attachments reference live in-memory recorders that
// a later campaign cannot reconstruct, so they always rerun.
func journalEligible(opt Options) bool {
	return opt.Obs == nil && opt.Forensics == nil
}

// SetJournal attaches a campaign journal: every executed cell is recorded as
// it finishes ("ok" with its full result, or "fail"/"attempt" with the
// error), so an interrupted sweep can resume with ResumeJournal.
func (r *Runner) SetJournal(j *Journal) {
	r.mu.Lock()
	r.journal = j
	r.mu.Unlock()
	r.eng.SetAttemptHook(func(key any, attempt int, err error, backoff time.Duration) {
		k, ok := key.(cellKey)
		if !ok {
			return
		}
		e := JournalEntry{
			Status:     JournalAttempt,
			Bench:      k.Bench,
			Opt:        k.Opt,
			Seed:       runner.Seed(k),
			Attempt:    attempt,
			Error:      err.Error(),
			BackoffMS:  backoff.Milliseconds(),
			Checkpoint: r.cellCheckpointFile(k.Bench, k.Opt),
		}
		if backoff == 0 {
			e.Status = JournalFail
		}
		j.record(e)
	})
}

// ResumeJournal loads a prior campaign's journal and primes the engine's
// memo with every completed cell, so resubmitting the same sweep only
// reruns unfinished work. Returns the number of cells primed. Entries whose
// benchmark no longer exists are skipped.
func (r *Runner) ResumeJournal(path string) (int, error) {
	entries, err := LoadJournal(path)
	if err != nil {
		return 0, err
	}
	primed := 0
	for _, e := range entries {
		if e.Status != JournalOK || e.Result == nil {
			continue
		}
		spec, err := workload.ByName(e.Bench)
		if err != nil {
			continue
		}
		res, err := e.Result.unwire()
		if err != nil {
			continue
		}
		opt := e.Opt
		if opt.Scale == 0 {
			opt.Scale = 1
		}
		_, _, gt := spec.BuildLabeled(opt.Variant, workload.Scale(opt.Scale), opt.Cores)
		res.GroundTruth = gt
		if r.eng.Prime(cellKey{Bench: e.Bench, Opt: e.Opt}, res) {
			primed++
			if res.Sampled != nil {
				r.mu.Lock()
				r.sampled = append(r.sampled, res)
				r.mu.Unlock()
			}
		}
	}
	return primed, nil
}
