package fscoherence

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// SIGKILL smoke: a real process killed with SIGKILL mid-run — no deferred
// cleanup, no atexit, the hardest crash short of power loss — must leave a
// checkpoint a fresh process resumes byte-identically from. The test
// re-executes its own binary as the victim: the child runs a checkpointing
// simulation, signals readiness after its second checkpoint and then blocks;
// the parent SIGKILLs it and finishes the run in-process.

// killResumeOpt is the fixed cell both processes run. Must agree between
// parent and child (the checkpoint identity hash enforces that it does).
func killResumeOpt() Options {
	return Options{Protocol: FSDetect, Scale: testScale}
}

// TestKillResumeSmoke doubles as parent and victim, selected by environment:
// with FSCKPT_CHILD set it runs the checkpointing simulation and blocks after
// two checkpoints; otherwise it spawns itself as the child, SIGKILLs it once
// ready, and resumes from the orphaned checkpoint.
func TestKillResumeSmoke(t *testing.T) {
	if os.Getenv("FSCKPT_CHILD") == "1" {
		ready := os.Getenv("FSCKPT_READY")
		_, err := RunControlled("RC", killResumeOpt(), RunControl{
			CheckpointPath:  os.Getenv("FSCKPT_PATH"),
			CheckpointEvery: ckptEvery,
			OnCheckpoint: func(n int) error {
				if n == 2 {
					if err := os.WriteFile(ready, nil, 0o644); err != nil {
						return err
					}
					time.Sleep(time.Hour) // hold still for the SIGKILL
				}
				return nil
			},
		})
		// Unreachable when the parent kills us; reachable only if the kill
		// never lands, in which case the run completing is fine too.
		_ = err
		return
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "victim.ckpt")
	ready := filepath.Join(dir, "ready")
	cmd := exec.Command(os.Args[0], "-test.run", "TestKillResumeSmoke$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"FSCKPT_CHILD=1", "FSCKPT_PATH="+ckpt, "FSCKPT_READY="+ready)
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning victim process: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ready); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("victim never reached its second checkpoint")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd.Wait()

	ref, err := RunControlled("RC", killResumeOpt(), RunControl{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("uninterrupted reference run failed: %v", err)
	}
	got, err := RunControlled("RC", killResumeOpt(), RunControl{Resume: ckpt, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("resuming from the killed process's checkpoint: %v", err)
	}
	if len(got.Warnings) > 0 {
		t.Fatalf("resume from a SIGKILLed process degraded: %v", got.Warnings)
	}
	requireByteIdentical(t, ref, got)
}
