# Tier-1 verification for the fscoherence reproduction.
#
#   make ci      — the full tier-1 gate: formatting, vet, build, tests, the
#                  race detector over every package, the cross-engine
#                  equivalence suite (skip vs naive must be byte-identical),
#                  and a zero-alloc smoke run of the network hot path.
#   make check   — static gate only: gofmt -l must be clean, PROTOCOL.md's
#                  generated region must match internal/coherence/spec, the
#                  spec package must godoc cleanly, then go vet and the unit
#                  tests.
#   make specdocs — regenerate PROTOCOL.md §§2–4 from internal/coherence/spec
#                  (run after editing the protocol tables).
#   make test    — build + unit tests only (fast inner loop).
#   make race    — race-detector pass only.
#   make equiv   — cross-engine equivalence tests only.
#   make bench   — run the Benchmark* suite (-benchmem, one iteration each)
#                  and capture the parsed results into BENCH_6.json. Includes
#                  the sampled 10^9-access mesh-64 cell (~1 min).
#   make benchdiff — compare BENCH_6.json against the previous snapshot
#                  (BENCH_5.json); fails on a >15% regression in any tracked
#                  deterministic metric (allocs/op, B/op, modelled results —
#                  wall-clock ns/op is excluded as CI noise). Part of make ci;
#                  skipped with a notice if BENCH_6.json has not been
#                  captured on this machine.
#   make samplecheck — the interval-sampling validation gate: sampled
#                  estimates must land within tolerance of full reference
#                  runs, and must be byte-identical across -j worker counts.
#   make ckptcheck — the crash-resilience gate: kill a run mid-window, resume
#                  from its checkpoint and demand byte-identical final
#                  counters across {skip, parallel} x {flat, mesh}; corrupt /
#                  version-skewed / wrong-identity checkpoints must degrade to
#                  cold runs; campaign journals must resume; plus a real
#                  SIGKILL-mid-run smoke test under -race.
#   make sweep   — regenerate the paper's tables with the parallel engine.
#   make fuzzsmoke — CI-sized protocol fuzzing: a fixed 60-seed corpus across
#                  the three default protocols under fault injection, a
#                  20-seed cell for the opt-in hybrid backend, plus the oracle
#                  selfcheck (seeded bugs must be caught and shrunk). ~30s.
#   make fuzz    — full fuzzing campaign (SEEDS=200 by default); not tier-1.

GO ?= go
GOFMT ?= gofmt
SEEDS ?= 200

.PHONY: ci check fmt test race equiv allocsmoke samplecheck ckptcheck bench benchdiff sweep fuzz fuzzsmoke specdocs speccheck

ci: check race equiv allocsmoke samplecheck ckptcheck fuzzsmoke benchdiff

check: fmt speccheck test

# Rewrite the generated region of PROTOCOL.md (§§2–4) from the protocol
# tables in internal/coherence/spec.
specdocs:
	$(GO) run ./cmd/fsspec -w

# Fail if the committed PROTOCOL.md drifted from the spec tables, and smoke
# the spec package's godoc (a parse failure here breaks `go doc`).
speccheck:
	$(GO) run ./cmd/fsspec -check
	@$(GO) doc ./internal/coherence/spec >/dev/null

# gofmt -l prints unformatted files; any output fails the gate.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Cross-engine determinism: every workload x protocol under both engines,
# plus golden-trace and figure-table byte-equality, plus the table-driven
# interpreter vs hand-written switch dispatch equivalence across
# {naive,skip,parallel} x {flat,mesh} (engine_test.go).
equiv:
	$(GO) test -run 'TestEngine' -count=1 .

# The steady-state network round trip, the parallel engine's epoch loop and
# the disabled forensics recorder must not allocate; the benchmark's
# allocs/op plus the four tests gate it.
allocsmoke:
	$(GO) test -run 'TestSendRecvDoesNotAllocate|TestReplayDoesNotAllocate' -bench 'BenchmarkNetSendRecv' -benchmem -benchtime=1x -count=1 ./internal/network/
	$(GO) test -run 'TestParallelEpochDoesNotAllocate|TestWarmingAccessDoesNotAllocate' -count=1 ./internal/sim/
	$(GO) test -run 'TestForensicsDisabledDoesNotAllocate' -count=1 ./internal/forensics/

# Sampled-vs-full tolerance gate plus cross-worker determinism of the sampled
# estimates. EXPERIMENTS.md §"Sampled simulation".
samplecheck:
	$(GO) test -run 'TestSampledVsFull|TestSampledDeterministicAcrossWorkers' -count=1 .

# Crash/resume byte-identity, corruption fallback, campaign-journal resume
# (ckptcheck_test.go, journal_test.go, internal/checkpoint), then the
# SIGKILL-a-real-process smoke test under the race detector.
ckptcheck:
	$(GO) test -run 'TestCheckpoint|TestCadence|TestCorrupt|TestMissingResume|TestWrongIdentity|TestWarmState|TestJournal|TestLoadJournal' -count=1 .
	$(GO) test -count=1 ./internal/checkpoint/
	$(GO) test -race -run 'TestKillResumeSmoke|TestSupervised|TestBackoffDeterministic|TestPrimeMemo' -count=1 . ./internal/runner/

bench:
	$(GO) test -bench . -benchmem -benchtime=1x -run '^$$' ./... | $(GO) run ./cmd/benchjson -out BENCH_6.json

# Regression gate over the checked-in snapshots. BENCH_6.json is machine-
# dependent, so the diff only runs when a local capture exists.
benchdiff:
	@if [ -f BENCH_6.json ]; then \
		$(GO) run ./cmd/benchjson -diff BENCH_6.json -prev BENCH_5.json; \
	else \
		echo "benchdiff: BENCH_6.json not captured (run 'make bench' first); skipping"; \
	fi

sweep:
	$(GO) run ./cmd/fsexp -all

# Fixed corpus + oracle selfcheck: deterministic, so a failure here is a real
# regression, never flake. The hybrid cell fuzzes the opt-in update-push
# backend, which the default three-protocol sweep leaves out.
# EXPERIMENTS.md §"Protocol fuzzing".
fuzzsmoke:
	$(GO) run ./cmd/fsfuzz -seeds 60
	$(GO) run ./cmd/fsfuzz -protocol hybrid -seeds 20
	$(GO) run ./cmd/fsfuzz -selfcheck

fuzz:
	$(GO) run ./cmd/fsfuzz -seeds $(SEEDS)
