# Tier-1 verification for the fscoherence reproduction.
#
#   make ci      — the full tier-1 gate: formatting, vet, build, tests, and
#                  the race detector over every package (the parallel
#                  experiment engine and the goroutine-per-thread simulator
#                  both run under -race; see sweep_test.go and
#                  internal/runner).
#   make check   — static gate only: gofmt -l must be clean, then go vet and
#                  the unit tests.
#   make test    — build + unit tests only (fast inner loop).
#   make race    — race-detector pass only.
#   make bench   — regenerate the full evaluation via go test -bench.
#   make sweep   — regenerate the paper's tables with the parallel engine.

GO ?= go
GOFMT ?= gofmt

.PHONY: ci check fmt test race bench sweep

ci: check race

check: fmt test

# gofmt -l prints unformatted files; any output fails the gate.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$'

sweep:
	$(GO) run ./cmd/fsexp -all
