# Tier-1 verification for the fscoherence reproduction.
#
#   make ci      — the full tier-1 gate: build, vet, tests, and the race
#                  detector over every package (the parallel experiment
#                  engine and the goroutine-per-thread simulator both run
#                  under -race; see sweep_test.go and internal/runner).
#   make test    — build + unit tests only (fast inner loop).
#   make race    — race-detector pass only.
#   make bench   — regenerate the full evaluation via go test -bench.
#   make sweep   — regenerate the paper's tables with the parallel engine.

GO ?= go

.PHONY: ci test race bench sweep

ci: test race

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$'

sweep:
	$(GO) run ./cmd/fsexp -all
