package fscoherence

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// ckptcheck: crash/resume byte-identity. An interrupted-then-resumed run
// must reproduce the uninterrupted run of the same checkpoint cadence
// exactly — cycle count, every counter, every detection.

// ckptEvery is small enough that the test workloads cross several
// checkpoint boundaries.
const ckptEvery = 2_000

// errSimulatedCrash stands in for the process dying mid-campaign.
var errSimulatedCrash = errors.New("simulated crash")

// runInterruptedThenResumed writes checkpoints to a temp file, "crashes" the
// run right after checkpoint number crashAfter, then resumes from the file
// and returns the completed result.
func runInterruptedThenResumed(t *testing.T, bench string, opt Options, crashAfter int) *Result {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, err := RunControlled(bench, opt, RunControl{
		CheckpointPath:  path,
		CheckpointEvery: ckptEvery,
		OnCheckpoint: func(n int) error {
			if n >= crashAfter {
				return errSimulatedCrash
			}
			return nil
		},
	})
	if err == nil {
		t.Fatalf("interrupted run finished before writing %d checkpoints; shrink ckptEvery", crashAfter)
	}
	if !strings.Contains(err.Error(), errSimulatedCrash.Error()) {
		t.Fatalf("interrupted run failed for the wrong reason: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint file after interrupted run: %v", err)
	}
	res, err := RunControlled(bench, opt, RunControl{Resume: path, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	for _, w := range res.Warnings {
		if strings.Contains(w, "running cold") {
			t.Fatalf("resume fell back to a cold run: %v", res.Warnings)
		}
	}
	return res
}

// requireByteIdentical asserts two results are indistinguishable.
func requireByteIdentical(t *testing.T, ref, got *Result) {
	t.Helper()
	if got.Cycles != ref.Cycles {
		t.Errorf("cycles: resumed %d, uninterrupted %d", got.Cycles, ref.Cycles)
	}
	refStats, gotStats := ref.Stats.Snapshot(), got.Stats.Snapshot()
	if !reflect.DeepEqual(refStats, gotStats) {
		for k, v := range refStats {
			if gotStats[k] != v {
				t.Errorf("counter %s: resumed %d, uninterrupted %d", k, gotStats[k], v)
			}
		}
		for k, v := range gotStats {
			if _, ok := refStats[k]; !ok {
				t.Errorf("counter %s: resumed has %d, uninterrupted lacks it", k, v)
			}
		}
	}
	if !reflect.DeepEqual(ref.Detections, got.Detections) {
		t.Errorf("detections differ:\nuninterrupted %v\nresumed       %v", ref.Detections, got.Detections)
	}
	if !reflect.DeepEqual(ref.Contended, got.Contended) {
		t.Errorf("contended differ:\nuninterrupted %v\nresumed       %v", ref.Contended, got.Contended)
	}
}

// TestCheckpointResumeByteIdentical is the ckptcheck matrix: kill mid-window
// and resume across {skip, parallel} × {flat, mesh}. The parallel engine
// falls back to skip under checkpointing (byte-identical by the engine
// equivalence contract), so the fallback path is part of the matrix.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	for _, engine := range []string{"skip", "parallel"} {
		for _, topo := range []string{"flat", "mesh"} {
			t.Run(engine+"/"+topo, func(t *testing.T) {
				t.Parallel()
				opt := Options{Protocol: FSDetect, Scale: testScale, Engine: engine, Topology: topo}
				ref, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery})
				if err != nil {
					t.Fatalf("uninterrupted run failed: %v", err)
				}
				if engine == "parallel" && len(ref.Warnings) == 0 {
					t.Errorf("parallel engine should warn about the skip fallback")
				}
				got := runInterruptedThenResumed(t, "RC", opt, 2)
				requireByteIdentical(t, ref, got)
			})
		}
	}
}

// TestCheckpointResumeSampled covers the sampled-run path: checkpoints ride
// the existing window boundaries and the estimator state round-trips, so the
// resumed run's estimates equal the uninterrupted run's.
func TestCheckpointResumeSampled(t *testing.T) {
	opt := Options{Protocol: FSDetect, Scale: testScale, Sample: "1k:3k"}
	ref, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("uninterrupted sampled run failed: %v", err)
	}
	if ref.Sampled == nil {
		t.Fatalf("reference run did not sample")
	}
	got := runInterruptedThenResumed(t, "RC", opt, 2)
	requireByteIdentical(t, ref, got)
	if got.Sampled == nil {
		t.Fatalf("resumed run did not sample")
	}
	if got.Sampled.Windows != ref.Sampled.Windows || got.Sampled.Accesses != ref.Sampled.Accesses ||
		got.Sampled.Detailed != ref.Sampled.Detailed {
		t.Errorf("sampled accounting differs: resumed %+v, uninterrupted %+v", got.Sampled, ref.Sampled)
	}
	if !reflect.DeepEqual(ref.Sampled.Estimates, got.Sampled.Estimates) {
		t.Errorf("estimates differ:\nuninterrupted %v\nresumed       %v", ref.Sampled.Estimates, got.Sampled.Estimates)
	}
}

// TestCheckpointBaselineProtocol exercises the Baseline mode (no PAM/SAM
// policy images in the checkpoint).
func TestCheckpointBaselineProtocol(t *testing.T) {
	opt := Options{Protocol: Baseline, Scale: testScale}
	ref, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("uninterrupted run failed: %v", err)
	}
	got := runInterruptedThenResumed(t, "RC", opt, 1)
	requireByteIdentical(t, ref, got)
}

// TestCorruptCheckpointFallsBackCold flips one payload byte: the CRC rejects
// the file, the run warns and completes cold — byte-identical to a cold run
// of the same cadence, never a panic.
func TestCorruptCheckpointFallsBackCold(t *testing.T) {
	opt := Options{Protocol: FSDetect, Scale: testScale}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, err := RunControlled("RC", opt, RunControl{
		CheckpointPath:  path,
		CheckpointEvery: ckptEvery,
		OnCheckpoint:    func(int) error { return errSimulatedCrash },
	})
	if err == nil {
		t.Fatalf("expected the interrupted run to stop")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ref, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("cold reference failed: %v", err)
	}
	got, err := RunControlled("RC", opt, RunControl{Resume: path, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("resume from corrupt checkpoint must degrade, not fail: %v", err)
	}
	warned := false
	for _, w := range got.Warnings {
		if strings.Contains(w, "running cold") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("corrupt checkpoint produced no cold-fallback warning: %v", got.Warnings)
	}
	requireByteIdentical(t, ref, got)
}

// TestMissingResumeFallsBackCold: a nonexistent -resume path degrades to a
// cold run with a warning.
func TestMissingResumeFallsBackCold(t *testing.T) {
	opt := Options{Protocol: FSLite, Scale: testScale}
	got, err := RunControlled("RC", opt, RunControl{
		Resume:          filepath.Join(t.TempDir(), "nope.ckpt"),
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		t.Fatalf("missing resume file must degrade, not fail: %v", err)
	}
	if len(got.Warnings) == 0 {
		t.Errorf("missing resume file produced no warning")
	}
}

// TestWrongIdentityFallsBackCold: resuming a checkpoint into a different
// configuration (different protocol) is caught by the identity hash.
func TestWrongIdentityFallsBackCold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, err := RunControlled("RC", Options{Protocol: FSDetect, Scale: testScale}, RunControl{
		CheckpointPath:  path,
		CheckpointEvery: ckptEvery,
		OnCheckpoint:    func(int) error { return errSimulatedCrash },
	})
	if err == nil {
		t.Fatalf("expected the interrupted run to stop")
	}
	opt := Options{Protocol: Baseline, Scale: testScale}
	ref, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunControlled("RC", opt, RunControl{Resume: path, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("wrong-identity resume must degrade, not fail: %v", err)
	}
	warned := false
	for _, w := range got.Warnings {
		if strings.Contains(w, "running cold") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("wrong-identity checkpoint produced no cold-fallback warning: %v", got.Warnings)
	}
	requireByteIdentical(t, ref, got)
}

// TestWarmStateCache: a second run of the same cell resumes from the cache
// directory automatically and still matches the uninterrupted reference.
func TestWarmStateCache(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Protocol: FSDetect, Scale: testScale}
	ref, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatal(err)
	}
	// First run populates the cache and crashes.
	_, err = RunControlled("RC", opt, RunControl{
		CacheDir:        dir,
		CheckpointEvery: ckptEvery,
		OnCheckpoint:    func(n int) error { return errSimulatedCrash },
	})
	if err == nil {
		t.Fatalf("expected the interrupted run to stop")
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one cache file, got %v (err %v)", ents, err)
	}
	// Second run finds the cache file under its own identity and resumes.
	got, err := RunControlled("RC", opt, RunControl{CacheDir: dir, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatalf("cache resume failed: %v", err)
	}
	for _, w := range got.Warnings {
		if strings.Contains(w, "running cold") {
			t.Fatalf("cache resume fell back cold: %v", got.Warnings)
		}
	}
	requireByteIdentical(t, ref, got)
}

// TestCheckpointRejectsUnsupportedShapes: option shapes whose state cannot
// be serialized fail fast with a useful error instead of checkpointing
// silently-incomplete state.
func TestCheckpointRejectsUnsupportedShapes(t *testing.T) {
	cases := []Options{
		{Protocol: FSDetect, OOO: true},
		{Protocol: FSDetect, Verify: true},
		{Protocol: FSDetect, L2KB: 256},
		{Protocol: FSDetect, NonInclusiveLLC: true},
	}
	for _, opt := range cases {
		if _, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery}); err == nil {
			t.Errorf("options %+v: checkpointing should be rejected", opt)
		}
		if CheckpointCompatible(opt) {
			t.Errorf("options %+v: CheckpointCompatible should be false", opt)
		}
	}
	if !CheckpointCompatible(Options{Protocol: FSDetect}) {
		t.Errorf("default FSDetect options should be checkpoint-compatible")
	}
}

// TestCadenceIsPartOfIdentity: the same cell at a different cadence is a
// different execution, so its checkpoint must not be accepted.
func TestCadenceIsPartOfIdentity(t *testing.T) {
	opt := Options{Protocol: FSDetect, Scale: testScale}
	a := checkpointIdentity("RC", opt, 10_000)
	b := checkpointIdentity("RC", opt, 20_000)
	if a == b {
		t.Errorf("identity ignores the checkpoint cadence")
	}
	if checkpointIdentity("RC", opt, 10_000) != a {
		t.Errorf("identity is not deterministic")
	}
	eng := opt
	eng.Engine = "parallel"
	if checkpointIdentity("RC", eng, 10_000) != a {
		t.Errorf("identity should normalize the engine out (engines are byte-identical)")
	}
}

// TestCheckpointEveryDefinesExecution documents the cadence-as-semantics
// contract: runs of different cadences may disagree on cycles (boundary
// drains perturb timing), but each cadence is itself deterministic.
func TestCheckpointEveryDefinesExecution(t *testing.T) {
	opt := Options{Protocol: FSDetect, Scale: testScale}
	a1, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RunControlled("RC", opt, RunControl{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatal(err)
	}
	requireByteIdentical(t, a1, a2)
}
