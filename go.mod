module fscoherence

go 1.22
