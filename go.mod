module fscoherence

go 1.23
