// Package fscoherence is a from-scratch reproduction of "Leveraging Cache
// Coherence to Detect and Repair False Sharing On-the-fly" (Patel, Biswas,
// Chaudhuri — MICRO 2024).
//
// It provides a deterministic, cycle-stepped multicore cache-hierarchy
// simulator with a directory-based MESI baseline protocol and the paper's
// two extensions:
//
//   - FSDetect: per-byte access metadata (PAM/SAM tables) plus per-block
//     fetch/invalidation counters that identify harmful false sharing with
//     negligible overhead (§IV).
//   - FSLite: on-the-fly repair — falsely shared lines are privatized into a
//     PRV state so each core writes its own bytes without coherence traffic,
//     with byte-granular conflict checks and a precise byte-level merge when
//     the privatized episode terminates (§V).
//
// The top-level API runs a named workload model (see internal/workload)
// under a protocol and returns cycle counts, detection reports, traffic and
// energy figures:
//
//	res, err := fscoherence.Run("RC", fscoherence.Options{Protocol: fscoherence.FSLite})
//
// The experiment harness in experiments.go regenerates every table and
// figure of the paper's evaluation (see DESIGN.md for the index and
// EXPERIMENTS.md for paper-vs-measured results); cmd/fsexp drives it from
// the command line and bench_test.go exposes each experiment as a Go
// benchmark.
package fscoherence
