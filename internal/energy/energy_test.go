package energy

import (
	"testing"

	"fscoherence/internal/stats"
)

func runStats(cycles, accesses, fills, netBytes uint64) *stats.Set {
	st := stats.NewSet()
	st.Set(stats.CtrCycles, cycles)
	st.Set(stats.CtrL1DAccesses, accesses)
	st.Set(stats.CtrL1DFills, fills)
	st.Set(stats.CtrNetBytes, netBytes)
	return st
}

func TestStaticScalesWithCycles(t *testing.T) {
	m := Default()
	a := m.Compute(runStats(1000, 0, 0, 0), false)
	b := m.Compute(runStats(2000, 0, 0, 0), false)
	if b.Static != 2*a.Static {
		t.Fatalf("static energy not linear in cycles: %v vs %v", a.Static, b.Static)
	}
	if a.Dynamic != 0 {
		t.Fatal("no events should mean no dynamic energy")
	}
}

func TestMetadataStructuresCostExtra(t *testing.T) {
	m := Default()
	st := runStats(1000, 100, 10, 500)
	st.Set(stats.CtrPAMUpdates, 50)
	st.Set(stats.CtrSAMLookups, 20)
	without := m.Compute(st, false)
	with := m.Compute(st, true)
	if with.Static <= without.Static {
		t.Fatal("PAM/SAM leakage missing")
	}
	if with.Dynamic <= without.Dynamic {
		t.Fatal("PAM/SAM dynamic energy missing")
	}
	// The metadata overhead must be small relative to the hierarchy
	// (the paper's <5% area translates to a small static share).
	if (with.Static-without.Static)/without.Static > 0.05 {
		t.Fatalf("metadata static share too large: %v", (with.Static-without.Static)/without.Static)
	}
}

func TestShorterRunSavesEnergy(t *testing.T) {
	// The FSLite effect: fewer cycles and less traffic must mean less
	// total energy, even with the metadata structures present.
	m := Default()
	slow := m.Compute(runStats(100000, 5000, 500, 100000), false)
	fast := m.Compute(runStats(30000, 5000, 100, 5000), true)
	if fast.Total() >= slow.Total() {
		t.Fatalf("fast run not cheaper: %v vs %v", fast.Total(), slow.Total())
	}
}

func TestTotalIsStaticPlusDynamic(t *testing.T) {
	b := Breakdown{Static: 3, Dynamic: 4}
	if b.Total() != 7 {
		t.Fatal("Total broken")
	}
}
