// Package energy models the cache-hierarchy energy of a simulation run,
// following the paper's accounting (§VIII-B): static energy in the cache
// hierarchy plus the structures added by FSDetect/FSLite, and dynamic fill
// energy in the L1D caches and the LLC, plus interconnect transfer energy.
// The per-access/per-byte constants are CACTI-flavoured relative weights;
// the experiments report energy normalized to the baseline protocol, exactly
// as the paper does, so only the ratios matter.
package energy

import "fscoherence/internal/stats"

// Model holds the energy coefficients. Units are arbitrary (picojoule-like);
// results are meaningful only as ratios between runs.
type Model struct {
	// Static power per cycle (leakage), per structure.
	L1StaticPerCycle  float64 // all L1D caches together
	LLCStaticPerCycle float64 // all LLC slices together
	PAMStaticPerCycle float64 // PAM tables (FSDetect/FSLite only)
	SAMStaticPerCycle float64 // SAM tables + directory counter extension

	// Dynamic energy per event.
	L1AccessDynamic  float64 // per L1D load/store lookup
	L1FillDynamic    float64 // per L1D line fill
	LLCAccessDynamic float64 // per LLC access
	LLCFillDynamic   float64 // per LLC fill from memory
	NetPerByte       float64 // per byte moved on the interconnect
	PAMUpdateDynamic float64 // per PAM bit update
	SAMLookupDynamic float64 // per SAM access
	MemAccessDynamic float64 // per main-memory read/write
}

// Default returns coefficients sized from the Table II structure areas: the
// LLC (13.7 mm^2/slice) dominates leakage, the L1s (7.4 mm^2) follow, and
// the metadata structures are tiny (0.017/0.095 mm^2 — the paper's <5%
// storage overhead).
func Default() Model {
	return Model{
		L1StaticPerCycle:  1.0,
		LLCStaticPerCycle: 1.8,
		PAMStaticPerCycle: 0.004,
		SAMStaticPerCycle: 0.02,

		L1AccessDynamic:  1.0,
		L1FillDynamic:    2.0,
		LLCAccessDynamic: 4.0,
		LLCFillDynamic:   8.0,
		NetPerByte:       0.08,
		PAMUpdateDynamic: 0.05,
		SAMLookupDynamic: 0.4,
		MemAccessDynamic: 40.0,
	}
}

// Breakdown is the computed energy of a run.
type Breakdown struct {
	Static  float64
	Dynamic float64
}

// Total returns static plus dynamic energy.
func (b Breakdown) Total() float64 { return b.Static + b.Dynamic }

// Compute derives the energy breakdown from a run's statistics. withMetadata
// selects whether the PAM/SAM structures exist (FSDetect/FSLite runs).
func (m Model) Compute(st *stats.Set, withMetadata bool) Breakdown {
	cycles := float64(st.Get(stats.CtrCycles))
	var b Breakdown
	b.Static = cycles * (m.L1StaticPerCycle + m.LLCStaticPerCycle)
	if withMetadata {
		b.Static += cycles * (m.PAMStaticPerCycle + m.SAMStaticPerCycle)
	}
	b.Dynamic = float64(st.Get(stats.CtrL1DAccesses))*m.L1AccessDynamic +
		float64(st.Get(stats.CtrL1DFills))*m.L1FillDynamic +
		float64(st.Get(stats.CtrLLCAccesses))*m.LLCAccessDynamic +
		float64(st.Get(stats.CtrLLCFills))*m.LLCFillDynamic +
		float64(st.Get(stats.CtrNetBytes))*m.NetPerByte +
		float64(st.Get(stats.CtrMemReads)+st.Get(stats.CtrMemWrites))*m.MemAccessDynamic
	if withMetadata {
		b.Dynamic += float64(st.Get(stats.CtrPAMUpdates))*m.PAMUpdateDynamic +
			float64(st.Get(stats.CtrSAMLookups))*m.SAMLookupDynamic
	}
	return b
}
