// Package cpu models the cores driving the simulated memory hierarchy.
//
// Simulated threads are ordinary Go functions (program-driven simulation):
// each runs in its own goroutine and talks to its core model through a
// strictly synchronous channel handshake, so the simulation stays fully
// deterministic. Two core models are provided: a blocking in-order core (the
// paper's FS-mode configuration) and a simplified 8-wide out-of-order core
// with non-blocking misses and wide commit (the §VIII-B OOO study).
package cpu

import (
	"encoding/binary"

	"fscoherence/internal/memsys"
)

// OpKind enumerates the operations a simulated thread can issue.
type OpKind int

const (
	OpCompute OpKind = iota // spend Cycles cycles of local computation
	OpLoad
	OpStore
	OpAtomic // atomic read-modify-write (returns the old value)
	OpPrefetch
	OpReduce // commutative accumulation into a declared reduction region
)

func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomic:
		return "atomic"
	case OpPrefetch:
		return "prefetch"
	case OpReduce:
		return "reduce"
	}
	return "?"
}

// AtomicFn computes the new value of an atomic RMW from the old one.
type AtomicFn func(old uint64) uint64

// Op is one operation of a simulated thread's dynamic instruction stream.
// Values are little-endian integers of Size bytes.
type Op struct {
	Kind   OpKind
	Addr   memsys.Addr
	Size   int
	Value  uint64   // store value; atomic add delta when Fn is nil
	Fn     AtomicFn // atomic update function; nil means old + Value (the alloc-free AtomicAdd encoding)
	Cycles uint64   // compute duration

	// Async marks a memory operation whose result the thread does not
	// consume. The out-of-order core overlaps async operations (up to its
	// window); the in-order core treats every operation as blocking.
	Async bool
}

// encodeLE converts v to a Size-byte little-endian slice.
func encodeLE(v uint64, size int) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	out := make([]byte, size)
	copy(out, buf[:size])
	return out
}

// decodeLE converts a little-endian slice to uint64.
func decodeLE(b []byte) uint64 {
	var buf [8]byte
	copy(buf[:], b)
	return binary.LittleEndian.Uint64(buf[:])
}
