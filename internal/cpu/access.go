package cpu

import (
	"fscoherence/internal/coherence"
)

// accessSlot is a reusable coherence.Access plus the operation context its
// callbacks need. The Done and RMW closures are allocated once per slot (at
// construction) and close only over the slot, and store/RMW payloads are
// encoded into an inline buffer, so issuing a memory operation performs no
// heap allocation. A slot may be reused as soon as its Done callback has
// fired: the L1 copies StoreData at the commit point and drops the Access
// when the transaction completes.
type accessSlot struct {
	op   Op
	ent  *robEntry // OOO bookkeeping (nil for the in-order core)
	sync bool      // OOO: thread consumes the result
	buf  [8]byte   // backing for StoreData / the RMW result
	acc  coherence.Access

	// fin receives the decoded result when the access commits; set once by
	// the owning core.
	fin func(v uint64, s *accessSlot)
}

// newAccessSlot builds a slot completing into fin. The two closures bound
// here are the only allocations a slot ever makes.
func newAccessSlot(fin func(uint64, *accessSlot)) *accessSlot {
	s := &accessSlot{fin: fin}
	s.acc.Done = func(v []byte) {
		switch s.op.Kind {
		case OpLoad, OpAtomic:
			s.fin(decodeLE(v), s)
		default:
			s.fin(0, s)
		}
	}
	s.acc.RMW = func(old []byte) []byte {
		v := decodeLE(old)
		if s.op.Fn != nil {
			v = s.op.Fn(v)
		} else {
			v += s.op.Value // nil Fn: the AtomicAdd encoding
		}
		return encodeInto(&s.buf, v, s.op.Size)
	}
	return s
}

// prepare populates the slot's Access for op and returns it. The RMW hook
// stays installed for every kind (Validate only requires it for atomics).
func (s *accessSlot) prepare(op Op) *coherence.Access {
	s.op = op
	a := &s.acc
	a.Addr = op.Addr
	a.Size = op.Size
	a.StoreData = nil
	a.Delta = 0
	switch op.Kind {
	case OpLoad:
		a.Kind = coherence.AccessLoad
	case OpStore:
		a.Kind = coherence.AccessStore
		a.StoreData = encodeInto(&s.buf, op.Value, op.Size)
	case OpAtomic:
		a.Kind = coherence.AccessAtomicRMW
	case OpPrefetch:
		a.Kind = coherence.AccessPrefetch
	case OpReduce:
		a.Kind = coherence.AccessReduce
		a.Delta = op.Value
	default:
		panic("cpu: bad op kind for access")
	}
	return a
}

// encodeInto writes v little-endian into the first size bytes of buf and
// returns that prefix.
func encodeInto(buf *[8]byte, v uint64, size int) []byte {
	for i := 0; i < size; i++ {
		buf[i] = byte(v)
		v >>= 8
	}
	return buf[:size]
}
