package cpu

import (
	"fmt"
	"iter"

	"fscoherence/internal/memsys"
)

// ThreadFunc is the body of a simulated thread. It issues memory operations
// through the Ctx; every call blocks (in simulated time) until the operation
// is accepted or completed by the core model.
type ThreadFunc func(ctx *Ctx)

// threadAborted is panicked inside a thread coroutine when the simulation
// shuts down early; the coroutine wrapper recovers it.
type threadAborted struct{}

// Ctx is a simulated thread's handle to its core. Its methods may only be
// called from the ThreadFunc.
//
// The handshake is a coroutine switch, not a channel handoff: do() yields the
// operation to the core model, which runs the thread's continuation (via
// threadRunner.next) only when it wants the next operation, after recording
// the previous result in res. Each simulated operation therefore costs two
// in-place stack switches instead of two scheduler round trips — the
// difference is the bulk of the simulator's wall-clock time on handshake-bound
// workloads.
type Ctx struct {
	id    int
	yield func(Op) bool
	res   uint64

	// Direct-apply warming mode (see InOrder.WarmRun): while warmSink is
	// set, the hot Ctx methods commit operations inline through it instead of
	// yielding, so a functional-warming quantum costs one coroutine round
	// trip instead of one per operation — and the hot methods (Load, Store,
	// AtomicAdd, Compute) never even build an Op, calling the sink's typed
	// methods directly (constructing and copying the 64-byte Op per warmed
	// commit used to dominate warming profiles). warmBudget counts the
	// operations left in the quantum; the op that finds it exhausted leaves
	// warm mode and yields normally, handing control back to the core model
	// unexecuted. warmOp is the scratch slot do() hands to ApplyOp by pointer
	// on the rare op kinds without a typed fast path.
	warmSink   WarmSink
	warmBudget uint64
	warmOp     Op
}

// WarmSink commits operations functionally — full architectural effect
// (caches, metadata, memory values, commit counters), no timing. The typed
// methods mirror the hot Ctx entry points so warming skips Op construction;
// ApplyOp is the generic path for boundary-held ops and the rarer kinds.
// Loads and atomics return the loaded (pre-RMW) value.
type WarmSink interface {
	Load(addr memsys.Addr, size int) uint64
	Store(addr memsys.Addr, size int, v uint64)
	AtomicAdd(addr memsys.Addr, size int, delta uint64) uint64
	Compute(n uint64)
	ApplyOp(op *Op) uint64
}

// warmTake consumes one unit of warm budget if warming is armed, leaving warm
// mode when the quantum is exhausted. It reports whether the caller should
// commit through the sink.
func (c *Ctx) warmTake() bool {
	if c.warmSink == nil {
		return false
	}
	if c.warmBudget == 0 {
		c.warmSink = nil
		return false
	}
	c.warmBudget--
	return true
}

// ID returns the thread's (== core's) index.
func (c *Ctx) ID() int { return c.id }

// do performs the synchronous handshake for one operation. In warm mode it
// commits through the sink's generic ApplyOp instead (via the warmOp scratch
// slot, so the op does not escape into a heap allocation).
func (c *Ctx) do(op Op) uint64 {
	if c.warmTake() {
		c.warmOp = op
		return c.warmSink.ApplyOp(&c.warmOp)
	}
	if !c.yield(op) {
		// The core stopped the coroutine: unwind the thread function.
		panic(threadAborted{})
	}
	return c.res
}

func checkSize(size int) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("cpu: bad access size %d", size))
	}
}

// Load reads a size-byte little-endian value and returns it.
func (c *Ctx) Load(addr memsys.Addr, size int) uint64 {
	checkSize(size)
	if c.warmTake() {
		return c.warmSink.Load(addr, size)
	}
	return c.do(Op{Kind: OpLoad, Addr: addr, Size: size})
}

// LoadAsync reads a value whose result the thread does not consume; the
// out-of-order core overlaps it with younger operations.
func (c *Ctx) LoadAsync(addr memsys.Addr, size int) {
	checkSize(size)
	c.do(Op{Kind: OpLoad, Addr: addr, Size: size, Async: true})
}

// Store writes a size-byte little-endian value.
func (c *Ctx) Store(addr memsys.Addr, size int, v uint64) {
	checkSize(size)
	if c.warmTake() {
		c.warmSink.Store(addr, size, v)
		return
	}
	c.do(Op{Kind: OpStore, Addr: addr, Size: size, Value: v, Async: true})
}

// StoreSync writes and waits for the store to commit (release semantics in
// the simple consistency model of the simulator).
func (c *Ctx) StoreSync(addr memsys.Addr, size int, v uint64) {
	checkSize(size)
	c.do(Op{Kind: OpStore, Addr: addr, Size: size, Value: v})
}

// AtomicRMW applies fn atomically and returns the old value.
func (c *Ctx) AtomicRMW(addr memsys.Addr, size int, fn AtomicFn) uint64 {
	checkSize(size)
	return c.do(Op{Kind: OpAtomic, Addr: addr, Size: size, Fn: fn})
}

// AtomicAdd atomically adds delta and returns the old value. Encoded as an
// atomic with a nil Fn and the delta in Value, so the hottest RMW needs no
// per-call closure allocation.
func (c *Ctx) AtomicAdd(addr memsys.Addr, size int, delta uint64) uint64 {
	checkSize(size)
	if c.warmTake() {
		return c.warmSink.AtomicAdd(addr, size, delta)
	}
	return c.do(Op{Kind: OpAtomic, Addr: addr, Size: size, Value: delta})
}

// TestAndSet atomically sets the location to 1 and returns the old value.
func (c *Ctx) TestAndSet(addr memsys.Addr, size int) uint64 {
	return c.AtomicRMW(addr, size, func(uint64) uint64 { return 1 })
}

// Reduce performs a commutative accumulation (+= delta) into a word of a
// declared reduction region (§VII). The operation is fire-and-forget; the
// exact sum is not observable until the region's privatized episodes merge.
// A load by a NON-participating core forces that merge (its byte check
// conflicts with the recorded reduction writers); a participant's own load
// may return its local partial value — the same contract as an OpenMP
// reduction variable before the reduction barrier.
func (c *Ctx) Reduce(addr memsys.Addr, size int, delta uint64) {
	checkSize(size)
	c.do(Op{Kind: OpReduce, Addr: addr, Size: size, Value: delta, Async: true})
}

// Compute spends n cycles of local computation.
func (c *Ctx) Compute(n uint64) {
	if n == 0 {
		return
	}
	if c.warmTake() {
		c.warmSink.Compute(n)
		return
	}
	c.do(Op{Kind: OpCompute, Cycles: n})
}

// Prefetch fetches the block containing addr without touching any byte.
func (c *Ctx) Prefetch(addr memsys.Addr) {
	c.do(Op{Kind: OpPrefetch, Addr: addr})
}

// ---------------------------------------------------------------------------
// Synchronization built from coherent atomics: these primitives generate real
// protocol traffic (and real true sharing on the lock words).
// ---------------------------------------------------------------------------

// LockAcquire spins on a test-and-test-and-set lock at addr (8 bytes).
func (c *Ctx) LockAcquire(addr memsys.Addr) {
	for {
		// Spin locally on the shared copy until the lock looks free.
		for c.Load(addr, 8) != 0 {
			c.Compute(4)
		}
		if c.TestAndSet(addr, 8) == 0 {
			return
		}
		c.Compute(8) // lost the race: back off briefly
	}
}

// LockRelease releases a lock acquired by LockAcquire.
func (c *Ctx) LockRelease(addr memsys.Addr) {
	c.StoreSync(addr, 8, 0)
}

// Barrier is a sense-reversing centralized barrier. CountAddr holds the
// arrival count and SenseAddr the global sense; both are 8-byte words.
type Barrier struct {
	CountAddr memsys.Addr
	SenseAddr memsys.Addr
	Threads   int
}

// Wait blocks the calling thread until all Threads threads arrive.
// localSense must start at 0 and is flipped on each use; the caller keeps it
// across invocations.
func (b *Barrier) Wait(c *Ctx, localSense *uint64) {
	*localSense ^= 1
	arrived := c.AtomicAdd(b.CountAddr, 8, 1)
	if int(arrived) == b.Threads-1 {
		// Both stores are synchronous: the count must be reset before the
		// sense release becomes visible, even on the out-of-order core.
		c.StoreSync(b.CountAddr, 8, 0)
		c.StoreSync(b.SenseAddr, 8, *localSense)
		return
	}
	for c.Load(b.SenseAddr, 8) != *localSense {
		c.Compute(4)
	}
}

// threadRunner owns the coroutine side of one thread. next, complete and stop
// may only be called from the simulation goroutine (iter.Pull's next/stop are
// not reentrant), which is also the discipline the core models follow.
type threadRunner struct {
	ctx     *Ctx
	nextOp  func() (Op, bool)
	stopFn  func()
	stopped bool
}

// startThread builds the coroutine running fn as a simulated thread for core
// id. The thread body does not start executing until the first next() call.
func startThread(id int, fn ThreadFunc) *threadRunner {
	ctx := &Ctx{id: id}
	next, stop := iter.Pull(func(yield func(Op) bool) {
		ctx.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(threadAborted); ok {
					return // simulation shut down early
				}
				panic(r)
			}
		}()
		fn(ctx)
	})
	return &threadRunner{ctx: ctx, nextOp: next, stopFn: stop}
}

// next resumes the thread and fetches its next operation; ok is false once
// the thread function returned (or the runner was stopped).
func (r *threadRunner) next() (Op, bool) {
	return r.nextOp()
}

// complete records the result of the previous operation; the thread observes
// it when next() resumes it.
func (r *threadRunner) complete(v uint64) {
	r.ctx.res = v
}

// stop terminates the thread coroutine: a thread parked mid-operation unwinds
// via threadAborted, releasing its goroutine. Idempotent; must be called from
// the simulation goroutine like next.
func (r *threadRunner) stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.stopFn()
}
