package cpu

import (
	"fscoherence/internal/coherence"
	"fscoherence/internal/stats"
)

// Core is a processor model driving one L1 controller.
type Core interface {
	// Tick advances the core one cycle.
	Tick(now uint64)
	// Finished reports whether the thread completed and all of the core's
	// operations retired.
	Finished() bool
}

// InOrder is the blocking in-order core of the paper's main configuration:
// one operation at a time, every memory operation blocks until it commits.
type InOrder struct {
	id     int
	l1     *coherence.L1
	runner *threadRunner
	stats  *stats.Set

	started   bool
	exhausted bool // thread function returned

	busyUntil uint64
	waiting   bool // a memory access is outstanding
	retryOp   *Op  // access rejected by the L1; retry each cycle
	cur       Op
	result    uint64
	haveOp    bool
}

// NewInOrder builds an in-order core running fn.
func NewInOrder(id int, l1 *coherence.L1, fn ThreadFunc, quit chan struct{}, st *stats.Set) *InOrder {
	return &InOrder{id: id, l1: l1, runner: startThread(id, fn, quit), stats: st}
}

// Finished reports thread completion.
func (c *InOrder) Finished() bool {
	return c.exhausted && !c.waiting && !c.haveOp
}

// Tick advances the core one cycle.
func (c *InOrder) Tick(now uint64) {
	if c.Finished() {
		return
	}
	if c.busyUntil > now {
		return // computing
	}
	if c.waiting {
		c.stats.Inc(stats.CtrStallCycles)
		if c.retryOp != nil {
			c.issue(now, *c.retryOp)
		}
		return
	}
	if !c.haveOp {
		if !c.fetch() {
			return
		}
	}
	op := c.cur
	c.haveOp = false
	c.stats.Inc(stats.CtrOpsCommitted)
	switch op.Kind {
	case OpCompute:
		c.stats.Add(stats.CtrComputeCycles, op.Cycles)
		c.busyUntil = now + op.Cycles
		c.runner.complete(0)
	default:
		c.waiting = true
		c.issue(now, op)
	}
}

// fetch pulls the next operation from the thread.
func (c *InOrder) fetch() bool {
	if c.exhausted {
		return false
	}
	op, ok := c.runner.next()
	if !ok {
		c.exhausted = true
		return false
	}
	c.cur = op
	c.haveOp = true
	return true
}

// issue submits a memory operation to the L1, handling rejection by retrying
// next cycle.
func (c *InOrder) issue(now uint64, op Op) {
	acc := buildAccess(op, func(v uint64) {
		c.waiting = false
		c.runner.complete(v)
	})
	res := c.l1.Submit(acc)
	if res == coherence.SubmitRetry {
		o := op
		c.retryOp = &o
		return
	}
	c.retryOp = nil
}

// buildAccess converts an Op into a coherence.Access whose Done callback
// invokes fin with the (decoded) result value.
func buildAccess(op Op, fin func(uint64)) *coherence.Access {
	switch op.Kind {
	case OpLoad:
		return &coherence.Access{
			Kind: coherence.AccessLoad, Addr: op.Addr, Size: op.Size,
			Done: func(v []byte) { fin(decodeLE(v)) },
		}
	case OpStore:
		return &coherence.Access{
			Kind: coherence.AccessStore, Addr: op.Addr, Size: op.Size,
			StoreData: encodeLE(op.Value, op.Size),
			Done:      func([]byte) { fin(0) },
		}
	case OpAtomic:
		fn := op.Fn
		size := op.Size
		return &coherence.Access{
			Kind: coherence.AccessAtomicRMW, Addr: op.Addr, Size: op.Size,
			RMW:  func(old []byte) []byte { return encodeLE(fn(decodeLE(old)), size) },
			Done: func(v []byte) { fin(decodeLE(v)) },
		}
	case OpPrefetch:
		return &coherence.Access{
			Kind: coherence.AccessPrefetch, Addr: op.Addr,
			Done: func([]byte) { fin(0) },
		}
	case OpReduce:
		return &coherence.Access{
			Kind: coherence.AccessReduce, Addr: op.Addr, Size: op.Size,
			Delta: op.Value,
			Done:  func([]byte) { fin(0) },
		}
	}
	panic("cpu: bad op kind for access")
}
