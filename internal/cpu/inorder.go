package cpu

import (
	"fscoherence/internal/coherence"
	"fscoherence/internal/stats"
)

// NoEvent is the NextEvent sentinel: the core has no self-driven wake-up and
// will only act again in response to an external event (a memory completion
// delivered through its L1).
const NoEvent = ^uint64(0)

// Core is a processor model driving one L1 controller.
type Core interface {
	// Tick advances the core one cycle.
	Tick(now uint64)
	// Finished reports whether the thread completed and all of the core's
	// operations retired.
	Finished() bool
	// NextEvent returns the earliest cycle > now at which the core might make
	// progress without external input, or NoEvent if it is blocked waiting on
	// its L1 (whose completions are covered by the L1's and the network's own
	// wake-up reports). Returning an earlier cycle than necessary is safe
	// (the engine just ticks an idle round); later is a correctness bug.
	NextEvent(now uint64) uint64
	// SkipIdle accounts for n consecutive cycles the engine fast-forwarded
	// over: the core must apply exactly the per-cycle bookkeeping (stall
	// counters) its Tick would have performed in each skipped cycle, so
	// counter snapshots stay byte-identical to the naive engine.
	SkipIdle(n uint64)
	// Stop terminates the core's thread coroutine; a thread parked
	// mid-operation unwinds cleanly. Must be called when a simulation ends
	// before its threads finish (deadlock, cycle guard, oracle failure).
	Stop()
}

// InOrder is the blocking in-order core of the paper's main configuration:
// one operation at a time, every memory operation blocks until it commits.
type InOrder struct {
	id     int
	l1     *coherence.L1
	runner *threadRunner
	stats  *stats.Set

	started   bool
	exhausted bool // thread function returned

	busyUntil uint64
	waiting   bool // a memory access is outstanding
	retry     bool // access rejected by the L1; retry each cycle
	hold      bool // issue held at a sampling window boundary (drain)
	cur       Op
	haveOp    bool

	// slot is the core's single reusable Access (one operation outstanding
	// at a time), so the issue path performs no heap allocation.
	slot *accessSlot

	// Checkpoint support (see snapshot.go): committed counts every operation
	// this core consumed (detailed and warmed); rec, when armed, logs the
	// values result-bearing ops observed so the thread can be replayed after
	// a restore. recSink is the preallocated recording wrapper WarmRun
	// installs around its sink while rec is armed.
	committed uint64
	rec       *OpRecorder
	recSink   recordSink
}

// NewInOrder builds an in-order core running fn.
func NewInOrder(id int, l1 *coherence.L1, fn ThreadFunc, st *stats.Set) *InOrder {
	c := &InOrder{id: id, l1: l1, runner: startThread(id, fn), stats: st}
	c.slot = newAccessSlot(c.finish)
	return c
}

// finish completes the outstanding access, unblocking the thread.
func (c *InOrder) finish(v uint64, _ *accessSlot) {
	c.waiting = false
	if c.rec != nil && resultBearing(c.slot.op.Kind, c.slot.op.Async) {
		c.rec.Log = append(c.rec.Log, v)
	}
	c.runner.complete(v)
}

// Stop terminates the thread coroutine (idempotent).
func (c *InOrder) Stop() { c.runner.stop() }

// Finished reports thread completion.
func (c *InOrder) Finished() bool {
	return c.exhausted && !c.waiting && !c.haveOp
}

// Tick advances the core one cycle.
func (c *InOrder) Tick(now uint64) {
	if c.Finished() {
		return
	}
	if c.busyUntil > now {
		return // computing
	}
	if c.waiting {
		c.stats.IncID(stats.IDStallCycles)
		if c.retry {
			c.retry = c.l1.Submit(&c.slot.acc) == coherence.SubmitRetry
		}
		return
	}
	if c.hold {
		return // draining at a sampling window boundary: no new issues
	}
	if !c.haveOp {
		if !c.fetch() {
			return
		}
	}
	op := c.cur
	c.haveOp = false
	c.committed++
	c.stats.IncID(stats.IDOpsCommitted)
	switch op.Kind {
	case OpCompute:
		c.stats.AddID(stats.IDComputeCycles, op.Cycles)
		c.busyUntil = now + op.Cycles
		c.runner.complete(0)
	default:
		c.waiting = true
		c.retry = c.l1.Submit(c.slot.prepare(op)) == coherence.SubmitRetry
	}
}

// NextEvent reports the in-order core's wake-up: the end of the current
// compute burst, the next cycle when an operation is ready to execute, or
// NoEvent while a memory access is outstanding. A rejected access (retry)
// also reports NoEvent: the L1 rejection can only clear in response to an
// external completion, and the per-cycle retry has no architectural or
// counter side effects until then.
func (c *InOrder) NextEvent(now uint64) uint64 {
	if c.Finished() {
		return NoEvent
	}
	if c.busyUntil > now {
		return c.busyUntil
	}
	if c.waiting || c.hold {
		return NoEvent
	}
	return now + 1
}

// HoldIssue gates the issue of new operations: while held, the core still
// retries and completes its outstanding access (counting stalls as usual) but
// fetches nothing new. The sampling scheduler holds all cores to drain the
// machine at a window boundary.
func (c *InOrder) HoldIssue(v bool) { c.hold = v }

// Outstanding reports whether a memory access is in flight (the drain
// condition: a held core is quiesced once this is false).
func (c *InOrder) Outstanding() bool { return c.waiting }

// WarmRun executes up to budget of the thread's operations functionally,
// committing each through sink, which must perform the full architectural
// effect — caches, metadata, memory values, commit counters — with no timing.
// Compute bursts are passed through the sink like every other operation.
//
// The quantum runs inside the thread coroutine (the hot Ctx methods commit
// inline while warm mode is armed), so it costs one coroutine round trip
// total instead of one per operation. The operation that exhausts the budget
// is yielded back unexecuted and held as the core's fetched op; the next
// WarmRun — or the detailed engine's Tick — executes it, so warming can stop
// and resume at any operation boundary. Returns the number of operations
// committed and whether the thread is still alive.
func (c *InOrder) WarmRun(sink WarmSink, budget uint64) (uint64, bool) {
	if c.rec != nil {
		c.recSink.inner, c.recSink.rec = sink, c.rec
		sink = &c.recSink
	}
	done, alive := c.warmRun(sink, budget)
	c.committed += done
	return done, alive
}

func (c *InOrder) warmRun(sink WarmSink, budget uint64) (uint64, bool) {
	if c.waiting {
		panic("cpu: WarmRun with an outstanding access (machine not drained)")
	}
	if c.Finished() || budget == 0 {
		return 0, !c.Finished()
	}
	var done uint64
	// A boundary-yielded op (fetched but not executed) commits first; its
	// result is delivered through the normal resume path.
	if c.haveOp {
		c.haveOp = false
		c.runner.complete(sink.ApplyOp(&c.cur))
		done++
		if done >= budget {
			return done, true
		}
	}
	if c.exhausted {
		return done, false
	}
	ctx := c.runner.ctx
	quantum := budget - done
	ctx.warmSink = sink
	ctx.warmBudget = quantum
	op, ok := c.runner.next()
	done += quantum - ctx.warmBudget
	ctx.warmSink = nil
	if !ok {
		c.exhausted = true
		return done, false
	}
	c.cur, c.haveOp = op, true
	return done, true
}

// SkipIdle applies the stall accounting of n skipped cycles. The engine only
// skips cycles in which Tick would have made no progress, so the naive loop
// would have counted one memory-stall cycle per skipped cycle iff an access
// was outstanding (a compute burst early-returns without counting).
func (c *InOrder) SkipIdle(n uint64) {
	if c.waiting {
		c.stats.AddID(stats.IDStallCycles, n)
	}
}

// fetch pulls the next operation from the thread.
func (c *InOrder) fetch() bool {
	if c.exhausted {
		return false
	}
	op, ok := c.runner.next()
	if !ok {
		c.exhausted = true
		return false
	}
	c.cur = op
	c.haveOp = true
	return true
}
