package cpu

import (
	"fmt"

	"fscoherence/internal/memsys"
)

// Checkpointing a thread: the coroutine's program counter and stack cannot be
// serialized, but they don't need to be. A thread function is deterministic
// given the sequence of values its result-bearing operations observed
// (synchronous loads and atomics — the only operations whose results the
// thread consumes; stores, prefetches, reduces, async loads and compute
// bursts return nothing it reads). The snapshot therefore records
//
//   - Committed: how many operations the thread has consumed, and
//   - Results:   the observed value of each result-bearing operation, in
//     commit order,
//
// and restore re-executes the thread function from the top in warm mode with
// a replay sink that answers each result-bearing operation from the log and
// performs no architectural work (caches, metadata and memory are restored
// separately from their own images). After exactly Committed operations the
// coroutine is parked at the identical program point — including all closure
// state such as workload RNG streams, which is rebuilt by the replay — and
// the core resumes byte-identically. Replay cost is proportional to ops
// committed so far, with zero simulated timing.
//
// A core holding a fetched-but-unissued op and a core about to fetch that op
// are observationally identical (Tick fetches and issues in the same cycle),
// so the snapshot does not distinguish them: replay always ends holding the
// next op (or with the thread exhausted), whichever state the original was
// in.

// OpRecorder accumulates the result log of one core's committed operations.
// It is armed via InOrder.SetRecorder when checkpointing is enabled; the
// detailed commit path and the warming path both append to it.
type OpRecorder struct {
	Log []uint64
}

// resultBearing reports whether the thread consumes the result of an op:
// synchronous loads and atomics only.
func resultBearing(kind OpKind, async bool) bool {
	return (kind == OpLoad && !async) || kind == OpAtomic
}

// recordSink wraps a WarmSink, appending result-bearing values to the
// recorder. It lives inside InOrder so arming it costs no allocation.
type recordSink struct {
	inner WarmSink
	rec   *OpRecorder
}

func (r *recordSink) Load(addr memsys.Addr, size int) uint64 {
	v := r.inner.Load(addr, size)
	r.rec.Log = append(r.rec.Log, v)
	return v
}

func (r *recordSink) Store(addr memsys.Addr, size int, v uint64) { r.inner.Store(addr, size, v) }

func (r *recordSink) AtomicAdd(addr memsys.Addr, size int, delta uint64) uint64 {
	v := r.inner.AtomicAdd(addr, size, delta)
	r.rec.Log = append(r.rec.Log, v)
	return v
}

func (r *recordSink) Compute(n uint64) { r.inner.Compute(n) }

func (r *recordSink) ApplyOp(op *Op) uint64 {
	v := r.inner.ApplyOp(op)
	if resultBearing(op.Kind, op.Async) {
		r.rec.Log = append(r.rec.Log, v)
	}
	return v
}

// replaySink answers result-bearing operations from a recorded log and
// performs no architectural work: machine state is restored from its own
// images, so replay only needs to steer the thread's control flow.
type replaySink struct {
	results []uint64
	pos     int
	short   bool // log exhausted before the replayed op count
}

func (r *replaySink) take() uint64 {
	if r.pos >= len(r.results) {
		r.short = true
		return 0
	}
	v := r.results[r.pos]
	r.pos++
	return v
}

func (r *replaySink) Load(addr memsys.Addr, size int) uint64     { return r.take() }
func (r *replaySink) Store(addr memsys.Addr, size int, v uint64) {}
func (r *replaySink) AtomicAdd(addr memsys.Addr, size int, delta uint64) uint64 {
	return r.take()
}
func (r *replaySink) Compute(n uint64) {}
func (r *replaySink) ApplyOp(op *Op) uint64 {
	if resultBearing(op.Kind, op.Async) {
		return r.take()
	}
	return 0
}

// ThreadImage is the serializable state of one in-order core and its thread.
type ThreadImage struct {
	Committed uint64   // operations consumed by the thread so far
	BusyUntil uint64   // end of an in-progress compute burst (may exceed the drain cycle)
	Results   []uint64 // values observed by result-bearing ops, in commit order
}

// SetRecorder arms result logging on the core. Must be armed from the first
// committed operation (or re-armed by RestoreThread) for snapshots to be
// complete.
func (c *InOrder) SetRecorder(r *OpRecorder) { c.rec = r }

// SnapshotThread captures the thread's replay state. The machine must be
// drained (no outstanding access).
func (c *InOrder) SnapshotThread() ThreadImage {
	if c.waiting {
		panic("cpu: SnapshotThread with an outstanding access (machine not drained)")
	}
	if c.rec == nil {
		panic("cpu: SnapshotThread without a recorder armed")
	}
	return ThreadImage{
		Committed: c.committed,
		BusyUntil: c.busyUntil,
		Results:   append([]uint64(nil), c.rec.Log...),
	}
}

// RestoreThread replays the thread function up to img.Committed operations,
// parking the coroutine at the exact program point of the snapshot. It must
// be called on a freshly constructed core whose thread has not started. The
// recorder (if armed) is re-seeded with the replayed log so subsequent
// snapshots stay complete.
func (c *InOrder) RestoreThread(img ThreadImage) error {
	if c.started || c.committed != 0 || c.haveOp || c.exhausted {
		return fmt.Errorf("cpu: RestoreThread on a core that already ran (core %d)", c.id)
	}
	rs := &replaySink{results: img.Results}
	if img.Committed > 0 {
		ctx := c.runner.ctx
		ctx.warmSink = rs
		ctx.warmBudget = img.Committed
		op, ok := c.runner.next()
		consumed := img.Committed - ctx.warmBudget
		ctx.warmSink = nil
		if !ok {
			c.exhausted = true
			if consumed != img.Committed {
				return fmt.Errorf("cpu: core %d thread ended after %d of %d replayed ops (checkpoint from a different workload?)", c.id, consumed, img.Committed)
			}
		} else {
			c.cur, c.haveOp = op, true
		}
		if rs.short {
			return fmt.Errorf("cpu: core %d result log exhausted at entry %d during replay", c.id, rs.pos)
		}
		if rs.pos != len(rs.results) {
			return fmt.Errorf("cpu: core %d replay consumed %d of %d logged results", c.id, rs.pos, len(rs.results))
		}
		c.started = true
	} else if len(img.Results) != 0 {
		return fmt.Errorf("cpu: core %d has %d logged results but zero committed ops", c.id, len(img.Results))
	}
	c.busyUntil = img.BusyUntil
	c.committed = img.Committed
	if c.rec != nil {
		c.rec.Log = append(c.rec.Log[:0], img.Results...)
	}
	return nil
}
