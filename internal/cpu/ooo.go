package cpu

import (
	"fscoherence/internal/coherence"
	"fscoherence/internal/stats"
)

// robEntry is one in-flight operation in the OOO core's reorder buffer.
type robEntry struct {
	op        Op
	done      bool
	computeAt uint64 // compute ops complete at this cycle
	isCompute bool
}

// OOO is a simplified wide out-of-order core (the §VIII-B study): it issues
// up to Width operations per cycle, keeps up to ROBSize in flight, overlaps
// compute and asynchronous memory operations with outstanding misses, and
// retires up to Width operations per cycle in order. A synchronous memory
// operation (whose value the thread consumes) stalls further fetch until its
// value returns, modelling a true data dependence.
type OOO struct {
	id     int
	l1     *coherence.L1
	runner *threadRunner
	stats  *stats.Set

	width   int
	robSize int

	rob       []*robEntry
	nextOp    *Op
	opBuf     Op // backing for nextOp (avoids a per-fetch allocation)
	exhausted bool

	// free and entFree pool access slots and ROB entries (bounded by the
	// ROB capacity), keeping the issue path allocation-free in steady state.
	free    []*accessSlot
	entFree []*robEntry

	// submitBlocked records that the last Tick's issue loop ended on an L1
	// Submit rejection. The rejection can only clear through an external
	// event (a completion or message at the L1), so while it stands the core
	// reports no self-driven wake-up. Tick clears it before reissuing.
	submitBlocked bool
}

// NewOOO builds an out-of-order core with the given issue/commit width and
// reorder-buffer capacity, running fn. The L1 should be configured with a
// matching number of MSHRs.
func NewOOO(id int, l1 *coherence.L1, fn ThreadFunc, width, robSize int, st *stats.Set) *OOO {
	c := &OOO{id: id, l1: l1, runner: startThread(id, fn), stats: st, width: width, robSize: robSize}
	c.refill(0, true)
	return c
}

// Stop terminates the thread coroutine (idempotent).
func (c *OOO) Stop() { c.runner.stop() }

// getSlot takes an access slot from the pool, growing it if needed.
func (c *OOO) getSlot() *accessSlot {
	if n := len(c.free); n > 0 {
		s := c.free[n-1]
		c.free = c.free[:n-1]
		return s
	}
	return newAccessSlot(c.finish)
}

// finish completes a memory operation: marks its ROB entry done, recycles the
// slot and, for synchronous operations, resumes the thread with the value.
func (c *OOO) finish(v uint64, s *accessSlot) {
	s.ent.done = true
	sync := s.sync
	s.ent = nil
	c.free = append(c.free, s)
	if sync {
		c.refill(v, false)
	}
}

// getEnt takes a ROB entry from the pool, growing it if needed.
func (c *OOO) getEnt() *robEntry {
	if n := len(c.entFree); n > 0 {
		e := c.entFree[n-1]
		c.entFree = c.entFree[:n-1]
		*e = robEntry{}
		return e
	}
	return &robEntry{}
}

// refill obtains the thread's next operation into the single-op fetch buffer.
// When first is true no completion is owed (initial fetch).
func (c *OOO) refill(v uint64, first bool) {
	if c.exhausted {
		return
	}
	if !first {
		c.runner.complete(v)
	}
	op, ok := c.runner.next()
	if !ok {
		c.exhausted = true
		c.nextOp = nil
		return
	}
	c.opBuf = op
	c.nextOp = &c.opBuf
}

// Finished reports whether the thread completed and the ROB drained.
func (c *OOO) Finished() bool {
	return c.exhausted && len(c.rob) == 0 && c.nextOp == nil
}

// Tick retires completed head entries, then issues new operations.
func (c *OOO) Tick(now uint64) {
	if c.Finished() {
		return
	}
	c.submitBlocked = false

	// Retire in order, up to the commit width.
	retired := 0
	for retired < c.width && len(c.rob) > 0 {
		head := c.rob[0]
		if head.isCompute {
			if head.computeAt > now {
				break
			}
		} else if !head.done {
			break
		}
		c.rob = c.rob[1:]
		retired++
		c.stats.IncID(stats.IDOpsCommitted)
		c.entFree = append(c.entFree, head)
	}
	if retired == 0 && len(c.rob) > 0 {
		c.stats.IncID(stats.IDCommitStalls)
	}

	// Issue up to the issue width.
	for issued := 0; issued < c.width; issued++ {
		if c.nextOp == nil || len(c.rob) >= c.robSize {
			return
		}
		op := *c.nextOp
		switch op.Kind {
		case OpCompute:
			ent := c.getEnt()
			ent.op = op
			ent.isCompute = true
			ent.computeAt = now + op.Cycles
			c.rob = append(c.rob, ent)
			c.stats.AddID(stats.IDComputeCycles, op.Cycles)
			c.refill(0, false)
		default:
			// Synchronous means the thread consumes the result (a true data
			// dependence): plain loads, atomics, and synchronizing stores.
			// Async loads/stores and prefetches are fire-and-forget.
			sync := (op.Kind == OpLoad && !op.Async) || op.Kind == OpAtomic || (op.Kind == OpStore && !op.Async)
			s := c.getSlot()
			s.sync = sync
			acc := s.prepare(op)
			if c.l1.Submit(acc) == coherence.SubmitRetry {
				c.free = append(c.free, s)
				c.submitBlocked = true
				return // head-of-line: retry next cycle
			}
			ent := c.getEnt()
			ent.op = op
			s.ent = ent
			c.rob = append(c.rob, ent)
			if sync {
				c.nextOp = nil // refilled when the value returns
			} else {
				c.refill(0, false)
			}
		}
	}
}

// NextEvent reports the OOO core's wake-up: the next cycle if the ROB head
// can retire or a buffered operation can issue, the head compute burst's
// completion cycle otherwise, and NoEvent when every path forward waits on an
// external memory completion (including a Submit-rejected head-of-line
// operation, whose rejection only clears through L1 activity).
func (c *OOO) NextEvent(now uint64) uint64 {
	if c.Finished() {
		return NoEvent
	}
	next := uint64(NoEvent)
	if len(c.rob) > 0 {
		head := c.rob[0]
		if head.isCompute {
			if head.computeAt <= now {
				return now + 1 // retire was width-limited this cycle
			}
			next = head.computeAt
		} else if head.done {
			return now + 1
		}
	}
	if c.nextOp != nil && len(c.rob) < c.robSize && !c.submitBlocked {
		return now + 1
	}
	return next
}

// SkipIdle applies the commit-stall accounting of n skipped cycles: in every
// cycle the engine skipped, Tick would have retired nothing (the skip
// happens only when no retirement is possible) and counted one commit stall
// iff the ROB was non-empty.
func (c *OOO) SkipIdle(n uint64) {
	if len(c.rob) > 0 {
		c.stats.AddID(stats.IDCommitStalls, n)
	}
}
