package cpu

import (
	"fscoherence/internal/coherence"
	"fscoherence/internal/stats"
)

// robEntry is one in-flight operation in the OOO core's reorder buffer.
type robEntry struct {
	op        Op
	done      bool
	computeAt uint64 // compute ops complete at this cycle
	isCompute bool
}

// OOO is a simplified wide out-of-order core (the §VIII-B study): it issues
// up to Width operations per cycle, keeps up to ROBSize in flight, overlaps
// compute and asynchronous memory operations with outstanding misses, and
// retires up to Width operations per cycle in order. A synchronous memory
// operation (whose value the thread consumes) stalls further fetch until its
// value returns, modelling a true data dependence.
type OOO struct {
	id     int
	l1     *coherence.L1
	runner *threadRunner
	stats  *stats.Set

	width   int
	robSize int

	rob       []*robEntry
	nextOp    *Op
	exhausted bool
}

// NewOOO builds an out-of-order core with the given issue/commit width and
// reorder-buffer capacity, running fn. The L1 should be configured with a
// matching number of MSHRs.
func NewOOO(id int, l1 *coherence.L1, fn ThreadFunc, quit chan struct{}, width, robSize int, st *stats.Set) *OOO {
	c := &OOO{id: id, l1: l1, runner: startThread(id, fn, quit), stats: st, width: width, robSize: robSize}
	c.refill(0, true)
	return c
}

// refill obtains the thread's next operation into the single-op fetch buffer.
// When first is true no completion is owed (initial fetch).
func (c *OOO) refill(v uint64, first bool) {
	if c.exhausted {
		return
	}
	if !first {
		c.runner.complete(v)
	}
	op, ok := c.runner.next()
	if !ok {
		c.exhausted = true
		c.nextOp = nil
		return
	}
	c.nextOp = &op
}

// Finished reports whether the thread completed and the ROB drained.
func (c *OOO) Finished() bool {
	return c.exhausted && len(c.rob) == 0 && c.nextOp == nil
}

// Tick retires completed head entries, then issues new operations.
func (c *OOO) Tick(now uint64) {
	if c.Finished() {
		return
	}

	// Retire in order, up to the commit width.
	retired := 0
	for retired < c.width && len(c.rob) > 0 {
		head := c.rob[0]
		if head.isCompute {
			if head.computeAt > now {
				break
			}
		} else if !head.done {
			break
		}
		c.rob = c.rob[1:]
		retired++
		c.stats.Inc(stats.CtrOpsCommitted)
	}
	if retired == 0 && len(c.rob) > 0 {
		c.stats.Inc(stats.CtrCommitStalls)
	}

	// Issue up to the issue width.
	for issued := 0; issued < c.width; issued++ {
		if c.nextOp == nil || len(c.rob) >= c.robSize {
			return
		}
		op := *c.nextOp
		switch op.Kind {
		case OpCompute:
			c.rob = append(c.rob, &robEntry{op: op, isCompute: true, computeAt: now + op.Cycles})
			c.stats.Add(stats.CtrComputeCycles, op.Cycles)
			c.refill(0, false)
		default:
			ent := &robEntry{op: op}
			// Synchronous means the thread consumes the result (a true data
			// dependence): plain loads, atomics, and synchronizing stores.
			// Async loads/stores and prefetches are fire-and-forget.
			sync := (op.Kind == OpLoad && !op.Async) || op.Kind == OpAtomic || (op.Kind == OpStore && !op.Async)
			acc := buildAccess(op, func(v uint64) {
				ent.done = true
				if sync {
					c.refill(v, false)
				}
			})
			if c.l1.Submit(acc) == coherence.SubmitRetry {
				return // head-of-line: retry next cycle
			}
			c.rob = append(c.rob, ent)
			if sync {
				c.nextOp = nil // refilled when the value returns
			} else {
				c.refill(0, false)
			}
		}
	}
}
