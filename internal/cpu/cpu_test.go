package cpu_test

import (
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/stats"
)

// rig is a minimal system (cores + L1s + one directory slice) for driving
// the core models directly.
type rig struct {
	t     *testing.T
	st    *stats.Set
	net   *network.Network
	l1s   []*coherence.L1
	dir   *coherence.Dir
	cores []cpu.Core
	cycle uint64
}

func newRig(t *testing.T, n int, ooo bool, fns []cpu.ThreadFunc) *rig {
	p := coherence.DefaultParams()
	p.Cores = n
	p.Slices = 1
	st := stats.NewSet()
	r := &rig{t: t, st: st,
		net: network.New(p.Nodes(), p.NetLatency, p.BlockSize, st),
	}
	mem := memsys.NewMemory(p.BlockSize)
	r.dir = coherence.NewDir(0, p, coherence.Baseline, r.net, mem, nil, st)
	for i := 0; i < n; i++ {
		l1 := coherence.NewL1(i, p, coherence.Baseline, r.net, nil, st, nil)
		if ooo {
			l1.SetMaxMSHRs(8)
		}
		r.l1s = append(r.l1s, l1)
		if ooo {
			r.cores = append(r.cores, cpu.NewOOO(i, l1, fns[i], 8, 64, st))
		} else {
			r.cores = append(r.cores, cpu.NewInOrder(i, l1, fns[i], st))
		}
	}
	return r
}

func (r *rig) run(maxCycles int) uint64 {
	r.t.Helper()
	defer func() {
		for _, c := range r.cores {
			c.Stop()
		}
	}()
	for i := 0; i < maxCycles; i++ {
		r.cycle++
		r.net.SetCycle(r.cycle)
		r.dir.Tick(r.cycle)
		for _, l := range r.l1s {
			l.Tick(r.cycle)
		}
		for _, c := range r.cores {
			c.Tick(r.cycle)
		}
		done := true
		for _, c := range r.cores {
			if !c.Finished() {
				done = false
			}
		}
		if done && r.net.Pending() == 0 {
			return r.cycle
		}
	}
	r.t.Fatal("rig did not finish")
	return 0
}

const base = memsys.Addr(0x8000)

func TestInOrderLoadStoreRoundTrip(t *testing.T) {
	var got, sizes uint64
	fns := []cpu.ThreadFunc{func(c *cpu.Ctx) {
		c.Store(base, 8, 0xdeadbeefcafe)
		got = c.Load(base, 8)
		// Sub-word accesses see the little-endian bytes.
		sizes = c.Load(base, 2)
	}}
	newRig(t, 1, false, fns).run(100000)
	if got != 0xdeadbeefcafe {
		t.Fatalf("round trip = %#x", got)
	}
	if sizes != 0xcafe {
		t.Fatalf("2-byte load = %#x", sizes)
	}
}

func TestAtomicReturnsOldValue(t *testing.T) {
	var old1, old2, final uint64
	fns := []cpu.ThreadFunc{func(c *cpu.Ctx) {
		old1 = c.AtomicAdd(base, 8, 5)
		old2 = c.AtomicAdd(base, 8, 3)
		final = c.Load(base, 8)
	}}
	newRig(t, 1, false, fns).run(100000)
	if old1 != 0 || old2 != 5 || final != 8 {
		t.Fatalf("old1=%d old2=%d final=%d", old1, old2, final)
	}
}

func TestTestAndSetSemantics(t *testing.T) {
	var first, second uint64
	fns := []cpu.ThreadFunc{func(c *cpu.Ctx) {
		first = c.TestAndSet(base, 8)
		second = c.TestAndSet(base, 8)
	}}
	newRig(t, 1, false, fns).run(100000)
	if first != 0 || second != 1 {
		t.Fatalf("TAS returned %d then %d", first, second)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// Two threads increment a counter 50 times each under a lock; without
	// mutual exclusion increments would be lost.
	lock, counter := base, base+64
	mk := func() cpu.ThreadFunc {
		return func(c *cpu.Ctx) {
			for i := 0; i < 50; i++ {
				c.LockAcquire(lock)
				v := c.Load(counter, 8)
				c.Compute(2)
				c.StoreSync(counter, 8, v+1)
				c.LockRelease(lock)
			}
		}
	}
	var final uint64
	fns := []cpu.ThreadFunc{mk(), func(c *cpu.Ctx) {
		mk()(c)
		// This thread finishes last in program order only for itself, so
		// read after acquiring the lock once more.
		c.LockAcquire(lock)
		final = c.Load(counter, 8)
		c.LockRelease(lock)
	}}
	newRig(t, 2, false, fns).run(3_000_000)
	if final < 100 {
		t.Fatalf("counter = %d, want >= 100 (lost updates)", final)
	}
}

func TestBarrierRendezvous(t *testing.T) {
	bar := &cpu.Barrier{CountAddr: base, SenseAddr: base + 8, Threads: 3}
	flags := base + 128
	var seen [3]uint64
	mk := func(id int) cpu.ThreadFunc {
		return func(c *cpu.Ctx) {
			var sense uint64
			c.Compute(uint64(50 * id)) // desynchronize arrivals
			c.StoreSync(flags+memsys.Addr(8*id), 8, 1)
			bar.Wait(c, &sense)
			// After the barrier every flag must be visible.
			var sum uint64
			for j := 0; j < 3; j++ {
				sum += c.Load(flags+memsys.Addr(8*j), 8)
			}
			seen[id] = sum
			bar.Wait(c, &sense) // reusable (sense reversal)
		}
	}
	newRig(t, 3, false, []cpu.ThreadFunc{mk(0), mk(1), mk(2)}).run(3_000_000)
	for id, s := range seen {
		if s != 3 {
			t.Fatalf("thread %d saw %d flags after barrier", id, s)
		}
	}
}

func TestComputeConsumesCycles(t *testing.T) {
	short := newRig(t, 1, false, []cpu.ThreadFunc{func(c *cpu.Ctx) { c.Compute(10) }}).run(100000)
	long := newRig(t, 1, false, []cpu.ThreadFunc{func(c *cpu.Ctx) { c.Compute(5000) }}).run(100000)
	if long < short+4000 {
		t.Fatalf("compute not modelled: short=%d long=%d", short, long)
	}
}

func TestOOOOverlapsAsyncStores(t *testing.T) {
	mk := func() cpu.ThreadFunc {
		return func(c *cpu.Ctx) {
			for i := 0; i < 60; i++ {
				c.Store(base+memsys.Addr(i*64), 8, uint64(i)) // async
			}
		}
	}
	in := newRig(t, 1, false, []cpu.ThreadFunc{mk()}).run(3_000_000)
	ooo := newRig(t, 1, true, []cpu.ThreadFunc{mk()}).run(3_000_000)
	if ooo*3 > in {
		t.Fatalf("OOO %d vs in-order %d: expected >3x overlap", ooo, in)
	}
}

func TestOOORespectsDataDependences(t *testing.T) {
	// A sync load's value feeds the next op: the OOO core must stall fetch
	// until the value returns, so the final chain is still correct.
	var sum uint64
	fns := []cpu.ThreadFunc{func(c *cpu.Ctx) {
		c.StoreSync(base, 8, 10)
		v := c.Load(base, 8)
		c.StoreSync(base+8, 8, v*2)
		sum = c.Load(base+8, 8)
	}}
	newRig(t, 1, true, fns).run(100000)
	if sum != 20 {
		t.Fatalf("dependent chain = %d", sum)
	}
}

func TestOOOCommitStallAccounting(t *testing.T) {
	r := newRig(t, 1, true, []cpu.ThreadFunc{func(c *cpu.Ctx) {
		for i := 0; i < 20; i++ {
			c.Load(base+memsys.Addr(i*0x1000), 8) // dependent misses
		}
	}})
	r.run(1_000_000)
	if r.st.Get(stats.CtrCommitStalls) == 0 {
		t.Fatal("commit stalls not accounted")
	}
}

func TestThreadAbortOnStop(t *testing.T) {
	// A thread parked mid-handshake must unwind cleanly when the simulation
	// shuts down early (no goroutine leak, no panic escape).
	p := coherence.DefaultParams()
	p.Cores = 1
	p.Slices = 1
	st := stats.NewSet()
	net := network.New(p.Nodes(), p.NetLatency, p.BlockSize, st)
	l1 := coherence.NewL1(0, p, coherence.Baseline, net, nil, st, nil)
	core := cpu.NewInOrder(0, l1, func(c *cpu.Ctx) {
		for i := 0; ; i++ {
			c.Compute(1) // infinite thread
		}
	}, st)
	for i := uint64(1); i < 100; i++ {
		net.SetCycle(i)
		core.Tick(i)
	}
	core.Stop() // must not deadlock or panic
	core.Stop() // idempotent
	if core.Finished() {
		t.Fatal("infinite thread cannot be finished")
	}
}
