package network

import (
	"fmt"
	"testing"
	"testing/quick"

	"fscoherence/internal/memsys"
)

// TestMeshHopCounts pins dimension-ordered XY distances on a 4x4 tiled mesh:
// core i and slice i share router i, routers number row-major.
func TestMeshHopCounts(t *testing.T) {
	n, _ := newNet(32, 12)
	n.SetTopology(TopoMesh, 4, 16)
	cases := []struct {
		src, dst NodeID
		hops     int
	}{
		{0, 16, 1}, // core 0 -> slice 0: co-located, router-local link
		{0, 1, 1},  // (0,0) -> (1,0)
		{0, 3, 3},  // across the top row
		{0, 12, 3}, // down the left column
		{0, 15, 6}, // corner to corner: 3 east + 3 south
		{5, 10, 2}, // (1,1) -> (2,2)
		{3, 12, 6}, // opposite corners
		{0, 31, 6}, // core 0 -> slice 15: same router as core 15
		{15, 0, 6}, // reverse of corner-to-corner
	}
	for _, c := range cases {
		if got := n.HopCount(c.src, c.dst); got != c.hops {
			t.Errorf("HopCount(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

// TestRingHopCounts pins shortest-way routing on an 8-router ring.
func TestRingHopCounts(t *testing.T) {
	n, _ := newNet(16, 12)
	n.SetTopology(TopoRing, 4, 8)
	cases := []struct {
		src, dst NodeID
		hops     int
	}{
		{0, 8, 1}, // co-located core/slice
		{0, 1, 1},
		{0, 4, 4}, // antipodal: either way is 4
		{0, 7, 1}, // counter-clockwise shortcut
		{1, 6, 3}, // counter-clockwise
		{6, 1, 3}, // clockwise
	}
	for _, c := range cases {
		if got := n.HopCount(c.src, c.dst); got != c.hops {
			t.Errorf("HopCount(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

// TestPerHopLatencyAccumulation checks a control message's delivery cycle is
// exactly hops x hopLatency on an uncontended mesh — not the flat fabric's
// fixed latency — and that hop statistics accumulate.
func TestPerHopLatencyAccumulation(t *testing.T) {
	n, st := newNet(32, 12)
	const hop = 5
	n.SetTopology(TopoMesh, hop, 16)
	n.SetCycle(100)
	n.Send(&Msg{Op: OpInv, Src: 0, Dst: 15, Addr: 0x40}) // 6 hops
	want := uint64(100 + 6*hop)                          // control: 1 flit, no serialization tail
	for c := uint64(100); c < want; c++ {
		n.SetCycle(c)
		if n.Recv(15) != nil {
			t.Fatalf("message delivered early at cycle %d (want %d)", c, want)
		}
	}
	n.SetCycle(want)
	if n.Recv(15) == nil {
		t.Fatalf("message not delivered at cycle %d", want)
	}
	if got := st.Snapshot()["net.hops"]; got != 6 {
		t.Errorf("net.hops = %d, want 6", got)
	}
}

// TestLinkContentionQueuing sends two data messages across the same first
// link in the same cycle: the second must wait for the first's flits to clear
// the link, and the wait must be visible in net.link_wait.
func TestLinkContentionQueuing(t *testing.T) {
	n, st := newNet(32, 12)
	n.SetTopology(TopoMesh, 4, 16)
	n.SetCycle(0)
	// Data messages: 8+64 bytes -> serialization 4 -> 5 flits each.
	n.Send(&Msg{Op: OpData, Src: 0, Dst: 3, Addr: 0x40})
	n.Send(&Msg{Op: OpData, Src: 0, Dst: 3, Addr: 0x80})
	first, second := recvAt(n, 3), recvAt(n, 3)
	// First: 3 hops x 4 + 4 tail flits = cycle 16. Second: waits 5 cycles at
	// every link behind the first's reservation.
	if first != 16 {
		t.Errorf("first data message arrived at %d, want 16", first)
	}
	if second != first+5 {
		t.Errorf("second data message arrived at %d, want %d (5-flit link wait)", second, first+5)
	}
	if st.Snapshot()["net.link_wait"] == 0 {
		t.Error("net.link_wait not accumulated under contention")
	}
}

// recvAt advances the network cycle until dst receives a message and returns
// that cycle.
func recvAt(n *Network, dst NodeID) uint64 {
	for c := uint64(0); c < 100000; c++ {
		n.SetCycle(c)
		if n.Recv(dst) != nil {
			return c
		}
	}
	panic("no delivery within bound")
}

// TestTopologyFIFOPreserved is the FIFO property test: on any topology, for
// any interleaving of sends, messages on the same (src, dst, class) virtual
// channel are delivered in send order — the PROTOCOL.md contract that both
// the coherence protocol's races and the parallel engine's lookahead rely on.
func TestTopologyFIFOPreserved(t *testing.T) {
	for _, kind := range []TopoKind{TopoFlat, TopoRing, TopoMesh} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			prop := func(seed int64) bool { return fifoHolds(kind, seed) }
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// memsysAddr tags a message with a unique block address so deliveries can be
// matched back to their send order.
func memsysAddr(tag uint64) memsys.Addr { return memsys.Addr(tag * 64) }

// fifoHolds drives a random burst of sends over an 8-core/8-slice fabric and
// checks per-channel delivery order against send order.
func fifoHolds(kind TopoKind, seed int64) bool {
	n, _ := newNet(16, 12)
	if kind != TopoFlat {
		n.SetTopology(kind, 3, 8)
	}
	rng := seed
	next := func(mod int64) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := (rng >> 33) % mod
		if v < 0 {
			v += mod
		}
		return int(v)
	}
	ops := []Op{OpGetS, OpInv, OpData, OpRepMD}
	type key struct {
		src, dst NodeID
		class    Class
	}
	sent := map[key][]uint64{}
	var tag uint64
	for c := uint64(0); c < 40; c++ {
		n.SetCycle(c)
		for i := 0; i < next(4); i++ {
			src := NodeID(next(16))
			dst := NodeID(next(16))
			op := ops[next(int64(len(ops)))]
			tag++
			n.Send(&Msg{Op: op, Src: src, Dst: dst, Addr: memsysAddr(tag)})
			k := key{src, dst, ClassOf(op)}
			sent[k] = append(sent[k], tag)
		}
	}
	got := map[key][]uint64{}
	for c := uint64(0); c < 4000; c++ {
		n.SetCycle(c)
		for d := NodeID(0); d < 16; d++ {
			for {
				m := n.Recv(d)
				if m == nil {
					break
				}
				k := key{m.Src, m.Dst, ClassOf(m.Op)}
				got[k] = append(got[k], uint64(m.Addr)/64)
			}
		}
	}
	for k, want := range sent {
		g := got[k]
		if fmt.Sprint(g) != fmt.Sprint(want) {
			return false
		}
	}
	return true
}
