package network

import (
	"testing"
	"testing/quick"

	"fscoherence/internal/stats"
)

func newNet(nodes int, latency uint64) (*Network, *stats.Set) {
	st := stats.NewSet()
	return New(nodes, latency, 64, st), st
}

func TestLatencyRespected(t *testing.T) {
	n, _ := newNet(2, 10)
	n.SetCycle(100)
	n.Send(&Msg{Op: OpGetS, Src: 0, Dst: 1, Addr: 0x40})
	for c := uint64(100); c < 110; c++ {
		n.SetCycle(c)
		if n.Recv(1) != nil {
			t.Fatalf("message delivered early at cycle %d", c)
		}
	}
	n.SetCycle(110)
	m := n.Recv(1)
	if m == nil || m.Op != OpGetS {
		t.Fatal("message not delivered at latency boundary")
	}
	if n.Recv(1) != nil {
		t.Fatal("duplicate delivery")
	}
}

func TestFIFOOrderPerDestination(t *testing.T) {
	n, _ := newNet(3, 5)
	n.SetCycle(0)
	n.Send(&Msg{Op: OpGetS, Src: 0, Dst: 2, Addr: 0x40})
	n.Send(&Msg{Op: OpGetX, Src: 1, Dst: 2, Addr: 0x80})
	n.SetCycle(2)
	n.Send(&Msg{Op: OpInv, Src: 0, Dst: 2, Addr: 0xc0})
	n.SetCycle(6)
	if m := n.Recv(2); m == nil || m.Op != OpGetS {
		t.Fatalf("first delivery wrong: %v", m)
	}
	if m := n.Recv(2); m == nil || m.Op != OpGetX {
		t.Fatalf("second delivery wrong: %v", m)
	}
	if n.Recv(2) != nil {
		t.Fatal("third message should not be ready yet")
	}
	n.SetCycle(7)
	if m := n.Recv(2); m == nil || m.Op != OpInv {
		t.Fatalf("third delivery wrong: %v", m)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	n, _ := newNet(2, 1)
	n.SetCycle(0)
	n.Send(&Msg{Op: OpInv, Dst: 1})
	n.SetCycle(1)
	if n.Peek(1) == nil || n.Peek(1) == nil {
		t.Fatal("peek consumed the message")
	}
	if n.Recv(1) == nil {
		t.Fatal("recv after peek failed")
	}
}

func TestControlOvertakesData(t *testing.T) {
	// A 72-byte data message sent first is overtaken by an 8-byte control
	// message sent one cycle later: this models separate virtual networks and
	// enables the paper's §V-E protocol races.
	n, _ := newNet(2, 10)
	n.SetCycle(0)
	n.Send(&Msg{Op: OpDataPrv, Dst: 1, Data: make([]byte, 64)}) // ready at 14
	n.SetCycle(1)
	n.Send(&Msg{Op: OpInvPrv, Dst: 1}) // ready at 11
	n.SetCycle(11)
	if m := n.Recv(1); m == nil || m.Op != OpInvPrv {
		t.Fatalf("control should arrive first, got %v", m)
	}
	n.SetCycle(14)
	if m := n.Recv(1); m == nil || m.Op != OpDataPrv {
		t.Fatalf("data should arrive second, got %v", m)
	}
}

func TestSendAfterDelaysDelivery(t *testing.T) {
	n, _ := newNet(2, 5)
	n.SetCycle(0)
	n.SendAfter(&Msg{Op: OpInv, Dst: 1}, 3)
	n.SetCycle(7)
	if n.Recv(1) != nil {
		t.Fatal("delivered before source-side delay elapsed")
	}
	n.SetCycle(8)
	if n.Recv(1) == nil {
		t.Fatal("not delivered after latency+extra")
	}
}

func TestPendingCounts(t *testing.T) {
	n, _ := newNet(3, 4)
	n.SetCycle(0)
	n.Send(&Msg{Op: OpInv, Dst: 1})
	n.Send(&Msg{Op: OpInv, Dst: 2})
	n.Send(&Msg{Op: OpInv, Dst: 2})
	if n.Pending() != 3 || n.PendingFor(2) != 2 || n.PendingFor(1) != 1 || n.PendingFor(0) != 0 {
		t.Fatalf("pending=%d for2=%d", n.Pending(), n.PendingFor(2))
	}
}

func TestTrafficAccounting(t *testing.T) {
	n, st := newNet(2, 1)
	n.SetCycle(0)
	n.Send(&Msg{Op: OpGetS, Dst: 1})                         // request: 8B
	n.Send(&Msg{Op: OpData, Dst: 1, Data: make([]byte, 64)}) // data: 72B
	n.Send(&Msg{Op: OpRepMD, Dst: 1})                        // metadata: 24B
	n.Send(&Msg{Op: OpMDPhantom, Dst: 1})                    // metadata hdr-only: 8B
	n.Send(&Msg{Op: OpInv, Dst: 1})                          // control: 8B
	if got := st.Get(stats.CtrNetMessages); got != 5 {
		t.Fatalf("messages = %d", got)
	}
	if got := st.Get(stats.CtrNetBytes); got != 8+72+24+8+8 {
		t.Fatalf("bytes = %d", got)
	}
	if st.Get("net.msg.request") != 1 || st.Get("net.msg.data") != 1 ||
		st.Get("net.msg.metadata") != 2 || st.Get("net.msg.control") != 1 {
		t.Fatalf("class breakdown wrong: %v", st.Snapshot())
	}
	if st.Get("net.op.GetS") != 1 {
		t.Fatal("per-op counter missing")
	}
}

func TestBadDestinationPanics(t *testing.T) {
	n, _ := newNet(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("send to invalid node should panic")
		}
	}()
	n.Send(&Msg{Op: OpGetS, Dst: 5})
}

func TestClassOfCoversAllOps(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		c := ClassOf(op)
		if c < 0 || c >= classCount {
			t.Fatalf("op %v has invalid class", op)
		}
		if op.String() == "" {
			t.Fatalf("op %d has no name", op)
		}
		if SizeOf(op, 64) < HeaderBytes {
			t.Fatalf("op %v has size < header", op)
		}
	}
	// Spot-check the paper's message classes.
	if ClassOf(OpGetCHK) != ClassRequest || ClassOf(OpGetXCHK) != ClassRequest {
		t.Fatal("CHK requests must be request class")
	}
	if ClassOf(OpPrvWB) != ClassData || ClassOf(OpDataPrv) != ClassData {
		t.Fatal("privatized data must be data class")
	}
	if ClassOf(OpRepMD) != ClassMetadata {
		t.Fatal("REP_MD must be metadata class")
	}
}

// Property: delivery order for one destination equals send order, regardless
// of the send cycles (non-decreasing) chosen.
func TestDeliveryOrderProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		if len(gaps) == 0 || len(gaps) > 50 {
			return true
		}
		n, _ := newNet(2, 7)
		cycle := uint64(0)
		for i, g := range gaps {
			cycle += uint64(g % 4)
			n.SetCycle(cycle)
			n.Send(&Msg{Op: OpInv, Dst: 1, AckCount: i})
		}
		n.SetCycle(cycle + 7)
		for i := range gaps {
			m := n.Recv(1)
			if m == nil || m.AckCount != i {
				return false
			}
		}
		return n.Recv(1) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerClassFIFONeverReorders(t *testing.T) {
	// Two same-class messages from one source must arrive in send order even
	// when the later one would otherwise be faster (the virtual-channel
	// FIFO clamp).
	n, _ := newNet(2, 10)
	n.SetCycle(0)
	n.Send(&Msg{Op: OpWB, Src: 0, Dst: 1, Data: make([]byte, 64)}) // data, slow
	n.SetCycle(1)
	n.Send(&Msg{Op: OpDataToDir, Src: 0, Dst: 1, Data: make([]byte, 64)}) // data, later
	n.SetCycle(14)
	if m := n.Recv(1); m == nil || m.Op != OpWB {
		t.Fatalf("first data message not first: %v", m)
	}
	n.SetCycle(15)
	if m := n.Recv(1); m == nil || m.Op != OpDataToDir {
		t.Fatal("second data message missing")
	}
}

func TestPerClassFIFOClampProperty(t *testing.T) {
	// Property: for any interleaving of sends on one (src,dst,class)
	// channel, receive order equals send order.
	f := func(gaps []uint8) bool {
		if len(gaps) == 0 || len(gaps) > 40 {
			return true
		}
		n, _ := newNet(2, 6)
		cycle := uint64(0)
		for i, g := range gaps {
			cycle += uint64(g % 3)
			n.SetCycle(cycle)
			op := OpWB // all data class, same src/dst
			if i%2 == 0 {
				op = OpPrvWB
			}
			n.Send(&Msg{Op: op, Src: 0, Dst: 1, Data: make([]byte, 64), AckCount: i})
		}
		n.SetCycle(cycle + 100)
		for i := range gaps {
			m := n.Recv(1)
			if m == nil || m.AckCount != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
