// Package network defines the on-chip interconnect model and the coherence
// message wire format shared by the baseline MESI protocol and the
// FSDetect/FSLite extensions.
//
// The network is a fixed-latency crossbar. The delivery contract — the only
// ordering the protocol may assume — is per-(src,dst,class) FIFO: two
// messages on the same virtual channel arrive in send order, everything else
// may interleave arbitrarily. Large data messages pay a serialization
// penalty, so control messages routinely overtake data on the same (src,dst)
// pair, and the fault injector (faults.go) adds seeded jitter and burst
// delays on top; both stay within the contract, which PROTOCOL.md §"Network
// ordering contract" spells out together with the protocol races it makes
// reachable. Simulation remains fully deterministic in all cases. Traffic is
// accounted per message class so the experiment harness can reproduce the
// paper's interconnect-traffic results (§VIII-B).
package network

import (
	"fmt"

	"fscoherence/internal/memsys"
)

// NodeID identifies an endpoint on the interconnect. Cores' L1 controllers
// are numbered 0..C-1, directory/LLC slices C..C+S-1, and the memory
// controller is the final node.
type NodeID int

// Op enumerates message opcodes. The first group is the baseline directory
// MESI protocol (§VIII-A); the second group is added by FSDetect (§IV); the
// third by FSLite (§V).
type Op int

const (
	// ---- Baseline MESI ----

	OpGetS         Op = iota // read request (paper: Get)
	OpGetX                   // read-exclusive request
	OpUpgrade                // S -> M permission request
	OpFwdGetS                // intervention: forwarded read to owner
	OpFwdGetX                // intervention: forwarded read-exclusive to owner
	OpInv                    // invalidation to a sharer
	OpInvAck                 // invalidation acknowledgment (sharer -> requestor)
	OpData                   // data response granting S
	OpDataExcl               // data response granting E/M (AckCount pending acks)
	OpDataToDir              // owner's data copy sent to the directory on FwdGetS
	OpXferOwnerAck           // owner -> dir: ownership transferred on FwdGetX
	OpUpgradeAck             // dir -> requestor: upgrade granted (AckCount acks)
	OpUpgradeNack            // dir -> requestor: upgrade raced with inv, reissue GetX
	OpWB                     // writeback of a dirty block (data)
	OpWBAck                  // dir -> evictor: writeback accepted
	OpFwdNack                // owner -> dir: forwarded request missed (phantom data case handled via WB buffer; kept for completeness)

	// ---- FSDetect (metadata) ----

	OpRepMD     // REP_MD: PAM entry payload (read/write bit-vectors) to dir
	OpMDPhantom // dataless phantom metadata message (§V-D)

	// ---- FSLite (privatization) ----

	OpTRPrv     // TR_PRV: dir -> owner/sharers, privatization starting
	OpDataPrv   // Data_PRV: private copy granted, enter PRV
	OpGetCHK    // byte-level read permission check for a PRV block
	OpGetXCHK   // byte-level write permission check for a PRV block
	OpAckPrv    // Ack_PRV: CHK granted
	OpUpgAckPrv // UPG_Ack_PRV: upgrade granted with privatization (fig 12)
	OpInvPrv    // Inv_PRV: terminate privatized episode
	OpPrvWB     // Prv_WB: privatized copy written back for byte merge
	OpCtrlWB    // Ctrl_WB: dataless response to Inv_PRV when no copy held

	// ---- Hybrid (update push) ----

	OpUpd // Upd: unsolicited S-grant pushed to a former sharer of a falsely-shared line

	opCount
)

// NumOps is the number of defined opcodes; table-driven dispatch and the
// protocol spec (internal/coherence/spec) index arrays by Op.
const NumOps = int(opCount)

var opNames = [...]string{
	OpGetS: "GetS", OpGetX: "GetX", OpUpgrade: "Upgrade",
	OpFwdGetS: "Fwd_GetS", OpFwdGetX: "Fwd_GetX",
	OpInv: "Inv", OpInvAck: "InvAck",
	OpData: "Data", OpDataExcl: "DataExcl", OpDataToDir: "DataToDir",
	OpXferOwnerAck: "Xfer_Owner_ACK",
	OpUpgradeAck:   "UpgradeAck", OpUpgradeNack: "UpgradeNack",
	OpWB: "WB", OpWBAck: "WBAck", OpFwdNack: "FwdNack",
	OpRepMD: "REP_MD", OpMDPhantom: "MD_Phantom",
	OpTRPrv: "TR_PRV", OpDataPrv: "Data_PRV",
	OpGetCHK: "GetCHK", OpGetXCHK: "GetXCHK",
	OpAckPrv: "Ack_PRV", OpUpgAckPrv: "UPG_Ack_PRV",
	OpInvPrv: "Inv_PRV", OpPrvWB: "Prv_WB", OpCtrlWB: "Ctrl_WB",
	OpUpd: "Upd",
}

func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Class groups opcodes for traffic accounting.
type Class int

const (
	ClassRequest  Class = iota // demand requests from L1s
	ClassControl               // invalidations, acks, forwards, privatization control
	ClassData                  // block-sized payload messages
	ClassMetadata              // FSDetect/FSLite metadata messages
	classCount
)

var classNames = [...]string{
	ClassRequest: "request", ClassControl: "control",
	ClassData: "data", ClassMetadata: "metadata",
}

func (c Class) String() string { return classNames[c] }

// ClassOf returns the accounting class for an opcode.
func ClassOf(op Op) Class {
	switch op {
	case OpGetS, OpGetX, OpUpgrade, OpGetCHK, OpGetXCHK:
		return ClassRequest
	case OpData, OpDataExcl, OpDataToDir, OpWB, OpDataPrv, OpPrvWB:
		return ClassData
	case OpRepMD, OpMDPhantom:
		return ClassMetadata
	default:
		return ClassControl
	}
}

// Message header and payload sizes in bytes for traffic accounting
// (header carries address/opcode/routing; REP_MD carries the two 8-byte
// bit-vectors, §IV).
const (
	HeaderBytes    = 8
	MDPayloadBytes = 16
)

// SizeOf returns the wire size of a message with opcode op and block size bs.
func SizeOf(op Op, blockSize int) int {
	if op == OpUpd {
		// Upd carries a block copy but rides the control channel: a pushed
		// update must stay FIFO-ordered behind the Inv that preceded it on
		// the same dir -> core channel (see PROTOCOL.md §2).
		return HeaderBytes + blockSize
	}
	switch ClassOf(op) {
	case ClassData:
		return HeaderBytes + blockSize
	case ClassMetadata:
		if op == OpMDPhantom {
			return HeaderBytes
		}
		return HeaderBytes + MDPayloadBytes
	default:
		return HeaderBytes
	}
}

// Msg is a coherence protocol message. A single struct carries the union of
// fields used by any opcode; unused fields are zero. This mirrors how flit
// payloads are modelled in architectural simulators and keeps handler code
// free of type switches.
type Msg struct {
	Op   Op
	Src  NodeID
	Dst  NodeID
	Addr memsys.Addr // block-aligned address

	// Requestor is the core that originated a transaction, preserved across
	// forwards so data responses can be routed directly (3-hop transactions).
	Requestor NodeID

	// Data carries a full block copy for data-class messages.
	Data []byte

	// AckCount is the number of InvAcks the requestor must collect before a
	// DataExcl/UpgradeAck grant completes.
	AckCount int

	// ReqMD is the REQ_MD header bit: the directory asks the receiver of an
	// intervention/invalidation to report its PAM entry (§IV).
	ReqMD bool

	// TouchedOff/TouchedLen describe the byte range touched by the memory
	// operation behind a request (start offset within the block plus 1, 2, 4
	// or 8 bytes, §V-A). A prefetch touches zero bytes.
	TouchedOff int
	TouchedLen int

	// MDRead/MDWrite are the PAM read/write bit-vectors for REP_MD messages
	// (bit i = byte/grain i of the block was read/written).
	MDRead  uint64
	MDWrite uint64

	// Dirty marks a writeback as carrying modified data, or a data grant as
	// granting M rather than E.
	Dirty bool

	// HasCopy, on REP_MD/MD_Phantom responses to TR_PRV, tells the directory
	// whether the sender retained a valid copy (and therefore joins the set
	// of PRV sharers).
	HasCopy bool

	// ToOwner marks a back-invalidation recall addressed to the block's
	// owner: the directory expects the data back (or a deferral until the
	// in-flight ownership grant completes), not just an acknowledgment.
	ToOwner bool

	// Base, on Prv_WB messages, carries the block's content as of the
	// core's entry into the PRV state; the directory merges reduction words
	// by adding (Data - Base) to the LLC copy (§VII reductions).
	Base []byte

	// Counted is a simulator-internal flag: the directory sets it when a
	// request retries after a transaction (eviction, privatization
	// termination) so the FC counter is not incremented twice.
	Counted bool

	// Seq is a network-assigned sequence number (deterministic tiebreak and
	// debugging aid).
	Seq uint64

	// retained marks a message a handler stored for later re-dispatch
	// (directory pending/retry queues, L1 deferral buffers, transaction held
	// requests): the dispatch loop's Release after handling becomes a no-op,
	// and the holder releases it after the eventual re-dispatch instead.
	// pooled guards against double release. Both are simulator-internal
	// lifecycle bits, invisible on the wire.
	retained bool
	pooled   bool
}

// Retain marks m as held beyond the current dispatch: Network.Release will
// not recycle it until Unretain is called. A message has exactly one holder
// at a time (one pending queue, one deferral buffer, or one transaction), so
// a boolean rather than a refcount suffices.
func (m *Msg) Retain() { m.retained = true }

// Unretain clears the hold before a held message is re-dispatched; the
// re-dispatcher releases it afterwards (unless a handler retained it again).
func (m *Msg) Unretain() { m.retained = false }

func (m *Msg) String() string {
	return fmt.Sprintf("%v %d->%d %v req=%d acks=%d md=%v touch=[%d,+%d)",
		m.Op, m.Src, m.Dst, m.Addr, m.Requestor, m.AckCount, m.ReqMD, m.TouchedOff, m.TouchedLen)
}
