package network

import (
	"math/rand"
	"testing"
)

// scanPending recomputes the in-flight message count the way the pre-counter
// implementation did: by walking every inbox.
func scanPending(n *Network) int {
	total := 0
	for i := 0; i < n.Nodes(); i++ {
		total += n.PendingFor(NodeID(i))
	}
	return total
}

// TestPendingMatchesScan drives a random send/receive load and checks after
// every operation that the maintained Pending() counter equals the per-inbox
// scan it replaced.
func TestPendingMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, _ := newNet(8, 3)
	ops := []Op{OpGetS, OpGetX, OpInv, OpData, OpRepMD, OpWB, OpInvAck}
	for cycle := uint64(0); cycle < 2000; cycle++ {
		n.SetCycle(cycle)
		for s := 0; s < rng.Intn(4); s++ {
			m := n.NewMsg()
			m.Op = ops[rng.Intn(len(ops))]
			m.Src = NodeID(rng.Intn(8))
			m.Dst = NodeID(rng.Intn(8))
			n.SendAfter(m, uint64(rng.Intn(5)))
			if got, want := n.Pending(), scanPending(n); got != want {
				t.Fatalf("cycle %d after send: Pending()=%d scan=%d", cycle, got, want)
			}
		}
		for d := 0; d < 8; d++ {
			for rng.Intn(2) == 0 {
				m := n.Recv(NodeID(d))
				if m == nil {
					break
				}
				n.Release(m)
				if got, want := n.Pending(), scanPending(n); got != want {
					t.Fatalf("cycle %d after recv: Pending()=%d scan=%d", cycle, got, want)
				}
			}
		}
	}
	// Drain and check the terminal state.
	n.SetCycle(5000)
	for d := 0; d < 8; d++ {
		for {
			m := n.Recv(NodeID(d))
			if m == nil {
				break
			}
			n.Release(m)
		}
	}
	if n.Pending() != 0 || scanPending(n) != 0 {
		t.Fatalf("drained network still pending: counter=%d scan=%d", n.Pending(), scanPending(n))
	}
}

// TestNextArrival checks the wake-up report against queued messages.
func TestNextArrival(t *testing.T) {
	n, _ := newNet(4, 10)
	if got := n.NextArrival(); got != NoArrival {
		t.Fatalf("empty network NextArrival = %d, want NoArrival", got)
	}
	n.SetCycle(100)
	n.Send(&Msg{Op: OpGetS, Src: 0, Dst: 1})        // ready at 110
	n.SendAfter(&Msg{Op: OpInv, Src: 0, Dst: 2}, 5) // ready at 115
	if got := n.NextArrival(); got != 110 {
		t.Fatalf("NextArrival = %d, want 110", got)
	}
	n.SetCycle(110)
	n.Release(n.Recv(1))
	if got := n.NextArrival(); got != 115 {
		t.Fatalf("NextArrival after first delivery = %d, want 115", got)
	}
	n.SetCycle(115)
	n.Release(n.Recv(2))
	if got := n.NextArrival(); got != NoArrival {
		t.Fatalf("drained NextArrival = %d, want NoArrival", got)
	}
}

// TestReleaseRespectsRetain checks the single-holder message lifecycle: a
// retained message survives Release, and releasing twice panics.
func TestReleaseRespectsRetain(t *testing.T) {
	n, _ := newNet(2, 1)
	m := n.NewMsg()
	m.Op = OpGetS
	m.Retain()
	n.Release(m) // no-op
	if m.Op != OpGetS {
		t.Fatal("retained message was recycled")
	}
	m.Unretain()
	n.Release(m)
	if m.Op != 0 {
		t.Fatal("released message not zeroed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	n.Release(m)
}

// TestNewMsgReusesReleased pins the freelist round trip: a released message
// struct is handed back by the next NewMsg.
func TestNewMsgReusesReleased(t *testing.T) {
	n, _ := newNet(2, 1)
	m := n.NewMsg()
	n.Release(m)
	if got := n.NewMsg(); got != m {
		t.Fatal("freelist did not reuse the released message")
	}
}

// sendRecvCycle is one steady-state message round trip: allocate from the
// pool, send, deliver, release.
func sendRecvCycle(n *Network, cycle uint64) {
	n.SetCycle(cycle)
	m := n.NewMsg()
	m.Op = OpGetS
	m.Src = 0
	m.Dst = 1
	m.Addr = 0x40
	n.Send(m)
	n.SetCycle(cycle + n.Latency)
	got := n.Recv(1)
	if got == nil {
		panic("message not delivered")
	}
	n.Release(got)
}

// TestSendRecvDoesNotAllocate pins the zero-allocation contract of the
// steady-state hot path with tracing disabled: after warmup (which sizes the
// ring, the freelist and the channel-FIFO map), a full NewMsg/Send/Recv/
// Release round trip performs no heap allocation.
func TestSendRecvDoesNotAllocate(t *testing.T) {
	n, _ := newNet(2, 2)
	cycle := uint64(0)
	for i := 0; i < 100; i++ { // warmup: steady-state capacity everywhere
		sendRecvCycle(n, cycle)
		cycle += n.Latency + 1
	}
	avg := testing.AllocsPerRun(200, func() {
		sendRecvCycle(n, cycle)
		cycle += n.Latency + 1
	})
	if avg != 0 {
		t.Fatalf("Send/Recv allocated %.2f times per round trip, want 0", avg)
	}
}

// BenchmarkNetSendRecv measures the steady-state message round trip; run with
// -benchmem, allocs/op must stay 0 (make ci smoke-runs it).
func BenchmarkNetSendRecv(b *testing.B) {
	n, _ := newNet(2, 2)
	cycle := uint64(0)
	for i := 0; i < 100; i++ {
		sendRecvCycle(n, cycle)
		cycle += n.Latency + 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendRecvCycle(n, cycle)
		cycle += n.Latency + 1
	}
}

// replayCycle is one steady-state epoch of the deferred-send machinery: two
// shard networks record a burst of control messages, the master replays the
// merged streams into the shards' inboxes, and each shard drains its inbox.
func replayCycle(master *Network, shards []*Network, recs []*Recorder, deliver func(m *Msg, readyAt uint64), cycle uint64) {
	for si, sn := range shards {
		sn.SetCycle(cycle)
		recs[si].Begin(cycle, int32(si))
		for i := 0; i < 4; i++ {
			m := sn.NewMsg()
			m.Op = OpInv
			m.Src = NodeID(si)
			m.Dst = NodeID(1 - si)
			m.Addr = 0x40
			sn.Send(m)
		}
	}
	master.SetCycle(cycle)
	master.Replay(recs, deliver)
	at := cycle + master.Latency
	for _, sn := range shards {
		sn.SetCycle(at)
		for {
			m := sn.Recv(NodeID(0))
			if m == nil {
				m = sn.Recv(NodeID(1))
			}
			if m == nil {
				break
			}
			sn.Release(m)
		}
	}
}

// TestReplayDoesNotAllocate pins the parallel engine's barrier machinery:
// after warmup (recorder buffers, freelists, inbox rings at steady capacity),
// a record/replay/deliver/drain epoch allocates nothing. `make allocsmoke`
// runs this next to the sequential round-trip check.
func TestReplayDoesNotAllocate(t *testing.T) {
	master, _ := newNet(2, 2)
	shardA, _ := newNet(2, 2)
	shardB, _ := newNet(2, 2)
	shards := []*Network{shardA, shardB}
	recs := []*Recorder{{}, {}}
	shardA.SetRecorder(recs[0])
	shardB.SetRecorder(recs[1])
	deliver := func(m *Msg, readyAt uint64) {
		shards[m.Dst].Deliver(m, readyAt)
	}
	cycle := uint64(0)
	for i := 0; i < 100; i++ {
		replayCycle(master, shards, recs, deliver, cycle)
		cycle += master.Latency + 1
	}
	avg := testing.AllocsPerRun(200, func() {
		replayCycle(master, shards, recs, deliver, cycle)
		cycle += master.Latency + 1
	})
	if avg != 0 {
		t.Fatalf("record/replay epoch allocated %.2f times, want 0", avg)
	}
}
