package network

// Fault injection: deterministic, seed-driven perturbation of message
// delivery, used by the protocol fuzzing harness (internal/fuzz) to explore
// message interleavings far beyond what the fixed-latency crossbar produces.
//
// All perturbation stays within the protocol-legal delivery contract
// documented in PROTOCOL.md §"Network ordering contract": per-(src,dst,class)
// FIFO is preserved (the lastReady clamp in SendAfter runs *after* the
// injected delay, so a jittered message can never overtake an earlier one on
// the same virtual channel) and every message is eventually delivered.
// Cross-channel reordering — control overtaking data, messages from different
// senders arriving in any order, different blocks interleaving arbitrarily —
// is exactly the freedom a real NoC with separate virtual networks has, and
// is what the injector exercises.
//
// Sabotage, by contrast, deliberately breaks the contract (dropping, wedging
// or corrupting one message). It exists only to validate that the fuzzing
// oracles actually catch protocol bugs; it is never enabled outside the
// harness's self-checks.

// FaultPlan describes a deterministic delivery perturbation. The zero value
// injects nothing. All perturbation is a pure function of (Seed, Msg.Seq), so
// a run with a given plan is exactly reproducible.
type FaultPlan struct {
	// Seed keys the per-message jitter hash.
	Seed uint64

	// MaxJitter is the maximum extra delivery delay in cycles; each message
	// receives hash(Seed, Seq) % (MaxJitter+1) additional cycles. 0 disables
	// jitter.
	MaxJitter uint64

	// BurstPeriod/BurstLen model congestion bursts: deliveries that would
	// land in the first BurstLen cycles of each BurstPeriod-cycle window are
	// pushed to the window's end, releasing them in a burst. BurstPeriod 0
	// disables bursting.
	BurstPeriod uint64
	BurstLen    uint64
}

// Enabled reports whether the plan perturbs anything.
func (fp *FaultPlan) Enabled() bool {
	return fp != nil && (fp.MaxJitter > 0 || (fp.BurstPeriod > 0 && fp.BurstLen > 0))
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixing
// function, used to derive per-message jitter from (Seed, Seq).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// perturb maps a nominal delivery cycle to the perturbed one for message
// sequence number seq. The mapping is monotone per channel because the
// caller's lastReady clamp runs afterwards.
func (fp *FaultPlan) perturb(readyAt, seq uint64) uint64 {
	if fp.MaxJitter > 0 {
		readyAt += splitmix64(fp.Seed^(seq*0x2545f4914f6cdd1d)) % (fp.MaxJitter + 1)
	}
	if fp.BurstPeriod > 0 && fp.BurstLen > 0 {
		if pos := readyAt % fp.BurstPeriod; pos < fp.BurstLen {
			readyAt += fp.BurstLen - pos
		}
	}
	return readyAt
}

// SetFaults installs a fault plan. nil (the default) disables injection and
// restores exact nominal-latency delivery.
func (n *Network) SetFaults(fp *FaultPlan) { n.faults = fp }

// SabotageMode selects how a sabotaged message is mistreated.
type SabotageMode int

const (
	// SabotageDrop silently discards the message (models a lost flit; the
	// protocol has no timeout/retry, so the transaction wedges).
	SabotageDrop SabotageMode = iota

	// SabotageWedge enqueues the message with an unreachable delivery cycle:
	// it stays visible to ForEachInFlight (and hence watchdog dumps) but is
	// never delivered.
	SabotageWedge

	// SabotageCorrupt flips one byte of the message's data payload (a silent
	// data-corruption bug; only meaningful for data-class messages).
	SabotageCorrupt
)

func (m SabotageMode) String() string {
	switch m {
	case SabotageDrop:
		return "drop"
	case SabotageWedge:
		return "wedge"
	case SabotageCorrupt:
		return "corrupt"
	}
	return "?"
}

// wedgedReadyAt is the delivery cycle assigned to wedged messages: far beyond
// any reachable cycle, but small enough that arithmetic on it cannot wrap.
const wedgedReadyAt = uint64(1) << 62

// Sabotage describes one deliberately injected protocol bug: the Nth sent
// message with opcode Op is dropped, wedged or corrupted. It validates the
// harness's oracles (a healthy protocol plus a sabotaged network must produce
// a detected failure); see internal/fuzz.
type Sabotage struct {
	Mode SabotageMode
	Op   Op
	Nth  int // 1-based among sent messages with opcode Op

	seen int
	hits int
}

// Hits reports how many times the sabotage actually fired (0 if the targeted
// message never occurred in the run).
func (s *Sabotage) Hits() int { return s.hits }

// SetSabotage installs a sabotage hook (validation only). nil disables it.
func (n *Network) SetSabotage(s *Sabotage) { n.sabotage = s }

// applySabotage is called by SendAfter for every message when a sabotage hook
// is installed. It returns the (possibly wedged) delivery cycle and whether
// the message should be dropped instead of enqueued.
func (n *Network) applySabotage(m *Msg, readyAt uint64) (uint64, bool) {
	s := n.sabotage
	if m.Op != s.Op {
		return readyAt, false
	}
	s.seen++
	if s.seen != s.Nth {
		return readyAt, false
	}
	s.hits++
	switch s.Mode {
	case SabotageDrop:
		return readyAt, true
	case SabotageWedge:
		return wedgedReadyAt, false
	case SabotageCorrupt:
		if len(m.Data) > 0 {
			// Corrupt a copy: handlers may alias Msg.Data into cache lines,
			// and the sender's own copy (e.g. a WB buffer) must stay intact —
			// the bug modelled here is on-the-wire corruption.
			c := make([]byte, len(m.Data))
			copy(c, m.Data)
			c[int(m.Seq)%len(c)] ^= 0x40
			m.Data = c
		}
		return readyAt, false
	}
	return readyAt, false
}

// ForEachInFlight visits every queued (undelivered) message with its delivery
// cycle, in per-destination queue order (watchdog dumps, tests).
func (n *Network) ForEachInFlight(fn func(m *Msg, readyAt uint64)) {
	for i := range n.inboxes {
		q := &n.inboxes[i]
		if len(q.buf) == 0 {
			continue
		}
		mask := len(q.buf) - 1
		for k := 0; k < q.n; k++ {
			inf := &q.buf[(q.head+k)&mask]
			fn(inf.msg, inf.readyAt)
		}
	}
}
