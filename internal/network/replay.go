package network

// Deferred-send recording and barrier replay: the machinery behind the
// conservative parallel engine (internal/sim, -engine=parallel).
//
// Each shard owns a private Network in deferred mode. During an epoch the
// shard's components interact with it exactly as with the real fabric, but
// SendAfter only records (message, extra, position) and Recv additionally
// logs each successful pop. At the epoch barrier the coordinator merges all
// shards' operation streams in global (cycle, component rank, intra-tick
// index) order — the exact order the sequential engines would have performed
// them — and replays the merged stream through the master Network. Replayed
// sends run the full sequential admission path (sequence numbering, topology
// routing, link contention, per-channel FIFO clamp, statistics, in-flight
// peak tracking) and are then routed into the destination shard's inbox;
// replayed receives decrement the master in-flight count at their original
// position. Every order-sensitive quantity therefore evolves bit-for-bit as
// under -engine=naive.

// netOp is one recorded network operation.
type netOp struct {
	msg   *Msg   // nil for a receive
	extra uint64 // send-side delay (SendAfter)
	cycle uint64
	rank  int32 // global tick rank of the component that performed the op
	idx   int32 // operation order within (cycle, rank)
}

// Recorder collects one shard's deferred network operations for an epoch.
// Each shard's stream is naturally sorted by (cycle, rank, idx): the shard
// steps cycles in order and ticks its components in global rank order.
type Recorder struct {
	ops   []netOp
	cycle uint64
	rank  int32
	idx   int32
}

// Begin marks the start of one component's tick: operations recorded until
// the next Begin belong to (cycle, rank) and are numbered in program order.
func (r *Recorder) Begin(cycle uint64, rank int32) {
	r.cycle, r.rank, r.idx = cycle, rank, 0
}

func (r *Recorder) recordSend(m *Msg, extra uint64) {
	r.ops = append(r.ops, netOp{msg: m, extra: extra, cycle: r.cycle, rank: r.rank, idx: r.idx})
	r.idx++
}

func (r *Recorder) recordRecv() {
	r.ops = append(r.ops, netOp{cycle: r.cycle, rank: r.rank, idx: r.idx})
	r.idx++
}

// Pending reports the number of recorded, not-yet-replayed operations.
func (r *Recorder) Pending() int { return len(r.ops) }

// SetRecorder puts the network in deferred mode (nil restores direct mode).
func (n *Network) SetRecorder(r *Recorder) { n.rec = r }

// Deliver places an already-admitted message directly into dst's inbox with
// the given delivery cycle. The master network performed all admission
// accounting during replay; this only makes the message visible to the
// owning shard's Recv/Peek/NextArrival.
func (n *Network) Deliver(m *Msg, readyAt uint64) {
	n.inboxes[m.Dst].push(inflight{msg: m, readyAt: readyAt})
	n.noteOccupied(m.Dst)
	n.inflightNow++
}

// opLess orders operations by (cycle, rank, idx). Two streams never tie on
// (cycle, rank): a component belongs to exactly one shard.
func opLess(a, b *netOp) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.idx < b.idx
}

// Replay merges the recorders' operation streams in global order and applies
// them to the master network n. deliver receives each admitted message with
// its computed delivery cycle (the parallel engine pushes it into the
// destination shard's inbox). Recorders are drained and reset for the next
// epoch. Replay performs no allocations in steady state: the merge cursor
// and all operation buffers are reused.
func (n *Network) Replay(recs []*Recorder, deliver func(m *Msg, readyAt uint64)) {
	if cap(n.replayHeads) < len(recs) {
		n.replayHeads = make([]int, len(recs))
	}
	heads := n.replayHeads[:len(recs)]
	for i := range heads {
		heads[i] = 0
	}
	n.deliver = deliver
	savedNow := n.now
	for {
		best := -1
		for i, r := range recs {
			if heads[i] >= len(r.ops) {
				continue
			}
			if best < 0 || opLess(&r.ops[heads[i]], &recs[best].ops[heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		op := &recs[best].ops[heads[best]]
		heads[best]++
		if op.msg == nil {
			n.inflightNow-- // receive: shard already popped its local copy
			continue
		}
		n.now = op.cycle
		m := op.msg
		op.msg = nil
		n.SendAfter(m, op.extra)
	}
	n.now = savedNow
	n.deliver = nil
	for _, r := range recs {
		r.ops = r.ops[:0]
	}
}
