package network

import (
	"fmt"

	"fscoherence/internal/obs"
	"fscoherence/internal/stats"
)

// inflight pairs a queued message with the cycle it becomes deliverable.
type inflight struct {
	msg     *Msg
	readyAt uint64
}

// chanKey identifies one ordered virtual channel.
type chanKey struct {
	src, dst NodeID
	class    Class
}

// Network is a deterministic fixed-latency interconnect. Each destination has
// a FIFO inbox; a message sent at cycle T becomes deliverable at T+Latency.
// Delivery preserves global send order, which implies point-to-point FIFO
// ordering between any (src,dst) pair — the ordering property the directory
// protocol relies on.
type Network struct {
	Latency uint64 // cycles per traversal
	nodes   int
	inboxes [][]inflight // per destination, readyAt non-decreasing
	seq     uint64
	now     uint64
	stats   *stats.Set
	bs      int // block size for byte accounting

	// lastReady enforces per-(src,dst,class) FIFO ordering: a later message
	// on the same virtual channel never arrives before an earlier one, even
	// though large data messages serialize more slowly. Cross-class
	// overtaking (control passing data) remains possible, as on a real NoC
	// with separate virtual networks.
	lastReady map[chanKey]uint64

	// tracer, when non-nil, receives a KindNetSend / KindNetRecv event for
	// every message entering / leaving the interconnect. cores is the
	// node-ID split point for mapping NodeID -> core / LLC-slice tracks.
	tracer *obs.Tracer
	cores  int

	inflightNow int // messages currently queued (for the peak counter)
}

// New builds a network with the given number of nodes, per-traversal latency
// in cycles, and block size (for wire-size accounting).
func New(nodes int, latency uint64, blockSize int, st *stats.Set) *Network {
	return &Network{
		Latency:   latency,
		nodes:     nodes,
		inboxes:   make([][]inflight, nodes),
		stats:     st,
		bs:        blockSize,
		lastReady: make(map[chanKey]uint64),
	}
}

// SetTracer attaches the unified event tracer. cores is the number of core
// nodes: NodeIDs below it trace onto core tracks, the rest onto LLC-slice
// tracks. A nil tracer disables network tracing (the default).
func (n *Network) SetTracer(t *obs.Tracer, cores int) {
	n.tracer = t
	n.cores = cores
}

// nodeTrack maps a NodeID to (core, slice) track coordinates for an event.
func (n *Network) nodeTrack(id NodeID) (core, slice int16) {
	if int(id) < n.cores {
		return int16(id), -1
	}
	return -1, int16(int(id) - n.cores)
}

// SetCycle advances the network's notion of the current cycle. The simulation
// engine calls this once per cycle before any component runs.
func (n *Network) SetCycle(c uint64) { n.now = c }

// Nodes returns the number of endpoints.
func (n *Network) Nodes() int { return n.nodes }

// Send enqueues m for delivery after the base latency plus a serialization
// penalty proportional to the wire size (one extra cycle per 16 bytes beyond
// the header). Large data messages therefore travel slower than small control
// messages and can be overtaken by them, which models separate virtual
// networks and makes the protocol races of the paper's §V-E reachable.
func (n *Network) Send(m *Msg) {
	n.SendAfter(m, 0)
}

// SendAfter behaves like Send with an additional source-side delay of extra
// cycles (used to model cache tag/data array access latency at the sender).
func (n *Network) SendAfter(m *Msg, extra uint64) {
	if int(m.Dst) < 0 || int(m.Dst) >= n.nodes {
		panic(fmt.Sprintf("network: bad destination %d (%v)", m.Dst, m))
	}
	n.seq++
	m.Seq = n.seq
	serialization := uint64((SizeOf(m.Op, n.bs) - HeaderBytes) / 16)
	readyAt := n.now + n.Latency + extra + serialization
	key := chanKey{src: m.Src, dst: m.Dst, class: ClassOf(m.Op)}
	if prev := n.lastReady[key]; readyAt < prev {
		readyAt = prev
	}
	n.lastReady[key] = readyAt
	q := n.inboxes[m.Dst]
	q = append(q, inflight{msg: m, readyAt: readyAt})
	// Keep the inbox sorted by (readyAt, seq): stable insertion from the back.
	for i := len(q) - 1; i > 0 && q[i-1].readyAt > q[i].readyAt; i-- {
		q[i-1], q[i] = q[i], q[i-1]
	}
	n.inboxes[m.Dst] = q

	n.stats.Inc(stats.CtrNetMessages)
	n.stats.Add(stats.CtrNetBytes, uint64(SizeOf(m.Op, n.bs)))
	n.stats.Inc("net.msg." + ClassOf(m.Op).String())
	n.stats.Add("net.bytes."+ClassOf(m.Op).String(), uint64(SizeOf(m.Op, n.bs)))
	n.stats.Inc("net.op." + m.Op.String())
	n.inflightNow++
	n.stats.Max(stats.CtrNetInflightPeak, uint64(n.inflightNow))
	if t := n.tracer; t != nil {
		core, slice := n.nodeTrack(m.Src)
		t.Emit(obs.Event{
			Cycle: n.now, Kind: obs.KindNetSend, Core: core, Slice: slice,
			Addr: m.Addr, Name: m.Op.String(), Arg: m.Seq,
			Arg2: obs.PackSrcDst(int(m.Src), int(m.Dst)),
		})
	}
}

// Recv pops the next deliverable message for node dst at the current cycle,
// or returns nil if none is ready. Messages are delivered strictly in send
// order per destination.
func (n *Network) Recv(dst NodeID) *Msg {
	q := n.inboxes[dst]
	if len(q) == 0 || q[0].readyAt > n.now {
		return nil
	}
	m := q[0].msg
	n.inboxes[dst] = q[1:]
	n.inflightNow--
	if t := n.tracer; t != nil {
		core, slice := n.nodeTrack(dst)
		t.Emit(obs.Event{
			Cycle: n.now, Kind: obs.KindNetRecv, Core: core, Slice: slice,
			Addr: m.Addr, Name: m.Op.String(), Arg: m.Seq,
			Arg2: obs.PackSrcDst(int(m.Src), int(m.Dst)),
		})
	}
	return m
}

// Peek returns the next deliverable message for dst without removing it, or
// nil if none is ready this cycle.
func (n *Network) Peek(dst NodeID) *Msg {
	q := n.inboxes[dst]
	if len(q) == 0 || q[0].readyAt > n.now {
		return nil
	}
	return q[0].msg
}

// Pending returns the total number of in-flight messages (delivered or not).
func (n *Network) Pending() int {
	total := 0
	for _, q := range n.inboxes {
		total += len(q)
	}
	return total
}

// PendingFor returns the number of queued messages for one destination.
func (n *Network) PendingFor(dst NodeID) int { return len(n.inboxes[dst]) }
