package network

import (
	"fmt"

	"fscoherence/internal/obs"
	"fscoherence/internal/stats"
)

// NoArrival is the NextArrival sentinel: no message is queued anywhere.
const NoArrival = ^uint64(0)

// inflight pairs a queued message with the cycle it becomes deliverable.
type inflight struct {
	msg     *Msg
	readyAt uint64
}

// inbox is a growable ring buffer of inflight messages ordered by (readyAt,
// insertion order). Unlike the earlier slice-with-reslice implementation,
// popping the front clears the slot, so a drained inbox retains no message
// references in its backing array.
type inbox struct {
	buf  []inflight // power-of-two capacity ring
	head int
	n    int
}

func (b *inbox) grow() {
	c := len(b.buf) * 2
	if c == 0 {
		c = 16
	}
	nb := make([]inflight, c)
	for i := 0; i < b.n; i++ {
		nb[i] = b.buf[(b.head+i)&(len(b.buf)-1)]
	}
	b.buf = nb
	b.head = 0
}

// push inserts inf keeping the ring sorted by readyAt, stable for equal
// readyAt (the new message goes after existing ones). Messages almost always
// arrive in readyAt order, so the backwards shift is O(1) amortized.
func (b *inbox) push(inf inflight) {
	if b.n == len(b.buf) {
		b.grow()
	}
	mask := len(b.buf) - 1
	i := b.head + b.n // absolute slot for the new element
	for i > b.head && b.buf[(i-1)&mask].readyAt > inf.readyAt {
		b.buf[i&mask] = b.buf[(i-1)&mask]
		i--
	}
	b.buf[i&mask] = inf
	b.n++
}

// front returns the earliest-ready element without removing it.
func (b *inbox) front() *inflight {
	return &b.buf[b.head&(len(b.buf)-1)]
}

// pop removes and returns the earliest-ready message, clearing the slot so
// the ring holds no stale reference.
func (b *inbox) pop() *Msg {
	slot := &b.buf[b.head&(len(b.buf)-1)]
	m := slot.msg
	slot.msg = nil
	b.head++
	b.n--
	if b.n == 0 {
		b.head = 0
	}
	return m
}

// chanKey identifies one ordered virtual channel.
type chanKey struct {
	src, dst NodeID
	class    Class
}

// Interned per-class and per-opcode counter keys: the "net.msg." + class
// concatenations used to allocate on every Send.
var (
	msgClassKey  [classCount]string
	byteClassKey [classCount]string
	opKey        [opCount]string
)

func init() {
	for c := Class(0); c < classCount; c++ {
		msgClassKey[c] = "net.msg." + c.String()
		byteClassKey[c] = "net.bytes." + c.String()
	}
	for op := Op(0); op < opCount; op++ {
		opKey[op] = "net.op." + op.String()
	}
}

// Network is a deterministic fixed-latency interconnect. Each destination has
// an inbox ordered by delivery cycle; a message sent at cycle T nominally
// becomes deliverable at T+Latency (+serialization, +injected jitter). The
// only ordering the protocol may rely on — and the only one the network
// guarantees, with or without fault injection — is per-(src,dst,class) FIFO;
// see PROTOCOL.md §"Network ordering contract".
type Network struct {
	Latency uint64 // cycles per traversal
	nodes   int
	inboxes []inbox // per destination, ordered by readyAt
	seq     uint64
	now     uint64
	stats   *stats.Set
	bs      int // block size for byte accounting

	// lastReady enforces per-(src,dst,class) FIFO ordering: a later message
	// on the same virtual channel never arrives before an earlier one, even
	// though large data messages serialize more slowly. Cross-class
	// overtaking (control passing data) remains possible, as on a real NoC
	// with separate virtual networks.
	lastReady map[chanKey]uint64

	// tracer, when non-nil, receives a KindNetSend / KindNetRecv event for
	// every message entering / leaving the interconnect. cores is the
	// node-ID split point for mapping NodeID -> core / LLC-slice tracks.
	tracer *obs.Tracer
	cores  int

	inflightNow int // messages currently queued (Pending, peak counter)

	// occ lists inboxes that may be nonempty (lazily deleted as NextArrival
	// finds them drained), with inOcc as the membership bitmap. It keeps
	// NextArrival O(active destinations) instead of O(nodes) — decisive for
	// the parallel engine, whose per-shard network fronts carry full-size
	// inbox arrays but only ever queue messages for their few local nodes.
	occ   []NodeID
	inOcc []bool

	free []*Msg // Msg freelist (NewMsg / Release)

	// topo, when non-nil, routes messages over a ring or mesh NoC with
	// per-hop latency and per-link contention instead of the flat
	// fixed-latency fabric (see topology.go).
	topo *topology

	// rec, when non-nil, puts the network in deferred mode (parallel-engine
	// shards): SendAfter records the operation instead of admitting it, and
	// Recv logs each pop, so the barrier can replay all operations on the
	// master network in global order (see Recorder).
	rec *Recorder

	// deliver, when non-nil, replaces the local inbox push at the end of
	// SendAfter: the master network computes admission (seq, routing,
	// contention, FIFO clamp, stats) and hands the routed message over —
	// the parallel engine routes it into the owning shard's inbox.
	deliver func(m *Msg, readyAt uint64)

	// replayHeads is Replay's reusable merge cursor (0 allocs/op contract).
	replayHeads []int

	// faults, when non-nil, perturbs delivery latency deterministically
	// (fuzzing; see faults.go). sabotage, when non-nil, mistreats one
	// selected message to validate the fuzzing oracles.
	faults   *FaultPlan
	sabotage *Sabotage
}

// New builds a network with the given number of nodes, per-traversal latency
// in cycles, and block size (for wire-size accounting).
func New(nodes int, latency uint64, blockSize int, st *stats.Set) *Network {
	return &Network{
		Latency:   latency,
		nodes:     nodes,
		inboxes:   make([]inbox, nodes),
		inOcc:     make([]bool, nodes),
		stats:     st,
		bs:        blockSize,
		lastReady: make(map[chanKey]uint64),
	}
}

// NewMsg returns a zeroed message from the freelist (or a fresh allocation).
// Callers populate it and hand it to Send; the receiver's dispatch loop
// recycles it via Release once no handler retains it.
func (n *Network) NewMsg() *Msg {
	if k := len(n.free); k > 0 {
		m := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		m.pooled = false
		return m
	}
	return new(Msg)
}

// Release returns a delivered message to the freelist. It is a no-op for nil
// or retained messages, so dispatch loops can call it unconditionally after
// handling. Payload slices are not recycled — handlers may alias Msg.Data
// into cache lines; only the struct is reused.
func (n *Network) Release(m *Msg) {
	if m == nil || m.retained {
		return
	}
	if m.pooled {
		panic("network: double release of a pooled message")
	}
	*m = Msg{}
	m.pooled = true
	n.free = append(n.free, m)
}

// SetTracer attaches the unified event tracer. cores is the number of core
// nodes: NodeIDs below it trace onto core tracks, the rest onto LLC-slice
// tracks. A nil tracer disables network tracing (the default).
func (n *Network) SetTracer(t *obs.Tracer, cores int) {
	n.tracer = t
	n.cores = cores
}

// nodeTrack maps a NodeID to (core, slice) track coordinates for an event.
func (n *Network) nodeTrack(id NodeID) (core, slice int16) {
	if int(id) < n.cores {
		return int16(id), -1
	}
	return -1, int16(int(id) - n.cores)
}

// SetCycle advances the network's notion of the current cycle. The simulation
// engine calls this once per cycle before any component runs.
func (n *Network) SetCycle(c uint64) { n.now = c }

// Nodes returns the number of endpoints.
func (n *Network) Nodes() int { return n.nodes }

// Send enqueues m for delivery after the base latency plus a serialization
// penalty proportional to the wire size (one extra cycle per 16 bytes beyond
// the header). Large data messages therefore travel slower than small control
// messages and can be overtaken by them, which models separate virtual
// networks and makes the protocol races of the paper's §V-E reachable.
func (n *Network) Send(m *Msg) {
	n.SendAfter(m, 0)
}

// SendAfter behaves like Send with an additional source-side delay of extra
// cycles (used to model cache tag/data array access latency at the sender).
func (n *Network) SendAfter(m *Msg, extra uint64) {
	if int(m.Dst) < 0 || int(m.Dst) >= n.nodes {
		panic(fmt.Sprintf("network: bad destination %d (%v)", m.Dst, m))
	}
	if n.rec != nil {
		n.rec.recordSend(m, extra)
		return
	}
	n.seq++
	m.Seq = n.seq
	class := ClassOf(m.Op)
	size := SizeOf(m.Op, n.bs)
	serialization := uint64((size - HeaderBytes) / 16)
	var readyAt uint64
	if t := n.topo; t != nil {
		var hops int
		var wait uint64
		readyAt, hops, wait = t.routeLatency(m.Src, m.Dst, n.now+extra, serialization+1)
		n.stats.AddID(stats.IDNetHops, uint64(hops))
		n.stats.AddID(stats.IDNetLinkWait, wait)
	} else {
		readyAt = n.now + n.Latency + extra + serialization
	}
	if n.faults.Enabled() {
		readyAt = n.faults.perturb(readyAt, n.seq)
	}
	if n.sabotage != nil {
		var drop bool
		if readyAt, drop = n.applySabotage(m, readyAt); drop {
			n.stats.Inc("net.sabotage.dropped")
			n.Release(m)
			return
		}
	}
	// The per-channel FIFO clamp runs after any injected perturbation, so a
	// jittered message can never overtake an earlier one on the same
	// (src,dst,class) virtual channel — injection stays protocol-legal.
	key := chanKey{src: m.Src, dst: m.Dst, class: class}
	if prev := n.lastReady[key]; readyAt < prev {
		readyAt = prev
	}
	n.lastReady[key] = readyAt
	if n.deliver != nil {
		n.deliver(m, readyAt)
	} else {
		n.inboxes[m.Dst].push(inflight{msg: m, readyAt: readyAt})
		n.noteOccupied(m.Dst)
	}

	n.stats.IncID(stats.IDNetMessages)
	n.stats.AddID(stats.IDNetBytes, uint64(size))
	n.stats.Inc(msgClassKey[class])
	n.stats.Add(byteClassKey[class], uint64(size))
	n.stats.Inc(opKey[m.Op])
	n.inflightNow++
	n.stats.MaxID(stats.IDNetInflightPeak, uint64(n.inflightNow))
	if t := n.tracer; t != nil {
		core, slice := n.nodeTrack(m.Src)
		t.Emit(obs.Event{
			Cycle: n.now, Kind: obs.KindNetSend, Core: core, Slice: slice,
			Addr: m.Addr, Name: m.Op.String(), Arg: m.Seq,
			Arg2: obs.PackSrcDst(int(m.Src), int(m.Dst)),
		})
	}
}

// Recv pops the next deliverable message for node dst at the current cycle,
// or returns nil if none is ready. Messages are delivered strictly in send
// order per destination.
func (n *Network) Recv(dst NodeID) *Msg {
	q := &n.inboxes[dst]
	if q.n == 0 || q.front().readyAt > n.now {
		return nil
	}
	m := q.pop()
	n.inflightNow--
	if n.rec != nil {
		n.rec.recordRecv()
	}
	if t := n.tracer; t != nil {
		core, slice := n.nodeTrack(dst)
		t.Emit(obs.Event{
			Cycle: n.now, Kind: obs.KindNetRecv, Core: core, Slice: slice,
			Addr: m.Addr, Name: m.Op.String(), Arg: m.Seq,
			Arg2: obs.PackSrcDst(int(m.Src), int(m.Dst)),
		})
	}
	return m
}

// Peek returns the next deliverable message for dst without removing it, or
// nil if none is ready this cycle.
func (n *Network) Peek(dst NodeID) *Msg {
	q := &n.inboxes[dst]
	if q.n == 0 || q.front().readyAt > n.now {
		return nil
	}
	return q.front().msg
}

// Pending returns the total number of in-flight messages (delivered or not).
// It is the maintained count, O(1); TestPendingMatchesScan pins it to the
// per-inbox scan it replaced.
func (n *Network) Pending() int { return n.inflightNow }

// PendingFor returns the number of queued messages for one destination.
func (n *Network) PendingFor(dst NodeID) int { return n.inboxes[dst].n }

// NextArrival returns the earliest cycle at which any queued message becomes
// deliverable, or NoArrival when nothing is in flight. A value at or before
// the current cycle means messages are already deliverable (e.g. left over
// from a MaxMsgsPerCycle-capped tick). The quiescence-skipping engine uses
// this as the network's wake-up report.
func (n *Network) NextArrival() uint64 {
	next := uint64(NoArrival)
	occ := n.occ[:0]
	for _, d := range n.occ {
		q := &n.inboxes[d]
		if q.n == 0 {
			n.inOcc[d] = false // drained since: lazy-delete
			continue
		}
		occ = append(occ, d)
		if r := q.front().readyAt; r < next {
			next = r
		}
	}
	n.occ = occ
	return next
}

// noteOccupied registers dst in the nonempty-inbox list (idempotent).
func (n *Network) noteOccupied(dst NodeID) {
	if !n.inOcc[dst] {
		n.inOcc[dst] = true
		n.occ = append(n.occ, dst)
	}
}
