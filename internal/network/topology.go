package network

import "fmt"

// TopoKind selects the interconnect topology. The default, TopoFlat, is the
// paper's idealized crossbar: every message traverses the fabric in a fixed
// Latency regardless of endpoints. TopoRing and TopoMesh model an on-chip
// network of routers connected by links with per-hop latency and per-link
// contention; see PROTOCOL.md §"Network timing & lookahead".
type TopoKind int

const (
	TopoFlat TopoKind = iota
	TopoRing
	TopoMesh
)

func (k TopoKind) String() string {
	switch k {
	case TopoFlat:
		return "flat"
	case TopoRing:
		return "ring"
	case TopoMesh:
		return "mesh"
	}
	return fmt.Sprintf("TopoKind(%d)", int(k))
}

// ParseTopoKind maps a -topology flag value to a TopoKind.
func ParseTopoKind(s string) (TopoKind, error) {
	switch s {
	case "", "flat":
		return TopoFlat, nil
	case "ring":
		return TopoRing, nil
	case "mesh":
		return TopoMesh, nil
	}
	return TopoFlat, fmt.Errorf("network: unknown topology %q (want flat, ring or mesh)", s)
}

// Directed link indices within one router's link block. Ring routers use
// {cw, ccw, local}; mesh routers use all five. The local link models the
// router-internal path taken when source and destination tiles share a
// router, so co-located traffic still serializes without contending with
// through-traffic.
const (
	linkEast  = 0 // mesh +x / ring clockwise
	linkWest  = 1 // mesh -x / ring counter-clockwise
	linkNorth = 2 // mesh -y
	linkSouth = 3 // mesh +y
	linkLocal = 4
	linksPer  = 5
)

// topology holds the routing tables and per-link reservation state of a ring
// or mesh NoC. All state mutates only inside routeLatency, which runs in
// deterministic global send order (directly in the sequential engines, via
// barrier replay in the parallel engine), so link contention is reproducible
// bit-for-bit across engines.
type topology struct {
	kind TopoKind
	hop  uint64 // per-hop (router-to-router) latency in cycles

	routers int
	w, h    int   // mesh dimensions (w*h >= routers)
	nodeR   []int // NodeID -> router

	// linkFree[r*linksPer+d] is the first cycle at which directed link d of
	// router r is free; a message occupies each link on its path for its
	// full flit count.
	linkFree []uint64
}

// newTopology builds the routing state for nodes endpoints, of which the
// first cores are core tiles and the rest LLC slices. Core i and slice j map
// onto routers proportionally, so equal core and slice counts co-locate core
// i with slice i on router i (a tiled CMP), and any other split spreads both
// kinds evenly around the fabric.
func newTopology(kind TopoKind, hop uint64, nodes, cores int) *topology {
	if hop == 0 {
		hop = 1
	}
	slices := nodes - cores
	routers := cores
	if slices > routers {
		routers = slices
	}
	if routers == 0 {
		routers = 1
	}
	t := &topology{kind: kind, hop: hop, routers: routers, nodeR: make([]int, nodes)}
	for i := 0; i < cores; i++ {
		t.nodeR[i] = i * routers / cores
	}
	for j := 0; j < slices; j++ {
		t.nodeR[cores+j] = j * routers / slices
	}
	if kind == TopoMesh {
		t.w = 1
		for t.w*t.w < routers {
			t.w++
		}
		t.h = (routers + t.w - 1) / t.w
	}
	slots := routers
	if kind == TopoMesh {
		// XY routes may pass through unpopulated grid positions when the
		// rectangle isn't full (e.g. 8 routers on a 3x3 mesh).
		slots = t.w * t.h
	}
	t.linkFree = make([]uint64, slots*linksPer)
	return t
}

// HopCount returns the number of links a message from src to dst traverses
// (>= 1: co-located tiles use the router-local link).
func (t *topology) HopCount(src, dst NodeID) int {
	a, b := t.nodeR[src], t.nodeR[dst]
	if a == b {
		return 1
	}
	switch t.kind {
	case TopoRing:
		cw := (b - a + t.routers) % t.routers
		ccw := (a - b + t.routers) % t.routers
		if ccw < cw {
			return ccw
		}
		return cw
	case TopoMesh:
		ax, ay := a%t.w, a/t.w
		bx, by := b%t.w, b/t.w
		return abs(bx-ax) + abs(by-ay)
	}
	return 1
}

// routeLatency walks the path from src to dst, reserving every link on it for
// flits cycles and accumulating per-hop latency. start is the cycle at which
// the head flit enters the fabric; the returned cycle is when the tail flit
// arrives at dst. hops and wait report link traversals and contention stall
// cycles for statistics.
func (t *topology) routeLatency(src, dst NodeID, start, flits uint64) (arrival uint64, hops int, wait uint64) {
	a, b := t.nodeR[src], t.nodeR[dst]
	now := start
	take := func(link int) {
		free := t.linkFree[link]
		if free > now {
			wait += free - now
			now = free
		}
		t.linkFree[link] = now + flits
		now += t.hop
		hops++
	}
	if a == b {
		take(a*linksPer + linkLocal)
		return now + flits - 1, hops, wait
	}
	switch t.kind {
	case TopoRing:
		cw := (b - a + t.routers) % t.routers
		ccw := (a - b + t.routers) % t.routers
		if cw <= ccw { // ties break clockwise
			for r := a; r != b; r = (r + 1) % t.routers {
				take(r*linksPer + linkEast)
			}
		} else {
			for r := a; r != b; r = (r - 1 + t.routers) % t.routers {
				take(r*linksPer + linkWest)
			}
		}
	case TopoMesh:
		// Dimension-ordered XY routing: all X hops, then all Y hops.
		x, y := a%t.w, a/t.w
		bx, by := b%t.w, b/t.w
		for x < bx {
			take((y*t.w+x)*linksPer + linkEast)
			x++
		}
		for x > bx {
			take((y*t.w+x)*linksPer + linkWest)
			x--
		}
		for y < by {
			take((y*t.w+x)*linksPer + linkSouth)
			y++
		}
		for y > by {
			take((y*t.w+x)*linksPer + linkNorth)
			y--
		}
	}
	return now + flits - 1, hops, wait
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SetTopology switches the network to a ring or mesh NoC with the given
// per-hop latency (TopoFlat restores the fixed-latency crossbar). cores is
// the number of core nodes (the rest are LLC slices). Must be called before
// any traffic is sent.
func (n *Network) SetTopology(kind TopoKind, hopLatency uint64, cores int) {
	if kind == TopoFlat {
		n.topo = nil
		return
	}
	n.topo = newTopology(kind, hopLatency, n.nodes, cores)
}

// Topology reports the active topology kind.
func (n *Network) Topology() TopoKind {
	if n.topo == nil {
		return TopoFlat
	}
	return n.topo.kind
}

// MinDeliveryLatency returns the smallest possible cycle count between a
// Send and the message becoming deliverable: the base Latency on the flat
// fabric, one hop on a ring or mesh. The conservative parallel engine uses
// this as its lookahead window — a message sent at cycle c can never need
// delivery before c+MinDeliveryLatency (fault perturbation excluded; the
// parallel engine refuses fault plans).
func (n *Network) MinDeliveryLatency() uint64 {
	if n.topo != nil {
		return n.topo.hop
	}
	return n.Latency
}

// HopCount returns the link count between two endpoints (1 on the flat
// fabric). Exposed for topology tests and experiment reporting.
func (n *Network) HopCount(src, dst NodeID) int {
	if n.topo == nil {
		return 1
	}
	return n.topo.HopCount(src, dst)
}
