package stats

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestCanonicalCoversConstants parses stats.go and checks that every Ctr*
// constant is described by Canonical() — the docs counter table is generated
// from Canonical, so a constant missing here is a counter missing from the
// documentation.
func TestCanonicalCoversConstants(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stats.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ctrNames []string
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for _, ident := range vs.Names {
			if strings.HasPrefix(ident.Name, "Ctr") {
				ctrNames = append(ctrNames, ident.Name)
			}
		}
		return true
	})
	if len(ctrNames) < 40 {
		t.Fatalf("parsed only %d Ctr* constants from stats.go — parser broken?", len(ctrNames))
	}

	// Map constant identifier -> runtime value via a generated lookup: the
	// constants are untyped strings, so evaluate them by name.
	described := map[string]bool{}
	for _, c := range Canonical() {
		described[c.Name] = true
		if c.Desc == "" {
			t.Errorf("counter %s has an empty description", c.Name)
		}
	}
	for _, ident := range ctrNames {
		val, ok := ctrValueByIdent[ident]
		if !ok {
			t.Errorf("constant %s is not registered in ctrValueByIdent (add it there and to Canonical)", ident)
			continue
		}
		if !described[val] {
			t.Errorf("constant %s (%q) is missing from Canonical()", ident, val)
		}
	}
	if len(ctrNames) != len(ctrValueByIdent) {
		t.Errorf("stats.go declares %d Ctr* constants but ctrValueByIdent maps %d", len(ctrNames), len(ctrValueByIdent))
	}
}

// ctrValueByIdent mirrors the Ctr* constant block; TestCanonicalCoversConstants
// fails if it drifts from stats.go.
var ctrValueByIdent = map[string]string{
	"CtrL1DAccesses":       CtrL1DAccesses,
	"CtrL1DHits":           CtrL1DHits,
	"CtrL1DMisses":         CtrL1DMisses,
	"CtrL1DFills":          CtrL1DFills,
	"CtrL1DEvicts":         CtrL1DEvicts,
	"CtrL1DWbDirty":        CtrL1DWbDirty,
	"CtrLLCAccesses":       CtrLLCAccesses,
	"CtrLLCHits":           CtrLLCHits,
	"CtrLLCMisses":         CtrLLCMisses,
	"CtrLLCFills":          CtrLLCFills,
	"CtrLLCEvicts":         CtrLLCEvicts,
	"CtrDirInval":          CtrDirInval,
	"CtrDirInterv":         CtrDirInterv,
	"CtrDirFetchReq":       CtrDirFetchReq,
	"CtrDirPendingQ":       CtrDirPendingQ,
	"CtrMemReads":          CtrMemReads,
	"CtrMemWrites":         CtrMemWrites,
	"CtrNetMessages":       CtrNetMessages,
	"CtrNetBytes":          CtrNetBytes,
	"CtrNetHops":           CtrNetHops,
	"CtrNetLinkWait":       CtrNetLinkWait,
	"CtrNetInflightPeak":   CtrNetInflightPeak,
	"CtrDirPendqPeak":      CtrDirPendqPeak,
	"CtrFSDetected":        CtrFSDetected,
	"CtrFSPrivatized":      CtrFSPrivatized,
	"CtrFSPrivAborted":     CtrFSPrivAborted,
	"CtrFSTerminations":    CtrFSTerminations,
	"CtrFSTermConflict":    CtrFSTermConflict,
	"CtrFSTermEviction":    CtrFSTermEviction,
	"CtrFSTermSAMEvict":    CtrFSTermSAMEvict,
	"CtrFSTermExternal":    CtrFSTermExternal,
	"CtrFSChkRequests":     CtrFSChkRequests,
	"CtrFSMetadataMsgs":    CtrFSMetadataMsgs,
	"CtrFSPhantomMsgs":     CtrFSPhantomMsgs,
	"CtrFSTrueSharing":     CtrFSTrueSharing,
	"CtrFSMetadataResets":  CtrFSMetadataResets,
	"CtrFSHysteresisBlock": CtrFSHysteresisBlock,
	"CtrFSContended":       CtrFSContended,
	"CtrFSPrvMerges":       CtrFSPrvMerges,
	"CtrFSPrvCycles":       CtrFSPrvCycles,
	"CtrFSUpdPushes":       CtrFSUpdPushes,
	"CtrFSUpdInstalls":     CtrFSUpdInstalls,
	"CtrSAMReplacements":   CtrSAMReplacements,
	"CtrSAMLookups":        CtrSAMLookups,
	"CtrPAMUpdates":        CtrPAMUpdates,
	"CtrOpsCommitted":      CtrOpsCommitted,
	"CtrLoadsCommitted":    CtrLoadsCommitted,
	"CtrStoresCommit":      CtrStoresCommit,
	"CtrAtomicsCommit":     CtrAtomicsCommit,
	"CtrReducesCommit":     CtrReducesCommit,
	"CtrComputeCycles":     CtrComputeCycles,
	"CtrStallCycles":       CtrStallCycles,
	"CtrCommitStalls":      CtrCommitStalls,
	"CtrCycles":            CtrCycles,
}
