package stats

import (
	"fmt"
	"math"
)

// Estimate is a sampled metric: a point estimate extrapolated from detailed
// windows plus a 95% confidence interval and the fraction of the run that was
// measured in detail. Sampled runs (internal/sample) attach one Estimate per
// timing-domain counter; functionally-accrued counters are exact and carry no
// Estimate.
type Estimate struct {
	// Mean is the extrapolated whole-run value (the ratio estimator applied
	// to the detailed windows).
	Mean float64

	// CI95 is the half-width of the 95% confidence interval around Mean,
	// from the across-window variance of the per-access rate. Zero when
	// fewer than two detailed windows completed.
	CI95 float64

	// Coverage is the fraction of committed accesses measured in detailed
	// windows (the SMARTS "detail fraction").
	Coverage float64

	// Windows is the number of completed detailed windows the estimate
	// aggregates.
	Windows int
}

// RelCI returns CI95 as a fraction of Mean (0 when Mean is 0).
func (e Estimate) RelCI() float64 {
	if e.Mean == 0 {
		return 0
	}
	return e.CI95 / math.Abs(e.Mean)
}

// String renders "mean ± ci" with the interval in absolute terms.
func (e Estimate) String() string {
	return fmt.Sprintf("%.0f ± %.0f", e.Mean, e.CI95)
}
