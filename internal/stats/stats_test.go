package stats

import (
	"strings"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if s.Get("x") != 0 {
		t.Fatal("fresh counter must be zero")
	}
	s.Inc("x")
	s.Add("x", 4)
	if s.Get("x") != 5 {
		t.Fatalf("x = %d, want 5", s.Get("x"))
	}
	s.Set("x", 2)
	if s.Get("x") != 2 {
		t.Fatal("Set failed")
	}
	s.Max("x", 10)
	s.Max("x", 3)
	if s.Get("x") != 10 {
		t.Fatal("Max failed")
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet()
	s.Inc("b")
	s.Inc("a")
	s.Inc("c")
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := NewSet()
	s.Add("a", 1)
	snap := s.Snapshot()
	s.Add("a", 1)
	if snap["a"] != 1 || s.Get("a") != 2 {
		t.Fatal("snapshot not isolated")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merge: %v", a.Snapshot())
	}
}

func TestSumPrefixAndRatio(t *testing.T) {
	s := NewSet()
	s.Add("net.msg.req", 2)
	s.Add("net.msg.rsp", 3)
	s.Add("other", 10)
	if s.SumPrefix("net.msg.") != 5 {
		t.Fatalf("SumPrefix = %d", s.SumPrefix("net.msg."))
	}
	s.Set("hits", 30)
	s.Set("accesses", 60)
	if r := s.Ratio("hits", "accesses"); r != 0.5 {
		t.Fatalf("Ratio = %v", r)
	}
	if r := s.Ratio("hits", "nonexistent"); r != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
}

func TestResetAndString(t *testing.T) {
	s := NewSet()
	s.Add("alpha", 7)
	if !strings.Contains(s.String(), "alpha") {
		t.Fatal("String missing counter")
	}
	s.Reset()
	if len(s.Names()) != 0 {
		t.Fatal("Reset left counters behind")
	}
}
