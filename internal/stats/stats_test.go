package stats

import (
	"strings"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if s.Get("x") != 0 {
		t.Fatal("fresh counter must be zero")
	}
	s.Inc("x")
	s.Add("x", 4)
	if s.Get("x") != 5 {
		t.Fatalf("x = %d, want 5", s.Get("x"))
	}
	s.Set("x", 2)
	if s.Get("x") != 2 {
		t.Fatal("Set failed")
	}
	s.Max("x", 10)
	s.Max("x", 3)
	if s.Get("x") != 10 {
		t.Fatal("Max failed")
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet()
	s.Inc("b")
	s.Inc("a")
	s.Inc("c")
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := NewSet()
	s.Add("a", 1)
	snap := s.Snapshot()
	s.Add("a", 1)
	if snap["a"] != 1 || s.Get("a") != 2 {
		t.Fatal("snapshot not isolated")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merge: %v", a.Snapshot())
	}
}

// Regression: peak counters (written via Max) used to be summed on Merge,
// producing nonsense high-water marks when aggregating across runs.
func TestMergePeakCountersTakeMax(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Max(CtrNetInflightPeak, 7)
	b.Max(CtrNetInflightPeak, 5)
	b.Add(CtrNetMessages, 100)
	a.Merge(b)
	if got := a.Get(CtrNetInflightPeak); got != 7 {
		t.Fatalf("peak after merge = %d, want max(7,5) = 7", got)
	}
	a.Merge(b) // merging again must still not inflate the peak
	if got := a.Get(CtrNetInflightPeak); got != 7 {
		t.Fatalf("peak after second merge = %d, want 7", got)
	}
	if got := a.Get(CtrNetMessages); got != 200 {
		t.Fatalf("sum counter after two merges = %d, want 200", got)
	}

	// The other direction: the incoming peak wins when larger.
	c := NewSet()
	c.Max(CtrDirPendqPeak, 2)
	d := NewSet()
	d.Max(CtrDirPendqPeak, 9)
	c.Merge(d)
	if got := c.Get(CtrDirPendqPeak); got != 9 {
		t.Fatalf("peak after merge = %d, want 9", got)
	}

	if !IsPeak(CtrNetInflightPeak) || IsPeak(CtrNetMessages) {
		t.Fatal("IsPeak misclassifies counters")
	}
}

func TestSumPrefixAndRatio(t *testing.T) {
	s := NewSet()
	s.Add("net.msg.req", 2)
	s.Add("net.msg.rsp", 3)
	s.Add("other", 10)
	if s.SumPrefix("net.msg.") != 5 {
		t.Fatalf("SumPrefix = %d", s.SumPrefix("net.msg."))
	}
	s.Set("hits", 30)
	s.Set("accesses", 60)
	if r := s.Ratio("hits", "accesses"); r != 0.5 {
		t.Fatalf("Ratio = %v", r)
	}
	if r := s.Ratio("hits", "nonexistent"); r != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
}

func TestResetAndString(t *testing.T) {
	s := NewSet()
	s.Add("alpha", 7)
	if !strings.Contains(s.String(), "alpha") {
		t.Fatal("String missing counter")
	}
	s.Reset()
	if len(s.Names()) != 0 {
		t.Fatal("Reset left counters behind")
	}
}
