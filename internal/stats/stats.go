// Package stats provides deterministic counter collection for the simulator.
//
// Every component in the simulated memory hierarchy increments named counters
// through a shared *Set. Counters are plain uint64 values: the simulator is
// single-threaded by design, so no synchronization is needed, and snapshots
// are fully deterministic for a given configuration and workload seed.
//
// Canonical counters (the Ctr* constants below) are stored in index-addressed
// slots: hot components address them by ID (the ID constants) with a plain
// array access, no hashing and no allocation. The string map remains for
// long-tail ad hoc counters (per-opcode network breakdowns, rarely-hit debug
// counters); the string-keyed methods transparently route canonical names to
// their slots, so callers never observe the split.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// ID addresses one canonical counter slot. The zero-allocation hot paths in
// network, coherence and cpu use IDs directly (IncID/AddID/MaxID); IDFor maps
// a canonical name to its ID for code that starts from a string.
type ID uint8

// Canonical counter IDs, one per Ctr* constant (same order).
const (
	IDL1DAccesses ID = iota
	IDL1DHits
	IDL1DMisses
	IDL1DFills
	IDL1DEvicts
	IDL1DWbDirty
	IDLLCAccesses
	IDLLCHits
	IDLLCMisses
	IDLLCFills
	IDLLCEvicts
	IDDirInval
	IDDirInterv
	IDDirFetchReq
	IDDirPendingQ
	IDMemReads
	IDMemWrites
	IDNetMessages
	IDNetBytes
	IDNetHops
	IDNetLinkWait
	IDNetInflightPeak
	IDDirPendqPeak
	IDFSDetected
	IDFSPrivatized
	IDFSPrivAborted
	IDFSTerminations
	IDFSTermConflict
	IDFSTermEviction
	IDFSTermSAMEvict
	IDFSTermExternal
	IDFSChkRequests
	IDFSMetadataMsgs
	IDFSPhantomMsgs
	IDFSTrueSharing
	IDFSMetadataResets
	IDFSHysteresisBlock
	IDFSContended
	IDFSPrvMerges
	IDFSPrvCycles
	IDFSUpdPushes
	IDFSUpdInstalls
	IDSAMReplacements
	IDSAMLookups
	IDPAMUpdates
	IDOpsCommitted
	IDLoadsCommitted
	IDStoresCommit
	IDAtomicsCommit
	IDReducesCommit
	IDComputeCycles
	IDStallCycles
	IDCommitStalls
	IDCycles

	// NumIDs is the number of canonical counter slots.
	NumIDs
)

// idNames maps each ID to its canonical counter name.
var idNames = [NumIDs]string{
	IDL1DAccesses:       CtrL1DAccesses,
	IDL1DHits:           CtrL1DHits,
	IDL1DMisses:         CtrL1DMisses,
	IDL1DFills:          CtrL1DFills,
	IDL1DEvicts:         CtrL1DEvicts,
	IDL1DWbDirty:        CtrL1DWbDirty,
	IDLLCAccesses:       CtrLLCAccesses,
	IDLLCHits:           CtrLLCHits,
	IDLLCMisses:         CtrLLCMisses,
	IDLLCFills:          CtrLLCFills,
	IDLLCEvicts:         CtrLLCEvicts,
	IDDirInval:          CtrDirInval,
	IDDirInterv:         CtrDirInterv,
	IDDirFetchReq:       CtrDirFetchReq,
	IDDirPendingQ:       CtrDirPendingQ,
	IDMemReads:          CtrMemReads,
	IDMemWrites:         CtrMemWrites,
	IDNetMessages:       CtrNetMessages,
	IDNetBytes:          CtrNetBytes,
	IDNetHops:           CtrNetHops,
	IDNetLinkWait:       CtrNetLinkWait,
	IDNetInflightPeak:   CtrNetInflightPeak,
	IDDirPendqPeak:      CtrDirPendqPeak,
	IDFSDetected:        CtrFSDetected,
	IDFSPrivatized:      CtrFSPrivatized,
	IDFSPrivAborted:     CtrFSPrivAborted,
	IDFSTerminations:    CtrFSTerminations,
	IDFSTermConflict:    CtrFSTermConflict,
	IDFSTermEviction:    CtrFSTermEviction,
	IDFSTermSAMEvict:    CtrFSTermSAMEvict,
	IDFSTermExternal:    CtrFSTermExternal,
	IDFSChkRequests:     CtrFSChkRequests,
	IDFSMetadataMsgs:    CtrFSMetadataMsgs,
	IDFSPhantomMsgs:     CtrFSPhantomMsgs,
	IDFSTrueSharing:     CtrFSTrueSharing,
	IDFSMetadataResets:  CtrFSMetadataResets,
	IDFSHysteresisBlock: CtrFSHysteresisBlock,
	IDFSContended:       CtrFSContended,
	IDFSPrvMerges:       CtrFSPrvMerges,
	IDFSPrvCycles:       CtrFSPrvCycles,
	IDFSUpdPushes:       CtrFSUpdPushes,
	IDFSUpdInstalls:     CtrFSUpdInstalls,
	IDSAMReplacements:   CtrSAMReplacements,
	IDSAMLookups:        CtrSAMLookups,
	IDPAMUpdates:        CtrPAMUpdates,
	IDOpsCommitted:      CtrOpsCommitted,
	IDLoadsCommitted:    CtrLoadsCommitted,
	IDStoresCommit:      CtrStoresCommit,
	IDAtomicsCommit:     CtrAtomicsCommit,
	IDReducesCommit:     CtrReducesCommit,
	IDComputeCycles:     CtrComputeCycles,
	IDStallCycles:       CtrStallCycles,
	IDCommitStalls:      CtrCommitStalls,
	IDCycles:            CtrCycles,
}

var (
	idByName = make(map[string]ID, NumIDs)
	idPeak   [NumIDs]bool
)

func init() {
	for id := ID(0); id < NumIDs; id++ {
		if idNames[id] == "" {
			panic(fmt.Sprintf("stats: ID %d has no canonical name", id))
		}
		idByName[idNames[id]] = id
		idPeak[id] = IsPeak(idNames[id])
	}
}

// IDFor returns the slot ID for a canonical counter name.
func IDFor(name string) (ID, bool) {
	id, ok := idByName[name]
	return id, ok
}

// Name returns the canonical counter name for a slot ID.
func (id ID) Name() string { return idNames[id] }

// Set is a collection of named counters.
//
// The zero value is not usable; construct with NewSet.
type Set struct {
	// slots holds the canonical counters; present tracks which have been
	// touched, preserving the map semantics of "only counters that were
	// written appear in Snapshot/Names".
	slots   [NumIDs]uint64
	present [NumIDs]bool

	counters map[string]uint64 // long-tail (non-canonical) counters
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]uint64)}
}

// AddID increments canonical counter id by delta.
func (s *Set) AddID(id ID, delta uint64) {
	s.slots[id] += delta
	s.present[id] = true
}

// IncID increments canonical counter id by one.
func (s *Set) IncID(id ID) {
	s.slots[id]++
	s.present[id] = true
}

// GetID returns the current value of canonical counter id.
func (s *Set) GetID(id ID) uint64 { return s.slots[id] }

// SetID stores an absolute value for canonical counter id.
func (s *Set) SetID(id ID, v uint64) {
	s.slots[id] = v
	s.present[id] = true
}

// MaxID raises canonical counter id to v if v is larger than the current
// value. Like Max, a zero observation on an untouched counter leaves no trace.
func (s *Set) MaxID(id ID, v uint64) {
	if v > s.slots[id] {
		s.slots[id] = v
		s.present[id] = true
	}
}

// Add increments counter name by delta.
func (s *Set) Add(name string, delta uint64) {
	if id, ok := idByName[name]; ok {
		s.AddID(id, delta)
		return
	}
	s.counters[name] += delta
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) {
	if id, ok := idByName[name]; ok {
		s.IncID(id)
		return
	}
	s.counters[name]++
}

// Get returns the current value of counter name (zero if never incremented).
func (s *Set) Get(name string) uint64 {
	if id, ok := idByName[name]; ok {
		return s.slots[id]
	}
	return s.counters[name]
}

// Set stores an absolute value for counter name, replacing any prior value.
func (s *Set) Set(name string, v uint64) {
	if id, ok := idByName[name]; ok {
		s.SetID(id, v)
		return
	}
	s.counters[name] = v
}

// Max raises counter name to v if v is larger than the current value.
func (s *Set) Max(name string, v uint64) {
	if id, ok := idByName[name]; ok {
		s.MaxID(id, v)
		return
	}
	if v > s.counters[name] {
		s.counters[name] = v
	}
}

// Names returns the sorted list of counter names present in the set.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters)+int(NumIDs))
	for id := ID(0); id < NumIDs; id++ {
		if s.present[id] {
			names = append(names, idNames[id])
		}
	}
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters)+int(NumIDs))
	for id := ID(0); id < NumIDs; id++ {
		if s.present[id] {
			out[idNames[id]] = s.slots[id]
		}
	}
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// PeakSuffix marks counters with max semantics: values written via Max
// (peaks, high-water marks) rather than accumulated. Merge takes the
// maximum for such counters instead of summing, since summing two peak
// observations is meaningless.
const PeakSuffix = ".peak"

// IsPeak reports whether the counter name follows the peak (max-semantics)
// naming convention.
func IsPeak(name string) bool { return strings.HasSuffix(name, PeakSuffix) }

// Merge folds every counter of other into s: counters accumulate, except
// peak counters (names ending in PeakSuffix), which take the maximum.
func (s *Set) Merge(other *Set) {
	for id := ID(0); id < NumIDs; id++ {
		if !other.present[id] {
			continue
		}
		if idPeak[id] {
			s.MaxID(id, other.slots[id])
			s.present[id] = true
		} else {
			s.AddID(id, other.slots[id])
		}
	}
	s.mergeTail(other.counters)
}

// MergeMap folds a counter map into s under the same rules as Merge.
// Canonical names route into their slots.
func (s *Set) MergeMap(counters map[string]uint64) {
	for k, v := range counters {
		if id, ok := idByName[k]; ok {
			if idPeak[id] {
				s.MaxID(id, v)
				s.present[id] = true
			} else {
				s.AddID(id, v)
			}
			continue
		}
		s.mergeOne(k, v)
	}
}

func (s *Set) mergeTail(counters map[string]uint64) {
	for k, v := range counters {
		s.mergeOne(k, v)
	}
}

func (s *Set) mergeOne(k string, v uint64) {
	if IsPeak(k) {
		if v > s.counters[k] {
			s.counters[k] = v
		}
	} else {
		s.counters[k] += v
	}
}

// Reset removes all counters.
func (s *Set) Reset() {
	s.slots = [NumIDs]uint64{}
	s.present = [NumIDs]bool{}
	s.counters = make(map[string]uint64)
}

// SumPrefix returns the sum of all counters whose name begins with prefix.
func (s *Set) SumPrefix(prefix string) uint64 {
	var sum uint64
	for id := ID(0); id < NumIDs; id++ {
		if s.present[id] && strings.HasPrefix(idNames[id], prefix) {
			sum += s.slots[id]
		}
	}
	for k, v := range s.counters {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

// String renders the counters one per line, sorted by name.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%-48s %d\n", n, s.Get(n))
	}
	return b.String()
}

// Ratio returns num/den as a float64, or 0 if the denominator counter is zero.
func (s *Set) Ratio(num, den string) float64 {
	d := s.Get(den)
	if d == 0 {
		return 0
	}
	return float64(s.Get(num)) / float64(d)
}

// Canonical counter names shared across the simulator. Components may define
// additional ad hoc counters, but anything consumed by the experiment harness
// must be listed here so the dependency is explicit and greppable.
const (
	// Core-side demand access counters.
	CtrL1DAccesses = "l1d.accesses"
	CtrL1DHits     = "l1d.hits"
	CtrL1DMisses   = "l1d.misses"
	CtrL1DFills    = "l1d.fills"
	CtrL1DEvicts   = "l1d.evictions"
	CtrL1DWbDirty  = "l1d.writebacks_dirty"

	// LLC / directory counters.
	CtrLLCAccesses = "llc.accesses"
	CtrLLCHits     = "llc.hits"
	CtrLLCMisses   = "llc.misses"
	CtrLLCFills    = "llc.fills"
	CtrLLCEvicts   = "llc.evictions"
	CtrDirInval    = "dir.invalidations"
	CtrDirInterv   = "dir.interventions"
	CtrDirFetchReq = "dir.fetch_requests"
	CtrDirPendingQ = "dir.pending_queued"
	CtrMemReads    = "mem.reads"
	CtrMemWrites   = "mem.writes"

	// Network counters (also broken down per message class by the network).
	CtrNetMessages = "net.messages"
	CtrNetBytes    = "net.bytes"

	// NoC topology counters (zero under the flat interconnect).
	CtrNetHops     = "net.hops"
	CtrNetLinkWait = "net.link_wait"

	// High-water marks (max semantics on Merge; see PeakSuffix).
	CtrNetInflightPeak = "net.inflight" + PeakSuffix
	CtrDirPendqPeak    = "dir.pendq" + PeakSuffix

	// FSDetect / FSLite counters.
	CtrFSDetected        = "fs.lines_detected"
	CtrFSPrivatized      = "fs.privatizations"
	CtrFSPrivAborted     = "fs.privatization_aborts"
	CtrFSTerminations    = "fs.terminations"
	CtrFSTermConflict    = "fs.terminations_conflict"
	CtrFSTermEviction    = "fs.terminations_eviction"
	CtrFSTermSAMEvict    = "fs.terminations_sam_evict"
	CtrFSTermExternal    = "fs.terminations_external"
	CtrFSChkRequests     = "fs.chk_requests"
	CtrFSMetadataMsgs    = "fs.metadata_messages"
	CtrFSPhantomMsgs     = "fs.phantom_messages"
	CtrFSTrueSharing     = "fs.true_sharing_marks"
	CtrFSMetadataResets  = "fs.metadata_resets"
	CtrFSHysteresisBlock = "fs.hysteresis_blocked"
	CtrFSContended       = "fs.contended_lines"
	CtrFSPrvMerges       = "fs.prv_merges"
	CtrFSPrvCycles       = "fs.prv_cycles"
	CtrFSUpdPushes       = "fs.upd_pushes"
	CtrFSUpdInstalls     = "fs.upd_installs"
	CtrSAMReplacements   = "sam.valid_replacements"
	CtrSAMLookups        = "sam.lookups"
	CtrPAMUpdates        = "pam.updates"

	// CPU counters.
	CtrOpsCommitted   = "cpu.ops_committed"
	CtrLoadsCommitted = "cpu.loads"
	CtrStoresCommit   = "cpu.stores"
	CtrAtomicsCommit  = "cpu.atomics"
	CtrReducesCommit  = "cpu.reduces"
	CtrComputeCycles  = "cpu.compute_cycles"
	CtrStallCycles    = "cpu.stall_cycles"
	CtrCommitStalls   = "cpu.commit_stalls"

	// Simulation-level.
	CtrCycles = "sim.cycles"
)

// Counter describes one canonical counter for documentation and tooling.
type Counter struct {
	Name string
	Desc string
}

// Canonical returns every canonical counter with a one-line description,
// sorted by name. TestCanonicalCoversConstants keeps this list in lockstep
// with the Ctr* constants above; the fsrun -counters flag renders it as the
// markdown table embedded in the docs.
func Canonical() []Counter {
	out := []Counter{
		{CtrL1DAccesses, "L1D demand accesses (loads + stores + atomics)"},
		{CtrL1DHits, "L1D accesses served without a coherence transaction"},
		{CtrL1DMisses, "L1D accesses that started a coherence transaction"},
		{CtrL1DFills, "blocks installed into an L1D"},
		{CtrL1DEvicts, "blocks evicted from an L1D"},
		{CtrL1DWbDirty, "dirty L1D evictions written back"},
		{CtrLLCAccesses, "LLC slice lookups"},
		{CtrLLCHits, "LLC lookups hitting the data array"},
		{CtrLLCMisses, "LLC lookups missing to memory"},
		{CtrLLCFills, "blocks installed into the LLC"},
		{CtrLLCEvicts, "blocks evicted from the LLC"},
		{CtrDirInval, "invalidations issued by the directory"},
		{CtrDirInterv, "owner interventions (forwarded requests)"},
		{CtrDirFetchReq, "owner data fetches for recall/writeback"},
		{CtrDirPendingQ, "requests queued behind a busy directory line"},
		{CtrMemReads, "main-memory read accesses"},
		{CtrMemWrites, "main-memory write accesses"},
		{CtrNetMessages, "interconnect messages sent"},
		{CtrNetBytes, "interconnect payload bytes sent"},
		{CtrNetHops, "router-to-router link traversals (ring/mesh topologies)"},
		{CtrNetLinkWait, "cycles messages waited for busy NoC links (contention)"},
		{CtrNetInflightPeak, "peak messages simultaneously in flight (max on merge)"},
		{CtrDirPendqPeak, "peak depth of any directory pending queue (max on merge)"},
		{CtrFSDetected, "lines FSDetect classified as falsely shared"},
		{CtrFSPrivatized, "PRV episodes begun (lines privatized)"},
		{CtrFSPrivAborted, "privatization attempts aborted mid-flight"},
		{CtrFSTerminations, "PRV episodes terminated (all causes)"},
		{CtrFSTermConflict, "PRV terminations due to conflicting access"},
		{CtrFSTermEviction, "PRV terminations due to LLC eviction"},
		{CtrFSTermSAMEvict, "PRV terminations due to SAM replacement"},
		{CtrFSTermExternal, "PRV terminations due to external (non-core) access"},
		{CtrFSChkRequests, "GetCHK/GetXCHK byte-check requests"},
		{CtrFSMetadataMsgs, "metadata-class messages (PAM/SAM traffic)"},
		{CtrFSPhantomMsgs, "phantom messages (would-be misses under baseline)"},
		{CtrFSTrueSharing, "lines marked truly shared by the detector"},
		{CtrFSMetadataResets, "periodic PAM/SAM metadata resets"},
		{CtrFSHysteresisBlock, "re-privatizations blocked by hysteresis"},
		{CtrFSContended, "lines classified as contended truly-shared"},
		{CtrFSPrvMerges, "privatized per-core copies byte-merged back"},
		{CtrFSPrvCycles, "cycles lines spent privatized (summed over completed episodes)"},
		{CtrFSUpdPushes, "Upd copies pushed by the hybrid backend"},
		{CtrFSUpdInstalls, "pushed Upd copies installed by cores"},
		{CtrSAMReplacements, "SAM entries evicted while valid"},
		{CtrSAMLookups, "SAM table lookups"},
		{CtrPAMUpdates, "PAM metadata updates"},
		{CtrOpsCommitted, "instructions committed (all cores)"},
		{CtrLoadsCommitted, "loads committed"},
		{CtrStoresCommit, "stores committed"},
		{CtrAtomicsCommit, "atomic RMW operations committed"},
		{CtrReducesCommit, "reduction accumulations committed"},
		{CtrComputeCycles, "cycles cores spent in compute (not stalled)"},
		{CtrStallCycles, "cycles cores spent stalled on memory"},
		{CtrCommitStalls, "OOO commit-stage stalls"},
		{CtrCycles, "simulated cycles until workload completion"},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
