// Package stats provides deterministic counter collection for the simulator.
//
// Every component in the simulated memory hierarchy increments named counters
// through a shared *Set. Counters are plain uint64 values: the simulator is
// single-threaded by design, so no synchronization is needed, and snapshots
// are fully deterministic for a given configuration and workload seed.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a collection of named counters.
//
// The zero value is not usable; construct with NewSet.
type Set struct {
	counters map[string]uint64
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]uint64)}
}

// Add increments counter name by delta.
func (s *Set) Add(name string, delta uint64) {
	s.counters[name] += delta
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) {
	s.counters[name]++
}

// Get returns the current value of counter name (zero if never incremented).
func (s *Set) Get(name string) uint64 {
	return s.counters[name]
}

// Set stores an absolute value for counter name, replacing any prior value.
func (s *Set) Set(name string, v uint64) {
	s.counters[name] = v
}

// Max raises counter name to v if v is larger than the current value.
func (s *Set) Max(name string, v uint64) {
	if v > s.counters[name] {
		s.counters[name] = v
	}
}

// Names returns the sorted list of counter names present in the set.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Merge adds every counter of other into s.
func (s *Set) Merge(other *Set) {
	for k, v := range other.counters {
		s.counters[k] += v
	}
}

// Reset removes all counters.
func (s *Set) Reset() {
	s.counters = make(map[string]uint64)
}

// SumPrefix returns the sum of all counters whose name begins with prefix.
func (s *Set) SumPrefix(prefix string) uint64 {
	var sum uint64
	for k, v := range s.counters {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

// String renders the counters one per line, sorted by name.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%-48s %d\n", n, s.counters[n])
	}
	return b.String()
}

// Ratio returns num/den as a float64, or 0 if the denominator counter is zero.
func (s *Set) Ratio(num, den string) float64 {
	d := s.Get(den)
	if d == 0 {
		return 0
	}
	return float64(s.Get(num)) / float64(d)
}

// Canonical counter names shared across the simulator. Components may define
// additional ad hoc counters, but anything consumed by the experiment harness
// must be listed here so the dependency is explicit and greppable.
const (
	// Core-side demand access counters.
	CtrL1DAccesses = "l1d.accesses"
	CtrL1DHits     = "l1d.hits"
	CtrL1DMisses   = "l1d.misses"
	CtrL1DFills    = "l1d.fills"
	CtrL1DEvicts   = "l1d.evictions"
	CtrL1DWbDirty  = "l1d.writebacks_dirty"

	// LLC / directory counters.
	CtrLLCAccesses = "llc.accesses"
	CtrLLCHits     = "llc.hits"
	CtrLLCMisses   = "llc.misses"
	CtrLLCFills    = "llc.fills"
	CtrLLCEvicts   = "llc.evictions"
	CtrDirInval    = "dir.invalidations"
	CtrDirInterv   = "dir.interventions"
	CtrDirFetchReq = "dir.fetch_requests"
	CtrDirPendingQ = "dir.pending_queued"
	CtrMemReads    = "mem.reads"
	CtrMemWrites   = "mem.writes"

	// Network counters (also broken down per message class by the network).
	CtrNetMessages = "net.messages"
	CtrNetBytes    = "net.bytes"

	// FSDetect / FSLite counters.
	CtrFSDetected        = "fs.lines_detected"
	CtrFSPrivatized      = "fs.privatizations"
	CtrFSPrivAborted     = "fs.privatization_aborts"
	CtrFSTerminations    = "fs.terminations"
	CtrFSTermConflict    = "fs.terminations_conflict"
	CtrFSTermEviction    = "fs.terminations_eviction"
	CtrFSTermSAMEvict    = "fs.terminations_sam_evict"
	CtrFSTermExternal    = "fs.terminations_external"
	CtrFSChkRequests     = "fs.chk_requests"
	CtrFSMetadataMsgs    = "fs.metadata_messages"
	CtrFSPhantomMsgs     = "fs.phantom_messages"
	CtrFSTrueSharing     = "fs.true_sharing_marks"
	CtrFSMetadataResets  = "fs.metadata_resets"
	CtrFSHysteresisBlock = "fs.hysteresis_blocked"
	CtrFSContended       = "fs.contended_lines"
	CtrSAMReplacements   = "sam.valid_replacements"
	CtrSAMLookups        = "sam.lookups"
	CtrPAMUpdates        = "pam.updates"

	// CPU counters.
	CtrOpsCommitted   = "cpu.ops_committed"
	CtrLoadsCommitted = "cpu.loads"
	CtrStoresCommit   = "cpu.stores"
	CtrAtomicsCommit  = "cpu.atomics"
	CtrComputeCycles  = "cpu.compute_cycles"
	CtrStallCycles    = "cpu.stall_cycles"
	CtrCommitStalls   = "cpu.commit_stalls"

	// Simulation-level.
	CtrCycles = "sim.cycles"
)
