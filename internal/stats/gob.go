package stats

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// Gob support for checkpointing. Set's internals are unexported (ID-indexed
// slots plus a long-tail map), so it implements GobEncoder/GobDecoder
// explicitly. Canonical counters travel by name, not slot index, so a
// checkpoint survives reordering or insertion of ID constants as long as the
// names still exist; the long-tail map is flattened to a sorted slice so
// identical sets encode to identical bytes (checkpoint files stay
// byte-reproducible).

// setWire is the serialized form of a Set.
type setWire struct {
	Canonical []wireCounter
	Tail      []wireCounter
}

type wireCounter struct {
	Name  string
	Value uint64
}

// GobEncode implements gob.GobEncoder.
func (s *Set) GobEncode() ([]byte, error) {
	var w setWire
	for id := ID(0); id < NumIDs; id++ {
		if s.present[id] {
			w.Canonical = append(w.Canonical, wireCounter{Name: idNames[id], Value: s.slots[id]})
		}
	}
	for name, v := range s.counters {
		w.Tail = append(w.Tail, wireCounter{Name: name, Value: v})
	}
	sort.Slice(w.Tail, func(i, j int) bool { return w.Tail[i].Name < w.Tail[j].Name })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, replacing the set's contents.
func (s *Set) GobDecode(data []byte) error {
	var w setWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.Reset()
	for _, c := range w.Canonical {
		s.Set(c.Name, c.Value)
	}
	for _, c := range w.Tail {
		s.Set(c.Name, c.Value)
	}
	return nil
}

// CopyFrom replaces s's contents with an exact copy of other's (restore
// path: components hold a pointer to s, so the Set is updated in place).
func (s *Set) CopyFrom(other *Set) {
	s.slots = other.slots
	s.present = other.present
	s.counters = make(map[string]uint64, len(other.counters))
	for k, v := range other.counters {
		s.counters[k] = v
	}
}
