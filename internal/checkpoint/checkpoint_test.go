package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const (
	goldenIdentity = 0xfeedface12345678
	goldenPath     = "testdata/golden.ckpt"
)

var goldenPayload = []byte("fscoherence golden checkpoint payload, format v1\n")

// TestGoldenCheckpoint pins the on-disk envelope format: the checked-in
// golden file must keep decoding byte-for-byte with the current reader. If
// this fails after an intentional format change, bump Version and regenerate
// the golden (see checkpoint_golden_gen_test.go) — old files must then be
// rejected with ErrVersion, never misread.
func TestGoldenCheckpoint(t *testing.T) {
	payload, err := Read(goldenPath, goldenIdentity)
	if err != nil {
		t.Fatalf("Read(golden): %v", err)
	}
	if !bytes.Equal(payload, goldenPayload) {
		t.Fatalf("golden payload mismatch:\n got %q\nwant %q", payload, goldenPayload)
	}
}

// TestGoldenBytesStable verifies Write reproduces the golden file exactly:
// the envelope has no nondeterministic fields, so checkpoint files are
// byte-reproducible.
func TestGoldenBytesStable(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	p := filepath.Join(t.TempDir(), "re.ckpt")
	if err := Write(p, goldenIdentity, goldenPayload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("read rewritten: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rewritten envelope differs from golden (%d vs %d bytes)", len(got), len(want))
	}
}

func TestRoundTrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x.ckpt")
	payload := bytes.Repeat([]byte{0xab, 0xcd, 0x00, 0x7f}, 1000)
	if err := Write(p, 42, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(p, 42)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after round trip")
	}
	if id, err := ReadIdentity(p); err != nil || id != 42 {
		t.Fatalf("ReadIdentity = %d, %v; want 42, nil", id, err)
	}
}

// TestVersionBumpRejected simulates a checkpoint from a future build: the
// version field is bumped and the error must be ErrVersion (so the caller
// warns and runs cold, rather than misinterpreting the payload).
func TestVersionBumpRejected(t *testing.T) {
	env := goldenEnvelope(t)
	binary.LittleEndian.PutUint32(env[8:12], Version+1)
	_, err := Decode(env, goldenIdentity)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version-bumped file: got %v, want ErrVersion", err)
	}
}

// TestTruncationRejected covers every truncation point: mid-header,
// header-only, and mid-payload. All must be ErrCorrupt.
func TestTruncationRejected(t *testing.T) {
	env := goldenEnvelope(t)
	for _, n := range []int{0, 1, headerSize - 1, headerSize, len(env) - 1} {
		if _, err := Decode(env[:n], goldenIdentity); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

// TestBitFlipRejected flips one bit in every byte position in turn; each
// mutation must be rejected (the identity-field positions yield ErrIdentity,
// the version field ErrVersion, everything else ErrCorrupt — never success).
func TestBitFlipRejected(t *testing.T) {
	env := goldenEnvelope(t)
	for i := range env {
		mut := append([]byte(nil), env...)
		mut[i] ^= 0x40
		_, err := Decode(mut, goldenIdentity)
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
		switch {
		case i >= 8 && i < 12:
			if !errors.Is(err, ErrVersion) {
				t.Errorf("flip in version field (byte %d): got %v, want ErrVersion", i, err)
			}
		case i >= 12 && i < 20:
			if !errors.Is(err, ErrIdentity) {
				t.Errorf("flip in identity field (byte %d): got %v, want ErrIdentity", i, err)
			}
		default:
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("flip at byte %d: got %v, want ErrCorrupt", i, err)
			}
		}
	}
}

func TestIdentityMismatchRejected(t *testing.T) {
	env := goldenEnvelope(t)
	_, err := Decode(env, goldenIdentity+1)
	if !errors.Is(err, ErrIdentity) {
		t.Fatalf("wrong identity: got %v, want ErrIdentity", err)
	}
}

func TestMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.ckpt"), 0); err == nil {
		t.Fatal("Read of missing file succeeded")
	}
}

// TestWriteReplacesAtomically overwrites an existing checkpoint and verifies
// the old content is fully replaced (rename semantics) and no temp files
// linger.
func TestWriteReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.ckpt")
	if err := Write(p, 7, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := Write(p, 7, []byte("new and longer")); err != nil {
		t.Fatal(err)
	}
	got, err := Read(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new and longer" {
		t.Fatalf("payload = %q after overwrite", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d directory entries after two writes (temp file leaked?)", len(ents))
	}
}

// goldenEnvelope loads the raw golden file bytes for mutation tests.
func goldenEnvelope(t *testing.T) []byte {
	t.Helper()
	env, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	return env
}
