// Package checkpoint frames machine-state snapshots for crash-safe
// persistence. It owns the on-disk envelope only — callers hand it an opaque
// payload (in practice a gob-encoded sim.MachineState) plus an identity hash
// of the configuration that produced it; the package guarantees
//
//   - atomicity: a checkpoint file is either the complete previous snapshot
//     or the complete new one, never a torn mix (temp file + fsync + rename),
//   - integrity: a CRC over the payload rejects bit rot and truncation,
//   - versioning: a format version rejects snapshots from incompatible
//     builds, and
//   - identity: the configuration hash rejects snapshots from a different
//     (benchmark, options, cadence) cell.
//
// All rejection paths return typed errors (ErrCorrupt, ErrVersion,
// ErrIdentity) so callers can degrade to a cold run with a warning instead
// of panicking.
//
// Envelope layout (little-endian):
//
//	offset size  field
//	0      8     magic "FSCKPT\r\n"
//	8      4     format version (uint32)
//	12     8     identity hash  (uint64)
//	20     8     payload length (uint64)
//	28     4     CRC-32 (IEEE) of the payload
//	32     n     payload
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Version is the current checkpoint format version. Bump it whenever the
// payload encoding (the gob'd machine state) changes incompatibly; old files
// are then rejected with ErrVersion and the caller re-runs cold.
const Version uint32 = 1

const (
	headerSize = 32
	magic      = "FSCKPT\r\n" // \r\n catches ASCII-mode transfer mangling
)

var (
	// ErrCorrupt reports a truncated, bit-flipped or non-checkpoint file.
	ErrCorrupt = errors.New("checkpoint: corrupt or truncated file")
	// ErrVersion reports a checkpoint from an incompatible format version.
	ErrVersion = errors.New("checkpoint: incompatible format version")
	// ErrIdentity reports a checkpoint written by a different configuration
	// (benchmark, options or checkpoint cadence).
	ErrIdentity = errors.New("checkpoint: configuration identity mismatch")
)

// Write atomically persists payload to path: the envelope is assembled in a
// temp file in the same directory, fsync'd, and renamed over path. A crash at
// any point leaves either the old file or the new one.
func Write(path string, identity uint64, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename

	hdr := make([]byte, headerSize)
	copy(hdr[0:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[12:20], identity)
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[28:32], crc32.ChecksumIEEE(payload))

	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Read loads and validates a checkpoint written by Write, returning its
// payload. identity must match the hash the file was written with; pass the
// hash of the resuming configuration so a checkpoint from a different cell is
// rejected (ErrIdentity) instead of silently restoring the wrong machine.
func Read(path string, identity uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(data, identity)
}

// Decode validates an in-memory envelope (see Read).
func Decode(data []byte, identity uint64) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorrupt, len(data), headerSize)
	}
	if string(data[0:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads version %d", ErrVersion, v, Version)
	}
	if id := binary.LittleEndian.Uint64(data[12:20]); id != identity {
		return nil, fmt.Errorf("%w: file %#x, want %#x", ErrIdentity, id, identity)
	}
	n := binary.LittleEndian.Uint64(data[20:28])
	if uint64(len(data)-headerSize) != n {
		return nil, fmt.Errorf("%w: payload %d bytes, header declares %d", ErrCorrupt, len(data)-headerSize, n)
	}
	payload := data[headerSize:]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(data[28:32]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return payload, nil
}

// ReadIdentity returns the identity hash stored in a checkpoint file without
// validating the payload (used to key warm-state cache lookups).
func ReadIdentity(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(hdr[0:8]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(hdr[12:20]), nil
}
