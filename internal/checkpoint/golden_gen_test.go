package checkpoint

import (
	"os"
	"testing"
)

// TestRegenerateGolden rewrites testdata/golden.ckpt when
// FSCKPT_REGEN_GOLDEN=1 is set. Run it after an intentional format change
// (and bump Version first):
//
//	FSCKPT_REGEN_GOLDEN=1 go test -run TestRegenerateGolden ./internal/checkpoint/
func TestRegenerateGolden(t *testing.T) {
	if os.Getenv("FSCKPT_REGEN_GOLDEN") == "" {
		t.Skip("set FSCKPT_REGEN_GOLDEN=1 to rewrite the golden checkpoint")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := Write(goldenPath, goldenIdentity, goldenPayload); err != nil {
		t.Fatal(err)
	}
}
