package sample

import (
	"math"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in       string
		det, wrm uint64
	}{
		{"", 0, 0},
		{"50k:950k", 50_000, 950_000},
		{"1m:19m", 1_000_000, 19_000_000},
		{"1g:9g", 1_000_000_000, 9_000_000_000},
		{"100:900", 100, 900},
		{"2K:8M", 2_000, 8_000_000},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if s.Detailed != c.det || s.Warming != c.wrm {
			t.Fatalf("ParseSpec(%q) = %+v, want %d:%d", c.in, s, c.det, c.wrm)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"50k", ":", "50k:", ":950k", "0:950k", "50k:0", "abc:def",
		"5x:10", "-1:10", "1.5k:10", "0k:10", "99999999999g:1",
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Fatalf("ParseSpec(%q) accepted a malformed spec", in)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, in := range []string{"50k:950k", "1m:19m", "123:456", "1g:9g"} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(s.String())
		if err != nil || back != s {
			t.Fatalf("round trip %q -> %q -> %+v", in, s.String(), back)
		}
	}
	if (Spec{}).String() != "" {
		t.Fatal("disabled spec should render empty")
	}
}

func TestEstimatorExact(t *testing.T) {
	// Perfectly uniform rate: estimate is exact, CI is zero.
	var e Estimator
	for i := 0; i < 10; i++ {
		e.Observe(300, 100) // 3 counts per access
	}
	est := e.Estimate(10_000)
	if est.Mean != 30_000 {
		t.Fatalf("mean = %v, want 30000", est.Mean)
	}
	if est.CI95 != 0 {
		t.Fatalf("uniform windows should have zero CI, got %v", est.CI95)
	}
	if est.Coverage != 0.1 {
		t.Fatalf("coverage = %v, want 0.1", est.Coverage)
	}
	if est.Windows != 10 {
		t.Fatalf("windows = %d", est.Windows)
	}
}

func TestEstimatorVariance(t *testing.T) {
	// Two windows with rates 1 and 3: mean rate 2, sd sqrt(2),
	// CI = 1.96*sqrt(2)/sqrt(2)*N = 1.96*N.
	var e Estimator
	e.Observe(100, 100)
	e.Observe(300, 100)
	est := e.Estimate(1_000)
	if est.Mean != 2_000 {
		t.Fatalf("mean = %v, want 2000", est.Mean)
	}
	want := 1.96 * 1_000.0
	if math.Abs(est.CI95-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", est.CI95, want)
	}
}

func TestEstimatorDegenerate(t *testing.T) {
	var e Estimator
	if got := e.Estimate(100); got.Mean != 0 || got.CI95 != 0 {
		t.Fatalf("empty estimator should be zero, got %+v", got)
	}
	e.Observe(50, 100)
	if got := e.Estimate(0); got.Coverage != 0 {
		t.Fatalf("zero total should not divide, got %+v", got)
	}
	one := e.Estimate(200)
	if one.Mean != 100 || one.CI95 != 0 {
		t.Fatalf("single window: %+v", one)
	}
}
