// Package sample implements SMARTS-style interval sampling for the
// simulator: execution alternates short detailed windows (full timing — the
// existing engines, unchanged) with long functional-warming windows (a fast
// path that performs every architectural state change — caches, directory,
// PAM/SAM, memory values — but no network timing, contention or event loop).
//
// Because the warming path keeps all detection and repair state warm, each
// detailed window measures a correctly-warmed machine, and per-access rates
// observed in the detailed windows extrapolate to the whole run with a
// confidence interval computed across windows (Wunderlich et al., SMARTS,
// ISCA'03).
package sample

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"fscoherence/internal/stats"
)

// Estimate aliases the stats-layer estimate type so callers that only deal
// in sampling need not import both packages.
type Estimate = stats.Estimate

// Spec is a parsed -sample specification: the detailed and warming window
// lengths in committed memory accesses.
type Spec struct {
	Detailed uint64 // accesses measured in full detail per period
	Warming  uint64 // accesses fast-forwarded with functional warming per period
}

// Enabled reports whether the spec actually samples (a zero Spec disables).
func (s Spec) Enabled() bool { return s.Detailed > 0 && s.Warming > 0 }

// Period returns the total accesses per sampling period.
func (s Spec) Period() uint64 { return s.Detailed + s.Warming }

// String renders the spec in the accepted input syntax.
func (s Spec) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%s:%s", compact(s.Detailed), compact(s.Warming))
}

func compact(v uint64) string {
	switch {
	case v >= 1_000_000_000 && v%1_000_000_000 == 0:
		return strconv.FormatUint(v/1_000_000_000, 10) + "g"
	case v >= 1_000_000 && v%1_000_000 == 0:
		return strconv.FormatUint(v/1_000_000, 10) + "m"
	case v >= 1_000 && v%1_000 == 0:
		return strconv.FormatUint(v/1_000, 10) + "k"
	}
	return strconv.FormatUint(v, 10)
}

// ParseSpec parses "detailed:warming" with optional k/m/g suffixes
// (e.g. "50k:950k", "1m:19m"). The empty string parses to a disabled Spec.
func ParseSpec(s string) (Spec, error) {
	if s == "" {
		return Spec{}, nil
	}
	det, warm, ok := strings.Cut(s, ":")
	if !ok {
		return Spec{}, fmt.Errorf("sample: spec %q must be detailed:warming (e.g. 50k:950k)", s)
	}
	d, err := parseCount(det)
	if err != nil {
		return Spec{}, fmt.Errorf("sample: bad detailed window %q: %v", det, err)
	}
	w, err := parseCount(warm)
	if err != nil {
		return Spec{}, fmt.Errorf("sample: bad warming window %q: %v", warm, err)
	}
	if d == 0 || w == 0 {
		return Spec{}, fmt.Errorf("sample: window lengths must be positive in %q", s)
	}
	return Spec{Detailed: d, Warming: w}, nil
}

func parseCount(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty count")
	}
	mult := uint64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1_000, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1_000_000, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1_000_000_000, s[:len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a count: %v", err)
	}
	if v == 0 && mult > 1 {
		return 0, fmt.Errorf("zero count")
	}
	if v > math.MaxUint64/mult {
		return 0, fmt.Errorf("count overflows")
	}
	return v * mult, nil
}

// Window is one completed detailed window's contribution to an estimator:
// the counter delta and the access delta observed while timing was on.
type Window struct {
	Counter  uint64 // counter increase across the window
	Accesses uint64 // committed accesses across the window
}

// Estimator accumulates per-window observations of one counter and produces
// the whole-run ratio estimate. The estimand is the per-access rate; the
// point estimate multiplies the pooled rate by the total access count, and
// the confidence interval comes from the across-window variance of the
// per-window rates (windows are approximately equal-sized, so the unweighted
// window mean is the standard SMARTS estimator).
type Estimator struct {
	windows []Window
}

// Observe appends one detailed window's deltas.
func (e *Estimator) Observe(counter, accesses uint64) {
	e.windows = append(e.windows, Window{Counter: counter, Accesses: accesses})
}

// Windows returns the number of observed windows.
func (e *Estimator) Windows() int { return len(e.windows) }

// DetailedAccesses returns the total accesses measured in detail.
func (e *Estimator) DetailedAccesses() uint64 {
	var n uint64
	for _, w := range e.windows {
		n += w.Accesses
	}
	return n
}

// Estimate extrapolates to totalAccesses committed accesses. Mean is the
// pooled-ratio estimate; CI95 is 1.96 times the standard error of the mean
// per-window rate, scaled by totalAccesses. With fewer than two windows the
// interval collapses to zero (no variance information).
func (e *Estimator) Estimate(totalAccesses uint64) Estimate {
	var sumC, sumN uint64
	for _, w := range e.windows {
		sumC += w.Counter
		sumN += w.Accesses
	}
	est := Estimate{Windows: len(e.windows)}
	if totalAccesses > 0 {
		est.Coverage = float64(sumN) / float64(totalAccesses)
	}
	if sumN == 0 {
		return est
	}
	est.Mean = float64(sumC) / float64(sumN) * float64(totalAccesses)
	if len(e.windows) < 2 {
		return est
	}
	// Across-window variance of the per-access rate.
	mean := 0.0
	rates := make([]float64, 0, len(e.windows))
	for _, w := range e.windows {
		if w.Accesses == 0 {
			continue
		}
		r := float64(w.Counter) / float64(w.Accesses)
		rates = append(rates, r)
		mean += r
	}
	if len(rates) < 2 {
		return est
	}
	mean /= float64(len(rates))
	var ss float64
	for _, r := range rates {
		d := r - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(rates)-1))
	est.CI95 = 1.96 * sd / math.Sqrt(float64(len(rates))) * float64(totalAccesses)
	return est
}

// State returns a copy of the observed windows (checkpoint path: the
// estimator's accumulated evidence must survive a resume so the final
// confidence intervals match an uninterrupted run).
func (e *Estimator) State() []Window {
	return append([]Window(nil), e.windows...)
}

// SetState replaces the estimator's observed windows (restore path).
func (e *Estimator) SetState(w []Window) {
	e.windows = append(e.windows[:0:0], w...)
}

// ParseCount parses a count with optional k/m/g suffix (the same syntax as
// the numbers in a sampling spec). Exported for CLI flags like
// -checkpoint-every that share the suffix convention.
func ParseCount(s string) (uint64, error) { return parseCount(s) }
