package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

type summarized uint64

func (s summarized) MetricSummary() map[string]uint64 {
	return map[string]uint64{"cycles": uint64(s)}
}

func TestStreamEmitsJSONLPerExecutedCell(t *testing.T) {
	var buf bytes.Buffer
	e := New(1)
	e.SetStream(&buf)
	e.Do("a", func(uint64) (any, error) { return summarized(10), nil })
	e.Do("a", func(uint64) (any, error) { return summarized(99), nil }) // memo hit: no record
	e.Do("b", func(uint64) (any, error) { return nil, errors.New("boom") })
	e.Wait()

	var recs []ProgressRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r ProgressRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (memo hits must not emit)", len(recs))
	}
	for i, r := range recs {
		if r.Seq != i+1 {
			t.Errorf("record %d: seq=%d, want %d", i, r.Seq, i+1)
		}
		if r.Pending != r.Total-r.Done {
			t.Errorf("record %d: pending=%d, total=%d, done=%d", i, r.Pending, r.Total, r.Done)
		}
	}
	if !strings.Contains(recs[0].Key, `"a"`) {
		t.Errorf("first key %q does not render the cell key", recs[0].Key)
	}
	if recs[0].Counters["cycles"] != 10 {
		t.Errorf("first record counters = %v, want cycles=10", recs[0].Counters)
	}
	last := recs[len(recs)-1]
	if last.Err == "" || last.Errors != 1 {
		t.Errorf("error cell not reflected: err=%q errors=%d", last.Err, last.Errors)
	}
	if last.Done != 3 || last.Pending != 0 || last.EtaMS != 0 {
		t.Errorf("final record done=%d pending=%d eta=%d, want 3/0/0", last.Done, last.Pending, last.EtaMS)
	}
}

func TestStreamDetach(t *testing.T) {
	var buf bytes.Buffer
	e := New(2)
	e.SetStream(&buf)
	e.SetStream(nil)
	e.Do("a", func(uint64) (any, error) { return nil, nil })
	e.Wait()
	if buf.Len() != 0 {
		t.Errorf("detached stream still wrote: %q", buf.String())
	}
}
