// Package runner provides the parallel experiment engine: a bounded
// worker pool that fans out independent, deterministic tasks (simulation
// runs) across GOMAXPROCS-many OS threads with result memoization, panic
// capture and per-cell progress reporting.
//
// The engine is generic over task keys so it carries no dependency on the
// simulator; the root fscoherence package adapts it to (benchmark, Options)
// cells. Design rules, in order:
//
//   - Determinism. A task must be a pure function of its key: the engine
//     derives a per-task seed from the key (FNV-1a), never from wall-clock
//     time or a global RNG, so the same key always observes the same seed
//     regardless of scheduling. Memoization is therefore sound, and a
//     1-worker engine is bit-for-bit equivalent to calling the tasks
//     serially in submission order (it executes them inline in Do).
//   - Isolation. Tasks share nothing through the engine: each runs with its
//     own closure, and the engine publishes results only through the
//     happens-before edge of the entry's done channel.
//   - Robustness. A panicking task is captured (with its stack) and reported
//     as that cell's error; the rest of the sweep keeps running.
package runner

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"fscoherence/internal/stats"
)

// Task computes one cell. The seed argument is derived deterministically
// from the task key; tasks that need randomness must use it (and nothing
// else) so reruns and memoization stay sound. Pure tasks may ignore it.
type Task func(seed uint64) (any, error)

// MetricSummarizer is implemented by task results that expose headline
// metrics for sweep-level aggregation. The engine folds each executed cell's
// summary into Report.Metrics exactly once (memo hits do not re-fold);
// counters carrying the stats.PeakSuffix merge by maximum, all others sum.
type MetricSummarizer interface {
	MetricSummary() map[string]uint64
}

// Cell describes one finished task, for progress reporting.
type Cell struct {
	Key      any
	Duration time.Duration
	Err      error

	// Attempts is the number of supervised attempts the cell consumed
	// (DoSupervised); 0 for unsupervised tasks.
	Attempts int
}

// Report summarizes an engine's work so far.
type Report struct {
	// Submitted counts Do calls; Executed counts unique tasks actually run
	// (Submitted - Executed cells were served from the memo cache).
	Submitted int
	Executed  int
	MemoHits  int
	Errors    int

	// Primed counts cells preloaded into the memo from a prior campaign's
	// journal (Engine.Prime): submitted hits against them count as MemoHits.
	Primed int

	// TaskTime is the summed wall-clock of executed tasks — with W workers
	// the elapsed time approaches TaskTime / W.
	TaskTime time.Duration

	// Metrics aggregates the MetricSummary of every executed cell whose
	// result implements MetricSummarizer (nil when no cell did).
	Metrics map[string]uint64
}

// Engine is a memoizing bounded worker pool. Construct with New; the zero
// value is not usable.
type Engine struct {
	workers int
	sem     chan struct{}

	mu        sync.Mutex
	entries   map[any]*entry
	submitted int
	hits      int
	executed  int
	errors    int
	primed    int
	taskTime  time.Duration
	metrics   *stats.Set

	wg sync.WaitGroup

	cbMu        sync.Mutex
	onCell      func(Cell)
	stream      io.Writer
	streamStart time.Time
	streamSeq   int
	sup         Supervision
	attemptHook func(key any, attempt int, err error, backoff time.Duration)
}

// entry is one unique task. val, err and dur are written by exactly one
// goroutine before done is closed; readers go through Handle.Wait, so the
// channel close is the only synchronization needed.
type entry struct {
	key      any
	done     chan struct{}
	val      any
	err      error
	dur      time.Duration
	attempts int
}

// Handle is a future for a submitted task.
type Handle struct {
	e *entry
}

// Wait blocks until the task finishes and returns its value and error.
func (h *Handle) Wait() (any, error) {
	<-h.e.done
	return h.e.val, h.e.err
}

// Duration returns the task's execution time (zero for memo hits observed
// before completion; call after Wait).
func (h *Handle) Duration() time.Duration {
	<-h.e.done
	return h.e.dur
}

// New returns an engine running at most workers tasks at once. workers < 1
// is clamped to 1; a 1-worker engine executes tasks inline in Do, in exact
// submission order, reproducing a serial sweep bit-for-bit.
func New(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		entries: make(map[any]*entry),
	}
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// SetProgress installs a callback invoked once per executed cell (memo hits
// do not re-fire it). Calls are serialized by the engine, so the callback
// need not be safe for concurrent use; it must not call back into the
// engine.
func (e *Engine) SetProgress(fn func(Cell)) {
	e.cbMu.Lock()
	e.onCell = fn
	e.cbMu.Unlock()
}

// Seed returns the deterministic seed the engine hands to the task for key:
// FNV-1a over the key's Go-syntax representation. Exposed for tests and for
// callers that precompute workload streams.
func Seed(key any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", key)
	return h.Sum64()
}

// Prime preloads a finished result into the memo cache, as if the task for
// key had already executed: later Do calls for the same key are served from
// the memo without running. Campaign resume uses it to re-seed an engine
// from a journal of completed cells. Returns false (and does nothing) if the
// key is already present.
func (e *Engine) Prime(key any, val any) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.entries[key]; ok {
		return false
	}
	ent := &entry{key: key, done: make(chan struct{}), val: val}
	close(ent.done)
	e.entries[key] = ent
	e.primed++
	return true
}

// Do submits the task for key, returning a future. If the key was already
// submitted (finished or in flight) the existing cell is returned and fn is
// never called — results are memoized for the engine's lifetime. Keys must
// be comparable and must fully determine the task's result.
func (e *Engine) Do(key any, fn Task) *Handle {
	e.mu.Lock()
	e.submitted++
	if ent, ok := e.entries[key]; ok {
		e.hits++
		e.mu.Unlock()
		return &Handle{ent}
	}
	ent := &entry{key: key, done: make(chan struct{})}
	e.entries[key] = ent
	e.wg.Add(1)
	e.mu.Unlock()

	if e.workers == 1 {
		// Serial engine: run inline so cells execute in exact submission
		// order with no goroutine scheduling in between.
		e.run(ent, fn)
		return &Handle{ent}
	}
	go func() {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		e.run(ent, fn)
	}()
	return &Handle{ent}
}

// run executes one entry with panic capture and publishes the result.
func (e *Engine) run(ent *entry, fn Task) {
	defer e.wg.Done()
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				// The failing cell's key and seed make the report directly
				// reproducible: `fsrun` the key's options with this seed.
				ent.err = fmt.Errorf("runner: task %#v (seed %#x) panicked: %v\n%s", ent.key, Seed(ent.key), r, debug.Stack())
			}
		}()
		ent.val, ent.err = fn(Seed(ent.key))
	}()
	if sr, ok := ent.val.(*supervisedResult); ok {
		ent.val, ent.attempts = sr.val, sr.attempts
	}
	ent.dur = time.Since(start)
	close(ent.done)

	e.mu.Lock()
	e.executed++
	e.taskTime += ent.dur
	if ent.err != nil {
		e.errors++
	}
	if ms, ok := ent.val.(MetricSummarizer); ok && ent.err == nil {
		if e.metrics == nil {
			e.metrics = stats.NewSet()
		}
		e.metrics.MergeMap(ms.MetricSummary())
	}
	e.mu.Unlock()

	e.cbMu.Lock()
	if e.onCell != nil {
		e.onCell(Cell{Key: ent.key, Duration: ent.dur, Err: ent.err, Attempts: ent.attempts})
	}
	if e.stream != nil {
		e.emitStream(ent)
	}
	e.cbMu.Unlock()
}

// Wait blocks until every submitted task has finished.
func (e *Engine) Wait() { e.wg.Wait() }

// Report returns a snapshot of the engine's counters. Call after Wait for
// totals covering the whole sweep.
func (e *Engine) Report() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := Report{
		Submitted: e.submitted,
		Executed:  e.executed,
		MemoHits:  e.hits,
		Errors:    e.errors,
		Primed:    e.primed,
		TaskTime:  e.taskTime,
	}
	if e.metrics != nil {
		r.Metrics = e.metrics.Snapshot()
	}
	return r
}
