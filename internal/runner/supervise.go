package runner

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Per-cell supervision: a wall-clock watchdog per attempt plus bounded retry
// with exponential backoff and deterministic jitter. Supervision keeps a
// single hung or panicking configuration from taking down a whole campaign:
// the watchdog cancels the attempt cooperatively (the simulator polls the
// cancel flag once per loop iteration), a panic is captured per attempt, and
// the cell either succeeds on a later attempt or fails with a report naming
// every attempt's error.
//
// Backoff jitter is seeded from (cell seed, attempt number) — never from
// wall-clock time or a global RNG — so a rerun of the same campaign sleeps
// the same schedule and the engine's determinism contract holds.

// Supervision configures per-cell supervision for DoSupervised.
type Supervision struct {
	// Timeout is the wall-clock watchdog per attempt; when it expires the
	// attempt's cancel flag flips and the attempt is reported as timed out.
	// 0 disables the watchdog.
	Timeout time.Duration

	// Retries is the number of additional attempts after a failure
	// (0 = fail on the first error).
	Retries int

	// Backoff is the base delay before retry k: Backoff << (k-1), plus a
	// deterministic jitter in [0, delay/2], capped at BackoffCap.
	// 0 retries immediately.
	Backoff time.Duration
}

// BackoffCap bounds the exponential backoff delay (pre-jitter).
const BackoffCap = time.Minute

// Attempt is the supervision context handed to one execution attempt.
type Attempt struct {
	// N is the 1-based attempt number.
	N int

	canceled atomic.Bool
}

// Canceled reports whether the watchdog expired this attempt. Safe from any
// goroutine; the simulator's Config.Cancel polls it.
func (a *Attempt) Canceled() bool { return a.canceled.Load() }

// SupervisedTask computes one cell under supervision. It must poll
// att.Canceled (directly or via the simulator's cancel hook) and return
// promptly once it flips.
type SupervisedTask func(seed uint64, att *Attempt) (any, error)

// supervisedResult carries the attempt count alongside the value; Engine.run
// unwraps it into the entry.
type supervisedResult struct {
	val      any
	attempts int
}

// SetSupervision installs the engine's supervision policy for subsequent
// DoSupervised calls. The zero value (the default) runs one attempt with no
// watchdog.
func (e *Engine) SetSupervision(s Supervision) {
	e.cbMu.Lock()
	e.sup = s
	e.cbMu.Unlock()
}

// SetAttemptHook installs a callback fired after every failed supervised
// attempt, before its backoff sleep: the cell key, the 1-based attempt
// number, the attempt's error, and the backoff about to be slept (0 when the
// cell is out of retries). Campaign journals record these so an interrupted
// sweep knows which cells were retried and why. Calls are serialized per
// cell but may arrive concurrently from different cells.
func (e *Engine) SetAttemptHook(fn func(key any, attempt int, err error, backoff time.Duration)) {
	e.cbMu.Lock()
	e.attemptHook = fn
	e.cbMu.Unlock()
}

// supervision returns the current policy (engine-internal).
func (e *Engine) supervision() Supervision {
	e.cbMu.Lock()
	defer e.cbMu.Unlock()
	return e.sup
}

func (e *Engine) fireAttemptHook(key any, attempt int, err error, backoff time.Duration) {
	e.cbMu.Lock()
	fn := e.attemptHook
	e.cbMu.Unlock()
	if fn != nil {
		fn(key, attempt, err, backoff)
	}
}

// backoffFor returns the pre-retry delay for the given attempt: exponential
// in the attempt number with a deterministic jitter derived from the cell
// seed, so identical campaigns sleep identical schedules.
func backoffFor(base time.Duration, seed uint64, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < BackoffCap; i++ {
		d *= 2
	}
	if d > BackoffCap {
		d = BackoffCap
	}
	// splitmix64-style finalizer over (seed, attempt): uniform enough to
	// decorrelate cells, fully deterministic.
	h := seed + uint64(attempt)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return d + time.Duration(h%uint64(d/2+1))
}

// runAttempt executes one attempt with its own panic capture, so a panicking
// configuration is retried like any other failure.
func runAttempt(fn SupervisedTask, seed uint64, att *Attempt) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("attempt %d panicked: %v\n%s", att.N, r, debug.Stack())
		}
	}()
	return fn(seed, att)
}

// DoSupervised submits the task for key under the engine's supervision
// policy: each attempt runs with a fresh Attempt whose cancel flag a
// watchdog timer flips at Timeout; failed attempts (error, panic, timeout)
// retry up to Retries times with seeded exponential backoff. Results are
// memoized exactly like Do; Cell.Attempts reports the attempts consumed.
func (e *Engine) DoSupervised(key any, fn SupervisedTask) *Handle {
	return e.Do(key, func(seed uint64) (any, error) {
		sup := e.supervision()
		var errs []error
		for attempt := 1; ; attempt++ {
			att := &Attempt{N: attempt}
			var watchdog *time.Timer
			if sup.Timeout > 0 {
				watchdog = time.AfterFunc(sup.Timeout, func() { att.canceled.Store(true) })
			}
			val, err := runAttempt(fn, seed, att)
			if watchdog != nil {
				watchdog.Stop()
			}
			if err == nil {
				return &supervisedResult{val: val, attempts: attempt}, nil
			}
			if att.Canceled() {
				err = fmt.Errorf("attempt %d timed out after %v: %w", attempt, sup.Timeout, err)
			}
			errs = append(errs, err)
			if attempt > sup.Retries {
				e.fireAttemptHook(key, attempt, err, 0)
				return &supervisedResult{attempts: attempt},
					fmt.Errorf("runner: cell %#v (seed %#x) failed after %d attempt(s): %w", key, seed, attempt, joinErrors(errs))
			}
			delay := backoffFor(sup.Backoff, seed, attempt)
			e.fireAttemptHook(key, attempt, err, delay)
			if delay > 0 {
				time.Sleep(delay)
			}
		}
	})
}

// joinErrors folds the attempt errors into one, keeping the last error as
// the unwrap target (it is usually the most informative: later attempts fail
// the same way or worse).
func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := ""
	for i, err := range errs[:len(errs)-1] {
		if i > 0 {
			msg += "; "
		}
		msg += err.Error()
	}
	return fmt.Errorf("%s; %w", msg, errs[len(errs)-1])
}
