// JSONL progress streaming: a machine-readable counterpart of SetProgress
// for driving dashboards and file tails while a long sweep or fuzz campaign
// runs. One line per executed cell, flushed immediately, fields stable.
package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ProgressRecord is one line of the JSONL progress stream. Every executed
// cell emits exactly one record (memo hits do not); a consumer can tail the
// stream to render live done/pending counts, an ETA and the campaign-wide
// aggregated counters without touching the engine.
type ProgressRecord struct {
	// Seq numbers records from 1 in emission order.
	Seq int `json:"seq"`
	// Key is the cell key's Go-syntax representation.
	Key string `json:"key"`
	// DurMS is this cell's execution time in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// Err is the cell's error text, empty on success.
	Err string `json:"err,omitempty"`

	// Done counts finished cells (executed + memo hits); Pending is
	// Total - Done, where Total counts all submissions so far. Errors
	// counts failed cells.
	Done    int `json:"done"`
	Pending int `json:"pending"`
	Total   int `json:"total"`
	Errors  int `json:"errors"`

	// ElapsedMS is wall-clock since the stream was installed. EtaMS
	// estimates time to drain the pending cells: pending x mean task
	// time / workers. Zero when nothing is pending.
	ElapsedMS int64 `json:"elapsed_ms"`
	EtaMS     int64 `json:"eta_ms"`

	// Counters is the sweep-wide aggregation of every executed cell's
	// MetricSummary so far (omitted when no result exposes metrics).
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// SetStream installs a JSONL progress stream: one ProgressRecord per
// executed cell, written and newline-terminated under the engine's
// callback lock so lines never interleave. Composes with SetProgress
// (both fire). Pass nil to detach. Write errors are silently dropped —
// telemetry must never fail a sweep.
func (e *Engine) SetStream(w io.Writer) {
	e.cbMu.Lock()
	e.stream = w
	e.streamStart = time.Now()
	e.streamSeq = 0
	e.cbMu.Unlock()
}

// emitStream writes one progress record for ent. Called under cbMu; takes
// e.mu briefly for the counter snapshot (cbMu -> mu is the engine's only
// nested lock order, and mu is never held across a cbMu acquire).
func (e *Engine) emitStream(ent *entry) {
	e.streamSeq++
	rec := ProgressRecord{
		Seq:       e.streamSeq,
		Key:       fmt.Sprintf("%#v", ent.key),
		DurMS:     float64(ent.dur.Microseconds()) / 1e3,
		ElapsedMS: time.Since(e.streamStart).Milliseconds(),
	}
	if ent.err != nil {
		rec.Err = ent.err.Error()
	}

	e.mu.Lock()
	rec.Total = e.submitted
	rec.Done = e.executed + e.hits
	rec.Errors = e.errors
	var avg time.Duration
	if e.executed > 0 {
		avg = e.taskTime / time.Duration(e.executed)
	}
	if e.metrics != nil {
		rec.Counters = e.metrics.Snapshot()
	}
	e.mu.Unlock()

	if rec.Pending = rec.Total - rec.Done; rec.Pending < 0 {
		rec.Pending = 0
	}
	rec.EtaMS = (avg * time.Duration(rec.Pending) / time.Duration(e.workers)).Milliseconds()

	if b, err := json.Marshal(rec); err == nil {
		b = append(b, '\n')
		e.stream.Write(b)
	}
}
