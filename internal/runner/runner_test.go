package runner

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSeedDeterministicPerKey(t *testing.T) {
	type key struct {
		Bench string
		N     int
	}
	a := Seed(key{"RC", 1})
	b := Seed(key{"RC", 1})
	if a != b {
		t.Fatalf("same key, different seeds: %d vs %d", a, b)
	}
	if Seed(key{"RC", 2}) == a || Seed(key{"LT", 1}) == a {
		t.Fatal("distinct keys collided on the same seed")
	}
}

func TestTaskReceivesKeySeed(t *testing.T) {
	e := New(2)
	var got uint64
	h := e.Do("k", func(seed uint64) (any, error) {
		got = seed
		return nil, nil
	})
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != Seed("k") {
		t.Fatalf("task saw seed %d, want %d", got, Seed("k"))
	}
}

func TestMemoizationRunsTaskOnce(t *testing.T) {
	e := New(4)
	var runs atomic.Int32
	task := func(uint64) (any, error) {
		runs.Add(1)
		return 42, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.Do("same", task).Wait()
			if err != nil || v.(int) != 42 {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	e.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("task ran %d times, want 1", n)
	}
	rep := e.Report()
	if rep.Executed != 1 || rep.Submitted != 16 || rep.MemoHits != 15 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPanicCapturedAsCellError(t *testing.T) {
	e := New(2)
	_, err := e.Do("boom", func(uint64) (any, error) {
		panic("exploded config")
	}).Wait()
	if err == nil || !strings.Contains(err.Error(), "exploded config") {
		t.Fatalf("panic not captured: %v", err)
	}
	// The engine must stay usable after a panic.
	v, err := e.Do("ok", func(uint64) (any, error) { return "fine", nil }).Wait()
	if err != nil || v.(string) != "fine" {
		t.Fatalf("engine wedged after panic: %v, %v", v, err)
	}
	if rep := e.Report(); rep.Errors != 1 {
		t.Fatalf("errors = %d, want 1", rep.Errors)
	}
}

func TestErrorPropagation(t *testing.T) {
	e := New(1)
	want := errors.New("bad cell")
	if _, err := e.Do(1, func(uint64) (any, error) { return nil, want }).Wait(); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers, tasks = 3, 24
	e := New(workers)
	var inFlight, peak atomic.Int32
	gate := make(chan struct{})
	for i := 0; i < tasks; i++ {
		e.Do(i, func(uint64) (any, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-gate
			inFlight.Add(-1)
			return nil, nil
		})
	}
	close(gate)
	e.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", p, workers)
	}
	if rep := e.Report(); rep.Executed != tasks {
		t.Fatalf("executed %d, want %d", rep.Executed, tasks)
	}
}

func TestSerialEngineRunsInSubmissionOrder(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Do(i, func(uint64) (any, error) {
			order = append(order, i) // safe: serial engine runs inline
			return nil, nil
		})
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestProgressCallbackFiresPerExecutedCell(t *testing.T) {
	e := New(2)
	var mu sync.Mutex
	seen := map[any]int{}
	e.SetProgress(func(c Cell) {
		mu.Lock()
		seen[c.Key]++
		mu.Unlock()
	})
	for i := 0; i < 4; i++ {
		e.Do("dup", func(uint64) (any, error) { return nil, nil })
		e.Do(i, func(uint64) (any, error) { return nil, nil })
	}
	e.Wait()
	mu.Lock()
	defer mu.Unlock()
	if seen["dup"] != 1 {
		t.Fatalf("memoized cell fired progress %d times", seen["dup"])
	}
	if len(seen) != 5 {
		t.Fatalf("progress saw %d cells, want 5", len(seen))
	}
}
