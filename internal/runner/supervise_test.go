package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSupervisedRetrySuccess: a cell failing its first attempts succeeds on a
// later one, consuming exactly the attempts it needed.
func TestSupervisedRetrySuccess(t *testing.T) {
	e := New(1)
	e.SetSupervision(Supervision{Retries: 3, Backoff: time.Microsecond})

	var cells []Cell
	e.SetProgress(func(c Cell) { cells = append(cells, c) })
	var hooks []int
	e.SetAttemptHook(func(key any, attempt int, err error, backoff time.Duration) {
		hooks = append(hooks, attempt)
		if backoff <= 0 {
			t.Errorf("attempt %d: want positive backoff before retry, got %v", attempt, backoff)
		}
	})

	calls := 0
	h := e.DoSupervised("cell", func(seed uint64, att *Attempt) (any, error) {
		calls++
		if att.N != calls {
			t.Errorf("attempt number %d, want %d", att.N, calls)
		}
		if calls < 3 {
			return nil, fmt.Errorf("transient failure %d", calls)
		}
		return "done", nil
	})
	v, err := h.Wait()
	if err != nil {
		t.Fatalf("supervised cell failed: %v", err)
	}
	if v != "done" {
		t.Fatalf("value = %v, want done", v)
	}
	if calls != 3 {
		t.Fatalf("task ran %d times, want 3", calls)
	}
	if len(cells) != 1 || cells[0].Attempts != 3 {
		t.Fatalf("progress cells = %+v, want one cell with Attempts=3", cells)
	}
	if len(hooks) != 2 || hooks[0] != 1 || hooks[1] != 2 {
		t.Fatalf("attempt hooks fired for %v, want [1 2]", hooks)
	}
}

// TestSupervisedTimeout: the watchdog flips the attempt's cancel flag; a task
// polling it returns, is reported as timed out, and the retry succeeds.
func TestSupervisedTimeout(t *testing.T) {
	e := New(1)
	e.SetSupervision(Supervision{Timeout: 20 * time.Millisecond, Retries: 1})

	var hookErr error
	e.SetAttemptHook(func(key any, attempt int, err error, backoff time.Duration) { hookErr = err })

	h := e.DoSupervised("hang", func(seed uint64, att *Attempt) (any, error) {
		if att.N == 1 {
			for !att.Canceled() {
				time.Sleep(time.Millisecond)
			}
			return nil, errors.New("canceled by watchdog")
		}
		return "recovered", nil
	})
	v, err := h.Wait()
	if err != nil {
		t.Fatalf("cell failed: %v", err)
	}
	if v != "recovered" {
		t.Fatalf("value = %v, want recovered", v)
	}
	if hookErr == nil || !strings.Contains(hookErr.Error(), "timed out") {
		t.Fatalf("attempt hook error = %v, want a timeout report", hookErr)
	}
}

// TestSupervisedExhausted: a cell out of retries fails with a report naming
// the cell, its seed, the attempt count and every attempt's error; the final
// hook call carries backoff 0.
func TestSupervisedExhausted(t *testing.T) {
	e := New(1)
	e.SetSupervision(Supervision{Retries: 2})

	var finalBackoff = time.Duration(-1)
	var lastAttempt int
	e.SetAttemptHook(func(key any, attempt int, err error, backoff time.Duration) {
		lastAttempt, finalBackoff = attempt, backoff
	})
	var cells []Cell
	e.SetProgress(func(c Cell) { cells = append(cells, c) })

	h := e.DoSupervised("doomed", func(seed uint64, att *Attempt) (any, error) {
		return nil, fmt.Errorf("broken on attempt %d", att.N)
	})
	_, err := h.Wait()
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	msg := err.Error()
	for _, want := range []string{
		`"doomed"`,
		fmt.Sprintf("%#x", Seed("doomed")),
		"failed after 3 attempt(s)",
		"broken on attempt 1",
		"broken on attempt 3",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if lastAttempt != 3 || finalBackoff != 0 {
		t.Fatalf("final hook = (attempt %d, backoff %v), want (3, 0)", lastAttempt, finalBackoff)
	}
	if len(cells) != 1 || cells[0].Attempts != 3 || cells[0].Err == nil {
		t.Fatalf("progress cells = %+v, want one failed cell with Attempts=3", cells)
	}
	if rep := e.Report(); rep.Errors != 1 {
		t.Fatalf("Report.Errors = %d, want 1", rep.Errors)
	}
}

// TestSupervisedPanicRetried: a panicking attempt is captured and retried
// like any other failure instead of killing the sweep.
func TestSupervisedPanicRetried(t *testing.T) {
	e := New(1)
	e.SetSupervision(Supervision{Retries: 1})
	h := e.DoSupervised("flaky", func(seed uint64, att *Attempt) (any, error) {
		if att.N == 1 {
			panic("first attempt explodes")
		}
		return 42, nil
	})
	v, err := h.Wait()
	if err != nil {
		t.Fatalf("cell failed: %v", err)
	}
	if v != 42 {
		t.Fatalf("value = %v, want 42", v)
	}
}

// TestSupervisedZeroPolicy: the zero Supervision runs exactly one attempt
// with no watchdog — DoSupervised degrades to Do.
func TestSupervisedZeroPolicy(t *testing.T) {
	e := New(1)
	calls := 0
	h := e.DoSupervised("once", func(seed uint64, att *Attempt) (any, error) {
		calls++
		return nil, errors.New("no retry expected")
	})
	if _, err := h.Wait(); err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Fatalf("task ran %d times, want 1", calls)
	}
}

// TestSupervisedSeedStable: the seed handed to a supervised task equals
// Seed(key) — supervision must not perturb the determinism contract.
func TestSupervisedSeedStable(t *testing.T) {
	e := New(1)
	var got uint64
	h := e.DoSupervised("seeded", func(seed uint64, att *Attempt) (any, error) {
		got = seed
		return nil, nil
	})
	h.Wait()
	if want := Seed("seeded"); got != want {
		t.Fatalf("seed = %#x, want %#x", got, want)
	}
}

// TestBackoffDeterministic: the schedule is a pure function of (base, seed,
// attempt), doubles per attempt, stays within [d, d+d/2] of the pre-jitter
// delay and saturates at BackoffCap.
func TestBackoffDeterministic(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		a := backoffFor(base, 0xdead, attempt)
		b := backoffFor(base, 0xdead, attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		d := base << (attempt - 1)
		if d > BackoffCap {
			d = BackoffCap
		}
		if a < d || a > d+d/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, a, d, d+d/2)
		}
	}
	if a := backoffFor(base, 1, 1); a == backoffFor(base, 2, 1) {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
	if got := backoffFor(0, 5, 3); got != 0 {
		t.Fatalf("zero base must disable backoff, got %v", got)
	}
	if got := backoffFor(time.Hour, 5, 8); got > BackoffCap+BackoffCap/2 {
		t.Fatalf("backoff %v exceeds jittered cap", got)
	}
}

// TestPrimeMemo: primed cells are served from the memo without executing, and
// the report distinguishes them.
func TestPrimeMemo(t *testing.T) {
	e := New(2)
	if !e.Prime("warm", "cached-value") {
		t.Fatal("Prime returned false for a fresh key")
	}
	if e.Prime("warm", "other") {
		t.Fatal("Prime must refuse an existing key")
	}
	ran := false
	h := e.Do("warm", func(uint64) (any, error) { ran = true; return nil, nil })
	v, err := h.Wait()
	if err != nil || v != "cached-value" {
		t.Fatalf("primed cell = (%v, %v), want (cached-value, nil)", v, err)
	}
	if ran {
		t.Fatal("primed cell executed its task")
	}
	e.Wait()
	rep := e.Report()
	if rep.Primed != 1 || rep.MemoHits != 1 || rep.Executed != 0 {
		t.Fatalf("report = %+v, want Primed=1 MemoHits=1 Executed=0", rep)
	}
}

// TestSupervisedConcurrentCells: supervision and hooks are safe under a
// parallel pool (exercised further by -race).
func TestSupervisedConcurrentCells(t *testing.T) {
	e := New(4)
	e.SetSupervision(Supervision{Retries: 1})
	var mu sync.Mutex
	hooks := 0
	e.SetAttemptHook(func(any, int, error, time.Duration) {
		mu.Lock()
		hooks++
		mu.Unlock()
	})
	var hs []*Handle
	for i := 0; i < 16; i++ {
		i := i
		hs = append(hs, e.DoSupervised(i, func(seed uint64, att *Attempt) (any, error) {
			if i%2 == 0 && att.N == 1 {
				return nil, errors.New("retry me")
			}
			return i, nil
		}))
	}
	for i, h := range hs {
		v, err := h.Wait()
		if err != nil || v != i {
			t.Fatalf("cell %d = (%v, %v)", i, v, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if hooks != 8 {
		t.Fatalf("attempt hooks = %d, want 8", hooks)
	}
}
