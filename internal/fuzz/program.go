package fuzz

import (
	"encoding/json"
	"fmt"

	"fscoherence/internal/coherence"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
)

// Address layout. Every generated program uses the same fixed map of block
// indices, so shrinking threads or operations never moves an address: a
// shrunk program exercises a subset of the original traffic.
const (
	blockBytes = 64
	layoutBase = memsys.Addr(0x40000)

	numFSLines = 3 // falsely-shared lines: 8 x 8-byte slots, slot i owned by thread i
	fsSlots    = 8

	blkFS      = 0  // blocks 0..numFSLines-1
	blkShared  = 4  // word 0: truly-shared atomic counter
	blkLock    = 5  // word 0: test-and-test-and-set lock
	blkLocked  = 6  // word 0: counter protected by the lock
	blkRacy    = 7  // 8 words written by racing plain stores (excluded from the SC check)
	blkBarrier = 8  // word 0: barrier count, word 1: barrier sense
	blkReduce  = 9  // 8 words: declared reduction region (when Program.UseReduction)
	blkPriv    = 16 // thread t owns blocks blkPriv+t*privLines .. +privLines-1
	privLines  = 4
)

// addrOf returns the address of byte off within layout block index blk.
func addrOf(blk, off int) memsys.Addr {
	return layoutBase + memsys.Addr(blk*blockBytes+off)
}

// privBase returns the base address of thread t's private region.
func privBase(t int) memsys.Addr {
	return addrOf(blkPriv+t*privLines, 0)
}

// OpKind names one generated operation. Kinds are short strings so repro
// files read naturally.
type OpKind string

const (
	// KFSAdd atomically adds V to the thread's own 8-byte slot of falsely
	// shared line A%numFSLines — the paper's core false-sharing pattern.
	KFSAdd OpKind = "fs+"
	// KFSLoad reads another thread's slot of a falsely shared line: a true
	// cross-thread dependence that forces CHK conflicts and episode
	// terminations under FSLite.
	KFSLoad OpKind = "fsrd"
	// KSharedAdd atomically adds V to the truly shared counter.
	KSharedAdd OpKind = "sh+"
	// KLockedAdd acquires the global lock, adds V to the protected counter
	// (read + synchronous store), and releases — racy upgrades on the lock
	// word plus serialized true sharing on the counter.
	KLockedAdd OpKind = "lk+"
	// KRacyStore plain-stores V to racy word A%8: multiple writers race, so
	// the word is excluded from the SC final-value check (the golden-memory
	// oracle still validates every byte).
	KRacyStore OpKind = "rst"
	// KRacyLoad reads racy word A%8.
	KRacyLoad OpKind = "rld"
	// KPrivStore stores V (Sz bytes, Sz-aligned) into the thread's private
	// region at an offset derived from A. Single writer: SC-checkable.
	KPrivStore OpKind = "pst"
	// KPrivLoad reads 8 bytes from the thread's private region.
	KPrivLoad OpKind = "pld"
	// KReduce accumulates V into reduction word A%8 (UseReduction programs).
	KReduce OpKind = "red"
	// KCompute spends A%24+1 cycles of local computation (spacing).
	KCompute OpKind = "cmp"
	// KPrefetch prefetches falsely shared line A%numFSLines (touches no
	// bytes — exercises the zero-length metadata path).
	KPrefetch OpKind = "pf"
)

// OpSpec is one operation of a generated thread. A is a free parameter whose
// meaning depends on the kind (slot/word/offset selector), Sz a size in
// bytes, V a value/delta.
type OpSpec struct {
	K  OpKind `json:"k"`
	A  int    `json:"a,omitempty"`
	Sz int    `json:"s,omitempty"`
	V  uint64 `json:"v,omitempty"`
}

// FaultSpec is the JSON form of network.FaultPlan.
type FaultSpec struct {
	Seed        uint64 `json:"seed,omitempty"`
	MaxJitter   uint64 `json:"jitter,omitempty"`
	BurstPeriod uint64 `json:"burstPeriod,omitempty"`
	BurstLen    uint64 `json:"burstLen,omitempty"`
}

// Plan converts the spec to a network fault plan (nil when it injects
// nothing).
func (f FaultSpec) Plan() *network.FaultPlan {
	fp := &network.FaultPlan{Seed: f.Seed, MaxJitter: f.MaxJitter, BurstPeriod: f.BurstPeriod, BurstLen: f.BurstLen}
	if !fp.Enabled() {
		return nil
	}
	return fp
}

// SabotageSpec is the JSON form of network.Sabotage: deliberately mistreat
// the Nth message with the given opcode name ("drop", "wedge" or "corrupt").
// Used only to validate that the oracles catch real protocol bugs.
type SabotageSpec struct {
	Mode string `json:"mode"`
	Op   string `json:"op"`
	Nth  int    `json:"nth"`
}

// Sabotage converts the spec to a network sabotage hook.
func (s *SabotageSpec) Sabotage() (*network.Sabotage, error) {
	if s == nil {
		return nil, nil
	}
	var mode network.SabotageMode
	switch s.Mode {
	case "drop":
		mode = network.SabotageDrop
	case "wedge":
		mode = network.SabotageWedge
	case "corrupt":
		mode = network.SabotageCorrupt
	default:
		return nil, fmt.Errorf("fuzz: unknown sabotage mode %q", s.Mode)
	}
	op, err := opByName(s.Op)
	if err != nil {
		return nil, err
	}
	return &network.Sabotage{Mode: mode, Op: op, Nth: s.Nth}, nil
}

// opByName resolves a message opcode by its wire name (e.g. "InvAck").
func opByName(name string) (network.Op, error) {
	for op := network.Op(0); op.String() != fmt.Sprintf("Op(%d)", int(op)); op++ {
		if op.String() == name {
			return op, nil
		}
	}
	return 0, fmt.Errorf("fuzz: unknown opcode %q", name)
}

// Program is one fully determined fuzz case: workload, system shape and
// fault schedule. It is plain data — JSON round-trippable, shrinkable, and
// replayable bit-for-bit.
type Program struct {
	// Seed is the generator seed this program came from (provenance only;
	// execution depends solely on the fields below).
	Seed uint64 `json:"seed"`

	// Protocol is "baseline", "fsdetect", "fslite" or "hybrid".
	Protocol string `json:"protocol"`

	// Hostile shrinks the caches and detection thresholds (tiny L1/LLC/SAM,
	// low TauP) so evictions, recalls and privatization churn happen within
	// a few dozen operations.
	Hostile bool `json:"hostile,omitempty"`

	// L2 adds a private victim L2; NonInclusive switches the LLC to the
	// sparse-directory non-inclusive organization.
	L2           bool `json:"l2,omitempty"`
	NonInclusive bool `json:"nonInclusive,omitempty"`

	// UseReduction declares the reduction region and enables KReduce ops.
	UseReduction bool `json:"reduction,omitempty"`

	// BigMachine runs the program on a 64-core mesh machine with an
	// 8-slice address-interleaved LLC (tiny per-slice capacity, so
	// directory recalls constantly cross slice boundaries).
	BigMachine bool `json:"bigMachine,omitempty"`

	// Threads holds one operation list per worker thread (at most 7; one
	// more core runs the checker).
	Threads [][]OpSpec `json:"threads"`

	// Faults is the delivery perturbation schedule.
	Faults FaultSpec `json:"faults"`

	// Sabotage, when non-nil, injects a deliberate protocol bug (oracle
	// validation runs only).
	Sabotage *SabotageSpec `json:"sabotage,omitempty"`
}

// maxWorkers is the worker-thread ceiling: 7 workers + 1 checker core on the
// 8-core Table II system.
const maxWorkers = 7

// Mode returns the coherence protocol the program runs under.
func (p *Program) Mode() (coherence.Protocol, error) {
	switch p.Protocol {
	case "baseline", "mesi":
		return coherence.Baseline, nil
	case "fsdetect":
		return coherence.FSDetect, nil
	case "fslite":
		return coherence.FSLite, nil
	case "hybrid":
		return coherence.Hybrid, nil
	}
	return 0, fmt.Errorf("fuzz: unknown protocol %q", p.Protocol)
}

// Validate checks structural limits (thread count, op kinds).
func (p *Program) Validate() error {
	if _, err := p.Mode(); err != nil {
		return err
	}
	if len(p.Threads) == 0 || len(p.Threads) > maxWorkers {
		return fmt.Errorf("fuzz: %d worker threads (want 1..%d)", len(p.Threads), maxWorkers)
	}
	if _, err := p.Sabotage.Sabotage(); p.Sabotage != nil && err != nil {
		return err
	}
	for t, ops := range p.Threads {
		for i, op := range ops {
			switch op.K {
			case KFSAdd, KFSLoad, KSharedAdd, KLockedAdd, KRacyStore, KRacyLoad,
				KPrivStore, KPrivLoad, KReduce, KCompute, KPrefetch:
			default:
				return fmt.Errorf("fuzz: thread %d op %d: unknown kind %q", t, i, op.K)
			}
		}
	}
	return nil
}

// Ops returns the total operation count across all threads.
func (p *Program) Ops() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t)
	}
	return n
}

// Marshal encodes the program as indented JSON (repro files).
func (p *Program) Marshal() []byte {
	b, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		panic(err) // Program contains only marshalable fields
	}
	return append(b, '\n')
}

// Unmarshal decodes and validates a repro file.
func Unmarshal(data []byte) (*Program, error) {
	var p Program
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fuzz: bad repro: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// clone deep-copies the program (the shrinker mutates candidates).
func (p *Program) clone() *Program {
	q := *p
	q.Threads = make([][]OpSpec, len(p.Threads))
	for i, t := range p.Threads {
		q.Threads[i] = append([]OpSpec(nil), t...)
	}
	if p.Sabotage != nil {
		s := *p.Sabotage
		q.Sabotage = &s
	}
	return &q
}

func (p *Program) String() string {
	return fmt.Sprintf("seed=%d protocol=%s threads=%d ops=%d jitter=%d burst=%d/%d hostile=%v l2=%v nonincl=%v red=%v",
		p.Seed, p.Protocol, len(p.Threads), p.Ops(), p.Faults.MaxJitter,
		p.Faults.BurstLen, p.Faults.BurstPeriod, p.Hostile, p.L2, p.NonInclusive, p.UseReduction)
}
