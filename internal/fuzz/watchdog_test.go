package fuzz

import (
	"strings"
	"testing"
)

// TestWatchdogDetectsWedge wedges the first Data response in flight (its
// delivery cycle pushed past any horizon) and checks the watchdog trips with
// a dump naming the stuck message and the waiting FSM — the artifact a
// protocol engineer debugs from.
func TestWatchdogDetectsWedge(t *testing.T) {
	p := Generate(42, "fslite")
	p.Sabotage = &SabotageSpec{Mode: "wedge", Op: "Data", Nth: 1}
	out := Execute(p, Options{StallCycles: 20_000})
	if out.Failure == nil {
		t.Fatal("wedged Data message not detected")
	}
	if out.Failure.Kind != "stall" {
		t.Fatalf("kind = %s, want stall: %v", out.Failure.Kind, out.Failure)
	}
	for _, want := range []string{
		"watchdog trip",     // the per-core commit-age table
		"in-flight: Data",   // the wedged message itself
		"readyAt=",          // with its (sentinel) delivery cycle
		"state=IS_D",        // the MSHR stuck waiting for it
		"committed nothing", // the one-line diagnosis
	} {
		if !strings.Contains(out.Failure.Error(), want) {
			t.Errorf("dump lacks %q:\n%s", want, out.Failure.Error())
		}
	}
}

// TestWatchdogSparesLivelockFreeRun checks the watchdog does not trip on a
// clean run with heavy jitter (spinners keep committing loads, so per-core
// commit tracking stays quiet).
func TestWatchdogSparesLivelockFreeRun(t *testing.T) {
	p := Generate(42, "fslite")
	p.Faults.MaxJitter = 80
	out := Execute(p, Options{StallCycles: 20_000})
	if out.Failure != nil {
		t.Fatalf("clean jittered run failed: %v", out.Failure)
	}
}
