// Package fuzz is the protocol fuzzing and fault-injection harness: it
// generates adversarial multithreaded workloads from a seed, runs them under
// deterministic network fault injection, checks every run against a set of
// protocol oracles, and — on failure — shrinks the workload and fault
// schedule to a small replayable repro.
//
// The harness is the executable counterpart of PROTOCOL.md: the spec defines
// what "correct" means for the MESI+FSDetect+FSLite implementation, and the
// oracles here enforce it on randomly generated traffic.
//
// # Pipeline
//
//	seed -> Generate -> Program -> Execute -> Outcome
//	                        |          |
//	                        |      failure? -> Shrink -> minimal Program (repro)
//	                        +-- JSON round-trip (replay, repro files)
//
// A Program is pure data: per-thread operation lists over a fixed address
// layout, plus a fault plan (seeded delivery jitter and congestion bursts,
// see network.FaultPlan) and optionally a sabotage spec (a deliberately
// injected protocol bug used to validate the oracles). Because programs are
// data, the shrinker can remove threads, operations and faults while
// re-running the predicate, and any failure ships as a small JSON file that
// cmd/fsfuzz -replay reruns exactly.
//
// # Oracles
//
// Every Execute checks, in severity order:
//
//   - liveness: a watchdog trips when any unfinished core stops committing
//     for Options.StallCycles cycles (deadlock and livelock alike) and dumps
//     in-flight messages plus per-component FSM states; a hard MaxCycles
//     budget backstops it.
//   - golden-memory oracle: every load must return the most recently
//     committed bytes (sim.Config.CheckOracle), byte-granular.
//   - SWMR: at most one E/M copy of any block, never alongside S/PRV copies
//     (sim.Config.CheckSWMR).
//   - data-value equivalence: the final value of every tracked word must
//     equal a sequentially-consistent reference execution replayed from the
//     Program (commutative shared updates and single-writer private stores
//     make the reference interleaving-independent; racy words are excluded).
//   - quiescence agreement: once the system drains, every L1 line must agree
//     with its directory entry (owner exact, sharer sets consistent, no busy
//     transactions); see oracle.go.
//
// Campaign drives many seeds across all three protocols; cmd/fsfuzz is the
// CLI, and `make fuzz` / `make fuzzsmoke` are the entry points (EXPERIMENTS.md
// documents the workflow, including replaying a repro under -trace).
package fuzz
