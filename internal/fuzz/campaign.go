package fuzz

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Protocols is the default protocol sweep. The hybrid backend is opt-in
// (fsfuzz -protocol hybrid, or AllProtocols) so default campaign numbers stay
// comparable across revisions.
var Protocols = []string{"baseline", "fsdetect", "fslite"}

// AllProtocols sweeps every backend, including the hybrid update-push one.
var AllProtocols = []string{"baseline", "fsdetect", "fslite", "hybrid"}

// CampaignConfig drives a multi-seed fuzzing campaign.
type CampaignConfig struct {
	// StartSeed and Seeds define the seed range [StartSeed, StartSeed+Seeds).
	StartSeed uint64
	Seeds     int

	// Protocols to sweep (nil = all three).
	Protocols []string

	// Opt is passed to every Execute.
	Opt Options

	// ShrinkBudget caps Execute calls per failure during shrinking (0=250).
	ShrinkBudget int

	// Jobs is the number of concurrent executions (0 = GOMAXPROCS, capped
	// at 8). Each simulation is single-threaded and self-contained, so runs
	// parallelize perfectly; results are reported in deterministic order.
	Jobs int

	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)

	// Stream, when non-nil, receives one JSONL CaseRecord per executed
	// case as it completes (live order, not deterministic order — the
	// stream is telemetry, the returned CampaignResult is the record of
	// truth). Write errors are dropped.
	Stream io.Writer

	// Skip, when non-nil, filters the task list before execution: cases it
	// reports true for are not run (or counted). Campaign resume uses it to
	// drop (seed, protocol) cases a prior interrupted campaign already
	// completed cleanly.
	Skip func(seed uint64, protocol string) bool
}

// CaseRecord is one line of the campaign's JSONL progress stream.
type CaseRecord struct {
	Seq      int    `json:"seq"`
	Seed     uint64 `json:"seed"`
	Protocol string `json:"protocol"`
	Cycles   uint64 `json:"cycles"`
	// Failure is the failure kind, empty for a passing case.
	Failure string `json:"failure,omitempty"`

	Done      int   `json:"done"`
	Pending   int   `json:"pending"`
	Total     int   `json:"total"`
	Failures  int   `json:"failures"`
	ElapsedMS int64 `json:"elapsed_ms"`
	EtaMS     int64 `json:"eta_ms"`
}

// CaseResult is the outcome of one (seed, protocol) case.
type CaseResult struct {
	Seed     uint64
	Protocol string
	Cycles   uint64
	Failure  *Failure

	// Program is the failing program; Shrunk its minimized repro (set only
	// on failure).
	Program *Program
	Shrunk  *Program
	Runs    int // shrinker executions
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Cases       int
	TotalCycles uint64
	Failures    []CaseResult
}

// Campaign generates and executes Seeds programs per protocol, shrinking
// every failure to a minimal repro. Execution is parallel; the result is
// deterministic regardless of Jobs.
func Campaign(cfg CampaignConfig) *CampaignResult {
	protos := cfg.Protocols
	if len(protos) == 0 {
		protos = Protocols
	}
	type task struct {
		seed  uint64
		proto string
	}
	var tasks []task
	skipped := 0
	for i := 0; i < cfg.Seeds; i++ {
		for _, pr := range protos {
			seed := cfg.StartSeed + uint64(i)
			if cfg.Skip != nil && cfg.Skip(seed, pr) {
				skipped++
				continue
			}
			tasks = append(tasks, task{seed, pr})
		}
	}
	if skipped > 0 && cfg.Log != nil {
		cfg.Log("resume: %d completed case(s) skipped", skipped)
	}

	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
		if jobs > 8 {
			jobs = 8
		}
	}
	results := make([]CaseResult, len(tasks))
	var wg sync.WaitGroup

	// Live telemetry: one JSONL record per completed case, emitted under a
	// mutex in completion order. The campaign's ETA assumes the mean
	// per-case wall time holds for the pending cases across all jobs.
	var streamMu sync.Mutex
	streamSeq, streamFails := 0, 0
	streamStart := time.Now()
	emit := func(r *CaseResult) {
		if cfg.Stream == nil {
			return
		}
		streamMu.Lock()
		defer streamMu.Unlock()
		streamSeq++
		if r.Failure != nil {
			streamFails++
		}
		elapsed := time.Since(streamStart)
		rec := CaseRecord{
			Seq: streamSeq, Seed: r.Seed, Protocol: r.Protocol, Cycles: r.Cycles,
			Done: streamSeq, Pending: len(tasks) - streamSeq, Total: len(tasks),
			Failures: streamFails, ElapsedMS: elapsed.Milliseconds(),
		}
		if r.Failure != nil {
			rec.Failure = r.Failure.Kind
		}
		avg := elapsed / time.Duration(streamSeq)
		rec.EtaMS = (avg * time.Duration(rec.Pending) / time.Duration(jobs)).Milliseconds()
		if b, err := json.Marshal(rec); err == nil {
			cfg.Stream.Write(append(b, '\n'))
		}
	}

	next := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t := tasks[i]
				p := Generate(t.seed, t.proto)
				out := Execute(p, cfg.Opt)
				results[i] = CaseResult{
					Seed: t.seed, Protocol: t.proto,
					Cycles: out.Cycles, Failure: out.Failure, Program: p,
				}
				emit(&results[i])
			}
		}()
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()

	res := &CampaignResult{Cases: len(tasks)}
	for i := range results {
		r := &results[i]
		res.TotalCycles += r.Cycles
		if r.Failure == nil {
			continue
		}
		if cfg.Log != nil {
			cfg.Log("FAIL seed=%d protocol=%s: %s — shrinking...", r.Seed, r.Protocol, r.Failure.Kind)
		}
		sr := Shrink(r.Program, r.Failure.Kind, cfg.Opt, cfg.ShrinkBudget)
		r.Shrunk = sr.Program
		r.Runs = sr.Runs
		res.Failures = append(res.Failures, *r)
	}
	return res
}

// ReproCommand renders the replay command line for a repro file path.
func ReproCommand(path string) string {
	return fmt.Sprintf("go run ./cmd/fsfuzz -replay %s", path)
}
