package fuzz

import (
	"fmt"
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/sample"
	"fscoherence/internal/sim"
)

// runSampledProgram executes one generated program under interval sampling
// with the quiescence oracle installed at every window boundary, then applies
// the same SC final-value check as Execute. It returns the number of
// boundaries observed (programs small enough to finish inside the first
// detailed window legitimately report few or none).
func runSampledProgram(t *testing.T, p *Program, spec sample.Spec) int {
	t.Helper()
	cfg, err := config(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The fuzz harness runs the naive engine with continuous oracles; the
	// sampled engine requires the skip engine and does its own boundary-time
	// checking instead.
	cfg.Engine = sim.EngineSkip
	cfg.CheckOracle = false
	cfg.CheckSWMR = false
	cfg.SWMRPeriod = 0
	cfg.Sample = spec

	ref := buildReference(p)
	workers := len(p.Threads)
	bar := &cpu.Barrier{CountAddr: barCount, SenseAddr: barSense, Threads: workers + 1}
	var threads []cpu.ThreadFunc
	for tid := 0; tid < workers; tid++ {
		threads = append(threads, threadFunc(tid, p.Threads[tid], bar))
	}
	got := make([]uint64, len(ref.words))
	threads = append(threads, func(c *cpu.Ctx) {
		var sense uint64
		bar.Wait(c, &sense)
		for i, w := range ref.words {
			got[i] = c.Load(w, 8)
		}
	})
	wl := sim.Workload{Name: fmt.Sprintf("fuzz-sampled-%d", p.Seed), Threads: threads}
	if p.UseReduction {
		wl.ReductionRegions = []coherence.AddrRange{{Start: addrOf(blkReduce, 0), Size: blockBytes}}
	}

	sys := sim.New(cfg, wl)
	boundaries := 0
	sys.SetBoundaryHook(func(cycle uint64) {
		boundaries++
		if boundaries > 8 { // bound the O(state) sweep on long programs
			return
		}
		for _, v := range quiescenceViolations(sys, cfg.Params.Cores, cfg.Params.Slices) {
			t.Errorf("seed %d %s: boundary at cycle %d: %s", p.Seed, p.Protocol, cycle, v)
		}
		for i := 0; i < cfg.Params.Cores; i++ {
			for _, v := range sys.L1(i).PolicyViolations() {
				t.Errorf("seed %d %s: boundary at cycle %d: L1 %d: %s", p.Seed, p.Protocol, cycle, i, v)
			}
		}
		for s := 0; s < cfg.Params.Slices; s++ {
			for _, v := range sys.Dir(s).PolicyViolations() {
				t.Errorf("seed %d %s: boundary at cycle %d: dir %d: %s", p.Seed, p.Protocol, cycle, s, v)
			}
		}
	})

	res, err := sys.Run(wl.Name)
	if err != nil {
		t.Fatalf("seed %d %s: %v", p.Seed, p.Protocol, err)
	}
	if res.Sampled == nil {
		t.Fatalf("seed %d %s: run did not sample", p.Seed, p.Protocol)
	}
	for i, w := range ref.words {
		if want := ref.load8(w); got[i] != want {
			t.Errorf("seed %d %s: word %v = %#x, SC reference %#x",
				p.Seed, p.Protocol, w, got[i], want)
		}
	}
	return boundaries
}

// TestSampledBoundaryAgreement is the window-boundary property test: across a
// corpus of generated programs run under interval sampling, the directory,
// every L1 and the PAM/SAM policy structures must agree at every window
// boundary (the quiescence oracle plus the policy/cache structural checks),
// and the final memory image must still match the SC reference — warming
// windows are architecturally transparent. Faults and sabotage are stripped
// (sampling targets clean perf runs), but hostile cache shapes, reductions
// and the 64-core mesh machine all stay in the mix.
func TestSampledBoundaryAgreement(t *testing.T) {
	specs := []sample.Spec{
		{Detailed: 64, Warming: 192},
		{Detailed: 100, Warming: 100},
		{Detailed: 48, Warming: 400},
	}
	boundaries := 0
	for seed := uint64(1); seed <= 12; seed++ {
		for _, proto := range Protocols {
			p := Generate(seed, proto)
			p.L2, p.NonInclusive = false, false
			p.Faults = FaultSpec{}
			p.Sabotage = nil
			boundaries += runSampledProgram(t, p, specs[int(seed)%len(specs)])
		}
	}
	// The corpus must actually exercise window boundaries: tiny programs may
	// finish inside their first detailed window, but not all 36 of them.
	if boundaries < 10 {
		t.Fatalf("only %d window boundaries across the corpus; sampling did not engage", boundaries)
	}
}
