package fuzz

// The generator: a Program is a pure function of (seed, protocol). It uses
// its own SplitMix64-based PRNG rather than math/rand so that seed corpora
// stay stable across Go releases — a repro seed found in CI must reproduce
// the same program forever.

// rng is a SplitMix64 sequence generator.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed ^ 0x6a09e667f3bcc909} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// n returns a uniform int in [0, max).
func (r *rng) n(max int) int {
	if max <= 0 {
		return 0
	}
	return int(r.next() % uint64(max))
}

// chance reports true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.n(den) < num }

// opWeight pairs an op kind with its selection weight.
type opWeight struct {
	k OpKind
	w int
}

// weights is the adversarial operation mix: false-sharing updates dominate,
// laced with cross-thread reads (conflicts/terminations), true sharing,
// lock churn (racy upgrades), racing plain stores, private traffic
// (capacity pressure in hostile configs) and prefetches.
var weights = []opWeight{
	{KFSAdd, 28},
	{KFSLoad, 10},
	{KSharedAdd, 9},
	{KLockedAdd, 7},
	{KRacyStore, 8},
	{KRacyLoad, 5},
	{KPrivStore, 11},
	{KPrivLoad, 5},
	{KCompute, 8},
	{KPrefetch, 4},
	{KReduce, 7}, // only drawn when the program declares the reduction region
}

// pick draws one op kind from the weighted mix.
func pick(r *rng, useReduction bool) OpKind {
	total := 0
	for _, w := range weights {
		if w.k == KReduce && !useReduction {
			continue
		}
		total += w.w
	}
	x := r.n(total)
	for _, w := range weights {
		if w.k == KReduce && !useReduction {
			continue
		}
		if x < w.w {
			return w.k
		}
		x -= w.w
	}
	return KCompute // unreachable
}

// sizes are the sub-word private-store widths (byte-precision coverage).
var sizes = []int{1, 2, 4, 8}

// Generate derives a complete fuzz program from a seed for one protocol.
func Generate(seed uint64, protocol string) *Program {
	r := newRng(seed)
	p := &Program{
		Seed:         seed,
		Protocol:     protocol,
		Hostile:      r.chance(7, 10),
		L2:           r.chance(1, 4),
		NonInclusive: r.chance(1, 4),
		UseReduction: r.chance(1, 3),
	}
	workers := 2 + r.n(maxWorkers-1) // 2..7
	opsPer := 16 + r.n(49)           // 16..64

	// Fault schedule: mild jitter on most seeds, occasional heavy jitter and
	// congestion bursts. Roughly 1 in 8 seeds runs fault-free as a control.
	if !r.chance(1, 8) {
		p.Faults.Seed = r.next()
		p.Faults.MaxJitter = uint64(1 + r.n(24))
		if r.chance(1, 3) {
			p.Faults.MaxJitter += uint64(r.n(120)) // heavy tail
		}
		if r.chance(1, 3) {
			p.Faults.BurstPeriod = uint64(64 + r.n(1900))
			p.Faults.BurstLen = 1 + p.Faults.BurstPeriod/uint64(4+r.n(12))
		}
	}

	for t := 0; t < workers; t++ {
		ops := make([]OpSpec, 0, opsPer)
		for i := 0; i < opsPer; i++ {
			k := pick(r, p.UseReduction)
			op := OpSpec{K: k, A: r.n(1 << 16)}
			switch k {
			case KFSAdd, KSharedAdd, KLockedAdd, KReduce:
				op.V = uint64(1 + r.n(255))
			case KRacyStore:
				op.V = r.next() >> 8
			case KPrivStore:
				op.Sz = sizes[r.n(len(sizes))]
				op.V = r.next()
			}
			ops = append(ops, op)
		}
		p.Threads = append(p.Threads, ops)
	}
	// Big-machine cell: ~1 in 6 programs runs on a 64-core mesh with a
	// sharded 8-slice LLC squeezed small enough that inclusion recalls cross
	// slice boundaries constantly. Drawn last so the rest of the corpus is
	// unchanged by the feature's introduction.
	p.BigMachine = r.chance(1, 6)
	return p
}
