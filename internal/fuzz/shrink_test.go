package fuzz

import "testing"

// TestShrinkerConvergesOnSeededBug plants a protocol bug (drop the first
// InvAck — the invalidation handshake silently loses an acknowledgment) in a
// full-sized generated program and checks the shrinker produces a small
// still-failing repro: ≤ 8 threads × ≤ 64 ops, strictly smaller than the
// original.
func TestShrinkerConvergesOnSeededBug(t *testing.T) {
	p := Generate(42, "fslite")
	p.Sabotage = &SabotageSpec{Mode: "drop", Op: "InvAck", Nth: 1}
	opt := Options{StallCycles: 20_000}

	out := Execute(p, opt)
	if out.Failure == nil {
		t.Fatal("seeded bug not detected")
	}
	kind := out.Failure.Kind
	if kind != "stall" && kind != "deadlock" {
		t.Fatalf("seeded bug detected as %s, want a liveness failure", kind)
	}

	sr := Shrink(p, kind, opt, 0)
	q := sr.Program
	if got := Execute(q, opt); got.Failure == nil || got.Failure.Kind != kind {
		t.Fatalf("shrunk program no longer fails with %s: %v", kind, got.Failure)
	}
	if len(q.Threads) > 8 {
		t.Fatalf("shrunk repro has %d threads, want <= 8", len(q.Threads))
	}
	total := 0
	for _, ops := range q.Threads {
		if len(ops) > 64 {
			t.Fatalf("shrunk thread has %d ops, want <= 64", len(ops))
		}
		total += len(ops)
	}
	orig := 0
	for _, ops := range p.Threads {
		orig += len(ops)
	}
	if total >= orig {
		t.Fatalf("shrinker made no progress: %d ops vs original %d", total, orig)
	}
	t.Logf("shrunk %d threads/%d ops -> %d threads/%d ops in %d runs",
		len(p.Threads), orig, len(q.Threads), total, sr.Runs)
}

// TestShrinkerPreservesFailureKind shrinks an oracle (data-corruption)
// failure and checks the predicate held the failure kind fixed.
func TestShrinkerPreservesFailureKind(t *testing.T) {
	p := Generate(7, "fslite")
	p.Sabotage = &SabotageSpec{Mode: "corrupt", Op: "Data", Nth: 5}
	opt := Options{}
	out := Execute(p, opt)
	if out.Failure == nil || out.Failure.Kind != "oracle" {
		t.Fatalf("setup: %v", out.Failure)
	}
	sr := Shrink(p, "oracle", opt, 120)
	if got := Execute(sr.Program, opt); got.Failure == nil || got.Failure.Kind != "oracle" {
		t.Fatalf("shrunk program lost the oracle failure: %v", got.Failure)
	}
}
