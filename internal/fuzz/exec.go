package fuzz

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/sim"
)

// Options tunes one Execute.
type Options struct {
	// StallCycles is the watchdog threshold: an unfinished core that commits
	// nothing for this many cycles trips the liveness oracle (0 = 200k).
	StallCycles uint64

	// MaxCycles is the hard cycle budget backstopping the watchdog
	// (0 = 8M). Generated programs finish in well under a million cycles.
	MaxCycles uint64

	// Obs optionally attaches the observability layer (replay under -trace).
	Obs ObsAttacher

	// SwitchDispatch runs the controllers through the retained hand-written
	// switch instead of the spec-table interpreter (differential testing).
	SwitchDispatch bool
}

// ObsAttacher matches *obs.Obs without importing it here; Execute passes it
// through to sim.Config.
type ObsAttacher = func(cfg *sim.Config)

// Failure describes one detected protocol violation.
type Failure struct {
	// Kind is "panic", "stall", "deadlock", "oracle", "swmr", "value" or
	// "quiescence", in decreasing severity.
	Kind string

	// Detail is a one-line diagnosis; Dump carries the full state dump
	// (in-flight messages, per-component FSM states) for liveness failures.
	Detail string
	Dump   string
}

func (f *Failure) Error() string {
	if f.Dump != "" {
		return fmt.Sprintf("[%s] %s\n%s", f.Kind, f.Detail, f.Dump)
	}
	return fmt.Sprintf("[%s] %s", f.Kind, f.Detail)
}

// Outcome is the result of executing one program.
type Outcome struct {
	Cycles  uint64
	Failure *Failure // nil when every oracle passed
}

// reference is the sequentially consistent reference execution: the program's
// tracked ops replayed into a flat byte map. The op mix makes the final image
// interleaving-independent (commutative shared updates, single-writer private
// stores), so any replay order is a valid SC witness for the final values.
type reference struct {
	mem   map[memsys.Addr]byte
	words []memsys.Addr // sorted tracked 8-byte-aligned words the checker reads
}

func (r *reference) store(a memsys.Addr, sz int, v uint64) {
	for i := 0; i < sz; i++ {
		r.mem[a+memsys.Addr(i)] = byte(v >> (8 * i))
	}
	r.track(a)
}

func (r *reference) load8(a memsys.Addr) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(r.mem[a+memsys.Addr(i)]) << (8 * i)
	}
	return v
}

func (r *reference) add8(a memsys.Addr, delta uint64) {
	r.store(a&^7, 8, r.load8(a&^7)+delta)
}

// track registers the 8-byte word containing a for the final-value check.
func (r *reference) track(a memsys.Addr) {
	w := a &^ 7
	for _, x := range r.words {
		if x == w {
			return
		}
	}
	r.words = append(r.words, w)
}

// Per-kind address helpers (shared by the executor and the reference).

func fsSlotAddr(a, slot int) memsys.Addr {
	return addrOf(blkFS+a%numFSLines, (slot%fsSlots)*8)
}
func racyAddr(a int) memsys.Addr   { return addrOf(blkRacy, (a%8)*8) }
func reduceAddr(a int) memsys.Addr { return addrOf(blkReduce, (a%8)*8) }
func privAddr(t, a, sz int) memsys.Addr {
	span := privLines * blockBytes
	return privBase(t) + memsys.Addr((a%(span/sz))*sz)
}
func privWordAddr(t, a int) memsys.Addr {
	return privBase(t) + memsys.Addr((a%(privLines*blockBytes/8))*8)
}

var (
	sharedAddr = addrOf(blkShared, 0)
	lockAddr   = addrOf(blkLock, 0)
	lockedAddr = addrOf(blkLocked, 0)
	barCount   = addrOf(blkBarrier, 0)
	barSense   = addrOf(blkBarrier, 8)
)

// buildReference replays the program into the SC reference. Racy words
// (multiple plain-store writers) are never tracked; every other written word
// is. The barrier words are tracked too: after the final barrier the count
// must read 0 and the sense 1.
func buildReference(p *Program) *reference {
	r := &reference{mem: make(map[memsys.Addr]byte)}
	for t, ops := range p.Threads {
		for _, op := range ops {
			switch op.K {
			case KFSAdd:
				r.add8(fsSlotAddr(op.A, t), op.V)
			case KSharedAdd:
				r.add8(sharedAddr, op.V)
			case KLockedAdd:
				r.add8(lockedAddr, op.V)
			case KReduce:
				r.add8(reduceAddr(op.A), op.V)
			case KPrivStore:
				r.store(privAddr(t, op.A, op.Sz), op.Sz, op.V)
			}
		}
	}
	r.store(barCount, 8, 0)
	r.store(barSense, 8, 1)
	r.track(lockAddr) // final value 0: every acquire was released
	sort.Slice(r.words, func(i, j int) bool { return r.words[i] < r.words[j] })
	return r
}

// config assembles the simulation configuration for a program.
func config(p *Program, opt Options) (sim.Config, error) {
	mode, err := p.Mode()
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(mode)
	cfg.Engine = sim.EngineNaive // the watchdog's cycle hook disables skipping anyway
	cfg.CheckOracle = true
	cfg.CheckSWMR = true
	cfg.SWMRPeriod = 16
	cfg.MaxCycles = opt.MaxCycles
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 8_000_000
	}
	if p.Hostile {
		// Tiny caches and thresholds: evictions, inclusion recalls and
		// privatization churn within a few dozen operations (the same shape
		// as the sim package's stress suite).
		cfg.Params.L1Entries = 16
		cfg.Params.L1Ways = 2
		cfg.Params.Slices = 2
		cfg.Params.LLCEntriesSlice = 32
		cfg.Params.LLCWays = 4
		cfg.Core.TauP = 4
		cfg.Core.TauR1 = 4
		cfg.Core.SAMEntries = 8
		cfg.Core.SAMWays = 2
	}
	if p.L2 {
		cfg.Params.L2Entries = 32
		cfg.Params.L2Ways = 4
	}
	cfg.Params.NonInclusiveLLC = p.NonInclusive
	if p.BigMachine {
		// Applied after Hostile so the mesh machine keeps its 8 slices:
		// recalls, metadata traffic and privatization control all route
		// across the multi-slice directory under fault injection.
		cfg.Params = cfg.Params.ScaleToCores(64)
		cfg.Params.Topology = network.TopoMesh
		if cfg.Params.LLCEntriesSlice > 64 {
			cfg.Params.LLCEntriesSlice = 64
			cfg.Params.LLCWays = 4
		}
	}
	cfg.Params.SwitchDispatch = opt.SwitchDispatch
	cfg.Faults = p.Faults.Plan()
	if opt.Obs != nil {
		opt.Obs(&cfg)
	}
	return cfg, nil
}

// threadFunc builds the simulated thread for worker t.
func threadFunc(t int, ops []OpSpec, bar *cpu.Barrier) cpu.ThreadFunc {
	return func(c *cpu.Ctx) {
		var sense uint64
		for _, op := range ops {
			switch op.K {
			case KFSAdd:
				c.AtomicAdd(fsSlotAddr(op.A, t), 8, op.V)
			case KFSLoad:
				c.Load(fsSlotAddr(op.A, t+1+op.A), 8)
			case KSharedAdd:
				c.AtomicAdd(sharedAddr, 8, op.V)
			case KLockedAdd:
				c.LockAcquire(lockAddr)
				v := c.Load(lockedAddr, 8)
				c.StoreSync(lockedAddr, 8, v+op.V)
				c.LockRelease(lockAddr)
			case KRacyStore:
				c.Store(racyAddr(op.A), 8, op.V)
			case KRacyLoad:
				c.Load(racyAddr(op.A), 8)
			case KPrivStore:
				c.Store(privAddr(t, op.A, op.Sz), op.Sz, op.V)
			case KPrivLoad:
				c.Load(privWordAddr(t, op.A), 8)
			case KReduce:
				c.Reduce(reduceAddr(op.A), 8, op.V)
			case KCompute:
				c.Compute(uint64(op.A%24) + 1)
			case KPrefetch:
				c.Prefetch(addrOf(blkFS+op.A%numFSLines, 0))
			}
		}
		bar.Wait(c, &sense)
	}
}

// Execute runs one program under full oracle supervision and returns the
// outcome. It never lets a panic escape: protocol panics (handler invariant
// violations) are converted into a "panic" failure.
func Execute(p *Program, opt Options) (out *Outcome) {
	out = &Outcome{}
	if err := p.Validate(); err != nil {
		out.Failure = &Failure{Kind: "panic", Detail: err.Error()}
		return out
	}
	cfg, err := config(p, opt)
	if err != nil {
		out.Failure = &Failure{Kind: "panic", Detail: err.Error()}
		return out
	}

	ref := buildReference(p)
	workers := len(p.Threads)
	bar := &cpu.Barrier{CountAddr: barCount, SenseAddr: barSense, Threads: workers + 1}

	var threads []cpu.ThreadFunc
	for t := 0; t < workers; t++ {
		threads = append(threads, threadFunc(t, p.Threads[t], bar))
	}
	// The checker runs on its own core: it joins the final barrier, then
	// reads every tracked word. Its loads conflict with any still-open
	// privatized episode, forcing the byte merge the value check depends on.
	got := make([]uint64, len(ref.words))
	threads = append(threads, func(c *cpu.Ctx) {
		var sense uint64
		bar.Wait(c, &sense)
		for i, w := range ref.words {
			got[i] = c.Load(w, 8)
		}
	})

	wl := sim.Workload{Name: fmt.Sprintf("fuzz-%d", p.Seed), Threads: threads}
	if p.UseReduction {
		wl.ReductionRegions = []coherence.AddrRange{{Start: addrOf(blkReduce, 0), Size: blockBytes}}
	}

	sys := sim.New(cfg, wl)
	if p.Sabotage != nil {
		sab, err := p.Sabotage.Sabotage()
		if err != nil {
			out.Failure = &Failure{Kind: "panic", Detail: err.Error()}
			return out
		}
		sys.Net().SetSabotage(sab)
	}

	stall := opt.StallCycles
	if stall == 0 {
		stall = 200_000
	}
	wd := NewWatchdog(sys, cfg.Params.Cores, stall)
	wd.Install()

	defer func() {
		if r := recover(); r != nil {
			out.Failure = &Failure{
				Kind:   "panic",
				Detail: fmt.Sprint(r),
				Dump:   string(debug.Stack()),
			}
		}
	}()

	res, err := sys.Run(wl.Name)
	if err != nil {
		switch {
		case wd.Tripped():
			out.Cycles = wd.TripCycle()
			out.Failure = &Failure{Kind: "stall", Detail: wd.Reason(), Dump: wd.Dump()}
		case errors.Is(err, sim.ErrDeadlock):
			out.Failure = &Failure{Kind: "deadlock", Detail: err.Error(), Dump: sys.DumpState()}
		default:
			out.Failure = &Failure{Kind: "deadlock", Detail: err.Error(), Dump: sys.DumpState()}
		}
		return out
	}
	out.Cycles = res.Cycles

	if len(res.OracleViolations) > 0 {
		out.Failure = &Failure{Kind: "oracle", Detail: res.OracleViolations[0],
			Dump: fmt.Sprintf("%d violation(s) total", len(res.OracleViolations))}
		return out
	}
	if len(res.SWMRViolations) > 0 {
		out.Failure = &Failure{Kind: "swmr", Detail: res.SWMRViolations[0],
			Dump: fmt.Sprintf("%d violation(s) total", len(res.SWMRViolations))}
		return out
	}
	for i, w := range ref.words {
		if want := ref.load8(w); got[i] != want {
			out.Failure = &Failure{Kind: "value",
				Detail: fmt.Sprintf("word %v = %#x, SC reference %#x", w, got[i], want)}
			return out
		}
	}
	if bad := quiescenceViolations(sys, cfg.Params.Cores, cfg.Params.Slices); len(bad) > 0 {
		out.Failure = &Failure{Kind: "quiescence", Detail: bad[0],
			Dump: fmt.Sprintf("%d violation(s) total", len(bad))}
		return out
	}
	return out
}
