package fuzz

// The shrinker: greedy delta-debugging over the Program's data. Because a
// program is plain data over a fixed address layout, removing a thread or an
// operation yields another valid program exercising a subset of the traffic;
// the shrinker keeps any removal that still reproduces the original failure
// kind, iterating to a fixpoint under an execution budget.

// ShrinkResult carries the minimized program and shrinking statistics.
type ShrinkResult struct {
	Program *Program
	Runs    int  // Execute invocations spent
	Gave    bool // true when the budget ran out before the fixpoint
}

// Shrink minimizes p while Execute keeps failing with the same kind as the
// original failure. budget caps the number of Execute calls (0 = 250). The
// returned program always still fails.
func Shrink(p *Program, kind string, opt Options, budget int) ShrinkResult {
	if budget == 0 {
		budget = 250
	}
	runs := 0
	fails := func(q *Program) bool {
		if runs >= budget {
			return false
		}
		runs++
		o := Execute(q, opt)
		return o.Failure != nil && o.Failure.Kind == kind
	}

	cur := p.clone()
	for pass := 0; pass < 8; pass++ {
		changed := false

		// Drop whole threads. Removing thread i renumbers later threads
		// (their slot and private-region addresses shift); the predicate
		// decides whether the failure survives the renumbering.
		for i := 0; i < len(cur.Threads) && len(cur.Threads) > 1; {
			q := cur.clone()
			q.Threads = append(q.Threads[:i], q.Threads[i+1:]...)
			if fails(q) {
				cur = q
				changed = true
			} else {
				i++
			}
		}

		// Remove operation chunks per thread, halving the chunk size
		// (ddmin-style: large bites first, single ops last).
		for t := 0; t < len(cur.Threads); t++ {
			for chunk := len(cur.Threads[t]) / 2; chunk >= 1; chunk /= 2 {
				for start := 0; start+chunk <= len(cur.Threads[t]); {
					q := cur.clone()
					q.Threads[t] = append(q.Threads[t][:start], q.Threads[t][start+chunk:]...)
					if fails(q) {
						cur = q
						changed = true
					} else {
						start += chunk
					}
				}
			}
		}

		// Simplify the fault schedule and system shape: each knob that can
		// be dropped while preserving the failure makes the repro easier to
		// reason about.
		try := func(mutate func(*Program)) {
			q := cur.clone()
			mutate(q)
			if fails(q) {
				cur = q
				changed = true
			}
		}
		if cur.Faults.BurstPeriod != 0 {
			try(func(q *Program) { q.Faults.BurstPeriod, q.Faults.BurstLen = 0, 0 })
		}
		if cur.Faults.MaxJitter > 0 {
			try(func(q *Program) { q.Faults.MaxJitter = 0 })
		}
		if cur.Faults.MaxJitter > 4 {
			try(func(q *Program) { q.Faults.MaxJitter /= 2 })
		}
		if cur.L2 {
			try(func(q *Program) { q.L2 = false })
		}
		if cur.NonInclusive {
			try(func(q *Program) { q.NonInclusive = false })
		}
		if cur.UseReduction {
			try(func(q *Program) { q.UseReduction = false })
		}

		if !changed || runs >= budget {
			return ShrinkResult{Program: cur, Runs: runs, Gave: runs >= budget && changed}
		}
	}
	return ShrinkResult{Program: cur, Runs: runs}
}
