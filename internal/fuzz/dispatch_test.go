package fuzz

import (
	"fmt"
	"testing"
)

// TestDispatchDifferential runs a corpus slice through both message-dispatch
// paths — the table-driven interpreter built from internal/coherence/spec
// (the default) and the retained hand-written switches — and demands the same
// outcome from each: identical cycle counts and, when a fault campaign trips
// an oracle, the same failure kind. Panic messages may differ between the
// paths (the interpreter cites the spec's impossibility note), so only the
// classified kind is compared.
func TestDispatchDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, proto := range AllProtocols {
			seed, proto := seed, proto
			t.Run(fmt.Sprintf("seed%d-%s", seed, proto), func(t *testing.T) {
				t.Parallel()
				p := Generate(seed, proto)
				table := Execute(p, Options{})
				sw := Execute(p, Options{SwitchDispatch: true})
				if table.Cycles != sw.Cycles {
					t.Errorf("cycles diverge: table=%d switch=%d", table.Cycles, sw.Cycles)
				}
				tk, sk := "", ""
				if table.Failure != nil {
					tk = table.Failure.Kind
				}
				if sw.Failure != nil {
					sk = sw.Failure.Kind
				}
				if tk != sk {
					t.Errorf("failure kind diverges: table=%q switch=%q", tk, sk)
				}
			})
		}
	}
}
