package fuzz

import (
	"strings"
	"testing"
)

// TestCampaignSmoke is the tier-1 fuzzing gate: a fixed corpus across all
// three protocols with fault injection enabled must run clean. The corpus is
// small enough for `go test ./...`; `make fuzzsmoke` runs a larger one and
// `make fuzz` a larger one still.
func TestCampaignSmoke(t *testing.T) {
	res := Campaign(CampaignConfig{StartSeed: 1, Seeds: 30, Log: t.Logf})
	if res.Cases != 30*len(Protocols) {
		t.Fatalf("cases = %d", res.Cases)
	}
	for _, f := range res.Failures {
		t.Errorf("seed=%d protocol=%s: %v\nrepro:\n%s", f.Seed, f.Protocol, f.Failure, f.Shrunk)
	}
}

// TestGenerateShape checks every generated program is valid and within the
// documented bounds (≤7 workers, ≤64 ops per thread).
func TestGenerateShape(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		for _, proto := range Protocols {
			p := Generate(seed, proto)
			if err := p.Validate(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, proto, err)
			}
			if len(p.Threads) > maxWorkers {
				t.Fatalf("seed %d: %d workers", seed, len(p.Threads))
			}
			for ti, ops := range p.Threads {
				if len(ops) == 0 || len(ops) > 64 {
					t.Fatalf("seed %d thread %d: %d ops", seed, ti, len(ops))
				}
			}
		}
	}
}

// TestExecuteDeterministic re-executes the same program and demands an
// identical outcome — the property replay and shrinking depend on.
func TestExecuteDeterministic(t *testing.T) {
	for _, proto := range Protocols {
		p := Generate(99, proto)
		a := Execute(p, Options{})
		b := Execute(p, Options{})
		if a.Cycles != b.Cycles {
			t.Fatalf("%s: cycles %d vs %d", proto, a.Cycles, b.Cycles)
		}
		if (a.Failure == nil) != (b.Failure == nil) {
			t.Fatalf("%s: failure %v vs %v", proto, a.Failure, b.Failure)
		}
	}
}

// TestCampaignDeterministicAcrossJobs runs the same campaign with different
// worker counts: the per-case results must not depend on scheduling.
func TestCampaignDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) *CampaignResult {
		return Campaign(CampaignConfig{StartSeed: 50, Seeds: 6, Jobs: jobs})
	}
	a, b := run(1), run(4)
	if a.TotalCycles != b.TotalCycles || len(a.Failures) != len(b.Failures) {
		t.Fatalf("jobs=1 {cycles=%d fails=%d} vs jobs=4 {cycles=%d fails=%d}",
			a.TotalCycles, len(a.Failures), b.TotalCycles, len(b.Failures))
	}
}

// TestProgramRoundTrip checks the repro file format: a program survives
// Marshal/Unmarshal bit-exactly (same execution).
func TestProgramRoundTrip(t *testing.T) {
	p := Generate(7, "fslite")
	p.Sabotage = &SabotageSpec{Mode: "corrupt", Op: "Data", Nth: 5}
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	a, b := Execute(p, Options{}), Execute(q, Options{})
	if a.Cycles != b.Cycles || (a.Failure == nil) != (b.Failure == nil) {
		t.Fatalf("round-trip changed the execution: %v vs %v", a, b)
	}
}

// TestSabotageCorruptDetected seeds a single-bit payload corruption on a
// Data response and demands the golden-memory oracle catch it.
func TestSabotageCorruptDetected(t *testing.T) {
	p := Generate(7, "fslite")
	p.Sabotage = &SabotageSpec{Mode: "corrupt", Op: "Data", Nth: 5}
	out := Execute(p, Options{})
	if out.Failure == nil {
		t.Fatal("corrupted data payload not detected")
	}
	if out.Failure.Kind != "oracle" {
		t.Fatalf("kind = %s, want oracle: %v", out.Failure.Kind, out.Failure)
	}
	if !strings.Contains(out.Failure.Detail, "got 0x") {
		t.Fatalf("detail lacks byte diagnosis: %s", out.Failure.Detail)
	}
}

// TestSabotageDropDetected drops a protocol message and demands the liveness
// oracle catch the resulting wedge on every protocol.
func TestSabotageDropDetected(t *testing.T) {
	for _, tc := range []struct{ proto, op string }{
		{"baseline", "Data"},
		{"fsdetect", "InvAck"},
		{"fslite", "InvAck"},
	} {
		p := Generate(42, tc.proto)
		p.Sabotage = &SabotageSpec{Mode: "drop", Op: tc.op, Nth: 1}
		out := Execute(p, Options{StallCycles: 20_000})
		if out.Failure == nil {
			t.Fatalf("%s: dropped %s not detected", tc.proto, tc.op)
		}
		if out.Failure.Kind != "stall" && out.Failure.Kind != "deadlock" {
			t.Fatalf("%s: kind = %s, want a liveness failure: %v", tc.proto, out.Failure.Kind, out.Failure)
		}
	}
}
