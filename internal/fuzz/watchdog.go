package fuzz

import (
	"fmt"

	"fscoherence/internal/memsys"
	"fscoherence/internal/sim"
)

// Watchdog is the liveness oracle: it watches per-core architectural commits
// and trips when any unfinished core stops committing for Stall cycles. This
// catches both deadlock (nothing commits anywhere) and livelock that a global
// progress check would miss — a core spinning on a lock or barrier keeps
// committing loads, so only the genuinely wedged core's clock stops.
//
// On a trip it snapshots the full system state — in-flight network messages
// with delivery cycles plus every non-idle L1/directory FSM (sim.DumpState)
// and the per-core commit ages — then aborts the run via sim.RequestStop.
type Watchdog struct {
	sys   *sim.System
	cores int
	stall uint64

	lastCommit []uint64 // cycle of each core's most recent commit (0 = none yet)

	tripped   bool
	tripCycle uint64
	reason    string
	dump      string
}

// checkEvery is the cycle-hook sampling period (power of two; the hook runs
// every cycle, the stall scan only on multiples).
const checkEvery = 512

// NewWatchdog builds a watchdog for sys with the given stall threshold.
func NewWatchdog(sys *sim.System, cores int, stall uint64) *Watchdog {
	return &Watchdog{sys: sys, cores: cores, stall: stall, lastCommit: make([]uint64, cores)}
}

// Install wires the watchdog into the system's commit trace and cycle hook.
// It must be called before Run, and claims both hooks for itself.
func (w *Watchdog) Install() {
	w.sys.SetCommitTrace(func(cycle uint64, core int, kind string, a memsys.Addr, v []byte) {
		w.lastCommit[core] = cycle
	})
	w.sys.SetCycleHook(func(cycle uint64) {
		if cycle%checkEvery == 0 && !w.tripped {
			w.check(cycle)
		}
	})
}

// check scans for a stalled core and trips on the first one found.
func (w *Watchdog) check(cycle uint64) {
	for i := 0; i < w.cores; i++ {
		if w.sys.CoreFinished(i) {
			continue
		}
		if cycle-w.lastCommit[i] <= w.stall {
			continue
		}
		w.tripped = true
		w.tripCycle = cycle
		w.reason = fmt.Sprintf("core %d committed nothing for %d cycles (last commit at %d)",
			i, cycle-w.lastCommit[i], w.lastCommit[i])
		w.dump = w.describe(cycle) + w.sys.DumpState()
		w.sys.RequestStop("watchdog: " + w.reason)
		return
	}
}

// describe renders the per-core commit ages (part of the trip dump).
func (w *Watchdog) describe(cycle uint64) string {
	s := fmt.Sprintf("watchdog trip at cycle %d (stall threshold %d)\n", cycle, w.stall)
	for i := 0; i < w.cores; i++ {
		state := "running"
		if w.sys.CoreFinished(i) {
			state = "finished"
		}
		s += fmt.Sprintf("  core %d: %s, last commit at cycle %d (age %d)\n",
			i, state, w.lastCommit[i], cycle-w.lastCommit[i])
	}
	return s
}

// Tripped reports whether the watchdog fired.
func (w *Watchdog) Tripped() bool { return w.tripped }

// TripCycle returns the cycle of the trip (0 if none).
func (w *Watchdog) TripCycle() uint64 { return w.tripCycle }

// Reason returns the one-line trip diagnosis.
func (w *Watchdog) Reason() string { return w.reason }

// Dump returns the full state snapshot taken at the trip.
func (w *Watchdog) Dump() string { return w.dump }
