package fuzz

import (
	"fmt"
	"sort"

	"fscoherence/internal/coherence"
	"fscoherence/internal/memsys"
	"fscoherence/internal/sim"
)

// Quiescence agreement oracle: once a run drains (all threads finished, no
// in-flight messages, every controller idle), the directory's view of each
// block must agree with the L1s' — PROTOCOL.md §"Quiescent-state invariants".
//
// The invariants are deliberately asymmetric where the protocol is:
//
//   - An L1 holding E/M requires a DirOwned entry naming exactly that core;
//     owners never vanish silently (clean-E evictions write back too), so
//     DirOwned conversely requires the named owner to hold E or M.
//   - An L1 holding S requires DirShared (or DirPrv mid-set: no — at
//     quiescence a PRV episode has no S copies) with the core in the sharer
//     set. The reverse is a superset check only: S copies are dropped
//     silently, so the directory may remember sharers that no longer exist.
//   - An L1 holding PRV requires DirPrv with the core in the PRV-sharer set,
//     and exactly: PRV evictions write back (Prv_WB), so the directory's
//     PRV-sharer set is precise.
//   - DirIdle (or no entry) requires no cached copy anywhere.

// l1View records which cores hold a block in which stable state.
type l1View struct {
	em   []int // cores holding E or M
	sh   []int // cores holding S
	prv  []int // cores holding PRV
	prvB memsys.CoreSet
}

// quiescenceViolations cross-checks every directory entry against every L1
// line at end of run. It returns human-readable violations (nil when
// consistent).
func quiescenceViolations(sys *sim.System, cores, slices int) []string {
	var bad []string
	report := func(format string, args ...any) {
		if len(bad) < 16 {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}

	views := make(map[memsys.Addr]*l1View)
	for i := 0; i < cores; i++ {
		core := i
		sys.L1(i).ForEachLine(func(a memsys.Addr, st coherence.L1State) {
			v := views[a]
			if v == nil {
				v = &l1View{}
				views[a] = v
			}
			switch st {
			case coherence.L1Exclusive, coherence.L1Modified:
				v.em = append(v.em, core)
			case coherence.L1Shared:
				v.sh = append(v.sh, core)
			case coherence.L1Prv:
				v.prv = append(v.prv, core)
				v.prvB.Add(core)
			}
		})
	}

	entries := make(map[memsys.Addr]coherence.DirEntry)
	for s := 0; s < slices; s++ {
		sys.Dir(s).ForEachEntry(func(e coherence.DirEntry) {
			entries[e.Addr] = e
			if e.Busy {
				report("block %v: directory transaction still open at quiescence", e.Addr)
			}
		})
	}

	// L1 -> directory direction, plus SWMR on the final state.
	addrs := make([]memsys.Addr, 0, len(views))
	for a := range views {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		v := views[a]
		if len(v.em) > 1 || (len(v.em) > 0 && (len(v.sh) > 0 || len(v.prv) > 0)) {
			report("block %v: SWMR violated at quiescence: EM=%v S=%v PRV=%v", a, v.em, v.sh, v.prv)
			continue
		}
		e, ok := entries[a]
		if !ok {
			if len(v.em)+len(v.sh)+len(v.prv) > 0 {
				report("block %v: cached (EM=%v S=%v PRV=%v) but no directory entry", a, v.em, v.sh, v.prv)
			}
			continue
		}
		switch {
		case len(v.em) == 1:
			if e.State != coherence.DirOwned || e.Owner != v.em[0] {
				report("block %v: core %d holds E/M but directory is %v owner=%d",
					a, v.em[0], e.State, e.Owner)
			}
		case len(v.prv) > 0:
			if e.State != coherence.DirPrv {
				report("block %v: cores %v hold PRV but directory is %v", a, v.prv, e.State)
			}
		case len(v.sh) > 0:
			if e.State != coherence.DirShared {
				report("block %v: cores %v hold S but directory is %v", a, v.sh, e.State)
			}
		}
		if e.State == coherence.DirShared || e.State == coherence.DirPrv {
			want := e.Sharers
			for _, c := range append(append([]int{}, v.sh...), v.prv...) {
				if !want.Has(c) {
					report("block %v: core %d holds a copy but is not in the %v sharer set %v",
						a, c, e.State, &want)
				}
			}
		}
	}

	// Directory -> L1 direction.
	for a, e := range entries {
		v := views[a]
		if v == nil {
			v = &l1View{}
		}
		switch e.State {
		case coherence.DirOwned:
			st := sys.L1(e.Owner).StateOf(a)
			if st != coherence.L1Exclusive && st != coherence.L1Modified {
				report("block %v: directory owner %d holds %v, not E/M", a, e.Owner, st)
			}
		case coherence.DirPrv:
			// Prv_WB evictions prune the set, so it is exact at quiescence.
			if e.Sharers != v.prvB {
				report("block %v: directory PRV sharers %v but PRV copies at %v", a, &e.Sharers, &v.prvB)
			}
		case coherence.DirIdle:
			if len(v.em)+len(v.sh)+len(v.prv) > 0 {
				report("block %v: directory idle but cached: EM=%v S=%v PRV=%v", a, v.em, v.sh, v.prv)
			}
		}
	}
	return bad
}
