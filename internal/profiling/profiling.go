// Package profiling wires the conventional -cpuprofile/-memprofile pprof
// flags into the commands (cmd/fsexp, cmd/fsrun). Inspect the outputs with
// `go tool pprof <binary> <file>`.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by AddFlags.
type Flags struct {
	cpu string
	mem string

	cpuFile *os.File
	stopped bool
}

// AddFlags registers -cpuprofile and -memprofile on the default FlagSet.
// Call before flag.Parse.
func AddFlags() *Flags {
	p := &Flags{}
	flag.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	flag.StringVar(&p.mem, "memprofile", "", "write an allocation profile to this file on exit")
	return p
}

// Start begins CPU profiling if requested. Call after flag.Parse.
func (p *Flags) Start() error {
	if p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("start cpu profile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile. Idempotent, so
// it can run both deferred and explicitly before an early os.Exit.
func (p *Flags) Stop() error {
	if p.stopped {
		return nil
	}
	p.stopped = true
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
	}
	if p.mem != "" {
		f, err := os.Create(p.mem)
		if err != nil {
			return err
		}
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("write heap profile: %w", err)
		}
		return f.Close()
	}
	return nil
}
