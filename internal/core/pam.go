package core

import (
	"fmt"

	"fscoherence/internal/coherence"
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

var _ coherence.L1Policy = (*PAM)(nil)

// pamEntry mirrors fig. 5a: one read and one write bit per tracking grain of
// an L1 cache block, plus the SEND_MD bit that gates metadata communication
// on eviction.
type pamEntry struct {
	read   uint64
	write  uint64
	sendMD bool
}

// PAM is a per-core private access metadata table (§IV). The simulator keys
// entries by block address; an entry exists exactly while the block is
// resident in the core's L1D, matching the paper's one-entry-per-L1-line
// organization (512 entries for a 32 KB L1D).
type PAM struct {
	cfg     Config
	core    int
	entries map[memsys.Addr]*pamEntry
	stats   *stats.Set
}

// NewPAM builds the PAM table for one core.
func NewPAM(cfg Config, core int, st *stats.Set) *PAM {
	cfg.validate()
	return &PAM{cfg: cfg, core: core, entries: make(map[memsys.Addr]*pamEntry), stats: st}
}

// mask returns the grain bit-mask covering [off, off+size).
func (p *PAM) mask(off, size int) uint64 {
	lo, hi := p.cfg.grainRange(off, size)
	if hi < lo {
		return 0
	}
	var m uint64
	for g := lo; g <= hi; g++ {
		m |= 1 << uint(g)
	}
	return m
}

func (p *PAM) entry(addr memsys.Addr) *pamEntry {
	return p.entries[addr.BlockAlign(p.cfg.BlockSize)]
}

// Allocate creates a fresh (cleared) entry for a newly filled line.
func (p *PAM) Allocate(addr memsys.Addr, sendMD bool) {
	p.entries[addr.BlockAlign(p.cfg.BlockSize)] = &pamEntry{sendMD: sendMD}
}

// OnAccess sets the read or write bits for a committed access.
func (p *PAM) OnAccess(addr memsys.Addr, off, size int, write bool) {
	e := p.entry(addr)
	if e == nil {
		panic(fmt.Sprintf("core: PAM access without entry at %v (core %d)", addr, p.core))
	}
	m := p.mask(off, size)
	if write {
		e.write |= m
	} else {
		e.read |= m
	}
	p.stats.Inc(stats.CtrPAMUpdates)
}

// HasBits reports whether the entry already covers the range: write bits for
// writes, read-or-write bits for reads (§V-B first-access test).
func (p *PAM) HasBits(addr memsys.Addr, off, size int, write bool) bool {
	e := p.entry(addr)
	if e == nil {
		return false
	}
	m := p.mask(off, size)
	if write {
		return e.write&m == m
	}
	return (e.read|e.write)&m == m
}

// SetSendMD updates the SEND_MD bit.
func (p *PAM) SetSendMD(addr memsys.Addr, v bool) {
	if e := p.entry(addr); e != nil {
		e.sendMD = v
	}
}

// PeekSendMD reports the SEND_MD bit.
func (p *PAM) PeekSendMD(addr memsys.Addr) bool {
	e := p.entry(addr)
	return e != nil && e.sendMD
}

// PeekEntry returns the bit-vectors without clearing.
func (p *PAM) PeekEntry(addr memsys.Addr) (uint64, uint64, bool) {
	e := p.entry(addr)
	if e == nil {
		return 0, 0, false
	}
	return e.read, e.write, true
}

// TakeEntry returns and clears the entry (invalidation/eviction path).
func (p *PAM) TakeEntry(addr memsys.Addr) (uint64, uint64, bool, bool) {
	blk := addr.BlockAlign(p.cfg.BlockSize)
	e := p.entries[blk]
	if e == nil {
		return 0, 0, false, false
	}
	delete(p.entries, blk)
	return e.read, e.write, e.sendMD, true
}

// Drop invalidates the entry without reading it.
func (p *PAM) Drop(addr memsys.Addr) {
	delete(p.entries, addr.BlockAlign(p.cfg.BlockSize))
}

// Entries returns the number of live entries (testing aid).
func (p *PAM) Entries() int { return len(p.entries) }
