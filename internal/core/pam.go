package core

import (
	"fmt"
	"math/bits"

	"fscoherence/internal/coherence"
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

var _ coherence.L1Policy = (*PAM)(nil)

// pamEntry mirrors fig. 5a: one read and one write bit per tracking grain of
// an L1 cache block, plus the SEND_MD bit that gates metadata communication
// on eviction.
type pamEntry struct {
	read   uint64
	write  uint64
	sendMD bool
}

// PAM is a per-core private access metadata table (§IV). The simulator keys
// entries by block address; an entry exists exactly while the block is
// resident in the core's L1D, matching the paper's one-entry-per-L1-line
// organization (512 entries for a 32 KB L1D).
type PAM struct {
	cfg      Config
	core     int
	blkShift uint // log2(BlockSize), precomputed for the mru slot hash
	entries  map[memsys.Addr]*pamEntry
	stats    *stats.Set

	// mru is an 8-slot direct-mapped shortcut past the map lookup (slot chosen
	// by low line-address bits) — the commit path touches a handful of blocks
	// in a tight rotation (a falsely shared line plus a few streaming lines),
	// so a small direct-mapped cache captures almost all OnAccess/HasBits
	// lookups. Slots are invalidated when their block's entry is dropped.
	mruBlks [8]memsys.Addr
	mruEnts [8]*pamEntry
}

// NewPAM builds the PAM table for one core.
func NewPAM(cfg Config, core int, st *stats.Set) *PAM {
	cfg.validate()
	return &PAM{
		cfg:      cfg,
		core:     core,
		blkShift: uint(bits.TrailingZeros(uint(cfg.BlockSize))),
		entries:  make(map[memsys.Addr]*pamEntry),
		stats:    st,
	}
}

// mask returns the grain bit-mask covering [off, off+size), computed in
// closed form: a width-(hi-lo+1) run of ones shifted to lo. Byte granularity
// (the default, and the hot path) needs no grain conversion at all: access
// sizes are capped at 8 bytes, so the run never saturates.
func (p *PAM) mask(off, size int) uint64 {
	if p.cfg.Granularity == 1 {
		if size <= 0 {
			return 0
		}
		return ((uint64(1) << uint(size)) - 1) << uint(off)
	}
	lo, hi := p.cfg.grainRange(off, size)
	if hi < lo {
		return 0
	}
	n := uint(hi - lo + 1)
	if n >= 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << n) - 1) << uint(lo)
}

// mruSlot maps a block address to its direct-mapped mru slot.
func (p *PAM) mruSlot(blk memsys.Addr) int {
	return int((uint64(blk) >> p.blkShift) & 7)
}

func (p *PAM) entry(addr memsys.Addr) *pamEntry {
	blk := addr.BlockAlign(p.cfg.BlockSize)
	s := p.mruSlot(blk)
	if e := p.mruEnts[s]; e != nil && p.mruBlks[s] == blk {
		return e
	}
	e := p.entries[blk]
	if e != nil {
		p.mruBlks[s], p.mruEnts[s] = blk, e
	}
	return e
}

// Allocate creates a fresh (cleared) entry for a newly filled line.
func (p *PAM) Allocate(addr memsys.Addr, sendMD bool) {
	blk := addr.BlockAlign(p.cfg.BlockSize)
	e := &pamEntry{sendMD: sendMD}
	p.entries[blk] = e
	s := p.mruSlot(blk)
	p.mruBlks[s], p.mruEnts[s] = blk, e
}

// OnAccess sets the read or write bits for a committed access.
func (p *PAM) OnAccess(addr memsys.Addr, off, size int, write bool) {
	e := p.entry(addr)
	if e == nil {
		panic(fmt.Sprintf("core: PAM access without entry at %v (core %d)", addr, p.core))
	}
	m := p.mask(off, size)
	if write {
		e.write |= m
	} else {
		e.read |= m
	}
	p.stats.IncID(stats.IDPAMUpdates)
}

// HasBits reports whether the entry already covers the range: write bits for
// writes, read-or-write bits for reads (§V-B first-access test).
func (p *PAM) HasBits(addr memsys.Addr, off, size int, write bool) bool {
	e := p.entry(addr)
	if e == nil {
		return false
	}
	m := p.mask(off, size)
	if write {
		return e.write&m == m
	}
	return (e.read|e.write)&m == m
}

// SetSendMD updates the SEND_MD bit.
func (p *PAM) SetSendMD(addr memsys.Addr, v bool) {
	if e := p.entry(addr); e != nil {
		e.sendMD = v
	}
}

// PeekSendMD reports the SEND_MD bit.
func (p *PAM) PeekSendMD(addr memsys.Addr) bool {
	e := p.entry(addr)
	return e != nil && e.sendMD
}

// PeekEntry returns the bit-vectors without clearing.
func (p *PAM) PeekEntry(addr memsys.Addr) (uint64, uint64, bool) {
	e := p.entry(addr)
	if e == nil {
		return 0, 0, false
	}
	return e.read, e.write, true
}

// TakeEntry returns and clears the entry (invalidation/eviction path).
func (p *PAM) TakeEntry(addr memsys.Addr) (uint64, uint64, bool, bool) {
	blk := addr.BlockAlign(p.cfg.BlockSize)
	e := p.entries[blk]
	if e == nil {
		return 0, 0, false, false
	}
	delete(p.entries, blk)
	if s := p.mruSlot(blk); p.mruBlks[s] == blk {
		p.mruEnts[s] = nil
	}
	return e.read, e.write, e.sendMD, true
}

// Drop invalidates the entry without reading it.
func (p *PAM) Drop(addr memsys.Addr) {
	blk := addr.BlockAlign(p.cfg.BlockSize)
	delete(p.entries, blk)
	if s := p.mruSlot(blk); p.mruBlks[s] == blk {
		p.mruEnts[s] = nil
	}
}

// Has reports whether an entry exists for the block containing addr (the
// window-boundary agreement checks: an entry exists exactly while the block
// is resident in the core's L1D).
func (p *PAM) Has(addr memsys.Addr) bool { return p.entry(addr) != nil }

// Entries returns the number of live entries (testing aid).
func (p *PAM) Entries() int { return len(p.entries) }
