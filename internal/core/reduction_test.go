package core

import (
	"testing"

	"fscoherence/internal/coherence"
)

func newRedDS() *DirSide {
	d := newDS(coherence.FSLite, nil)
	d.RegisterReduction(coherence.AddrRange{Start: blkA, Size: 32}) // bytes 0-31
	return d
}

func TestReductionWritersDoNotConflict(t *testing.T) {
	d := newRedDS()
	d.OnPrivatize(blkA)
	d.RecordBytes(blkA, 1, 0, 8, true)
	d.RecordBytes(blkA, 2, 0, 8, true) // same word, different core: allowed
	if d.CheckBytes(blkA, 3, 0, 8, true) != coherence.NoConflict {
		t.Fatal("a third reduction writer must not conflict")
	}
	// Both cores' reduce masks cover the word.
	if !maskBit(d.ReduceMask(blkA, 1), 0) || !maskBit(d.ReduceMask(blkA, 2), 0) {
		t.Fatal("reduction writers not recorded")
	}
	// Neither is a last-writer (the byte-copy merge must not fire).
	if maskBit(d.MergeMask(blkA, 1), 0) || maskBit(d.MergeMask(blkA, 2), 0) {
		t.Fatal("reduction writes must not set the last writer")
	}
}

func TestReductionReadForcesConflict(t *testing.T) {
	d := newRedDS()
	d.OnPrivatize(blkA)
	d.RecordBytes(blkA, 1, 0, 8, true)
	// A foreign read of a grain with reduction writers must conflict (it
	// needs the merged value).
	if d.CheckBytes(blkA, 2, 0, 8, false) == coherence.NoConflict {
		t.Fatal("foreign read of a reduction word must force a merge")
	}
	// The writer itself reading its own partial is allowed (same contract
	// as a thread reading its OpenMP reduction variable mid-phase).
	if d.CheckBytes(blkA, 1, 0, 8, false) != coherence.NoConflict {
		t.Fatal("own read should not conflict")
	}
}

func TestReductionWriteOverReaderConflicts(t *testing.T) {
	d := newRedDS()
	d.OnPrivatize(blkA)
	d.RecordBytes(blkA, 3, 0, 8, false) // core 3 read the word
	if d.CheckBytes(blkA, 1, 0, 8, true) == coherence.NoConflict {
		t.Fatal("reduction write over a foreign reader must conflict")
	}
}

func TestReductionOutsideRegionUnchanged(t *testing.T) {
	d := newRedDS()
	d.OnPrivatize(blkA)
	// Bytes 32+ are outside the declared region: normal last-writer rules.
	d.RecordBytes(blkA, 1, 32, 8, true)
	if d.CheckBytes(blkA, 2, 32, 8, true) == coherence.NoConflict {
		t.Fatal("outside the region, write-write must conflict")
	}
	if !maskBit(d.MergeMask(blkA, 1), 32) {
		t.Fatal("outside the region, the last writer must be recorded")
	}
}

func TestReductionRepMDNoTrueSharing(t *testing.T) {
	d := newRedDS()
	// Overlapping write metadata from two cores within the region must not
	// set TS (they are declared commutative).
	d.OnRepMD(blkA, 1, 0, mdBits(0, 8))
	d.OnRepMD(blkA, 2, 0, mdBits(0, 8))
	if d.TrueSharing(blkA) {
		t.Fatal("reduction-region write-write flagged as true sharing")
	}
	// Outside the region the same pattern is true sharing.
	d2 := newRedDS()
	d2.OnRepMD(blkA, 1, 0, mdBits(40, 8))
	d2.OnRepMD(blkA, 2, 0, mdBits(40, 8))
	if !d2.TrueSharing(blkA) {
		t.Fatal("non-region write-write not flagged")
	}
}

func TestReductionPrvEvictionClearsBits(t *testing.T) {
	d := newRedDS()
	d.OnPrivatize(blkA)
	d.RecordBytes(blkA, 1, 0, 8, true)
	d.RecordBytes(blkA, 2, 0, 8, true)
	d.OnPrvEviction(blkA, 1)
	if maskBit(d.ReduceMask(blkA, 1), 0) {
		t.Fatal("evictor's reduction bit survived")
	}
	if !maskBit(d.ReduceMask(blkA, 2), 0) {
		t.Fatal("other core's reduction bit lost")
	}
}

func TestAddrRangeContains(t *testing.T) {
	r := coherence.AddrRange{Start: 0x1010, Size: 0x20}
	// The containing blocks (0x1000 and 0x1040... size 0x20 ends at 0x1030,
	// so only block 0x1000) overlap.
	if !r.Contains(0x1000, 64) || !r.Contains(0x102f, 64) {
		t.Fatal("range should cover its own block")
	}
	if r.Contains(0x1040, 64) {
		t.Fatal("next block wrongly covered")
	}
	if r.Contains(0xfc0, 64) {
		t.Fatal("previous block wrongly covered")
	}
}

func TestDetectionEpisodesAccumulate(t *testing.T) {
	d := newDS(coherence.FSDetect, nil)
	for round := 0; round < 3; round++ {
		d.OnRepMD(blkA, 0, 0, mdBits(0, 8))
		d.OnRepMD(blkA, 1, 0, mdBits(8, 8))
		for i := 0; i < 16; i++ {
			d.OnFetchRequest(blkA, i%4)
			d.OnInvalidationsSent(blkA, 1)
		}
	}
	dets := d.Detections()
	if len(dets) != 1 || dets[0].Episodes != 3 {
		t.Fatalf("episodes = %+v", dets)
	}
}

func TestAreaScalesWithCores(t *testing.T) {
	// §IV: the SAM entry is (C + 1 + log2 C)*B + 1 bits; spot-check 16 and
	// 32 cores.
	for _, tc := range []struct {
		cores, want int
	}{
		{16, (16+1+4)*64 + 1},
		{32, (32+1+5)*64 + 1},
	} {
		cfg := DefaultConfig(tc.cores, 64, coherence.FSLite)
		r := cfg.Area(512, 32768, 8)
		if r.SAMEntryBits != tc.want {
			t.Fatalf("%d cores: SAM entry = %d bits, want %d", tc.cores, r.SAMEntryBits, tc.want)
		}
	}
}
