package core

import (
	"strings"
	"testing"

	"fscoherence/internal/coherence"
)

// The paper gives exact storage arithmetic for an 8-core system with 64-byte
// lines; the area model must reproduce it.

func TestAreaMatchesPaperArithmetic(t *testing.T) {
	cfg := DefaultConfig(8, 64, coherence.FSLite)
	// Paper Table II geometry: 512-entry L1D (32 KB), 32768-entry LLC slice
	// (2 MB), 8 slices.
	r := cfg.Area(512, 32768, 8)

	// §IV: "A 129-bit PAM table entry".
	if r.PAMEntryBits != 129 {
		t.Fatalf("PAM entry = %d bits, want 129", r.PAMEntryBits)
	}
	// §IV: "a SAM table entry is (8+1+log2 8)*64 + 1 = 769 bits".
	if r.SAMEntryBits != 769 {
		t.Fatalf("SAM entry = %d bits, want 769", r.SAMEntryBits)
	}
	// §IV: "each directory entry is extended by 19 bits".
	if r.DirEntryExtensionBits != 19 {
		t.Fatalf("dir extension = %d bits, want 19", r.DirEntryExtensionBits)
	}
	// Table II: PAM table 8 KB per L1D.
	if r.PAMBytesPerCore < 8*1024 || r.PAMBytesPerCore > 9*1024 {
		t.Fatalf("PAM bytes/core = %d, want ~8 KB", r.PAMBytesPerCore)
	}
	// Table II: SAM table ~12.7 KB per slice (incl. tags and LRU).
	if r.SAMBytesPerSlice < 12*1024 || r.SAMBytesPerSlice > 14*1024 {
		t.Fatalf("SAM bytes/slice = %d, want ~12.7 KB", r.SAMBytesPerSlice)
	}
	// Table II: directory extension ~76 KB per slice.
	if r.DirExtensionBytesPerSlice < 75*1024 || r.DirExtensionBytesPerSlice > 80*1024 {
		t.Fatalf("dir extension bytes/slice = %d, want ~76 KB", r.DirExtensionBytesPerSlice)
	}
	// Table II: "total storage overhead ... less than 5%".
	if r.OverheadFraction >= 0.05 {
		t.Fatalf("overhead = %.2f%%, want < 5%%", 100*r.OverheadFraction)
	}
}

func TestAreaReaderOptSaves25Percent(t *testing.T) {
	base := DefaultConfig(8, 64, coherence.FSLite)
	opt := base
	opt.ReaderOpt = true
	full := base.Area(512, 32768, 8)
	small := opt.Area(512, 32768, 8)
	// §VI: "This optimized SAM table entry is 577 bits wide as opposed to
	// 769 bits in the basic design leading to a 25% storage saving".
	if small.SAMEntryBits != 577 {
		t.Fatalf("optimized SAM entry = %d bits, want 577", small.SAMEntryBits)
	}
	saving := 1 - float64(small.SAMEntryBits)/float64(full.SAMEntryBits)
	if saving < 0.24 || saving > 0.26 {
		t.Fatalf("saving = %.1f%%, want ~25%%", 100*saving)
	}
}

func TestAreaCoarseGrainShrinksTables(t *testing.T) {
	cfg := DefaultConfig(8, 64, coherence.FSLite)
	cfg.Granularity = 4
	cfg.ReaderOpt = true
	r := cfg.Area(512, 32768, 8)
	// §VIII-B: "Tracking access information at a 4-byte granularity reduces
	// the size of the PAM table to 2 KB per L1D cache and that of the SAM
	// table with reader metadata optimization to 3 KB per LLC slice."
	if r.PAMBytesPerCore > 3*1024 {
		t.Fatalf("coarse PAM = %d bytes, want ~2 KB", r.PAMBytesPerCore)
	}
	if r.SAMBytesPerSlice > 4*1024 {
		t.Fatalf("coarse SAM = %d bytes, want ~3 KB", r.SAMBytesPerSlice)
	}
}

func TestAreaString(t *testing.T) {
	cfg := DefaultConfig(8, 64, coherence.FSLite)
	s := cfg.Area(512, 32768, 8).String()
	for _, frag := range []string{"PAM entry 129 bits", "SAM entry 769", "19 bits/entry"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("report missing %q: %s", frag, s)
		}
	}
}
