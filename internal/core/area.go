package core

import "fmt"

// AreaReport quantifies the storage added by FSDetect/FSLite, following the
// paper's arithmetic (§IV and Table II): the PAM tables (129 bits per L1D
// line for byte-grain tracking), the SAM tables (769 bits per entry for an
// 8-core system, 577 with the §VI reader optimization), and the directory
// entry extension (FC+IC+HC+PMMC = 19 bits for 8 cores). The paper reports a
// total overhead below 5% of the cache hierarchy's capacity.
type AreaReport struct {
	// PAMEntryBits is the width of one PAM entry (2 bits per grain plus the
	// SEND_MD bit).
	PAMEntryBits int
	// PAMBytesPerCore is the PAM table capacity per core.
	PAMBytesPerCore int

	// SAMEntryBits is the width of one SAM entry's payload (per-grain
	// reader/writer metadata plus the TS bit).
	SAMEntryBits int
	// SAMTagBits is the per-entry tag + LRU overhead (48-bit physical
	// addresses, as in the paper's sizing).
	SAMTagBits int
	// SAMBytesPerSlice is the SAM table capacity per LLC slice.
	SAMBytesPerSlice int

	// DirEntryExtensionBits is the per-directory-entry counter extension
	// (7-bit FC, 7-bit IC, 2-bit HC, log2(cores)-bit PMMC).
	DirEntryExtensionBits int
	// DirExtensionBytesPerSlice is the extension capacity per LLC slice.
	DirExtensionBytesPerSlice int

	// TotalOverheadBytes is the added storage across the chip.
	TotalOverheadBytes int
	// HierarchyBytes is the unmodified L1D+LLC data capacity.
	HierarchyBytes int
	// OverheadFraction is TotalOverheadBytes / HierarchyBytes.
	OverheadFraction float64
}

// Area computes the storage report for a system with the given cache
// geometry (entries are cache lines).
func (c Config) Area(l1EntriesPerCore, llcEntriesPerSlice, slices int) AreaReport {
	c.validate()
	grains := c.grains()

	var r AreaReport
	// PAM: one read and one write bit per grain, plus SEND_MD (fig. 5a).
	r.PAMEntryBits = 2*grains + 1
	r.PAMBytesPerCore = bitsToBytes(r.PAMEntryBits * l1EntriesPerCore)

	// SAM (fig. 5b): per grain, the reader metadata plus a valid last
	// writer (1 + log2(cores) bits); one TS bit per entry.
	writerBits := 1 + log2ceil(c.Cores)
	readerBits := c.Cores // full reader bit-vector
	if c.ReaderOpt {
		readerBits = log2ceil(c.Cores) + 2 // last reader + valid + overflow (§VI)
	}
	r.SAMEntryBits = (readerBits+writerBits)*grains + 1
	// Tag overhead for a 48-bit physical address, set-associative geometry,
	// plus LRU state (as counted in Table II's 12.7 KB).
	sets := c.SAMEntries / c.SAMWays
	r.SAMTagBits = 48 - log2ceil(c.BlockSize) - log2ceil(sets) + log2ceil(c.SAMWays)
	r.SAMBytesPerSlice = bitsToBytes((r.SAMEntryBits + r.SAMTagBits) * c.SAMEntries)

	// Directory extension (fig. 5c).
	r.DirEntryExtensionBits = 7 + 7 + 2 + log2ceil(c.Cores)
	r.DirExtensionBytesPerSlice = bitsToBytes(r.DirEntryExtensionBits * llcEntriesPerSlice)

	r.TotalOverheadBytes = c.Cores*r.PAMBytesPerCore +
		slices*(r.SAMBytesPerSlice+r.DirExtensionBytesPerSlice)
	r.HierarchyBytes = (c.Cores*l1EntriesPerCore + slices*llcEntriesPerSlice) * c.BlockSize
	r.OverheadFraction = float64(r.TotalOverheadBytes) / float64(r.HierarchyBytes)
	return r
}

// String renders the report in Table II style.
func (r AreaReport) String() string {
	return fmt.Sprintf(
		"PAM entry %d bits (%d B/core); SAM entry %d+%d bits (%d B/slice); "+
			"dir extension %d bits/entry (%d B/slice); total %d B = %.2f%% of the hierarchy",
		r.PAMEntryBits, r.PAMBytesPerCore,
		r.SAMEntryBits, r.SAMTagBits, r.SAMBytesPerSlice,
		r.DirEntryExtensionBits, r.DirExtensionBytesPerSlice,
		r.TotalOverheadBytes, 100*r.OverheadFraction)
}

func bitsToBytes(bits int) int { return (bits + 7) / 8 }

func log2ceil(v int) int {
	n := 0
	for (1 << n) < v {
		n++
	}
	return n
}
