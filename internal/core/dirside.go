package core

import (
	"sort"

	"fscoherence/internal/coherence"
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
	"fscoherence/internal/obs"
	"fscoherence/internal/stats"
)

// dirMeta carries the per-directory-entry counters of fig. 5c.
type dirMeta struct {
	fc      uint32 // fetch counter (7-bit, saturating)
	ic      uint32 // invalidation/intervention counter (7-bit, saturating)
	pmmc    int    // pending metadata message counter
	hc      uint8  // 2-bit saturating hysteresis counter (§VI)
	flagged bool   // identified as potentially falsely shared
	prv     bool   // currently privatized (FC/IC updates disabled, §V)
}

// Detection describes one detected instance of harmful false sharing — the
// FSDetect report a programmer (or FSLite) consumes.
type Detection struct {
	Addr     memsys.Addr
	Cycle    uint64
	Writers  []int // cores holding a valid last-writer slot at flag time
	Readers  []int // cores recorded as readers at flag time
	Episodes int   // times this block crossed the thresholds
}

// DirSide implements coherence.DirPolicy for one LLC/directory slice: the SAM
// table plus the FC/IC/PMMC/HC counters and the detection and privatization
// policy of §IV–§VI.
type DirSide struct {
	cfg   Config
	slice int
	sam   *SAM
	meta  map[memsys.Addr]*dirMeta
	stats *stats.Set

	detections map[memsys.Addr]*Detection

	// contended records truly shared lines that cross the same frequency
	// thresholds — the §VII "utility beyond false sharing" extension that
	// identifies contended synchronization variables.
	contended map[memsys.Addr]*Detection

	// reductions holds the declared reduction regions (§VII).
	reductions []coherence.AddrRange
}

var _ coherence.DirPolicy = (*DirSide)(nil)

// NewDirSide builds the directory-side policy for one slice.
func NewDirSide(cfg Config, slice int, st *stats.Set) *DirSide {
	cfg.validate()
	d := &DirSide{
		cfg:        cfg,
		slice:      slice,
		sam:        NewSAM(cfg, slice, st),
		meta:       make(map[memsys.Addr]*dirMeta),
		stats:      st,
		detections: make(map[memsys.Addr]*Detection),
		contended:  make(map[memsys.Addr]*Detection),
	}
	d.sam.isPrv = func(a memsys.Addr) bool {
		m := d.meta[a]
		return m != nil && m.prv
	}
	return d
}

func (d *DirSide) metaFor(addr memsys.Addr) *dirMeta {
	blk := addr.BlockAlign(d.cfg.BlockSize)
	m := d.meta[blk]
	if m == nil {
		m = &dirMeta{}
		d.meta[blk] = m
	}
	return m
}

// OnFetchRequest updates FC and returns the REQ_MD and privatization
// directives for a demand request (§IV).
func (d *DirSide) OnFetchRequest(addr memsys.Addr, core int) (requestMD, privatize bool) {
	m := d.metaFor(addr)
	if m.prv {
		return false, false // FC/IC disabled in PRV (§V)
	}
	if m.fc < d.cfg.CounterMax {
		m.fc++
	}
	d.evaluate(addr, m)
	repair := d.cfg.Mode == coherence.FSLite || d.cfg.Mode == coherence.Hybrid
	return d.WantMetadata(addr), m.flagged && repair
}

// OnInvalidationsSent updates IC (§IV).
func (d *DirSide) OnInvalidationsSent(addr memsys.Addr, n int) {
	m := d.metaFor(addr)
	if m.prv {
		return
	}
	for i := 0; i < n && m.ic < d.cfg.CounterMax; i++ {
		m.ic++
	}
	d.evaluate(addr, m)
}

// evaluate applies the threshold, reset and hysteresis rules (§IV, §VI)
// after a counter update.
func (d *DirSide) evaluate(addr memsys.Addr, m *dirMeta) {
	// §VI: FC attaining TauR2 resets everything including the TS bit, so a
	// block whose short-lived true sharing ended (data initialization) can
	// later be privatized.
	if m.fc >= d.cfg.TauR2 {
		d.resetMetadata(addr, m, true)
		return
	}
	if m.flagged || m.fc < d.cfg.TauP || m.ic < d.cfg.TauP {
		return
	}
	ts := d.TrueSharing(addr)
	if !ts && m.hc == 0 {
		m.flagged = true
		d.recordDetection(addr)
		if d.cfg.Mode == coherence.FSDetect {
			// Detection-only mode: rearm so repeated episodes are counted.
			m.flagged = false
			m.fc, m.ic = 0, 0
		}
		return
	}
	// Crossed the thresholds but cannot privatize: decrement HC and reset
	// the metadata so the most recent access pattern is gathered (§VI).
	if m.hc > 0 && !ts {
		m.hc--
	} else if ts {
		d.stats.Inc(stats.CtrFSHysteresisBlock)
		// §VII utility beyond false sharing: a truly shared line crossing
		// the same frequency thresholds is a *contended* line — typically a
		// synchronization variable. Record it for the contention report.
		d.recordContended(addr)
	}
	d.resetMetadata(addr, m, true)
}

// resetMetadata clears FC/IC and (optionally) the SAM entry including TS.
func (d *DirSide) resetMetadata(addr memsys.Addr, m *dirMeta, clearSAM bool) {
	m.fc, m.ic = 0, 0
	if clearSAM {
		if e := d.sam.peek(addr); e != nil {
			e.clear(d.cfg)
		}
	}
	d.stats.Inc(stats.CtrFSMetadataResets)
}

// recordDetection snapshots the cores involved for the FSDetect report.
func (d *DirSide) recordDetection(addr memsys.Addr) {
	d.stats.Inc(stats.CtrFSDetected)
	blk := addr.BlockAlign(d.cfg.BlockSize)
	det := d.detections[blk]
	if det == nil {
		det = &Detection{Addr: blk, Cycle: d.cfg.now()}
		d.detections[blk] = det
	}
	det.Episodes++
	d.snapshotCores(blk, det)
	if t := d.cfg.Trace; t != nil {
		t.Emit(obs.Event{
			Cycle: d.cfg.now(), Kind: obs.KindDetect, Core: -1, Slice: int16(d.slice),
			Addr: blk, Arg: uint64(det.Episodes),
		})
	}
	if f := d.cfg.Forensics; f != nil {
		f.OnDecision(blk, forensics.DecDetect, -1, "", uint64(det.Episodes), d.cfg.now())
	}
}

// snapshotCores unions the SAM entry's current writers/readers into the
// detection record (accumulated across episodes: a single contended word has
// only one last-writer slot at any instant).
func (d *DirSide) snapshotCores(blk memsys.Addr, det *Detection) {
	e := d.sam.peek(blk)
	if e == nil {
		return
	}
	w := map[int]bool{}
	r := map[int]bool{}
	for _, c := range det.Writers {
		w[c] = true
	}
	for _, c := range det.Readers {
		r[c] = true
	}
	for g := 0; g < d.cfg.grains(); g++ {
		if e.lastWriter[g] != noCore {
			w[int(e.lastWriter[g])] = true
		}
		for _, c := range e.readerSet(d.cfg, g) {
			r[c] = true
		}
	}
	det.Writers = sortedKeys(w)
	det.Readers = sortedKeys(r)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Detections returns the detected falsely-shared blocks, sorted by address.
func (d *DirSide) Detections() []Detection {
	return sortDetections(d.detections)
}

// recordContended snapshots a contended truly-shared line (§VII).
func (d *DirSide) recordContended(addr memsys.Addr) {
	d.stats.Inc(stats.CtrFSContended)
	blk := addr.BlockAlign(d.cfg.BlockSize)
	det := d.contended[blk]
	if det == nil {
		det = &Detection{Addr: blk, Cycle: d.cfg.now()}
		d.contended[blk] = det
	}
	det.Episodes++
	d.snapshotCores(blk, det)
	if t := d.cfg.Trace; t != nil {
		t.Emit(obs.Event{
			Cycle: d.cfg.now(), Kind: obs.KindContended, Core: -1, Slice: int16(d.slice),
			Addr: blk, Arg: uint64(det.Episodes),
		})
	}
	if f := d.cfg.Forensics; f != nil {
		f.OnDecision(blk, forensics.DecContended, -1, "", uint64(det.Episodes), d.cfg.now())
	}
}

// ContendedLines returns the truly shared lines that crossed the contention
// thresholds (typically lock words and other synchronization variables),
// sorted by address — the §VII detection extension.
func (d *DirSide) ContendedLines() []Detection {
	return sortDetections(d.contended)
}

func sortDetections(m map[memsys.Addr]*Detection) []Detection {
	out := make([]Detection, 0, len(m))
	for _, det := range m {
		out = append(out, *det)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// OnMetadataRequested increments PMMC (§V).
func (d *DirSide) OnMetadataRequested(addr memsys.Addr, n int) {
	d.metaFor(addr).pmmc += n
}

// OnRepMD merges a PAM entry into the SAM entry, applying the true-sharing
// inference rules of §IV, and decrements PMMC.
func (d *DirSide) OnRepMD(addr memsys.Addr, core int, mdRead, mdWrite uint64) {
	m := d.metaFor(addr)
	if m.pmmc > 0 {
		m.pmmc--
	}
	e := d.sam.ensure(addr)
	for g := 0; g < d.cfg.grains(); g++ {
		red := d.grainInRegion(addr, g)
		bit := uint64(1) << uint(g)
		rd := mdRead&bit != 0
		wr := mdWrite&bit != 0
		if !rd && !wr {
			continue
		}
		if rd && !wr {
			// §IV condition (i): read-only grain with a valid foreign last
			// writer means read-write true sharing.
			if e.lastWriter[g] != noCore && e.lastWriter[g] != int16(core) {
				d.markTS(addr, e)
			}
		}
		if wr && !red {
			// §IV condition (ii): a written grain with a foreign last writer
			// or any foreign reader means true sharing.
			if (e.lastWriter[g] != noCore && e.lastWriter[g] != int16(core)) ||
				e.hasOtherReader(d.cfg, g, core) {
				d.markTS(addr, e)
			}
		}
		if rd {
			e.addReader(d.cfg, g, core)
		}
		switch {
		case wr && red:
			// Writes within a declared reduction region are commutative
			// accumulations: record the reduction writer, no true sharing.
			e.redWriters[g].Add(core)
		case wr:
			e.lastWriter[g] = int16(core)
		}
	}
}

// markTS sets the TS bit and bumps the hysteresis counter on a 0->1
// transition (§VI: "HC is incremented whenever a true sharing conflict is
// detected with TS = 0") — whether the conflict was inferred from REP_MD
// metadata or observed by the directory controller directly.
func (d *DirSide) markTS(addr memsys.Addr, e *samEntry) {
	if e.ts {
		return
	}
	e.ts = true
	d.stats.Inc(stats.CtrFSTrueSharing)
	m := d.metaFor(addr)
	if m.hc < d.cfg.HCMax {
		m.hc++
	}
}

// OnMDPhantom decrements PMMC without touching the SAM entry (§V-D).
func (d *DirSide) OnMDPhantom(addr memsys.Addr) {
	m := d.metaFor(addr)
	if m.pmmc > 0 {
		m.pmmc--
	}
}

// PendingMetadata returns PMMC.
func (d *DirSide) PendingMetadata(addr memsys.Addr) int {
	return d.metaFor(addr).pmmc
}

// TrueSharing reports the TS bit.
func (d *DirSide) TrueSharing(addr memsys.Addr) bool {
	e := d.sam.peek(addr)
	return e != nil && e.ts
}

// WantMetadata: interventions/invalidations carry REQ_MD while TS is unset.
func (d *DirSide) WantMetadata(addr memsys.Addr) bool {
	return !d.TrueSharing(addr)
}

// MarkTrueSharing records a controller-detected conflict: TS set and HC
// bumped (§VI).
func (d *DirSide) MarkTrueSharing(addr memsys.Addr) {
	d.markTS(addr, d.sam.ensure(addr))
}

// CheckBytes applies the §V-B conflict-freedom conditions for a PRV access.
func (d *DirSide) CheckBytes(addr memsys.Addr, core int, off, size int, write bool) coherence.ConflictKind {
	lo, hi := d.cfg.grainRange(off, size)
	if hi < lo {
		return coherence.NoConflict // prefetch: touches nothing
	}
	e := d.sam.peek(addr)
	if e == nil {
		return coherence.NoConflict // no recorded history
	}
	if d.isReduction(addr) {
		return d.checkMixed(addr, e, core, lo, hi, write)
	}
	for g := lo; g <= hi; g++ {
		lw := e.lastWriter[g]
		if write {
			// Conflict-free iff (i) no valid last writer and at most this
			// core as reader, or (ii) the last writer is this core.
			if lw == int16(core) {
				continue
			}
			if lw == noCore && !e.hasOtherReader(d.cfg, g, core) {
				continue
			}
			if lw != noCore && lw != int16(core) {
				return coherence.WriteWriteConflict
			}
			return coherence.ReadWriteConflict
		}
		// Read: conflict-free iff no valid last writer or the last writer is
		// this core.
		if lw != noCore && lw != int16(core) {
			return coherence.ReadWriteConflict
		}
	}
	return coherence.NoConflict
}

// checkMixed applies per-grain rules for a block overlapping a reduction
// region (§VII): within the region, concurrent reduction writers do not
// conflict, a read of a grain with foreign reduction writers forces a merge,
// and a reduction write over a foreign reader conflicts; outside the region
// the normal §V-B byte rules apply.
func (d *DirSide) checkMixed(addr memsys.Addr, e *samEntry, core, lo, hi int, write bool) coherence.ConflictKind {
	for g := lo; g <= hi; g++ {
		lw := e.lastWriter[g]
		if d.grainInRegion(addr, g) {
			foreignRed := e.redWriters[g].HasOther(core)
			if write {
				if lw != noCore && lw != int16(core) {
					return coherence.WriteWriteConflict // a non-reduction writer
				}
				if e.hasOtherReader(d.cfg, g, core) {
					return coherence.ReadWriteConflict
				}
				continue
			}
			if foreignRed || (lw != noCore && lw != int16(core)) {
				return coherence.ReadWriteConflict
			}
			continue
		}
		if write {
			if lw == int16(core) {
				continue
			}
			if lw == noCore && !e.hasOtherReader(d.cfg, g, core) {
				continue
			}
			if lw != noCore {
				return coherence.WriteWriteConflict
			}
			return coherence.ReadWriteConflict
		}
		if lw != noCore && lw != int16(core) {
			return coherence.ReadWriteConflict
		}
	}
	return coherence.NoConflict
}

// RecordBytes records the access in the SAM entry after a successful check.
func (d *DirSide) RecordBytes(addr memsys.Addr, core int, off, size int, write bool) {
	lo, hi := d.cfg.grainRange(off, size)
	if hi < lo {
		return
	}
	e := d.sam.ensure(addr)
	for g := lo; g <= hi; g++ {
		switch {
		case write && d.grainInRegion(addr, g):
			e.redWriters[g].Add(core)
		case write:
			e.lastWriter[g] = int16(core)
		default:
			e.addReader(d.cfg, g, core)
		}
	}
}

// OnPrivatize commits privatization: reset the SAM entry, zero and disable
// the counters (§V-A).
func (d *DirSide) OnPrivatize(addr memsys.Addr) {
	m := d.metaFor(addr)
	m.flagged = false
	m.prv = true
	m.fc, m.ic = 0, 0
	e := d.sam.ensure(addr)
	e.clear(d.cfg)
	// A privatized block's SAM entry holds the merge history; protect it
	// from replacement for the duration of the episode.
	d.sam.pin(addr.BlockAlign(d.cfg.BlockSize))
}

// OnTerminate ends a privatized episode: the SAM entry is invalidated and
// the counters cleared so detection restarts cleanly (§V-C).
func (d *DirSide) OnTerminate(addr memsys.Addr) {
	m := d.metaFor(addr)
	m.prv = false
	m.fc, m.ic = 0, 0
	d.sam.invalidate(addr.BlockAlign(d.cfg.BlockSize))
}

// MergeMask expands the per-grain last-writer information into a packed
// per-byte take-from-this-core mask: bit b covers byte b (§V-C, §V-D).
func (d *DirSide) MergeMask(addr memsys.Addr, core int) uint64 {
	e := d.sam.peek(addr)
	if e == nil {
		return 0
	}
	var mask uint64
	grainBytes := uint64(1)<<uint(d.cfg.Granularity) - 1
	for g := 0; g < d.cfg.grains(); g++ {
		if e.lastWriter[g] == int16(core) {
			mask |= grainBytes << uint(g*d.cfg.Granularity)
		}
	}
	return mask
}

// OnPrvEviction clears the evicting core's last-writer slots (§V-D).
func (d *DirSide) OnPrvEviction(addr memsys.Addr, core int) {
	e := d.sam.peek(addr)
	if e == nil {
		return
	}
	for g := range e.lastWriter {
		if e.lastWriter[g] == int16(core) {
			e.lastWriter[g] = noCore
		}
		e.redWriters[g].Remove(core)
	}
}

// OnDirEviction drops all metadata when the directory entry / LLC block is
// evicted.
func (d *DirSide) OnDirEviction(addr memsys.Addr) {
	blk := addr.BlockAlign(d.cfg.BlockSize)
	delete(d.meta, blk)
	d.sam.invalidate(blk)
}

// TakeForcedTerminations drains the privatized blocks whose SAM entry was
// displaced (§V-C: losing the access history would be incorrect).
func (d *DirSide) TakeForcedTerminations() []memsys.Addr {
	return d.sam.takeEvictedPrv()
}

// PendingForcedTerminations reports how many forced terminations are queued
// for the next TakeForcedTerminations call (the coherence.ForcedTerminationPeeker
// extension: the quiescence-skipping engine must not skip past them).
func (d *DirSide) PendingForcedTerminations() int {
	return d.sam.pendingEvictedPrv()
}

// RegisterReduction declares a reduction region (§VII): writes within it are
// commutative accumulations, so write-write overlap is not true sharing and
// privatized copies merge by summing per-core deltas.
func (d *DirSide) RegisterReduction(r coherence.AddrRange) {
	d.reductions = append(d.reductions, r)
}

// isReduction reports whether the block overlaps a declared region.
func (d *DirSide) isReduction(addr memsys.Addr) bool {
	for _, r := range d.reductions {
		if r.Contains(addr, d.cfg.BlockSize) {
			return true
		}
	}
	return false
}

// grainInRegion reports whether grain g of the block lies wholly inside a
// declared reduction region (reduction semantics apply per grain; the rest
// of the block keeps the normal byte-level rules).
func (d *DirSide) grainInRegion(addr memsys.Addr, g int) bool {
	blk := addr.BlockAlign(d.cfg.BlockSize)
	lo := blk + memsys.Addr(g*d.cfg.Granularity)
	hi := lo + memsys.Addr(d.cfg.Granularity)
	for _, r := range d.reductions {
		if lo >= r.Start && hi <= r.Start+memsys.Addr(r.Size) {
			return true
		}
	}
	return false
}

// ReduceMask expands the per-grain reduction-writer bit of core into a packed
// per-byte mask (the delta-merge positions, §VII), bit b covering byte b.
func (d *DirSide) ReduceMask(addr memsys.Addr, core int) uint64 {
	e := d.sam.peek(addr)
	if e == nil {
		return 0
	}
	var mask uint64
	grainBytes := uint64(1)<<uint(d.cfg.Granularity) - 1
	for g := 0; g < d.cfg.grains(); g++ {
		if e.redWriters[g].Has(core) {
			mask |= grainBytes << uint(g*d.cfg.Granularity)
		}
	}
	return mask
}

// HasSAMEntry reports whether a (valid, possibly pinned) SAM entry exists for
// the block containing addr (window-boundary agreement checks).
func (d *DirSide) HasSAMEntry(addr memsys.Addr) bool {
	return d.sam.peek(addr) != nil
}

// SAMValid returns the number of valid SAM entries (testing aid).
func (d *DirSide) SAMValid() int { return d.sam.Valid() }
