package core

import (
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

const noCore = -1

// samEntry mirrors fig. 5b: per tracking grain, the valid last writer and the
// set of readers, plus a block-level TS (true sharing) bit. With ReaderOpt
// (§VI) the reader set degrades to a last-reader ID plus an overflow bit.
type samEntry struct {
	ts         bool
	lastWriter []int16 // noCore when invalid

	// Full reader tracking (bit per core).
	readers []memsys.CoreSet

	// ReaderOpt tracking.
	lastReader []int16
	overflow   []bool

	// redWriters tracks reduction writers per grain (bit per core) for
	// declared reduction regions (§VII): multiple reduction writers of the
	// same grain are not a conflict, and their copies merge by summing.
	redWriters []memsys.CoreSet
}

func newSamEntry(cfg Config) *samEntry {
	g := cfg.grains()
	e := &samEntry{lastWriter: make([]int16, g), redWriters: make([]memsys.CoreSet, g)}
	for i := range e.lastWriter {
		e.lastWriter[i] = noCore
	}
	if cfg.ReaderOpt {
		e.lastReader = make([]int16, g)
		for i := range e.lastReader {
			e.lastReader[i] = noCore
		}
		e.overflow = make([]bool, g)
	} else {
		e.readers = make([]memsys.CoreSet, g)
	}
	return e
}

// addReader records core as a reader of grain g.
func (e *samEntry) addReader(cfg Config, g, core int) {
	if cfg.ReaderOpt {
		if e.lastReader[g] != noCore && e.lastReader[g] != int16(core) {
			e.overflow[g] = true
		}
		e.lastReader[g] = int16(core)
		return
	}
	e.readers[g].Add(core)
}

// hasOtherReader reports whether any core other than core has read grain g.
func (e *samEntry) hasOtherReader(cfg Config, g, core int) bool {
	if cfg.ReaderOpt {
		if e.overflow[g] {
			return true
		}
		return e.lastReader[g] != noCore && e.lastReader[g] != int16(core)
	}
	return e.readers[g].HasOther(core)
}

// hasAnyReader reports whether any core has read grain g.
func (e *samEntry) hasAnyReader(cfg Config, g int) bool {
	if cfg.ReaderOpt {
		return e.lastReader[g] != noCore || e.overflow[g]
	}
	return !e.readers[g].Empty()
}

// readerSet returns the known reader cores of grain g (precise only without
// ReaderOpt; with ReaderOpt it returns the last reader, which is why the
// optimization trades away precise reporting, §VI).
func (e *samEntry) readerSet(cfg Config, g int) []int {
	var out []int
	if cfg.ReaderOpt {
		if e.lastReader[g] != noCore {
			out = append(out, int(e.lastReader[g]))
		}
		return out
	}
	e.readers[g].ForEach(func(c int) {
		out = append(out, c)
	})
	return out
}

// clear resets all access information including the TS bit.
func (e *samEntry) clear(cfg Config) {
	e.ts = false
	for i := range e.lastWriter {
		e.lastWriter[i] = noCore
	}
	for i := range e.redWriters {
		e.redWriters[i] = memsys.CoreSet{}
	}
	if cfg.ReaderOpt {
		for i := range e.lastReader {
			e.lastReader[i] = noCore
			e.overflow[i] = false
		}
	} else {
		for i := range e.readers {
			e.readers[i] = memsys.CoreSet{}
		}
	}
}

// SAM is one LLC slice's shared access metadata table (§IV), organized as a
// small set-associative cache with LRU replacement (128 entries per slice by
// default).
type SAM struct {
	cfg   Config
	table *memsys.SetAssoc[*samEntry]
	stats *stats.Set

	// evictedPrv collects blocks whose SAM entry was displaced while
	// privatized; the directory must terminate those episodes (§V-C).
	evictedPrv []memsys.Addr

	// victims retains the displaced entries of privatized blocks until
	// their forced termination completes: the byte-merge needs the
	// last-writer history, so it cannot be dropped with the table entry.
	victims map[memsys.Addr]*samEntry

	// isPrv reports whether a block is currently privatized (owned by the
	// DirSide policy).
	isPrv func(memsys.Addr) bool
}

// NewSAM builds a SAM table.
func NewSAM(cfg Config, slice int, st *stats.Set) *SAM {
	cfg.validate()
	return &SAM{
		cfg:     cfg,
		table:   memsys.NewSetAssoc[*samEntry]("sam", cfg.SAMEntries, cfg.SAMWays, cfg.BlockSize),
		stats:   st,
		victims: make(map[memsys.Addr]*samEntry),
	}
}

// lookup returns the entry for addr, or nil.
func (s *SAM) lookup(addr memsys.Addr) *samEntry {
	e := s.table.Lookup(addr)
	s.stats.IncID(stats.IDSAMLookups)
	if e == nil {
		return nil
	}
	return e.Payload
}

// peek is lookup without LRU refresh or stats. Displaced-but-terminating
// entries in the victim buffer are still visible.
func (s *SAM) peek(addr memsys.Addr) *samEntry {
	e := s.table.Peek(addr)
	if e != nil {
		return e.Payload
	}
	return s.victims[addr.BlockAlign(s.cfg.BlockSize)]
}

// pin marks addr's entry as ineligible for replacement (privatized blocks).
func (s *SAM) pin(addr memsys.Addr) { s.table.Pin(addr) }

// unpin releases the replacement pin.
func (s *SAM) unpin(addr memsys.Addr) { s.table.Unpin(addr) }

// ensure returns the entry for addr, allocating (and possibly evicting an
// LRU victim) if absent. Privatized entries are pinned and therefore only
// displaced when every way of the set is privatized; a displaced privatized
// entry moves to the victim buffer (its merge history is still needed) and
// its block is queued for forced termination (§V-C).
func (s *SAM) ensure(addr memsys.Addr) *samEntry {
	if e := s.lookup(addr); e != nil {
		return e
	}
	// A displaced privatized entry awaiting forced termination still owns the
	// episode's merge history: record into it rather than allocating a fresh
	// table entry that would shadow it (and lose the last-writer bytes when
	// the termination finally merges).
	if v := s.victims[addr.BlockAlign(s.cfg.BlockSize)]; v != nil {
		return v
	}
	if s.table.Victim(addr) == nil {
		// Every way of the set is pinned (all privatized): forcibly
		// displace one of them into the victim buffer.
		tag, found := s.anyInSet(addr)
		if !found {
			panic("core: SAM set has no victim and no valid entries")
		}
		s.displacePrv(tag, s.table.Peek(tag).Payload)
		s.table.Unpin(tag)
		s.table.Invalidate(tag)
	}
	ent, evicted := s.table.Insert(addr)
	if evicted != nil {
		s.stats.IncID(stats.IDSAMReplacements)
		if s.isPrv != nil && s.isPrv(evicted.Tag) {
			// Defensive: privatized entries are pinned and should not be
			// chosen by Insert, but never lose merge history if one is.
			s.displacePrv(evicted.Tag, evicted.Payload)
		}
	}
	ent.Payload = newSamEntry(s.cfg)
	return ent.Payload
}

// anyInSet returns a valid tag mapping to addr's set.
func (s *SAM) anyInSet(addr memsys.Addr) (memsys.Addr, bool) {
	var tag memsys.Addr
	found := false
	s.table.ForEach(func(e *memsys.Entry[*samEntry]) {
		if !found && s.table.SetIndex(e.Tag) == s.table.SetIndex(addr) {
			tag = e.Tag
			found = true
		}
	})
	return tag, found
}

// displacePrv stashes a privatized block's entry for the pending forced
// termination's byte merge.
func (s *SAM) displacePrv(tag memsys.Addr, payload *samEntry) {
	s.stats.IncID(stats.IDSAMReplacements)
	s.victims[tag] = payload
	s.evictedPrv = append(s.evictedPrv, tag)
}

// invalidate drops the entry for addr, including any victim-buffer copy.
func (s *SAM) invalidate(addr memsys.Addr) {
	blk := addr.BlockAlign(s.cfg.BlockSize)
	s.table.Unpin(blk)
	s.table.Invalidate(blk)
	delete(s.victims, blk)
}

// pendingEvictedPrv reports the number of displaced privatized blocks
// awaiting forced termination, without draining them.
func (s *SAM) pendingEvictedPrv() int { return len(s.evictedPrv) }

// takeEvictedPrv drains the privatized blocks displaced from the table.
func (s *SAM) takeEvictedPrv() []memsys.Addr {
	out := s.evictedPrv
	s.evictedPrv = nil
	return out
}

// Valid returns the number of valid SAM entries (testing aid).
func (s *SAM) Valid() int { return s.table.CountValid() }
