package core

import (
	"fmt"
	"sort"

	"fscoherence/internal/memsys"
)

// Checkpoint images for the FSDetect/FSLite metadata: the per-core PAM
// tables and the per-slice DirSide policy (FC/IC/PMMC/HC counters, the SAM
// table with its victim buffer and pending forced terminations, and the
// accumulated detection reports). All maps are flattened to address-sorted
// slices so identical states serialize to identical bytes. Declared
// reduction regions are not serialized: they are re-registered from the
// workload when the machine is reconstructed.

// PAMEntryImage is one live PAM entry.
type PAMEntryImage struct {
	Addr   memsys.Addr
	Read   uint64
	Write  uint64
	SendMD bool
}

// Snapshot captures the PAM table, sorted by block address.
func (p *PAM) Snapshot() []PAMEntryImage {
	out := make([]PAMEntryImage, 0, len(p.entries))
	for a, e := range p.entries {
		out = append(out, PAMEntryImage{Addr: a, Read: e.read, Write: e.write, SendMD: e.sendMD})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Restore replaces the PAM table's contents. The MRU shortcut starts empty
// (it repopulates lazily with identical behavior).
func (p *PAM) Restore(img []PAMEntryImage) {
	p.entries = make(map[memsys.Addr]*pamEntry, len(img))
	p.mruBlks = [8]memsys.Addr{}
	p.mruEnts = [8]*pamEntry{}
	for _, e := range img {
		p.entries[e.Addr] = &pamEntry{read: e.Read, write: e.Write, sendMD: e.SendMD}
	}
}

// SamEntryImage is the serializable form of one SAM entry (table or victim
// buffer). Slice shapes follow the ReaderOpt configuration exactly as the
// live entry's do.
type SamEntryImage struct {
	TS         bool
	LastWriter []int16
	Readers    []memsys.CoreSet
	LastReader []int16
	Overflow   []bool
	RedWriters []memsys.CoreSet
}

func samEntryImage(e *samEntry) SamEntryImage {
	return SamEntryImage{
		TS:         e.ts,
		LastWriter: append([]int16(nil), e.lastWriter...),
		Readers:    append([]memsys.CoreSet(nil), e.readers...),
		LastReader: append([]int16(nil), e.lastReader...),
		Overflow:   append([]bool(nil), e.overflow...),
		RedWriters: append([]memsys.CoreSet(nil), e.redWriters...),
	}
}

func samEntryFromImage(img SamEntryImage) *samEntry {
	return &samEntry{
		ts:         img.TS,
		lastWriter: append([]int16(nil), img.LastWriter...),
		readers:    append([]memsys.CoreSet(nil), img.Readers...),
		lastReader: append([]int16(nil), img.LastReader...),
		overflow:   append([]bool(nil), img.Overflow...),
		redWriters: append([]memsys.CoreSet(nil), img.RedWriters...),
	}
}

// SamVictimImage is one displaced-but-terminating victim-buffer entry.
type SamVictimImage struct {
	Addr  memsys.Addr
	Entry SamEntryImage
}

// SAMImage is the serializable state of one slice's SAM.
type SAMImage struct {
	Table      memsys.AssocImage[SamEntryImage]
	Victims    []SamVictimImage
	EvictedPrv []memsys.Addr
}

// MetaImage is one block's FC/IC/PMMC/HC record.
type MetaImage struct {
	Addr    memsys.Addr
	FC      uint32
	IC      uint32
	PMMC    int
	HC      uint8
	Flagged bool
	Prv     bool
}

// PolicyImage is the serializable state of one DirSide slice.
type PolicyImage struct {
	Meta       []MetaImage
	Detections []Detection
	Contended  []Detection
	SAM        SAMImage
}

func detectionList(m map[memsys.Addr]*Detection) []Detection {
	out := make([]Detection, 0, len(m))
	for _, d := range m {
		cp := *d
		cp.Writers = append([]int(nil), d.Writers...)
		cp.Readers = append([]int(nil), d.Readers...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func detectionMap(l []Detection) map[memsys.Addr]*Detection {
	m := make(map[memsys.Addr]*Detection, len(l))
	for _, d := range l {
		cp := d
		cp.Writers = append([]int(nil), d.Writers...)
		cp.Readers = append([]int(nil), d.Readers...)
		m[d.Addr] = &cp
	}
	return m
}

// Snapshot captures the slice's complete policy state.
func (d *DirSide) Snapshot() PolicyImage {
	img := PolicyImage{
		Detections: detectionList(d.detections),
		Contended:  detectionList(d.contended),
	}
	for a, m := range d.meta {
		img.Meta = append(img.Meta, MetaImage{Addr: a, FC: m.fc, IC: m.ic, PMMC: m.pmmc, HC: m.hc, Flagged: m.flagged, Prv: m.prv})
	}
	sort.Slice(img.Meta, func(i, j int) bool { return img.Meta[i].Addr < img.Meta[j].Addr })

	s := d.sam
	img.SAM.Table = memsys.SaveAssoc(s.table, func(v **samEntry) SamEntryImage {
		return samEntryImage(*v)
	})
	for a, e := range s.victims {
		img.SAM.Victims = append(img.SAM.Victims, SamVictimImage{Addr: a, Entry: samEntryImage(e)})
	}
	sort.Slice(img.SAM.Victims, func(i, j int) bool { return img.SAM.Victims[i].Addr < img.SAM.Victims[j].Addr })
	img.SAM.EvictedPrv = append([]memsys.Addr(nil), s.evictedPrv...)
	return img
}

// Restore replaces the slice's policy state. The isPrv closure wired at
// construction keeps pointing at the (replaced) meta map through the
// receiver, so it needs no re-wiring.
func (d *DirSide) Restore(img PolicyImage) error {
	d.meta = make(map[memsys.Addr]*dirMeta, len(img.Meta))
	for _, m := range img.Meta {
		d.meta[m.Addr] = &dirMeta{fc: m.FC, ic: m.IC, pmmc: m.PMMC, hc: m.HC, flagged: m.Flagged, prv: m.Prv}
	}
	d.detections = detectionMap(img.Detections)
	d.contended = detectionMap(img.Contended)

	s := d.sam
	if err := memsys.LoadAssoc(s.table, img.SAM.Table, samEntryFromImage); err != nil {
		return fmt.Errorf("core: SAM restore (slice %d): %w", d.slice, err)
	}
	s.victims = make(map[memsys.Addr]*samEntry, len(img.SAM.Victims))
	for _, v := range img.SAM.Victims {
		s.victims[v.Addr] = samEntryFromImage(v.Entry)
	}
	s.evictedPrv = append([]memsys.Addr(nil), img.SAM.EvictedPrv...)
	return nil
}
