package core

import (
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

func newDS(mode coherence.Protocol, mutate func(*Config)) *DirSide {
	cfg := DefaultConfig(8, 64, mode)
	if mutate != nil {
		mutate(&cfg)
	}
	return NewDirSide(cfg, 0, stats.NewSet())
}

const blkA = memsys.Addr(0x4000)
const blkB = memsys.Addr(0x8040)

// mdBits builds a grain bit-vector covering [off,off+n).
func mdBits(off, n int) uint64 {
	var m uint64
	for i := 0; i < n; i++ {
		m |= 1 << uint(off+i)
	}
	return m
}

func TestRepMDRecordsWritersAndReaders(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	// Core 1 wrote bytes 0-7; core 2 read bytes 8-15: disjoint, no TS.
	d.OnRepMD(blkA, 1, 0, mdBits(0, 8))
	d.OnRepMD(blkA, 2, mdBits(8, 8), 0)
	if d.TrueSharing(blkA) {
		t.Fatal("disjoint accesses flagged as true sharing")
	}
	mask := d.MergeMask(blkA, 1)
	for i := 0; i < 8; i++ {
		if !maskBit(mask, i) {
			t.Fatalf("byte %d should belong to core 1", i)
		}
	}
	for i := 8; i < 64; i++ {
		if maskBit(mask, i) {
			t.Fatalf("byte %d should not belong to core 1", i)
		}
	}
}

// maskBit reads byte i's bit of a packed per-byte mask.
func maskBit(m uint64, i int) bool { return m&(1<<uint(i)) != 0 }

func TestRepMDTrueSharingRules(t *testing.T) {
	// §IV condition (i): read-only byte with a valid foreign last writer.
	d := newDS(coherence.FSLite, nil)
	d.OnRepMD(blkA, 1, 0, mdBits(0, 4)) // core 1 wrote bytes 0-3
	d.OnRepMD(blkA, 2, mdBits(2, 1), 0) // core 2 read byte 2
	if !d.TrueSharing(blkA) {
		t.Fatal("condition (i) not detected")
	}

	// §IV condition (ii)(a): write over a foreign last writer.
	d = newDS(coherence.FSLite, nil)
	d.OnRepMD(blkA, 1, 0, mdBits(0, 4))
	d.OnRepMD(blkA, 2, 0, mdBits(3, 1))
	if !d.TrueSharing(blkA) {
		t.Fatal("condition (ii)(a) not detected")
	}

	// §IV condition (ii)(b): write over a foreign reader.
	d = newDS(coherence.FSLite, nil)
	d.OnRepMD(blkA, 1, mdBits(5, 1), 0)
	d.OnRepMD(blkA, 2, 0, mdBits(5, 1))
	if !d.TrueSharing(blkA) {
		t.Fatal("condition (ii)(b) not detected")
	}

	// Same-core read-then-write is never true sharing.
	d = newDS(coherence.FSLite, nil)
	d.OnRepMD(blkA, 1, mdBits(0, 8), 0)
	d.OnRepMD(blkA, 1, 0, mdBits(0, 8))
	if d.TrueSharing(blkA) {
		t.Fatal("same-core accesses flagged")
	}
}

func TestDetectionThresholds(t *testing.T) {
	d := newDS(coherence.FSLite, nil) // tauP = 16
	// Build disjoint metadata so TS stays clear.
	d.OnRepMD(blkA, 0, 0, mdBits(0, 8))
	d.OnRepMD(blkA, 1, 0, mdBits(8, 8))
	// Drive FC and IC up to (but not past) the threshold.
	for i := 0; i < 15; i++ {
		if _, priv := d.OnFetchRequest(blkA, i%4); priv {
			t.Fatalf("privatize before threshold at i=%d", i)
		}
		d.OnInvalidationsSent(blkA, 1)
	}
	// 16th crossing: flagged; the next request triggers privatization.
	d.OnFetchRequest(blkA, 0)
	d.OnInvalidationsSent(blkA, 1)
	if _, priv := d.OnFetchRequest(blkA, 1); !priv {
		t.Fatal("privatize not signalled after both counters crossed tauP")
	}
	if len(d.Detections()) != 1 {
		t.Fatalf("detections = %+v", d.Detections())
	}
	det := d.Detections()[0]
	if det.Addr != blkA || len(det.Writers) != 2 {
		t.Fatalf("detection contents: %+v", det)
	}
}

func TestNoDetectionUnderTrueSharing(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	// Persistent true sharing: the protocol keeps observing conflicting
	// metadata (each REQ_MD round after a §VI reset re-detects it), so the
	// refreshed TS bit and the hysteresis counter block privatization
	// forever.
	for i := 0; i < 200; i++ {
		if i%4 == 0 {
			d.OnRepMD(blkA, 0, 0, mdBits(0, 8))
			d.OnRepMD(blkA, 1, 0, mdBits(0, 8)) // write-write conflict
		}
		if _, priv := d.OnFetchRequest(blkA, i%4); priv {
			t.Fatalf("privatized a truly shared block at i=%d", i)
		}
		d.OnInvalidationsSent(blkA, 1)
	}
	if n := len(d.Detections()); n != 0 {
		t.Fatalf("detections = %d", n)
	}
}

func TestMetadataResetEnablesPhasedDetection(t *testing.T) {
	// §VI data initialization: a short-lived TS episode must not block
	// detection forever — crossing the thresholds with TS set resets the
	// metadata (including TS), and the next clean episode is detected.
	d := newDS(coherence.FSLite, nil)
	d.OnRepMD(blkA, 0, 0, mdBits(0, 64)) // initializer wrote everything
	d.OnRepMD(blkA, 1, 0, mdBits(8, 8))  // worker write: TS
	if !d.TrueSharing(blkA) {
		t.Fatal("setup: TS should be set")
	}
	// Cross the thresholds: resets SAM (incl. TS) and counters.
	for i := 0; i < 16; i++ {
		d.OnFetchRequest(blkA, i%4)
		d.OnInvalidationsSent(blkA, 1)
	}
	if d.TrueSharing(blkA) {
		t.Fatal("TS should have been reset at the tauR1 crossing")
	}
	// Hysteresis: the TS-crossing bumped HC to 1, so the *next* crossing
	// decrements it without privatizing; the one after that privatizes.
	crossed := false
	for round := 0; round < 3 && !crossed; round++ {
		d.OnRepMD(blkA, 0, 0, mdBits(0, 8))
		d.OnRepMD(blkA, 1, 0, mdBits(8, 8))
		for i := 0; i < 16; i++ {
			d.OnFetchRequest(blkA, i%4)
			d.OnInvalidationsSent(blkA, 1)
		}
		_, crossed = d.OnFetchRequest(blkA, 0)
	}
	if !crossed {
		t.Fatal("phased block never became privatizable")
	}
}

func TestHysteresisCounterBlocksThrashing(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	// Two controller-detected conflicts raise HC to 2.
	d.MarkTrueSharing(blkA)
	d.OnTerminate(blkA) // clears SAM/TS but HC persists
	d.MarkTrueSharing(blkA)
	d.OnTerminate(blkA)
	// Each threshold crossing with TS=0 decrements HC by one; only after
	// HC drains to zero may privatization trigger.
	crossings := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 16; i++ {
			d.OnFetchRequest(blkA, i%4)
			d.OnInvalidationsSent(blkA, 1)
		}
		if _, priv := d.OnFetchRequest(blkA, 0); priv {
			crossings = round + 1
			break
		}
	}
	if crossings == 0 {
		t.Fatal("never privatized")
	}
	if crossings < 3 {
		t.Fatalf("privatized after %d crossings; hysteresis should delay to the 3rd", crossings)
	}
}

func TestCheckBytesConditions(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	d.OnPrivatize(blkA)
	// Unknown bytes: no conflict either way.
	if d.CheckBytes(blkA, 1, 0, 8, true) != coherence.NoConflict {
		t.Fatal("fresh bytes should not conflict")
	}
	d.RecordBytes(blkA, 1, 0, 8, true) // core 1 writes bytes 0-7
	// Same core: read and write both fine.
	if d.CheckBytes(blkA, 1, 0, 8, false) != coherence.NoConflict ||
		d.CheckBytes(blkA, 1, 0, 8, true) != coherence.NoConflict {
		t.Fatal("own bytes should not conflict")
	}
	// Foreign read of written bytes: conflict.
	if d.CheckBytes(blkA, 2, 4, 4, false) == coherence.NoConflict {
		t.Fatal("foreign read of written byte should conflict")
	}
	// Foreign write of written bytes: conflict.
	if d.CheckBytes(blkA, 2, 0, 1, true) == coherence.NoConflict {
		t.Fatal("foreign write of written byte should conflict")
	}
	// Reader then foreign writer.
	d.RecordBytes(blkA, 3, 32, 8, false)
	if d.CheckBytes(blkA, 2, 32, 1, true) == coherence.NoConflict {
		t.Fatal("write over a foreign reader should conflict")
	}
	// The reader itself may upgrade to writing its own read bytes.
	if d.CheckBytes(blkA, 3, 32, 8, true) != coherence.NoConflict {
		t.Fatal("single reader may write its own bytes")
	}
	// Zero-length (prefetch) never conflicts.
	if d.CheckBytes(blkA, 2, 0, 0, true) != coherence.NoConflict {
		t.Fatal("prefetch must not conflict")
	}
}

func TestMergeMaskAndPrvEviction(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	d.OnPrivatize(blkA)
	d.RecordBytes(blkA, 1, 0, 8, true)
	d.RecordBytes(blkA, 2, 8, 8, true)
	m1 := d.MergeMask(blkA, 1)
	m2 := d.MergeMask(blkA, 2)
	if !maskBit(m1, 0) || maskBit(m1, 8) || !maskBit(m2, 8) || maskBit(m2, 0) {
		t.Fatal("merge masks wrong")
	}
	// §V-D: eviction clears the evictor's last-writer slots.
	d.OnPrvEviction(blkA, 1)
	if d.MergeMask(blkA, 1) != 0 {
		t.Fatal("mask not cleared after eviction")
	}
	// Core 2's slots survive.
	if !maskBit(d.MergeMask(blkA, 2), 8) {
		t.Fatal("other core's slots disturbed")
	}
}

func TestPMMCAccounting(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	d.OnMetadataRequested(blkA, 3)
	if d.PendingMetadata(blkA) != 3 {
		t.Fatal("PMMC not incremented")
	}
	d.OnRepMD(blkA, 1, 1, 0)
	d.OnMDPhantom(blkA)
	if d.PendingMetadata(blkA) != 1 {
		t.Fatalf("PMMC = %d, want 1", d.PendingMetadata(blkA))
	}
	// Clamp at zero (a response for a block whose metadata was dropped).
	d.OnMDPhantom(blkA)
	d.OnMDPhantom(blkA)
	if d.PendingMetadata(blkA) != 0 {
		t.Fatal("PMMC went negative")
	}
}

func TestSAMEvictionForcesTermination(t *testing.T) {
	st := stats.NewSet()
	cfg := DefaultConfig(8, 64, coherence.FSLite)
	cfg.SAMEntries = 4
	cfg.SAMWays = 2
	d := NewDirSide(cfg, 0, st)
	d.OnPrivatize(blkA)
	d.RecordBytes(blkA, 1, 0, 8, true)
	// Flood the SAM with other blocks mapping over it until blkA's entry is
	// displaced. Privatized entries are pinned, so this requires filling
	// every way of its set with privatized entries.
	var targets []memsys.Addr
	for i := 1; targets == nil || len(targets) < 3; i++ {
		a := blkA + memsys.Addr(i*64*2) // same set (2 sets with 4/2 geometry)
		targets = append(targets, a)
	}
	for _, a := range targets {
		d.OnPrivatize(a)
	}
	forced := d.TakeForcedTerminations()
	if len(forced) == 0 {
		t.Fatal("no forced termination after SAM displacement")
	}
	// The displaced entry's merge history must survive until termination.
	if !maskBit(d.MergeMask(forced[0], 1), 0) && forced[0] == blkA {
		t.Fatal("victim-buffer merge history lost")
	}
	d.OnTerminate(forced[0])
}

func TestReaderOptEquivalence(t *testing.T) {
	// The §VI reader optimization must detect the same conflicts as the
	// full reader bit-vector for the detection-relevant cases.
	scenarios := []struct {
		name string
		run  func(d *DirSide)
		want bool
	}{
		{"w-after-foreign-r", func(d *DirSide) {
			d.OnRepMD(blkA, 1, mdBits(0, 1), 0)
			d.OnRepMD(blkA, 2, 0, mdBits(0, 1))
		}, true},
		{"w-after-own-r", func(d *DirSide) {
			d.OnRepMD(blkA, 1, mdBits(0, 1), 0)
			d.OnRepMD(blkA, 1, 0, mdBits(0, 1))
		}, false},
		{"w-after-two-readers-incl-self", func(d *DirSide) {
			d.OnRepMD(blkA, 1, mdBits(0, 1), 0)
			d.OnRepMD(blkA, 2, mdBits(0, 1), 0)
			d.OnRepMD(blkA, 2, 0, mdBits(0, 1)) // overflow: core1 also read
		}, true},
	}
	for _, sc := range scenarios {
		for _, opt := range []bool{false, true} {
			d := newDS(coherence.FSLite, func(c *Config) { c.ReaderOpt = opt })
			sc.run(d)
			if got := d.TrueSharing(blkA); got != sc.want {
				t.Errorf("%s (readerOpt=%v): TS=%v want %v", sc.name, opt, got, sc.want)
			}
		}
	}
}

func TestCounterSaturationResetsMetadata(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	d.OnRepMD(blkA, 0, 0, mdBits(0, 8))
	d.OnRepMD(blkA, 1, 0, mdBits(0, 8)) // TS set
	// FC reaching tauR2 (127) resets everything including TS, even though
	// IC never crosses.
	for i := 0; i < 127; i++ {
		d.OnFetchRequest(blkA, i%4)
	}
	if d.TrueSharing(blkA) {
		t.Fatal("TS survived the tauR2 reset")
	}
}

func TestFSDetectModeNeverPrivatizes(t *testing.T) {
	d := newDS(coherence.FSDetect, nil)
	d.OnRepMD(blkA, 0, 0, mdBits(0, 8))
	d.OnRepMD(blkA, 1, 0, mdBits(8, 8))
	for i := 0; i < 100; i++ {
		if _, priv := d.OnFetchRequest(blkA, i%4); priv {
			t.Fatal("FSDetect mode must not privatize")
		}
		d.OnInvalidationsSent(blkA, 1)
	}
	// But it records repeated detection episodes.
	if len(d.Detections()) != 1 || d.Detections()[0].Episodes < 2 {
		t.Fatalf("detections: %+v", d.Detections())
	}
}

func TestWantMetadataFollowsTS(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	if !d.WantMetadata(blkA) {
		t.Fatal("fresh block should want metadata")
	}
	d.MarkTrueSharing(blkA)
	if d.WantMetadata(blkA) {
		t.Fatal("truly shared block should not request metadata")
	}
}

func TestOnDirEvictionDropsEverything(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	d.OnRepMD(blkA, 1, 0, mdBits(0, 8))
	d.OnMetadataRequested(blkA, 2)
	d.OnDirEviction(blkA)
	if d.TrueSharing(blkA) || d.PendingMetadata(blkA) != 0 {
		t.Fatal("metadata survived directory eviction")
	}
	if maskBit(d.MergeMask(blkA, 1), 0) {
		t.Fatal("SAM entry survived directory eviction")
	}
}

func TestPrivatizeResetsSAMEntry(t *testing.T) {
	d := newDS(coherence.FSLite, nil)
	d.OnRepMD(blkA, 1, 0, mdBits(0, 8))
	d.OnPrivatize(blkA)
	// The pre-episode last writers must be gone (§V-A resets the entry).
	if maskBit(d.MergeMask(blkA, 1), 0) {
		t.Fatal("SAM entry not reset at privatization")
	}
}
