package core

import (
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

// Micro-benchmarks for the batched byte-mask hot paths (the data-layout round
// riding along with the sampling engine): the closed-form PAM grain mask, the
// PAM permission check and invalidation take, and the packed SAM merge-mask
// expansion. Each batched benchmark is paired with a *LoopRef twin running the
// pre-optimization per-grain/per-byte reference loop, so `benchjson -diff`
// tracks both the optimized path and the speedup ratio across snapshots.

// maskLoopRef is the replaced per-grain PAM mask loop.
func maskLoopRef(p *PAM, off, size int) uint64 {
	lo, hi := p.cfg.grainRange(off, size)
	if hi < lo {
		return 0
	}
	var m uint64
	for g := lo; g <= hi; g++ {
		m |= 1 << uint(g)
	}
	return m
}

// mergeMaskLoopRef is the replaced []bool per-byte MergeMask expansion.
func mergeMaskLoopRef(d *DirSide, addr memsys.Addr, core int) []bool {
	mask := make([]bool, d.cfg.BlockSize)
	e := d.sam.peek(addr)
	if e == nil {
		return mask
	}
	for g := 0; g < d.cfg.grains(); g++ {
		if e.lastWriter[g] == int16(core) {
			for b := g * d.cfg.Granularity; b < (g+1)*d.cfg.Granularity; b++ {
				mask[b] = true
			}
		}
	}
	return mask
}

func benchPAM(gran int) *PAM {
	p := NewPAM(pamCfg(gran), 0, stats.NewSet())
	p.Allocate(0x1000, false)
	for off := 0; off < 64; off += 16 {
		p.OnAccess(0x1000, off, 8, off%32 == 0)
	}
	return p
}

func BenchmarkPAMMask(b *testing.B) {
	p := benchPAM(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= p.mask(i%56, 8)
	}
	sinkU64 = acc
}

func BenchmarkPAMMaskLoopRef(b *testing.B) {
	p := benchPAM(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= maskLoopRef(p, i%56, 8)
	}
	sinkU64 = acc
}

func BenchmarkPAMHasBits(b *testing.B) {
	p := benchPAM(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if p.HasBits(0x1000, (i%8)*8, 8, i%2 == 0) {
			n++
		}
	}
	sinkInt = n
}

func BenchmarkPAMTakeEntry(b *testing.B) {
	p := benchPAM(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		r, w, _, _ := p.TakeEntry(0x1000)
		acc ^= r ^ w
		p.Allocate(0x1000, false)
		p.OnAccess(0x1000, 0, 8, true)
	}
	sinkU64 = acc
}

func benchDirSide(gran int) *DirSide {
	cfg := DefaultConfig(8, 64, coherence.FSLite)
	cfg.Granularity = gran
	d := NewDirSide(cfg, 0, stats.NewSet())
	// A privatized-episode SAM entry with interleaved last-writers: the
	// per-slot pattern of a falsely shared line.
	d.OnPrivatize(0x2000)
	for c := 0; c < 8; c++ {
		d.RecordBytes(0x2000, c, c*8, 8, true)
	}
	return d
}

func BenchmarkSAMMergeMask(b *testing.B) {
	d := benchDirSide(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= d.MergeMask(0x2000, i%8)
	}
	sinkU64 = acc
}

func BenchmarkSAMMergeMaskLoopRef(b *testing.B) {
	d := benchDirSide(1)
	n := 0
	for i := 0; i < b.N; i++ {
		m := mergeMaskLoopRef(d, 0x2000, i%8)
		if m[(i%8)*8] {
			n++
		}
	}
	sinkInt = n
}

var (
	sinkU64 uint64
	sinkInt int
)
