// Package core implements the paper's contribution: the FSDetect and FSLite
// policies layered on the directory MESI protocol of package coherence.
//
// It provides the per-core private access metadata table (PAM, §IV), the
// per-LLC-slice shared access metadata table (SAM, §IV) with the reader
// metadata optimization of §VI, the per-directory-entry FC/IC/PMMC/HC
// counters (fig. 5c), the byte-granular true-sharing inference rules
// (§IV, §V-B), the privatization thresholds and metadata reset policy (§VI),
// and the detection reporting used by FSDetect as a diagnostics tool.
//
// The protocol plumbing (message handling, the PRV state machine) lives in
// package coherence and calls into this package through the
// coherence.L1Policy and coherence.DirPolicy interfaces.
package core

import (
	"math/bits"

	"fscoherence/internal/coherence"
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
	"fscoherence/internal/obs"
)

// Config holds the FSDetect/FSLite tunables (Table II defaults).
type Config struct {
	// Cores is the number of cores (bounds reader bit-vectors; max
	// memsys.MaxCores).
	Cores int

	// BlockSize is the cache line size in bytes.
	BlockSize int

	// Mode selects FSDetect (detect only) or FSLite (detect and repair).
	Mode coherence.Protocol

	// TauP is the privatization threshold: both FC and IC must reach it
	// before a block is flagged as potentially falsely shared (default 16).
	TauP uint32

	// TauR1 is the periodic metadata-reset threshold of §VI (default 16;
	// the paper sets TauR1 == TauP).
	TauR1 uint32

	// TauR2 resets all metadata including the TS bit when FC saturates
	// (default 127, the 7-bit counter maximum).
	TauR2 uint32

	// CounterMax is the FC/IC saturation value (127 for 7-bit counters).
	CounterMax uint32

	// Granularity is the access-tracking grain in bytes: 1 (default), 2 or
	// 4 (§VIII-B coarse-grain tracking study).
	Granularity int

	// ReaderOpt replaces the per-byte reader bit-vector with a last-reader
	// ID plus an overflow bit (§VI), shrinking the SAM entry by 25%.
	ReaderOpt bool

	// SAMEntries/SAMWays size the per-slice SAM table (default 128 entries,
	// 16-way, Table II).
	SAMEntries int
	SAMWays    int

	// HCMax is the saturating hysteresis counter maximum (3 for 2 bits).
	HCMax uint8

	// Now supplies the current simulation cycle for detection timestamps.
	// Optional; defaults to a zero clock.
	Now func() uint64

	// Trace, when non-nil, receives a KindDetect / KindContended event for
	// every detector classification (the unified observability layer).
	Trace *obs.Tracer

	// Forensics, when non-nil, receives every detector classification as a
	// per-line timeline decision (the flight recorder).
	Forensics *forensics.Recorder
}

// DefaultConfig returns the Table II FSDetect/FSLite configuration.
func DefaultConfig(cores, blockSize int, mode coherence.Protocol) Config {
	return Config{
		Cores:       cores,
		BlockSize:   blockSize,
		Mode:        mode,
		TauP:        16,
		TauR1:       16,
		TauR2:       127,
		CounterMax:  127,
		Granularity: 1,
		SAMEntries:  128,
		SAMWays:     16,
		HCMax:       3,
	}
}

// grains returns the number of tracking grains per block.
func (c Config) grains() int { return c.BlockSize / c.Granularity }

// grainRange converts a byte range into an inclusive grain index range.
// Granularity is a validated power of two, so the division is a shift — this
// runs once or twice per committed access on the PAM hot path.
func (c Config) grainRange(off, size int) (int, int) {
	if size <= 0 {
		return 0, -1 // empty (prefetch)
	}
	sh := uint(bits.TrailingZeros8(uint8(c.Granularity)))
	return off >> sh, (off + size - 1) >> sh
}

func (c Config) validate() {
	if c.Cores <= 0 || c.Cores > memsys.MaxCores {
		panic("core: Cores must be in 1..memsys.MaxCores")
	}
	switch c.Granularity {
	case 1, 2, 4, 8:
	default:
		panic("core: Granularity must be 1, 2, 4 or 8")
	}
	if c.BlockSize%c.Granularity != 0 || c.grains() > 64 {
		panic("core: block size / granularity must divide and fit 64 grains")
	}
	if c.BlockSize > 64 {
		// MergeMask/ReduceMask pack one bit per byte of the block into a
		// uint64, so blocks larger than 64 bytes are unrepresentable.
		panic("core: BlockSize must be <= 64 for packed byte masks")
	}
	if c.SAMEntries%c.SAMWays != 0 {
		panic("core: SAM geometry invalid")
	}
}

func (c Config) now() uint64 {
	if c.Now == nil {
		return 0
	}
	return c.Now()
}
