package core

import (
	"testing"
	"testing/quick"

	"fscoherence/internal/coherence"
	"fscoherence/internal/stats"
)

func pamCfg(gran int) Config {
	cfg := DefaultConfig(8, 64, coherence.FSLite)
	cfg.Granularity = gran
	return cfg
}

func newTestPAM(gran int) *PAM {
	return NewPAM(pamCfg(gran), 0, stats.NewSet())
}

func TestPAMAllocateAndAccess(t *testing.T) {
	p := newTestPAM(1)
	p.Allocate(0x1000, false)
	if p.HasBits(0x1000, 0, 8, false) {
		t.Fatal("fresh entry should have no bits")
	}
	p.OnAccess(0x1000, 0, 8, false)
	if !p.HasBits(0x1000, 0, 8, false) {
		t.Fatal("read bits not set")
	}
	if p.HasBits(0x1000, 0, 8, true) {
		t.Fatal("read must not grant write bits")
	}
	p.OnAccess(0x1000, 4, 4, true)
	if !p.HasBits(0x1000, 4, 4, true) {
		t.Fatal("write bits not set")
	}
	if p.HasBits(0x1000, 0, 8, true) {
		t.Fatal("write bits must cover only the written range")
	}
	// §V-B: a read is satisfied by read OR write bits.
	if !p.HasBits(0x1000, 4, 4, false) {
		t.Fatal("write bits must satisfy a read check")
	}
}

func TestPAMAccessWithoutEntryPanics(t *testing.T) {
	p := newTestPAM(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.OnAccess(0x1000, 0, 8, false)
}

func TestPAMTakeEntryClears(t *testing.T) {
	p := newTestPAM(1)
	p.Allocate(0x1000, true)
	p.OnAccess(0x1000, 0, 2, false)
	p.OnAccess(0x1000, 8, 4, true)
	r, w, sendMD, ok := p.TakeEntry(0x1000)
	if !ok || !sendMD {
		t.Fatal("TakeEntry lost the entry or SEND_MD")
	}
	if r != 0b11 {
		t.Fatalf("read vector = %b", r)
	}
	if w != 0b1111<<8 {
		t.Fatalf("write vector = %b", w)
	}
	if _, _, _, ok := p.TakeEntry(0x1000); ok {
		t.Fatal("entry must be gone after TakeEntry")
	}
	if p.Entries() != 0 {
		t.Fatal("entry count wrong")
	}
}

func TestPAMSendMDBit(t *testing.T) {
	p := newTestPAM(1)
	p.Allocate(0x40, false)
	if p.PeekSendMD(0x40) {
		t.Fatal("SEND_MD should start clear")
	}
	p.SetSendMD(0x40, true)
	if !p.PeekSendMD(0x40) {
		t.Fatal("SEND_MD not set")
	}
	p.SetSendMD(0x40, false)
	if p.PeekSendMD(0x40) {
		t.Fatal("SEND_MD not cleared")
	}
	// Setting on a missing entry is a no-op, not a panic.
	p.SetSendMD(0x999940, true)
}

func TestPAMBlockAliasing(t *testing.T) {
	p := newTestPAM(1)
	p.Allocate(0x1000, false)
	p.OnAccess(0x103f, 0x3f, 1, true) // same block, last byte
	if !p.HasBits(0x1000, 63, 1, true) {
		t.Fatal("in-block addressing broken")
	}
	r, w, ok := p.PeekEntry(0x1010)
	if !ok || r != 0 || w != 1<<63 {
		t.Fatalf("PeekEntry r=%b w=%b ok=%v", r, w, ok)
	}
}

func TestPAMCoarseGranularity(t *testing.T) {
	for _, g := range []int{2, 4, 8} {
		p := newTestPAM(g)
		p.Allocate(0, false)
		p.OnAccess(0, 1, 1, true) // one byte within the first grain
		// The whole grain is marked...
		if !p.HasBits(0, 0, g, true) {
			t.Fatalf("g=%d: grain not covered", g)
		}
		// ...but not the next grain.
		if p.HasBits(0, g, 1, true) {
			t.Fatalf("g=%d: next grain spuriously covered", g)
		}
		// An access spanning two grains marks both.
		p.OnAccess(0, g-1, 2, false)
		if !p.HasBits(0, 0, 2*g, false) {
			t.Fatalf("g=%d: spanning access not covered", g)
		}
	}
}

func TestPAMDrop(t *testing.T) {
	p := newTestPAM(1)
	p.Allocate(0x80, true)
	p.Drop(0x80)
	if _, _, _, ok := p.TakeEntry(0x80); ok {
		t.Fatal("Drop did not remove the entry")
	}
}

// Property: HasBits(range) holds exactly when every byte of the range was
// covered by a previous access of the right kind.
func TestPAMCoverageProperty(t *testing.T) {
	type access struct {
		Off   uint8
		Size  uint8
		Write bool
	}
	f := func(accs []access, qOff, qSize uint8, qWrite bool) bool {
		p := newTestPAM(1)
		p.Allocate(0, false)
		var rd, wr [64]bool
		for _, a := range accs {
			off := int(a.Off) % 64
			size := 1 << (int(a.Size) % 4)
			if off+size > 64 {
				off = 64 - size
			}
			p.OnAccess(0, off, size, a.Write)
			for i := off; i < off+size; i++ {
				if a.Write {
					wr[i] = true
				} else {
					rd[i] = true
				}
			}
		}
		off := int(qOff) % 64
		size := 1 << (int(qSize) % 4)
		if off+size > 64 {
			off = 64 - size
		}
		want := true
		for i := off; i < off+size; i++ {
			if qWrite && !wr[i] {
				want = false
			}
			if !qWrite && !rd[i] && !wr[i] {
				want = false
			}
		}
		return p.HasBits(0, off, size, qWrite) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
