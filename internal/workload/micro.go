package workload

import (
	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
)

// Feather-style validation microbenchmarks (§VIII-A: "We evaluate the
// correctness of our protocols on several custom-designed micro-benchmarks
// and with programs provided by Feather").

// buildMicroWW — pure write-write false sharing: each thread RMWs its own
// 8-byte slot of one line as fast as possible.
func buildMicroWW(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	slots := a.Array(threadsFS, 8, strideFor(v, 8, true))
	iters := s.n(1500)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		slot := slots[t]
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				c.AtomicAdd(slot, 8, 1)
			}
		})
	}
	return ths
}

// buildMicroRW — read-write false sharing: one writer updates its slot while
// the other threads spin reading their own (disjoint) slots of the line.
func buildMicroRW(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	slots := a.Array(threadsFS, 8, strideFor(v, 8, true))
	iters := s.n(1200)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		slot := slots[t]
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				if t == 0 {
					c.Store(slot, 8, uint64(i))
				} else {
					c.Load(slot, 8)
				}
				c.Compute(1)
			}
		})
	}
	return ths
}

// buildMicroTS — true sharing control: all threads atomically update the
// same word. FSDetect must not flag it and FSLite must not privatize it.
func buildMicroTS(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	word := a.AllocLine()
	a.Mark(word, lineSize, forensics.LabelShared) // same word, all threads
	iters := s.n(600)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				c.AtomicAdd(word, 8, 1)
				c.Compute(2)
			}
		})
	}
	return ths
}

// buildMicroPhased — the §VI data-initialization scenario: the main thread
// writes every slot once (a short-lived write-write true sharing with the
// workers), then workers enter a long falsely shared phase. Without the
// periodic metadata reset, the stale TS bit would block privatization
// forever.
func buildMicroPhased(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	slots := a.Array(threadsFS, 8, strideFor(v, 8, true))
	bar := a.Barrier(threadsFS)
	iters := s.n(2000)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		slot := slots[t]
		ths = append(ths, func(c *cpu.Ctx) {
			var sense uint64
			if t == 0 {
				for _, sl := range slots {
					c.Store(sl, 8, 1) // initialization by the main thread
				}
			}
			bar.Wait(c, &sense)
			for i := 0; i < iters; i++ {
				c.AtomicAdd(slot, 8, 1)
				c.Compute(2)
			}
		})
	}
	return ths
}

// buildMicroDoS — the interconnect denial-of-service pattern sketched in the
// paper's introduction: a very high volume of falsely shared lines hammered
// concurrently, flooding the network with invalidations and interventions.
func buildMicroDoS(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	const lines = 16
	slotsByLine := make([][]memsys.Addr, lines)
	for l := range slotsByLine {
		slotsByLine[l] = a.Array(threadsFS, 8, strideFor(v, 8, true))
	}
	iters := s.n(800)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				c.AtomicAdd(slotsByLine[i%lines][t], 8, 1)
			}
		})
	}
	return ths
}

// buildMicroRED — the §VII reduction extension: all threads accumulate into
// the SAME words of a declared reduction region. Under plain atomics (uTS)
// this is heavy true sharing; with the region declared, FSLite privatizes
// the line and each core accumulates locally, with the directory summing the
// per-core deltas at merge time.
func buildMicroRED(a *Arena, v Variant, s Scale) ([]cpu.ThreadFunc, []coherence.AddrRange) {
	const words = 4
	base := a.Alloc(words*8, lineSize)
	a.Mark(base, words*8, forensics.LabelShared) // same words, all threads
	region := coherence.AddrRange{Start: base, Size: words * 8}
	bar := a.Barrier(threadsFS + 1)
	iters := s.n(600)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		ths = append(ths, func(c *cpu.Ctx) {
			var sense uint64
			for i := 0; i < iters; i++ {
				c.Reduce(base+memsys.Addr(8*((t+i)%words)), 8, 1)
				c.Compute(2)
			}
			bar.Wait(c, &sense)
		})
	}
	// A non-participating consumer reads the accumulators after the
	// reduction phase (the runtime's reduction epilogue): its loads conflict
	// with the recorded reduction writers, forcing the directory to merge
	// the outstanding privatized copies, and return the exact sums.
	ths = append(ths, func(c *cpu.Ctx) {
		var sense uint64
		bar.Wait(c, &sense)
		for w := 0; w < words; w++ {
			c.Load(base+memsys.Addr(8*w), 8)
		}
	})
	return ths, []coherence.AddrRange{region}
}

func init() {
	register(&Spec{Name: "uRED", Full: "micro parallel reduction", Suite: "micro", Threads: threadsFS + 1, BuildR: buildMicroRED})
	register(&Spec{Name: "uWW", Full: "micro write-write FS", Suite: "micro", FalseSharing: true, Threads: threadsFS, Build: buildMicroWW})
	register(&Spec{Name: "uRW", Full: "micro read-write FS", Suite: "micro", FalseSharing: true, Threads: threadsFS, Build: buildMicroRW})
	register(&Spec{Name: "uTS", Full: "micro true sharing", Suite: "micro", Threads: threadsFS, Build: buildMicroTS})
	register(&Spec{Name: "uPH", Full: "micro phased init-then-FS", Suite: "micro", FalseSharing: true, Threads: threadsFS, Build: buildMicroPhased})
	register(&Spec{Name: "uDoS", Full: "micro interconnect DoS", Suite: "micro", FalseSharing: true, Threads: threadsFS, Build: buildMicroDoS})
}
