package workload

// GridScaleForAccesses returns the Scale at which the uGRID workload on the
// given core count commits approximately the requested number of L1D
// accesses. Each uGRID thread performs 3 memory accesses per iteration (one
// atomic increment of its shared slot, one load and one store of private
// streaming traffic) over s.n(300) iterations, so the total access count is
// about 900·scale·cores. Benchmarks and the sampling harness use it to size
// 10^9-access cells without hand-tuning -scale.
func GridScaleForAccesses(cores int, accesses uint64) Scale {
	if cores <= 0 {
		cores = threadsFS
	}
	perUnit := 900 * float64(cores) // 3 accesses/iter × 300 base iters × cores
	s := float64(accesses) / perUnit
	if s < 1 {
		s = 1
	}
	return Scale(s)
}
