package workload

import (
	"fscoherence/internal/cpu"
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
)

// The six PARSEC benchmarks without false sharing (Table III / Fig. 15).
// FSLite must leave their performance and energy essentially untouched
// (within ~0.1% in the paper).

// buildBL — Blackscholes: embarrassingly parallel option pricing; private
// streaming over option data with barrier-separated rounds.
func buildBL(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	bar := a.Barrier(threadsFS)
	rounds := s.n(6)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		region := a.privateRegion(200)
		ths = append(ths, func(c *cpu.Ctx) {
			var sense uint64
			pos := 0
			for r := 0; r < rounds; r++ {
				for i := 0; i < 150; i++ {
					streamTouch(c, region, pos, 200)
					pos++
					c.Compute(8) // the Black-Scholes kernel is compute heavy
				}
				bar.Wait(c, &sense)
			}
		})
	}
	return ths
}

// buildBO — Bodytrack: private compute over particles plus a read-shared
// model and an occasional work-queue lock (true sharing).
func buildBO(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	model := a.Alloc(128*lineSize, lineSize) // shared read-only body model
	a.Mark(model, 128*lineSize, forensics.LabelShared)
	lock := a.AllocLine()
	a.Mark(lock, lineSize, forensics.LabelShared)
	queue := a.AllocLine() // truly shared work counter
	a.Mark(queue, lineSize, forensics.LabelShared)
	iters := s.n(350)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		// Arena allocation must stay on the builder side: thread prologues
		// run concurrently and the Arena is deliberately not thread-safe.
		priv := newPrivMix(a, 96)
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				c.Load(model+memsys.Addr(((i*7+t)%128)*lineSize), 8)
				priv.touch(c, 5)
				c.Compute(6)
				if i%24 == 0 {
					c.LockAcquire(lock)
					c.Store(queue, 8, c.Load(queue, 8)+1)
					c.LockRelease(lock)
				}
			}
		})
	}
	return ths
}

// buildCA — Canneal: cache-unfriendly random walks over a large element
// array with occasional truly shared atomic swaps.
func buildCA(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	elements := a.Alloc(2048*lineSize, lineSize) // shared netlist elements
	a.Mark(elements, 2048*lineSize, forensics.LabelShared)
	iters := s.n(500)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		ths = append(ths, func(c *cpu.Ctx) {
			state := uint64(t*2654435761 + 1)
			for i := 0; i < iters; i++ {
				// Pseudo-random pointer chase over the shared array; mostly
				// reads, occasionally an atomic swap of an element field.
				state = state*6364136223846793005 + 1442695040888963407
				e := elements + memsys.Addr((state%2048)*lineSize)
				c.Load(e, 8)
				if i%16 == 0 {
					c.AtomicAdd(e+8, 8, 1)
				}
				c.Compute(4)
			}
		})
	}
	return ths
}

// buildFA — Facesim: heavy private streaming (large frames) with barriers.
func buildFA(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	bar := a.Barrier(threadsFS)
	rounds := s.n(4)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		region := a.privateRegion(900)
		ths = append(ths, func(c *cpu.Ctx) {
			var sense uint64
			pos := 0
			for r := 0; r < rounds; r++ {
				for i := 0; i < 260; i++ {
					streamTouch(c, region, pos, 900)
					pos++
					c.Compute(5)
				}
				bar.Wait(c, &sense)
			}
		})
	}
	return ths
}

// buildFL — Fluidanimate: grid partitions with boundary locks shared by
// neighbouring threads (true sharing) plus private cell updates.
func buildFL(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	// One boundary lock between each pair of adjacent threads: padded one
	// per line, but each lock (and its guarded cell) is shared by the two
	// neighbouring threads — truly shared by construction.
	borders := a.Array(threadsFS, 8, lineSize)
	a.Mark(borders[0], threadsFS*lineSize, forensics.LabelShared)
	iters := s.n(300)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		priv := newPrivMix(a, 80)
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				priv.touch(c, 6)
				c.Compute(5)
				if i%8 == 0 {
					// Update a boundary cell under the neighbour lock.
					b := borders[(t+i/8)%threadsFS]
					c.LockAcquire(b)
					c.Store(b+16, 8, uint64(i))
					c.LockRelease(b)
				}
			}
		})
	}
	return ths
}

// buildSW — Swaptions: compute-dominated Monte Carlo simulation over a tiny
// private working set; essentially no misses after warmup.
func buildSW(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	iters := s.n(500)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		region := a.privateRegion(24)
		ths = append(ths, func(c *cpu.Ctx) {
			pos := 0
			for i := 0; i < iters; i++ {
				streamTouch(c, region, pos, 24)
				pos++
				c.Compute(14)
			}
		})
	}
	return ths
}

func init() {
	register(&Spec{Name: "BL", Full: "Blackscholes", Suite: "PARSEC", Threads: threadsFS, Build: buildBL})
	register(&Spec{Name: "BO", Full: "Bodytrack", Suite: "PARSEC", Threads: threadsFS, Build: buildBO})
	register(&Spec{Name: "CA", Full: "Canneal", Suite: "PARSEC", Threads: threadsFS, Build: buildCA})
	register(&Spec{Name: "FA", Full: "Facesim", Suite: "PARSEC", Threads: threadsFS, Build: buildFA})
	register(&Spec{Name: "FL", Full: "Fluidanimate", Suite: "PARSEC", Threads: threadsFS, Build: buildFL})
	register(&Spec{Name: "SW", Full: "Swaptions", Suite: "PARSEC", Threads: threadsFS, Build: buildSW})
}
