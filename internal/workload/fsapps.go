package workload

import (
	"fscoherence/internal/cpu"
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
)

// threadsFS is the paper's evaluation thread count (4 child threads, §VIII-A).
const threadsFS = 4

// privMix drives a thread's private-memory traffic: a small region that fits
// in the L1 (hits) or a large one that streams (misses), letting each model
// hit its Fig. 13 baseline miss fraction.
type privMix struct {
	base  memsys.Addr
	lines int
	pos   int
	rng   uint64
}

func newPrivMix(a *Arena, lines int) *privMix {
	return &privMix{base: a.privateRegion(lines), lines: lines, rng: uint64(lines)*2654435761 + 97}
}

// touch performs n private load/store pairs.
func (p *privMix) touch(c *cpu.Ctx, n int) {
	for i := 0; i < n; i++ {
		streamTouch(c, p.base, p.pos, p.lines)
		p.pos++
	}
}

// touchRand performs n load/store pairs at pseudo-random lines of the
// region. Random reuse gives an LRU-friendly partial miss rate proportional
// to how far the region exceeds the cache, unlike cyclic streaming.
func (p *privMix) touchRand(c *cpu.Ctx, n int) {
	for i := 0; i < n; i++ {
		p.rng = p.rng*6364136223846793005 + 1442695040888963407
		streamTouch(c, p.base, int(p.rng>>33), p.lines)
	}
}

// ---------------------------------------------------------------------------
// RC — Reference-Count (Huron artifact). The canonical severe case: all
// threads hammer adjacent per-thread reference counters in a single cache
// line. The manual fix pads the counters but the changed layout costs extra
// address arithmetic per access (§VIII-B), which is why FSLite (3.91x)
// outruns the manual fix (3.06x). Huron repairs only part of the instances
// (Fig. 17: 1.34x vs FSLite 3.75x).
// ---------------------------------------------------------------------------

func buildRC(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	var slots []memsys.Addr
	switch v {
	case VariantDefault:
		slots = a.Array(threadsFS, 8, 8) // all four counters in one line
	case VariantPadded:
		slots = a.Array(threadsFS, 8, lineSize)
	case VariantHuron:
		// Huron fails to mitigate all false sharing instances in RC
		// (§VIII-B): only one of the four counters ends up repaired; the
		// other three still share a line.
		padded := a.Array(1, 8, lineSize)
		packed := a.Array(3, 8, 8)
		slots = []memsys.Addr{padded[0], packed[0], packed[1], packed[2]}
	}
	iters := s.n(2500)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		slot := slots[t]
		// Allocate per-thread state here, not in the thread body: thread
		// prologues run concurrently, and the Arena is not (and must not
		// need to be) thread-safe — builder-side allocation keeps the
		// address layout deterministic regardless of goroutine scheduling.
		priv := newPrivMix(a, 24)
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				c.AtomicAdd(slot, 8, 1)
				priv.touch(c, 2)
				work := uint64(11)
				if v != VariantDefault {
					work += 4 // padded layout: extra index arithmetic
				}
				c.Compute(work)
			}
		})
	}
	return ths
}

// ---------------------------------------------------------------------------
// LR — Linear-Regression (PHOENIX). Map-reduce: each thread scans private
// points and accumulates into a 40-byte per-thread accumulator struct; the
// packed accumulator array spreads four structs over three cache lines,
// falsely sharing the boundaries. The working set is small, so plain padding
// is a clean win (manual 1.56x ~ FSLite 1.54x).
// ---------------------------------------------------------------------------

func buildLR(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	const accSize = 40 // five 8-byte fields: n, sx, sy, sxx, sxy
	accs := a.Array(threadsFS, accSize, strideFor(v, accSize, true))
	iters := s.n(1200)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		acc := accs[t]
		points := a.privateRegion(64) // per-thread input points, fits L1
		priv := newPrivMix(a, 40)
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				// Load the next point (private, hits after warmup).
				p := points + memsys.Addr((i%256)*16%(64*lineSize))
				x := c.Load(p, 8)
				y := c.Load(p+8, 8)
				// Accumulate into two falsely shared fields.
				f1 := acc + memsys.Addr(8*(i%2))
				f2 := acc + memsys.Addr(8*(2+i%3))
				c.Store(f1, 8, c.Load(f1, 8)+x)
				c.Store(f2, 8, c.Load(f2, 8)+x*y)
				priv.touch(c, 7)
				c.Compute(85)
			}
		})
	}
	return ths
}

// ---------------------------------------------------------------------------
// LT — Locked-Toy (Huron artifact). Per-thread {lock, counter} pairs are
// interleaved so four pairs share each line. The manual fix pads each pair to
// a full line, inflating the working set 4x past the L1 capacity — which is
// why FSLite (1.44x) beats the manual fix (1.31x): it removes the coherence
// misses without adding capacity misses (§VIII-B). Huron pads less
// aggressively (2x), landing in between on Fig. 17.
// ---------------------------------------------------------------------------

func buildLT(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	const slotSize = 16 // 8-byte lock + 8-byte counter
	const slotsPerThread = 64
	stride := slotSize
	switch v {
	case VariantPadded:
		stride = lineSize // 4x inflation: 32 KB of slots, the L1 capacity
	case VariantHuron:
		stride = lineSize // Huron pads the slots too, but inflates records less
	}
	// Slot k of thread t sits at index k*threads+t: neighbours in a line
	// belong to different threads (the false sharing pattern).
	all := a.Array(threadsFS*slotsPerThread, slotSize, stride)
	// The manual fix pads the record *struct definition*, which inflates
	// every instance — including each thread's private record array — 4x
	// past the L1 capacity. That is the §VIII-B mechanism that costs the
	// manual fix its lead over FSLite on LT. Huron pads more selectively
	// (2x).
	recordLines := 50
	switch v {
	case VariantPadded:
		recordLines *= 4
	case VariantHuron:
		recordLines *= 3
	}
	iters := s.n(1800)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		hot := newPrivMix(a, 40)
		records := newPrivMix(a, recordLines)
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				slot := all[(i%slotsPerThread)*threadsFS+t]
				c.LockAcquire(slot)
				cnt := slot + 8
				c.Store(cnt, 8, c.Load(cnt, 8)+1)
				c.LockRelease(slot)
				hot.touch(c, 8)
				records.touchRand(c, 3)
				c.Compute(110)
			}
		})
	}
	return ths
}

// ---------------------------------------------------------------------------
// LL — Lockless-Toy (Huron artifact). The lock-free variant of LT: threads
// update interleaved per-thread slots directly. Padding is a straight win
// (manual 1.5x, FSLite 1.47x).
// ---------------------------------------------------------------------------

func buildLL(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	const slotsPerThread = 32
	all := a.Array(threadsFS*slotsPerThread, 8, strideFor(v, 8, true))
	iters := s.n(1500)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		priv := newPrivMix(a, 48)
		ths = append(ths, func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				slot := all[(i%slotsPerThread)*threadsFS+t]
				c.AtomicAdd(slot, 8, 1)
				priv.touch(c, 9)
				c.Compute(14)
			}
		})
	}
	return ths
}

// ---------------------------------------------------------------------------
// BS — Boost-Spinlock (Huron artifact): boost::detail::spinlock_pool. A pool
// of spinlocks packed several per line; threads hash to locks, so lock words
// see writes from many cores — true sharing interleaved with false sharing.
// FSLite gains little (the TS bit and hysteresis suppress privatization of
// lock lines), matching the paper's ~1.0x for BS under FSLite and small
// manual-fix gains (1.04x).
// ---------------------------------------------------------------------------

func buildBS(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	const poolSize = 16
	stride := strideFor(v, 8, true)
	locks := a.Array(poolSize, 8, stride)
	// Lock words see writes from many cores over time (threads hash to
	// locks): truly shared. The packed pool additionally interleaves locks
	// with different affine owners in each line — mixed true+false sharing,
	// which accuracy scoring excludes by construction.
	lbl := forensics.LabelShared
	if stride < lineSize {
		lbl |= forensics.LabelFalse
	}
	a.Mark(locks[0], poolSize*stride, lbl)
	iters := s.n(350)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		priv := newPrivMix(a, 64)
		ths = append(ths, func(c *cpu.Ctx) {
			compute := uint64(6)
			if v == VariantHuron {
				compute = 5 // Huron commits ~15% fewer instructions on BS
			}
			for i := 0; i < iters; i++ {
				// Mostly a thread-affine lock, occasionally another: the
				// cross-thread accesses are what make lock words truly
				// shared over time.
				idx := t*4 + i%4
				if i%4 == 3 {
					idx = (t*4 + 7 + i) % poolSize
				}
				l := locks[idx]
				c.LockAcquire(l)
				priv.touch(c, 4)
				c.LockRelease(l)
				priv.touch(c, 110)
				c.Compute(compute * 16)
			}
		})
	}
	return ths
}

// ---------------------------------------------------------------------------
// SC — StreamCluster (PARSEC). Streaming over a large private region with a
// small amount of false sharing on per-thread work counters: the paper finds
// the FS volume too small to matter (FSLite ~1.0x) while the miss fraction
// stays ~3% from capacity streaming.
// ---------------------------------------------------------------------------

func buildSC(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	counters := a.Array(threadsFS, 8, strideFor(v, 8, true))
	iters := s.n(600)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		cnt := counters[t]
		// A per-thread region much larger than the L1 share: streaming
		// capacity misses dominate.
		region := a.privateRegion(1400)
		ths = append(ths, func(c *cpu.Ctx) {
			pos := 0
			for i := 0; i < iters; i++ {
				// Stream one new line, then reuse it heavily (the kernel
				// reads each point many times against the medoids).
				for k := 0; k < 2; k++ {
					base := region + memsys.Addr((pos%1400)*lineSize)
					for rep := 0; rep < 4; rep++ {
						for off := 0; off < 8; off++ {
							c.Load(base+memsys.Addr(off*8), 8)
						}
					}
					pos++
				}
				if i%16 == 0 {
					c.Store(cnt, 8, c.Load(cnt, 8)+1) // rare FS update
				}
				c.Compute(30)
			}
		})
	}
	return ths
}

// ---------------------------------------------------------------------------
// SF — ESTM-SFtree (Synchrobench). Software-transactional tree: read-mostly
// traversal of a shared tree plus per-thread transaction descriptors that
// are falsely shared, plus a truly shared commit counter. Mild FSLite gain
// (~1.03x).
// ---------------------------------------------------------------------------

func buildSF(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	tree := a.Alloc(256*lineSize, lineSize) // shared, read-mostly
	a.Mark(tree, 256*lineSize, forensics.LabelShared)
	descs := a.Array(threadsFS, 16, strideFor(v, 16, true))
	commit := a.AllocLine() // truly shared commit counter
	a.Mark(commit, lineSize, forensics.LabelShared)
	iters := s.n(400)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		t := t
		desc := descs[t]
		priv := newPrivMix(a, 48)
		ths = append(ths, func(c *cpu.Ctx) {
			node := uint64(t + 1)
			for i := 0; i < iters; i++ {
				// Tree walk: a few shared read-only loads (S copies hit
				// after warmup).
				for d := 0; d < 4; d++ {
					node = node*2147483647 + 12345
					c.Load(tree+memsys.Addr((node%256)*lineSize), 8)
				}
				// Update the falsely shared transaction descriptor (rarely —
				// most transactions are read-only in SF).
				if i%6 == 0 {
					c.AtomicAdd(desc, 8, 1)
				}
				if i%32 == 0 {
					c.AtomicAdd(commit, 8, 1) // truly shared, rare
				}
				priv.touch(c, 16)
				c.Compute(60)
			}
		})
	}
	return ths
}

// ---------------------------------------------------------------------------
// SM — String-Match (PHOENIX). Barrier-separated phases: keys are processed
// privately and a per-thread result slot (falsely shared) is written a few
// times per phase. The episodes are short-lived, which limits both the harm
// and the repair (FSLite ~1.04x, the largest FSDetect overhead at 3%).
// ---------------------------------------------------------------------------

func buildSM(a *Arena, v Variant, s Scale) []cpu.ThreadFunc {
	results := a.Array(threadsFS, 8, strideFor(v, 8, true))
	bar := a.Barrier(threadsFS)
	phases := s.n(18)
	var ths []cpu.ThreadFunc
	for t := 0; t < threadsFS; t++ {
		slot := results[t]
		priv := newPrivMix(a, 64)
		ths = append(ths, func(c *cpu.Ctx) {
			var sense uint64
			for p := 0; p < phases; p++ {
				// Process a batch of keys privately.
				for k := 0; k < 110; k++ {
					priv.touch(c, 4)
					c.Compute(6)
				}
				// Publish a handful of matches into the shared slot.
				for m := 0; m < 4; m++ {
					c.AtomicAdd(slot, 8, 1)
					c.Compute(4)
				}
				bar.Wait(c, &sense)
			}
		})
	}
	return ths
}

func init() {
	register(&Spec{Name: "RC", Full: "Reference-Count", Suite: "Huron", FalseSharing: true, Threads: threadsFS, HuronSupported: true, Build: buildRC})
	register(&Spec{Name: "LR", Full: "Linear-Regression", Suite: "PHOENIX", FalseSharing: true, Threads: threadsFS, HuronSupported: true, Build: buildLR})
	register(&Spec{Name: "LT", Full: "Locked-Toy", Suite: "Huron", FalseSharing: true, Threads: threadsFS, HuronSupported: true, Build: buildLT})
	register(&Spec{Name: "LL", Full: "Lockless-Toy", Suite: "Huron", FalseSharing: true, Threads: threadsFS, HuronSupported: true, Build: buildLL})
	register(&Spec{Name: "BS", Full: "Boost-Spinlock", Suite: "Huron", FalseSharing: true, Threads: threadsFS, HuronSupported: true, Build: buildBS})
	register(&Spec{Name: "SC", Full: "StreamCluster", Suite: "PARSEC", FalseSharing: true, Threads: threadsFS, Build: buildSC})
	register(&Spec{Name: "SF", Full: "ESTM-SFtree", Suite: "Synchrobench", FalseSharing: true, Threads: threadsFS, Build: buildSF})
	register(&Spec{Name: "SM", Full: "String-Match", Suite: "PHOENIX", FalseSharing: true, Threads: threadsFS, HuronSupported: true, Build: buildSM})
}
