package workload

import "fscoherence/internal/cpu"

// uGRID — the big-machine scaling workload. Threads are packed eight to a
// cache line: each thread atomically increments its own 8-byte slot of its
// group's line (classic write-write false sharing inside the group, no
// sharing across groups), interleaved with private streaming traffic and a
// compute phase so cores have idle spans between misses — the shape of a
// worker loop that updates a shared per-thread counter between chunks of
// real work. The group structure tiles to any core count — on a 256-core
// mesh it produces 32 independent false-sharing hot lines whose home slices
// spread across the sharded LLC — while the padded variant spreads slots one
// per line and eliminates the contention, preserving the Fig. 14a
// default-vs-padded comparison shape.
func buildMicroGrid(a *Arena, v Variant, s Scale, n int) []cpu.ThreadFunc {
	if n <= 0 {
		n = threadsFS
	}
	const per = 8 // threads falsely sharing each line
	groups := (n + per - 1) / per
	iters := s.n(300)
	var ths []cpu.ThreadFunc
	for g := 0; g < groups; g++ {
		cnt := n - g*per
		if cnt > per {
			cnt = per
		}
		slots := a.Array(per, 8, strideFor(v, 8, true))
		for t := 0; t < cnt; t++ {
			slot := slots[t]
			priv := a.privateRegion(4)
			ths = append(ths, func(c *cpu.Ctx) {
				for i := 0; i < iters; i++ {
					c.AtomicAdd(slot, 8, 1)
					streamTouch(c, priv, i%4, 4)
					c.Compute(24)
				}
			})
		}
	}
	return ths
}

func init() {
	register(&Spec{Name: "uGRID", Full: "micro big-machine FS grid", Suite: "micro", FalseSharing: true, Threads: threadsFS, BuildN: buildMicroGrid})
}
