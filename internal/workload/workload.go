// Package workload provides synthetic multithreaded workload models for the
// benchmarks of the paper's Table III (PHOENIX, PARSEC, Synchrobench and the
// Huron artifact) plus microbenchmarks used for protocol validation.
//
// We do not have the benchmark binaries or a full-system x86 platform; per
// the reproduction's substitution rule (DESIGN.md), each model reproduces the
// benchmark's *sharing structure* — which lines are falsely shared, how
// intensely, with what compute density, synchronization and working set —
// because FSDetect/FSLite key only on the dynamic byte-level sharing pattern
// of cache lines. Workload parameters are calibrated so the baseline L1D
// miss fractions land in the range of the paper's Fig. 13 and the
// false-sharing intensity ordering (RC >> LR, LT, LL >> BS, SF, SM, SC)
// matches the paper.
//
// Each benchmark has up to three layout variants:
//
//   - VariantDefault: the original (falsely shared) data layout.
//   - VariantPadded: the "manually fixed" layout (Fig. 2) — contended fields
//     padded to cache-line granularity, inflating the working set (LT) or
//     adding address-arithmetic work (RC), which is how the paper explains
//     FSLite beating the manual fix.
//   - VariantHuron: the layout Huron's compile-time repair produces (Fig. 17)
//     — padding for the instances its static analysis finds (partial for RC),
//     plus a small instruction-count reduction for BS.
package workload

import (
	"fmt"
	"sort"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
)

// Variant selects a data layout.
type Variant int

const (
	VariantDefault Variant = iota
	VariantPadded
	VariantHuron
)

func (v Variant) String() string {
	switch v {
	case VariantDefault:
		return "default"
	case VariantPadded:
		return "padded"
	case VariantHuron:
		return "huron"
	}
	return "?"
}

// Scale controls how much work a workload performs. Iters is the main
// iteration knob; 1.0 reproduces the calibrated experiment size.
type Scale float64

// n scales a base iteration count.
func (s Scale) n(base int) int {
	v := int(float64(base) * float64(s))
	if v < 1 {
		v = 1
	}
	return v
}

// Spec describes one benchmark model.
type Spec struct {
	// Name is the two-letter code used throughout the paper (RC, LR, ...).
	Name string
	// Full is the benchmark's full name.
	Full string
	// Suite is the originating benchmark suite.
	Suite string
	// FalseSharing reports whether the benchmark suffers from false sharing
	// (Table III).
	FalseSharing bool
	// Threads is the number of worker threads (the paper evaluates with 4
	// child threads on 8 cores).
	Threads int
	// HuronSupported marks benchmarks present in the Huron artifact
	// comparison (Fig. 17).
	HuronSupported bool
	// Build constructs the per-thread functions for a layout variant.
	// Builders allocate from the caller's Arena so the allocation-time
	// ground-truth labels (falsely shared / truly shared / private by
	// construction) survive the build and can be scored against the
	// detector (see internal/forensics).
	Build func(a *Arena, v Variant, s Scale) []cpu.ThreadFunc

	// BuildR, when set, replaces Build for workloads that declare §VII
	// reduction regions alongside their threads.
	BuildR func(a *Arena, v Variant, s Scale) ([]cpu.ThreadFunc, []coherence.AddrRange)

	// BuildN, when set, marks a machine-scalable workload: it builds one
	// thread per core for any requested core count (big-machine configs;
	// see BuildFullN). Build remains the fixed default-machine shape.
	BuildN func(a *Arena, v Variant, s Scale, threads int) []cpu.ThreadFunc
}

// registry holds all benchmark models keyed by code.
var registry = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate benchmark " + s.Name)
	}
	if s.Build == nil && s.BuildN != nil {
		s.Build = func(a *Arena, v Variant, sc Scale) []cpu.ThreadFunc {
			return s.BuildN(a, v, sc, s.Threads)
		}
	}
	if s.Build == nil && s.BuildR != nil {
		s.Build = func(a *Arena, v Variant, sc Scale) []cpu.ThreadFunc {
			ths, _ := s.BuildR(a, v, sc)
			return ths
		}
	}
	registry[s.Name] = s
}

// BuildLabeled builds threads, reduction regions and the construction-time
// ground-truth labels for an n-core machine (n == 0 keeps the calibrated
// default shape). Scalable workloads (BuildN) populate every core;
// fixed-shape workloads keep their calibrated thread count and leave the
// remaining cores idle.
func (s *Spec) BuildLabeled(v Variant, sc Scale, n int) ([]cpu.ThreadFunc, []coherence.AddrRange, *forensics.GroundTruth) {
	a := NewArena()
	if s.BuildN != nil && n > 0 {
		return s.BuildN(a, v, sc, n), nil, a.GroundTruth()
	}
	if s.BuildR != nil {
		ths, regions := s.BuildR(a, v, sc)
		return ths, regions, a.GroundTruth()
	}
	return s.Build(a, v, sc), nil, a.GroundTruth()
}

// BuildFull constructs threads and reduction regions for a spec.
func (s *Spec) BuildFull(v Variant, sc Scale) ([]cpu.ThreadFunc, []coherence.AddrRange) {
	ths, regions, _ := s.BuildLabeled(v, sc, 0)
	return ths, regions
}

// BuildFullN builds threads for an n-core machine (see BuildLabeled).
func (s *Spec) BuildFullN(v Variant, sc Scale, n int) ([]cpu.ThreadFunc, []coherence.AddrRange) {
	ths, regions, _ := s.BuildLabeled(v, sc, n)
	return ths, regions
}

// ByName returns the benchmark model with the given code.
func ByName(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return s, nil
}

// Names returns all benchmark codes, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FalseSharingSet returns the codes of the benchmarks with false sharing,
// in the paper's figure order.
func FalseSharingSet() []string {
	return []string{"BS", "LL", "LR", "LT", "RC", "SC", "SF", "SM"}
}

// NoFalseSharingSet returns the codes of the PARSEC benchmarks without false
// sharing, in the paper's figure order.
func NoFalseSharingSet() []string {
	return []string{"BL", "BO", "CA", "FA", "FL", "SW"}
}

// HuronSet returns the Fig. 17 comparison set.
func HuronSet() []string {
	return []string{"BS", "LL", "LR", "LT", "RC", "SM"}
}

// ---------------------------------------------------------------------------
// Address-space layout helpers
// ---------------------------------------------------------------------------

const lineSize = 64

// Arena hands out non-overlapping simulated addresses and records the
// construction-time sharing label of every line it allocates (the ground
// truth the forensics layer scores the detector against). Each workload run
// uses a fresh simulation, so all workloads share the same base address.
//
// Labels are implicit by allocator shape — Alloc/AllocLine/privateRegion
// lines are private, packed Array lines whose bytes belong to two or more
// elements are falsely shared, Barrier lines are truly shared — and builders
// override with Mark where they know better (lock pools, read-shared
// tables, reduction words).
type Arena struct {
	next memsys.Addr
	gt   *forensics.GroundTruth
}

// NewArena starts allocating at a fixed base (distinct from zero so address
// arithmetic bugs are visible).
func NewArena() *Arena {
	return &Arena{next: 0x100000, gt: forensics.NewGroundTruth(lineSize)}
}

// GroundTruth returns the labels accumulated by this arena's allocations.
func (a *Arena) GroundTruth() *forensics.GroundTruth { return a.gt }

// Mark relabels every line overlapping [addr, addr+size), replacing the
// allocation-time label (builders call it for structures whose sharing the
// allocator shape cannot see: lock pools, read-shared tables, ...).
func (a *Arena) Mark(addr memsys.Addr, size int, l forensics.Label) {
	a.gt.Mark(addr, size, l)
}

// Alloc returns size bytes aligned to align (a power of two). The lines are
// labeled private until Marked otherwise.
func (a *Arena) Alloc(size, align int) memsys.Addr {
	mask := memsys.Addr(align - 1)
	a.next = (a.next + mask) &^ mask
	p := a.next
	a.next += memsys.Addr(size)
	a.gt.Mark(p, size, forensics.LabelPrivate)
	return p
}

// AllocLine returns a fresh, exclusively owned cache line.
func (a *Arena) AllocLine() memsys.Addr {
	return a.Alloc(lineSize, lineSize)
}

// Array allocates count elements of elemSize bytes with the given stride
// (stride >= elemSize). stride == elemSize packs elements contiguously (the
// falsely-shared layout); stride == lineSize pads one element per line (the
// manually fixed layout).
//
// Ground truth: a line holding bytes of two or more elements is falsely
// shared by construction (workload elements belong to different threads); a
// line covered by at most one element stays private. The per-line rule
// matters — a packed array can end on a line owned by a single element (LR's
// third accumulator line), which padding would not change.
func (a *Arena) Array(count, elemSize, stride int) []memsys.Addr {
	if stride < elemSize {
		panic("workload: stride smaller than element")
	}
	base := a.Alloc(count*stride, lineSize)
	out := make([]memsys.Addr, count)
	for i := range out {
		out[i] = base + memsys.Addr(i*stride)
	}
	elems := make(map[memsys.Addr]int) // line -> #elements overlapping it
	for i := 0; i < count; i++ {
		first := out[i].BlockAlign(lineSize)
		last := (out[i] + memsys.Addr(elemSize) - 1).BlockAlign(lineSize)
		for ln := first; ln <= last; ln += lineSize {
			elems[ln]++
		}
	}
	for ln, n := range elems {
		if n >= 2 {
			a.gt.Mark(ln, lineSize, forensics.LabelFalse)
		}
	}
	return out
}

// Barrier allocates a sense-reversing barrier for n threads. Barrier lines
// are truly shared by construction.
func (a *Arena) Barrier(n int) *cpu.Barrier {
	line := a.AllocLine()
	a.gt.Mark(line, lineSize, forensics.LabelShared)
	return &cpu.Barrier{CountAddr: line, SenseAddr: line + 8, Threads: n}
}

// strideFor picks the element stride for a layout variant: packed for the
// default layout, one-per-line when fixed.
func strideFor(v Variant, elemSize int, fixed bool) int {
	if fixed && v != VariantDefault {
		return lineSize
	}
	return elemSize
}

// privateRegion allocates a per-thread streaming region of blocks lines.
func (a *Arena) privateRegion(blocks int) memsys.Addr {
	return a.Alloc(blocks*lineSize, lineSize)
}

// streamTouch walks one line of a private region (one load + one store),
// giving workloads a realistic private-traffic component.
func streamTouch(c *cpu.Ctx, base memsys.Addr, line, totalLines int) {
	a := base + memsys.Addr((line%totalLines)*lineSize)
	v := c.Load(a, 8)
	c.Store(a+8, 8, v+1)
}
