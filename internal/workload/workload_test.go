package workload

import (
	"testing"

	"fscoherence/internal/memsys"
)

func TestRegistryComplete(t *testing.T) {
	// Table III: 8 false-sharing + 6 PARSEC benchmarks, plus micros.
	for _, set := range [][]string{FalseSharingSet(), NoFalseSharingSet(), HuronSet()} {
		for _, n := range set {
			s, err := ByName(n)
			if err != nil {
				t.Fatalf("missing benchmark %s: %v", n, err)
			}
			if s.Build == nil || s.Threads <= 0 {
				t.Fatalf("benchmark %s incomplete", n)
			}
		}
	}
	if len(Names()) < 14 {
		t.Fatalf("only %d benchmarks registered", len(Names()))
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestFalseSharingFlagsMatchSets(t *testing.T) {
	for _, n := range FalseSharingSet() {
		s, _ := ByName(n)
		if !s.FalseSharing {
			t.Errorf("%s should be marked as false sharing", n)
		}
	}
	for _, n := range NoFalseSharingSet() {
		s, _ := ByName(n)
		if s.FalseSharing {
			t.Errorf("%s should not be marked as false sharing", n)
		}
	}
}

func TestBuildProducesThreadFuncs(t *testing.T) {
	for _, n := range Names() {
		s, _ := ByName(n)
		for _, v := range []Variant{VariantDefault, VariantPadded, VariantHuron} {
			ths := s.Build(NewArena(), v, 0.01)
			if len(ths) != s.Threads {
				t.Fatalf("%s/%v: %d threads, want %d", n, v, len(ths), s.Threads)
			}
			for i, fn := range ths {
				if fn == nil {
					t.Fatalf("%s/%v thread %d is nil", n, v, i)
				}
			}
		}
	}
}

func TestArenaAlignmentAndDisjointness(t *testing.T) {
	a := NewArena()
	l1 := a.AllocLine()
	l2 := a.AllocLine()
	if l1.BlockOffset(64) != 0 || l2.BlockOffset(64) != 0 {
		t.Fatal("lines not aligned")
	}
	if l1.BlockAlign(64) == l2.BlockAlign(64) {
		t.Fatal("lines overlap")
	}
	p := a.Alloc(24, 8)
	if p%8 != 0 {
		t.Fatal("alignment violated")
	}
}

func TestArrayStride(t *testing.T) {
	a := NewArena()
	packed := a.Array(4, 8, 8)
	for i := 1; i < 4; i++ {
		if packed[i]-packed[i-1] != 8 {
			t.Fatal("packed stride wrong")
		}
	}
	// All four packed elements share one line.
	for i := 1; i < 4; i++ {
		if packed[i].BlockAlign(64) != packed[0].BlockAlign(64) {
			t.Fatal("packed elements should share a line")
		}
	}
	padded := a.Array(4, 8, 64)
	seen := map[memsys.Addr]bool{}
	for _, p := range padded {
		seen[p.BlockAlign(64)] = true
	}
	if len(seen) != 4 {
		t.Fatal("padded elements should each own a line")
	}
}

func TestStrideForVariants(t *testing.T) {
	if strideFor(VariantDefault, 8, true) != 8 {
		t.Fatal("default layout must pack")
	}
	if strideFor(VariantPadded, 8, true) != 64 {
		t.Fatal("padded layout must pad to a line")
	}
	if strideFor(VariantHuron, 8, true) != 64 {
		t.Fatal("huron layout pads where supported")
	}
	if strideFor(VariantPadded, 8, false) != 8 {
		t.Fatal("non-fixable arrays must stay packed")
	}
}

func TestScaleClampsToOne(t *testing.T) {
	if Scale(0.0001).n(10) != 1 {
		t.Fatal("scale must clamp to at least one iteration")
	}
	if Scale(2).n(10) != 20 {
		t.Fatal("scale multiplication wrong")
	}
}

func TestFalseSharingLayoutProperty(t *testing.T) {
	// The default RC layout places all four counters in one line; the
	// padded layout gives each its own.
	rc, _ := ByName("RC")
	_ = rc
	a := NewArena()
	slots := a.Array(4, 8, 8)
	lines := map[memsys.Addr]bool{}
	for _, s := range slots {
		lines[s.BlockAlign(64)] = true
	}
	if len(lines) != 1 {
		t.Fatalf("default RC-style layout spans %d lines, want 1", len(lines))
	}
}
