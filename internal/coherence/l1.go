package coherence

import (
	"fmt"

	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/obs"
	"fscoherence/internal/stats"
)

// NoEvent is the NextEvent sentinel for coherence controllers: no self-driven
// wake-up is scheduled; the component only acts in response to an incoming
// message (covered by the network's NextArrival report).
const NoEvent = ^uint64(0)

// l1Line is the per-line payload of an L1 data cache.
type l1Line struct {
	state L1State
	dirty bool
	data  []byte

	// base snapshots the block content at entry into the PRV state; the
	// directory merges reduction words as data-base deltas (§VII).
	base []byte
}

// wbEntry is a writeback-buffer slot: an evicted dirty (or privatized) block
// held until the directory acknowledges the writeback. Late interventions are
// serviced from here (the "phantom message" scenario of §V-D).
type wbEntry struct {
	data  []byte
	dirty bool
	prv   bool
}

// mshrState enumerates the transient states of an outstanding L1 transaction.
type mshrState int

const (
	mshrWaitData     mshrState = iota // IS_D: GetS issued, waiting for data
	mshrWaitDataExcl                  // IM_AD: GetX issued, waiting data + acks
	mshrWaitUpgrade                   // SM_A: Upgrade issued, waiting ack(s)
	mshrWaitChk                       // PRV byte-permission check outstanding
)

// mshr tracks one outstanding transaction. The L1 never coalesces: each MSHR
// carries exactly one demand access.
type mshr struct {
	addr     memsys.Addr
	state    mshrState
	access   *Access
	acksGot  int
	acksNeed int
	ackKnown bool // grant arrived; acksNeed is authoritative
	dataSeen bool

	// invAfterFill: an Inv arrived while waiting for (3-hop) data; consume
	// the data once for the pending access, then drop the line.
	invAfterFill bool

	// reissue: an Inv_PRV (or Inv in SM_A) raced with the grant; when the
	// stale grant arrives, discard it and reissue the transaction (§V-E).
	reissue bool

	// reqMD is the REQ_MD bit carried by the grant; becomes the SEND_MD bit
	// of the freshly allocated PAM entry (§IV).
	reqMD bool

	// payload stashes grant data until outstanding InvAcks are collected.
	payload []byte

	// start stamps transaction issue for the miss-latency histogram.
	start uint64

	// deferred buffers directory-initiated messages (Fwd_Get*/TR_PRV/recall
	// Inv) that arrived while our own grant was still in flight: the
	// directory already considers us the owner/sharer, so the message is
	// serviced right after the local transaction completes. The directory's
	// per-block transactions are mutually exclusive, so at most one message
	// is deferred at a time.
	deferred []*network.Msg
}

// Observer receives architectural commit events (used by the simulation
// engine for the golden-memory oracle and per-op accounting).
//
// OnLoadCommit carries the load's issue cycle because a miss-path load binds
// its value at the directory (its coherence-order serialization point),
// which lies anywhere in [issue, commit]: the oracle must accept any value
// live during that window, not just the one current at commit. Hits and RMW
// reads serialize at commit and report issue == commit.
type Observer interface {
	OnLoadCommit(core int, addr memsys.Addr, value []byte, issue uint64)
	OnStoreCommit(core int, addr memsys.Addr, value []byte)
	// OnReduceCommit reports a commutative accumulation; deltas commit in
	// an arbitrary interleaving, so the oracle sums rather than overwrites.
	OnReduceCommit(core int, addr memsys.Addr, delta []byte)
}

// scheduledDone is a local-hit access whose architectural effects have been
// applied (at issue, which is the access's serialization point) and whose
// completion callback fires after the L1 access latency.
type scheduledDone struct {
	done  func([]byte)
	value []byte
	at    uint64
}

// L1 is one core's private data-cache controller.
type L1 struct {
	core     int
	node     network.NodeID
	params   Params
	mode     Protocol
	net      *network.Network
	cache    *memsys.SetAssoc[l1Line]
	l2       *memsys.SetAssoc[l1Line] // optional private victim L2 (§VII)
	wb       map[memsys.Addr]*wbEntry
	mshrs    map[memsys.Addr]*mshr
	maxMSHRs int
	policy   L1Policy
	stats    *stats.Set
	obs      Observer
	now      uint64

	// Observability attachments (nil when disabled; see SetObs and
	// SetForensics).
	trace     *obs.Tracer
	missHist  *obs.Histogram
	forensics *forensics.Recorder

	local []scheduledDone // local hits awaiting the hit latency

	// valPool recycles the small (<= 8 byte) value buffers handed to commit
	// callbacks. Done hooks, the tracer and the oracle all consume the bytes
	// synchronously, so a buffer returns to the pool as soon as its callback
	// has run; steady-state hit/miss commits then allocate nothing.
	valPool [][]byte
}

// NewL1 builds the L1 controller for the given core. policy may be nil
// (baseline protocol); obs may be nil.
func NewL1(core int, p Params, mode Protocol, net *network.Network, policy L1Policy, st *stats.Set, obs Observer) *L1 {
	l := &L1{
		core:     core,
		node:     p.L1Node(core),
		params:   p,
		mode:     mode,
		net:      net,
		cache:    memsys.NewSetAssoc[l1Line](fmt.Sprintf("l1d%d", core), p.L1Entries, p.L1Ways, p.BlockSize),
		wb:       make(map[memsys.Addr]*wbEntry),
		mshrs:    make(map[memsys.Addr]*mshr),
		maxMSHRs: 1,
		policy:   policy,
		stats:    st,
		obs:      obs,
	}
	if p.L2Entries > 0 {
		l.l2 = memsys.NewSetAssoc[l1Line](fmt.Sprintf("l2d%d", core), p.L2Entries, p.L2Ways, p.BlockSize)
	}
	return l
}

// SetMaxMSHRs configures the number of concurrently outstanding misses
// (1 for the in-order core, >1 for the out-of-order model).
func (l *L1) SetMaxMSHRs(n int) { l.maxMSHRs = n }

// Core returns the core index this L1 belongs to.
func (l *L1) Core() int { return l.core }

// StateOf returns the coherence state of the block containing a (for
// invariant checks and tests).
func (l *L1) StateOf(a memsys.Addr) L1State {
	e := l.peekAny(a)
	if e == nil {
		return L1Invalid
	}
	return e.Payload.state
}

// peekAny returns the entry holding a in the L1 or (if enabled) the L2.
func (l *L1) peekAny(a memsys.Addr) *memsys.Entry[l1Line] {
	if e := l.cache.Peek(a); e != nil {
		return e
	}
	if l.l2 != nil {
		return l.l2.Peek(a)
	}
	return nil
}

// invalidateAny removes a from whichever private level holds it.
func (l *L1) invalidateAny(a memsys.Addr) {
	if e := l.peekAny(a); e != nil {
		l.traceState(a, e.Payload.state, L1Invalid)
	}
	if l.cache.Peek(a) != nil {
		l.cache.Invalidate(a)
		return
	}
	if l.l2 != nil {
		l.l2.Invalidate(a)
	}
}

// OutstandingMisses reports the number of active MSHRs.
func (l *L1) OutstandingMisses() int { return len(l.mshrs) }

// Idle reports whether the controller has no in-flight work.
func (l *L1) Idle() bool {
	return len(l.mshrs) == 0 && len(l.wb) == 0 && len(l.local) == 0
}

// ForEachLine visits every valid line's block address and state (invariant
// checking).
func (l *L1) ForEachLine(fn func(memsys.Addr, L1State)) {
	l.cache.ForEach(func(e *memsys.Entry[l1Line]) {
		fn(e.Tag, e.Payload.state)
	})
	if l.l2 != nil {
		l.l2.ForEach(func(e *memsys.Entry[l1Line]) {
			fn(e.Tag, e.Payload.state)
		})
	}
}

// DebugString summarizes in-flight state (deadlock diagnosis).
func (l *L1) DebugString() string {
	if l.Idle() {
		return ""
	}
	s := fmt.Sprintf("l1 %d:", l.core)
	for a, tx := range l.mshrs {
		s += fmt.Sprintf(" mshr{%v state=%v acks=%d/%d data=%v reissue=%v fwd=%v}",
			a, tx.state, tx.acksGot, tx.acksNeed, tx.dataSeen, tx.reissue, len(tx.deferred))
	}
	for a, wb := range l.wb {
		s += fmt.Sprintf(" wb{%v prv=%v}", a, wb.prv)
	}
	if len(l.local) > 0 {
		s += fmt.Sprintf(" local=%d", len(l.local))
	}
	return s
}

// homeNode returns the directory slice node for address a.
func (l *L1) homeNode(a memsys.Addr) network.NodeID {
	return l.params.SliceNode(l.params.HomeSlice(uint64(a)))
}

// send dispatches a message from this L1. The caller's Msg is copied into a
// pooled message before entering the network, so call sites can build their
// message as a stack-allocated composite literal (the literal never escapes).
func (l *L1) send(m *network.Msg) {
	pm := l.net.NewMsg()
	*pm = *m
	pm.Src = l.node
	l.net.Send(pm)
}

// SubmitResult reports what Submit did with an access.
type SubmitResult int

const (
	SubmitRetry SubmitResult = iota // resource busy; retry next cycle
	SubmitHit                       // local hit; Done will fire after the hit latency
	SubmitMiss                      // transaction started; Done fires on completion
)

// Submit hands a demand access to the L1. The access completes asynchronously
// through its Done callback. Submit returns SubmitRetry when the access
// cannot be accepted this cycle (MSHR conflict or capacity, or the block sits
// in the writeback buffer awaiting an ack).
func (l *L1) Submit(a *Access) SubmitResult {
	a.Validate(l.params.BlockSize)
	blk := a.Addr.BlockAlign(l.params.BlockSize)

	if _, busy := l.mshrs[blk]; busy {
		return SubmitRetry // no coalescing: one transaction per block
	}
	if _, inWB := l.wb[blk]; inWB {
		return SubmitRetry // wait for the writeback ack
	}

	e := l.cache.Lookup(blk)
	if e != nil {
		if res, ok := l.tryLocal(a, blk, e); ok {
			l.stats.IncID(stats.IDL1DAccesses)
			return res
		}
		// Resident but insufficient permission: upgrade or CHK transaction.
		if len(l.mshrs) >= l.maxMSHRs {
			return SubmitRetry
		}
		l.stats.IncID(stats.IDL1DAccesses)
		l.stats.IncID(stats.IDL1DMisses)
		switch e.Payload.state {
		case L1Shared:
			l.startTxn(a, blk, mshrWaitUpgrade, network.OpUpgrade)
		case L1Prv:
			op := network.OpGetCHK
			if a.IsWrite() {
				op = network.OpGetXCHK
			}
			l.stats.IncID(stats.IDFSChkRequests)
			l.startTxn(a, blk, mshrWaitChk, op)
		default:
			panic(fmt.Sprintf("l1: unexpected permission miss in state %v", e.Payload.state))
		}
		l.cache.Pin(blk) // transaction targets a resident line
		return SubmitMiss
	}

	// L1 miss: a hit in the private L2 promotes the line (keeping its
	// coherence state) without any directory traffic; the access then
	// proceeds as if L1-resident, with the L2 access latency added.
	if l.l2 != nil {
		if e2 := l.l2.Lookup(blk); e2 != nil {
			line := e2.Payload
			l.l2.Invalidate(blk)
			ne, victim := l.cache.Insert(blk)
			if victim != nil {
				l.evict(victim)
			}
			ne.Payload = line
			if l.policy != nil {
				// A fresh PAM entry: the old one was shipped to the SAM
				// when the line left the L1 (§VII).
				l.policy.Allocate(blk, false)
			}
			l.stats.Inc("l2.hits")
			if res, ok := l.tryLocal(a, blk, ne); ok {
				l.stats.IncID(stats.IDL1DAccesses)
				l.stats.IncID(stats.IDL1DMisses) // an L1 miss, served by the L2
				if res == SubmitHit && len(l.local) > 0 {
					l.local[len(l.local)-1].at += l.params.L2HitCycles
				}
				return res
			}
			// Permission miss after promotion: fall through to a
			// transaction against the resident line.
			if len(l.mshrs) >= l.maxMSHRs {
				return SubmitRetry
			}
			l.stats.IncID(stats.IDL1DAccesses)
			l.stats.IncID(stats.IDL1DMisses)
			switch ne.Payload.state {
			case L1Shared:
				l.startTxn(a, blk, mshrWaitUpgrade, network.OpUpgrade)
			case L1Prv:
				op := network.OpGetCHK
				if a.IsWrite() {
					op = network.OpGetXCHK
				}
				l.stats.IncID(stats.IDFSChkRequests)
				l.startTxn(a, blk, mshrWaitChk, op)
			default:
				panic("l1: unexpected permission miss after L2 promotion")
			}
			l.cache.Pin(blk)
			return SubmitMiss
		}
	}

	// Block absent: demand fetch.
	if len(l.mshrs) >= l.maxMSHRs {
		return SubmitRetry
	}
	l.stats.IncID(stats.IDL1DAccesses)
	l.stats.IncID(stats.IDL1DMisses)
	if a.IsWrite() {
		l.startTxn(a, blk, mshrWaitDataExcl, network.OpGetX)
	} else {
		l.startTxn(a, blk, mshrWaitData, network.OpGetS)
	}
	return SubmitMiss
}

// tryLocal attempts to satisfy the access against a resident line. It returns
// ok=false when a permission transaction is required.
func (l *L1) tryLocal(a *Access, blk memsys.Addr, e *memsys.Entry[l1Line]) (SubmitResult, bool) {
	st := e.Payload.state
	off := a.Addr.BlockOffset(l.params.BlockSize)
	switch a.Kind {
	case AccessPrefetch:
		l.scheduleLocal(a)
		return SubmitHit, true
	case AccessLoad:
		if st == L1Prv {
			if l.policy.HasBits(blk, off, a.Size, false) {
				l.hit(a)
				return SubmitHit, true
			}
			return 0, false
		}
		l.hit(a)
		return SubmitHit, true
	case AccessStore, AccessAtomicRMW, AccessReduce:
		switch st {
		case L1Modified:
			l.hit(a)
			return SubmitHit, true
		case L1Exclusive:
			e.Payload.state = L1Modified // silent E->M upgrade
			l.traceState(blk, L1Exclusive, L1Modified)
			l.hit(a)
			return SubmitHit, true
		case L1Shared:
			return 0, false
		case L1Prv:
			if l.policy.HasBits(blk, off, a.Size, true) {
				l.hit(a)
				return SubmitHit, true
			}
			return 0, false
		}
	}
	panic("l1: unreachable")
}

func (l *L1) hit(a *Access) {
	l.stats.IncID(stats.IDL1DHits)
	l.scheduleLocal(a)
}

// scheduleLocal applies the access now (its serialization point) and defers
// the completion callback by the hit latency.
func (l *L1) scheduleLocal(a *Access) {
	val := l.commitNow(a, l.now)
	l.local = append(l.local, scheduledDone{done: a.Done, value: val, at: l.now + l.params.L1HitCycles})
}

// getVal draws a value buffer from the pool (loads and atomics observe at
// most 8 bytes).
func (l *L1) getVal(n int) []byte {
	if k := len(l.valPool); k > 0 {
		b := l.valPool[k-1]
		l.valPool = l.valPool[:k-1]
		return b[:n]
	}
	return make([]byte, n, 8)
}

// putVal returns a commit-value buffer once its consumers have run.
func (l *L1) putVal(b []byte) {
	if cap(b) == 8 {
		l.valPool = append(l.valPool, b[:8])
	}
}

// startTxn allocates an MSHR and sends the request.
func (l *L1) startTxn(a *Access, blk memsys.Addr, st mshrState, op network.Op) {
	m := &mshr{addr: blk, state: st, access: a, start: l.now}
	l.mshrs[blk] = m
	l.sendRequest(m, op)
}

func (l *L1) sendRequest(m *mshr, op network.Op) {
	touchedOff, touchedLen := 0, 0
	if m.access.Kind != AccessPrefetch {
		touchedOff = m.access.Addr.BlockOffset(l.params.BlockSize)
		touchedLen = m.access.Size
	}
	l.send(&network.Msg{
		Op:         op,
		Dst:        l.homeNode(m.addr),
		Addr:       m.addr,
		Requestor:  l.node,
		TouchedOff: touchedOff,
		TouchedLen: touchedLen,
	})
}

// Tick processes due local commits and up to MaxMsgsPerCycle network
// messages. The engine calls it once per cycle after the network delivers.
func (l *L1) Tick(now uint64) {
	l.now = now
	// Deliver local-hit completions whose latency elapsed, preserving order.
	keep := l.local[:0]
	for _, sc := range l.local {
		if sc.at <= now {
			if sc.done != nil {
				sc.done(sc.value)
			}
			if sc.value != nil {
				l.putVal(sc.value)
			}
		} else {
			keep = append(keep, sc)
		}
	}
	l.local = keep

	for i := 0; i < l.params.MaxMsgsPerCycle; i++ {
		msg := l.net.Recv(l.node)
		if msg == nil {
			break
		}
		l.handle(msg)
		l.net.Release(msg) // no-op if a handler retained (deferred) it
	}
}

// NextEvent returns the earliest cycle > now at which the controller has
// self-driven work: the next due local-hit completion. Everything else the L1
// does is a reaction to network delivery (covered by Network.NextArrival) or
// to a core's Submit. NoEvent means no local completions are scheduled.
func (l *L1) NextEvent(now uint64) uint64 {
	next := NoEvent
	for i := range l.local {
		if at := l.local[i].at; at < next {
			next = at
		}
	}
	return next
}

// redispatch re-handles a message that a handler had retained (deferred)
// earlier, releasing it afterwards unless it was retained again.
func (l *L1) redispatch(m *network.Msg) {
	m.Unretain()
	l.handle(m)
	l.net.Release(m)
}

// commitNow architecturally performs the access against the (resident and
// permitted) line, updates private metadata and notifies the observer. It
// returns the value to deliver through Done (nil for stores/prefetches).
// issue is the access's issue cycle: for a miss-path load that is the cycle
// the request entered the system (the serialization point lies between it
// and now); for hits it equals now.
func (l *L1) commitNow(a *Access, issue uint64) []byte {
	if a.Kind == AccessPrefetch {
		return nil
	}
	blk := a.Addr.BlockAlign(l.params.BlockSize)
	e := l.cache.Peek(blk)
	if e == nil {
		panic(fmt.Sprintf("l1 %d: commit to non-resident %v", l.core, blk))
	}
	off := a.Addr.BlockOffset(l.params.BlockSize)
	if f := l.forensics; f != nil {
		f.OnAccess(blk, l.core, off, a.Size, a.Kind != AccessLoad, l.now)
	}
	line := &e.Payload
	switch a.Kind {
	case AccessLoad:
		val := l.getVal(a.Size)
		copy(val, line.data[off:off+a.Size])
		if l.policy != nil {
			l.policy.OnAccess(blk, off, a.Size, false)
		}
		if l.obs != nil {
			l.obs.OnLoadCommit(l.core, a.Addr, val, issue)
		}
		l.stats.IncID(stats.IDLoadsCommitted)
		return val
	case AccessStore:
		copy(line.data[off:off+a.Size], a.StoreData)
		line.dirty = true
		if l.policy != nil {
			l.policy.OnAccess(blk, off, a.Size, true)
		}
		if l.obs != nil {
			l.obs.OnStoreCommit(l.core, a.Addr, a.StoreData)
		}
		l.stats.IncID(stats.IDStoresCommit)
		return nil
	case AccessReduce:
		// Little-endian wrap-around accumulation over Size bytes.
		delta := l.getVal(a.Size)
		d := a.Delta
		for i := 0; i < a.Size; i++ {
			delta[i] = byte(d)
			d >>= 8
		}
		addLE(line.data[off:off+a.Size], delta)
		line.dirty = true
		if l.policy != nil {
			l.policy.OnAccess(blk, off, a.Size, false)
			l.policy.OnAccess(blk, off, a.Size, true)
		}
		if l.obs != nil {
			l.obs.OnReduceCommit(l.core, a.Addr, delta)
		}
		l.stats.IncID(stats.IDReducesCommit)
		l.putVal(delta)
		return nil
	case AccessAtomicRMW:
		old := l.getVal(a.Size)
		copy(old, line.data[off:off+a.Size])
		next := a.RMW(old)
		if len(next) != a.Size {
			panic("l1: RMW result size mismatch")
		}
		copy(line.data[off:off+a.Size], next)
		line.dirty = true
		if l.policy != nil {
			l.policy.OnAccess(blk, off, a.Size, false)
			l.policy.OnAccess(blk, off, a.Size, true)
		}
		if l.obs != nil {
			// The RMW read serializes with its write at commit: the line is
			// exclusively held, so strict commit-time checking is exact.
			l.obs.OnLoadCommit(l.core, a.Addr, old, l.now)
			l.obs.OnStoreCommit(l.core, a.Addr, next)
		}
		l.stats.IncID(stats.IDAtomicsCommit)
		return old
	}
	panic("l1: unreachable")
}

// fill installs a block, evicting a victim if needed.
func (l *L1) fill(blk memsys.Addr, data []byte, st L1State, dirty bool, sendMD bool) {
	if l.peekAny(blk) != nil {
		panic(fmt.Sprintf("l1 %d: fill of resident block %v", l.core, blk))
	}
	e, evicted := l.cache.Insert(blk)
	if evicted != nil {
		l.evict(evicted)
	}
	e.Payload = l1Line{state: st, dirty: dirty, data: data}
	l.traceState(blk, L1Invalid, st)
	l.stats.IncID(stats.IDL1DFills)
	if l.policy != nil {
		l.policy.Allocate(blk, sendMD)
	}
}

// evict handles a line displaced from the L1. With a private L2 the data
// moves there silently, keeping its coherence state — but the PAM entry is
// invalidated and shipped to the SAM now, at L1 eviction, exactly as §VII
// prescribes for the three-level hierarchy. Without an L2 (or when the line
// is displaced from the L2 itself) the line leaves the private hierarchy:
// silent drop for clean S, writeback for E/M, privatized writeback for PRV.
func (l *L1) evict(ev *memsys.Entry[l1Line]) {
	if l.l2 != nil {
		l.stats.IncID(stats.IDL1DEvicts)
		l.sendEvictionMD(ev.Tag) // PAM leaves with the L1 residence
		if ev.Payload.state == L1Prv && l.policy != nil {
			l.policy.Drop(ev.Tag)
		}
		e2, victim := l.l2.Insert(ev.Tag)
		e2.Payload = ev.Payload
		if victim != nil {
			l.evictFromHierarchy(victim, false)
		}
		return
	}
	l.evictFromHierarchy(ev, true)
}

// evictFromHierarchy handles a line leaving the private cache hierarchy
// entirely. shipMD is true when the line comes straight from the L1 (its PAM
// entry has not been shipped yet).
func (l *L1) evictFromHierarchy(ev *memsys.Entry[l1Line], shipMD bool) {
	blk := ev.Tag
	line := ev.Payload
	l.traceState(blk, line.state, L1Invalid)
	l.stats.IncID(stats.IDL1DEvicts)
	if !shipMD {
		// The PAM entry was already communicated at L1 eviction; only the
		// directory-visible eviction remains.
		switch line.state {
		case L1Shared:
		case L1Exclusive:
			l.wb[blk] = &wbEntry{data: line.data}
			l.send(&network.Msg{Op: network.OpWB, Dst: l.homeNode(blk), Addr: blk, Data: line.data, Requestor: l.node})
		case L1Modified:
			l.stats.IncID(stats.IDL1DWbDirty)
			l.wb[blk] = &wbEntry{data: line.data, dirty: true}
			l.send(&network.Msg{Op: network.OpWB, Dst: l.homeNode(blk), Addr: blk, Data: line.data, Dirty: true, Requestor: l.node})
		case L1Prv:
			l.stats.IncID(stats.IDL1DWbDirty)
			l.wb[blk] = &wbEntry{data: line.data, dirty: true, prv: true}
			l.send(&network.Msg{Op: network.OpPrvWB, Dst: l.homeNode(blk), Addr: blk, Data: line.data, Base: line.base, Requestor: l.node})
		default:
			panic("l1: evicting invalid line from L2")
		}
		return
	}
	switch line.state {
	case L1Shared:
		// Silent clean eviction (§IV).
		l.sendEvictionMD(blk)
	case L1Exclusive:
		// A clean writeback keeps the directory's owner field exact, so the
		// directory never forwards an intervention to a core with no copy
		// and no writeback-buffer entry.
		l.wb[blk] = &wbEntry{data: line.data}
		l.send(&network.Msg{Op: network.OpWB, Dst: l.homeNode(blk), Addr: blk, Data: line.data, Requestor: l.node})
		l.sendEvictionMD(blk)
	case L1Modified:
		l.stats.IncID(stats.IDL1DWbDirty)
		l.wb[blk] = &wbEntry{data: line.data, dirty: true}
		l.send(&network.Msg{Op: network.OpWB, Dst: l.homeNode(blk), Addr: blk, Data: line.data, Dirty: true, Requestor: l.node})
		l.sendEvictionMD(blk)
	case L1Prv:
		l.stats.IncID(stats.IDL1DWbDirty)
		l.wb[blk] = &wbEntry{data: line.data, dirty: true, prv: true}
		l.send(&network.Msg{Op: network.OpPrvWB, Dst: l.homeNode(blk), Addr: blk, Data: line.data, Base: line.base, Requestor: l.node})
		if l.policy != nil {
			l.policy.Drop(blk)
		}
	default:
		panic("l1: evicting invalid line")
	}
}

// sendEvictionMD ships the PAM entry to the directory if SEND_MD is set and
// invalidates the entry (§IV, eviction of private blocks).
func (l *L1) sendEvictionMD(blk memsys.Addr) {
	if l.policy == nil {
		return
	}
	mdR, mdW, sendMD, ok := l.policy.TakeEntry(blk)
	if ok && sendMD {
		l.stats.IncID(stats.IDFSMetadataMsgs)
		l.send(&network.Msg{Op: network.OpRepMD, Dst: l.homeNode(blk), Addr: blk, MDRead: mdR, MDWrite: mdW, Requestor: l.node})
	}
}

// handleSwitch is the retained hand-written dispatch (Params.SwitchDispatch);
// the default path is the spec-table interpreter in dispatch.go, and
// `make equiv` proves the two byte-identical.
func (l *L1) handleSwitch(m *network.Msg) {
	switch m.Op {
	case network.OpData, network.OpDataExcl:
		l.onData(m)
	case network.OpDataPrv:
		l.onDataPrv(m)
	case network.OpInvAck:
		l.onInvAck(m)
	case network.OpUpgradeAck:
		l.onUpgradeAck(m)
	case network.OpUpgradeNack:
		l.onUpgradeNack(m)
	case network.OpUpgAckPrv:
		l.onUpgAckPrv(m)
	case network.OpAckPrv:
		l.onAckPrv(m)
	case network.OpFwdGetS:
		l.onFwdGetS(m)
	case network.OpFwdGetX:
		l.onFwdGetX(m)
	case network.OpInv:
		l.onInv(m)
	case network.OpTRPrv:
		l.onTRPrv(m)
	case network.OpInvPrv:
		l.onInvPrv(m)
	case network.OpWBAck:
		l.onWBAck(m)
	case network.OpUpd:
		l.onUpd(m)
	default:
		panic(fmt.Sprintf("l1 %d: unexpected message %v", l.core, m))
	}
}

// onWBAck frees the writeback-buffer slot (a no-op when a stale ack arrives
// after the block was re-acquired and the slot already recycled).
func (l *L1) onWBAck(m *network.Msg) {
	delete(l.wb, m.Addr)
}

// onUpd installs a Hybrid update push as a clean S copy. The push is
// unsolicited, so it yields to anything already going on for the block: an
// outstanding transaction, a writeback in flight or a resident copy all drop
// it (the directory re-added us to sharers at push time, so a drop just
// leaves the sharer list a superset, §6.1).
func (l *L1) onUpd(m *network.Msg) {
	if tx := l.mshrs[m.Addr]; tx != nil {
		// One push race matters: an Inv consumed our S copy while our own
		// Upgrade was outstanding, and the push re-added us to sharers
		// before the directory served that Upgrade. The UpgradeAck is then
		// behind this Upd on the same control channel, so reinstalling the
		// (pinned, as the upgrade target) S copy here restores the line the
		// completion upgrades in place. Every other transaction drops the
		// push.
		if tx.state == mshrWaitUpgrade && l.peekAny(m.Addr) == nil {
			if _, ok := l.wb[m.Addr]; !ok {
				l.stats.IncID(stats.IDFSUpdInstalls)
				l.fill(m.Addr, m.Data, L1Shared, false, false)
				l.cache.Pin(m.Addr)
			}
		}
		return
	}
	if _, ok := l.wb[m.Addr]; ok {
		return
	}
	if l.peekAny(m.Addr) != nil {
		return
	}
	l.stats.IncID(stats.IDFSUpdInstalls)
	l.fill(m.Addr, m.Data, L1Shared, false, false)
}

// finishTxn completes an MSHR: commit its access and release resources. The
// miss latency has already been paid, so Done fires immediately. A buffered
// intervention (which the directory ordered after our grant) is serviced
// right after the commit.
func (l *L1) finishTxn(m *mshr) {
	delete(l.mshrs, m.addr)
	l.cache.Unpin(m.addr)
	l.missHist.Observe(l.now - m.start)
	if f := l.forensics; f != nil {
		f.OnMiss(m.addr, l.core, l.now-m.start, l.now)
	}
	val := l.commitNow(m.access, m.start)
	if m.access.Done != nil {
		m.access.Done(val)
	}
	if val != nil {
		l.putVal(val)
	}
	for _, dm := range m.deferred {
		l.redispatch(dm)
	}
}

// reissueTxn restarts an MSHR's transaction from scratch as GetS/GetX.
func (l *L1) reissueTxn(m *mshr) {
	m.reissue = false
	m.dataSeen = false
	m.ackKnown = false
	m.acksGot = 0
	m.acksNeed = 0
	m.invAfterFill = false
	if m.access.IsWrite() {
		m.state = mshrWaitDataExcl
		l.sendRequest(m, network.OpGetX)
	} else {
		m.state = mshrWaitData
		l.sendRequest(m, network.OpGetS)
	}
}

// onData handles Data (S grant) and DataExcl (E/M grant) responses.
func (l *L1) onData(m *network.Msg) {
	tx, ok := l.mshrs[m.Addr]
	if !ok {
		panic(fmt.Sprintf("l1 %d: data for no txn %v", l.core, m))
	}
	if tx.reissue {
		// Stale grant after an Inv_PRV race (§V-E fig. 11): discard, retry.
		l.reissueTxn(tx)
		return
	}
	switch tx.state {
	case mshrWaitData:
		if tx.invAfterFill {
			// Use-once: commit the load from the message payload, stay I.
			l.missHist.Observe(l.now - tx.start)
			if f := l.forensics; f != nil {
				f.OnMiss(tx.addr, l.core, l.now-tx.start, l.now)
			}
			l.commitFromBuffer(tx, m.Data)
			delete(l.mshrs, m.Addr)
			for _, dm := range tx.deferred {
				l.redispatch(dm) // no copy left: answered from the I state
			}
			return
		}
		st := L1Shared
		if m.Op == network.OpDataExcl {
			st = L1Exclusive
		}
		l.fill(m.Addr, m.Data, st, false, m.ReqMD)
		l.finishTxn(tx)
	case mshrWaitDataExcl:
		if m.Op == network.OpData {
			panic("l1: GetX answered with shared data")
		}
		tx.dataSeen = true
		tx.acksNeed += m.AckCount
		tx.ackKnown = true
		tx.reqMD = tx.reqMD || m.ReqMD
		tx.addr = m.Addr
		// Stash the payload until acks complete.
		tx.payload = m.Data
		l.maybeCompleteExcl(tx)
	case mshrWaitChk:
		// The privatized episode ended while our CHK was in flight; the
		// directory converted it to a demand request (§V-C). The Inv_PRV has
		// already invalidated our PRV copy.
		if l.cache.Peek(m.Addr) != nil {
			panic("l1: CHK->data conversion with line still resident")
		}
		if tx.access.IsWrite() {
			tx.state = mshrWaitDataExcl
		} else {
			tx.state = mshrWaitData
		}
		l.onData(m)
	default:
		panic(fmt.Sprintf("l1 %d: data in state %d", l.core, tx.state))
	}
}

// commitFromBuffer commits a load/prefetch directly from a message payload
// (invalidated-while-pending fill).
func (l *L1) commitFromBuffer(tx *mshr, data []byte) {
	a := tx.access
	if a.Kind == AccessPrefetch {
		if a.Done != nil {
			a.Done(nil)
		}
		return
	}
	if a.Kind != AccessLoad {
		panic("l1: use-once fill for a write")
	}
	off := a.Addr.BlockOffset(l.params.BlockSize)
	if f := l.forensics; f != nil {
		f.OnAccess(a.Addr.BlockAlign(l.params.BlockSize), l.core, off, a.Size, false, l.now)
	}
	val := make([]byte, a.Size)
	copy(val, data[off:off+a.Size])
	if l.obs != nil {
		l.obs.OnLoadCommit(l.core, a.Addr, val, tx.start)
	}
	l.stats.IncID(stats.IDLoadsCommitted)
	if a.Done != nil {
		a.Done(val)
	}
}

func (l *L1) maybeCompleteExcl(tx *mshr) {
	if !tx.dataSeen || !tx.ackKnown || tx.acksGot < tx.acksNeed {
		return
	}
	l.fill(tx.addr, tx.payload, L1Modified, true, tx.reqMD)
	l.finishTxn(tx)
}

func (l *L1) onInvAck(m *network.Msg) {
	tx, ok := l.mshrs[m.Addr]
	if !ok {
		panic(fmt.Sprintf("l1 %d: stray InvAck %v", l.core, m))
	}
	tx.acksGot++
	switch tx.state {
	case mshrWaitDataExcl:
		l.maybeCompleteExcl(tx)
	case mshrWaitUpgrade:
		l.maybeCompleteUpgrade(tx)
	default:
		panic("l1: InvAck in unexpected state")
	}
}

func (l *L1) onUpgradeAck(m *network.Msg) {
	tx, ok := l.mshrs[m.Addr]
	if !ok || tx.state != mshrWaitUpgrade {
		panic(fmt.Sprintf("l1 %d: stray UpgradeAck %v", l.core, m))
	}
	tx.dataSeen = true
	tx.acksNeed += m.AckCount
	tx.ackKnown = true
	l.maybeCompleteUpgrade(tx)
}

func (l *L1) maybeCompleteUpgrade(tx *mshr) {
	if !tx.dataSeen || !tx.ackKnown || tx.acksGot < tx.acksNeed {
		return
	}
	e := l.cache.Peek(tx.addr)
	if e == nil || e.Payload.state != L1Shared {
		panic("l1: upgrade completion without an S line")
	}
	e.Payload.state = L1Modified
	e.Payload.dirty = true
	l.traceState(tx.addr, L1Shared, L1Modified)
	l.finishTxn(tx)
}

func (l *L1) onUpgradeNack(m *network.Msg) {
	tx, ok := l.mshrs[m.Addr]
	if !ok || tx.state != mshrWaitUpgrade {
		panic(fmt.Sprintf("l1 %d: stray UpgradeNack %v", l.core, m))
	}
	// Our S copy raced with another writer: drop it (if still present) and
	// retry as a full GetX (§V-E fig. 12 behaviour in the baseline too).
	if e := l.cache.Peek(tx.addr); e != nil {
		if e.Payload.state != L1Shared {
			panic("l1: Nacked upgrade with non-S line")
		}
		l.cache.Unpin(tx.addr)
		l.cache.Invalidate(tx.addr)
		l.traceState(tx.addr, L1Shared, L1Invalid)
		if l.policy != nil {
			l.policy.Drop(tx.addr)
		}
	}
	l.reissueTxn(tx)
}

func (l *L1) onUpgAckPrv(m *network.Msg) {
	tx, ok := l.mshrs[m.Addr]
	if !ok || tx.state != mshrWaitUpgrade {
		panic(fmt.Sprintf("l1 %d: stray UpgAckPrv %v", l.core, m))
	}
	if tx.reissue {
		// Inv_PRV beat the grant (fig. 12): our copy is gone; retry as GetX.
		l.reissueTxn(tx)
		return
	}
	// The TR_PRV that preceded this grant already moved our line to PRV and
	// allocated a fresh PAM entry; the grant's conflict check covered the
	// touched bytes, which OnAccess records.
	e := l.cache.Peek(tx.addr)
	if e == nil || e.Payload.state != L1Prv {
		panic("l1: UpgAckPrv without a PRV line")
	}
	if l.policy != nil {
		off := tx.access.Addr.BlockOffset(l.params.BlockSize)
		l.policy.OnAccess(tx.addr, off, tx.access.Size, true)
	}
	l.finishTxn(tx)
}

func (l *L1) onDataPrv(m *network.Msg) {
	tx, ok := l.mshrs[m.Addr]
	if !ok {
		panic(fmt.Sprintf("l1 %d: stray Data_PRV %v", l.core, m))
	}
	if tx.reissue {
		l.reissueTxn(tx)
		return
	}
	if tx.state != mshrWaitData && tx.state != mshrWaitDataExcl {
		panic(fmt.Sprintf("l1 %d: Data_PRV in state %d", l.core, tx.state))
	}
	l.fill(m.Addr, m.Data, L1Prv, false, false)
	if e := l.cache.Peek(m.Addr); e != nil {
		e.Payload.base = cloneBytes(e.Payload.data)
	}
	if l.policy != nil && tx.access.Kind != AccessPrefetch {
		off := tx.access.Addr.BlockOffset(l.params.BlockSize)
		l.policy.OnAccess(m.Addr, off, tx.access.Size, tx.access.IsWrite())
	}
	l.finishTxn(tx)
}

func (l *L1) onAckPrv(m *network.Msg) {
	tx, ok := l.mshrs[m.Addr]
	if !ok || tx.state != mshrWaitChk {
		panic(fmt.Sprintf("l1 %d: stray Ack_PRV %v", l.core, m))
	}
	e := l.cache.Peek(m.Addr)
	if e == nil || e.Payload.state != L1Prv {
		panic("l1: Ack_PRV without a PRV line")
	}
	if l.policy != nil {
		off := tx.access.Addr.BlockOffset(l.params.BlockSize)
		l.policy.OnAccess(m.Addr, off, tx.access.Size, tx.access.IsWrite())
	}
	l.finishTxn(tx)
}

// bufferFwd stashes an intervention that raced ahead of our own ownership
// grant; it reports whether the intervention was buffered.
func (l *L1) bufferFwd(m *network.Msg) bool {
	tx, ok := l.mshrs[m.Addr]
	if !ok {
		return false
	}
	switch tx.state {
	case mshrWaitData, mshrWaitDataExcl, mshrWaitUpgrade:
	case mshrWaitChk:
		// A CHK converted to a demand request by a privatization
		// termination (§V-C): the grant is in flight, and the directory
		// already considers us the owner.
		if l.cache.Peek(m.Addr) != nil {
			return false
		}
	default:
		return false
	}
	m.Retain()
	tx.deferred = append(tx.deferred, m)
	return true
}

// onFwdGetS: intervention for a read. The owner supplies data to the
// requestor, refreshes the LLC copy, and downgrades to S (§IV example).
func (l *L1) onFwdGetS(m *network.Msg) {
	e := l.peekAny(m.Addr)
	if e != nil && (e.Payload.state == L1Exclusive || e.Payload.state == L1Modified) {
		l.send(&network.Msg{Op: network.OpData, Dst: m.Requestor, Addr: m.Addr, Data: cloneBytes(e.Payload.data), ReqMD: m.ReqMD})
		l.send(&network.Msg{Op: network.OpDataToDir, Dst: m.Src, Addr: m.Addr, Data: cloneBytes(e.Payload.data), Requestor: l.node})
		l.traceState(m.Addr, e.Payload.state, L1Shared)
		e.Payload.state = L1Shared
		e.Payload.dirty = false
		if l.policy != nil {
			if m.ReqMD {
				// Report our PAM entry (keeping the line) and remember to
				// report again on eviction (§IV).
				if mdR, mdW, ok := l.policy.PeekEntry(m.Addr); ok {
					l.stats.IncID(stats.IDFSMetadataMsgs)
					l.send(&network.Msg{Op: network.OpRepMD, Dst: m.Src, Addr: m.Addr, MDRead: mdR, MDWrite: mdW, HasCopy: true, Requestor: l.node})
				} else {
					l.sendPhantom(m.Src, m.Addr)
				}
			}
			l.policy.SetSendMD(m.Addr, m.ReqMD)
		}
		return
	}
	if wbe, ok := l.wb[m.Addr]; ok {
		// Late intervention: serve from the writeback buffer (§V-D).
		l.send(&network.Msg{Op: network.OpData, Dst: m.Requestor, Addr: m.Addr, Data: cloneBytes(wbe.data), ReqMD: m.ReqMD})
		l.send(&network.Msg{Op: network.OpDataToDir, Dst: m.Src, Addr: m.Addr, Data: cloneBytes(wbe.data), Requestor: l.node})
		if m.ReqMD {
			l.sendPhantom(m.Src, m.Addr)
		}
		return
	}
	if l.bufferFwd(m) {
		return
	}
	panic(fmt.Sprintf("l1 %d: Fwd_GetS with no copy for %v", l.core, m.Addr))
}

// onFwdGetX: intervention for ownership. The owner supplies data to the
// requestor, notifies the directory of the ownership transfer, invalidates.
func (l *L1) onFwdGetX(m *network.Msg) {
	e := l.peekAny(m.Addr)
	if e != nil && (e.Payload.state == L1Exclusive || e.Payload.state == L1Modified) {
		l.send(&network.Msg{Op: network.OpDataExcl, Dst: m.Requestor, Addr: m.Addr, Data: cloneBytes(e.Payload.data), Dirty: true, ReqMD: m.ReqMD})
		l.send(&network.Msg{Op: network.OpXferOwnerAck, Dst: m.Src, Addr: m.Addr, Requestor: l.node})
		l.invalidateAny(m.Addr)
		l.takeAndReportMD(m.Src, m.Addr, m.ReqMD)
		return
	}
	if wbe, ok := l.wb[m.Addr]; ok {
		l.send(&network.Msg{Op: network.OpDataExcl, Dst: m.Requestor, Addr: m.Addr, Data: cloneBytes(wbe.data), Dirty: true, ReqMD: m.ReqMD})
		l.send(&network.Msg{Op: network.OpXferOwnerAck, Dst: m.Src, Addr: m.Addr, Requestor: l.node})
		if m.ReqMD {
			l.sendPhantom(m.Src, m.Addr)
		}
		return
	}
	if l.bufferFwd(m) {
		return
	}
	panic(fmt.Sprintf("l1 %d: Fwd_GetX with no copy for %v", l.core, m.Addr))
}

// takeAndReportMD clears the PAM entry on invalidation and sends REP_MD to
// the directory if metadata was requested; a missing entry with REQ_MD set
// produces a phantom message (§V-D).
func (l *L1) takeAndReportMD(dir network.NodeID, blk memsys.Addr, reqMD bool) {
	if l.policy == nil {
		return
	}
	mdR, mdW, _, ok := l.policy.TakeEntry(blk)
	if !reqMD {
		return
	}
	if ok {
		l.stats.IncID(stats.IDFSMetadataMsgs)
		l.send(&network.Msg{Op: network.OpRepMD, Dst: dir, Addr: blk, MDRead: mdR, MDWrite: mdW, Requestor: l.node})
	} else {
		l.sendPhantom(dir, blk)
	}
}

func (l *L1) sendPhantom(dir network.NodeID, blk memsys.Addr) {
	l.stats.IncID(stats.IDFSPhantomMsgs)
	l.stats.IncID(stats.IDFSMetadataMsgs)
	l.send(&network.Msg{Op: network.OpMDPhantom, Dst: dir, Addr: blk, Requestor: l.node})
}

// onInv handles invalidations: of an S copy (another core is writing), of a
// stale sharer entry (we silently evicted), or a recall of an owned line
// (inclusive-LLC back-invalidation, distinguished by our E/M state).
func (l *L1) onInv(m *network.Msg) {
	e := l.peekAny(m.Addr)
	if e != nil {
		switch e.Payload.state {
		case L1Shared:
			if tx, ok := l.mshrs[m.Addr]; ok && tx.state == mshrWaitUpgrade {
				// SM_A race: invalidate; the directory will Nack our upgrade.
				l.cache.Unpin(m.Addr)
			}
			l.invalidateAny(m.Addr)
			// Requestor identifies the responder: the directory's recall
			// transaction removes exactly this core from its expect set.
			l.send(&network.Msg{Op: network.OpInvAck, Dst: m.Requestor, Addr: m.Addr, ReqMD: m.ReqMD, Requestor: l.node})
			l.takeAndReportMD(m.Src, m.Addr, m.ReqMD)
			return
		case L1Exclusive, L1Modified:
			// LLC back-invalidation recall: return the block to the slice.
			data := cloneBytes(e.Payload.data)
			dirty := e.Payload.dirty
			l.invalidateAny(m.Addr)
			l.send(&network.Msg{Op: network.OpWB, Dst: m.Src, Addr: m.Addr, Data: data, Dirty: dirty, Requestor: l.node})
			l.takeAndReportMD(m.Src, m.Addr, m.ReqMD)
			return
		case L1Prv:
			panic("l1: plain Inv for a PRV line")
		}
	}
	// No copy resident.
	if m.ToOwner {
		// An owner recall: the directory holds us as the E/M owner, so
		// either our eviction writeback is in flight (the directory will
		// absorb and count it) or an ownership grant is in flight (defer
		// the recall until the transaction completes and we hold the data).
		if _, inWB := l.wb[m.Addr]; inWB {
			return
		}
		if tx, ok := l.mshrs[m.Addr]; ok {
			m.Retain()
			tx.deferred = append(tx.deferred, m)
			return
		}
		panic(fmt.Sprintf("l1 %d: owner recall with no copy, no WB, no txn for %v", l.core, m.Addr))
	}
	// Stale invalidation after a silent eviction, or an Inv racing a pending
	// fill (including a CHK converted to a read by a termination).
	if tx, ok := l.mshrs[m.Addr]; ok {
		if tx.state == mshrWaitData ||
			(tx.state == mshrWaitChk && !tx.access.IsWrite()) {
			tx.invAfterFill = true
		}
	}
	l.send(&network.Msg{Op: network.OpInvAck, Dst: m.Requestor, Addr: m.Addr, ReqMD: m.ReqMD, Requestor: l.node})
	if m.ReqMD {
		l.sendPhantom(m.Src, m.Addr)
	}
}

// onTRPrv: the directory is privatizing this block (§V-A). Any core with a
// valid copy ships its PAM entry (or a phantom), clears it, and moves the
// line to PRV keeping the data; the M owner also refreshes the LLC copy.
func (l *L1) onTRPrv(m *network.Msg) {
	// If the directory considers us the owner because of a grant that is
	// still completing (DataExcl in flight, or an acked upgrade awaiting
	// third-party InvAcks), defer until the transaction finishes: the
	// directory is waiting for the owner's data. An upgrade that has not
	// been granted yet (queued at the directory) is the fig. 12 sharer case
	// and is handled immediately below.
	if tx, ok := l.mshrs[m.Addr]; ok {
		owner := tx.state == mshrWaitData || tx.state == mshrWaitDataExcl ||
			(tx.state == mshrWaitUpgrade && tx.dataSeen)
		if owner {
			m.Retain()
			tx.deferred = append(tx.deferred, m)
			return
		}
	}
	e := l.peekAny(m.Addr)
	if e == nil {
		// Copy already gone (silent drop or writeback in flight).
		l.sendPhantomWithCopy(m.Src, m.Addr, false)
		return
	}
	line := &e.Payload
	switch line.state {
	case L1Exclusive, L1Modified:
		l.send(&network.Msg{Op: network.OpDataToDir, Dst: m.Src, Addr: m.Addr, Data: cloneBytes(line.data), Requestor: l.node})
	case L1Shared:
	case L1Prv:
		panic("l1: TR_PRV for an already-PRV line")
	}
	l.traceState(m.Addr, line.state, L1Prv)
	line.state = L1Prv
	line.dirty = false
	line.base = cloneBytes(line.data)
	l.reportMDForPrv(m.Src, m.Addr, l.cache.Peek(m.Addr) != nil)
}

// reportMDForPrv ships and clears the PAM entry for a privatizing block,
// then allocates a fresh empty entry for the privatized episode (only when
// the line is L1-resident: an L2 copy has no PAM entry until promotion).
func (l *L1) reportMDForPrv(dir network.NodeID, blk memsys.Addr, inL1 bool) {
	mdR, mdW, sendMD, ok := l.policy.TakeEntry(blk)
	if ok && sendMD {
		l.stats.IncID(stats.IDFSMetadataMsgs)
		l.send(&network.Msg{Op: network.OpRepMD, Dst: dir, Addr: blk, MDRead: mdR, MDWrite: mdW, HasCopy: true, Requestor: l.node})
	} else {
		l.sendPhantomWithCopy(dir, blk, true)
	}
	if inL1 {
		l.policy.Allocate(blk, false)
	}
}

func (l *L1) sendPhantomWithCopy(dir network.NodeID, blk memsys.Addr, hasCopy bool) {
	l.stats.IncID(stats.IDFSPhantomMsgs)
	l.stats.IncID(stats.IDFSMetadataMsgs)
	l.send(&network.Msg{Op: network.OpMDPhantom, Dst: dir, Addr: blk, HasCopy: hasCopy, Requestor: l.node})
}

// onInvPrv terminates a privatized episode at this core (§V-C).
func (l *L1) onInvPrv(m *network.Msg) {
	e := l.peekAny(m.Addr)
	if e != nil && e.Payload.state == L1Prv {
		data := cloneBytes(e.Payload.data)
		base := cloneBytes(e.Payload.base)
		if tx, ok := l.mshrs[m.Addr]; ok {
			l.cache.Unpin(m.Addr)
			switch tx.state {
			case mshrWaitChk:
				// Our CHK is in flight; the directory answers it after the
				// merge as a converted demand request (§V-C) — which may be
				// a plain grant or, if the block is privatized again by
				// then, a Data_PRV. Convert the transaction accordingly.
				if tx.access.IsWrite() {
					tx.state = mshrWaitDataExcl
				} else {
					tx.state = mshrWaitData
				}
			case mshrWaitUpgrade:
				// Fig. 12 with the line already PRV: the UPG_Ack_PRV grant in
				// flight is stale; reissue when it lands.
				tx.reissue = true
			default:
				panic("l1: Inv_PRV with unexpected transaction on a PRV line")
			}
		}
		l.invalidateAny(m.Addr)
		if l.policy != nil {
			l.policy.Drop(m.Addr)
		}
		l.wb[m.Addr] = &wbEntry{data: data, prv: true}
		l.send(&network.Msg{Op: network.OpPrvWB, Dst: m.Src, Addr: m.Addr, Data: data, Base: base, Requestor: l.node})
		return
	}
	if wbe, ok := l.wb[m.Addr]; ok && wbe.prv {
		// Our eviction PrvWB is already in flight; the directory counts it.
		return
	}
	if tx, ok := l.mshrs[m.Addr]; ok {
		switch tx.state {
		case mshrWaitData, mshrWaitDataExcl:
			// §V-E fig. 11: a Data_PRV grant is in flight to us; respond with
			// a dataless control writeback and reissue once it lands.
			tx.reissue = true
			l.send(&network.Msg{Op: network.OpCtrlWB, Dst: m.Src, Addr: m.Addr, Requestor: l.node})
			return
		case mshrWaitUpgrade:
			// §V-E fig. 12: our UPG_Ack_PRV is in flight; our S data must be
			// written back (we hold a copy), then the grant is reissued.
			e := l.cache.Peek(m.Addr)
			if e == nil || e.Payload.state != L1Shared {
				panic("l1: Inv_PRV upgrade race without S line")
			}
			data := cloneBytes(e.Payload.data)
			l.cache.Unpin(m.Addr)
			l.cache.Invalidate(m.Addr)
			l.traceState(m.Addr, L1Shared, L1Invalid)
			if l.policy != nil {
				l.policy.Drop(m.Addr)
			}
			tx.reissue = true
			l.wb[m.Addr] = &wbEntry{data: data, prv: true}
			// The copy was never written after the S->PRV transition, so it
			// is its own base.
			l.send(&network.Msg{Op: network.OpPrvWB, Dst: m.Src, Addr: m.Addr, Data: data, Base: cloneBytes(data), Requestor: l.node})
			return
		case mshrWaitChk:
			panic("l1: CHK outstanding but line not PRV")
		}
	}
	// No copy and no transaction: dataless response.
	l.send(&network.Msg{Op: network.OpCtrlWB, Dst: m.Src, Addr: m.Addr, Requestor: l.node})
}

// addLE adds b into a (little-endian, wrap-around), in place.
func addLE(a, b []byte) {
	var carry uint16
	for i := range a {
		s := uint16(a[i]) + uint16(b[i]) + carry
		a[i] = byte(s)
		carry = s >> 8
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
