package coherence

import (
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
	"fscoherence/internal/obs"
	"fscoherence/internal/stats"
)

// Pre-interned "From->To" transition labels, indexed by state pair, so that
// emitting a state-transition event never allocates.
var (
	l1TransName  [L1Prv + 1][L1Prv + 1]string
	dirTransName [DirPrv + 1][DirPrv + 1]string
)

func init() {
	for from := L1Invalid; from <= L1Prv; from++ {
		for to := L1Invalid; to <= L1Prv; to++ {
			l1TransName[from][to] = from.String() + "->" + to.String()
		}
	}
	for from := DirIdle; from <= DirPrv; from++ {
		for to := DirIdle; to <= DirPrv; to++ {
			dirTransName[from][to] = from.String() + "->" + to.String()
		}
	}
}

// Histogram names published by the coherence layer.
const (
	HistMissLatency   = "l1d.miss_latency"
	HistEpisodeCycles = "fs.episode_cycles"
	HistEpisodeInvals = "fs.episode_invalidations"
)

// SetObs attaches the observability layer to this L1 (nil disables; the
// default). Must be called before the first Tick.
func (l *L1) SetObs(o *obs.Obs) {
	l.trace = o.GetTracer()
	l.missHist = o.GetMetrics().Hist(HistMissLatency)
}

// SetObserver installs the commit observer after construction (the engine
// uses this to attach commit tracing lazily).
func (l *L1) SetObserver(ob Observer) { l.obs = ob }

// SetForensics attaches the per-line flight recorder to this L1 (nil
// disables; the default). Must be called before the first Tick.
func (l *L1) SetForensics(f *forensics.Recorder) { l.forensics = f }

// SetForensics attaches the per-line flight recorder to this directory
// slice (nil disables; the default). Must be called before the first Tick.
func (d *Dir) SetForensics(f *forensics.Recorder) { d.forensics = f }

// traceState records an L1 line state transition.
func (l *L1) traceState(blk memsys.Addr, from, to L1State) {
	if t := l.trace; t != nil && from != to {
		t.Emit(obs.Event{
			Cycle: l.now, Kind: obs.KindL1State, Core: int16(l.core), Slice: -1,
			Addr: blk, Name: l1TransName[from][to],
		})
	}
}

// SetObs attaches the observability layer to this directory slice (nil
// disables; the default). Must be called before the first Tick.
func (d *Dir) SetObs(o *obs.Obs) {
	d.trace = o.GetTracer()
	d.episodeHist = o.GetMetrics().Hist(HistEpisodeCycles)
	d.episodeInvHist = o.GetMetrics().Hist(HistEpisodeInvals)
}

// setState transitions a directory line's state, tracing the change.
func (d *Dir) setState(e *memsys.Entry[dirLine], to DirState) {
	d.traceState(e.Tag, e.Payload.state, to)
	e.Payload.state = to
}

// tracePrvBegin records the start of a privatized episode (core is the
// requestor that triggered it).
func (d *Dir) tracePrvBegin(blk memsys.Addr, core int) {
	if t := d.trace; t != nil {
		t.Emit(obs.Event{Cycle: d.now, Kind: obs.KindPrvBegin, Core: -1, Slice: int16(d.slice), Addr: blk, Arg: uint64(core)})
	}
	if f := d.forensics; f != nil {
		f.OnDecision(blk, forensics.DecPrvBegin, core, "", 0, d.now)
	}
}

// tracePrvAbort records an aborted privatization initiation.
func (d *Dir) tracePrvAbort(blk memsys.Addr) {
	if t := d.trace; t != nil {
		t.Emit(obs.Event{Cycle: d.now, Kind: obs.KindPrvAbort, Core: -1, Slice: int16(d.slice), Addr: blk})
	}
	if f := d.forensics; f != nil {
		f.OnDecision(blk, forensics.DecPrvAbort, -1, "", 0, d.now)
	}
}

// tracePrvMerge records one core's privatized copy being byte-merged.
func (d *Dir) tracePrvMerge(blk memsys.Addr, core int) {
	d.stats.IncID(stats.IDFSPrvMerges)
	if t := d.trace; t != nil {
		t.Emit(obs.Event{Cycle: d.now, Kind: obs.KindPrvMerge, Core: int16(core), Slice: int16(d.slice), Addr: blk})
	}
	if f := d.forensics; f != nil {
		f.OnDecision(blk, forensics.DecPrvMerge, core, "", 0, d.now)
	}
}

// tracePrvTerminate records the end of a privatized episode and feeds the
// episode-length and invalidations-per-episode histograms.
func (d *Dir) tracePrvTerminate(e *memsys.Entry[dirLine], reason string, invals int) {
	length := d.now - e.Payload.prvSince
	d.episodeHist.Observe(length)
	d.episodeInvHist.Observe(uint64(invals))
	if t := d.trace; t != nil {
		t.Emit(obs.Event{
			Cycle: d.now, Kind: obs.KindPrvTerminate, Core: -1, Slice: int16(d.slice),
			Addr: e.Tag, Name: reason, Arg: length, Arg2: uint64(invals),
		})
	}
	if f := d.forensics; f != nil {
		f.OnDecision(e.Tag, forensics.DecPrvTerminate, -1, reason, length, d.now)
	}
}

// FinalizeObs closes observability for episodes still open when the run
// ends: every line still in DirPrv emits a PrvTerminate event (reason
// "end") and feeds the episode histograms, so traces always contain a
// begin/terminate pair per episode and episode-length statistics include
// episodes that outlive the workload.
func (d *Dir) FinalizeObs(now uint64) {
	if d.trace == nil && d.episodeHist == nil && d.forensics == nil {
		return
	}
	d.now = now
	d.llc.ForEach(func(e *memsys.Entry[dirLine]) {
		if e.Payload.state == DirPrv {
			d.tracePrvTerminate(e, "end", 0)
		}
	})
}

// traceState records a directory line state transition.
func (d *Dir) traceState(blk memsys.Addr, from, to DirState) {
	if t := d.trace; t != nil && from != to {
		t.Emit(obs.Event{
			Cycle: d.now, Kind: obs.KindDirState, Core: -1, Slice: int16(d.slice),
			Addr: blk, Name: dirTransName[from][to],
		})
	}
}
