package spec

// Backend documents one protocol backend selectable with -protocol.
type Backend struct {
	Name    string // coherence.Protocol String() name
	Flag    string // value accepted by the -protocol flag
	Repair  string // what happens when a line is flagged as falsely shared
	Summary string
}

// Backends returns the protocol-backend registry in Protocol enum order.
func Backends() []Backend {
	return []Backend{
		{
			Name: "Baseline", Flag: "baseline",
			Repair: "none",
			Summary: "Plain directory MESI (§VIII-A). No metadata, no repair; " +
				"falsely-shared lines ping-pong.",
		},
		{
			Name: "FSDetect", Flag: "fsdetect",
			Repair: "detect only",
			Summary: "Baseline plus PAM/SAM byte-access metadata and the FC " +
				"counter (§IV): flags falsely-shared lines (`fs.lines_flagged`) " +
				"but never alters coherence actions.",
		},
		{
			Name: "FSLite", Flag: "fslite",
			Repair: "privatize",
			Summary: "The paper's repair (§V): a flagged line is privatized — " +
				"each core gets a writable `L1.PRV` copy, byte-grain CHK " +
				"requests arbitrate overlap, and termination byte-merges the " +
				"copies back.",
		},
		{
			Name: "Hybrid", Flag: "hybrid",
			Repair: "push updates",
			Summary: "Update-on-falsely-shared-lines variant: instead of " +
				"privatizing, the directory remembers the sharers each write " +
				"invalidated on a flagged line (`updSet`) and pushes fresh " +
				"`Upd` copies when the line is next downgraded to `Dir.S` or " +
				"written back — invalidate-then-refresh, keeping exact MESI " +
				"SWMR. Compares the paper's privatization against a classic " +
				"update-style repair on the same detection metadata.",
		},
	}
}
