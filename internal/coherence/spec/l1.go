package spec

import "fscoherence/internal/network"

// t builds one transition row.
func t(state string, event network.Op, guard, action, next string) Transition {
	return Transition{State: state, Event: event, Guard: guard, Action: action, Next: next}
}

// imps builds one impossible marker per state, sharing the reason.
func imps(event network.Op, why string, states ...string) []Impossible {
	out := make([]Impossible, len(states))
	for i, s := range states {
		out[i] = Impossible{State: s, Event: event, Why: why}
	}
	return out
}

// cat concatenates impossible-marker groups.
func cat(groups ...[]Impossible) []Impossible {
	var out []Impossible
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// L1 observed-state names. The controller observes a block as exactly one of
// these, with MSHR > resident line > WB buffer precedence (see L1().States).
const (
	l1I      = "I"
	l1S      = "S"
	l1E      = "E"
	l1M      = "M"
	l1PRV    = "PRV"
	l1ISD    = "IS_D"
	l1IMAD   = "IM_AD"
	l1SMA    = "SM_A"
	l1PRVCHK = "PRV_CHK"
	l1WB     = "WB"
)

// L1 returns the L1 controller's FSM over its observed states.
//
// An observed state is computed per incoming message with strict precedence:
// an outstanding MSHR transaction (IS_D/IM_AD/SM_A/PRV_CHK) wins over a
// resident line in either private level (S/E/M/PRV), which wins over a
// writeback-buffer entry (WB); otherwise the block is I. An MSHR and a WB
// entry can coexist for one block (fig. 11/12 reissue races), as can a
// resident line and a stale WB entry (a grant overtaking the previous
// eviction's WBAck) — precedence picks the state that governs dispatch.
func L1() *FSM {
	noTxn := "a grant always answers an outstanding MSHR transaction"
	noUpg := "answers only an outstanding `Upgrade`"
	f := &FSM{
		Name: "L1",
		States: []StateDoc{
			{l1I, "Not present in any private level; no transaction, no WB-buffer entry."},
			{l1S, "Shared, read-only, clean."},
			{l1E, "Exclusive, clean; silently upgradeable to `L1.M` on a local write."},
			{l1M, "Modified, exclusive, dirty."},
			{l1PRV, "Privatized (FSLite, §V): a *byte-permission-checked* private copy inside a privatized episode, keeping a `base` snapshot from episode entry for reduction merging."},
			{l1ISD, "MSHR: `GetS` issued on a read miss; waiting for `Data`/`DataExcl`/`Data_PRV`."},
			{l1IMAD, "MSHR: `GetX` issued on a write miss; waiting for `DataExcl`/`Data_PRV` plus `InvAck`×`AckCount`."},
			{l1SMA, "MSHR: `Upgrade` issued from `L1.S`; waiting for `UpgradeAck`/`UPG_Ack_PRV`/`UpgradeNack` plus `InvAck`s."},
			{l1PRVCHK, "MSHR: `GetCHK`/`GetXCHK` issued from `L1.PRV` when the PAM lacks byte permission; the line stays resident and pinned."},
			{l1WB, "Writeback buffer: the line was evicted, its `WB`/`Prv_WB` is in flight, awaiting `WBAck`; interventions are served from the buffer (§6.4)."},
		},
		Events: []network.Op{
			network.OpData, network.OpDataExcl, network.OpDataPrv,
			network.OpInvAck, network.OpUpgradeAck, network.OpUpgradeNack,
			network.OpUpgAckPrv, network.OpAckPrv,
			network.OpFwdGetS, network.OpFwdGetX, network.OpInv,
			network.OpTRPrv, network.OpInvPrv, network.OpWBAck, network.OpUpd,
		},
		Transitions: []Transition{
			// Data (S grant) — shares the onData handler with DataExcl.
			t(l1ISD, network.OpData, "", "onData", "`L1.S` (fill; buffered loads commit) — or stay `L1.I` on a use-once fill (`invAfterFill`, §6.5)"),
			t(l1IMAD, network.OpData, "`reissue` set: stale grant after an `Inv_PRV` race (fig. 11)", "onData", "discard and reissue as `GetX` → `L1.IM_AD`"),
			t(l1SMA, network.OpData, "`reissue` set only — a live upgrade is never answered with `Data`", "onData", "discard and reissue as `GetX` → `L1.IM_AD`"),
			t(l1PRVCHK, network.OpData, "line no longer resident: the episode terminated and the directory converted the CHK into a demand request (§V-C)", "onData", "convert to `L1.IS_D`/`L1.IM_AD`, then per grant"),

			// DataExcl (E/M grant).
			t(l1ISD, network.OpDataExcl, "", "onData", "`L1.E` (MESI E grant — no other copies)"),
			t(l1IMAD, network.OpDataExcl, "", "onData", "stash the payload until `InvAck`×`AckCount` collected, then fill dirty → `L1.M`"),
			t(l1SMA, network.OpDataExcl, "`reissue` set only", "onData", "discard and reissue as `GetX` → `L1.IM_AD`"),
			t(l1PRVCHK, network.OpDataExcl, "line no longer resident (converted CHK, §V-C)", "onData", "convert to `L1.IS_D`/`L1.IM_AD`, then per grant"),

			// Data_PRV (privatized grant).
			t(l1ISD, network.OpDataPrv, "", "onDataPrv", "`L1.PRV`: fill, snapshot `base`, record the access's bytes in the fresh PAM entry"),
			t(l1IMAD, network.OpDataPrv, "", "onDataPrv", "`L1.PRV`: fill, snapshot `base`, record bytes"),
			t(l1SMA, network.OpDataPrv, "`reissue` set only", "onDataPrv", "discard and reissue as `GetX` → `L1.IM_AD`"),
			t(l1PRVCHK, network.OpDataPrv, "`reissue` set only — a live CHK is converted to `L1.IS_D`/`L1.IM_AD` by the terminating `Inv_PRV` before any grant can arrive", "onDataPrv", "discard and reissue"),

			// InvAck.
			t(l1IMAD, network.OpInvAck, "", "onInvAck", "count toward `AckCount`; fill completes (`L1.M`) when the data and every ack are in"),
			t(l1SMA, network.OpInvAck, "", "onInvAck", "count; the in-place upgrade completes (`L1.M`) when the grant and every ack are in"),

			// Upgrade grants.
			t(l1SMA, network.OpUpgradeAck, "", "onUpgradeAck", "record `AckCount`; upgrade the S copy in place → `L1.M` once acks complete"),
			t(l1SMA, network.OpUpgradeNack, "", "onUpgradeNack", "drop the S copy (if still held), reissue as `GetX` → `L1.IM_AD`"),
			t(l1SMA, network.OpUpgAckPrv, "", "onUpgAckPrv", "the preceding `TR_PRV` already moved the line to `L1.PRV`: record bytes, commit → `L1.PRV`; with `reissue` (fig. 12 race) the stale grant reissues as `GetX`"),

			// Ack_PRV.
			t(l1PRVCHK, network.OpAckPrv, "PRV copy still resident (pinned by the CHK)", "onAckPrv", "record bytes in PAM, commit → `L1.PRV`"),

			// Fwd_GetS.
			t(l1E, network.OpFwdGetS, "", "onFwdGetS", "`Data` → requestor, `DataToDir` → dir, report/mark PAM (`REQ_MD`) → `L1.S`"),
			t(l1M, network.OpFwdGetS, "", "onFwdGetS", "`Data` → requestor, `DataToDir` → dir, report/mark PAM → `L1.S`"),
			t(l1WB, network.OpFwdGetS, "", "onFwdGetS", "late intervention: serve `Data`+`DataToDir` from the WB buffer (§6.4); unchanged"),
			t(l1S, network.OpFwdGetS, "stale WB-buffer entry present (line re-acquired while the old writeback's `WBAck` is in flight)", "onFwdGetS", "serve from the WB buffer; unchanged"),
			t(l1PRV, network.OpFwdGetS, "stale WB-buffer entry present", "onFwdGetS", "serve from the WB buffer; unchanged"),
			t(l1ISD, network.OpFwdGetS, "", "onFwdGetS", "intervention raced ahead of our own grant: buffer until the transaction completes (§6.2)"),
			t(l1IMAD, network.OpFwdGetS, "", "onFwdGetS", "buffer until the transaction completes"),
			t(l1SMA, network.OpFwdGetS, "", "onFwdGetS", "buffer until the transaction completes"),
			t(l1PRVCHK, network.OpFwdGetS, "WB-buffer entry (fig. 11/12 writeback) or line no longer resident (converted CHK)", "onFwdGetS", "serve from the WB buffer, else buffer until the converted transaction completes"),

			// Fwd_GetX.
			t(l1E, network.OpFwdGetX, "", "onFwdGetX", "`DataExcl(Dirty)` → requestor, `Xfer_Owner_ACK` → dir, take+report PAM → `L1.I`"),
			t(l1M, network.OpFwdGetX, "", "onFwdGetX", "`DataExcl(Dirty)` → requestor, `Xfer_Owner_ACK` → dir, take+report PAM → `L1.I`"),
			t(l1WB, network.OpFwdGetX, "", "onFwdGetX", "serve `DataExcl`+`Xfer_Owner_ACK` from the WB buffer; unchanged"),
			t(l1S, network.OpFwdGetX, "stale WB-buffer entry present", "onFwdGetX", "serve from the WB buffer; unchanged"),
			t(l1PRV, network.OpFwdGetX, "stale WB-buffer entry present", "onFwdGetX", "serve from the WB buffer; unchanged"),
			t(l1ISD, network.OpFwdGetX, "", "onFwdGetX", "buffer until the transaction completes (§6.2)"),
			t(l1IMAD, network.OpFwdGetX, "", "onFwdGetX", "buffer until the transaction completes"),
			t(l1SMA, network.OpFwdGetX, "", "onFwdGetX", "buffer until the transaction completes"),
			t(l1PRVCHK, network.OpFwdGetX, "WB-buffer entry or line no longer resident (converted CHK)", "onFwdGetX", "serve from the WB buffer, else buffer until the converted transaction completes"),

			// Inv.
			t(l1S, network.OpInv, "", "onInv", "invalidate, `InvAck` → `Requestor`, take+report PAM → `L1.I`"),
			t(l1E, network.OpInv, "LLC back-invalidation recall (`ToOwner`)", "onInv", "return the block: `WB` → slice, take+report PAM → `L1.I`"),
			t(l1M, network.OpInv, "LLC back-invalidation recall (`ToOwner`)", "onInv", "return the dirty block: `WB(Dirty)` → slice → `L1.I`"),
			t(l1I, network.OpInv, "not an owner recall (`!ToOwner`)", "onInv", "stale-sharer ack after a silent eviction: `InvAck` (+ `MD_Phantom` if `REQ_MD`); unchanged"),
			t(l1ISD, network.OpInv, "", "onInv", "`ToOwner`: defer behind the in-flight grant; else ack and mark `invAfterFill` (use-once fill, §6.5)"),
			t(l1IMAD, network.OpInv, "", "onInv", "`ToOwner`: defer behind the in-flight grant; else ack (the grant's own acks still complete it)"),
			t(l1SMA, network.OpInv, "", "onInv", "own S copy invalidated under the upgrade: invalidate, ack; the directory's `UpgradeNack` will reissue us as `GetX`"),
			t(l1PRVCHK, network.OpInv, "line no longer resident (converted CHK)", "onInv", "ack; a converted read marks `invAfterFill`"),
			t(l1WB, network.OpInv, "", "onInv", "`ToOwner`: the eviction writeback is in flight and the directory will absorb it — ignore; else ack; unchanged"),

			// TR_PRV.
			t(l1S, network.OpTRPrv, "", "onTRPrv", "ship PAM (`REP_MD`/`MD_Phantom`, `HasCopy=true`), allocate a fresh PAM entry, snapshot `base` → `L1.PRV`"),
			t(l1E, network.OpTRPrv, "", "onTRPrv", "as from `L1.S`, plus `DataToDir` refreshing the LLC → `L1.PRV`"),
			t(l1M, network.OpTRPrv, "", "onTRPrv", "as from `L1.S`, plus `DataToDir` refreshing the LLC → `L1.PRV`"),
			t(l1I, network.OpTRPrv, "", "onTRPrv", "no copy: `MD_Phantom` with `HasCopy=false`; unchanged"),
			t(l1WB, network.OpTRPrv, "", "onTRPrv", "copy already on its way back: `MD_Phantom` with `HasCopy=false`; unchanged"),
			t(l1ISD, network.OpTRPrv, "", "onTRPrv", "the directory holds us as the future owner: defer until the grant completes, then privatize"),
			t(l1IMAD, network.OpTRPrv, "", "onTRPrv", "defer until the grant completes, then privatize"),
			t(l1SMA, network.OpTRPrv, "", "onTRPrv", "granted upgrade (`dataSeen`): defer like an owner; ungranted upgrade: privatize the S copy now (fig. 12)"),
			t(l1PRVCHK, network.OpTRPrv, "line no longer resident (converted CHK)", "onTRPrv", "`MD_Phantom` with `HasCopy=false`"),

			// Inv_PRV.
			t(l1PRV, network.OpInvPrv, "", "onInvPrv", "`Prv_WB(Data, Base)` → dir, drop PAM → `L1.I` (copy sits in the WB buffer until `WBAck`)"),
			t(l1PRVCHK, network.OpInvPrv, "PRV copy resident (pinned by the CHK)", "onInvPrv", "convert the CHK into a demand request (§V-C), write the copy back → `L1.IS_D`/`L1.IM_AD` with the `Prv_WB` in flight"),
			t(l1ISD, network.OpInvPrv, "", "onInvPrv", "fig. 11: a `Data_PRV` grant is in flight — respond `Ctrl_WB`, mark `reissue`"),
			t(l1IMAD, network.OpInvPrv, "", "onInvPrv", "fig. 11: respond `Ctrl_WB`, mark `reissue`"),
			t(l1SMA, network.OpInvPrv, "", "onInvPrv", "fig. 12: our `UPG_Ack_PRV` is in flight — write the S copy back (`Prv_WB`), mark `reissue`; reissues as `GetX` when the stale grant lands"),
			t(l1WB, network.OpInvPrv, "", "onInvPrv", "eviction `Prv_WB` already in flight (the directory counts it): ignore; a non-PRV WB entry answers `Ctrl_WB`"),
			t(l1I, network.OpInvPrv, "", "onInvPrv", "no copy, no transaction: `Ctrl_WB`; unchanged"),
			t(l1S, network.OpInvPrv, "stale termination for a line since re-acquired (the directory collects our episode response before any re-grant, so this does not arise in practice)", "onInvPrv", "`Ctrl_WB`, copy untouched"),
			t(l1E, network.OpInvPrv, "stale termination for a line since re-acquired", "onInvPrv", "`Ctrl_WB`, copy untouched"),
			t(l1M, network.OpInvPrv, "stale termination for a line since re-acquired", "onInvPrv", "`Ctrl_WB`, copy untouched"),

			// WBAck — legal everywhere: the WB-buffer slot is freed if one
			// exists (an MSHR can coexist after fig. 11/12 reissues; a stale
			// ack after a re-grant is a no-op).
			t(l1I, network.OpWBAck, "", "onWBAck", "clear the WB-buffer entry (no-op if already gone)"),
			t(l1S, network.OpWBAck, "", "onWBAck", "clear the stale WB-buffer entry"),
			t(l1E, network.OpWBAck, "", "onWBAck", "clear the stale WB-buffer entry"),
			t(l1M, network.OpWBAck, "", "onWBAck", "clear the stale WB-buffer entry"),
			t(l1PRV, network.OpWBAck, "", "onWBAck", "clear the stale WB-buffer entry"),
			t(l1ISD, network.OpWBAck, "", "onWBAck", "clear the fig. 11/12 WB-buffer entry; the reissued transaction lives on"),
			t(l1IMAD, network.OpWBAck, "", "onWBAck", "clear the fig. 11/12 WB-buffer entry; the reissued transaction lives on"),
			t(l1SMA, network.OpWBAck, "", "onWBAck", "clear the fig. 12 WB-buffer entry; the transaction lives on"),
			t(l1PRVCHK, network.OpWBAck, "", "onWBAck", "clear the WB-buffer entry"),
			t(l1WB, network.OpWBAck, "", "onWBAck", "writeback accepted → `L1.I`"),

			// Upd (Hybrid): unsolicited pushed S copy.
			t(l1I, network.OpUpd, "", "onUpd", "install the pushed block as a clean `L1.S` copy"),
			t(l1S, network.OpUpd, "", "onUpd", "drop: already holding a copy"),
			t(l1E, network.OpUpd, "", "onUpd", "drop: already holding a copy"),
			t(l1M, network.OpUpd, "", "onUpd", "drop: already holding a copy"),
			t(l1PRV, network.OpUpd, "", "onUpd", "drop: already holding a copy"),
			t(l1ISD, network.OpUpd, "", "onUpd", "drop: a demand transaction is outstanding"),
			t(l1IMAD, network.OpUpd, "", "onUpd", "drop: a demand transaction is outstanding"),
			t(l1SMA, network.OpUpd, "", "onUpd", "drop: a demand transaction is outstanding"),
			t(l1PRVCHK, network.OpUpd, "", "onUpd", "drop: a CHK transaction is outstanding"),
			t(l1WB, network.OpUpd, "", "onUpd", "drop: a writeback is in flight"),
		},
		Impossible: cat(
			imps(network.OpData, noTxn, l1I, l1S, l1E, l1M, l1PRV, l1WB),
			imps(network.OpDataExcl, noTxn, l1I, l1S, l1E, l1M, l1PRV, l1WB),
			imps(network.OpDataPrv, noTxn, l1I, l1S, l1E, l1M, l1PRV, l1WB),
			imps(network.OpInvAck, "invalidation acks are only collected by an exclusive-grant transaction", l1I, l1S, l1E, l1M, l1PRV, l1WB),
			imps(network.OpInvAck, "a `GetS` collects no invalidation acks", l1ISD),
			imps(network.OpInvAck, "a CHK collects no invalidation acks", l1PRVCHK),
			imps(network.OpUpgradeAck, noUpg, l1I, l1S, l1E, l1M, l1PRV, l1ISD, l1IMAD, l1PRVCHK, l1WB),
			imps(network.OpUpgradeNack, noUpg, l1I, l1S, l1E, l1M, l1PRV, l1ISD, l1IMAD, l1PRVCHK, l1WB),
			imps(network.OpUpgAckPrv, noUpg, l1I, l1S, l1E, l1M, l1PRV, l1ISD, l1IMAD, l1PRVCHK, l1WB),
			imps(network.OpAckPrv, "answers only an outstanding `GetCHK`/`GetXCHK`", l1I, l1S, l1E, l1M, l1PRV, l1ISD, l1IMAD, l1SMA, l1WB),
			imps(network.OpFwdGetS, "the directory forwarded to a core with no copy, no WB entry and no transaction — its exact owner field (§6.3) rules this out", l1I),
			imps(network.OpFwdGetX, "the directory forwarded to a core with no copy, no WB entry and no transaction — its exact owner field (§6.3) rules this out", l1I),
			imps(network.OpInv, "the directory never plain-invalidates a PRV copy: episodes end with `Inv_PRV`", l1PRV),
			imps(network.OpTRPrv, "a PRV entry never re-initiates privatization", l1PRV),
		),
	}
	return f
}

// L1Core documents the core-initiated transitions (§3.3); these are driven
// by the core's access stream, not by network dispatch, so they carry no
// action binding.
type CoreTransition struct {
	From, Trigger, Action, To string
}

// L1CoreTransitions returns the access-driven transition table.
func L1CoreTransitions() []CoreTransition {
	return []CoreTransition{
		{"`L1.I`", "load", "send `GetS`", "`L1.IS_D`"},
		{"`L1.I`", "store/RMW/reduce", "send `GetX`", "`L1.IM_AD`"},
		{"`L1.S`", "load", "hit", "`L1.S`"},
		{"`L1.S`", "store", "send `Upgrade`", "`L1.SM_A`"},
		{"`L1.E`", "load", "hit", "`L1.E`"},
		{"`L1.E`", "store", "silent upgrade", "`L1.M`"},
		{"`L1.M`", "any", "hit", "`L1.M`"},
		{"`L1.PRV`", "access with PAM byte permission", "hit (records bytes in PAM)", "`L1.PRV`"},
		{"`L1.PRV`", "access without byte permission", "send `GetCHK`/`GetXCHK`", "`L1.PRV_CHK` (line stays `L1.PRV`)"},
	}
}

// L1Evictions returns the eviction table (last private level; with an L2 the
// L1 eviction is a silent demotion first).
func L1Evictions() []CoreTransition {
	return []CoreTransition{
		{"`L1.S`", "eviction", "silent drop (§IV); ship PAM entry if `SEND_MD`", "`L1.I`"},
		{"`L1.E`", "eviction", "clean `WB` (keeps the directory's owner field exact, §6.3), wait `WBAck`", "`L1.I`"},
		{"`L1.M`", "eviction", "dirty `WB`, wait `WBAck`", "`L1.I`"},
		{"`L1.PRV`", "eviction", "`Prv_WB` with `Data`+`Base`, drop PAM, wait `WBAck`", "`L1.I`"},
	}
}
