package spec

import "fscoherence/internal/network"

// Messages returns the complete opcode table in enum order. Class and wire
// size are not stored here — they come from network.ClassOf and
// network.SizeOf, so the rendered table can never disagree with the
// accounting the simulator actually performs (spec_test.go walks the enum to
// keep the list complete).
func Messages() []Message {
	return []Message{
		{network.OpGetS, "L1 → dir", "Read miss (paper: *Get*). Carries the touched byte range (`TouchedOff`/`TouchedLen`, §V-A)."},
		{network.OpGetX, "L1 → dir", "Write miss (read-exclusive)."},
		{network.OpUpgrade, "L1 → dir", "`L1.S` → `L1.M` permission request; no data needed."},
		{network.OpFwdGetS, "dir → owner", "Intervention: serve a read, downgrade to `L1.S`."},
		{network.OpFwdGetX, "dir → owner", "Intervention: transfer ownership, invalidate."},
		{network.OpInv, "dir → sharer", "Invalidate an S copy. `Requestor` names who collects the `InvAck`; `ToOwner` marks an LLC-inclusion recall addressed to the E/M owner (data expected back)."},
		{network.OpInvAck, "sharer → requestor (or dir)", "Invalidation acknowledgment, counted against `AckCount`."},
		{network.OpData, "dir/owner → L1", "Block granting `L1.S`."},
		{network.OpDataExcl, "dir/owner → L1", "Block granting `L1.E` (from dir, no other copies) or `L1.M` (`Dirty`, 3-hop from old owner). `AckCount` pending acks."},
		{network.OpDataToDir, "owner → dir", "Owner's copy refreshing the LLC on `Fwd_GetS`/`TR_PRV`."},
		{network.OpXferOwnerAck, "owner → dir", "Ownership transferred on `Fwd_GetX`."},
		{network.OpUpgradeAck, "dir → L1", "Upgrade granted; `AckCount` third-party acks to collect."},
		{network.OpUpgradeNack, "dir → L1", "Upgrade raced with an invalidation; drop S copy and reissue as `GetX`."},
		{network.OpWB, "L1 → dir", "Writeback of an evicted E/M block (`Dirty` for M). Clean-E writebacks are **not** silent — see §6.3."},
		{network.OpWBAck, "dir → L1", "Writeback accepted; frees the WB-buffer slot."},
		{network.OpFwdNack, "—", "Defined but never sent: the \"forwarded request missed\" case is handled by serving interventions from the writeback buffer (§6.4), so this opcode is kept only for completeness with classic MESI specs."},
		{network.OpRepMD, "L1 → dir", "FSDetect PAM entry (read/write bit-vectors `MDRead`/`MDWrite`, §IV). `HasCopy` on TR_PRV responses marks the sender as a joining PRV sharer."},
		{network.OpMDPhantom, "L1 → dir", "Dataless response when `REQ_MD` was set but the PAM entry is gone (§V-D phantom messages)."},
		{network.OpTRPrv, "dir → sharers/owner", "Privatization is starting; receivers move to `L1.PRV`, ship their PAM entry, the owner also returns `DataToDir` (§V-A)."},
		{network.OpDataPrv, "dir → L1", "Private copy granted; enter `L1.PRV` and snapshot the episode base."},
		{network.OpGetCHK, "L1 → dir", "FSLite byte-grain *read* permission check for a `L1.PRV` block (§V-B)."},
		{network.OpGetXCHK, "L1 → dir", "FSLite byte-grain *write* permission check for a `L1.PRV` block."},
		{network.OpAckPrv, "dir → L1", "CHK granted (no byte conflict)."},
		{network.OpUpgAckPrv, "dir → L1", "Upgrade granted *with* privatization (fig. 12): the requestor's line is already `L1.PRV` via a preceding `TR_PRV`."},
		{network.OpInvPrv, "dir → PRV sharer", "Terminate the privatized episode; the copy is written back for byte-merging (§V-C)."},
		{network.OpPrvWB, "L1 → dir", "Privatized copy returned for merging. Carries both the current block (`Data`) and the episode-entry snapshot (`Base`) so reduction words merge as deltas (§VII)."},
		{network.OpCtrlWB, "L1 → dir", "Dataless response to `Inv_PRV` when no copy is held."},
		{network.OpUpd, "dir → former sharer", "Hybrid backend only: unsolicited `L1.S` grant pushed to a core the last write invalidated on a falsely-shared line. Carries the block but rides the **control** channel so it FIFO-orders behind any `Inv` the directory sent earlier on the same channel; a core that re-acquired the line (or has any transaction or WB-buffer entry for it) drops the push."},
	}
}
