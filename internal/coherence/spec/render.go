package spec

import (
	"fmt"
	"sort"
	"strings"

	"fscoherence/internal/network"
)

// Generated-region markers in PROTOCOL.md. Render() produces the text between
// them; cmd/fsspec splices it in place and `make check` diffs it.
const (
	BeginMarker = "<!-- BEGIN GENERATED: protocol-spec (cmd/fsspec; edit internal/coherence/spec instead) -->"
	EndMarker   = "<!-- END GENERATED: protocol-spec -->"
)

// qual renders an observed-state name with its FSM prefix ("absent" is not a
// state of an entry but the lack of one, so it stays unqualified).
func qual(fsm, state string) string {
	if state == "absent" {
		return "*absent*"
	}
	return fmt.Sprintf("`%s.%s`", fsm, state)
}

func sizeDesc(op network.Op) string {
	const probe = 1 << 20 // marker block size to spot block-sized payloads
	switch network.SizeOf(op, probe) {
	case network.HeaderBytes:
		return fmt.Sprintf("%d B", network.HeaderBytes)
	case network.HeaderBytes + probe:
		return fmt.Sprintf("%d B + block", network.HeaderBytes)
	case network.HeaderBytes + network.MDPayloadBytes:
		return fmt.Sprintf("%d B + %d B", network.HeaderBytes, network.MDPayloadBytes)
	default:
		return "?"
	}
}

// transitionRows renders one FSM's (state, event) transition table, grouping
// states that share an event, guard, action and next-state into one row.
func transitionRows(b *strings.Builder, f *FSM) {
	fmt.Fprintf(b, "| State | Message | Guard | Action / next |\n|---|---|---|---|\n")
	for _, e := range f.Events {
		type group struct {
			states []string
			guard  string
			next   string
		}
		var groups []*group
		for _, tr := range f.Transitions {
			if tr.Event != e {
				continue
			}
			if n := len(groups); n > 0 && groups[n-1].guard == tr.Guard && groups[n-1].next == tr.Next {
				groups[n-1].states = append(groups[n-1].states, tr.State)
				continue
			}
			groups = append(groups, &group{states: []string{tr.State}, guard: tr.Guard, next: tr.Next})
		}
		for _, g := range groups {
			names := make([]string, len(g.states))
			for i, s := range g.states {
				names[i] = qual(f.Name, s)
			}
			guard := g.guard
			if guard == "" {
				guard = "—"
			}
			fmt.Fprintf(b, "| %s | `%v` | %s | %s |\n",
				strings.Join(names, " / "), e, guard, g.next)
		}
	}
}

// impossibleRows renders the complement: pairs the protocol can never
// produce, where the dispatcher panics. Grouped by (event, reason).
func impossibleRows(b *strings.Builder, f *FSM) {
	fmt.Fprintf(b, "| Message | States | Why it cannot happen |\n|---|---|---|\n")
	type key struct {
		e   network.Op
		why string
	}
	var order []key
	grouped := make(map[key][]string)
	for _, im := range f.Impossible {
		k := key{im.Event, im.Why}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], im.State)
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].e < order[j].e })
	for _, k := range order {
		names := make([]string, len(grouped[k]))
		for i, s := range grouped[k] {
			names[i] = qual(f.Name, s)
		}
		fmt.Fprintf(b, "| `%v` | %s | %s |\n", k.e, strings.Join(names, ", "), k.why)
	}
}

func stateTable(b *strings.Builder, f *FSM, names []string) {
	fmt.Fprintf(b, "| State | Meaning |\n|---|---|\n")
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for _, s := range f.States {
		if want[s.Name] {
			fmt.Fprintf(b, "| %s | %s |\n", qual(f.Name, s.Name), s.Meaning)
		}
	}
}

// Render produces PROTOCOL.md sections 2-4 from the spec tables. The output
// is the text between BeginMarker and EndMarker (exclusive); cmd/fsspec
// regenerates the document and protocol_doc_test.go pins the committed copy
// to this function's output.
func Render() string {
	var b strings.Builder

	// ---- §2 ----
	fmt.Fprintf(&b, "## 2. Message table\n\n")
	fmt.Fprintf(&b, "All %d opcodes defined in `internal/network/message.go`, with their virtual\n", len(Messages()))
	fmt.Fprintf(&b, "channel (accounting class, which is also the FIFO channel — see §5), wire\nsize, direction and meaning. Class and size below are computed from\n`network.ClassOf`/`network.SizeOf`, so this table cannot disagree with the\ntraffic accounting the simulator performs.\n\n")
	fmt.Fprintf(&b, "| Opcode | Class | Size | Direction | Meaning |\n|---|---|---|---|---|\n")
	for _, m := range Messages() {
		fmt.Fprintf(&b, "| `%v` | %v | %s | %s | %s |\n",
			m.Op, network.ClassOf(m.Op), sizeDesc(m.Op), m.Direction, m.Meaning)
	}
	fmt.Fprintf(&b, "\n`Msg` also carries simulator-internal fields (`Counted`, `Seq`, retention\nbits) that are invisible on the wire; see the struct's comments.\n\n")
	fmt.Fprintf(&b, "### 2.1 Protocol backends\n\n")
	fmt.Fprintf(&b, "The `-protocol` flag (fsrun/fsexp/fsfuzz) selects which backend drives the\nrepair decision; detection metadata and all fuzzing oracles are\nbackend-generic (EXPERIMENTS.md §\"Comparing protocol backends\").\n\n")
	fmt.Fprintf(&b, "| Backend | `-protocol` | Repair | Summary |\n|---|---|---|---|\n")
	for _, p := range Backends() {
		fmt.Fprintf(&b, "| %s | `%s` | %s | %s |\n", p.Name, p.Flag, p.Repair, p.Summary)
	}
	fmt.Fprintf(&b, "\n")

	// ---- §3 ----
	l1 := L1()
	fmt.Fprintf(&b, "## 3. L1 controller FSM\n\n")
	fmt.Fprintf(&b, "The controller dispatches each incoming message against the block's\n*observed state*, computed with strict precedence: an outstanding MSHR\ntransaction (`L1.IS_D`/`L1.IM_AD`/`L1.SM_A`/`L1.PRV_CHK`) wins over a line\nresident in either private level (`L1.S`/`L1.E`/`L1.M`/`L1.PRV`), which wins\nover a writeback-buffer entry (`L1.WB`); otherwise the block is `L1.I`. An\nMSHR and a WB entry can coexist for one block (fig. 11/12 reissue races), as\ncan a resident line and a stale WB entry (a grant overtaking the previous\neviction's `WBAck`) — precedence picks the state that governs dispatch.\n\n")
	fmt.Fprintf(&b, "### 3.1 Stable states\n\n")
	stateTable(&b, l1, []string{"I", "S", "E", "M", "PRV"})
	fmt.Fprintf(&b, "\n### 3.2 Transient states\n\n")
	fmt.Fprintf(&b, "Transient state lives in the MSHR (`mshr.state`); naming follows\nSorin/Hill/Wood as the paper does. `L1.WB` is the writeback buffer, not an\nMSHR state, but dispatches like one when nothing outranks it.\n\n")
	stateTable(&b, l1, []string{"IS_D", "IM_AD", "SM_A", "PRV_CHK", "WB"})
	fmt.Fprintf(&b, "\nMSHR flags that refine these states (all observable in watchdog dumps,\n§7.3): `invAfterFill` (use-once fill, §6.5), `reissue` (stale-grant races,\n§6.6), `deferred` (buffered directory-initiated messages, §6.2).\n\n")
	fmt.Fprintf(&b, "### 3.3 Core-initiated transitions\n\n")
	fmt.Fprintf(&b, "| From | Access | Action | To |\n|---|---|---|---|\n")
	for _, c := range L1CoreTransitions() {
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", c.From, c.Trigger, c.Action, c.To)
	}
	fmt.Fprintf(&b, "\nEvictions (from the last private level; with an L2 the L1 eviction is a\nsilent demotion first):\n\n")
	fmt.Fprintf(&b, "| From | Action | To |\n|---|---|---|\n")
	for _, c := range L1Evictions() {
		fmt.Fprintf(&b, "| %s | %s | %s |\n", c.From, c.Action, c.To)
	}
	fmt.Fprintf(&b, "\nWhile a block sits in the writeback buffer, new accesses to it are held off\n(`Submit` returns retry) and interventions are served from the buffer (§6.4).\n\n")
	fmt.Fprintf(&b, "### 3.4 Network-initiated transitions\n\n")
	fmt.Fprintf(&b, "One row per (observed state, message) pair the protocol can produce; the\nguard column refines sub-cases the handler distinguishes. Rows are the\ndispatch tables `internal/coherence` executes (dispatch.go builds them from\n`internal/coherence/spec` at init).\n\n")
	transitionRows(&b, l1)
	fmt.Fprintf(&b, "\n### 3.5 Impossible pairs\n\n")
	fmt.Fprintf(&b, "Every remaining (state, message) pair is a protocol bug: the dispatcher\npanics citing the reason below (the fuzzer treats such a panic as a failure).\n\n")
	impossibleRows(&b, l1)
	fmt.Fprintf(&b, "\n")

	// ---- §4 ----
	dir := Dir()
	fmt.Fprintf(&b, "## 4. Directory / LLC slice FSM\n\n")
	fmt.Fprintf(&b, "The slice dispatches against the block's observed state: *absent* when no\ndirectory entry exists, the transaction kind when the entry is busy (a busy\nentry carries exactly one `dirTxn`; later requests park in the entry's\n`pendq` and retry when the transaction ends), otherwise the entry's stable\n`DirState`.\n\n")
	fmt.Fprintf(&b, "### 4.1 Stable states\n\n")
	fmt.Fprintf(&b, "Per-block directory state (`DirState`; the `String()` names follow the\npaper's directory-MESI convention where the owned state prints as `M`):\n\n")
	stateTable(&b, dir, []string{"I", "S", "M", "PRV"})
	fmt.Fprintf(&b, "\n### 4.2 Transient states (transaction kinds)\n\n")
	stateTable(&b, dir, []string{"FWD", "MEM_FILL", "PRV_INIT", "PRV_TERM", "EVICT"})
	fmt.Fprintf(&b, "\nHow each transaction completes:\n\n")
	fmt.Fprintf(&b, "- `Dir.FWD` — `DataToDir` (GetS: → `Dir.S` with {old owner unless it raced\n  a writeback, requestor}) or `Xfer_Owner_ACK` (GetX: → `Dir.M`, new owner).\n  A racing `WB` from the old owner sets `wbRace`; its `WBAck` is deferred to\n  completion (§6.4).\n")
	fmt.Fprintf(&b, "- `Dir.MEM_FILL` — the fill; queued requests are then served *inline* (the\n  first one re-busies and pins the line, guaranteeing progress under set\n  pressure).\n")
	fmt.Fprintf(&b, "- `Dir.PRV_INIT` — commit → `Dir.PRV` (trigger served with\n  `Data_PRV`/`UPG_Ack_PRV`); or abort on a byte conflict (§V-A): roll the\n  joined copies back through `Dir.PRV_TERM`, then retry the trigger as a\n  normal request.\n")
	fmt.Fprintf(&b, "- `Dir.PRV_TERM` — all `Prv_WB`/`Ctrl_WB` collected → merge committed,\n  → `Dir.I`; a held CHK is converted to `GetS`/`GetX` and retried; with\n  `evictAfter` the line is then dropped (inclusion-driven termination).\n")
	fmt.Fprintf(&b, "- `Dir.EVICT` — all `InvAck`s/`WB`s collected → line dropped (dirty data to\n  memory); the displacing request claims the freed way immediately.\n\n")
	fmt.Fprintf(&b, "### 4.3 Transitions\n\n")
	transitionRows(&b, dir)
	fmt.Fprintf(&b, "\nOther termination triggers (§V-C): SAM-entry eviction and external-socket\naccess (`ExternalAccess`) queue *forced* terminations, drained each `Tick`\nwhen the entry is not busy.\n\n")
	fmt.Fprintf(&b, "In FSDetect/FSLite/Hybrid, fetch requests feed the policy's FC counters\n(`OnFetchRequest`); the `Counted` flag stops a retried request from being\ncounted twice. The `REQ_MD` decision rides on invalidations and\ninterventions as the `ReqMD` header bit (§IV).\n\n")
	fmt.Fprintf(&b, "`Prv_WB` merges the responder's last-written bytes (SAM `MergeMask`) into\nthe merge target, and adds `Data − Base` for reduction-marked words (§VII);\nit is accepted during `Dir.PRV_TERM` (into `mergeBuf`), during\n`Dir.PRV_INIT` (an early-evicting joiner), and against a quiescent `Dir.PRV`\nentry (plain PRV eviction, §V-D — prunes the sharer set, keeping it exact).\n\n")
	fmt.Fprintf(&b, "### 4.4 Hybrid update pushes\n\n")
	fmt.Fprintf(&b, "Under `-protocol=hybrid` the privatize directive does not start an episode.\nInstead the directory latches `upd` on the flagged line and remembers, in\n`updSet`, every sharer its subsequent `Inv` fan-outs invalidate (plus the\nold owner displaced by a `Fwd_GetX`). When the line next returns to the\nslice — the owner's `DataToDir` downgrade or an absorbed `WB` — the slice\npushes an `Upd` copy of the fresh block to each remembered core that is not\nalready a sharer or the owner, re-adding it to `sharers` at push time (the\nsuperset invariant of §6.1 covers a core that drops the push). `Upd` rides\nthe **control** channel so it FIFO-orders behind any earlier `Inv` on the\nsame dir → core channel; a core with any transaction, WB entry or resident\ncopy drops it. Exact MESI SWMR is preserved: pushed copies are ordinary\n`L1.S` copies that the next write invalidates and acknowledges before\ncommitting, so every fuzzing oracle applies unchanged. Pushes and installs\nare counted in `fs.upd_pushes`/`fs.upd_installs`.\n\n")

	return b.String()
}
