// Package spec is the machine-readable protocol specification: the single
// source of truth for the message/opcode table, both controller FSMs (L1 and
// directory/LLC slice) and the protocol-backend registry.
//
// The tables here drive the simulator two ways:
//
//   - Dispatch. internal/coherence builds its table-driven transition
//     interpreter from L1() and Dir() at package init: a message is legal in
//     an observed state exactly when the spec holds a Transition for the
//     (state, event) pair, and dispatches to the handler the Transition
//     names. Pairs carrying an Impossible marker panic with the marker's
//     reason. The hand-written switch dispatch is retained behind
//     Params.SwitchDispatch and proven byte-identical in `make equiv`.
//
//   - Documentation. cmd/fsspec renders Render() into PROTOCOL.md §§2–4
//     between generated-region markers; `make check` fails when the
//     committed document drifts from the tables.
//
// Every (state, event) pair of each FSM must be covered by exactly one of a
// Transition (possibly several rows with distinct guards) or an Impossible
// marker; FSM.Check enforces this and spec_test.go gates it. Guards and
// next-states are prose: legality and the action binding are the machine
// contract, the handlers themselves enforce sub-case guards, so the
// interpreter is byte-identical to the switch by construction.
//
// The package depends only on internal/network, so protocol backends,
// controllers and commands can all consume it without cycles.
package spec

import (
	"fmt"

	"fscoherence/internal/network"
)

// Message documents one wire opcode: its accounting class (which is also its
// FIFO virtual channel, PROTOCOL.md §5), direction and meaning.
type Message struct {
	Op        network.Op
	Direction string
	Meaning   string
}

// Transition is one legal (state, event) row of an FSM: on Event in State,
// when Guard holds, the controller runs Action and moves to Next. Guard and
// Next are prose (enforced inside the handlers); State names an observed
// state from the FSM's States list; Action names the handler the dispatcher
// binds the event to — every row of one event must name the same Action.
type Transition struct {
	State  string
	Event  network.Op
	Guard  string // "" = unconditional
	Action string
	Next   string
}

// Impossible marks a (state, event) pair the protocol can never produce;
// the dispatcher panics with Why if it is ever observed.
type Impossible struct {
	State string
	Event network.Op
	Why   string
}

// StateDoc names and documents one observed state.
type StateDoc struct {
	Name    string
	Meaning string
}

// FSM is one controller's complete transition table over its observed
// states. Events lists every opcode the controller accepts; opcodes outside
// the list are protocol errors regardless of state (the dispatcher treats
// them like the hand-written switch's default panic).
type FSM struct {
	Name        string
	States      []StateDoc
	Events      []network.Op
	Transitions []Transition
	Impossible  []Impossible
}

// StateNames returns the observed-state names in declaration order.
func (f *FSM) StateNames() []string {
	out := make([]string, len(f.States))
	for i, s := range f.States {
		out[i] = s.Name
	}
	return out
}

// Check validates the table: every (state, event) pair over States×Events is
// covered by transitions or by exactly one Impossible marker (never both),
// all rows reference declared states and events, and all rows of one event
// agree on the Action. It returns the first violation found.
func (f *FSM) Check() error {
	states := make(map[string]bool, len(f.States))
	for _, s := range f.States {
		if states[s.Name] {
			return fmt.Errorf("%s: duplicate state %q", f.Name, s.Name)
		}
		states[s.Name] = true
	}
	events := make(map[network.Op]bool, len(f.Events))
	for _, e := range f.Events {
		if events[e] {
			return fmt.Errorf("%s: duplicate event %v", f.Name, e)
		}
		events[e] = true
	}
	type pair struct {
		s string
		e network.Op
	}
	legal := make(map[pair]bool)
	action := make(map[network.Op]string)
	for _, t := range f.Transitions {
		if !states[t.State] {
			return fmt.Errorf("%s: transition %v@%s references unknown state", f.Name, t.Event, t.State)
		}
		if !events[t.Event] {
			return fmt.Errorf("%s: transition %v@%s references unlisted event", f.Name, t.Event, t.State)
		}
		if t.Action == "" {
			return fmt.Errorf("%s: transition %v@%s has no action", f.Name, t.Event, t.State)
		}
		if a, ok := action[t.Event]; ok && a != t.Action {
			return fmt.Errorf("%s: event %v maps to conflicting actions %q and %q", f.Name, t.Event, a, t.Action)
		}
		action[t.Event] = t.Action
		legal[pair{t.State, t.Event}] = true
	}
	imposs := make(map[pair]bool)
	for _, im := range f.Impossible {
		if !states[im.State] {
			return fmt.Errorf("%s: impossible %v@%s references unknown state", f.Name, im.Event, im.State)
		}
		if !events[im.Event] {
			return fmt.Errorf("%s: impossible %v@%s references unlisted event", f.Name, im.Event, im.State)
		}
		if im.Why == "" {
			return fmt.Errorf("%s: impossible %v@%s has no reason", f.Name, im.Event, im.State)
		}
		p := pair{im.State, im.Event}
		if legal[p] {
			return fmt.Errorf("%s: %v@%s is both a transition and impossible", f.Name, im.Event, im.State)
		}
		if imposs[p] {
			return fmt.Errorf("%s: duplicate impossible marker %v@%s", f.Name, im.Event, im.State)
		}
		imposs[p] = true
	}
	for _, s := range f.States {
		for _, e := range f.Events {
			p := pair{s.Name, e}
			if !legal[p] && !imposs[p] {
				return fmt.Errorf("%s: %v@%s has neither a transition nor an impossible marker", f.Name, e, s.Name)
			}
		}
	}
	return nil
}
