package spec

import (
	"strings"
	"testing"

	"fscoherence/internal/network"
)

// TestFSMsComplete is the spec-table completeness gate: every state×event
// pair of both FSMs carries a transition or an explicit impossible marker,
// and all structural invariants of FSM.Check hold.
func TestFSMsComplete(t *testing.T) {
	for _, f := range []*FSM{L1(), Dir()} {
		if err := f.Check(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

// TestMessagesCoverEnum pins the opcode table to the network enum: one row
// per opcode, in enum order, nothing missing, nothing extra.
func TestMessagesCoverEnum(t *testing.T) {
	msgs := Messages()
	if len(msgs) != network.NumOps {
		t.Fatalf("Messages() has %d rows, network defines %d opcodes", len(msgs), network.NumOps)
	}
	for i, m := range msgs {
		if int(m.Op) != i {
			t.Errorf("row %d documents %v (enum order violated)", i, m.Op)
		}
		if m.Direction == "" || m.Meaning == "" {
			t.Errorf("%v: empty direction or meaning", m.Op)
		}
	}
}

// TestEventsArePartitioned checks that every opcode is handled somewhere:
// L1-bound opcodes in the L1 FSM, dir-bound opcodes in the Dir FSM, and the
// two never claim the same opcode. FwdNack is the single defined-but-unsent
// opcode.
func TestEventsArePartitioned(t *testing.T) {
	l1 := make(map[network.Op]bool)
	for _, e := range L1().Events {
		l1[e] = true
	}
	dir := make(map[network.Op]bool)
	for _, e := range Dir().Events {
		dir[e] = true
	}
	for op := network.Op(0); int(op) < network.NumOps; op++ {
		switch {
		case l1[op] && dir[op]:
			// InvAck routes to whoever Requestor names: the granted core, or
			// the slice itself during an LLC recall. Both FSMs handle it.
			if op != network.OpInvAck {
				t.Errorf("%v claimed by both FSMs", op)
			}
		case op == network.OpFwdNack:
			if l1[op] || dir[op] {
				t.Errorf("FwdNack is never sent but an FSM lists it")
			}
		case !l1[op] && !dir[op]:
			t.Errorf("%v handled by neither FSM", op)
		}
	}
}

// TestBackends checks the backend registry: unique names and flags, and the
// four protocol enum values all represented.
func TestBackends(t *testing.T) {
	bs := Backends()
	if len(bs) != 4 {
		t.Fatalf("want 4 backends, got %d", len(bs))
	}
	seen := make(map[string]bool)
	for _, p := range bs {
		if p.Name == "" || p.Flag == "" || p.Repair == "" || p.Summary == "" {
			t.Errorf("backend %+v has empty fields", p)
		}
		if seen[p.Flag] {
			t.Errorf("duplicate flag %q", p.Flag)
		}
		seen[p.Flag] = true
	}
}

// TestRenderMentionsEverything: the generated doc names every opcode and
// every observed state of both FSMs (the PROTOCOL.md enum-walking test
// depends on this).
func TestRenderMentionsEverything(t *testing.T) {
	doc := Render()
	for op := network.Op(0); int(op) < network.NumOps; op++ {
		if !strings.Contains(doc, "`"+op.String()+"`") {
			t.Errorf("rendered doc does not name opcode %v", op)
		}
	}
	for _, f := range []*FSM{L1(), Dir()} {
		for _, s := range f.States {
			if s.Name == "absent" {
				continue
			}
			if !strings.Contains(doc, "`"+f.Name+"."+s.Name+"`") {
				t.Errorf("rendered doc does not name state %s.%s", f.Name, s.Name)
			}
		}
	}
	for _, h := range []string{"## 2. Message table", "## 3. L1 controller FSM", "## 4. Directory / LLC slice FSM"} {
		if !strings.Contains(doc, h) {
			t.Errorf("rendered doc missing heading %q", h)
		}
	}
}
