package spec

import "fscoherence/internal/network"

// Directory observed-state names: "absent" (no entry), the four stable
// DirState names, and the five transaction kinds of a busy entry.
const (
	dirAbsent  = "absent"
	dirI       = "I"
	dirS       = "S"
	dirM       = "M"
	dirPRV     = "PRV"
	dirFWD     = "FWD"
	dirMEM     = "MEM_FILL"
	dirPRVINIT = "PRV_INIT"
	dirPRVTERM = "PRV_TERM"
	dirEVICT   = "EVICT"
)

// Dir returns the directory/LLC-slice FSM over its observed states.
//
// The observed state of a block is "absent" when the slice holds no entry;
// the transaction kind when the entry is busy (a busy entry carries exactly
// one dirTxn); otherwise the entry's stable DirState name.
func Dir() *FSM {
	busy := "park in the entry's `pendq`; retried when the transaction completes"
	reqRows := func(op network.Op, atI, atS, atM, atPRV string) []Transition {
		return []Transition{
			t(dirAbsent, op, "", "handleRequest", "allocate an entry (evicting an LLC victim: synchronous drop, `Dir.EVICT` recall or `Dir.PRV_TERM`), fetch from memory → `Dir.MEM_FILL`"),
			t(dirI, op, "", "handleRequest", atI),
			t(dirS, op, "", "handleRequest", atS),
			t(dirM, op, "", "handleRequest", atM),
			t(dirPRV, op, "", "handleRequest", atPRV),
			t(dirFWD, op, "", "handleRequest", busy),
			t(dirMEM, op, "", "handleRequest", busy),
			t(dirPRVINIT, op, "", "handleRequest", busy),
			t(dirPRVTERM, op, "", "handleRequest", busy),
			t(dirEVICT, op, "", "handleRequest", busy),
		}
	}
	f := &FSM{
		Name: "Dir",
		States: []StateDoc{
			{dirAbsent, "No directory entry in the slice; any request allocates one."},
			{dirI, "No L1 copies (the LLC may still hold data)."},
			{dirS, "Read-shared; `sharers` is a **superset** of actual S copies (silent S drops, §6.1)."},
			{dirM, "Owned: exactly one core (`owner`) holds `L1.E` or `L1.M`. The owner field is exact (§6.3)."},
			{dirPRV, "Privatized episode in progress (§V): `sharers` is the **exact** set of cores holding `L1.PRV` copies; byte-grain occupancy lives in the SAM (policy). The entry and its data slot are pinned for the episode."},
			{dirFWD, "An intervention (`Fwd_GetS`/`Fwd_GetX`) is outstanding at the owner."},
			{dirMEM, "A main-memory fetch is in flight (LLC miss, or non-inclusive data refetch with `refetch` preserving the entry's state)."},
			{dirPRVINIT, "Privatization initiation (§V-A): `TR_PRV` sent to all sharers / the owner; waiting for every `REP_MD`/`MD_Phantom` (joiners flagged by `HasCopy`), the owner's data if any, and PMMC = 0 (§V-D)."},
			{dirPRVTERM, "Privatization termination (§V-C): `Inv_PRV` sent to all PRV sharers; `mergeBuf` accumulates the byte-merge until every `Prv_WB`/`Ctrl_WB` is collected."},
			{dirEVICT, "An LLC victim recall: `Inv` to S sharers or `Inv(ToOwner)` to the owner; the line drops when all responses are in."},
		},
		Events: []network.Op{
			network.OpGetS, network.OpGetX, network.OpUpgrade,
			network.OpGetCHK, network.OpGetXCHK,
			network.OpWB, network.OpPrvWB, network.OpCtrlWB,
			network.OpInvAck, network.OpXferOwnerAck, network.OpDataToDir,
			network.OpRepMD, network.OpMDPhantom,
		},
		Transitions: cat2(
			reqRows(network.OpGetS,
				"`DataExcl` (MESI E grant — no other copies) → `Dir.M`",
				"`Data`; add sharer → `Dir.S`",
				"`Fwd_GetS` to the owner, pin the line → `Dir.FWD`",
				"byte check against the SAM: join the episode with `Data_PRV` on *NoConflict*; otherwise mark true sharing and terminate → `Dir.PRV` / `Dir.PRV_TERM`"),
			reqRows(network.OpGetX,
				"`DataExcl` → `Dir.M`",
				"`Inv` to the other sharers, `DataExcl(AckCount=n)` → `Dir.M` (Hybrid: invalidated sharers of a flagged line are remembered in `updSet` for a later `Upd` push)",
				"`Fwd_GetX` to the owner → `Dir.FWD`",
				"byte check: join with `Data_PRV` / terminate → `Dir.PRV` / `Dir.PRV_TERM`"),
			reqRows(network.OpUpgrade,
				"requestor cannot be a sharer here: `UpgradeNack` (its S copy raced with another writer, fig. 12 note); unchanged",
				"from a sharer: `Inv` to others, `UpgradeAck(AckCount=n)` → `Dir.M`; from a non-sharer: `UpgradeNack`",
				"requestor is not a sharer (the owner upgrades silently): `UpgradeNack`; unchanged",
				"from a PRV sharer: byte check → `UPG_Ack_PRV` / terminate → `Dir.PRV` / `Dir.PRV_TERM`; from a non-sharer: `UpgradeNack`"),
			reqRows(network.OpGetCHK,
				"stale CHK from a terminated episode: convert to `GetS` and serve as a demand",
				"stale CHK: convert to `GetS` and serve",
				"stale CHK: convert to `GetS` and serve (→ `Dir.FWD`)",
				"from a current PRV sharer: SAM byte check → `Ack_PRV` on *NoConflict*, else mark true sharing and terminate; from a non-sharer: convert to a joining demand"),
			reqRows(network.OpGetXCHK,
				"stale CHK: convert to `GetX` and serve as a demand",
				"stale CHK: convert to `GetX` and serve",
				"stale CHK: convert to `GetX` and serve (→ `Dir.FWD`)",
				"from a current PRV sharer: SAM byte check → `Ack_PRV` / terminate; from a non-sharer: convert to a joining demand"),
			[]Transition{
				// WB.
				t(dirM, network.OpWB, "from the current owner", "onWB", "absorb (update data if `Dirty`), `WBAck` → `Dir.I` — under Hybrid, pending `updSet` pushes fan out `Upd` copies instead → `Dir.S`"),
				t(dirFWD, network.OpWB, "from the old owner — its eviction raced the intervention", "onWB", "absorb, set `wbRace`, defer the `WBAck` to transaction completion; the intervention is served from the evictor's WB buffer (§6.4)"),
				t(dirEVICT, network.OpWB, "", "onWB", "recall response (or racing eviction): absorb, ack, count toward `expect`; drop the line when complete"),
				t(dirPRVINIT, network.OpWB, "the owner evicted before `TR_PRV` arrived", "onWB", "the writeback carries the awaited data (`dataSeen`)"),

				// Prv_WB.
				t(dirPRV, network.OpPrvWB, "quiescent PRV eviction (§V-D)", "onPrvWB", "merge the responder's last-written bytes (SAM `MergeMask`) plus reduction deltas, `WBAck`, prune the exact sharer set → `Dir.PRV`"),
				t(dirPRVTERM, network.OpPrvWB, "", "onPrvWB", "merge into `mergeBuf`, count toward the termination; commit the merge → `Dir.I` when all responses are in"),
				t(dirPRVINIT, network.OpPrvWB, "an early-evicting joiner", "onPrvWB", "merge and count; the initiation proceeds without the evictor"),

				// Ctrl_WB.
				t(dirPRVTERM, network.OpCtrlWB, "", "onCtrlWB", "dataless response: count toward the termination"),

				// InvAck — tolerated everywhere (superset sharer lists).
				t(dirAbsent, network.OpInvAck, "", "onInvAck", "stray ack from a silently-evicted sharer (§6.1): counted in `dir.stray_acks`"),
				t(dirI, network.OpInvAck, "", "onInvAck", "stray ack: counted in `dir.stray_acks`"),
				t(dirS, network.OpInvAck, "", "onInvAck", "stray ack: counted in `dir.stray_acks`"),
				t(dirM, network.OpInvAck, "", "onInvAck", "stray ack: counted in `dir.stray_acks`"),
				t(dirPRV, network.OpInvAck, "", "onInvAck", "stray ack: counted in `dir.stray_acks`"),
				t(dirFWD, network.OpInvAck, "", "onInvAck", "stray ack: counted in `dir.stray_acks`"),
				t(dirMEM, network.OpInvAck, "", "onInvAck", "stray ack: counted in `dir.stray_acks`"),
				t(dirPRVINIT, network.OpInvAck, "", "onInvAck", "stray ack: counted in `dir.stray_acks`"),
				t(dirPRVTERM, network.OpInvAck, "", "onInvAck", "stray ack: counted in `dir.stray_acks`"),
				t(dirEVICT, network.OpInvAck, "", "onInvAck", "count toward the recall's `expect`; drop the line (dirty data to memory) when complete"),

				// Xfer_Owner_ACK.
				t(dirFWD, network.OpXferOwnerAck, "", "onXferOwnerAck", "ownership transferred (`Fwd_GetX`): record the new owner → `Dir.M`; a deferred `WBAck` (wbRace) is sent now, the pendq drains"),

				// DataToDir.
				t(dirFWD, network.OpDataToDir, "", "onDataToDir", "owner's copy on `Fwd_GetS`: absorb, sharers = {old owner (unless `wbRace`), requestor} → `Dir.S` — under Hybrid, pending `updSet` pushes fan out now"),
				t(dirPRVINIT, network.OpDataToDir, "", "onDataToDir", "the owner's data for the initiation (`dataSeen`); the initiation proceeds"),

				// REP_MD / MD_Phantom — policy feed, tolerated everywhere.
				t(dirAbsent, network.OpRepMD, "", "onRepMD", "feed the PAM bit-vectors into the policy (SAM); the entry is gone, nothing else to do"),
				t(dirI, network.OpRepMD, "", "onRepMD", "feed the policy"),
				t(dirS, network.OpRepMD, "", "onRepMD", "feed the policy"),
				t(dirM, network.OpRepMD, "", "onRepMD", "feed the policy"),
				t(dirPRV, network.OpRepMD, "", "onRepMD", "feed the policy"),
				t(dirFWD, network.OpRepMD, "", "onRepMD", "feed the policy"),
				t(dirMEM, network.OpRepMD, "", "onRepMD", "feed the policy"),
				t(dirPRVINIT, network.OpRepMD, "", "onRepMD", "feed the policy; counts toward the expected responses (`HasCopy` joins the PRV sharer set)"),
				t(dirPRVTERM, network.OpRepMD, "", "onRepMD", "feed the policy"),
				t(dirEVICT, network.OpRepMD, "", "onRepMD", "feed the policy"),
				t(dirAbsent, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC (§V-D); the entry is gone, nothing else to do"),
				t(dirI, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC"),
				t(dirS, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC"),
				t(dirM, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC"),
				t(dirPRV, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC"),
				t(dirFWD, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC"),
				t(dirMEM, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC"),
				t(dirPRVINIT, network.OpMDPhantom, "", "onMDPhantom", "counts toward the expected responses (`HasCopy` joins the PRV sharer set)"),
				t(dirPRVTERM, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC"),
				t(dirEVICT, network.OpMDPhantom, "", "onMDPhantom", "decrement PMMC"),
			},
		),
		Impossible: cat(
			imps(network.OpWB, "inclusion guarantees an entry exists for any L1-cached block", dirAbsent),
			imps(network.OpWB, "only the E/M owner writes back, and `Dir.I` has no owner", dirI),
			imps(network.OpWB, "S copies drop silently (§6.1); only E/M copies write back", dirS),
			imps(network.OpWB, "PRV copies return via `Prv_WB`, never plain `WB`", dirPRV),
			imps(network.OpWB, "a fill transaction holds the entry only while no L1 copy exists (S copies drop silently)", dirMEM),
			imps(network.OpWB, "a termination collects `Prv_WB`/`Ctrl_WB`, never plain `WB`", dirPRVTERM),
			imps(network.OpPrvWB, "only PRV copies (episodes or their termination/initiation) produce `Prv_WB`", dirAbsent, dirI, dirS, dirM, dirFWD, dirMEM, dirEVICT),
			imps(network.OpCtrlWB, "`Ctrl_WB` only answers `Inv_PRV`, which only an open termination sends", dirAbsent, dirI, dirS, dirM, dirPRV, dirFWD, dirMEM, dirPRVINIT, dirEVICT),
			imps(network.OpXferOwnerAck, "only answers an open `Fwd_GetX` intervention", dirAbsent, dirI, dirS, dirM, dirPRV, dirMEM, dirPRVINIT, dirPRVTERM, dirEVICT),
			imps(network.OpDataToDir, "the owner's copy only answers an open `Fwd_GetS` intervention or privatization initiation", dirAbsent, dirI, dirS, dirM, dirPRV, dirMEM, dirPRVTERM, dirEVICT),
		),
	}
	return f
}

// cat2 concatenates transition groups.
func cat2(groups ...[]Transition) []Transition {
	var out []Transition
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
