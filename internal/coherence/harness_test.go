package coherence_test

import (
	"testing"

	. "fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/stats"
)

// harness wires L1s, one-or-more directory slices and a network for direct
// protocol-level testing: accesses are submitted straight to the L1s and the
// harness steps cycles until they complete.
type harness struct {
	t      *testing.T
	params Params
	mode   Protocol
	st     *stats.Set
	net    *network.Network
	mem    *memsys.Memory
	l1s    []*L1
	dirs   []*Dir
	pols   []*core.DirSide
	cycle  uint64
}

// newHarness builds a small system: 4 cores, 1 slice, tiny-but-roomy caches.
func newHarness(t *testing.T, mode Protocol, mutate func(*Params, *core.Config)) *harness {
	p := DefaultParams()
	p.Cores = 4
	p.Slices = 1
	p.L1Entries = 64
	p.L1Ways = 4
	p.LLCEntriesSlice = 256
	p.LLCWays = 8
	cc := core.DefaultConfig(p.Cores, p.BlockSize, mode)
	cc.TauP = 4 // fast privatization in tests
	cc.TauR1 = 4
	if mutate != nil {
		mutate(&p, &cc)
	}
	h := &harness{t: t, params: p, mode: mode, st: stats.NewSet()}
	h.net = network.New(p.Nodes(), p.NetLatency, p.BlockSize, h.st)
	h.mem = memsys.NewMemory(p.BlockSize)
	for i := 0; i < p.Cores; i++ {
		var pol L1Policy
		if mode != Baseline {
			pol = core.NewPAM(cc, i, h.st)
		}
		h.l1s = append(h.l1s, NewL1(i, p, mode, h.net, pol, h.st, nil))
	}
	for s := 0; s < p.Slices; s++ {
		var pol DirPolicy
		if mode != Baseline {
			ds := core.NewDirSide(cc, s, h.st)
			h.pols = append(h.pols, ds)
			pol = ds
		}
		h.dirs = append(h.dirs, NewDir(s, p, mode, h.net, h.mem, pol, h.st))
	}
	return h
}

// step advances one cycle.
func (h *harness) step() {
	h.cycle++
	h.net.SetCycle(h.cycle)
	for _, d := range h.dirs {
		d.Tick(h.cycle)
	}
	for _, l := range h.l1s {
		l.Tick(h.cycle)
	}
}

// run steps until cond holds, failing after maxCycles.
func (h *harness) run(maxCycles int, cond func() bool) {
	h.t.Helper()
	for i := 0; i < maxCycles; i++ {
		if cond() {
			return
		}
		h.step()
	}
	h.t.Fatalf("condition not reached within %d cycles", maxCycles)
}

// settle steps until the whole system is idle.
func (h *harness) settle() {
	h.t.Helper()
	h.run(100000, func() bool {
		if h.net.Pending() != 0 {
			return false
		}
		for _, l := range h.l1s {
			if !l.Idle() {
				return false
			}
		}
		for _, d := range h.dirs {
			if !d.Idle() {
				return false
			}
		}
		return true
	})
}

// load performs a blocking load on core c.
func (h *harness) load(c int, a memsys.Addr, size int) uint64 {
	h.t.Helper()
	var val uint64
	done := false
	acc := &Access{Kind: AccessLoad, Addr: a, Size: size, Done: func(v []byte) {
		done = true
		for i := len(v) - 1; i >= 0; i-- {
			val = val<<8 | uint64(v[i])
		}
	}}
	h.submit(c, acc)
	h.run(100000, func() bool { return done })
	return val
}

// store performs a blocking store on core c.
func (h *harness) store(c int, a memsys.Addr, size int, v uint64) {
	h.t.Helper()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(v >> (8 * i))
	}
	done := false
	acc := &Access{Kind: AccessStore, Addr: a, Size: size, StoreData: data,
		Done: func([]byte) { done = true }}
	h.submit(c, acc)
	h.run(100000, func() bool { return done })
}

// prefetch performs a blocking prefetch on core c.
func (h *harness) prefetch(c int, a memsys.Addr) {
	h.t.Helper()
	done := false
	acc := &Access{Kind: AccessPrefetch, Addr: a, Done: func([]byte) { done = true }}
	h.submit(c, acc)
	h.run(100000, func() bool { return done })
}

// submit retries Submit until the L1 accepts the access.
func (h *harness) submit(c int, acc *Access) {
	h.t.Helper()
	h.run(100000, func() bool {
		return h.l1s[c].Submit(acc) != SubmitRetry
	})
}

// startStore submits a store without waiting; returns a *bool completion flag.
func (h *harness) startStore(c int, a memsys.Addr, size int, v uint64) *bool {
	h.t.Helper()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(v >> (8 * i))
	}
	done := new(bool)
	acc := &Access{Kind: AccessStore, Addr: a, Size: size, StoreData: data,
		Done: func([]byte) { *done = true }}
	h.submit(c, acc)
	return done
}

// dirState returns the directory state of a.
func (h *harness) dirState(a memsys.Addr) DirState {
	s, _ := h.dirs[h.params.HomeSlice(uint64(a))].StateOf(a)
	return s
}
