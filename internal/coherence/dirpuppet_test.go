package coherence_test

import (
	"testing"

	. "fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/stats"
)

// dirPuppet drives a single directory slice with hand-crafted core messages,
// deterministically reaching directory paths that depend on message order
// (writeback races, stray acks, recall crossings).
type dirPuppet struct {
	t     *testing.T
	p     Params
	net   *network.Network
	dir   *Dir
	st    *stats.Set
	cycle uint64
}

func newDirPuppet(t *testing.T, mode Protocol) *dirPuppet {
	p := DefaultParams()
	p.Cores = 4
	p.Slices = 1
	p.LLCEntriesSlice = 8
	p.LLCWays = 2
	st := stats.NewSet()
	net := network.New(p.Nodes(), p.NetLatency, p.BlockSize, st)
	var pol DirPolicy
	if mode != Baseline {
		cc := core.DefaultConfig(p.Cores, p.BlockSize, mode)
		cc.TauP = 4
		cc.TauR1 = 4
		pol = core.NewDirSide(cc, 0, st)
	}
	mem := memsys.NewMemory(p.BlockSize)
	return &dirPuppet{
		t: t, p: p, net: net, st: st,
		dir: NewDir(0, p, mode, net, mem, pol, st),
	}
}

func (dp *dirPuppet) step(n int) {
	for i := 0; i < n; i++ {
		dp.cycle++
		dp.net.SetCycle(dp.cycle)
		dp.dir.Tick(dp.cycle)
	}
}

// sendFrom injects a message from core c to the directory.
func (dp *dirPuppet) sendFrom(c int, m *network.Msg) {
	m.Src = dp.p.L1Node(c)
	m.Dst = dp.p.SliceNode(0)
	if m.Requestor == 0 && m.Op != network.OpInvAck {
		m.Requestor = dp.p.L1Node(c)
	}
	dp.net.Send(m)
	dp.step(int(dp.p.NetLatency) + 2)
}

// expectAt drains core c's inbox until op arrives.
func (dp *dirPuppet) expectAt(c int, op network.Op) *network.Msg {
	dp.t.Helper()
	node := dp.p.L1Node(c)
	for i := 0; i < 20000; i++ {
		if m := dp.net.Recv(node); m != nil {
			if m.Op == op {
				return m
			}
			continue
		}
		dp.step(1)
	}
	dp.t.Fatalf("core %d never received %v", c, op)
	return nil
}

const dblk = memsys.Addr(0x7000)

// warm fills dblk into the LLC and grants it exclusively to core c.
func (dp *dirPuppet) warm(c int) {
	dp.sendFrom(c, &network.Msg{Op: network.OpGetX, Addr: dblk, TouchedOff: 0, TouchedLen: 8})
	dp.step(int(dp.p.MemLatency) + 20)
	dp.expectAt(c, network.OpDataExcl)
}

func TestDirWritebackRaceWithForward(t *testing.T) {
	// Core 0 owns the block and its eviction WB is in flight when core 1's
	// GetX makes the directory forward to core 0. The directory must absorb
	// the WB, wait for the owner's transfer ack, and only then WBAck.
	dp := newDirPuppet(t, Baseline)
	dp.warm(0)

	// Core 1 requests; the directory forwards to core 0.
	dp.sendFrom(1, &network.Msg{Op: network.OpGetX, Addr: dblk, TouchedOff: 8, TouchedLen: 8})
	dp.expectAt(0, network.OpFwdGetX)

	// Core 0's (racing) eviction writeback arrives mid-transaction.
	data := make([]byte, 64)
	data[0] = 0xee
	dp.sendFrom(0, &network.Msg{Op: network.OpWB, Addr: dblk, Data: data, Dirty: true})
	// No WBAck yet: the transaction is still open.
	if m := dp.net.Recv(dp.p.L1Node(0)); m != nil && m.Op == network.OpWBAck {
		t.Fatal("WBAck before the forward completed")
	}

	// Core 0 services the forward from its writeback buffer.
	dp.sendFrom(0, &network.Msg{Op: network.OpXferOwnerAck, Addr: dblk})
	dp.expectAt(0, network.OpWBAck)
	if s, _ := dp.dir.StateOf(dblk); s != DirOwned {
		t.Fatalf("state after transfer = %v", s)
	}
}

func TestDirStrayInvAckTolerated(t *testing.T) {
	dp := newDirPuppet(t, Baseline)
	dp.warm(0)
	// An InvAck with no eviction in progress must be counted as stray, not
	// crash or corrupt state.
	dp.sendFrom(2, &network.Msg{Op: network.OpInvAck, Addr: dblk, Requestor: dp.p.SliceNode(0)})
	if dp.st.Get("dir.stray_acks") != 1 {
		t.Fatalf("stray acks = %d", dp.st.Get("dir.stray_acks"))
	}
	if s, _ := dp.dir.StateOf(dblk); s != DirOwned {
		t.Fatal("state disturbed by stray ack")
	}
}

func TestDirUpgradeFromNonSharerNacked(t *testing.T) {
	dp := newDirPuppet(t, Baseline)
	dp.warm(0)
	// Core 2 was never a sharer; its (stale) upgrade must be Nacked.
	dp.sendFrom(2, &network.Msg{Op: network.OpUpgrade, Addr: dblk, TouchedOff: 0, TouchedLen: 8})
	dp.expectAt(2, network.OpUpgradeNack)
}

func TestDirRequestQueueingDuringForward(t *testing.T) {
	// Requests arriving while a forward transaction is open must queue and
	// then be served in order after completion.
	dp := newDirPuppet(t, Baseline)
	dp.warm(0)
	dp.sendFrom(1, &network.Msg{Op: network.OpGetX, Addr: dblk, TouchedOff: 8, TouchedLen: 8})
	dp.expectAt(0, network.OpFwdGetX)
	// Core 2 and 3 pile on while the transaction is open.
	dp.sendFrom(2, &network.Msg{Op: network.OpGetS, Addr: dblk, TouchedOff: 16, TouchedLen: 8})
	dp.sendFrom(3, &network.Msg{Op: network.OpGetS, Addr: dblk, TouchedOff: 24, TouchedLen: 8})
	if dp.st.Get("dir.pending_queued") < 2 {
		t.Fatalf("queued = %d, want 2", dp.st.Get("dir.pending_queued"))
	}
	// Owner acks the transfer (the data goes core-to-core and never touches
	// the directory); the queued GetS each get a forward to the new owner.
	dp.sendFrom(0, &network.Msg{Op: network.OpXferOwnerAck, Addr: dblk})
	dp.expectAt(1, network.OpFwdGetS)
}

func TestDirInclusionRecallCountsBothResponses(t *testing.T) {
	// Force an LLC eviction of a shared block: both sharers must be
	// invalidated (recall) and counted before the way is reused.
	dp := newDirPuppet(t, Baseline)
	// Two sharers of dblk.
	dp.sendFrom(0, &network.Msg{Op: network.OpGetS, Addr: dblk, TouchedOff: 0, TouchedLen: 8})
	dp.step(int(dp.p.MemLatency) + 20)
	dp.expectAt(0, network.OpDataExcl) // E grant
	dp.sendFrom(1, &network.Msg{Op: network.OpGetS, Addr: dblk, TouchedOff: 0, TouchedLen: 8})
	fwd := dp.expectAt(0, network.OpFwdGetS)
	dp.sendFrom(0, &network.Msg{Op: network.OpDataToDir, Addr: dblk, Data: make([]byte, 64)})
	_ = fwd
	dp.step(50)
	// Fill the second way of the set, then force the eviction of dblk (the
	// LRU way). Set stride for an 8-entry/2-way LLC is 4 blocks.
	stride := memsys.Addr(4 * 64)
	dp.sendFrom(2, &network.Msg{Op: network.OpGetS, Addr: dblk + stride, TouchedOff: 0, TouchedLen: 8})
	dp.step(int(dp.p.MemLatency) + 30)
	dp.expectAt(2, network.OpDataExcl)
	victim := dblk + 2*stride
	dp.sendFrom(3, &network.Msg{Op: network.OpGetS, Addr: victim, TouchedOff: 0, TouchedLen: 8})
	// The recall invalidations go to both sharers of dblk.
	inv0 := dp.expectAt(0, network.OpInv)
	inv1 := dp.expectAt(1, network.OpInv)
	if inv0.Requestor != dp.p.SliceNode(0) || inv1.Requestor != dp.p.SliceNode(0) {
		t.Fatal("recall invalidations must name the directory as requestor")
	}
	// One ack is not enough: core 3 must still be waiting.
	dp.sendFrom(0, &network.Msg{Op: network.OpInvAck, Addr: dblk, Requestor: dp.p.L1Node(0)})
	dp.step(int(dp.p.MemLatency) + 30)
	if m := dp.net.Peek(dp.p.L1Node(3)); m != nil && m.Op == network.OpDataExcl {
		t.Fatal("grant before both sharers acked the recall")
	}
	dp.sendFrom(1, &network.Msg{Op: network.OpInvAck, Addr: dblk, Requestor: dp.p.L1Node(1)})
	dp.step(int(dp.p.MemLatency) + 30)
	dp.expectAt(3, network.OpDataExcl)
	if _, present := dp.dir.StateOf(dblk); present {
		t.Fatal("evicted block still resident")
	}
}
