package coherence_test

import (
	"testing"

	. "fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

const blk = memsys.Addr(0x10000)

func TestColdReadGrantsExclusive(t *testing.T) {
	h := newHarness(t, Baseline, nil)
	if v := h.load(0, blk, 8); v != 0 {
		t.Fatalf("cold load = %d", v)
	}
	// MESI: the only reader gets E.
	if st := h.l1s[0].StateOf(blk); st != L1Exclusive {
		t.Fatalf("L1 state = %v, want E", st)
	}
	if h.dirState(blk) != DirOwned {
		t.Fatalf("dir state = %v, want M(owned)", h.dirState(blk))
	}
}

func TestSilentExclusiveToModified(t *testing.T) {
	h := newHarness(t, Baseline, nil)
	h.load(0, blk, 8)
	msgsBefore := h.st.Get(stats.CtrNetMessages)
	h.store(0, blk, 8, 42) // E->M must be silent (no messages)
	if h.st.Get(stats.CtrNetMessages) != msgsBefore {
		t.Fatal("E->M upgrade generated traffic")
	}
	if st := h.l1s[0].StateOf(blk); st != L1Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestReadSharingDowngradesOwner(t *testing.T) {
	h := newHarness(t, Baseline, nil)
	h.store(0, blk, 8, 7)
	if v := h.load(1, blk, 8); v != 7 {
		t.Fatalf("sharer read %d, want 7", v)
	}
	if h.l1s[0].StateOf(blk) != L1Shared || h.l1s[1].StateOf(blk) != L1Shared {
		t.Fatal("both copies should be S after the intervention")
	}
	if h.dirState(blk) != DirShared {
		t.Fatal("directory should record sharing")
	}
	if h.st.Get(stats.CtrDirInterv) != 1 {
		t.Fatalf("interventions = %d, want 1", h.st.Get(stats.CtrDirInterv))
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	h := newHarness(t, Baseline, nil)
	h.store(0, blk, 8, 1)
	h.load(1, blk, 8)
	h.load(2, blk, 8)
	h.store(1, blk, 8, 2) // S->M upgrade: invalidates cores 0 and 2
	h.settle()
	if h.l1s[1].StateOf(blk) != L1Modified {
		t.Fatal("upgrader should hold M")
	}
	if h.l1s[0].StateOf(blk) != L1Invalid || h.l1s[2].StateOf(blk) != L1Invalid {
		t.Fatal("other sharers should be invalid")
	}
	if v := h.load(2, blk, 8); v != 2 {
		t.Fatalf("reader after upgrade got %d, want 2", v)
	}
}

func TestWriteWriteOwnershipTransfer(t *testing.T) {
	h := newHarness(t, Baseline, nil)
	h.store(0, blk, 8, 10)
	h.store(1, blk+8, 8, 20) // FwdGetX intervention
	h.settle()
	if h.l1s[0].StateOf(blk) != L1Invalid || h.l1s[1].StateOf(blk) != L1Modified {
		t.Fatal("ownership did not transfer")
	}
	// Both writes must be visible.
	if v := h.load(2, blk, 8); v != 10 {
		t.Fatalf("first write lost: %d", v)
	}
	if v := h.load(2, blk+8, 8); v != 20 {
		t.Fatalf("second write lost: %d", v)
	}
}

func TestFigure1PingPong(t *testing.T) {
	// The paper's Fig. 1: repeated writes to disjoint bytes ping-pong the
	// line with one intervention per transfer under the baseline.
	h := newHarness(t, Baseline, nil)
	const rounds = 10
	for i := 0; i < rounds; i++ {
		h.store(0, blk+8, 8, uint64(i))
		h.store(1, blk+16, 8, uint64(i))
	}
	iv := h.st.Get(stats.CtrDirInterv)
	if iv < 2*rounds-2 {
		t.Fatalf("interventions = %d, want ~%d (ping-pong)", iv, 2*rounds)
	}
}

func TestStaleSharerInvalidation(t *testing.T) {
	// A silently evicted sharer receives an Inv for a line it no longer
	// holds and must ack it without state damage.
	h := newHarness(t, Baseline, func(p *Params, _ *core.Config) {
		p.L1Entries = 4
		p.L1Ways = 2
	})
	h.load(1, blk, 8) // core 1 shares the line
	// Force core 1 to silently evict it by filling its tiny cache.
	for i := 1; i <= 4; i++ {
		h.load(1, blk+memsys.Addr(i*0x1000), 8)
	}
	if h.l1s[1].StateOf(blk) != L1Invalid {
		t.Skip("line survived the conflict fills; geometry changed?")
	}
	h.store(0, blk, 8, 3) // dir still lists core 1: stale Inv
	h.settle()
	if v := h.load(1, blk, 8); v != 3 {
		t.Fatalf("reader got %d, want 3", v)
	}
}

func TestWritebackAndRefill(t *testing.T) {
	h := newHarness(t, Baseline, func(p *Params, _ *core.Config) {
		p.L1Entries = 4
		p.L1Ways = 2
	})
	h.store(0, blk, 8, 99)
	// Conflict fills evict the dirty line (writeback).
	for i := 1; i <= 4; i++ {
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	h.settle()
	if h.st.Get(stats.CtrL1DWbDirty) == 0 {
		t.Fatal("no dirty writeback happened")
	}
	if v := h.load(2, blk, 8); v != 99 {
		t.Fatalf("value lost across writeback: %d", v)
	}
}

func TestPrefetchInstallsWithoutTouching(t *testing.T) {
	h := newHarness(t, FSLite, nil)
	h.prefetch(0, blk)
	if st := h.l1s[0].StateOf(blk); st != L1Exclusive && st != L1Shared {
		t.Fatalf("prefetch state = %v", st)
	}
	if h.st.Get(stats.CtrPAMUpdates) != 0 {
		t.Fatal("prefetch must not set PAM bits")
	}
}

func TestLLCRecallOfOwnedLine(t *testing.T) {
	// Shrink the LLC so a fill recalls an owned victim; the dirty data must
	// survive the round trip through memory.
	h := newHarness(t, Baseline, func(p *Params, _ *core.Config) {
		p.LLCEntriesSlice = 4
		p.LLCWays = 2
	})
	h.store(0, blk, 8, 123)
	// Fill the victim's set with other blocks (same set: stride = sets*64).
	stride := memsys.Addr(2 * 64)
	for i := 1; i <= 4; i++ {
		h.load(1, blk+stride*memsys.Addr(i), 8)
	}
	h.settle()
	if h.st.Get(stats.CtrLLCEvicts) == 0 {
		t.Fatal("no LLC eviction was forced")
	}
	if v := h.load(2, blk, 8); v != 123 {
		t.Fatalf("dirty data lost through recall: %d", v)
	}
}
