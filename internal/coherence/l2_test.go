package coherence_test

import (
	"testing"

	. "fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

// withL2 enables a small private L2 on a tiny L1 so promotions and
// hierarchy-exits are constantly exercised.
func withL2(p *Params, _ *core.Config) {
	p.L1Entries = 4
	p.L1Ways = 2
	p.L2Entries = 16
	p.L2Ways = 4
	p.L2HitCycles = 12
}

func TestL2VictimPromotion(t *testing.T) {
	h := newHarness(t, Baseline, withL2)
	h.store(0, blk, 8, 77)
	// Displace the line from the L1 into the L2 (silent: no writeback).
	wbBefore := h.st.Get(stats.CtrL1DWbDirty)
	for i := 1; i <= 4; i++ {
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	if h.st.Get(stats.CtrL1DWbDirty) != wbBefore {
		t.Fatal("L1->L2 movement must not write back to the directory")
	}
	if h.l1s[0].StateOf(blk) != L1Modified {
		t.Fatal("line should still be held (in the L2) as M")
	}
	// Re-access: an L2 hit promotes without directory traffic.
	msgs := h.st.Get(stats.CtrNetMessages)
	if v := h.load(0, blk, 8); v != 77 {
		t.Fatalf("value lost through the L2: %d", v)
	}
	if h.st.Get(stats.CtrNetMessages) != msgs {
		t.Fatal("L2 hit generated directory traffic")
	}
	if h.st.Get("l2.hits") == 0 {
		t.Fatal("L2 hit not recorded")
	}
}

func TestL2EvictionWritesBack(t *testing.T) {
	h := newHarness(t, Baseline, withL2)
	h.store(0, blk, 8, 55)
	// Overflow both levels: the line must eventually leave the hierarchy
	// with a dirty writeback, and another core must read 55.
	for i := 1; i <= 20; i++ {
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	h.settle()
	if h.st.Get(stats.CtrL1DWbDirty) == 0 {
		t.Fatal("no dirty writeback on hierarchy exit")
	}
	if v := h.load(1, blk, 8); v != 55 {
		t.Fatalf("value lost: %d", v)
	}
}

func TestL2ServicesInterventions(t *testing.T) {
	h := newHarness(t, Baseline, withL2)
	h.store(0, blk, 8, 31)
	for i := 1; i <= 4; i++ { // push blk into core 0's L2
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	// Another core's read forwards to core 0; the L2 must answer.
	if v := h.load(1, blk, 8); v != 31 {
		t.Fatalf("intervention served wrong data: %d", v)
	}
	if h.l1s[0].StateOf(blk) != L1Shared {
		t.Fatal("L2 copy should have downgraded to S")
	}
}

func TestL2InvalidationReachesL2(t *testing.T) {
	h := newHarness(t, Baseline, withL2)
	h.load(0, blk, 8)
	h.load(1, blk, 8) // both share
	for i := 1; i <= 4; i++ {
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	// Core 1 writes: the invalidation must kill core 0's L2 copy.
	h.store(1, blk, 8, 9)
	h.settle()
	if h.l1s[0].StateOf(blk) != L1Invalid {
		t.Fatal("L2 copy survived an invalidation")
	}
	if v := h.load(0, blk, 8); v != 9 {
		t.Fatalf("stale read after invalidation: %d", v)
	}
}

func TestL2MetadataShipsAtL1Eviction(t *testing.T) {
	// §VII: the PAM entry is communicated when the line leaves the *L1*,
	// even though the data stays in the private L2.
	h := newHarness(t, FSDetect, withL2)
	// Make the directory interested in metadata for blk (TS unset + an
	// intervention chain sets SEND_MD at core 0).
	h.store(0, blk+8, 8, 1)
	h.load(1, blk, 8) // FwdGetS with REQ_MD: core 0's SEND_MD is set
	mdBefore := h.st.Get(stats.CtrFSMetadataMsgs)
	for i := 1; i <= 4; i++ { // L1 -> L2 movement
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	h.settle()
	if h.st.Get(stats.CtrFSMetadataMsgs) <= mdBefore {
		t.Fatal("PAM entry not shipped at L1 eviction")
	}
}

func TestL2WithFSLitePrivatization(t *testing.T) {
	h := newHarness(t, FSLite, withL2)
	pingPong(h, 12)
	h.settle()
	if h.st.Get(stats.CtrFSPrivatized) == 0 {
		t.Fatal("privatization did not happen with an L2 present")
	}
	// Evict the PRV line into the L2 and keep using it: promotion brings it
	// back as PRV, and fresh PAM bits are re-established through CHKs.
	for i := 1; i <= 4; i++ {
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	h.store(0, blk+8, 8, 1234)
	if v := h.load(0, blk+8, 8); v != 1234 {
		t.Fatalf("PRV value through L2 = %d", v)
	}
	// Termination must collect the copy regardless of which level holds it.
	for i := 1; i <= 4; i++ {
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	got := h.load(2, blk+8, 8) // conflict: terminate
	h.settle()
	if got != 1234 {
		t.Fatalf("merge after L2-resident termination = %d", got)
	}
}

// nonInclusive decouples the directory from a tiny LLC data array: entries
// outlive their data, which is refetched from memory on demand (§VII).
func nonInclusive(p *Params, _ *core.Config) {
	p.NonInclusiveLLC = true
	p.LLCEntriesSlice = 4 // tiny data array
	p.LLCWays = 2
	p.DirEntriesSlice = 64 // roomy sparse directory
	p.DirWays = 8
}

func TestNonInclusiveDataRefetch(t *testing.T) {
	h := newHarness(t, Baseline, nonInclusive)
	h.store(0, blk, 8, 42)
	h.settle()
	// Stream enough blocks through the data array to drop blk's data while
	// its directory entry survives.
	for i := 1; i <= 12; i++ {
		h.load(1, blk+memsys.Addr(i*0x80), 8)
		h.settle()
	}
	// The value must still be recoverable: either the owner forwards it or
	// the (written-back) memory copy is refetched.
	if v := h.load(2, blk, 8); v != 42 {
		t.Fatalf("value lost in non-inclusive mode: %d", v)
	}
}

func TestNonInclusiveSharedDataDrop(t *testing.T) {
	h := newHarness(t, Baseline, nonInclusive)
	// Two sharers of a clean block: dropping its LLC data must not disturb
	// them, and a third reader refetches from memory.
	h.store(0, blk, 8, 7)
	h.load(1, blk, 8) // downgrade to shared; LLC data fresh
	h.settle()
	for i := 1; i <= 12; i++ {
		h.load(2, blk+memsys.Addr(i*0x80), 8)
		h.settle()
	}
	if h.st.Get("llc.data_drops") == 0 {
		t.Skip("data array pressure did not drop the block")
	}
	if v := h.load(3, blk, 8); v != 7 {
		t.Fatalf("refetched value = %d, want 7", v)
	}
}

func TestNonInclusiveFSLite(t *testing.T) {
	// Privatization still works with the sparse directory, and the §VII
	// rule holds: the merge has an LLC base because privatized blocks pin
	// their data slot.
	h := newHarness(t, FSLite, nonInclusive)
	pingPong(h, 12)
	h.settle()
	if h.st.Get(stats.CtrFSPrivatized) == 0 {
		t.Skip("pattern did not privatize under data pressure")
	}
	// Pressure the data array while the episode is live.
	for i := 1; i <= 12; i++ {
		h.load(2, blk+memsys.Addr(i*0x80), 8)
		h.settle()
	}
	// Terminate via conflict and verify the merged values.
	if v := h.load(3, blk+8, 8); v != 12 {
		t.Fatalf("merged value = %d, want 12", v)
	}
	h.settle()
	if v := h.load(3, blk+16, 8); v != 111 {
		t.Fatalf("merged value = %d, want 111", v)
	}
}
