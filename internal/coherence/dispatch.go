package coherence

import (
	"fmt"

	"fscoherence/internal/coherence/spec"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
)

// Table-driven message dispatch, built at package init from the protocol
// tables in internal/coherence/spec. A message is dispatched by (observed
// state, opcode): legal pairs invoke the handler the spec's transition rows
// name (the handlers themselves enforce sub-case guards, so dispatch is
// byte-identical to the hand-written switch), impossible pairs panic with
// the spec's reason, and opcodes outside the FSM's event list panic like the
// switch's default arm. The switch is retained behind Params.SwitchDispatch
// and `make equiv` proves the two identical.

type dispatchEntry struct {
	legal bool
	why   string // reason dispatch must panic, when !legal
}

// Observed-state indices follow the spec FSMs' state declaration order.
const (
	numL1Obs  = 10
	numDirObs = 10
)

var (
	l1Actions  [network.NumOps]func(*L1, *network.Msg)
	l1Legal    [numL1Obs][network.NumOps]dispatchEntry
	dirActions [network.NumOps]func(*Dir, *network.Msg)
	dirLegal   [numDirObs][network.NumOps]dispatchEntry

	l1ObsIdx  map[string]int
	dirObsIdx map[string]int
)

// obsIdx resolves an observed-state name against the spec's state list. A
// miss means a controller state exists that the spec tables don't cover —
// a map lookup would silently alias it to index 0, so fail loudly instead.
func obsIdx(idx map[string]int, fsm, name string) int {
	i, ok := idx[name]
	if !ok {
		panic(fmt.Sprintf("protocol spec: observed state %s.%s is not in internal/coherence/spec", fsm, name))
	}
	return i
}

func buildDispatch[C any](f *spec.FSM, methods map[string]func(C, *network.Msg),
	actions *[network.NumOps]func(C, *network.Msg)) (idx map[string]int, legal [][network.NumOps]dispatchEntry) {
	if err := f.Check(); err != nil {
		panic(fmt.Sprintf("protocol spec: %v", err))
	}
	idx = make(map[string]int, len(f.States))
	for i, s := range f.States {
		idx[s.Name] = i
	}
	legal = make([][network.NumOps]dispatchEntry, len(f.States))
	for _, tr := range f.Transitions {
		fn, ok := methods[tr.Action]
		if !ok {
			panic(fmt.Sprintf("protocol spec: %s names unknown action %q for %v", f.Name, tr.Action, tr.Event))
		}
		actions[tr.Event] = fn // one action per event; FSM.Check enforced it
		legal[idx[tr.State]][tr.Event] = dispatchEntry{legal: true}
	}
	for _, im := range f.Impossible {
		legal[idx[im.State]][im.Event] = dispatchEntry{why: im.Why}
	}
	return idx, legal
}

func init() {
	l1Methods := map[string]func(*L1, *network.Msg){
		"onData":        (*L1).onData,
		"onDataPrv":     (*L1).onDataPrv,
		"onInvAck":      (*L1).onInvAck,
		"onUpgradeAck":  (*L1).onUpgradeAck,
		"onUpgradeNack": (*L1).onUpgradeNack,
		"onUpgAckPrv":   (*L1).onUpgAckPrv,
		"onAckPrv":      (*L1).onAckPrv,
		"onFwdGetS":     (*L1).onFwdGetS,
		"onFwdGetX":     (*L1).onFwdGetX,
		"onInv":         (*L1).onInv,
		"onTRPrv":       (*L1).onTRPrv,
		"onInvPrv":      (*L1).onInvPrv,
		"onWBAck":       (*L1).onWBAck,
		"onUpd":         (*L1).onUpd,
	}
	var l1leg [][network.NumOps]dispatchEntry
	l1ObsIdx, l1leg = buildDispatch(spec.L1(), l1Methods, &l1Actions)
	if len(l1leg) != numL1Obs {
		panic("spec.L1 state count drifted from numL1Obs")
	}
	copy(l1Legal[:], l1leg)

	dirMethods := map[string]func(*Dir, *network.Msg){
		"handleRequest":  (*Dir).handleRequest,
		"onWB":           (*Dir).onWB,
		"onPrvWB":        (*Dir).onPrvWB,
		"onCtrlWB":       (*Dir).onCtrlWB,
		"onInvAck":       (*Dir).onInvAck,
		"onXferOwnerAck": (*Dir).onXferOwnerAck,
		"onDataToDir":    (*Dir).onDataToDir,
		"onRepMD":        (*Dir).onRepMD,
		"onMDPhantom":    (*Dir).onMDPhantom,
	}
	var dirleg [][network.NumOps]dispatchEntry
	dirObsIdx, dirleg = buildDispatch(spec.Dir(), dirMethods, &dirActions)
	if len(dirleg) != numDirObs {
		panic("spec.Dir state count drifted from numDirObs")
	}
	copy(dirLegal[:], dirleg)
}

// observedState computes the spec state index governing dispatch for block a:
// MSHR transaction > resident line (either private level) > WB entry > I.
func (l *L1) observedState(a memsys.Addr) (int, string) {
	if tx := l.mshrs[a]; tx != nil {
		return obsIdx(l1ObsIdx, "L1", tx.state.String()), tx.state.String()
	}
	if e := l.peekAny(a); e != nil && e.Payload.state != L1Invalid {
		return obsIdx(l1ObsIdx, "L1", e.Payload.state.String()), e.Payload.state.String()
	}
	if _, ok := l.wb[a]; ok {
		return l1ObsIdx["WB"], "WB"
	}
	return l1ObsIdx["I"], "I"
}

// observedState computes the spec state index for the slice: absent when no
// entry exists, the transaction kind when busy, else the stable state.
func (d *Dir) observedState(a memsys.Addr) (int, string) {
	e := d.llc.Peek(a) // Peek block-aligns and leaves LRU/stats untouched
	if e == nil {
		return dirObsIdx["absent"], "absent"
	}
	if tx := e.Payload.txn; tx != nil {
		return obsIdx(dirObsIdx, "Dir", tx.kind.String()), tx.kind.String()
	}
	return obsIdx(dirObsIdx, "Dir", e.Payload.state.String()), e.Payload.state.String()
}

// handle dispatches one incoming message through the spec tables (or the
// retained hand-written switch under Params.SwitchDispatch).
func (l *L1) handle(m *network.Msg) {
	if l.params.SwitchDispatch {
		l.handleSwitch(m)
		return
	}
	fn := l1Actions[m.Op]
	if fn == nil {
		panic(fmt.Sprintf("l1 %d: unexpected message %v", l.core, m))
	}
	idx, name := l.observedState(m.Addr)
	if ent := l1Legal[idx][m.Op]; !ent.legal {
		panic(fmt.Sprintf("l1 %d: protocol violation: %v observed in L1.%s (%s): %v",
			l.core, m.Op, name, ent.why, m))
	}
	fn(l, m)
}

// handle dispatches one incoming message through the spec tables (or the
// retained hand-written switch under Params.SwitchDispatch).
func (d *Dir) handle(m *network.Msg) {
	if d.params.SwitchDispatch {
		d.handleSwitch(m)
		return
	}
	fn := dirActions[m.Op]
	if fn == nil {
		panic(fmt.Sprintf("dir %d: unexpected message %v", d.slice, m))
	}
	idx, name := d.observedState(m.Addr)
	if ent := dirLegal[idx][m.Op]; !ent.legal {
		panic(fmt.Sprintf("dir %d: protocol violation: %v observed in Dir.%s (%s): %v",
			d.slice, m.Op, name, ent.why, m))
	}
	fn(d, m)
}
