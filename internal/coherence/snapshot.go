package coherence

import (
	"fmt"

	"fscoherence/internal/memsys"
)

// Checkpoint images for the coherence controllers. Snapshots are taken only
// at drained boundaries (every core held, all in-flight transactions
// retired), where the transient state — MSHRs, writeback buffers, scheduled
// local hits, directory transactions, pending queues, retry/memory queues —
// is empty by construction. Only the stable architectural state needs to
// travel: cache lines with their coherence state, data and exact LRU
// ordering. Idle() is asserted on both save and restore so a torn snapshot
// can never be constructed silently.

// cloneOrNil copies b, preserving nil-ness: line fields like base use nil
// (not empty) to mean "absent", and the warming fast paths test for exactly
// that, so a restore must not manufacture empty non-nil slices.
func cloneOrNil(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// L1LineImage is the serializable payload of one L1 line.
type L1LineImage struct {
	State L1State
	Dirty bool
	Data  []byte
	Base  []byte // PRV-entry block snapshot (nil outside PRV)
}

// L1Image is the serializable state of one L1 controller.
type L1Image struct {
	Now   uint64
	Cache memsys.AssocImage[L1LineImage]
}

// Snapshot captures the L1's stable state. The controller must be idle and
// must not have a private L2 (checkpointing is gated to the two-level
// inclusive hierarchy).
func (l *L1) Snapshot() (L1Image, error) {
	if !l.Idle() {
		return L1Image{}, fmt.Errorf("coherence: snapshot of busy L1 %d (%d mshrs, %d wb, %d local)", l.core, len(l.mshrs), len(l.wb), len(l.local))
	}
	if l.l2 != nil {
		return L1Image{}, fmt.Errorf("coherence: snapshot with private L2 unsupported (core %d)", l.core)
	}
	return L1Image{
		Now: l.now,
		Cache: memsys.SaveAssoc(l.cache, func(v *l1Line) L1LineImage {
			return L1LineImage{State: v.state, Dirty: v.dirty, Data: cloneOrNil(v.data), Base: cloneOrNil(v.base)}
		}),
	}, nil
}

// Restore rebuilds the L1's stable state on a freshly constructed idle
// controller.
func (l *L1) Restore(img L1Image) error {
	if !l.Idle() {
		return fmt.Errorf("coherence: restore into busy L1 %d", l.core)
	}
	if l.l2 != nil {
		return fmt.Errorf("coherence: restore with private L2 unsupported (core %d)", l.core)
	}
	l.now = img.Now
	return memsys.LoadAssoc(l.cache, img.Cache, func(s L1LineImage) l1Line {
		return l1Line{state: s.State, dirty: s.Dirty, data: cloneOrNil(s.Data), base: cloneOrNil(s.Base)}
	})
}

// DirLineImage is the serializable payload of one directory/LLC line.
type DirLineImage struct {
	State    DirState
	Owner    int
	Dirty    bool
	HasData  bool
	Sharers  memsys.CoreSet
	PrvSince uint64
	Data     []byte
}

// DirImage is the serializable state of one LLC slice.
type DirImage struct {
	Now uint64
	LLC memsys.AssocImage[DirLineImage]
}

// Snapshot captures the slice's stable state. The slice must be idle (no
// transactions, queues or pending fills) and inclusive (no sparse data
// directory).
func (d *Dir) Snapshot() (DirImage, error) {
	if !d.Idle() {
		return DirImage{}, fmt.Errorf("coherence: snapshot of busy directory slice %d: %s", d.slice, d.DebugString())
	}
	if d.dataDir != nil {
		return DirImage{}, fmt.Errorf("coherence: snapshot of non-inclusive LLC unsupported (slice %d)", d.slice)
	}
	return DirImage{
		Now: d.now,
		LLC: memsys.SaveAssoc(d.llc, func(v *dirLine) DirLineImage {
			return DirLineImage{
				State:    v.state,
				Owner:    v.owner,
				Dirty:    v.dirty,
				HasData:  v.hasData,
				Sharers:  v.sharers,
				PrvSince: v.prvSince,
				Data:     cloneOrNil(v.data),
			}
		}),
	}, nil
}

// Restore rebuilds the slice's stable state on a freshly constructed idle
// slice.
func (d *Dir) Restore(img DirImage) error {
	if !d.Idle() {
		return fmt.Errorf("coherence: restore into busy directory slice %d", d.slice)
	}
	if d.dataDir != nil {
		return fmt.Errorf("coherence: restore of non-inclusive LLC unsupported (slice %d)", d.slice)
	}
	d.now = img.Now
	return memsys.LoadAssoc(d.llc, img.LLC, func(s DirLineImage) dirLine {
		return dirLine{
			dirHot: dirHot{
				state:    s.State,
				owner:    s.Owner,
				dirty:    s.Dirty,
				hasData:  s.HasData,
				sharers:  s.Sharers,
				prvSince: s.PrvSince,
			},
			data: cloneOrNil(s.Data),
		}
	})
}
