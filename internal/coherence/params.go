// Package coherence implements the simulated cache hierarchy: per-core L1
// data caches kept coherent by a directory-based MESI protocol whose
// directory entries are embedded in the shared, inclusive LLC (the paper's
// baseline, §III and §VIII-A), plus the architectural plumbing for the
// FSDetect and FSLite protocol extensions (REQ_MD piggybacking, metadata
// messages, the PRV stable state, privatization initiation/termination and
// the §V-E races). The false-sharing *policy* — PAM/SAM tables, FC/IC/HC
// counters, true-sharing inference and privatization decisions — lives in
// package core and is attached through the L1Policy and DirPolicy interfaces
// defined here.
package coherence

import "fscoherence/internal/network"

// Protocol selects which coherence protocol a simulation runs.
type Protocol int

const (
	// Baseline is the improved (partially non-blocking) directory MESI
	// protocol of §VIII-A.
	Baseline Protocol = iota
	// FSDetect adds metadata tracking and false-sharing detection (§IV).
	FSDetect
	// FSLite adds on-the-fly repair through privatization (§V).
	FSLite
	// Hybrid repairs by pushing updates instead of privatizing: the
	// directory remembers the sharers each write invalidates on a flagged
	// line and refreshes them with Upd copies when the line next returns to
	// the slice. Exact MESI SWMR is preserved (PROTOCOL.md §4.4).
	Hybrid
)

func (p Protocol) String() string {
	switch p {
	case Baseline:
		return "Baseline"
	case FSDetect:
		return "FSDetect"
	case FSLite:
		return "FSLite"
	case Hybrid:
		return "Hybrid"
	}
	return "Protocol(?)"
}

// Params describes the simulated memory system geometry and latencies.
// Defaults (see DefaultParams) follow the paper's Table II scaled to
// simulation-friendly sizes.
type Params struct {
	Cores     int // number of cores / L1D caches
	BlockSize int // cache line size in bytes (64)

	L1Entries   int // L1D lines per core
	L1Ways      int
	L1HitCycles uint64 // L1D data access latency (3)

	Slices          int // LLC/directory slices
	LLCEntriesSlice int // LLC lines per slice
	LLCWays         int
	LLCTagCycles    uint64 // LLC tag access latency (2)
	LLCDataCycles   uint64 // LLC data access latency (8)

	NetLatency uint64 // base interconnect traversal latency
	MemLatency uint64 // main memory access latency

	ChkCycles uint64 // conflict-check latency for a PRV block (2, Table II)

	// L2Entries/L2Ways/L2HitCycles configure an optional private mid-level
	// cache per core (§VII three-level hierarchy). L2Entries == 0 disables
	// it. The L2 is a victim cache of the L1: lines displaced from the L1
	// move into it (keeping their coherence state), and only L2 evictions
	// talk to the directory. Access metadata lives at the L1 only — the PAM
	// entry is shipped to the SAM when the line leaves the L1, exactly as
	// the paper describes.
	L2Entries   int
	L2Ways      int
	L2HitCycles uint64

	// NonInclusiveLLC decouples the sparse directory from the LLC data
	// array (§VII): directory entries (DirEntriesSlice of them) can track
	// blocks whose data has been dropped from the LLC (LLCEntriesSlice data
	// slots). A privatized block's first writeback re-allocates the data.
	NonInclusiveLLC bool
	DirEntriesSlice int // sparse-directory entries per slice (default 2x LLC)
	DirWays         int

	// MaxMsgsPerCycle bounds how many incoming messages each controller
	// processes per cycle (models controller occupancy).
	MaxMsgsPerCycle int

	// Topology selects the interconnect model: network.TopoFlat (default)
	// is the paper's fixed-latency fabric; TopoRing and TopoMesh route over
	// an on-chip network with HopLatency cycles per link traversal and
	// per-link contention. The address-interleaved HomeSlice mapping is
	// topology-independent.
	Topology network.TopoKind

	// HopLatency is the per-hop router+link latency for ring/mesh
	// topologies (0 picks DefaultHopLatency; ignored when flat).
	HopLatency uint64

	// SwitchDispatch routes controller messages through the retained
	// hand-written switch instead of the spec-table interpreter
	// (dispatch.go). The two are proven byte-identical by `make equiv`;
	// the flag exists for that proof and as an escape hatch.
	SwitchDispatch bool
}

// DefaultHopLatency is the per-hop latency used by ring/mesh topologies when
// Params.HopLatency is zero: a few hops across the fabric cost about as much
// as the flat fabric's fixed NetLatency.
const DefaultHopLatency = 4

// DefaultParams returns the Table II configuration with cache capacities
// scaled down so the synthetic workloads exercise the same contention
// behaviour at simulation-friendly sizes: 8 cores, 32 KB 8-way L1D,
// 64-byte lines, 8 LLC slices.
func DefaultParams() Params {
	return Params{
		Cores:           8,
		BlockSize:       64,
		L1Entries:       512, // 32 KB / 64 B
		L1Ways:          8,
		L1HitCycles:     3,
		Slices:          8,
		LLCEntriesSlice: 4096, // 256 KB per slice; inclusive of all L1s
		LLCWays:         16,
		LLCTagCycles:    2,
		LLCDataCycles:   8,
		NetLatency:      12,
		MemLatency:      120,
		ChkCycles:       2,
		MaxMsgsPerCycle: 4,
	}
}

// L1Node returns the network node ID of core c's L1 controller.
func (p Params) L1Node(c int) network.NodeID { return network.NodeID(c) }

// SliceNode returns the network node ID of directory slice s.
func (p Params) SliceNode(s int) network.NodeID { return network.NodeID(p.Cores + s) }

// HomeSlice returns the directory slice index that owns block address a.
func (p Params) HomeSlice(blockAddr uint64) int {
	return int((blockAddr >> uint(log2(p.BlockSize))) % uint64(p.Slices))
}

// Nodes returns the total number of network endpoints.
func (p Params) Nodes() int { return p.Cores + p.Slices }

// HopLatencyOrDefault returns the effective per-hop latency for ring/mesh
// topologies.
func (p Params) HopLatencyOrDefault() uint64 {
	if p.HopLatency != 0 {
		return p.HopLatency
	}
	return DefaultHopLatency
}

// ApplyTopology installs p's topology on a freshly built network (no-op for
// the flat fabric, keeping the seed configuration byte-identical).
func (p Params) ApplyTopology(n *network.Network) {
	if p.Topology != network.TopoFlat {
		n.SetTopology(p.Topology, p.HopLatencyOrDefault(), p.Cores)
	}
}

// ScaleToCores returns p resized to an n-core machine (n a power of two up
// to memsys.MaxCores): one LLC/directory slice per 8 cores (minimum 8, so
// the default 8-core machine keeps its Table II shape) with the total LLC
// capacity growing half as fast as the core count — big machines have more
// aggregate cache but less per core, matching how commercial CMPs scale.
func (p Params) ScaleToCores(n int) Params {
	if n <= 0 || n == p.Cores {
		return p
	}
	out := p
	out.Cores = n
	slices := n / 8
	if slices < 8 {
		slices = 8
	}
	out.Slices = slices
	// Keep per-slice capacity geometry valid: total LLC = default total x
	// sqrt(n/8)-ish via halving per-slice entries once past 64 cores.
	if n >= 64 {
		out.LLCEntriesSlice = p.LLCEntriesSlice / 2
	}
	return out
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
