package coherence

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fscoherence/internal/network"
)

// TestProtocolDocCoversAllStatesAndOps keeps PROTOCOL.md a living spec: every
// stable and transient FSM state exported by states.go, and every message
// opcode defined in internal/network, must be named (backticked, with its
// component prefix) in the document. Adding a state or opcode without
// documenting it fails tier-1 CI.
func TestProtocolDocCoversAllStatesAndOps(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "PROTOCOL.md"))
	if err != nil {
		t.Fatalf("PROTOCOL.md missing: %v", err)
	}
	doc := string(data)

	var tokens []string
	for _, s := range L1StableStates() {
		tokens = append(tokens, "L1."+s.String())
	}
	for _, s := range L1TransientStates() {
		tokens = append(tokens, "L1."+s)
	}
	for _, s := range DirStableStates() {
		tokens = append(tokens, "Dir."+s.String())
	}
	for _, s := range DirTransientStates() {
		tokens = append(tokens, "Dir."+s)
	}
	for op := network.Op(0); ; op++ {
		name := op.String()
		if name == fmt.Sprintf("Op(%d)", int(op)) {
			break // walked past the last defined opcode
		}
		tokens = append(tokens, name)
	}
	if len(tokens) < 40 { // 9 L1 + 9 dir states + 27 opcodes
		t.Fatalf("enum walk found only %d tokens — state/opcode exports broken?", len(tokens))
	}

	for _, tok := range tokens {
		if !strings.Contains(doc, "`"+tok+"`") {
			t.Errorf("PROTOCOL.md does not document `%s`", tok)
		}
	}
}
