package coherence

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fscoherence/internal/coherence/spec"
)

// The old enum-walking coverage test (every exported state and opcode must be
// backticked somewhere in PROTOCOL.md) is gone: §§2–4 are now generated from
// internal/coherence/spec, whose own TestRenderMentionsEverything proves the
// rendered region names every opcode and every FSM state, and the test below
// pins the committed document to that render. Coverage holds by construction.

// TestProtocolDocGeneratedRegionCurrent pins the committed PROTOCOL.md §§2–4
// to spec.Render(): the region between the generated-region markers must be
// exactly what cmd/fsspec would produce (run `make specdocs` after editing
// internal/coherence/spec).
func TestProtocolDocGeneratedRegionCurrent(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "PROTOCOL.md"))
	if err != nil {
		t.Fatalf("PROTOCOL.md missing: %v", err)
	}
	doc := string(data)
	b := strings.Index(doc, spec.BeginMarker)
	e := strings.Index(doc, spec.EndMarker)
	if b < 0 || e < b {
		t.Fatalf("PROTOCOL.md lacks the generated-region markers")
	}
	region := doc[b+len(spec.BeginMarker) : e]
	want := "\n\n" + spec.Render()
	if region != want {
		t.Errorf("PROTOCOL.md generated region drifted from internal/coherence/spec — run `make specdocs` (region %d bytes, want %d)", len(region), len(want))
	}
}
