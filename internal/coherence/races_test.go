package coherence_test

import (
	"testing"

	. "fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/stats"
)

// puppet drives a single L1 controller with hand-crafted directory messages,
// making the §V-D phantom scenario and the §V-E races (Figs. 11 and 12)
// deterministic regardless of network ordering.
type puppet struct {
	t     *testing.T
	p     Params
	net   *network.Network
	l1    *L1
	st    *stats.Set
	cycle uint64
	dir   network.NodeID
	peer  network.NodeID
}

func newPuppet(t *testing.T, mode Protocol) *puppet {
	p := DefaultParams()
	p.Cores = 2
	p.Slices = 1
	p.L1Entries = 4
	p.L1Ways = 2
	st := stats.NewSet()
	net := network.New(p.Nodes(), p.NetLatency, p.BlockSize, st)
	var pol L1Policy
	if mode != Baseline {
		cc := core.DefaultConfig(p.Cores, p.BlockSize, mode)
		pol = core.NewPAM(cc, 0, st)
	}
	return &puppet{
		t: t, p: p, net: net, st: st,
		l1:   NewL1(0, p, mode, net, pol, st, nil),
		dir:  p.SliceNode(0),
		peer: p.L1Node(1),
	}
}

func (pp *puppet) step(n int) {
	for i := 0; i < n; i++ {
		pp.cycle++
		pp.net.SetCycle(pp.cycle)
		pp.l1.Tick(pp.cycle)
	}
}

// expect drains messages for dst until one with the given opcode arrives.
func (pp *puppet) expect(dst network.NodeID, op network.Op) *network.Msg {
	pp.t.Helper()
	for i := 0; i < 10000; i++ {
		if m := pp.net.Recv(dst); m != nil {
			if m.Op == op {
				return m
			}
			continue // ignore unrelated messages
		}
		pp.step(1)
	}
	pp.t.Fatalf("message %v for node %d never arrived", op, dst)
	return nil
}

// inject sends a message from the directory to the L1.
func (pp *puppet) inject(m *network.Msg) {
	m.Src = pp.dir
	m.Dst = pp.p.L1Node(0)
	pp.net.Send(m)
	pp.step(int(pp.p.NetLatency) + 4)
}

func (pp *puppet) submitStore(a memsys.Addr, v uint64) *bool {
	done := new(bool)
	acc := &Access{Kind: AccessStore, Addr: a, Size: 8,
		StoreData: []byte{byte(v), 0, 0, 0, 0, 0, 0, 0},
		Done:      func([]byte) { *done = true }}
	if pp.l1.Submit(acc) == SubmitRetry {
		pp.t.Fatal("submit rejected")
	}
	return done
}

func (pp *puppet) submitLoad(a memsys.Addr) *bool {
	done := new(bool)
	acc := &Access{Kind: AccessLoad, Addr: a, Size: 8,
		Done: func([]byte) { *done = true }}
	if pp.l1.Submit(acc) == SubmitRetry {
		pp.t.Fatal("submit rejected")
	}
	return done
}

func blockData() []byte { return make([]byte, 64) }

func TestRacePhantomMetadataDeterministic(t *testing.T) {
	// §V-D: core 0 holds B in M; it evicts B (writeback in flight, PAM entry
	// gone) and then receives a late Fwd_GetX with REQ_MD: it must serve the
	// data from the writeback buffer and send a dataless phantom message.
	pp := newPuppet(t, FSDetect)
	const a = memsys.Addr(0x10000)

	// Acquire M.
	done := pp.submitStore(a, 7)
	gx := pp.expect(pp.dir, network.OpGetX)
	pp.inject(&network.Msg{Op: network.OpDataExcl, Addr: gx.Addr, Data: blockData()})
	pp.step(50)
	if !*done {
		t.Fatal("store never completed")
	}

	// Evict via two same-set fills (the set holds 2 ways).
	for i := 1; i <= 2; i++ {
		d := pp.submitLoad(a + memsys.Addr(i*0x80))
		gs := pp.expect(pp.dir, network.OpGetS)
		pp.inject(&network.Msg{Op: network.OpDataExcl, Addr: gs.Addr, Data: blockData()})
		pp.step(50)
		if !*d {
			t.Fatal("fill load never completed")
		}
	}
	// The dirty writeback must be in flight (unacked).
	wb := pp.expect(pp.dir, network.OpWB)
	if wb.Addr != a || !wb.Dirty {
		t.Fatalf("writeback wrong: %v", wb)
	}

	// Late intervention with REQ_MD.
	pp.inject(&network.Msg{Op: network.OpFwdGetX, Addr: a, Requestor: pp.peer, ReqMD: true})
	data := pp.expect(pp.peer, network.OpDataExcl)
	if data.Data[0] != 7 {
		t.Fatalf("forwarded data lost the store: %d", data.Data[0])
	}
	pp.expect(pp.dir, network.OpXferOwnerAck)
	pp.expect(pp.dir, network.OpMDPhantom)
	if pp.st.Get(stats.CtrFSPhantomMsgs) != 1 {
		t.Fatal("phantom counter wrong")
	}
}

func TestRaceFig11InvPrvBeatsDataPrv(t *testing.T) {
	// §V-E Fig. 11: core 0's GetX was granted with Data_PRV, but a
	// termination's Inv_PRV arrives first. The core answers with a dataless
	// Ctrl_WB and reissues the request when the stale grant lands.
	pp := newPuppet(t, FSLite)
	const a = memsys.Addr(0x20000)

	done := pp.submitStore(a, 9)
	pp.expect(pp.dir, network.OpGetX)

	// Termination overtakes the grant.
	pp.inject(&network.Msg{Op: network.OpInvPrv, Addr: a})
	pp.expect(pp.dir, network.OpCtrlWB)
	if *done {
		t.Fatal("store completed from a revoked grant")
	}

	// The stale Data_PRV arrives: discarded, GetX reissued.
	pp.inject(&network.Msg{Op: network.OpDataPrv, Addr: a, Data: blockData()})
	pp.expect(pp.dir, network.OpGetX)
	if *done {
		t.Fatal("store completed before the reissued grant")
	}

	// Serve the reissue normally.
	pp.inject(&network.Msg{Op: network.OpDataExcl, Addr: a, Data: blockData()})
	pp.step(50)
	if !*done {
		t.Fatal("store never completed after the reissue")
	}
	if pp.l1.StateOf(a) != L1Modified {
		t.Fatalf("final state = %v", pp.l1.StateOf(a))
	}
}

func TestRaceFig12UpgradeVsTermination(t *testing.T) {
	// §V-E Fig. 12: core 0's Upgrade triggered privatization (TR_PRV seen,
	// S copy turned PRV) but the episode terminates before UPG_Ack_PRV
	// arrives: the core writes its copy back, and the late grant is
	// discarded and reissued as a GetX.
	pp := newPuppet(t, FSLite)
	const a = memsys.Addr(0x30000)

	// Acquire an S copy. The grant carries REQ_MD (as a 3-hop intervention
	// response would), so the SEND_MD bit is set and TR_PRV ships REP_MD.
	done := pp.submitLoad(a)
	pp.expect(pp.dir, network.OpGetS)
	shared := blockData()
	shared[0] = 5
	pp.inject(&network.Msg{Op: network.OpData, Addr: a, Data: shared, ReqMD: true})
	pp.step(50)
	if !*done {
		t.Fatal("load never completed")
	}
	if pp.l1.StateOf(a) != L1Shared {
		t.Fatalf("state = %v, want S", pp.l1.StateOf(a))
	}

	// Upgrade in flight...
	wdone := pp.submitStore(a, 6)
	pp.expect(pp.dir, network.OpUpgrade)

	// ...privatization starts: TR_PRV makes the copy PRV and ships metadata.
	pp.inject(&network.Msg{Op: network.OpTRPrv, Addr: a, Requestor: pp.p.L1Node(0)})
	md := pp.expect(pp.dir, network.OpRepMD)
	if !md.HasCopy {
		t.Fatal("upgrader must report that it kept a copy")
	}
	if pp.l1.StateOf(a) != L1Prv {
		t.Fatalf("state after TR_PRV = %v, want PRV", pp.l1.StateOf(a))
	}

	// Termination beats the grant: the PRV copy is written back.
	pp.inject(&network.Msg{Op: network.OpInvPrv, Addr: a})
	prvwb := pp.expect(pp.dir, network.OpPrvWB)
	if prvwb.Data[0] != 5 {
		t.Fatalf("written-back copy corrupted: %d", prvwb.Data[0])
	}
	pp.inject(&network.Msg{Op: network.OpWBAck, Addr: a})

	// The stale UPG_Ack_PRV arrives: reissue as GetX.
	pp.inject(&network.Msg{Op: network.OpUpgAckPrv, Addr: a})
	pp.expect(pp.dir, network.OpGetX)
	pp.inject(&network.Msg{Op: network.OpDataExcl, Addr: a, Data: shared})
	pp.step(50)
	if !*wdone {
		t.Fatal("store never completed after the reissue")
	}
	if pp.l1.StateOf(a) != L1Modified {
		t.Fatalf("final state = %v", pp.l1.StateOf(a))
	}
}

func TestRaceUpgradeNackAfterInv(t *testing.T) {
	// Baseline upgrade race: an Inv lands while the upgrade is pending; the
	// directory then Nacks, and the store retries as a full GetX.
	pp := newPuppet(t, Baseline)
	const a = memsys.Addr(0x40000)

	done := pp.submitLoad(a)
	pp.expect(pp.dir, network.OpGetS)
	pp.inject(&network.Msg{Op: network.OpData, Addr: a, Data: blockData()})
	pp.step(50)
	if !*done {
		t.Fatal("load never completed")
	}

	wdone := pp.submitStore(a, 3)
	pp.expect(pp.dir, network.OpUpgrade)
	// Another core's write invalidates our S copy first.
	pp.inject(&network.Msg{Op: network.OpInv, Addr: a, Requestor: pp.peer})
	pp.expect(pp.peer, network.OpInvAck)
	// Nack arrives: reissue as GetX.
	pp.inject(&network.Msg{Op: network.OpUpgradeNack, Addr: a})
	pp.expect(pp.dir, network.OpGetX)
	pp.inject(&network.Msg{Op: network.OpDataExcl, Addr: a, Data: blockData()})
	pp.step(50)
	if !*wdone {
		t.Fatal("store never completed")
	}
}

func TestRaceDeferredRecallDuringGrant(t *testing.T) {
	// An owner recall (ToOwner Inv) arrives while our DataExcl grant is in
	// flight: the recall must be deferred and answered with a writeback
	// after the store commits, so no data is lost.
	pp := newPuppet(t, Baseline)
	const a = memsys.Addr(0x50000)

	done := pp.submitStore(a, 8)
	pp.expect(pp.dir, network.OpGetX)
	// Recall overtakes the grant.
	pp.inject(&network.Msg{Op: network.OpInv, Addr: a, Requestor: pp.dir, ToOwner: true})
	// Grant arrives; the store commits, then the deferred recall answers.
	data := blockData()
	data[8] = 0xaa
	pp.inject(&network.Msg{Op: network.OpDataExcl, Addr: a, Data: data})
	wb := pp.expect(pp.dir, network.OpWB)
	if !*done {
		t.Fatal("store never committed")
	}
	if wb.Data[0] != 8 || wb.Data[8] != 0xaa {
		t.Fatalf("recalled data wrong: %v", wb.Data[:9])
	}
	if pp.l1.StateOf(a) != L1Invalid {
		t.Fatal("line must be gone after the recall")
	}
}

func TestRaceInvalidationDuringPendingFill(t *testing.T) {
	// An Inv overtakes a (slow, data-class) S grant: the fill is used once
	// for the pending load and not cached.
	pp := newPuppet(t, Baseline)
	const a = memsys.Addr(0x60000)

	var got byte
	hit := false
	acc := &Access{Kind: AccessLoad, Addr: a, Size: 1, Done: func(v []byte) {
		got = v[0]
		hit = true
	}}
	if pp.l1.Submit(acc) == SubmitRetry {
		t.Fatal("submit rejected")
	}
	pp.expect(pp.dir, network.OpGetS)
	pp.inject(&network.Msg{Op: network.OpInv, Addr: a, Requestor: pp.peer})
	pp.expect(pp.peer, network.OpInvAck)
	data := blockData()
	data[0] = 0x5c
	pp.inject(&network.Msg{Op: network.OpData, Addr: a, Data: data})
	pp.step(50)
	if !hit || got != 0x5c {
		t.Fatalf("use-once fill failed: hit=%v got=%#x", hit, got)
	}
	if pp.l1.StateOf(a) != L1Invalid {
		t.Fatal("use-once fill must not install the line")
	}
}
