package coherence

import (
	"encoding/binary"
	"fmt"

	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

// Warmer is the functional-warming fast path of the interval-sampling engine
// (internal/sample): it applies memory operations to the full architectural
// state — L1 caches, directory/LLC, PAM/SAM metadata and memory values — as a
// sequence of synchronous whole-protocol transactions, with no network
// messages, no timing and no transient states. Because every transaction
// completes before the next access starts, the machine is in a quiescent
// stable state after every Access call, which is exactly the state a detailed
// window resumes from.
//
// Fidelity contract:
//
//   - Architectural state (cache contents, coherence states, sharer sets,
//     PAM/SAM metadata, block values) evolves exactly as the detailed
//     protocol would under a quiescent, race-free execution of the same
//     access sequence. The transient-race paths of the detailed protocol
//     (§V-E figs. 11-12, phantom-after-writeback, deferred interventions)
//     cannot arise because warming never has two transactions in flight.
//   - Functional counters (hits, misses, fills, evictions, commits,
//     privatizations, terminations, metadata messages, memory traffic)
//     accrue with the same increments the detailed handlers perform, so
//     functionally-accrued statistics remain exact across warming windows.
//   - Timing counters (cycles, stall cycles, network traffic) do not accrue;
//     the sampling engine estimates them from detailed windows. Episode
//     lengths (fs.prv_cycles) accrue in compressed warming time and are
//     approximate under sampling.
//
// The warmer requires the two-level inclusive configuration (no private L2,
// no non-inclusive LLC); the sampling front-end rejects other machines.
type Warmer struct {
	params Params
	mode   Protocol
	l1s    []*L1
	dirs   []*Dir
	mem    *memsys.Memory
	now    uint64

	// pool recycles block-sized byte buffers (line data, PRV base snapshots,
	// termination merge buffers) so steady-state warming allocates nothing.
	pool [][]byte
}

// NewWarmer builds a warmer over the system's controllers. It panics if the
// machine shape is outside the warmable configuration.
func NewWarmer(p Params, mode Protocol, l1s []*L1, dirs []*Dir, mem *memsys.Memory) *Warmer {
	for _, l := range l1s {
		if l.l2 != nil {
			panic("coherence: warmer requires a machine without private L2s")
		}
	}
	for _, d := range dirs {
		if d.dataDir != nil {
			panic("coherence: warmer requires an inclusive LLC")
		}
	}
	return &Warmer{params: p, mode: mode, l1s: l1s, dirs: dirs, mem: mem}
}

// SetNow updates the warmer's notion of simulated time (the sampling engine
// advances it once per warming round; it stamps privatization episodes).
func (w *Warmer) SetNow(now uint64) { w.now = now }

func (w *Warmer) get() []byte {
	if n := len(w.pool); n > 0 {
		b := w.pool[n-1]
		w.pool = w.pool[:n-1]
		return b
	}
	return make([]byte, w.params.BlockSize)
}

func (w *Warmer) put(b []byte) {
	if cap(b) >= w.params.BlockSize {
		w.pool = append(w.pool, b[:w.params.BlockSize])
	}
}

func (w *Warmer) home(blk memsys.Addr) *Dir {
	return w.dirs[w.params.HomeSlice(uint64(blk))]
}

// leVal reads a little-endian value of len(b) <= 8 bytes. Full-word values —
// the overwhelmingly common access size — decode with a single load.
func leVal(b []byte) uint64 {
	if len(b) == 8 {
		return binary.LittleEndian.Uint64(b)
	}
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// putLEVal writes v little-endian into b (truncating to len(b) bytes, which
// matches the wrap-around arithmetic of the detailed commit path).
func putLEVal(b []byte, v uint64) {
	if len(b) == 8 {
		binary.LittleEndian.PutUint64(b, v)
		return
	}
	for i := range b {
		b[i] = byte(v)
		v >>= 8
	}
}

// Access applies one memory operation functionally and returns the loaded
// value (the pre-RMW value for atomics, 0 for stores/reduces/prefetches).
// store is the store value or reduce delta; rmw is the atomic update function
// (nil for other kinds).
func (w *Warmer) Access(core int, kind AccessKind, a memsys.Addr, size int, store uint64, rmw func(uint64) uint64) uint64 {
	l1 := w.l1s[core]
	st := l1.stats
	blk := a.BlockAlign(w.params.BlockSize)
	off := a.BlockOffset(w.params.BlockSize)
	write := kind == AccessStore || kind == AccessAtomicRMW || kind == AccessReduce
	toff, tlen := off, size
	if kind == AccessPrefetch {
		toff, tlen = 0, 0
	}

	// counted mirrors Msg.Counted: the L1-side access counters and the
	// policy's fetch-count update fire once per architectural access, no
	// matter how many times a conflict-triggered termination makes the
	// request retry.
	counted := false
	for {
		e := l1.cache.Lookup(blk)
		if e != nil {
			// Local-permission check (the detailed tryLocal).
			hit := false
			switch kind {
			case AccessPrefetch:
				hit = true
			case AccessLoad:
				hit = e.Payload.state != L1Prv || l1.policy.HasBits(blk, off, size, false)
			default:
				switch e.Payload.state {
				case L1Modified:
					hit = true
				case L1Exclusive:
					e.Payload.state = L1Modified // silent E->M upgrade
					hit = true
				case L1Shared:
				case L1Prv:
					hit = l1.policy.HasBits(blk, off, size, true)
				}
			}
			if hit {
				if !counted {
					st.IncID(stats.IDL1DAccesses)
					if kind != AccessPrefetch {
						st.IncID(stats.IDL1DHits)
					}
				}
				return w.commit(l1, e, kind, blk, off, size, store, rmw)
			}
			if !counted {
				st.IncID(stats.IDL1DAccesses)
				st.IncID(stats.IDL1DMisses)
			}
			switch e.Payload.state {
			case L1Shared:
				if w.upgrade(l1, core, blk, toff, tlen, counted) {
					return w.commit(l1, l1.cache.Peek(blk), kind, blk, off, size, store, rmw)
				}
			case L1Prv:
				if !counted {
					st.IncID(stats.IDFSChkRequests)
				}
				if w.chk(l1, core, blk, toff, tlen, write) {
					return w.commit(l1, l1.cache.Peek(blk), kind, blk, off, size, store, rmw)
				}
			default:
				panic(fmt.Sprintf("warm: permission miss in state %v", e.Payload.state))
			}
			counted = true
			continue
		}

		// Demand miss.
		if !counted {
			st.IncID(stats.IDL1DAccesses)
			st.IncID(stats.IDL1DMisses)
		}
		if w.demand(l1, core, kind, blk, toff, tlen, write, counted) {
			e := l1.cache.Peek(blk)
			return w.commit(l1, e, kind, blk, off, size, store, rmw)
		}
		counted = true
	}
}

// commit mirrors the detailed commitNow: architectural effect, private
// metadata update, commit counter. The observer and forensics hooks are
// absent by construction (sampling rejects them).
func (w *Warmer) commit(l1 *L1, e *memsys.Entry[l1Line], kind AccessKind, blk memsys.Addr, off, size int, store uint64, rmw func(uint64) uint64) uint64 {
	if kind == AccessPrefetch {
		return 0
	}
	line := &e.Payload
	b := line.data[off : off+size]
	switch kind {
	case AccessLoad:
		v := leVal(b)
		if l1.policy != nil {
			l1.policy.OnAccess(blk, off, size, false)
		}
		l1.stats.IncID(stats.IDLoadsCommitted)
		return v
	case AccessStore:
		putLEVal(b, store)
		line.dirty = true
		if l1.policy != nil {
			l1.policy.OnAccess(blk, off, size, true)
		}
		l1.stats.IncID(stats.IDStoresCommit)
		return 0
	case AccessReduce:
		putLEVal(b, leVal(b)+store)
		line.dirty = true
		if l1.policy != nil {
			l1.policy.OnAccess(blk, off, size, false)
			l1.policy.OnAccess(blk, off, size, true)
		}
		l1.stats.IncID(stats.IDReducesCommit)
		return 0
	case AccessAtomicRMW:
		old := leVal(b)
		if rmw != nil {
			putLEVal(b, rmw(old))
		} else {
			putLEVal(b, old+store) // nil rmw: the AtomicAdd delta encoding
		}
		line.dirty = true
		if l1.policy != nil {
			l1.policy.OnAccess(blk, off, size, false)
			l1.policy.OnAccess(blk, off, size, true)
		}
		l1.stats.IncID(stats.IDAtomicsCommit)
		return old
	}
	panic("warm: unreachable")
}

// lookup brings blk into the directory slice, mirroring handleRequest's
// residency path: LLC hit, or victim eviction plus a memory fill.
func (w *Warmer) lookup(d *Dir, blk memsys.Addr) *memsys.Entry[dirLine] {
	d.stats.IncID(stats.IDLLCAccesses)
	if e := d.llc.Lookup(blk); e != nil {
		d.stats.IncID(stats.IDLLCHits)
		return e
	}
	d.stats.IncID(stats.IDLLCMisses)
	v := d.llc.Victim(blk)
	if v == nil {
		panic("warm: all LLC ways pinned at quiescence")
	}
	if v.Valid {
		w.evictDirLine(d, v)
	}
	e, displaced := d.llc.Insert(blk)
	if displaced != nil {
		panic("warm: insert displaced a line despite victim pre-check")
	}
	data := w.get()
	copy(data, w.mem.BlockSlice(blk))
	e.Payload = dirLine{dirHot: dirHot{state: DirIdle, hasData: true}, data: data}
	d.stats.IncID(stats.IDMemReads)
	d.stats.IncID(stats.IDLLCFills)
	return e
}

// evictDirLine removes an LLC victim, recalling or terminating as inclusion
// requires (the synchronous startEvict).
func (w *Warmer) evictDirLine(d *Dir, v *memsys.Entry[dirLine]) {
	line := &v.Payload
	switch line.state {
	case DirIdle:
		w.dropLine(d, v)
	case DirShared:
		// Recall: the sharer set may contain stale (silently dropped) cores.
		line.sharers.ForEach(func(c int) {
			cl := w.l1s[c]
			ce := cl.cache.Peek(v.Tag)
			if ce == nil {
				return // stale sharer; dataless InvAck in the detailed path
			}
			if ce.Payload.state != L1Shared {
				panic("warm: recall of a non-S sharer")
			}
			w.put(ce.Payload.data)
			w.put(ce.Payload.base)
			cl.cache.Invalidate(v.Tag)
			if cl.policy != nil {
				cl.policy.TakeEntry(v.Tag) // cleared, not reported (no REQ_MD)
			}
		})
		w.dropLine(d, v)
	case DirOwned:
		cl := w.l1s[line.owner]
		ce := cl.cache.Peek(v.Tag)
		if ce == nil || (ce.Payload.state != L1Exclusive && ce.Payload.state != L1Modified) {
			panic("warm: owner recall without an E/M copy")
		}
		if ce.Payload.dirty {
			copy(line.data, ce.Payload.data)
			line.dirty = true
		}
		w.put(ce.Payload.data)
		w.put(ce.Payload.base)
		cl.cache.Invalidate(v.Tag)
		if cl.policy != nil {
			cl.policy.TakeEntry(v.Tag)
		}
		w.dropLine(d, v)
	case DirPrv:
		w.terminate(d, v, "evict")
		w.dropLine(d, v)
	}
}

// dropLine mirrors the detailed dropLine: dirty writeback, metadata drop,
// LLC invalidation.
func (w *Warmer) dropLine(d *Dir, e *memsys.Entry[dirLine]) {
	line := &e.Payload
	if line.dirty && line.hasData {
		copy(w.mem.BlockSlice(e.Tag), line.data)
		d.stats.IncID(stats.IDMemWrites)
	}
	if d.policy != nil {
		d.policy.OnDirEviction(e.Tag)
	}
	d.stats.IncID(stats.IDLLCEvicts)
	w.put(line.data)
	d.llc.Invalidate(e.Tag)
}

// fill installs a block into an L1, evicting a victim (the synchronous
// evictFromHierarchy, with the directory absorbing writebacks immediately).
func (w *Warmer) fill(l1 *L1, blk memsys.Addr, data []byte, st L1State, dirty, sendMD bool) *memsys.Entry[l1Line] {
	e, victim := l1.cache.Insert(blk)
	if victim != nil {
		w.evictL1Line(l1, victim)
	}
	buf := w.get()
	copy(buf, data)
	e.Payload = l1Line{state: st, dirty: dirty, data: buf}
	l1.stats.IncID(stats.IDL1DFills)
	if l1.policy != nil {
		l1.policy.Allocate(blk, sendMD)
	}
	return e
}

// evictL1Line handles an L1 victim: silent drop, writeback or privatized
// writeback, with the home slice absorbing the result synchronously.
func (w *Warmer) evictL1Line(l1 *L1, ev *memsys.Entry[l1Line]) {
	blk := ev.Tag
	line := &ev.Payload
	l1.stats.IncID(stats.IDL1DEvicts)
	d := w.home(blk)
	de := d.llc.Peek(blk)
	if de == nil {
		panic(fmt.Sprintf("warm: L1 eviction of %v with no LLC entry (inclusion)", blk))
	}
	dline := &de.Payload
	switch line.state {
	case L1Shared:
		// Silent clean eviction; the stale sharer entry remains, exactly as
		// in the detailed protocol.
		w.shipEvictionMD(l1, d, blk)
	case L1Exclusive:
		// Clean writeback keeps the owner field exact.
		if dline.state != DirOwned || dline.owner != l1.core {
			panic("warm: E eviction but directory disagrees on ownership")
		}
		dline.state = DirIdle
		w.shipEvictionMD(l1, d, blk)
	case L1Modified:
		if dline.state != DirOwned || dline.owner != l1.core {
			panic("warm: M eviction but directory disagrees on ownership")
		}
		l1.stats.IncID(stats.IDL1DWbDirty)
		copy(dline.data, line.data)
		dline.dirty = true
		dline.state = DirIdle
		w.shipEvictionMD(l1, d, blk)
	case L1Prv:
		// §V-D: merge the privatized copy and leave the episode.
		l1.stats.IncID(stats.IDL1DWbDirty)
		d.mergePrvCopy(dline.data, line.data, line.base, l1.core, blk)
		d.tracePrvMerge(blk, l1.core)
		dline.dirty = true
		d.policy.OnPrvEviction(blk, l1.core)
		dline.sharers.Remove(l1.core)
		if l1.policy != nil {
			l1.policy.Drop(blk)
		}
	default:
		panic("warm: evicting invalid L1 line")
	}
	w.put(line.data)
	w.put(line.base)
}

// shipEvictionMD mirrors sendEvictionMD + the directory's onRepMD: the PAM
// entry is always cleared; it reaches the SAM only if SEND_MD was set.
func (w *Warmer) shipEvictionMD(l1 *L1, d *Dir, blk memsys.Addr) {
	if l1.policy == nil {
		return
	}
	mdR, mdW, sendMD, ok := l1.policy.TakeEntry(blk)
	if ok && sendMD {
		l1.stats.IncID(stats.IDFSMetadataMsgs)
		d.policy.OnRepMD(blk, l1.core, mdR, mdW)
	}
}

// invalidateSharer mirrors Inv handling at an L1 holding (at most) an S copy,
// plus the directory's receipt of the REP_MD / phantom response.
func (w *Warmer) invalidateSharer(d *Dir, c int, blk memsys.Addr, reqMD bool) {
	cl := w.l1s[c]
	ce := cl.cache.Peek(blk)
	if ce != nil {
		if ce.Payload.state != L1Shared {
			panic("warm: invalidation of a non-S sharer")
		}
		w.put(ce.Payload.data)
		w.put(ce.Payload.base)
		cl.cache.Invalidate(blk)
		if cl.policy != nil {
			mdR, mdW, _, ok := cl.policy.TakeEntry(blk)
			if reqMD {
				if ok {
					cl.stats.IncID(stats.IDFSMetadataMsgs)
					d.policy.OnRepMD(blk, c, mdR, mdW)
				} else {
					w.phantom(cl, d, blk)
				}
			}
		}
		return
	}
	// Stale invalidation after a silent eviction.
	if reqMD {
		w.phantom(cl, d, blk)
	}
}

// phantom mirrors sendPhantom + onMDPhantom.
func (w *Warmer) phantom(l1 *L1, d *Dir, blk memsys.Addr) {
	l1.stats.IncID(stats.IDFSPhantomMsgs)
	l1.stats.IncID(stats.IDFSMetadataMsgs)
	d.policy.OnMDPhantom(blk)
}

// demand serves a GetS/GetX for a block absent from the requesting L1. It
// returns false when a conflict-triggered termination converted the request
// into a retry (the caller loops).
func (w *Warmer) demand(l1 *L1, core int, kind AccessKind, blk memsys.Addr, toff, tlen int, write, counted bool) bool {
	d := w.home(blk)
	e := w.lookup(d, blk)
	line := &e.Payload

	if line.state == DirPrv {
		// servePrvDemand: join the episode if the bytes do not conflict.
		if d.policy.CheckBytes(blk, core, toff, tlen, write) == NoConflict {
			d.policy.RecordBytes(blk, core, toff, tlen, write)
			line.sharers.Add(core)
			fe := w.fill(l1, blk, line.data, L1Prv, false, false)
			base := w.get()
			copy(base, fe.Payload.data)
			fe.Payload.base = base
			if l1.policy != nil && kind != AccessPrefetch {
				l1.policy.OnAccess(blk, toff, tlen, write)
			}
			return true
		}
		d.policy.MarkTrueSharing(blk)
		w.terminate(d, e, "conflict")
		return false
	}

	d.stats.IncID(stats.IDDirFetchReq)
	requestMD, privatize := false, false
	if d.policy != nil {
		if counted {
			requestMD = d.policy.WantMetadata(blk)
		} else {
			requestMD, privatize = d.policy.OnFetchRequest(blk, core)
		}
	}
	if privatize && w.mode == FSLite && (line.state == DirShared || line.state == DirOwned) {
		return w.prvInit(d, e, l1, core, kind, blk, toff, tlen, write, false)
	}

	if !write && kind != AccessAtomicRMW {
		// GetS.
		switch line.state {
		case DirIdle:
			w.fill(l1, blk, line.data, L1Exclusive, false, requestMD)
			line.state = DirOwned
			line.owner = core
		case DirShared:
			w.fill(l1, blk, line.data, L1Shared, false, requestMD)
			line.sharers.Add(core)
		case DirOwned:
			w.intervene(d, e, core, requestMD, false)
			w.fill(l1, blk, line.data, L1Shared, false, requestMD)
			line.sharers.Add(core)
		}
		return true
	}

	// GetX.
	switch line.state {
	case DirIdle:
		w.fill(l1, blk, line.data, L1Modified, true, requestMD)
		line.state = DirOwned
		line.owner = core
	case DirShared:
		w.invalidateOthers(d, e, core, requestMD)
		w.fill(l1, blk, line.data, L1Modified, true, requestMD)
		line.state = DirOwned
		line.owner = core
		line.sharers = coreSet{}
	case DirOwned:
		w.intervene(d, e, core, requestMD, true)
		w.fill(l1, blk, line.data, L1Modified, true, requestMD)
		line.state = DirOwned
		line.owner = core
		line.sharers = coreSet{}
	}
	return true
}

// intervene mirrors a Fwd_GetS/Fwd_GetX round trip with the current owner:
// the owner's data refreshes the LLC copy; for a read intervention the owner
// downgrades to S (and the sharer set is rebuilt), for a write intervention
// the owner invalidates. The caller installs the new owner / sharer.
func (w *Warmer) intervene(d *Dir, e *memsys.Entry[dirLine], core int, requestMD, excl bool) {
	line := &e.Payload
	oldOwner := line.owner
	d.stats.IncID(stats.IDDirInterv)
	if d.policy != nil {
		d.policy.OnInvalidationsSent(e.Tag, 1)
		if requestMD {
			d.policy.OnMetadataRequested(e.Tag, 1)
		}
	}
	ol := w.l1s[oldOwner]
	oe := ol.cache.Peek(e.Tag)
	if oe == nil || (oe.Payload.state != L1Exclusive && oe.Payload.state != L1Modified) {
		panic("warm: intervention but the owner holds no E/M copy")
	}
	copy(line.data, oe.Payload.data)
	line.dirty = true
	if excl {
		// Fwd_GetX: ownership transfer; the old owner invalidates and ships
		// its PAM entry.
		if ol.policy != nil {
			mdR, mdW, _, ok := ol.policy.TakeEntry(e.Tag)
			if requestMD {
				if ok {
					ol.stats.IncID(stats.IDFSMetadataMsgs)
					d.policy.OnRepMD(e.Tag, oldOwner, mdR, mdW)
				} else {
					w.phantom(ol, d, e.Tag)
				}
			}
		}
		w.put(oe.Payload.data)
		w.put(oe.Payload.base)
		ol.cache.Invalidate(e.Tag)
		return
	}
	// Fwd_GetS: the owner keeps an S copy, reports its PAM entry without
	// clearing it, and re-arms SEND_MD per the REQ_MD bit.
	oe.Payload.state = L1Shared
	oe.Payload.dirty = false
	if ol.policy != nil {
		if requestMD {
			if mdR, mdW, ok := ol.policy.PeekEntry(e.Tag); ok {
				ol.stats.IncID(stats.IDFSMetadataMsgs)
				d.policy.OnRepMD(e.Tag, oldOwner, mdR, mdW)
			} else {
				w.phantom(ol, d, e.Tag)
			}
		}
		ol.policy.SetSendMD(e.Tag, requestMD)
	}
	line.state = DirShared
	line.sharers = coreSet{}
	line.sharers.Add(oldOwner)
}

// invalidateOthers invalidates every S sharer except core, with metadata
// collection, mirroring the shared-state GetX/Upgrade path.
func (w *Warmer) invalidateOthers(d *Dir, e *memsys.Entry[dirLine], core int, requestMD bool) {
	line := &e.Payload
	others := line.sharers
	others.Remove(core)
	n := others.Count()
	if n == 0 {
		return
	}
	others.ForEach(func(c int) {
		d.stats.IncID(stats.IDDirInval)
	})
	if d.policy != nil {
		d.policy.OnInvalidationsSent(e.Tag, n)
		if requestMD {
			d.policy.OnMetadataRequested(e.Tag, n)
		}
	}
	others.ForEach(func(c int) {
		w.invalidateSharer(d, c, e.Tag, requestMD && d.policy != nil)
	})
}

// upgrade serves an Upgrade for an S line held by core. It returns false when
// privatization aborted and terminated (the caller retries from scratch).
func (w *Warmer) upgrade(l1 *L1, core int, blk memsys.Addr, toff, tlen int, counted bool) bool {
	d := w.home(blk)
	e := w.lookup(d, blk)
	line := &e.Payload
	if line.state != DirShared || !line.sharers.Has(core) {
		panic("warm: upgrade from a core the directory does not see as a sharer")
	}
	d.stats.IncID(stats.IDDirFetchReq)
	requestMD, privatize := false, false
	if d.policy != nil {
		if counted {
			requestMD = d.policy.WantMetadata(blk)
		} else {
			requestMD, privatize = d.policy.OnFetchRequest(blk, core)
		}
	}
	if privatize && w.mode == FSLite {
		return w.prvInit(d, e, l1, core, AccessStore, blk, toff, tlen, true, true)
	}
	w.invalidateOthers(d, e, core, requestMD)
	line.state = DirOwned
	line.owner = core
	line.sharers = coreSet{}
	le := l1.cache.Peek(blk)
	le.Payload.state = L1Modified
	le.Payload.dirty = true
	return true
}

// chk serves a byte-grain permission check for a PRV line (§V-B). It returns
// false when the check conflicted: the episode terminated and the line is
// gone from the requesting L1 (the caller retries as a demand miss).
func (w *Warmer) chk(l1 *L1, core int, blk memsys.Addr, toff, tlen int, write bool) bool {
	d := w.home(blk)
	d.stats.IncID(stats.IDLLCAccesses)
	e := d.llc.Lookup(blk)
	if e == nil || e.Payload.state != DirPrv || !e.Payload.sharers.Has(core) {
		panic("warm: CHK but the directory does not see a PRV episode with this sharer")
	}
	d.stats.IncID(stats.IDLLCHits)
	if d.policy.CheckBytes(blk, core, toff, tlen, write) == NoConflict {
		d.policy.RecordBytes(blk, core, toff, tlen, write)
		l1.policy.OnAccess(blk, toff, tlen, write)
		return true
	}
	d.policy.MarkTrueSharing(blk)
	w.terminate(d, e, "conflict")
	return false
}

// prvInit runs the privatization initiation sweep (§V-A) synchronously:
// TR_PRV to every sharer (or the owner), metadata collection, then the
// commit-or-abort decision. It returns true when the triggering access was
// granted (the requestor holds a PRV copy with its bytes recorded).
func (w *Warmer) prvInit(d *Dir, e *memsys.Entry[dirLine], l1 *L1, core int, kind AccessKind, blk memsys.Addr, toff, tlen int, write, isUpgrade bool) bool {
	line := &e.Payload
	var targets coreSet
	switch line.state {
	case DirShared:
		targets = line.sharers
	case DirOwned:
		targets.Add(line.owner)
	}
	d.policy.OnMetadataRequested(blk, targets.Count())

	var prvJoin coreSet
	targets.ForEach(func(c int) {
		cl := w.l1s[c]
		ce := cl.cache.Peek(blk)
		if ce == nil {
			// Copy silently dropped: dataless phantom, no PRV copy kept.
			w.phantom(cl, d, blk)
			return
		}
		cline := &ce.Payload
		if cline.state == L1Exclusive || cline.state == L1Modified {
			copy(line.data, cline.data) // DataToDir refresh
			line.dirty = true
		}
		cline.state = L1Prv
		cline.dirty = false
		if cline.base == nil {
			cline.base = w.get()
		}
		copy(cline.base, cline.data)
		mdR, mdW, sendMD, ok := cl.policy.TakeEntry(blk)
		if ok && sendMD {
			cl.stats.IncID(stats.IDFSMetadataMsgs)
			d.policy.OnRepMD(blk, c, mdR, mdW)
		} else {
			w.phantom(cl, d, blk)
		}
		cl.policy.Allocate(blk, false)
		prvJoin.Add(c)
	})

	// The commit-or-abort decision of maybeFinishPrvInit.
	conflict := d.policy.TrueSharing(blk)
	if !conflict && d.policy.CheckBytes(blk, core, toff, tlen, write) != NoConflict {
		d.policy.MarkTrueSharing(blk)
		conflict = true
	}
	if conflict {
		d.stats.IncID(stats.IDFSPrivAborted)
		if prvJoin.Empty() {
			line.state = DirIdle
			line.sharers = coreSet{}
			return false
		}
		line.state = DirPrv
		line.prvSince = w.now
		line.sharers = prvJoin
		w.terminate(d, e, "abort")
		return false
	}

	d.stats.IncID(stats.IDFSPrivatized)
	d.policy.OnPrivatize(blk)
	line.state = DirPrv
	line.prvSince = w.now
	d.tracePrvBegin(blk, core)
	line.sharers = prvJoin
	if isUpgrade {
		if !line.sharers.Has(core) {
			panic("warm: privatizing upgrader lost its copy")
		}
		// UPG_Ack_PRV: the TR_PRV above already moved the line to PRV; the
		// grant's conflict check covered the touched bytes.
		d.policy.RecordBytes(blk, core, toff, tlen, write)
		l1.policy.OnAccess(blk, toff, tlen, true)
		return true
	}
	d.policy.RecordBytes(blk, core, toff, tlen, write)
	line.sharers.Add(core)
	fe := w.fill(l1, blk, line.data, L1Prv, false, false)
	base := w.get()
	copy(base, fe.Payload.data)
	fe.Payload.base = base
	if l1.policy != nil && kind != AccessPrefetch {
		l1.policy.OnAccess(blk, toff, tlen, write)
	}
	return true
}

// terminate runs a privatization termination (§V-C) synchronously: every PRV
// sharer's copy is byte-merged into the LLC block and invalidated, metadata
// is cleared, and the line returns to DirIdle.
func (w *Warmer) terminate(d *Dir, e *memsys.Entry[dirLine], reason string) {
	line := &e.Payload
	d.stats.IncID(stats.IDFSTerminations)
	switch reason {
	case "conflict", "abort":
		d.stats.IncID(stats.IDFSTermConflict)
	case "evict":
		d.stats.IncID(stats.IDFSTermEviction)
	case "forced":
		d.stats.IncID(stats.IDFSTermSAMEvict)
	}
	mergeBuf := w.get()
	copy(mergeBuf, line.data)
	line.sharers.ForEach(func(c int) {
		cl := w.l1s[c]
		ce := cl.cache.Peek(e.Tag)
		if ce == nil || ce.Payload.state != L1Prv {
			panic("warm: termination but a recorded PRV sharer has no PRV copy")
		}
		d.mergePrvCopy(mergeBuf, ce.Payload.data, ce.Payload.base, c, e.Tag)
		d.tracePrvMerge(e.Tag, c)
		if cl.policy != nil {
			cl.policy.Drop(e.Tag)
		}
		w.put(ce.Payload.data)
		w.put(ce.Payload.base)
		cl.cache.Invalidate(e.Tag)
	})
	w.put(line.data)
	line.data = mergeBuf
	line.dirty = true
	d.policy.OnTerminate(e.Tag)
	if w.now > line.prvSince {
		d.stats.AddID(stats.IDFSPrvCycles, w.now-line.prvSince)
	}
	line.state = DirIdle
	line.sharers = coreSet{}
}

// DrainForcedTerminations performs every forced termination the policies have
// queued (SAM-entry evictions, §V-C) and returns how many episodes ended. The
// sampling engine calls it once per warming round, standing in for the
// directory Tick's forced-termination drain.
func (w *Warmer) DrainForcedTerminations() int {
	n := 0
	for _, d := range w.dirs {
		if d.policy != nil {
			d.forced = append(d.forced, d.policy.TakeForcedTerminations()...)
		}
		if len(d.forced) == 0 {
			continue
		}
		for _, a := range d.forced {
			e := d.llc.Peek(a)
			if e == nil || e.Payload.state != DirPrv {
				continue // already terminated
			}
			w.terminate(d, e, "forced")
			n++
		}
		d.forced = d.forced[:0]
	}
	return n
}
