package coherence_test

import (
	"testing"

	. "fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

// pingPong drives the Fig. 1/Fig. 6 pattern: cores 0 and 1 repeatedly write
// disjoint offsets of one line.
func pingPong(h *harness, rounds int) {
	for i := 0; i < rounds; i++ {
		h.store(0, blk+8, 8, uint64(i+1))
		h.store(1, blk+16, 8, uint64(i+100))
	}
}

func TestFigure6DetectionFlow(t *testing.T) {
	// FSDetect: metadata piggybacks on interventions (REQ_MD -> REP_MD),
	// the SAM records disjoint writers, and the block is flagged once FC
	// and IC cross the threshold.
	h := newHarness(t, FSDetect, nil)
	pingPong(h, 12)
	h.settle()
	if h.st.Get(stats.CtrFSMetadataMsgs) == 0 {
		t.Fatal("no metadata messages were exchanged")
	}
	dets := h.pols[0].Detections()
	if len(dets) != 1 || dets[0].Addr != blk.BlockAlign(64) {
		t.Fatalf("detections = %+v", dets)
	}
	if len(dets[0].Writers) != 2 {
		t.Fatalf("writers = %v, want cores 0 and 1", dets[0].Writers)
	}
	// Detection-only: the block must never be privatized.
	if h.st.Get(stats.CtrFSPrivatized) != 0 {
		t.Fatal("FSDetect privatized a block")
	}
	if h.dirState(blk) == DirPrv {
		t.Fatal("directory entered PRV under FSDetect")
	}
}

func TestFigure7PrivatizationInitiation(t *testing.T) {
	h := newHarness(t, FSLite, nil)
	pingPong(h, 12)
	h.settle()
	if h.st.Get(stats.CtrFSPrivatized) == 0 {
		t.Fatal("the falsely shared line was not privatized")
	}
	if h.dirState(blk) != DirPrv {
		t.Fatalf("dir state = %v, want PRV", h.dirState(blk))
	}
	// Both cores hold PRV copies.
	if h.l1s[0].StateOf(blk) != L1Prv || h.l1s[1].StateOf(blk) != L1Prv {
		t.Fatalf("L1 states: %v / %v", h.l1s[0].StateOf(blk), h.l1s[1].StateOf(blk))
	}
}

func TestFigure8ChkAndLocalHits(t *testing.T) {
	h := newHarness(t, FSLite, nil)
	pingPong(h, 12)
	h.settle()
	if h.dirState(blk) != DirPrv {
		t.Skip("line not privatized; threshold changed?")
	}
	// First touch of a fresh offset goes through a CHK (two-hop)...
	chkBefore := h.st.Get(stats.CtrFSChkRequests)
	h.store(2, blk+24, 8, 7) // core 2 joins via demand, no CHK yet
	h.store(2, blk+32, 8, 8) // second offset: GetXCHK
	if h.st.Get(stats.CtrFSChkRequests) != chkBefore+1 {
		t.Fatalf("chk requests = %d, want %d", h.st.Get(stats.CtrFSChkRequests), chkBefore+1)
	}
	// ...and subsequent accesses to checked bytes are pure local hits.
	msgs := h.st.Get(stats.CtrNetMessages)
	for i := 0; i < 5; i++ {
		h.store(2, blk+24, 8, uint64(i))
		if v := h.load(2, blk+32, 8); v != 8 && i == 0 {
			t.Fatalf("read back %d", v)
		}
	}
	if h.st.Get(stats.CtrNetMessages) != msgs {
		t.Fatal("checked bytes still generated traffic")
	}
}

func TestFigure9TerminationOnConflict(t *testing.T) {
	h := newHarness(t, FSLite, nil)
	pingPong(h, 12)
	h.settle()
	if h.dirState(blk) != DirPrv {
		t.Skip("line not privatized")
	}
	// Core 2 reads core 0's bytes: a read-write conflict terminates the
	// episode, and the merged line must carry both cores' last values.
	v0 := h.load(2, blk+8, 8)
	h.settle()
	if h.dirState(blk) == DirPrv {
		t.Fatal("conflict did not terminate the privatized episode")
	}
	if h.st.Get(stats.CtrFSTermConflict) == 0 {
		t.Fatal("termination reason not recorded")
	}
	if v0 != 12 {
		t.Fatalf("merged value for core 0's slot = %d, want 12", v0)
	}
	if v1 := h.load(2, blk+16, 8); v1 != 111 {
		t.Fatalf("merged value for core 1's slot = %d, want 111", v1)
	}
}

func TestPrvEvictionMergesBytes(t *testing.T) {
	// A core evicting its privatized copy writes back only its own bytes
	// (§V-D): the other core's in-cache updates must not be clobbered.
	h := newHarness(t, FSLite, func(p *Params, _ *core.Config) {
		p.L1Entries = 4
		p.L1Ways = 2
	})
	pingPong(h, 12)
	h.settle()
	if h.dirState(blk) != DirPrv {
		t.Skip("line not privatized")
	}
	// Evict core 0's PRV copy with conflict fills.
	for i := 1; i <= 4; i++ {
		h.load(0, blk+memsys.Addr(i*0x1000), 8)
	}
	h.settle()
	if h.l1s[0].StateOf(blk) != L1Invalid {
		t.Skip("PRV copy survived the fills")
	}
	// Core 1 keeps operating privately.
	h.store(1, blk+16, 8, 999)
	// Core 0 rejoins and reads its own byte back through the merged LLC copy.
	if v := h.load(0, blk+8, 8); v != 12 {
		t.Fatalf("evicted bytes lost: %d, want 12", v)
	}
	h.settle()
	// Core 1's private value must still be intact after its episode ends.
	got := h.load(3, blk+16, 8)
	h.settle()
	if got != 999 {
		t.Fatalf("other core's bytes clobbered: %d, want 999", got)
	}
}

func TestExternalSocketTermination(t *testing.T) {
	h := newHarness(t, FSLite, nil)
	pingPong(h, 12)
	h.settle()
	if h.dirState(blk) != DirPrv {
		t.Skip("line not privatized")
	}
	if !h.dirs[0].ExternalAccess(blk) {
		t.Fatal("external access not accepted for a PRV block")
	}
	h.settle()
	if h.dirState(blk) == DirPrv {
		t.Fatal("external access did not terminate the episode")
	}
	if h.st.Get(stats.CtrFSTermExternal) != 1 {
		t.Fatal("external termination not recorded")
	}
	// Data survives the forced merge.
	if v := h.load(2, blk+8, 8); v != 12 {
		t.Fatalf("value after external termination = %d", v)
	}
}

func TestPhantomMetadataMessage(t *testing.T) {
	// §V-D: an intervention with REQ_MD that reaches a core whose line and
	// PAM entry are gone (writeback in flight) yields a phantom message.
	h := newHarness(t, FSLite, func(p *Params, _ *core.Config) {
		p.L1Entries = 4
		p.L1Ways = 2
	})
	// Make core 0 the M owner, then evict (writeback) and immediately have
	// core 1 request the line: depending on timing the FwdGetX reaches core
	// 0 while the block sits in its writeback buffer.
	for round := 0; round < 8; round++ {
		a := blk + memsys.Addr(round*0x40000)
		h.store(0, a, 8, 1)
		done := h.startStore(1, a+8, 8, 2)
		for i := 1; i <= 4; i++ {
			h.load(0, a+memsys.Addr(i*0x1000), 8)
		}
		h.run(100000, func() bool { return *done })
		h.settle()
	}
	if h.st.Get(stats.CtrFSPhantomMsgs) == 0 {
		t.Skip("timing did not produce a phantom window in this configuration")
	}
}

func TestPrivatizedEpisodeSurvivesQuiescence(t *testing.T) {
	// All PRV copies evicted: the episode continues (the paper terminates
	// only on the four §V-C conditions), and a rejoin gets Data_PRV.
	h := newHarness(t, FSLite, func(p *Params, _ *core.Config) {
		p.L1Entries = 4
		p.L1Ways = 2
	})
	pingPong(h, 12)
	h.settle()
	if h.dirState(blk) != DirPrv {
		t.Skip("line not privatized")
	}
	for c := 0; c < 2; c++ {
		for i := 1; i <= 4; i++ {
			h.load(c, blk+memsys.Addr(i*0x1000), 8)
		}
	}
	h.settle()
	if h.dirState(blk) != DirPrv {
		t.Fatal("episode should survive all private copies being evicted")
	}
	if v := h.load(0, blk+8, 8); v != 12 {
		t.Fatalf("rejoin read %d, want 12", v)
	}
	if h.l1s[0].StateOf(blk) != L1Prv {
		t.Fatal("rejoin should re-enter PRV")
	}
}

func TestUpgradeTriggeredPrivatization(t *testing.T) {
	// Fig. 12's happy path: the privatization trigger is an Upgrade from a
	// sharer; the grant is UPG_Ack_PRV and the upgrader keeps its copy.
	h := newHarness(t, FSLite, nil)
	// Build up counters with read-shared copies and upgrades.
	for i := 0; i < 10; i++ {
		h.load(0, blk+8, 8)
		h.load(1, blk+16, 8)
		h.store(0, blk+8, 8, uint64(i))
		h.store(1, blk+16, 8, uint64(i+50))
	}
	h.settle()
	if h.st.Get(stats.CtrFSPrivatized) == 0 {
		t.Skip("pattern did not trigger privatization")
	}
	if h.dirState(blk) != DirPrv {
		t.Skip("line no longer privatized")
	}
	if v := h.load(0, blk+8, 8); v != 9 {
		t.Fatalf("upgrader's value = %d", v)
	}
}

func TestTrueSharingNeverPrivatizesAtProtocolLevel(t *testing.T) {
	h := newHarness(t, FSLite, nil)
	for i := 0; i < 30; i++ {
		h.store(0, blk+8, 8, uint64(i))
		h.store(1, blk+8, 8, uint64(i+1)) // same bytes: true sharing
	}
	h.settle()
	if h.st.Get(stats.CtrFSPrivatized) != 0 {
		t.Fatal("truly shared line was privatized")
	}
	if v := h.load(2, blk+8, 8); v != 30 {
		t.Fatalf("final value = %d, want 30", v)
	}
}

func TestCoarseGrainFalseSharingWithinGrain(t *testing.T) {
	// With 4-byte grains, two cores writing different bytes of the SAME
	// grain look truly shared: FSLite must refuse to privatize (a
	// conservative but correct outcome, §VIII-B).
	h := newHarness(t, FSLite, func(_ *Params, cc *core.Config) {
		cc.Granularity = 4
	})
	for i := 0; i < 30; i++ {
		h.store(0, blk+8, 1, uint64(i)) // byte 8
		h.store(1, blk+9, 1, uint64(i)) // byte 9: same 4-byte grain
	}
	h.settle()
	if h.st.Get(stats.CtrFSPrivatized) != 0 {
		t.Fatal("same-grain bytes privatized at coarse granularity")
	}
}
