package coherence

import (
	"fmt"

	"fscoherence/internal/memsys"
)

// PolicyViolations cross-checks the L1 cache against its per-core PAM: every
// resident line must have a PAM entry and vice versa (the PAM is allocated on
// fill and taken on eviction, so at quiescence the two track exactly). It is
// used by the sampling engine's window-boundary oracle and by the fuzz
// harness; it returns nil when the policy is absent (baseline protocol).
func (l *L1) PolicyViolations() []string {
	if l.policy == nil {
		return nil
	}
	var v []string
	n := 0
	l.cache.ForEach(func(e *memsys.Entry[l1Line]) {
		n++
		if !l.policy.Has(e.Tag) {
			v = append(v, fmt.Sprintf("core %d: L1 line %v has no PAM entry", l.core, e.Tag))
		}
	})
	if got := l.policy.Entries(); got != n {
		v = append(v, fmt.Sprintf("core %d: PAM holds %d entries, L1 holds %d lines", l.core, got, n))
	}
	return v
}

// PolicyViolations cross-checks the directory slice against its SAM: every
// line in the privatized state must have a SAM entry (episode byte-tracking
// state). Returns nil when the policy is absent.
func (d *Dir) PolicyViolations() []string {
	if d.policy == nil {
		return nil
	}
	var v []string
	d.llc.ForEach(func(e *memsys.Entry[dirLine]) {
		if e.Payload.state == DirPrv && !d.policy.HasSAMEntry(e.Tag) {
			v = append(v, fmt.Sprintf("slice %d: PRV line %v has no SAM entry", d.slice, e.Tag))
		}
	})
	return v
}
