package coherence

import "fscoherence/internal/memsys"

// State inventory: the complete set of stable and transient FSM states
// implemented by the L1 controller (l1.go) and the directory (dir.go),
// exported so PROTOCOL.md can be verified against the implementation (see
// protocol_doc_test.go) and so the fuzzing harness (internal/fuzz) can dump
// and cross-check component states by name.
//
// Transient-state naming follows the convention of Sorin/Hill/Wood ("A Primer
// on Memory Consistency and Cache Coherence") used by the paper: IS_D is the
// I->S transition waiting for Data, IM_AD waits for Acks and Data, SM_A waits
// for Acks. The directory's transients are named after the transaction kinds
// of dirTxn.

func (s mshrState) String() string {
	switch s {
	case mshrWaitData:
		return "IS_D"
	case mshrWaitDataExcl:
		return "IM_AD"
	case mshrWaitUpgrade:
		return "SM_A"
	case mshrWaitChk:
		return "PRV_CHK"
	}
	return "mshr?"
}

func (k dirTxnKind) String() string {
	switch k {
	case txnFwd:
		return "FWD"
	case txnMemFill:
		return "MEM_FILL"
	case txnPrvInit:
		return "PRV_INIT"
	case txnPrvTerm:
		return "PRV_TERM"
	case txnEvict:
		return "EVICT"
	}
	return "txn?"
}

// L1StableStates lists every stable L1 coherence state.
func L1StableStates() []L1State {
	return []L1State{L1Invalid, L1Shared, L1Exclusive, L1Modified, L1Prv}
}

// L1TransientStates lists the documentation name of every transient
// (MSHR-resident) L1 state, in enum order.
func L1TransientStates() []string {
	out := make([]string, 0, 4)
	for s := mshrWaitData; s <= mshrWaitChk; s++ {
		out = append(out, s.String())
	}
	return out
}

// DirStableStates lists every stable directory state.
func DirStableStates() []DirState {
	return []DirState{DirIdle, DirShared, DirOwned, DirPrv}
}

// DirTransientStates lists the documentation name of every transient
// (transaction-resident) directory state, in enum order.
func DirTransientStates() []string {
	out := make([]string, 0, 5)
	for k := txnFwd; k <= txnEvict; k++ {
		out = append(out, k.String())
	}
	return out
}

// DirEntry is a snapshot of one directory entry (ForEachEntry).
type DirEntry struct {
	Addr    memsys.Addr
	State   DirState
	Owner   int            // valid when State == DirOwned
	Sharers memsys.CoreSet // core bitset: S sharers, or PRV sharers when State == DirPrv
	Busy    bool           // a transaction is in progress on the entry
	HasData bool           // the LLC data array holds the block
}

// ForEachEntry visits a snapshot of every directory entry in this slice
// (invariant checking: the fuzzing harness cross-checks directory and L1
// states at quiescence).
func (d *Dir) ForEachEntry(fn func(DirEntry)) {
	d.llc.ForEach(func(e *memsys.Entry[dirLine]) {
		ln := &e.Payload
		fn(DirEntry{
			Addr:    e.Tag,
			State:   ln.state,
			Owner:   ln.owner,
			Sharers: ln.sharers,
			Busy:    ln.txn != nil,
			HasData: ln.hasData,
		})
	})
}
