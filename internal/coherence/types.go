package coherence

import (
	"fmt"

	"fscoherence/internal/memsys"
)

// L1State is the stable coherence state of an L1 cache line.
type L1State int

const (
	L1Invalid L1State = iota
	L1Shared
	L1Exclusive
	L1Modified
	L1Prv // FSLite privatized state (§V)
)

func (s L1State) String() string {
	switch s {
	case L1Invalid:
		return "I"
	case L1Shared:
		return "S"
	case L1Exclusive:
		return "E"
	case L1Modified:
		return "M"
	case L1Prv:
		return "PRV"
	}
	return "?"
}

// DirState is the stable state of a directory entry (cache-centric notation:
// the directory/LLC is the owner for DirIdle blocks).
type DirState int

const (
	DirIdle   DirState = iota // LLC owns the only copy (no L1 caches it)
	DirShared                 // one or more L1s hold S copies; LLC data valid
	DirOwned                  // one L1 holds E/M; LLC data possibly stale
	DirPrv                    // FSLite: block privatized across PRV sharers
)

func (s DirState) String() string {
	switch s {
	case DirIdle:
		return "I"
	case DirShared:
		return "S"
	case DirOwned:
		return "M"
	case DirPrv:
		return "PRV"
	}
	return "?"
}

// AddrRange is a half-open range of simulated addresses, used to declare
// reduction regions (§VII: privatization-accelerated parallel reductions).
type AddrRange struct {
	Start memsys.Addr
	Size  int
}

// Contains reports whether the block containing a overlaps the range.
func (r AddrRange) Contains(a memsys.Addr, blockSize int) bool {
	blk := a.BlockAlign(blockSize)
	return blk+memsys.Addr(blockSize) > r.Start && blk < r.Start+memsys.Addr(r.Size)
}

// AccessKind distinguishes the memory operations the CPU can issue.
type AccessKind int

const (
	AccessLoad AccessKind = iota
	AccessStore
	AccessAtomicRMW // atomic read-modify-write (test-and-set, fetch-add, ...)
	AccessPrefetch  // fetch the block in S without touching any byte

	// AccessReduce is a commutative accumulation (+= Delta) into a word of
	// a declared reduction region (§VII). Under FSLite the region's lines
	// privatize even though every core writes the same words: each core
	// accumulates locally and the directory merges the per-core deltas
	// into the LLC copy when the episode ends.
	AccessReduce
)

func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessAtomicRMW:
		return "atomic"
	case AccessPrefetch:
		return "prefetch"
	case AccessReduce:
		return "reduce"
	}
	return "?"
}

// Access is one demand memory operation submitted by a core to its L1
// controller. Accesses never cross a cache-line boundary.
type Access struct {
	Kind AccessKind
	Addr memsys.Addr
	Size int // 1, 2, 4 or 8 bytes (0 for prefetch)

	// StoreData holds the value to write for AccessStore (len == Size).
	StoreData []byte

	// RMW computes the new value from the old for AccessAtomicRMW. It must
	// be a pure function; it runs exactly once, at the commit point.
	RMW func(old []byte) []byte

	// Delta is the accumulation amount for AccessReduce (little-endian,
	// wrap-around arithmetic over Size bytes).
	Delta uint64

	// Done is invoked when the access commits. For loads and atomics it
	// receives the bytes observed (for atomics, the pre-RMW value).
	Done func(value []byte)
}

// Validate panics if the access is malformed (crossing a line, bad size).
func (a *Access) Validate(blockSize int) {
	switch a.Kind {
	case AccessPrefetch:
		return
	case AccessLoad, AccessStore, AccessAtomicRMW, AccessReduce:
	default:
		panic(fmt.Sprintf("coherence: bad access kind %d", a.Kind))
	}
	if a.Size != 1 && a.Size != 2 && a.Size != 4 && a.Size != 8 {
		panic(fmt.Sprintf("coherence: bad access size %d", a.Size))
	}
	if a.Addr.BlockOffset(blockSize)+a.Size > blockSize {
		panic(fmt.Sprintf("coherence: access crosses line: %v size %d", a.Addr, a.Size))
	}
	if a.Kind == AccessStore && len(a.StoreData) != a.Size {
		panic("coherence: store data length mismatch")
	}
	if a.Kind == AccessAtomicRMW && a.RMW == nil {
		panic("coherence: atomic access without RMW function")
	}
}

// IsWrite reports whether the access needs write permission.
func (a *Access) IsWrite() bool {
	return a.Kind == AccessStore || a.Kind == AccessAtomicRMW || a.Kind == AccessReduce
}

// ---------------------------------------------------------------------------
// Policy interfaces implemented by package core (the paper's contribution).
// A nil policy yields the unmodified baseline protocol.
// ---------------------------------------------------------------------------

// L1Policy is the per-core private-access-metadata (PAM table) side of
// FSDetect/FSLite (§IV). The L1 controller notifies it of every architectural
// event that reads or mutates private metadata.
type L1Policy interface {
	// OnAccess records read/write bits for a committed demand access to a
	// resident line.
	OnAccess(addr memsys.Addr, off, size int, write bool)

	// HasBits reports whether the PAM entry already covers [off,off+size)
	// with read (write=false) or write (write=true) bits — the PRV local-hit
	// check of §V-B.
	HasBits(addr memsys.Addr, off, size int, write bool) bool

	// SetSendMD sets or clears the SEND_MD bit of the block's PAM entry.
	SetSendMD(addr memsys.Addr, v bool)

	// TakeEntry returns the PAM read/write bit-vectors and the SEND_MD bit
	// for the block, then clears the entry (used when metadata must be
	// shipped to the directory). ok is false if no entry exists.
	TakeEntry(addr memsys.Addr) (mdRead, mdWrite uint64, sendMD, ok bool)

	// PeekSendMD reports the SEND_MD bit without clearing the entry.
	PeekSendMD(addr memsys.Addr) bool

	// PeekEntry returns the PAM bit-vectors without clearing the entry (used
	// on a Get intervention, where the core keeps its copy in S).
	PeekEntry(addr memsys.Addr) (mdRead, mdWrite uint64, ok bool)

	// Drop invalidates the PAM entry without reading it (silent clean
	// eviction with SEND_MD clear, or invalidation).
	Drop(addr memsys.Addr)

	// Allocate creates a fresh PAM entry for a newly filled line with the
	// given SEND_MD value.
	Allocate(addr memsys.Addr, sendMD bool)

	// Has reports whether a PAM entry exists for the block containing addr.
	// Invariant (checked at sampling window boundaries): an entry exists
	// exactly while the block is resident in the core's L1D.
	Has(addr memsys.Addr) bool

	// Entries returns the number of live PAM entries.
	Entries() int
}

// ConflictKind reports the outcome of a directory-side byte conflict check.
type ConflictKind int

const (
	NoConflict ConflictKind = iota
	ReadWriteConflict
	WriteWriteConflict
)

// DirPolicy is the directory-side metadata and decision logic: the SAM table,
// FC/IC/PMMC/HC counters, true-sharing inference and the privatization
// policy. Implemented by package core; the directory controller invokes it on
// protocol events and obeys its decisions.
type DirPolicy interface {
	// OnFetchRequest is called when a Get/GetX/Upgrade for addr arrives from
	// core. It updates FC and returns directives: requestMD asks the
	// controller to set REQ_MD on interventions/invalidations for this
	// transaction; privatize asks it to begin privatization (FSLite only,
	// and only when the block currently has owner/sharers).
	OnFetchRequest(addr memsys.Addr, core int) (requestMD, privatize bool)

	// OnInvalidationsSent is called when the directory sends n invalidation
	// or intervention messages for addr (updates IC).
	OnInvalidationsSent(addr memsys.Addr, n int)

	// OnMetadataRequested is called when a message with REQ_MD set is sent
	// (increments PMMC).
	OnMetadataRequested(addr memsys.Addr, n int)

	// OnRepMD processes a REP_MD from core carrying PAM bit-vectors; it
	// updates the SAM entry and TS bit, and decrements PMMC.
	OnRepMD(addr memsys.Addr, core int, mdRead, mdWrite uint64)

	// OnMDPhantom processes a dataless phantom metadata message (§V-D):
	// decrements PMMC without touching the SAM entry.
	OnMDPhantom(addr memsys.Addr)

	// PendingMetadata returns the current PMMC value for addr.
	PendingMetadata(addr memsys.Addr) int

	// TrueSharing reports whether the TS bit is set for addr.
	TrueSharing(addr memsys.Addr) bool

	// WantMetadata reports whether interventions/invalidations for addr
	// should carry REQ_MD (TS bit unset, §IV). Unlike OnFetchRequest it has
	// no counter side effects (used for retried requests).
	WantMetadata(addr memsys.Addr) bool

	// MarkTrueSharing records a true-sharing conflict detected by the
	// directory controller itself (a conflicting grant or CHK check): sets
	// the TS bit and bumps the hysteresis counter (§VI).
	MarkTrueSharing(addr memsys.Addr)

	// CheckBytes performs the §V-B conflict check for core touching
	// [off,off+size) of addr (write or read). It does not record anything.
	// A zero-length range (prefetch) never conflicts.
	CheckBytes(addr memsys.Addr, core int, off, size int, write bool) ConflictKind

	// RecordBytes records core as reader/writer of [off,off+size) in the SAM
	// entry after a successful check.
	RecordBytes(addr memsys.Addr, core int, off, size int, write bool)

	// OnPrivatize is called when privatization of addr commits: the SAM
	// entry is reset and FC/IC disabled for the PRV episode.
	OnPrivatize(addr memsys.Addr)

	// OnTerminate is called when the privatized episode of addr ends; the
	// SAM entry and FC/IC are cleared so FSDetect restarts cleanly.
	OnTerminate(addr memsys.Addr)

	// MergeMask returns a packed per-byte mask: bit b is set iff the SAM
	// entry's valid last writer of byte b is core (the §V-C/§V-D byte-merge
	// rule). Packing the mask into a word lets the merge walk set bits with
	// bits.TrailingZeros64 instead of scanning all 64 bytes; it requires
	// BlockSize <= 64, which core.Config.validate enforces.
	MergeMask(addr memsys.Addr, core int) uint64

	// OnPrvEviction removes core from the last-writer positions it owns
	// (after its PrvWB has been merged) per §V-D.
	OnPrvEviction(addr memsys.Addr, core int)

	// OnDirEviction is called when the directory entry / LLC block for addr
	// is evicted; all metadata for addr is dropped.
	OnDirEviction(addr memsys.Addr)

	// TakeForcedTerminations drains the list of privatized blocks whose SAM
	// entry was evicted (§V-C: the controller must terminate them).
	TakeForcedTerminations() []memsys.Addr

	// RegisterReduction declares an address range whose words are updated
	// only through commutative accumulations (§VII): write-write overlap
	// within the range is not true sharing, and privatized copies merge by
	// summing per-core deltas.
	RegisterReduction(r AddrRange)

	// ReduceMask returns a packed per-byte mask of the bytes where core is
	// recorded as a reduction writer (the delta-merge positions), with the
	// same bit-b-is-byte-b packing as MergeMask.
	ReduceMask(addr memsys.Addr, core int) uint64

	// HasSAMEntry reports whether a valid SAM entry exists for the block
	// containing addr (window-boundary agreement checks: privatized blocks
	// must keep their pinned SAM entry for the whole PRV episode).
	HasSAMEntry(addr memsys.Addr) bool
}
