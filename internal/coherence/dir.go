package coherence

import (
	"fmt"
	"math/bits"

	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/obs"
	"fscoherence/internal/stats"
)

// coreSet is a bitset of core indices (up to memsys.MaxCores).
type coreSet = memsys.CoreSet

// dirTxnKind enumerates the directory's transient (busy) transactions.
type dirTxnKind int

const (
	txnFwd     dirTxnKind = iota // intervention forwarded to the owner
	txnMemFill                   // LLC miss waiting for memory
	txnPrvInit                   // privatization initiation (§V-A)
	txnPrvTerm                   // privatization termination (§V-C)
	txnEvict                     // LLC victim recall (inclusion)
)

// dirTxn is the state of one in-progress transaction on a directory entry.
type dirTxn struct {
	kind dirTxnKind

	// req is the request being served (nil for forced terminations and pure
	// evictions).
	req *network.Msg

	// expect is the set of cores whose response is awaited.
	expect coreSet

	// prvJoin collects TR_PRV responders that kept a copy (the PRV sharers).
	prvJoin coreSet

	// needOwnerData/dataSeen gate privatization commit on the M/E owner's
	// DataToDir (or racing WB) having refreshed the LLC copy.
	needOwnerData bool
	dataSeen      bool

	// wbRace marks that the old owner's writeback raced with an intervention
	// (the WBAck is deferred to transaction completion).
	wbRace   bool
	oldOwner int

	// mergeBuf accumulates the byte-merged block during termination.
	mergeBuf []byte

	// evictAfter drops the LLC line once the termination merge completes.
	evictAfter bool

	// refetch marks a memory fill that restores only the data of an
	// existing directory entry (non-inclusive mode), preserving its
	// coherence state.
	refetch bool

	// termReason labels the termination cause for statistics.
	termReason string

	// termInvals counts the Inv_PRV messages sent to collect private
	// copies (observability: invalidations per episode).
	termInvals int
}

// dirLine is the per-block payload of an LLC/directory entry.
// dirHot is the hot metadata of one directory entry: the fields every
// protocol event touches (state dispatch, sharer-set updates, ownership
// checks). Keeping them contiguous at the front of dirLine — apart from the
// cold pointers below — keeps the common lookup-and-dispatch path inside one
// cache line of host memory.
type dirHot struct {
	state   DirState
	owner   int     // valid when state == DirOwned
	dirty   bool    // LLC copy differs from memory
	hasData bool    // data array holds the block (always true when inclusive)
	sharers coreSet // S sharers, or PRV sharers when state == DirPrv

	// prvSince stamps entry into DirPrv (for episode-length observability).
	prvSince uint64
}

// dirLine is the per-entry payload of the LLC slice: the hot metadata
// (embedded, fields promoted) followed by the cold block data and the
// transient-transaction pointers that only miss paths touch.
type dirLine struct {
	dirHot
	data  []byte
	txn   *dirTxn
	pendq []*network.Msg

	// Hybrid backend (PROTOCOL.md §4.4): upd latches the policy's repair
	// directive on a flagged line, and updSet remembers the sharers the
	// subsequent write invalidations displaced so pushUpdates can refresh
	// them when the line next returns to the slice.
	upd    bool
	updSet coreSet
}

// memFill is a pending main-memory access.
type memFill struct {
	readyAt uint64
	addr    memsys.Addr
}

// Dir is one LLC slice with its embedded directory controller.
type Dir struct {
	slice  int
	node   network.NodeID
	params Params
	mode   Protocol
	net    *network.Network
	llc    *memsys.SetAssoc[dirLine]
	mem    *memsys.Memory
	policy DirPolicy
	stats  *stats.Set
	now    uint64

	memq   []memFill
	retryq []*network.Msg
	forced []memsys.Addr // privatized blocks needing forced termination

	// dataDir tracks which blocks hold a data copy in the (separately
	// sized) LLC data array when the directory is sparse/non-inclusive.
	dataDir *memsys.SetAssoc[struct{}]

	// Observability attachments (nil when disabled; see SetObs and
	// SetForensics).
	trace          *obs.Tracer
	episodeHist    *obs.Histogram
	episodeInvHist *obs.Histogram
	forensics      *forensics.Recorder

	// peekForced, when the policy implements ForcedTerminationPeeker, reports
	// how many forced terminations the policy has queued without draining
	// them (NextEvent must see them: Tick drains the policy's queue, so work
	// can be pending with d.forced still empty). forcedOpaque marks a policy
	// that does not expose the count: NextEvent then conservatively reports
	// every next cycle as a potential wake-up.
	peekForced   func() int
	forcedOpaque bool
}

// ForcedTerminationPeeker is an optional DirPolicy extension used by the
// quiescence-skipping engine: it reports how many forced terminations the
// policy has queued for the next TakeForcedTerminations call, without
// draining them.
type ForcedTerminationPeeker interface {
	PendingForcedTerminations() int
}

// NewDir builds directory slice s. policy may be nil (baseline protocol).
func NewDir(slice int, p Params, mode Protocol, net *network.Network, mem *memsys.Memory, policy DirPolicy, st *stats.Set) *Dir {
	entries, ways := p.LLCEntriesSlice, p.LLCWays
	var dataDir *memsys.SetAssoc[struct{}]
	if p.NonInclusiveLLC {
		entries, ways = p.DirEntriesSlice, p.DirWays
		if entries == 0 {
			entries, ways = 2*p.LLCEntriesSlice, p.LLCWays
		}
		dataDir = memsys.NewSetAssoc[struct{}](fmt.Sprintf("llcdata%d", slice), p.LLCEntriesSlice, p.LLCWays, p.BlockSize)
	}
	d := &Dir{
		slice:   slice,
		node:    p.SliceNode(slice),
		params:  p,
		mode:    mode,
		net:     net,
		llc:     memsys.NewSetAssoc[dirLine](fmt.Sprintf("llc%d", slice), entries, ways, p.BlockSize),
		mem:     mem,
		policy:  policy,
		stats:   st,
		dataDir: dataDir,
	}
	if policy != nil {
		if pk, ok := policy.(ForcedTerminationPeeker); ok {
			d.peekForced = pk.PendingForcedTerminations
		} else {
			d.forcedOpaque = true
		}
	}
	return d
}

// NextEvent reports the slice's earliest self-driven wake-up: the next cycle
// while locally queued work exists (retried requests, forced terminations —
// including ones still queued inside the policy), else the earliest pending
// memory-fill completion, else NoEvent. Incoming messages are covered by the
// network's NextArrival report.
func (d *Dir) NextEvent(now uint64) uint64 {
	if len(d.retryq) > 0 || len(d.forced) > 0 {
		return now + 1
	}
	if d.forcedOpaque || (d.peekForced != nil && d.peekForced() > 0) {
		return now + 1
	}
	next := uint64(NoEvent)
	for _, f := range d.memq {
		if f.readyAt < next {
			next = f.readyAt
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// StateOf returns the directory state of the block containing a.
func (d *Dir) StateOf(a memsys.Addr) (DirState, bool) {
	e := d.llc.Peek(a)
	if e == nil {
		return DirIdle, false
	}
	return e.Payload.state, true
}

// Busy reports whether the block has an in-progress transaction.
func (d *Dir) Busy(a memsys.Addr) bool {
	e := d.llc.Peek(a)
	return e != nil && e.Payload.txn != nil
}

// DebugString summarizes in-flight state (deadlock diagnosis).
func (d *Dir) DebugString() string {
	if d.Idle() {
		return ""
	}
	s := fmt.Sprintf("dir %d: memq=%d retryq=%d forced=%d", d.slice, len(d.memq), len(d.retryq), len(d.forced))
	d.llc.ForEach(func(e *memsys.Entry[dirLine]) {
		ln := &e.Payload
		if ln.txn == nil && len(ln.pendq) == 0 {
			return
		}
		s += fmt.Sprintf(" line{%v st=%v sh=%v", e.Tag, ln.state, ln.sharers)
		if ln.txn != nil {
			s += fmt.Sprintf(" txn{kind=%v expect=%v data=%v/%v pmmc?}", ln.txn.kind, ln.txn.expect, ln.txn.dataSeen, ln.txn.needOwnerData)
			if d.policy != nil {
				s += fmt.Sprintf(" pmmc=%d", d.policy.PendingMetadata(e.Tag))
			}
		}
		s += fmt.Sprintf(" pendq=%d}", len(ln.pendq))
	})
	return s
}

// Idle reports whether the slice has no in-flight work: no pending memory
// fills, retries, forced terminations, and no busy or queued lines.
func (d *Dir) Idle() bool {
	if len(d.memq) != 0 || len(d.retryq) != 0 || len(d.forced) != 0 {
		return false
	}
	idle := true
	d.llc.ForEach(func(e *memsys.Entry[dirLine]) {
		if e.Payload.txn != nil || len(e.Payload.pendq) != 0 {
			idle = false
		}
	})
	return idle
}

// ExternalAccess models an access forwarded from another socket (§V-C
// condition iv): the privatized episode of a must terminate before the
// inter-socket request can be served. It reports whether a termination was
// scheduled.
func (d *Dir) ExternalAccess(a memsys.Addr) bool {
	e := d.llc.Peek(a)
	if e == nil || e.Payload.state != DirPrv {
		return false
	}
	d.forced = append(d.forced, a.BlockAlign(d.params.BlockSize))
	d.stats.IncID(stats.IDFSTermExternal)
	return true
}

// send/sendAfter dispatch a message from this slice. The caller's Msg is
// copied into a pooled message before entering the network, so call sites can
// keep building stack-allocated composite literals while the heap traffic is
// absorbed by the network's freelist.
func (d *Dir) send(m *network.Msg) {
	pm := d.net.NewMsg()
	*pm = *m
	pm.Src = d.node
	d.noteInvalidation(pm)
	d.net.Send(pm)
}

func (d *Dir) sendAfter(m *network.Msg, extra uint64) {
	pm := d.net.NewMsg()
	*pm = *m
	pm.Src = d.node
	d.noteInvalidation(pm)
	d.net.SendAfter(pm, extra)
}

// noteInvalidation feeds the forensics recorder every message that costs a
// core its copy or exclusivity of a line — plain and PRV invalidations plus
// forwarded-exclusive interventions — attributing it to the target core.
// The before/after-privatization split of these counts is the recorder's
// repair-efficacy signal.
func (d *Dir) noteInvalidation(m *network.Msg) {
	f := d.forensics
	if f == nil {
		return
	}
	switch m.Op {
	case network.OpInv, network.OpInvPrv, network.OpFwdGetX:
		core := -1
		if int(m.Dst) < d.params.Cores {
			core = int(m.Dst)
		}
		f.OnInvalidation(m.Addr, core, d.now)
	}
}

// pinLine/unpinLine protect a block's directory entry (and its data slot in
// non-inclusive mode) from replacement during transactions and PRV episodes.
func (d *Dir) pinLine(a memsys.Addr) {
	d.llc.Pin(a)
	if d.dataDir != nil {
		d.dataDir.Pin(a)
	}
}

func (d *Dir) unpinLine(a memsys.Addr) {
	d.llc.Unpin(a)
	if d.dataDir != nil {
		e := d.llc.Peek(a)
		if e == nil || e.Payload.state != DirPrv {
			d.dataDir.Unpin(a)
		}
	}
}

// touchData records that the block's data is (now) resident in the LLC data
// array, possibly dropping another block's data to make room (non-inclusive
// mode only: the displaced block keeps its directory entry and sharers).
func (d *Dir) touchData(e *memsys.Entry[dirLine]) {
	e.Payload.hasData = true
	if d.dataDir == nil {
		return
	}
	if d.dataDir.Lookup(e.Tag) != nil {
		return
	}
	if d.dataDir.Victim(e.Tag) == nil {
		// Every data slot in the set is pinned (busy/PRV blocks); over-
		// provision rather than stall: data capacity is advisory here.
		return
	}
	_, victim := d.dataDir.Insert(e.Tag)
	if victim == nil {
		return
	}
	d.stats.Inc("llc.data_drops")
	ve := d.llc.Peek(victim.Tag)
	if ve == nil {
		return
	}
	vl := &ve.Payload
	if vl.dirty {
		d.mem.WriteBlock(victim.Tag, vl.data)
		d.stats.IncID(stats.IDMemWrites)
		vl.dirty = false
	}
	vl.hasData = false
	vl.data = nil
}

// ensureData guarantees the block's data is resident before a grant that
// needs it, refetching from memory in non-inclusive mode. It returns false
// (queueing m) when a refetch was started.
func (d *Dir) ensureData(e *memsys.Entry[dirLine], m *network.Msg) bool {
	line := &e.Payload
	if line.hasData {
		return true
	}
	line.txn = &dirTxn{kind: txnMemFill, refetch: true}
	m.Retain()
	line.pendq = append(line.pendq, m)
	d.stats.MaxID(stats.IDDirPendqPeak, uint64(len(line.pendq)))
	d.pinLine(e.Tag)
	d.stats.IncID(stats.IDMemReads)
	d.memq = append(d.memq, memFill{readyAt: d.now + d.params.MemLatency, addr: e.Tag})
	return false
}

func (d *Dir) ctrlLat() uint64 { return d.params.LLCTagCycles }
func (d *Dir) dataLat() uint64 { return d.params.LLCTagCycles + d.params.LLCDataCycles }

// Tick advances the slice one cycle: memory fills, forced terminations,
// retried requests, then incoming messages.
func (d *Dir) Tick(now uint64) {
	d.now = now

	// Main-memory fills that completed this cycle.
	keep := d.memq[:0]
	for _, f := range d.memq {
		if f.readyAt <= now {
			d.finishMemFill(f.addr)
		} else {
			keep = append(keep, f)
		}
	}
	d.memq = keep

	// Forced terminations (SAM-entry eviction, external-socket access).
	if d.policy != nil {
		d.forced = append(d.forced, d.policy.TakeForcedTerminations()...)
	}
	if len(d.forced) > 0 {
		rest := d.forced[:0]
		for _, a := range d.forced {
			if !d.tryForcedTermination(a) {
				rest = append(rest, a)
			}
		}
		d.forced = rest
	}

	// Retried requests (drained transaction queues).
	if len(d.retryq) > 0 {
		q := d.retryq
		d.retryq = nil
		for _, m := range q {
			d.redispatchRequest(m)
		}
	}

	for i := 0; i < d.params.MaxMsgsPerCycle; i++ {
		m := d.net.Recv(d.node)
		if m == nil {
			break
		}
		d.handle(m)
		d.net.Release(m)
	}
}

// redispatchRequest re-enters a held (retained) request into the request path
// and recycles it, unless a handler retained it again (pending queue, retry
// queue, or a new transaction).
func (d *Dir) redispatchRequest(m *network.Msg) {
	m.Unretain()
	d.handleRequest(m)
	d.net.Release(m)
}

func (d *Dir) tryForcedTermination(a memsys.Addr) bool {
	e := d.llc.Peek(a)
	if e == nil || e.Payload.state != DirPrv {
		return true // already gone; nothing to do
	}
	if e.Payload.txn != nil {
		return false // busy; retry next cycle
	}
	d.startPrvTerm(e, nil, false, "forced")
	return true
}

// handleSwitch is the retained hand-written dispatch (Params.SwitchDispatch);
// the default path is the spec-table interpreter in dispatch.go, and
// `make equiv` proves the two byte-identical.
func (d *Dir) handleSwitch(m *network.Msg) {
	switch m.Op {
	case network.OpGetS, network.OpGetX, network.OpUpgrade, network.OpGetCHK, network.OpGetXCHK:
		d.handleRequest(m)
	case network.OpWB:
		d.onWB(m)
	case network.OpPrvWB:
		d.onPrvWB(m)
	case network.OpCtrlWB:
		d.onCtrlWB(m)
	case network.OpInvAck:
		d.onInvAck(m)
	case network.OpXferOwnerAck:
		d.onXferOwnerAck(m)
	case network.OpDataToDir:
		d.onDataToDir(m)
	case network.OpRepMD:
		d.onRepMD(m)
	case network.OpMDPhantom:
		d.onMDPhantom(m)
	default:
		panic(fmt.Sprintf("dir %d: unexpected message %v", d.slice, m))
	}
}

// requestorCore maps a request's originating node to its core index.
func requestorCore(m *network.Msg) int { return int(m.Requestor) }

// handleRequest serves a demand or CHK request, possibly queueing it.
func (d *Dir) handleRequest(m *network.Msg) {
	blk := m.Addr.BlockAlign(d.params.BlockSize)
	d.stats.IncID(stats.IDLLCAccesses)
	e := d.llc.Lookup(blk)
	if e == nil {
		d.stats.IncID(stats.IDLLCMisses)
		d.allocate(blk, m)
		return
	}
	line := &e.Payload
	if line.txn != nil {
		d.stats.IncID(stats.IDDirPendingQ)
		m.Retain()
		line.pendq = append(line.pendq, m)
		d.stats.MaxID(stats.IDDirPendqPeak, uint64(len(line.pendq)))
		return
	}
	d.stats.IncID(stats.IDLLCHits)
	d.serve(e, m)
}

// serve processes a request against a non-busy resident line.
func (d *Dir) serve(e *memsys.Entry[dirLine], m *network.Msg) {
	line := &e.Payload
	core := requestorCore(m)

	// CHK requests: byte-grain permission checks for privatized blocks. If
	// the episode already terminated, fall through as a demand request.
	if m.Op == network.OpGetCHK || m.Op == network.OpGetXCHK {
		if line.state == DirPrv {
			d.serveChk(e, m)
			return
		}
		if m.Op == network.OpGetXCHK {
			m.Op = network.OpGetX
		} else {
			m.Op = network.OpGetS
		}
	}

	if line.state == DirPrv {
		d.servePrvDemand(e, m)
		return
	}

	d.stats.IncID(stats.IDDirFetchReq)
	requestMD, privatize := false, false
	if d.policy != nil {
		if m.Counted {
			requestMD = d.policy.WantMetadata(e.Tag)
		} else {
			requestMD, privatize = d.policy.OnFetchRequest(e.Tag, core)
			m.Counted = true
		}
	}

	if privatize && d.mode == FSLite && !line.hasData && line.state == DirShared {
		// Non-inclusive mode: a shared block whose data was dropped cannot
		// privatize yet (the merge needs an LLC base copy, §VII); serve
		// normally — the grant path refetches the data, and a later request
		// will privatize.
		privatize = false
	}
	if privatize && d.mode == FSLite &&
		(line.state == DirShared || line.state == DirOwned) {
		d.startPrvInit(e, m)
		return
	}
	if privatize && d.mode == Hybrid {
		// Hybrid repair: no episode — latch update mode and serve normally.
		// The sharers the following writes invalidate accumulate in updSet
		// and are refreshed by pushUpdates when the line returns home.
		line.upd = true
	}

	switch m.Op {
	case network.OpGetS:
		d.serveGetS(e, m, requestMD)
	case network.OpGetX:
		d.serveGetX(e, m, requestMD)
	case network.OpUpgrade:
		d.serveUpgrade(e, m, requestMD)
	default:
		panic(fmt.Sprintf("dir %d: serve %v", d.slice, m))
	}
}

func (d *Dir) serveGetS(e *memsys.Entry[dirLine], m *network.Msg, requestMD bool) {
	line := &e.Payload
	core := requestorCore(m)
	switch line.state {
	case DirIdle:
		// MESI: exclusive (E) grant when no other core caches the block.
		if !d.ensureData(e, m) {
			return
		}
		d.sendAfter(&network.Msg{Op: network.OpDataExcl, Dst: m.Requestor, Addr: e.Tag, Data: cloneBytes(line.data)}, d.dataLat())
		d.setState(e, DirOwned)
		line.owner = core
	case DirShared:
		if !d.ensureData(e, m) {
			return
		}
		d.sendAfter(&network.Msg{Op: network.OpData, Dst: m.Requestor, Addr: e.Tag, Data: cloneBytes(line.data)}, d.dataLat())
		line.sharers.Add(core)
	case DirOwned:
		if line.owner == core {
			panic(fmt.Sprintf("dir %d: GetS from current owner %d for %v", d.slice, core, e.Tag))
		}
		d.stats.IncID(stats.IDDirInterv)
		if d.policy != nil {
			d.policy.OnInvalidationsSent(e.Tag, 1)
			if requestMD {
				d.policy.OnMetadataRequested(e.Tag, 1)
			}
		}
		d.sendAfter(&network.Msg{Op: network.OpFwdGetS, Dst: d.params.L1Node(line.owner), Addr: e.Tag, Requestor: m.Requestor, ReqMD: requestMD}, d.ctrlLat())
		m.Retain()
		line.txn = &dirTxn{kind: txnFwd, req: m, oldOwner: line.owner}
		d.pinLine(e.Tag)
	default:
		panic("dir: GetS in bad state")
	}
}

func (d *Dir) serveGetX(e *memsys.Entry[dirLine], m *network.Msg, requestMD bool) {
	line := &e.Payload
	core := requestorCore(m)
	switch line.state {
	case DirIdle:
		if !d.ensureData(e, m) {
			return
		}
		d.sendAfter(&network.Msg{Op: network.OpDataExcl, Dst: m.Requestor, Addr: e.Tag, Data: cloneBytes(line.data)}, d.dataLat())
		d.setState(e, DirOwned)
		line.owner = core
	case DirShared:
		if !d.ensureData(e, m) {
			return
		}
		others := line.sharers
		others.Remove(core) // a stale sharer entry for the requestor itself
		n := others.Count()
		others.ForEach(func(c int) {
			d.stats.IncID(stats.IDDirInval)
			d.noteUpdCandidate(line, c)
			d.sendAfter(&network.Msg{Op: network.OpInv, Dst: d.params.L1Node(c), Addr: e.Tag, Requestor: m.Requestor, ReqMD: requestMD}, d.ctrlLat())
		})
		if d.policy != nil && n > 0 {
			d.policy.OnInvalidationsSent(e.Tag, n)
			if requestMD {
				d.policy.OnMetadataRequested(e.Tag, n)
			}
		}
		d.sendAfter(&network.Msg{Op: network.OpDataExcl, Dst: m.Requestor, Addr: e.Tag, Data: cloneBytes(line.data), AckCount: n}, d.dataLat())
		d.setState(e, DirOwned)
		line.owner = core
		line.sharers = coreSet{}
	case DirOwned:
		if line.owner == core {
			panic(fmt.Sprintf("dir %d: GetX from current owner %d for %v", d.slice, core, e.Tag))
		}
		d.stats.IncID(stats.IDDirInterv)
		if d.policy != nil {
			d.policy.OnInvalidationsSent(e.Tag, 1)
			if requestMD {
				d.policy.OnMetadataRequested(e.Tag, 1)
			}
		}
		d.sendAfter(&network.Msg{Op: network.OpFwdGetX, Dst: d.params.L1Node(line.owner), Addr: e.Tag, Requestor: m.Requestor, ReqMD: requestMD}, d.ctrlLat())
		m.Retain()
		line.txn = &dirTxn{kind: txnFwd, req: m, oldOwner: line.owner}
		d.pinLine(e.Tag)
	default:
		panic("dir: GetX in bad state")
	}
}

func (d *Dir) serveUpgrade(e *memsys.Entry[dirLine], m *network.Msg, requestMD bool) {
	line := &e.Payload
	core := requestorCore(m)
	if line.state != DirShared || !line.sharers.Has(core) {
		// The upgrader's S copy raced with another writer (or back-inval):
		// it must retry as a full GetX (§V-E fig. 12 note).
		d.sendAfter(&network.Msg{Op: network.OpUpgradeNack, Dst: m.Requestor, Addr: e.Tag}, d.ctrlLat())
		return
	}
	others := line.sharers
	others.Remove(core)
	n := others.Count()
	others.ForEach(func(c int) {
		d.stats.IncID(stats.IDDirInval)
		d.noteUpdCandidate(line, c)
		d.sendAfter(&network.Msg{Op: network.OpInv, Dst: d.params.L1Node(c), Addr: e.Tag, Requestor: m.Requestor, ReqMD: requestMD}, d.ctrlLat())
	})
	if d.policy != nil && n > 0 {
		d.policy.OnInvalidationsSent(e.Tag, n)
		if requestMD {
			d.policy.OnMetadataRequested(e.Tag, n)
		}
	}
	d.sendAfter(&network.Msg{Op: network.OpUpgradeAck, Dst: m.Requestor, Addr: e.Tag, AckCount: n}, d.ctrlLat())
	d.setState(e, DirOwned)
	line.owner = core
	line.sharers = coreSet{}
}

// ---------------------------------------------------------------------------
// FSLite: privatized-block service (§V-B)
// ---------------------------------------------------------------------------

func (d *Dir) serveChk(e *memsys.Entry[dirLine], m *network.Msg) {
	line := &e.Payload
	core := requestorCore(m)
	write := m.Op == network.OpGetXCHK
	if !line.sharers.Has(core) {
		// A stale CHK from a previous privatized episode (the block was
		// terminated and re-privatized while it was in flight): treat it as
		// a demand request joining the new episode (§V-C).
		if write {
			m.Op = network.OpGetX
		} else {
			m.Op = network.OpGetS
		}
		d.servePrvDemand(e, m)
		return
	}
	if d.policy.CheckBytes(e.Tag, core, m.TouchedOff, m.TouchedLen, write) == NoConflict {
		d.policy.RecordBytes(e.Tag, core, m.TouchedOff, m.TouchedLen, write)
		d.sendAfter(&network.Msg{Op: network.OpAckPrv, Dst: m.Requestor, Addr: e.Tag}, d.ctrlLat()+d.params.ChkCycles)
		return
	}
	// True-sharing conflict: terminate the episode, then serve the request
	// as a converted demand access (§V-C).
	d.policy.MarkTrueSharing(e.Tag)
	d.startPrvTerm(e, m, false, "conflict")
}

// servePrvDemand handles Get/GetX/Upgrade for a block in the PRV state: a new
// core joins the privatized episode if its bytes do not conflict.
func (d *Dir) servePrvDemand(e *memsys.Entry[dirLine], m *network.Msg) {
	line := &e.Payload
	core := requestorCore(m)
	write := m.Op == network.OpGetX || m.Op == network.OpUpgrade

	if m.Op == network.OpUpgrade && !line.sharers.Has(core) {
		d.sendAfter(&network.Msg{Op: network.OpUpgradeNack, Dst: m.Requestor, Addr: e.Tag}, d.ctrlLat())
		return
	}
	if m.Op != network.OpUpgrade && line.sharers.Has(core) {
		panic(fmt.Sprintf("dir %d: demand %v from existing PRV sharer %d", d.slice, m.Op, core))
	}

	if d.policy.CheckBytes(e.Tag, core, m.TouchedOff, m.TouchedLen, write) == NoConflict {
		d.policy.RecordBytes(e.Tag, core, m.TouchedOff, m.TouchedLen, write)
		if m.Op == network.OpUpgrade {
			d.sendAfter(&network.Msg{Op: network.OpUpgAckPrv, Dst: m.Requestor, Addr: e.Tag}, d.ctrlLat()+d.params.ChkCycles)
		} else {
			if !d.ensureData(e, m) {
				return
			}
			line.sharers.Add(core)
			d.sendAfter(&network.Msg{Op: network.OpDataPrv, Dst: m.Requestor, Addr: e.Tag, Data: cloneBytes(line.data)}, d.dataLat()+d.params.ChkCycles)
		}
		return
	}
	d.policy.MarkTrueSharing(e.Tag)
	d.startPrvTerm(e, m, false, "conflict")
}

// startPrvInit begins privatization of the block for request m (§V-A).
func (d *Dir) startPrvInit(e *memsys.Entry[dirLine], m *network.Msg) {
	line := &e.Payload
	var targets coreSet
	needOwnerData := false
	switch line.state {
	case DirShared:
		targets = line.sharers
	case DirOwned:
		targets.Add(line.owner)
		needOwnerData = true
	}
	m.Retain()
	txn := &dirTxn{kind: txnPrvInit, req: m, expect: targets, needOwnerData: needOwnerData}
	line.txn = txn
	d.pinLine(e.Tag)
	d.policy.OnMetadataRequested(e.Tag, targets.Count())
	targets.ForEach(func(c int) {
		d.sendAfter(&network.Msg{Op: network.OpTRPrv, Dst: d.params.L1Node(c), Addr: e.Tag, Requestor: m.Requestor}, d.ctrlLat())
	})
	d.maybeFinishPrvInit(e)
}

// maybeFinishPrvInit commits or aborts privatization once every TR_PRV
// target has responded, all in-flight metadata has drained (PMMC == 0), and
// the owner's data (if any) has arrived.
func (d *Dir) maybeFinishPrvInit(e *memsys.Entry[dirLine]) {
	line := &e.Payload
	txn := line.txn
	if txn == nil || txn.kind != txnPrvInit {
		return
	}
	if !txn.expect.Empty() || d.policy.PendingMetadata(e.Tag) != 0 {
		return
	}
	if txn.needOwnerData && !txn.dataSeen {
		return
	}
	m := txn.req
	core := requestorCore(m)
	write := m.Op != network.OpGetS

	conflict := d.policy.TrueSharing(e.Tag)
	if !conflict && d.policy.CheckBytes(e.Tag, core, m.TouchedOff, m.TouchedLen, write) != NoConflict {
		d.policy.MarkTrueSharing(e.Tag)
		conflict = true
	}
	if conflict {
		// Abort (§V-A): the TR_PRV receivers already hold PRV copies and
		// must be rolled back through the termination sequence; the
		// triggering request is then served normally.
		d.stats.IncID(stats.IDFSPrivAborted)
		if txn.prvJoin.Empty() {
			line.txn = nil
			d.unpinLine(e.Tag)
			d.tracePrvAbort(e.Tag)
			d.setState(e, DirIdle)
			line.sharers = coreSet{}
			m.Counted = true
			d.retryq = append(d.retryq, m)
			d.drainPendq(line)
			return
		}
		d.tracePrvAbort(e.Tag)
		d.setState(e, DirPrv)
		line.prvSince = d.now
		line.sharers = txn.prvJoin
		line.txn = nil
		d.startPrvTerm(e, m, false, "abort")
		return
	}

	// Commit privatization.
	d.stats.IncID(stats.IDFSPrivatized)
	d.policy.OnPrivatize(e.Tag)
	d.setState(e, DirPrv)
	line.prvSince = d.now
	d.tracePrvBegin(e.Tag, core)
	line.sharers = txn.prvJoin
	line.txn = nil
	d.unpinLine(e.Tag)
	if d.dataDir != nil {
		// A privatized block's data slot must survive the episode (the
		// termination merge starts from it).
		d.dataDir.Pin(e.Tag)
	}
	switch {
	case m.Op == network.OpUpgrade && line.sharers.Has(core):
		// fig. 12: the upgrader already holds the block (now PRV).
		d.policy.RecordBytes(e.Tag, core, m.TouchedOff, m.TouchedLen, write)
		d.sendAfter(&network.Msg{Op: network.OpUpgAckPrv, Dst: m.Requestor, Addr: e.Tag}, d.ctrlLat())
	case m.Op == network.OpUpgrade:
		// A stale upgrade (the requestor's S copy was invalidated before
		// this request was served): it must retry as a full GetX, which
		// will join the fresh privatized episode as a demand request.
		d.sendAfter(&network.Msg{Op: network.OpUpgradeNack, Dst: m.Requestor, Addr: e.Tag}, d.ctrlLat())
	default:
		d.policy.RecordBytes(e.Tag, core, m.TouchedOff, m.TouchedLen, write)
		line.sharers.Add(core)
		d.sendAfter(&network.Msg{Op: network.OpDataPrv, Dst: m.Requestor, Addr: e.Tag, Data: cloneBytes(line.data)}, d.dataLat())
	}
	m.Unretain()
	d.net.Release(m)
	d.drainPendq(line)
}

// startPrvTerm begins termination of a privatized episode (§V-C). heldReq,
// if non-nil, is re-served once the merge completes; evictAfter additionally
// drops the LLC line (inclusion-driven termination).
func (d *Dir) startPrvTerm(e *memsys.Entry[dirLine], heldReq *network.Msg, evictAfter bool, reason string) {
	line := &e.Payload
	d.stats.IncID(stats.IDFSTerminations)
	switch reason {
	case "conflict", "abort":
		d.stats.IncID(stats.IDFSTermConflict)
	case "evict":
		d.stats.IncID(stats.IDFSTermEviction)
	case "forced":
		d.stats.IncID(stats.IDFSTermSAMEvict)
	}
	if heldReq != nil {
		heldReq.Retain()
	}
	txn := &dirTxn{
		kind:       txnPrvTerm,
		req:        heldReq,
		expect:     line.sharers,
		mergeBuf:   cloneBytes(line.data),
		evictAfter: evictAfter,
		termReason: reason,
		termInvals: line.sharers.Count(),
	}
	line.txn = txn
	d.pinLine(e.Tag)
	line.sharers.ForEach(func(c int) {
		d.sendAfter(&network.Msg{Op: network.OpInvPrv, Dst: d.params.L1Node(c), Addr: e.Tag}, d.ctrlLat())
	})
	d.maybeFinishPrvTerm(e)
}

func (d *Dir) maybeFinishPrvTerm(e *memsys.Entry[dirLine]) {
	line := &e.Payload
	txn := line.txn
	if txn == nil || txn.kind != txnPrvTerm || !txn.expect.Empty() {
		return
	}
	line.data = txn.mergeBuf
	line.dirty = true
	d.touchData(e)
	d.policy.OnTerminate(e.Tag)
	// Episode length accrues here (every real termination passes through),
	// NOT in tracePrvTerminate: FinalizeObs synthesizes terminations for
	// episodes still open at run end only when observability is attached,
	// and counters must not depend on attachment.
	d.stats.AddID(stats.IDFSPrvCycles, d.now-line.prvSince)
	d.tracePrvTerminate(e, txn.termReason, txn.termInvals)
	d.setState(e, DirIdle)
	if d.dataDir != nil {
		d.dataDir.Unpin(e.Tag)
	}
	line.sharers = coreSet{}
	line.txn = nil
	d.unpinLine(e.Tag)

	if txn.req != nil && !txn.evictAfter {
		m := txn.req
		// A held CHK is re-served as a traditional demand request (§V-C).
		if m.Op == network.OpGetCHK {
			m.Op = network.OpGetS
		} else if m.Op == network.OpGetXCHK {
			m.Op = network.OpGetX
		}
		d.retryq = append(d.retryq, m)
	}
	d.drainPendq(line)

	if txn.evictAfter {
		d.dropLine(e)
		if txn.req != nil {
			// The termination was inclusion-driven: the held request is for
			// the block displacing this one; claim the freed way now.
			d.redispatchRequest(txn.req)
		}
	}
}

// drainPendq moves queued requests to the retry queue (served next cycle).
func (d *Dir) drainPendq(line *dirLine) {
	if len(line.pendq) == 0 {
		return
	}
	d.retryq = append(d.retryq, line.pendq...)
	line.pendq = nil
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

func (d *Dir) lineFor(m *network.Msg, what string) *memsys.Entry[dirLine] {
	e := d.llc.Peek(m.Addr)
	if e == nil {
		panic(fmt.Sprintf("dir %d: %s for absent block %v", d.slice, what, m.Addr))
	}
	return e
}

func (d *Dir) onWB(m *network.Msg) {
	e := d.lineFor(m, "WB")
	line := &e.Payload
	src := requestorCore(m)
	txn := line.txn
	if txn == nil {
		if line.state != DirOwned || line.owner != src {
			panic(fmt.Sprintf("dir %d: WB from %d but state %v owner %d", d.slice, src, line.state, line.owner))
		}
		if m.Dirty {
			line.data = cloneBytes(m.Data)
			line.dirty = true
			d.touchData(e)
		}
		d.setState(e, DirIdle)
		// WBAck first: on the same control channel an Upd to the evictor
		// FIFO-orders behind it, so its WB-buffer slot clears before the
		// push could arrive.
		d.sendAfter(&network.Msg{Op: network.OpWBAck, Dst: m.Src, Addr: e.Tag}, d.ctrlLat())
		if d.pushUpdates(e) > 0 {
			d.setState(e, DirShared)
		}
		return
	}
	switch txn.kind {
	case txnFwd:
		if src != txn.oldOwner {
			panic("dir: WB race from non-owner")
		}
		if m.Dirty {
			line.data = cloneBytes(m.Data)
			line.dirty = true
			d.touchData(e)
		}
		txn.wbRace = true // WBAck deferred to transaction completion
	case txnEvict:
		// Recall response (or racing eviction writeback) from the owner.
		if m.Dirty {
			line.data = cloneBytes(m.Data)
			line.dirty = true
			d.touchData(e)
		}
		if txn.expect.Has(src) {
			txn.expect.Remove(src)
		}
		d.sendAfter(&network.Msg{Op: network.OpWBAck, Dst: m.Src, Addr: e.Tag}, d.ctrlLat())
		d.maybeFinishEvict(e)
	case txnPrvInit:
		// The owner evicted before TR_PRV arrived; its writeback carries the
		// data we were waiting for.
		if m.Dirty {
			line.data = cloneBytes(m.Data)
			line.dirty = true
			d.touchData(e)
		}
		txn.dataSeen = true
		d.sendAfter(&network.Msg{Op: network.OpWBAck, Dst: m.Src, Addr: e.Tag}, d.ctrlLat())
		d.maybeFinishPrvInit(e)
	case txnMemFill:
		panic("dir: WB during memory fill")
	case txnPrvTerm:
		panic("dir: plain WB during privatization termination")
	}
}

// mergePrvCopy folds one privatized copy (data, with episode base snapshot
// base) into dst: bytes whose last writer is the responder are copied (§V-C),
// and reduction words accumulate the responder's delta over its episode base
// (§VII). The masks are packed one-bit-per-byte words, so the copy walks only
// the set bits and the reduce pass tests eight bytes at a time.
func (d *Dir) mergePrvCopy(dst, data, base []byte, src int, blk memsys.Addr) {
	for mask := d.policy.MergeMask(blk, src); mask != 0; mask &= mask - 1 {
		i := bits.TrailingZeros64(mask)
		dst[i] = data[i]
	}
	red := d.policy.ReduceMask(blk, src)
	if red == 0 || len(base) != len(dst) {
		return
	}
	for w := 0; w+8 <= len(dst); w += 8 {
		if (red>>uint(w))&0xff == 0 {
			continue
		}
		delta := leWord(data[w:w+8]) - leWord(base[w:w+8])
		putLEWord(dst[w:w+8], leWord(dst[w:w+8])+delta)
	}
}

func leWord(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLEWord(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v)
		v >>= 8
	}
}

func (d *Dir) onPrvWB(m *network.Msg) {
	e := d.lineFor(m, "Prv_WB")
	line := &e.Payload
	src := requestorCore(m)
	txn := line.txn
	if txn != nil && txn.kind == txnPrvTerm {
		// Merge the bytes whose last writer is the responder (§V-C).
		d.mergePrvCopy(txn.mergeBuf, m.Data, m.Base, src, e.Tag)
		d.tracePrvMerge(e.Tag, src)
		txn.expect.Remove(src)
		d.sendAfter(&network.Msg{Op: network.OpWBAck, Dst: m.Src, Addr: e.Tag}, d.ctrlLat())
		d.maybeFinishPrvTerm(e)
		return
	}
	if txn != nil && txn.kind == txnPrvInit {
		// A TR_PRV receiver evicted its PRV copy before initiation finished.
		// Its PAM entry was cleared at TR_PRV, so it cannot have written;
		// merging by the (pre-reset) SAM last-writer info is value-safe.
		d.mergePrvCopy(line.data, m.Data, m.Base, src, e.Tag)
		d.tracePrvMerge(e.Tag, src)
		line.dirty = true
		txn.prvJoin.Remove(src)
		d.sendAfter(&network.Msg{Op: network.OpWBAck, Dst: m.Src, Addr: e.Tag}, d.ctrlLat())
		d.maybeFinishPrvInit(e)
		return
	}
	if line.state == DirPrv && txn == nil {
		// Eviction of a privatized copy (§V-D).
		d.mergePrvCopy(line.data, m.Data, m.Base, src, e.Tag)
		d.tracePrvMerge(e.Tag, src)
		line.dirty = true
		d.policy.OnPrvEviction(e.Tag, src)
		line.sharers.Remove(src)
		d.sendAfter(&network.Msg{Op: network.OpWBAck, Dst: m.Src, Addr: e.Tag}, d.ctrlLat())
		return
	}
	panic(fmt.Sprintf("dir %d: Prv_WB in state %v", d.slice, line.state))
}

func (d *Dir) onCtrlWB(m *network.Msg) {
	e := d.lineFor(m, "Ctrl_WB")
	line := &e.Payload
	txn := line.txn
	if txn == nil || txn.kind != txnPrvTerm {
		panic(fmt.Sprintf("dir %d: Ctrl_WB without termination", d.slice))
	}
	txn.expect.Remove(requestorCore(m))
	d.maybeFinishPrvTerm(e)
}

func (d *Dir) onInvAck(m *network.Msg) {
	e := d.llc.Peek(m.Addr)
	if e == nil {
		// The eviction already completed off a racing writeback; this ack is
		// the core's redundant response to the recall.
		d.stats.Inc("dir.stray_acks")
		return
	}
	line := &e.Payload
	txn := line.txn
	if txn == nil || txn.kind != txnEvict {
		// A stale ack (e.g. the core both wrote back and acked a recall).
		d.stats.Inc("dir.stray_acks")
		return
	}
	txn.expect.Remove(requestorCore(m))
	d.maybeFinishEvict(e)
}

func (d *Dir) onXferOwnerAck(m *network.Msg) {
	e := d.lineFor(m, "Xfer_Owner_ACK")
	line := &e.Payload
	txn := line.txn
	if txn == nil || txn.kind != txnFwd {
		panic(fmt.Sprintf("dir %d: stray Xfer_Owner_ACK", d.slice))
	}
	// Ownership moved to the requestor (GetX intervention complete).
	d.noteUpdCandidate(line, txn.oldOwner)
	line.state = DirOwned
	line.owner = requestorCore(txn.req)
	line.sharers = coreSet{}
	d.finishFwd(e, txn)
}

// noteUpdCandidate records a core displaced from a line in update mode
// (Hybrid backend): pushUpdates refreshes it when the line returns home.
func (d *Dir) noteUpdCandidate(line *dirLine, c int) {
	if d.mode == Hybrid && line.upd {
		line.updSet.Add(c)
	}
}

// pushUpdates fans out Upd copies (PROTOCOL.md §4.4) to the cores the update
// mode displaced, re-adding them to sharers at push time (superset-safe: a
// core that drops the push is just a stale sharer, §6.1). It returns how many
// copies were pushed. A line the policy has since marked truly shared leaves
// update mode instead.
func (d *Dir) pushUpdates(e *memsys.Entry[dirLine]) int {
	line := &e.Payload
	if d.mode != Hybrid || !line.upd || line.updSet.Empty() || !line.hasData {
		return 0
	}
	if d.policy != nil && d.policy.TrueSharing(e.Tag) {
		line.upd = false
		line.updSet = coreSet{}
		return 0
	}
	set := line.updSet
	line.updSet = coreSet{}
	pushed := 0
	set.ForEach(func(c int) {
		if line.sharers.Has(c) || (line.state == DirOwned && line.owner == c) {
			return
		}
		d.stats.IncID(stats.IDFSUpdPushes)
		d.sendAfter(&network.Msg{Op: network.OpUpd, Dst: d.params.L1Node(c), Addr: e.Tag, Data: cloneBytes(line.data)}, d.ctrlLat())
		line.sharers.Add(c)
		pushed++
	})
	return pushed
}

func (d *Dir) onDataToDir(m *network.Msg) {
	e := d.lineFor(m, "DataToDir")
	line := &e.Payload
	txn := line.txn
	if txn == nil {
		panic(fmt.Sprintf("dir %d: stray DataToDir", d.slice))
	}
	switch txn.kind {
	case txnFwd:
		// GetS intervention complete: LLC refreshed; owner downgraded to S.
		line.data = cloneBytes(m.Data)
		line.dirty = true
		d.touchData(e)
		d.setState(e, DirShared)
		line.sharers = coreSet{}
		if !txn.wbRace {
			line.sharers.Add(txn.oldOwner)
		}
		line.sharers.Add(requestorCore(txn.req))
		// Refresh displaced sharers while the line is home and shared; the
		// wbRace-deferred WBAck in finishFwd means a same-channel Upd to the
		// old owner lands before its ack and is dropped against the WB entry.
		d.pushUpdates(e)
		d.finishFwd(e, txn)
	case txnPrvInit:
		line.data = cloneBytes(m.Data)
		line.dirty = true
		d.touchData(e)
		txn.dataSeen = true
		d.maybeFinishPrvInit(e)
	default:
		panic("dir: DataToDir in unexpected transaction")
	}
}

func (d *Dir) finishFwd(e *memsys.Entry[dirLine], txn *dirTxn) {
	line := &e.Payload
	if txn.wbRace {
		d.sendAfter(&network.Msg{Op: network.OpWBAck, Dst: d.params.L1Node(txn.oldOwner), Addr: e.Tag}, d.ctrlLat())
		// The old owner's copy is gone; if it was recorded as a sharer
		// (GetS path), remove it.
		line.sharers.Remove(txn.oldOwner)
	}
	line.txn = nil
	d.unpinLine(e.Tag)
	txn.req.Unretain()
	d.net.Release(txn.req)
	d.drainPendq(line)
}

func (d *Dir) onRepMD(m *network.Msg) {
	if d.policy == nil {
		panic("dir: REP_MD without a policy")
	}
	d.policy.OnRepMD(m.Addr, requestorCore(m), m.MDRead, m.MDWrite)
	d.notePrvInitResponse(m)
}

func (d *Dir) onMDPhantom(m *network.Msg) {
	if d.policy == nil {
		panic("dir: MD_Phantom without a policy")
	}
	d.policy.OnMDPhantom(m.Addr)
	d.notePrvInitResponse(m)
}

func (d *Dir) notePrvInitResponse(m *network.Msg) {
	e := d.llc.Peek(m.Addr)
	if e == nil {
		return
	}
	line := &e.Payload
	txn := line.txn
	if txn == nil || txn.kind != txnPrvInit {
		return
	}
	src := requestorCore(m)
	if txn.expect.Has(src) {
		txn.expect.Remove(src)
		if m.HasCopy {
			txn.prvJoin.Add(src)
		}
	}
	d.maybeFinishPrvInit(e)
}

// ---------------------------------------------------------------------------
// LLC allocation, eviction and memory
// ---------------------------------------------------------------------------

// allocate brings blk into the LLC for request m, evicting a victim if the
// set is full.
func (d *Dir) allocate(blk memsys.Addr, m *network.Msg) {
	if v := d.llc.Victim(blk); v == nil || v.Valid {
		if v == nil {
			// Every way is pinned by an in-progress transaction: retry.
			m.Retain()
			d.retryq = append(d.retryq, m)
			return
		}
		// A valid victim: recall/terminate as required by inclusion.
		if !d.startEvict(v, m) {
			return // eviction in progress; m is held by the eviction
		}
		// Victim dropped synchronously; fall through to insert.
	}
	e, ev := d.llc.Insert(blk)
	if ev != nil {
		panic("dir: insert displaced a line despite victim pre-check")
	}
	e.Payload = dirLine{dirHot: dirHot{state: DirIdle}, txn: &dirTxn{kind: txnMemFill}}
	m.Retain()
	e.Payload.pendq = append(e.Payload.pendq, m)
	d.stats.MaxID(stats.IDDirPendqPeak, uint64(len(e.Payload.pendq)))
	d.pinLine(blk)
	d.stats.IncID(stats.IDMemReads)
	d.memq = append(d.memq, memFill{readyAt: d.now + d.params.MemLatency, addr: blk})
}

// startEvict removes the victim line. It returns true when the line was
// dropped synchronously (no L1 copies); otherwise it starts a recall or
// termination transaction that holds m and returns false.
func (d *Dir) startEvict(v *memsys.Entry[dirLine], m *network.Msg) bool {
	line := &v.Payload
	if line.txn != nil {
		panic("dir: evicting a busy line")
	}
	switch line.state {
	case DirIdle:
		d.dropLine(v)
		return true
	case DirShared:
		m.Retain()
		txn := &dirTxn{kind: txnEvict, req: m, expect: line.sharers}
		line.txn = txn
		d.pinLine(v.Tag)
		line.sharers.ForEach(func(c int) {
			d.sendAfter(&network.Msg{Op: network.OpInv, Dst: d.params.L1Node(c), Addr: v.Tag, Requestor: d.node}, d.ctrlLat())
		})
		return false
	case DirOwned:
		m.Retain()
		txn := &dirTxn{kind: txnEvict, req: m}
		txn.expect.Add(line.owner)
		line.txn = txn
		d.pinLine(v.Tag)
		d.sendAfter(&network.Msg{Op: network.OpInv, Dst: d.params.L1Node(line.owner), Addr: v.Tag, Requestor: d.node, ToOwner: true}, d.ctrlLat())
		return false
	case DirPrv:
		// Inclusion-driven termination; m retries once the line drops.
		d.startPrvTerm(v, m, true, "evict")
		return false
	}
	panic("dir: bad victim state")
}

func (d *Dir) maybeFinishEvict(e *memsys.Entry[dirLine]) {
	line := &e.Payload
	txn := line.txn
	if txn == nil || txn.kind != txnEvict || !txn.expect.Empty() {
		return
	}
	req := txn.req
	line.txn = nil
	d.unpinLine(e.Tag)
	// Any queued requests for the dying block retry from scratch.
	d.drainPendq(line)
	d.dropLine(e)
	if req != nil {
		// Claim the just-freed way immediately so the eviction's trigger
		// request cannot be starved by later allocations. handleRequest
		// re-checks residency: another transaction may have brought the
		// block in meanwhile.
		d.redispatchRequest(req)
	}
}

// dropLine writes the block back to memory if dirty and invalidates the LLC
// entry and all metadata for it.
func (d *Dir) dropLine(e *memsys.Entry[dirLine]) {
	line := &e.Payload
	d.traceState(e.Tag, line.state, DirIdle)
	if line.dirty && line.hasData {
		d.mem.WriteBlock(e.Tag, line.data)
		d.stats.IncID(stats.IDMemWrites)
	}
	if d.policy != nil {
		d.policy.OnDirEviction(e.Tag)
	}
	d.stats.IncID(stats.IDLLCEvicts)
	d.unpinLine(e.Tag)
	d.llc.Invalidate(e.Tag)
	if d.dataDir != nil {
		d.dataDir.Unpin(e.Tag)
		d.dataDir.Invalidate(e.Tag)
	}
}

// finishMemFill completes a main-memory fetch and serves the queued requests
// inline. Serving (rather than re-queueing) is what guarantees forward
// progress under heavy set pressure: the first served request immediately
// re-busies (and thereby pins) the line, so it cannot be chosen as a victim
// before its waiters are satisfied.
func (d *Dir) finishMemFill(blk memsys.Addr) {
	e := d.llc.Peek(blk)
	if e == nil || e.Payload.txn == nil || e.Payload.txn.kind != txnMemFill {
		panic(fmt.Sprintf("dir %d: memory fill for unexpected line %v", d.slice, blk))
	}
	line := &e.Payload
	refetch := line.txn.refetch
	line.data = d.mem.ReadBlock(blk)
	line.dirty = false
	if !refetch {
		line.state = DirIdle
	}
	line.txn = nil
	d.unpinLine(blk)
	d.touchData(e)
	d.stats.IncID(stats.IDLLCFills)
	pend := line.pendq
	line.pendq = nil
	for _, m := range pend {
		if line.txn != nil {
			line.pendq = append(line.pendq, m) // still retained
			d.stats.MaxID(stats.IDDirPendqPeak, uint64(len(line.pendq)))
			continue
		}
		m.Unretain()
		d.serve(e, m)
		d.net.Release(m)
	}
}
