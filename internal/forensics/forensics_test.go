package forensics

import (
	"testing"

	"fscoherence/internal/memsys"
)

func TestGroundTruthMarkReplaces(t *testing.T) {
	gt := NewGroundTruth(64)
	gt.Mark(0x100000, 64, LabelPrivate)
	gt.Mark(0x100000, 64, LabelShared)
	if got := gt.Label(0x100008); got != LabelShared {
		t.Fatalf("label after re-mark = %v, want shared", got)
	}
	// Marks cover every overlapped line, at any alignment.
	gt.Mark(0x100030, 32, LabelFalse)
	if gt.Label(0x100000) != LabelFalse || gt.Label(0x100040) != LabelFalse {
		t.Fatalf("unaligned mark missed a line: %v / %v",
			gt.Label(0x100000), gt.Label(0x100040))
	}
	if n := len(gt.Lines()); n != 2 {
		t.Fatalf("lines = %d, want 2", n)
	}
}

func TestLabelString(t *testing.T) {
	cases := map[Label]string{
		LabelPrivate:              "private",
		LabelShared:               "true-sharing",
		LabelFalse:                "false-sharing",
		LabelShared | LabelFalse:  "mixed",
		LabelPrivate | LabelFalse: "mixed",
		0:                         "unlabeled",
	}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestRecorderHeatAndTimeline(t *testing.T) {
	r := New()
	r.Begin(64, 8)
	const blk = memsys.Addr(0x200000)
	r.OnAccess(blk, 0, 0, 8, true, 10)
	r.OnAccess(blk, 0, 0, 8, true, 12)
	r.OnAccess(blk, 3, 8, 8, false, 14)
	ln := r.Line(blk + 5) // any address inside the line resolves
	if ln == nil {
		t.Fatal("line not recorded")
	}
	if ln.FirstCycle != 10 || ln.LastCycle != 14 {
		t.Fatalf("cycle bounds [%d,%d], want [10,14]", ln.FirstCycle, ln.LastCycle)
	}
	if ln.Reads != 1 || ln.Writes != 2 {
		t.Fatalf("reads/writes = %d/%d, want 1/2", ln.Reads, ln.Writes)
	}
	if h := ln.Heat(0); h[0] != 2 || h[7] != 2 || h[8] != 0 {
		t.Fatalf("core-0 heat = %v", h[:9])
	}
	if h := ln.Heat(3); h[8] != 1 {
		t.Fatalf("core-3 heat byte 8 = %d, want 1", h[8])
	}
	if got := ln.Cores(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("cores = %v, want [0 3]", got)
	}
	if w := ln.Writers(); len(w) != 1 || w[0] != 0 {
		t.Fatalf("writers = %v, want [0]", w)
	}
	if !ln.Contended() {
		t.Fatal("two cores + a write must count as contended")
	}

	r.OnDecision(blk, DecDetect, -1, "", 1, 20)
	r.OnDecision(blk, DecPrvBegin, 2, "", 0, 30)
	r.OnDecision(blk, DecPrvTerminate, -1, "conflict", 15, 45)
	if len(ln.Timeline) != 3 || ln.Timeline[2].Cause != "conflict" {
		t.Fatalf("timeline = %+v", ln.Timeline)
	}
	if c, ok := ln.DetectCycle(); !ok || c != 20 {
		t.Fatalf("detect cycle = %d/%v, want 20/true", c, ok)
	}
	if ln.PrvCycle != 30 || ln.PrvEpisodes != 1 {
		t.Fatalf("prv cycle/episodes = %d/%d, want 30/1", ln.PrvCycle, ln.PrvEpisodes)
	}
}

func TestRecorderBeforeAfterSplit(t *testing.T) {
	r := New()
	r.Begin(64, 4)
	const blk = memsys.Addr(0x300000)
	r.OnInvalidation(blk, 1, 5)
	r.OnMiss(blk, 1, 40, 6)
	r.OnDecision(blk, DecPrvBegin, 0, "", 0, 10)
	r.OnInvalidation(blk, 2, 15)
	r.OnMiss(blk, 2, 40, 16)
	r.OnMiss(blk, 3, 60, 17)
	ln := r.Line(blk)
	if ln.InvBefore != 1 || ln.InvAfter != 1 {
		t.Fatalf("inv before/after = %d/%d, want 1/1", ln.InvBefore, ln.InvAfter)
	}
	if ln.MissBefore != 1 || ln.MissAfter != 2 {
		t.Fatalf("miss before/after = %d/%d, want 1/2", ln.MissBefore, ln.MissAfter)
	}
	if ln.MissCyclesBefore != 40 || ln.MissCyclesAfter != 100 {
		t.Fatalf("miss cycles before/after = %d/%d, want 40/100",
			ln.MissCyclesBefore, ln.MissCyclesAfter)
	}
}

// score builds a recorder exercising four ground-truth lines: a detected FS
// line (TP), an undetected contended FS line (FN), a detected truly shared
// line (FP), and a detected mixed line (excluded).
func scoreFixture() (*Recorder, *GroundTruth) {
	gt := NewGroundTruth(64)
	r := New()
	r.Begin(64, 4)
	contend := func(blk memsys.Addr) {
		r.OnAccess(blk, 0, 0, 8, true, 100)
		r.OnAccess(blk, 1, 8, 8, true, 110)
	}

	gt.Mark(0x1000, 64, LabelFalse) // TP: contended, detected at 150
	contend(0x1000)
	r.OnDecision(0x1000, DecDetect, -1, "", 1, 150)

	gt.Mark(0x2000, 64, LabelFalse) // FN: contended, never detected
	contend(0x2000)

	gt.Mark(0x3000, 64, LabelShared) // FP: truly shared but detected
	contend(0x3000)
	r.OnDecision(0x3000, DecDetect, -1, "", 1, 160)

	gt.Mark(0x4000, 64, LabelShared|LabelFalse) // mixed: not scored
	contend(0x4000)
	r.OnDecision(0x4000, DecDetect, -1, "", 1, 170)

	gt.Mark(0x5000, 64, LabelFalse) // uncontended FS: not a positive
	r.OnAccess(0x5000, 0, 0, 8, true, 100)

	// Detection outside the ground truth: reported, not scored.
	contend(0x6000)
	r.OnDecision(0x6000, DecDetect, -1, "", 1, 180)
	return r, gt
}

func TestScore(t *testing.T) {
	r, gt := scoreFixture()
	a := Score(r, gt)
	if a.TP != 1 || a.FP != 1 || a.FN != 1 || a.Mixed != 1 || a.Unlabeled != 1 {
		t.Fatalf("TP/FP/FN/Mixed/Unlabeled = %d/%d/%d/%d/%d, want 1/1/1/1/1",
			a.TP, a.FP, a.FN, a.Mixed, a.Unlabeled)
	}
	if a.LabeledFS != 3 || a.Positives != 2 {
		t.Fatalf("labeledFS/positives = %d/%d, want 3/2", a.LabeledFS, a.Positives)
	}
	if a.Precision != 0.5 || a.Recall != 0.5 {
		t.Fatalf("precision/recall = %v/%v, want 0.5/0.5", a.Precision, a.Recall)
	}
	if a.MeanTTD != 50 { // detected at 150, first access at 100
		t.Fatalf("mean TTD = %v, want 50", a.MeanTTD)
	}
}

func TestScoreVacuous(t *testing.T) {
	a := Score(nil, nil)
	if a.Precision != 1 || a.Recall != 1 {
		t.Fatalf("vacuous precision/recall = %v/%v, want 1/1", a.Precision, a.Recall)
	}
	r := New()
	r.Begin(64, 4)
	a = Score(r, NewGroundTruth(64))
	if a.Precision != 1 || a.Recall != 1 {
		t.Fatalf("empty precision/recall = %v/%v, want 1/1", a.Precision, a.Recall)
	}
}

// TestForensicsDisabledDoesNotAllocate is the allocsmoke gate for the
// recorder's disabled path: a nil *Recorder must make every hook a no-op
// with zero allocations, so attaching forensics only when asked keeps the
// simulation hot path allocation-free.
func TestForensicsDisabledDoesNotAllocate(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Begin(64, 8)
		r.OnAccess(0x1000, 1, 0, 8, true, 1)
		r.OnMiss(0x1000, 1, 40, 2)
		r.OnInvalidation(0x1000, 2, 3)
		r.OnDecision(0x1000, DecDetect, -1, "", 1, 4)
		if r.Lines() != nil || r.Line(0x1000) != nil || r.BlockSize() != 0 {
			t.Fatal("nil recorder must observe nothing")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %v per run, want 0", allocs)
	}
}
