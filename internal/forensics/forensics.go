// Package forensics is the per-cache-line flight recorder: it hooks the
// directory's decision points (detect, privatize, abort, terminate, merge)
// and the L1 commit/miss paths, and keeps per-line byte×core access
// heatmaps, a decision timeline with causes, and repair-efficacy attribution
// (invalidations and misses on a line before vs. after its first
// privatization).
//
// It also defines the workload ground-truth vocabulary: generators label
// every allocated line as private, truly shared or falsely shared *by
// construction*, and Score compares the detector's classifications against
// those labels to produce the reproduction's precision/recall and
// time-to-detection figures.
//
// Like the obs tracer, the disabled state is a nil *Recorder: every hook is
// nil-receiver safe and allocation-free, and the coherence/core call sites
// additionally guard with a nil check so a disabled run pays one predictable
// branch per hook. The recorder is not safe for concurrent use; attach one
// recorder per run (the simulator is single-threaded per run, and a
// *Recorder field keeps Options comparable for runner memoization).
package forensics

import (
	"sort"

	"fscoherence/internal/memsys"
)

// Label classifies a cache line's sharing structure by construction.
// Labels are bitmasks: a line can legitimately be both falsely and truly
// shared (e.g. a packed spinlock pool), in which case neither a detection
// nor its absence is scored.
type Label uint8

const (
	// LabelPrivate marks lines accessed by at most one core.
	LabelPrivate Label = 1 << iota
	// LabelShared marks truly shared lines (the same bytes are accessed by
	// several cores: locks, barriers, shared counters, read-shared data).
	LabelShared
	// LabelFalse marks falsely shared lines (disjoint bytes of one line are
	// accessed by different cores).
	LabelFalse
)

func (l Label) String() string {
	switch l {
	case LabelPrivate:
		return "private"
	case LabelShared:
		return "true-sharing"
	case LabelFalse:
		return "false-sharing"
	case LabelShared | LabelFalse:
		return "mixed"
	case 0:
		return "unlabeled"
	}
	return "mixed"
}

// GroundTruth maps cache-line addresses to construction-time labels.
type GroundTruth struct {
	// BlockSize is the line size the labels were assigned at.
	BlockSize int

	lines map[memsys.Addr]Label
}

// NewGroundTruth returns an empty label set for the given line size.
func NewGroundTruth(blockSize int) *GroundTruth {
	return &GroundTruth{BlockSize: blockSize, lines: map[memsys.Addr]Label{}}
}

// Mark labels every line overlapping [addr, addr+size), replacing any prior
// label (generators call it last-writer-wins: implicit allocator labels
// first, explicit workload knowledge second).
func (g *GroundTruth) Mark(addr memsys.Addr, size int, l Label) {
	if g == nil || size <= 0 {
		return
	}
	first := addr.BlockAlign(g.BlockSize)
	last := (addr + memsys.Addr(size) - 1).BlockAlign(g.BlockSize)
	for a := first; a <= last; a += memsys.Addr(g.BlockSize) {
		g.lines[a] = l
	}
}

// Label returns the line's label (0 = unlabeled).
func (g *GroundTruth) Label(line memsys.Addr) Label {
	if g == nil {
		return 0
	}
	return g.lines[line.BlockAlign(g.BlockSize)]
}

// Lines returns every labeled line address in increasing order.
func (g *GroundTruth) Lines() []memsys.Addr {
	if g == nil {
		return nil
	}
	out := make([]memsys.Addr, 0, len(g.lines))
	for a := range g.lines {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the number of lines labeled exactly l.
func (g *GroundTruth) Count(l Label) int {
	if g == nil {
		return 0
	}
	n := 0
	for _, v := range g.lines {
		if v == l {
			n++
		}
	}
	return n
}

// DecisionKind enumerates the recorded protocol decisions.
type DecisionKind uint8

const (
	// DecDetect: the detector classified the line as falsely shared.
	DecDetect DecisionKind = iota
	// DecContended: the detector classified the line as contended
	// truly-shared (§VII).
	DecContended
	// DecPrvBegin: a privatized episode began on the line.
	DecPrvBegin
	// DecPrvAbort: a privatization initiation aborted mid-flight.
	DecPrvAbort
	// DecPrvTerminate: a privatized episode terminated (Cause holds the
	// reason: conflict, abort, evict, forced, end; Arg the episode length).
	DecPrvTerminate
	// DecPrvMerge: one core's privatized copy was byte-merged back.
	DecPrvMerge
)

func (k DecisionKind) String() string {
	switch k {
	case DecDetect:
		return "detect"
	case DecContended:
		return "contended"
	case DecPrvBegin:
		return "prv-begin"
	case DecPrvAbort:
		return "prv-abort"
	case DecPrvTerminate:
		return "prv-terminate"
	case DecPrvMerge:
		return "prv-merge"
	}
	return "?"
}

// Decision is one timeline entry for a line.
type Decision struct {
	Cycle uint64
	Kind  DecisionKind
	// Core is the core the decision attributes (-1 when none).
	Core int
	// Cause labels the decision (termination reason; empty otherwise).
	Cause string
	// Arg carries a kind-specific value (episode number for detect,
	// episode length in cycles for prv-terminate).
	Arg uint64
}

// Line is the flight record of one cache line.
type Line struct {
	Addr memsys.Addr

	// FirstCycle/LastCycle bound the line's committed accesses.
	FirstCycle uint64
	LastCycle  uint64

	// Reads/Writes count committed accesses by kind.
	Reads  uint64
	Writes uint64

	// Timeline lists the protocol decisions on the line in cycle order.
	Timeline []Decision

	// Repair-efficacy attribution: invalidation messages targeting the
	// line and demand misses on it, split at the line's first
	// privatization. A repaired line should show the After rates collapse.
	InvBefore  uint64
	InvAfter   uint64
	MissBefore uint64
	MissAfter  uint64

	// MissCycles sums demand-miss latencies on the line (Before/After
	// split like the counts).
	MissCyclesBefore uint64
	MissCyclesAfter  uint64

	// PrvCycle is the cycle of the first privatization (0 = never
	// privatized; PrvEpisodes disambiguates a real cycle-0 begin).
	PrvCycle    uint64
	PrvEpisodes int

	heat  [][]uint64 // [core][byte] committed-access counts
	wmask [4]uint64  // cores that wrote the line (memsys.MaxCores bits)
	rmask [4]uint64  // cores that read the line
}

// Heat returns the byte-access counts committed by core (nil when the core
// never touched the line). The slice is indexed by byte offset.
func (ln *Line) Heat(core int) []uint64 {
	if core < 0 || core >= len(ln.heat) {
		return nil
	}
	return ln.heat[core]
}

// Cores returns the cores that touched the line, in increasing order.
func (ln *Line) Cores() []int {
	var out []int
	for c := range ln.heat {
		if ln.heat[c] != nil {
			out = append(out, c)
		}
	}
	return out
}

// Writers returns the cores that wrote the line, in increasing order.
func (ln *Line) Writers() []int { return maskCores(&ln.wmask) }

// Readers returns the cores that read the line, in increasing order.
func (ln *Line) Readers() []int { return maskCores(&ln.rmask) }

func maskCores(m *[4]uint64) []int {
	var out []int
	for w, bits := range m {
		for b := 0; bits != 0; b, bits = b+1, bits>>1 {
			if bits&1 != 0 {
				out = append(out, w*64+b)
			}
		}
	}
	return out
}

// Contended reports whether the line was touched by at least two cores and
// written at least once during the run — the precondition for the detector
// to have anything to find. Score counts only contended FS-labeled lines as
// positives: an FS-labeled line the workload never actually contended on
// cannot be expected to be detected.
func (ln *Line) Contended() bool {
	if ln.Writes == 0 {
		return false
	}
	return len(ln.Cores()) >= 2
}

// DetectCycle returns the cycle of the first detect decision (ok=false when
// the line was never detected).
func (ln *Line) DetectCycle() (uint64, bool) {
	for _, d := range ln.Timeline {
		if d.Kind == DecDetect {
			return d.Cycle, true
		}
	}
	return 0, false
}

// Recorder is the per-run flight recorder. A nil *Recorder is the disabled
// recorder: every method is a no-op.
type Recorder struct {
	blockSize int
	cores     int
	lines     map[memsys.Addr]*Line
}

// New returns an enabled, empty recorder. The simulator sizes it at
// construction through Begin.
func New() *Recorder {
	return &Recorder{blockSize: 64, lines: map[memsys.Addr]*Line{}}
}

// Begin resets the recorder for a run on the given machine shape. The
// simulator calls it from sim.New; safe on a nil receiver.
func (r *Recorder) Begin(blockSize, cores int) {
	if r == nil {
		return
	}
	r.blockSize = blockSize
	r.cores = cores
	r.lines = map[memsys.Addr]*Line{}
}

// BlockSize returns the line size the recorder was sized for.
func (r *Recorder) BlockSize() int {
	if r == nil {
		return 0
	}
	return r.blockSize
}

func (r *Recorder) line(blk memsys.Addr, cycle uint64) *Line {
	ln := r.lines[blk]
	if ln == nil {
		ln = &Line{Addr: blk, FirstCycle: cycle}
		r.lines[blk] = ln
	}
	return ln
}

// OnAccess records one committed access (the L1 commit path).
func (r *Recorder) OnAccess(blk memsys.Addr, core, off, size int, write bool, cycle uint64) {
	if r == nil {
		return
	}
	ln := r.line(blk, cycle)
	ln.LastCycle = cycle
	if write {
		ln.Writes++
		setCore(&ln.wmask, core)
	} else {
		ln.Reads++
		setCore(&ln.rmask, core)
	}
	if core < 0 {
		return
	}
	if core >= len(ln.heat) {
		grown := make([][]uint64, core+1)
		copy(grown, ln.heat)
		ln.heat = grown
	}
	row := ln.heat[core]
	if row == nil {
		row = make([]uint64, r.blockSize)
		ln.heat[core] = row
	}
	for i := 0; i < size && off+i < len(row); i++ {
		row[off+i]++
	}
}

func setCore(m *[4]uint64, core int) {
	if core >= 0 && core < 256 {
		m[core/64] |= 1 << (core % 64)
	}
}

// OnMiss records one demand miss on the line with its latency.
func (r *Recorder) OnMiss(blk memsys.Addr, core int, latency, cycle uint64) {
	if r == nil {
		return
	}
	ln := r.line(blk, cycle)
	if ln.PrvEpisodes > 0 {
		ln.MissAfter++
		ln.MissCyclesAfter += latency
	} else {
		ln.MissBefore++
		ln.MissCyclesBefore += latency
	}
}

// OnInvalidation records one invalidation (or exclusive intervention)
// message targeting core for the line.
func (r *Recorder) OnInvalidation(blk memsys.Addr, core int, cycle uint64) {
	if r == nil {
		return
	}
	ln := r.line(blk, cycle)
	if ln.PrvEpisodes > 0 {
		ln.InvAfter++
	} else {
		ln.InvBefore++
	}
}

// OnDecision appends one protocol decision to the line's timeline.
func (r *Recorder) OnDecision(blk memsys.Addr, kind DecisionKind, core int, cause string, arg, cycle uint64) {
	if r == nil {
		return
	}
	ln := r.line(blk, cycle)
	ln.Timeline = append(ln.Timeline, Decision{Cycle: cycle, Kind: kind, Core: core, Cause: cause, Arg: arg})
	if kind == DecPrvBegin {
		if ln.PrvEpisodes == 0 {
			ln.PrvCycle = cycle
		}
		ln.PrvEpisodes++
	}
}

// Lines returns every recorded line, sorted by address.
func (r *Recorder) Lines() []*Line {
	if r == nil {
		return nil
	}
	out := make([]*Line, 0, len(r.lines))
	for _, ln := range r.lines {
		out = append(out, ln)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Line returns the record for the line containing a (nil when untouched).
func (r *Recorder) Line(a memsys.Addr) *Line {
	if r == nil {
		return nil
	}
	return r.lines[a.BlockAlign(r.blockSize)]
}

// Accuracy scores the detector's classifications against workload ground
// truth. Positives are the FS-labeled lines the run actually contended on
// (see Line.Contended); lines labeled both falsely and truly shared are
// ambiguous by construction and excluded from both precision and recall.
type Accuracy struct {
	// LabeledFS counts all FS-labeled lines; Positives the contended
	// subset scored for recall.
	LabeledFS int
	Positives int

	TP int // detected, FS-labeled, contended
	FP int // detected but labeled private or truly shared
	FN int // contended FS-labeled lines never detected

	// Mixed counts detections on FS|TS-labeled lines (not scored);
	// Unlabeled counts detections outside the ground truth (not scored).
	Mixed     int
	Unlabeled int

	Precision float64 // TP / (TP+FP); 1.0 when nothing is scored
	Recall    float64 // TP / Positives; 1.0 when no positives

	// MeanTTD is the mean time-to-detection over true positives: cycles
	// from the line's first access to its first detect decision.
	MeanTTD float64
}

// Score computes detection accuracy from a run's flight record and the
// workload's ground truth. Detections are the DecDetect entries on the
// recorder's timelines (recorded in both FSDetect and FSLite modes).
func Score(r *Recorder, gt *GroundTruth) Accuracy {
	var a Accuracy
	if r == nil || gt == nil {
		a.Precision, a.Recall = 1, 1
		return a
	}
	var ttdSum uint64
	for _, addr := range gt.Lines() {
		label := gt.Label(addr)
		ln := r.Line(addr)
		if label == LabelFalse {
			a.LabeledFS++
		}
		detected := false
		var detectAt uint64
		if ln != nil {
			detectAt, detected = ln.DetectCycle()
		}
		switch {
		case label == LabelFalse && ln != nil && ln.Contended():
			a.Positives++
			if detected {
				a.TP++
				ttdSum += detectAt - ln.FirstCycle
			} else {
				a.FN++
			}
		case detected && label == LabelShared|LabelFalse:
			a.Mixed++
		case detected: // private, truly shared, or uncontended FS label
			a.FP++
		}
	}
	// Detections on lines outside the ground truth (stack, runtime, ...):
	// not judgeable, reported separately.
	for _, ln := range r.Lines() {
		if _, ok := ln.DetectCycle(); ok && gt.Label(ln.Addr) == 0 {
			a.Unlabeled++
		}
	}
	a.Precision, a.Recall = 1, 1
	if a.TP+a.FP > 0 {
		a.Precision = float64(a.TP) / float64(a.TP+a.FP)
	}
	if a.Positives > 0 {
		a.Recall = float64(a.TP) / float64(a.Positives)
	}
	if a.TP > 0 {
		a.MeanTTD = float64(ttdSum) / float64(a.TP)
	}
	return a
}
