package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockAlign(t *testing.T) {
	cases := []struct {
		addr      Addr
		blockSize int
		align     Addr
		offset    int
	}{
		{0x0, 64, 0x0, 0},
		{0x3f, 64, 0x0, 63},
		{0x40, 64, 0x40, 0},
		{0x12345, 64, 0x12340, 5},
		{0x7, 8, 0x0, 7},
		{0x1234, 4096, 0x1000, 0x234},
	}
	for _, c := range cases {
		if got := c.addr.BlockAlign(c.blockSize); got != c.align {
			t.Errorf("BlockAlign(%v,%d) = %v, want %v", c.addr, c.blockSize, got, c.align)
		}
		if got := c.addr.BlockOffset(c.blockSize); got != c.offset {
			t.Errorf("BlockOffset(%v,%d) = %d, want %d", c.addr, c.blockSize, got, c.offset)
		}
	}
}

func TestBlockAlignProperty(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		al := addr.BlockAlign(64)
		off := addr.BlockOffset(64)
		return al+Addr(off) == addr && off >= 0 && off < 64 && al.BlockOffset(64) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2(t *testing.T) {
	for i := 0; i < 30; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(%d) = %d, want %d", 1<<i, got, i)
		}
	}
	if !IsPow2(1) || !IsPow2(64) || IsPow2(0) || IsPow2(3) || IsPow2(-4) {
		t.Error("IsPow2 misbehaves")
	}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewSetAssoc[int]("t", 8, 2, 64)
	if c.Sets() != 4 || c.Ways() != 2 || c.Entries() != 8 {
		t.Fatalf("geometry: sets=%d ways=%d", c.Sets(), c.Ways())
	}
	if e := c.Lookup(0x100); e != nil {
		t.Fatal("lookup on empty cache should miss")
	}
	e, ev := c.Insert(0x100)
	if ev != nil {
		t.Fatal("insert into empty set should not evict")
	}
	e.Payload = 42
	got := c.Lookup(0x13f) // same block as 0x100
	if got == nil || got.Payload != 42 {
		t.Fatalf("lookup after insert: %+v", got)
	}
	if c.Peek(0x200) != nil {
		t.Fatal("peek of absent address should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One set (sets=1): ways fill up, then LRU should be displaced.
	c := NewSetAssoc[string]("t", 2, 2, 64)
	a1, a2, a3 := Addr(0x000), Addr(0x040), Addr(0x080)
	e, _ := c.Insert(a1)
	e.Payload = "a1"
	e, _ = c.Insert(a2)
	e.Payload = "a2"
	// Touch a1 so a2 becomes LRU.
	c.Lookup(a1)
	e, ev := c.Insert(a3)
	e.Payload = "a3"
	if ev == nil || ev.Tag != a2 || ev.Payload != "a2" {
		t.Fatalf("expected eviction of a2, got %+v", ev)
	}
	if c.Peek(a1) == nil || c.Peek(a3) == nil || c.Peek(a2) != nil {
		t.Fatal("wrong residency after eviction")
	}
}

func TestCachePinBlocksEviction(t *testing.T) {
	c := NewSetAssoc[int]("t", 2, 2, 64)
	c.Insert(0x000)
	c.Insert(0x040)
	if !c.Pin(0x000) {
		t.Fatal("pin failed")
	}
	_, ev := c.Insert(0x080)
	if ev == nil || ev.Tag != 0x040 {
		t.Fatalf("eviction should pick unpinned way, got %+v", ev)
	}
	if !c.Unpin(0x000) {
		t.Fatal("unpin failed")
	}
	_, ev = c.Insert(0x0c0)
	if ev == nil {
		t.Fatal("expected an eviction")
	}
}

func TestCacheVictimAllPinned(t *testing.T) {
	c := NewSetAssoc[int]("t", 2, 2, 64)
	c.Insert(0x000)
	c.Insert(0x040)
	c.Pin(0x000)
	c.Pin(0x040)
	if v := c.Victim(0x080); v != nil {
		t.Fatal("victim should be nil when all ways pinned")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Insert with all ways pinned should panic")
		}
	}()
	c.Insert(0x080)
}

func TestCacheInvalidate(t *testing.T) {
	c := NewSetAssoc[int]("t", 8, 2, 64)
	e, _ := c.Insert(0x100)
	e.Payload = 7
	ev := c.Invalidate(0x100)
	if ev == nil || ev.Payload != 7 {
		t.Fatalf("invalidate returned %+v", ev)
	}
	if c.Peek(0x100) != nil {
		t.Fatal("line still resident after invalidate")
	}
	if c.Invalidate(0x100) != nil {
		t.Fatal("second invalidate should return nil")
	}
}

func TestCacheDoubleInsertPanics(t *testing.T) {
	c := NewSetAssoc[int]("t", 8, 2, 64)
	c.Insert(0x100)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert should panic")
		}
	}()
	c.Insert(0x100)
}

func TestCacheSetIndexing(t *testing.T) {
	c := NewSetAssoc[int]("t", 64, 4, 64) // 16 sets
	// Addresses differing only in offset bits map to the same set.
	if c.SetIndex(0x1000) != c.SetIndex(0x103f) {
		t.Fatal("same block mapped to different sets")
	}
	// Consecutive blocks map to consecutive sets modulo set count.
	s0 := c.SetIndex(0x0000)
	s1 := c.SetIndex(0x0040)
	if (s0+1)%16 != s1 {
		t.Fatalf("consecutive blocks: set %d then %d", s0, s1)
	}
}

// Property: a cache never holds more than `ways` blocks of the same set, and
// lookups after inserts behave like a bounded map.
func TestCacheAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewSetAssoc[uint64]("t", 32, 4, 64)
	resident := make(map[Addr]uint64)
	for i := 0; i < 20000; i++ {
		a := Addr(rng.Intn(64)) * 64
		switch rng.Intn(3) {
		case 0: // insert if absent
			if c.Peek(a) == nil {
				e, ev := c.Insert(a)
				e.Payload = uint64(i)
				resident[a] = uint64(i)
				if ev != nil {
					if _, ok := resident[ev.Tag]; !ok {
						t.Fatalf("evicted non-resident %v", ev.Tag)
					}
					delete(resident, ev.Tag)
				}
			}
		case 1: // lookup
			e := c.Lookup(a)
			want, ok := resident[a]
			if ok != (e != nil) {
				t.Fatalf("residency mismatch for %v: model=%v cache=%v", a, ok, e != nil)
			}
			if e != nil && e.Payload != want {
				t.Fatalf("payload mismatch for %v", a)
			}
		case 2: // invalidate
			ev := c.Invalidate(a)
			_, ok := resident[a]
			if ok != (ev != nil) {
				t.Fatalf("invalidate mismatch for %v", a)
			}
			delete(resident, a)
		}
		if c.CountValid() != len(resident) {
			t.Fatalf("count mismatch: cache=%d model=%d", c.CountValid(), len(resident))
		}
	}
}

func TestCacheForEach(t *testing.T) {
	c := NewSetAssoc[int]("t", 8, 2, 64)
	c.Insert(0x000)
	c.Insert(0x040)
	c.Insert(0x080)
	n := 0
	c.ForEach(func(e *Entry[int]) { n++ })
	if n != 3 {
		t.Fatalf("ForEach visited %d entries, want 3", n)
	}
}
