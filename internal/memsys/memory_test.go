package memsys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory(64)
	b := m.ReadBlock(0x1234)
	if len(b) != 64 {
		t.Fatalf("block size %d", len(b))
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("untouched memory must read zero")
		}
	}
	if m.ByteAt(0xdeadbeef) != 0 {
		t.Fatal("untouched byte must read zero")
	}
	if m.BlocksAllocated() != 0 {
		t.Fatal("reads must not allocate")
	}
}

func TestMemoryReadWriteBlock(t *testing.T) {
	m := NewMemory(64)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 3)
	}
	m.WriteBlock(0x1000, data)
	got := m.ReadBlock(0x1020) // any address in the block
	if !bytes.Equal(got, data) {
		t.Fatal("block round trip failed")
	}
	// Returned slice must be a copy.
	got[0] = 0xff
	if m.ByteAt(0x1000) == 0xff {
		t.Fatal("ReadBlock must return a copy")
	}
}

func TestMemoryByteOps(t *testing.T) {
	m := NewMemory(64)
	m.SetByte(0x105, 0xab)
	if m.ByteAt(0x105) != 0xab {
		t.Fatal("byte round trip failed")
	}
	if m.ByteAt(0x104) != 0 || m.ByteAt(0x106) != 0 {
		t.Fatal("neighbouring bytes disturbed")
	}
	blk := m.ReadBlock(0x100)
	if blk[5] != 0xab {
		t.Fatal("byte not visible through block read")
	}
}

func TestMemoryByteBlockConsistency(t *testing.T) {
	f := func(addr uint16, v byte) bool {
		m := NewMemory(64)
		a := Addr(addr)
		m.SetByte(a, v)
		blk := m.ReadBlock(a)
		return blk[a.BlockOffset(64)] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOracleDetectsMismatch(t *testing.T) {
	o := NewOracle(64)
	o.CommitStore(0x100, []byte{1, 2, 3, 4}, 10)
	if !o.CheckLoad(0x100, []byte{1, 2, 3, 4}, 11, "ok") {
		t.Fatal("matching load flagged")
	}
	if o.CheckLoad(0x101, []byte{9}, 12, "bad") {
		t.Fatal("mismatching load not flagged")
	}
	if len(o.Violations()) != 1 {
		t.Fatalf("violations = %v", o.Violations())
	}
	if o.Expected(0x102) != 3 {
		t.Fatal("Expected wrong")
	}
}

func TestOracleOverwrite(t *testing.T) {
	o := NewOracle(64)
	o.CommitStore(0x40, []byte{1}, 1)
	o.CommitStore(0x40, []byte{2}, 2)
	if !o.CheckLoad(0x40, []byte{2}, 3, "latest") {
		t.Fatal("oracle did not track latest store")
	}
}

func TestOracleSameCycleTieAccepted(t *testing.T) {
	o := NewOracle(64)
	o.CommitStore(0x40, []byte{1}, 5)
	o.CommitStore(0x40, []byte{2}, 9)
	// A load committing in the same cycle as the last store may observe the
	// previous value (the two events are unordered at cycle resolution)...
	if !o.CheckLoad(0x40, []byte{1}, 9, "tie") {
		t.Fatal("same-cycle previous value must be accepted")
	}
	// ... but one cycle later it must not.
	if o.CheckLoad(0x40, []byte{1}, 10, "stale") {
		t.Fatal("stale value accepted after the tie cycle")
	}
	// And an unrelated value is never accepted, even in the tie cycle.
	if o.CheckLoad(0x40, []byte{7}, 9, "garbage") {
		t.Fatal("garbage accepted in tie cycle")
	}
}

func TestOracleLoadWindow(t *testing.T) {
	o := NewOracle(64)
	o.CommitStore(0x40, []byte{1}, 100)
	o.CommitStore(0x40, []byte{2}, 200)
	o.CommitStore(0x40, []byte{3}, 300)

	// A load whose serialization window spans a store may observe either
	// side of it.
	if !o.CheckLoadWindow(0x40, []byte{1}, 150, 250, "old side") {
		t.Fatal("value live at window start rejected")
	}
	if !o.CheckLoadWindow(0x40, []byte{2}, 150, 250, "new side") {
		t.Fatal("value live at window end rejected")
	}
	// Values dead before the window opened, or born after it closed, fail.
	if o.CheckLoadWindow(0x40, []byte{1}, 250, 260, "dead") {
		t.Fatal("value dead before issue accepted")
	}
	if o.CheckLoadWindow(0x40, []byte{3}, 150, 250, "future") {
		t.Fatal("value born after commit accepted")
	}
	// Window boundaries are inclusive: a store committing exactly at issue
	// keeps its predecessor acceptable (same-cycle tie), and exactly at
	// commit makes its successor acceptable.
	if !o.CheckLoadWindow(0x40, []byte{1}, 200, 210, "tie at issue") {
		t.Fatal("tie at issue rejected")
	}
	if !o.CheckLoadWindow(0x40, []byte{3}, 250, 300, "tie at commit") {
		t.Fatal("tie at commit rejected")
	}
	// The implicit initial version: every byte reads zero from cycle 0.
	if !o.CheckLoadWindow(0x40, []byte{0}, 0, 100, "initial zero") {
		t.Fatal("initial zero rejected")
	}
	if o.CheckLoadWindow(0x40, []byte{0}, 101, 150, "initial dead") {
		t.Fatal("initial zero accepted after overwrite")
	}
}

func TestOracleWindowHistoryBound(t *testing.T) {
	o := NewOracle(64)
	// Far more versions than the history cap; the newest ones must stay
	// exact, and truncation must never produce a false violation.
	for i := 1; i <= 4*maxVersions; i++ {
		o.CommitStore(0x40, []byte{byte(i)}, uint64(10*i))
	}
	last := 4 * maxVersions
	if !o.CheckLoadWindow(0x40, []byte{byte(last)}, uint64(10*last), uint64(10*last), "cur") {
		t.Fatal("current value rejected after truncation")
	}
	if !o.CheckLoadWindow(0x40, []byte{byte(last - 1)}, uint64(10*(last-1)), uint64(10*last), "prev") {
		t.Fatal("previous value in window rejected after truncation")
	}
	if o.CheckLoadWindow(0x40, []byte{byte(last - 1)}, uint64(10*last)+1, uint64(10*last)+2, "stale") {
		t.Fatal("stale value accepted after truncation")
	}
}

func TestOracleViolationCap(t *testing.T) {
	o := NewOracle(64)
	for i := 0; i < 100; i++ {
		o.CheckLoad(Addr(i), []byte{1}, 1, "x")
	}
	if len(o.Violations()) != 32 {
		t.Fatalf("violation list should cap at 32, got %d", len(o.Violations()))
	}
}
