package memsys

import "strconv"

// Memory is a flat physical memory with lazily allocated cache-block-sized
// chunks. Unwritten bytes read as zero.
type Memory struct {
	blockSize int
	blocks    map[Addr][]byte
}

// NewMemory returns an empty memory using the given block size.
func NewMemory(blockSize int) *Memory {
	if !IsPow2(blockSize) {
		panic("memsys: memory block size must be a power of two")
	}
	return &Memory{blockSize: blockSize, blocks: make(map[Addr][]byte)}
}

// BlockSize returns the block size in bytes.
func (m *Memory) BlockSize() int { return m.blockSize }

// ReadBlock returns a copy of the block containing a.
func (m *Memory) ReadBlock(a Addr) []byte {
	a = a.BlockAlign(m.blockSize)
	out := make([]byte, m.blockSize)
	if b, ok := m.blocks[a]; ok {
		copy(out, b)
	}
	return out
}

// WriteBlock stores data (len == blockSize) as the block containing a.
func (m *Memory) WriteBlock(a Addr, data []byte) {
	if len(data) != m.blockSize {
		panic("memsys: WriteBlock length mismatch")
	}
	a = a.BlockAlign(m.blockSize)
	b, ok := m.blocks[a]
	if !ok {
		b = make([]byte, m.blockSize)
		m.blocks[a] = b
	}
	copy(b, data)
}

// ReadByte returns the byte at a.
func (m *Memory) ByteAt(a Addr) byte {
	b, ok := m.blocks[a.BlockAlign(m.blockSize)]
	if !ok {
		return 0
	}
	return b[a.BlockOffset(m.blockSize)]
}

// WriteByte stores v at address a.
func (m *Memory) SetByte(a Addr, v byte) {
	ba := a.BlockAlign(m.blockSize)
	b, ok := m.blocks[ba]
	if !ok {
		b = make([]byte, m.blockSize)
		m.blocks[ba] = b
	}
	b[a.BlockOffset(m.blockSize)] = v
}

// BlockSlice returns the live storage of the block containing a, allocating
// it if needed. Unlike ReadBlock it does not copy: writes through the slice
// update memory directly, and the slice is invalidated by nothing (blocks are
// never freed). The functional-warming fast path uses it to touch block bytes
// without a copy per access.
func (m *Memory) BlockSlice(a Addr) []byte {
	ba := a.BlockAlign(m.blockSize)
	b, ok := m.blocks[ba]
	if !ok {
		b = make([]byte, m.blockSize)
		m.blocks[ba] = b
	}
	return b
}

// BlocksAllocated returns how many distinct blocks have been touched.
func (m *Memory) BlocksAllocated() int { return len(m.blocks) }

// version records one committed value of a byte and the cycle from which it
// was live (until the next version's from-cycle).
type version struct {
	val  byte
	from uint64
}

// maxVersions bounds the per-byte history. A load's serialization window
// spans at most one miss round-trip, so a byte would need this many distinct
// committed values inside a single miss to defeat the bound; overflow drops
// the oldest version (extending its successor's span backwards — a
// conservative accept, never a false violation).
const maxVersions = 96

// oracleBlock tracks per-byte current value plus a bounded history of
// committed versions. hist[i] is append-only in commit-cycle order; the byte
// implicitly holds zero from cycle 0 until its first committed version.
type oracleBlock struct {
	cur  []byte
	hist [][]version
}

// commit records v as byte i's value from cycle onward. A rewrite of the
// same value extends the live span rather than splitting it.
func (b *oracleBlock) commit(i int, v byte, cycle uint64) {
	if v == b.cur[i] {
		return
	}
	h := b.hist[i]
	if len(h) >= maxVersions {
		copy(h, h[1:])
		h = h[:len(h)-1]
	}
	b.hist[i] = append(h, version{val: v, from: cycle})
	b.cur[i] = v
}

// liveDuring reports whether byte i held value v at some cycle in [issue,
// commit]. Versions are walked newest to oldest; interval boundaries are
// treated inclusively on both sides, which preserves the cycle-granularity
// tie tolerance: a load and a store committing in the same cycle are
// unordered at cycle resolution, so both the old and the new value pass.
func (b *oracleBlock) liveDuring(i int, v byte, issue, commit uint64) bool {
	h := b.hist[i]
	end := ^uint64(0)
	for k := len(h) - 1; k >= -1; k-- {
		var val byte
		var from uint64
		if k >= 0 {
			val, from = h[k].val, h[k].from
		}
		if from > commit {
			// Version became live after the window closed; the window can
			// only see its predecessors.
			end = from
			continue
		}
		// This version was live during [from, end); the window intersects it.
		if val == v && end >= issue {
			return true
		}
		if from < issue {
			// Every older version's span ends strictly before the window.
			return false
		}
		end = from
	}
	return false
}

// Oracle is a byte-granular golden memory used by tests. The simulator
// updates it at the exact simulated cycle a store commits. A load is checked
// against every value the byte held during the load's serialization window
// [issue, commit]: a miss-path load binds its value when the directory
// serializes the request, which can be many cycles before the data message
// arrives and the load commits. Under uniform network latency the bound
// value is always still current at commit, but latency jitter (the fault
// injector) legally delays the data past younger stores' commits — see
// PROTOCOL.md §"Network ordering contract". Because the baseline protocol is
// MESI with blocking cores and privatized lines are single-writer per byte,
// each byte's committed values form a total order, so the window check is
// exact, not an approximation.
type Oracle struct {
	blockSize int
	blocks    map[Addr]*oracleBlock
	// violations accumulates mismatch descriptions (tests assert empty).
	violations []string
}

// NewOracle returns an empty oracle with the given block size.
func NewOracle(blockSize int) *Oracle {
	return &Oracle{blockSize: blockSize, blocks: make(map[Addr]*oracleBlock)}
}

func (o *Oracle) block(a Addr) *oracleBlock {
	ba := a.BlockAlign(o.blockSize)
	b := o.blocks[ba]
	if b == nil {
		b = &oracleBlock{
			cur:  make([]byte, o.blockSize),
			hist: make([][]version, o.blockSize),
		}
		o.blocks[ba] = b
	}
	return b
}

// CommitStore records that a store of value bytes at address a committed at
// the given cycle.
func (o *Oracle) CommitStore(a Addr, value []byte, cycle uint64) {
	b := o.block(a)
	off := a.BlockOffset(o.blockSize)
	for i, v := range value {
		b.commit(off+i, v, cycle)
	}
}

// CommitReduce records a commutative accumulation at address a: the oracle
// adds the little-endian delta rather than overwriting, because reduction
// commits interleave in an arbitrary (but sum-preserving) order.
func (o *Oracle) CommitReduce(a Addr, delta []byte, cycle uint64) {
	b := o.block(a)
	off := a.BlockOffset(o.blockSize)
	var carry uint16
	for i := range delta {
		s := uint16(b.cur[off+i]) + uint16(delta[i]) + carry
		carry = s >> 8
		b.commit(off+i, byte(s), cycle)
	}
}

// CheckLoad verifies the observed bytes for a load whose serialization point
// coincides with its commit cycle (hits and RMW reads under exclusive
// ownership). It is CheckLoadWindow with a single-cycle window.
func (o *Oracle) CheckLoad(a Addr, observed []byte, cycle uint64, context string) bool {
	return o.CheckLoadWindow(a, observed, cycle, cycle, context)
}

// CheckLoadWindow verifies the observed bytes for a load that issued at
// cycle issue and committed at cycle commit: each byte must match some value
// the byte held during [issue, commit]. It records a violation per
// mismatching byte and reports whether the whole load matched.
func (o *Oracle) CheckLoadWindow(a Addr, observed []byte, issue, commit uint64, context string) bool {
	b := o.block(a)
	off := a.BlockOffset(o.blockSize)
	ok := true
	for i, v := range observed {
		if b.liveDuring(off+i, v, issue, commit) {
			continue
		}
		ok = false
		if len(o.violations) < 32 {
			o.violations = append(o.violations,
				context+": addr "+(a+Addr(i)).String()+
					": got "+hexByte(v)+" want "+hexByte(b.cur[off+i])+
					" (no version matches in window ["+
					strconv.FormatUint(issue, 10)+", "+strconv.FormatUint(commit, 10)+"])")
		}
	}
	return ok
}

// Expected returns the oracle's current value of the byte at a.
func (o *Oracle) Expected(a Addr) byte {
	b := o.blocks[a.BlockAlign(o.blockSize)]
	if b == nil {
		return 0
	}
	return b.cur[a.BlockOffset(o.blockSize)]
}

// Violations returns the recorded mismatches (empty in a correct run).
func (o *Oracle) Violations() []string { return o.violations }

func hexByte(b byte) string {
	const digits = "0123456789abcdef"
	return "0x" + string([]byte{digits[b>>4], digits[b&0xf]})
}
