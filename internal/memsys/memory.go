package memsys

// Memory is a flat physical memory with lazily allocated cache-block-sized
// chunks. Unwritten bytes read as zero.
type Memory struct {
	blockSize int
	blocks    map[Addr][]byte
}

// NewMemory returns an empty memory using the given block size.
func NewMemory(blockSize int) *Memory {
	if !IsPow2(blockSize) {
		panic("memsys: memory block size must be a power of two")
	}
	return &Memory{blockSize: blockSize, blocks: make(map[Addr][]byte)}
}

// BlockSize returns the block size in bytes.
func (m *Memory) BlockSize() int { return m.blockSize }

// ReadBlock returns a copy of the block containing a.
func (m *Memory) ReadBlock(a Addr) []byte {
	a = a.BlockAlign(m.blockSize)
	out := make([]byte, m.blockSize)
	if b, ok := m.blocks[a]; ok {
		copy(out, b)
	}
	return out
}

// WriteBlock stores data (len == blockSize) as the block containing a.
func (m *Memory) WriteBlock(a Addr, data []byte) {
	if len(data) != m.blockSize {
		panic("memsys: WriteBlock length mismatch")
	}
	a = a.BlockAlign(m.blockSize)
	b, ok := m.blocks[a]
	if !ok {
		b = make([]byte, m.blockSize)
		m.blocks[a] = b
	}
	copy(b, data)
}

// ReadByte returns the byte at a.
func (m *Memory) ByteAt(a Addr) byte {
	b, ok := m.blocks[a.BlockAlign(m.blockSize)]
	if !ok {
		return 0
	}
	return b[a.BlockOffset(m.blockSize)]
}

// WriteByte stores v at address a.
func (m *Memory) SetByte(a Addr, v byte) {
	ba := a.BlockAlign(m.blockSize)
	b, ok := m.blocks[ba]
	if !ok {
		b = make([]byte, m.blockSize)
		m.blocks[ba] = b
	}
	b[a.BlockOffset(m.blockSize)] = v
}

// BlocksAllocated returns how many distinct blocks have been touched.
func (m *Memory) BlocksAllocated() int { return len(m.blocks) }

// oracleBlock tracks per-byte current value, previous value and the cycle of
// the last committed store.
type oracleBlock struct {
	cur   []byte
	prev  []byte
	cycle []uint64
}

// Oracle is a byte-granular golden memory used by tests. The simulator
// updates it at the exact simulated cycle a store commits; every load is
// checked against the oracle value at its own commit cycle. Because the
// baseline protocol is MESI with blocking cores and privatized lines are
// single-writer per byte, every load must observe the latest committed store
// to each byte — with one cycle-granularity exception: when a load and the
// store it is logically ordered *before* commit in the same cycle (their
// completion messages arrive together), the two events are unordered at
// cycle resolution, so the byte's previous value is also accepted if its
// last store committed in that same cycle.
type Oracle struct {
	blockSize int
	blocks    map[Addr]*oracleBlock
	// violations accumulates mismatch descriptions (tests assert empty).
	violations []string
}

// NewOracle returns an empty oracle with the given block size.
func NewOracle(blockSize int) *Oracle {
	return &Oracle{blockSize: blockSize, blocks: make(map[Addr]*oracleBlock)}
}

func (o *Oracle) block(a Addr) *oracleBlock {
	ba := a.BlockAlign(o.blockSize)
	b := o.blocks[ba]
	if b == nil {
		b = &oracleBlock{
			cur:   make([]byte, o.blockSize),
			prev:  make([]byte, o.blockSize),
			cycle: make([]uint64, o.blockSize),
		}
		o.blocks[ba] = b
	}
	return b
}

// CommitStore records that a store of value bytes at address a committed at
// the given cycle.
func (o *Oracle) CommitStore(a Addr, value []byte, cycle uint64) {
	b := o.block(a)
	off := a.BlockOffset(o.blockSize)
	for i, v := range value {
		b.prev[off+i] = b.cur[off+i]
		b.cur[off+i] = v
		b.cycle[off+i] = cycle
	}
}

// CommitReduce records a commutative accumulation at address a: the oracle
// adds the little-endian delta rather than overwriting, because reduction
// commits interleave in an arbitrary (but sum-preserving) order.
func (o *Oracle) CommitReduce(a Addr, delta []byte, cycle uint64) {
	b := o.block(a)
	off := a.BlockOffset(o.blockSize)
	var carry uint16
	for i := range delta {
		b.prev[off+i] = b.cur[off+i]
		s := uint16(b.cur[off+i]) + uint16(delta[i]) + carry
		b.cur[off+i] = byte(s)
		carry = s >> 8
		b.cycle[off+i] = cycle
	}
}

// CheckLoad verifies the observed bytes for a load committing at cycle and
// records a violation on mismatch. It reports whether the load matched.
func (o *Oracle) CheckLoad(a Addr, observed []byte, cycle uint64, context string) bool {
	b := o.block(a)
	off := a.BlockOffset(o.blockSize)
	ok := true
	for i, v := range observed {
		want := b.cur[off+i]
		if v == want {
			continue
		}
		// Cycle-granularity tie: the byte's last store committed this very
		// cycle; the load may legally be ordered before it.
		if b.cycle[off+i] == cycle && v == b.prev[off+i] {
			continue
		}
		ok = false
		if len(o.violations) < 32 {
			o.violations = append(o.violations,
				context+": addr "+(a+Addr(i)).String()+
					": got "+hexByte(v)+" want "+hexByte(want))
		}
	}
	return ok
}

// Expected returns the oracle's current value of the byte at a.
func (o *Oracle) Expected(a Addr) byte {
	b := o.blocks[a.BlockAlign(o.blockSize)]
	if b == nil {
		return 0
	}
	return b.cur[a.BlockOffset(o.blockSize)]
}

// Violations returns the recorded mismatches (empty in a correct run).
func (o *Oracle) Violations() []string { return o.violations }

func hexByte(b byte) string {
	const digits = "0123456789abcdef"
	return "0x" + string([]byte{digits[b>>4], digits[b&0xf]})
}
