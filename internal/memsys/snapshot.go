package memsys

import (
	"fmt"
	"sort"
)

// Checkpoint support: SetAssoc and Memory expose exact-state save/restore so
// a drained machine can be serialized and later reconstructed bit-identically.
// SetAssoc state is captured per valid entry at its absolute slot index along
// with the LRU timestamp, pin bit and the global LRU clock — victim selection
// depends on exact way positions and relative timestamps, so both are
// preserved verbatim. The 8-slot MRU shortcut is deliberately NOT saved: it
// is a pure index cache whose hit path performs the same LRU refresh as the
// set scan, so starting it empty after a restore is behaviorally invisible.

// AssocEntry is one valid cache entry in an AssocImage. Index is the absolute
// slot (set*ways + way); Payload is the client's serializable projection of
// the per-line state.
type AssocEntry[S any] struct {
	Index   int
	Tag     Addr
	LastUse uint64
	Pinned  bool
	Payload S
}

// AssocImage is the serializable state of a SetAssoc cache. Entries are in
// ascending Index order, so images of identical caches are identical.
type AssocImage[S any] struct {
	Clock   uint64
	Entries []AssocEntry[S]
}

// SaveAssoc captures the exact replacement state of c. conv projects each
// live payload into its serializable form S (payloads may hold pointers or
// unexported state; S must be flat and encoder-friendly).
func SaveAssoc[V, S any](c *SetAssoc[V], conv func(*V) S) AssocImage[S] {
	img := AssocImage[S]{Clock: c.clock}
	for i := range c.entries {
		e := &c.entries[i]
		if !e.Valid {
			continue
		}
		img.Entries = append(img.Entries, AssocEntry[S]{
			Index:   i,
			Tag:     e.Tag,
			LastUse: e.lastUse,
			Pinned:  e.pinned,
			Payload: conv(&e.Payload),
		})
	}
	return img
}

// LoadAssoc restores c to the exact state captured by SaveAssoc, replacing
// all current contents. conv rebuilds each live payload from its serialized
// form. The cache geometry must match the one the image was saved from.
func LoadAssoc[V, S any](c *SetAssoc[V], img AssocImage[S], conv func(S) V) error {
	var zero Entry[V]
	for i := range c.entries {
		c.entries[i] = zero
	}
	for i := range c.occ {
		c.occ[i], c.pins[i] = 0, 0
	}
	c.clock = img.Clock
	c.mruTags = [8]Addr{}
	c.mruIdxs = [8]int32{-1, -1, -1, -1, -1, -1, -1, -1}
	for _, se := range img.Entries {
		if se.Index < 0 || se.Index >= len(c.entries) {
			return fmt.Errorf("memsys: %s: restore entry index %d out of range (cache has %d entries — geometry mismatch?)",
				c.name, se.Index, len(c.entries))
		}
		e := &c.entries[se.Index]
		if e.Valid {
			return fmt.Errorf("memsys: %s: duplicate restore entry at index %d", c.name, se.Index)
		}
		*e = Entry[V]{Valid: true, Tag: se.Tag, Payload: conv(se.Payload), lastUse: se.LastUse, pinned: se.Pinned}
		si, w := se.Index/c.ways, se.Index%c.ways
		c.occ[si] |= 1 << uint(w)
		if se.Pinned {
			c.pins[si] |= 1 << uint(w)
		}
	}
	return nil
}

// MemBlock is one allocated block of a Memory image.
type MemBlock struct {
	Addr Addr
	Data []byte
}

// Image captures every allocated block, sorted by address so identical
// memories produce identical images.
func (m *Memory) Image() []MemBlock {
	out := make([]MemBlock, 0, len(m.blocks))
	for a, b := range m.blocks {
		out = append(out, MemBlock{Addr: a, Data: append([]byte(nil), b...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// RestoreImage replaces the memory's contents with the given image.
func (m *Memory) RestoreImage(blocks []MemBlock) error {
	m.blocks = make(map[Addr][]byte, len(blocks))
	for _, b := range blocks {
		if len(b.Data) != m.blockSize {
			return fmt.Errorf("memsys: restore block %v has %d bytes, memory block size is %d", b.Addr, len(b.Data), m.blockSize)
		}
		m.blocks[b.Addr] = append([]byte(nil), b.Data...)
	}
	return nil
}
