package memsys

import "testing"

// TestCoreSetBasics exercises membership across word boundaries (the 256-core
// set spans four uint64 words).
func TestCoreSetBasics(t *testing.T) {
	var s CoreSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, c := range []int{0, 7, 63, 64, 127, 128, 200, 255} {
		s.Add(c)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	for _, c := range []int{0, 63, 64, 255} {
		if !s.Has(c) {
			t.Errorf("Has(%d) = false after Add", c)
		}
	}
	if s.Has(1) || s.Has(129) || s.Has(254) {
		t.Error("Has reports cores never added")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 7 {
		t.Error("Remove(64) failed")
	}
}

// TestCoreSetHasOther pins the "any sharer besides me" query used by the
// directory and the SAM false-sharing tests.
func TestCoreSetHasOther(t *testing.T) {
	var s CoreSet
	s.Add(200)
	if s.HasOther(200) {
		t.Error("HasOther(200) with only 200 present")
	}
	if !s.HasOther(3) {
		t.Error("HasOther(3) should see core 200")
	}
	s.Add(3)
	if !s.HasOther(200) {
		t.Error("HasOther(200) should see core 3")
	}
}

// TestCoreSetForEach checks enumeration order (ascending) across words.
func TestCoreSetForEach(t *testing.T) {
	var s CoreSet
	want := []int{5, 63, 70, 191, 255}
	for _, c := range want {
		s.Add(c)
	}
	var got []int
	s.ForEach(func(c int) { got = append(got, c) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d cores, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
