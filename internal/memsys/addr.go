// Package memsys provides the basic memory-system building blocks used by the
// simulator: physical addresses, a generic set-associative cache with LRU
// replacement (used for the L1 caches, the LLC and the SAM metadata table),
// a flat backing memory with lazily allocated blocks, and a byte-granular
// golden-memory oracle used by the test suite to verify coherence.
package memsys

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// BlockAlign returns the address of the cache block containing a, for the
// given block size (which must be a power of two).
func (a Addr) BlockAlign(blockSize int) Addr {
	return a &^ Addr(blockSize-1)
}

// BlockOffset returns the byte offset of a within its cache block.
func (a Addr) BlockOffset(blockSize int) int {
	return int(a & Addr(blockSize-1))
}

func (a Addr) String() string {
	return fmt.Sprintf("0x%x", uint64(a))
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool {
	return v > 0 && v&(v-1) == 0
}

// Log2 returns log2(v) for a power-of-two v.
func Log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
