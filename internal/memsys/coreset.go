package memsys

import (
	"math/bits"
	"strconv"
)

// MaxCores is the largest machine the simulator models. Sharer vectors,
// SAM reader sets and reduction-writer sets are fixed-width bitsets of this
// many bits, so raising it is a recompile, not a format change.
const MaxCores = 256

// coreSetWords is the number of 64-bit words backing a CoreSet.
const coreSetWords = MaxCores / 64

// CoreSet is a fixed-width bitset of core indices [0, MaxCores). The zero
// value is the empty set; CoreSet is a value type (assignment copies), which
// directory transactions rely on when they snapshot sharer vectors.
type CoreSet [coreSetWords]uint64

// Has reports whether core c is in the set.
func (s *CoreSet) Has(c int) bool { return s[c>>6]&(1<<uint(c&63)) != 0 }

// Add inserts core c.
func (s *CoreSet) Add(c int) { s[c>>6] |= 1 << uint(c&63) }

// Remove deletes core c.
func (s *CoreSet) Remove(c int) { s[c>>6] &^= 1 << uint(c&63) }

// Count returns the number of cores in the set.
func (s *CoreSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *CoreSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// HasOther reports whether the set contains any core besides c.
func (s *CoreSet) HasOther(c int) bool {
	for i, w := range s {
		if i == c>>6 {
			w &^= 1 << uint(c&63)
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every member in ascending core order.
func (s *CoreSet) ForEach(fn func(c int)) {
	for i, w := range s {
		base := i << 6
		for w != 0 {
			c := bits.TrailingZeros64(w)
			w &^= 1 << uint(c)
			fn(base + c)
		}
	}
}

// String renders the set as a binary literal (least-significant core on the
// right), matching the old %b formatting of single-word sharer vectors when
// all members fit in 64 bits.
func (s *CoreSet) String() string {
	hi := coreSetWords - 1
	for hi > 0 && s[hi] == 0 {
		hi--
	}
	out := strconv.FormatUint(s[hi], 2)
	for i := hi - 1; i >= 0; i-- {
		w := strconv.FormatUint(s[i], 2)
		out += "_" + zeros64[len(w):] + w
	}
	return out
}

const zeros64 = "0000000000000000000000000000000000000000000000000000000000000000"
