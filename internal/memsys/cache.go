package memsys

import (
	"fmt"
	"math/bits"
)

// Entry is one way of one set in a SetAssoc cache. Tag holds the full
// block-aligned address (not a truncated tag) for simplicity; Payload is the
// per-line state owned by the client (coherence state, data, metadata, ...).
type Entry[V any] struct {
	Valid   bool
	Tag     Addr // block-aligned address
	Payload V
	lastUse uint64 // LRU timestamp
	pinned  bool
}

// SetAssoc is a generic set-associative cache with true-LRU replacement.
// Addresses are mapped to sets by block-aligned address bits; the payload
// type V carries whatever per-line state the client needs.
//
// Each set keeps a packed occupancy bitset (bit w set iff way w is valid) and
// a pin bitset, so lookups walk only the valid ways and victim selection finds
// an invalid way with a single TrailingZeros64 — the hot-loop win for mostly
// warm caches where the per-way Valid test used to dominate. This caps the
// associativity at 64 ways.
type SetAssoc[V any] struct {
	name      string
	sets      int
	ways      int
	blockSize int
	setShift  int
	setMask   Addr
	waysMask  uint64
	entries   []Entry[V] // sets*ways, row-major by set
	occ       []uint64   // per-set valid-way bitsets
	pins      []uint64   // per-set pinned-way bitsets
	clock     uint64

	// mru is an 8-slot direct-mapped cache of recent Lookup hits (entry index
	// per tag, slot chosen by low line-address bits). It is purely an index
	// shortcut: a hit performs the same LRU refresh as the set scan would, so
	// replacement behavior is bit-identical. Insert and Invalidate clear it
	// (entry indexes stay stable, but a displaced or removed tag must not
	// linger).
	mruTags [8]Addr
	mruIdxs [8]int32
}

// NewSetAssoc builds a cache with the given total entry count and
// associativity. entries must be a multiple of ways and entries/ways must be a
// power of two; ways must be at most 64 (the occupancy bitset width).
// blockSize must be a power of two and determines how addresses are
// block-aligned before indexing.
func NewSetAssoc[V any](name string, entries, ways, blockSize int) *SetAssoc[V] {
	if ways <= 0 || entries <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("memsys: bad cache geometry %s: entries=%d ways=%d", name, entries, ways))
	}
	if ways > 64 {
		panic(fmt.Sprintf("memsys: associativity above 64 unsupported, got %d (%s)", ways, name))
	}
	sets := entries / ways
	if !IsPow2(sets) {
		panic(fmt.Sprintf("memsys: sets must be a power of two, got %d (%s)", sets, name))
	}
	if !IsPow2(blockSize) {
		panic(fmt.Sprintf("memsys: block size must be a power of two, got %d (%s)", blockSize, name))
	}
	var waysMask uint64
	if ways == 64 {
		waysMask = ^uint64(0)
	} else {
		waysMask = uint64(1)<<uint(ways) - 1
	}
	return &SetAssoc[V]{
		name:      name,
		sets:      sets,
		ways:      ways,
		blockSize: blockSize,
		setShift:  Log2(blockSize),
		setMask:   Addr(sets - 1),
		waysMask:  waysMask,
		entries:   make([]Entry[V], sets*ways),
		occ:       make([]uint64, sets),
		pins:      make([]uint64, sets),
		mruIdxs:   [8]int32{-1, -1, -1, -1, -1, -1, -1, -1},
	}
}

// Sets returns the number of sets.
func (c *SetAssoc[V]) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc[V]) Ways() int { return c.ways }

// BlockSize returns the block size in bytes.
func (c *SetAssoc[V]) BlockSize() int { return c.blockSize }

// Entries returns the total number of entries.
func (c *SetAssoc[V]) Entries() int { return c.sets * c.ways }

// SetIndex returns the set index for address a.
func (c *SetAssoc[V]) SetIndex(a Addr) int {
	return int((a >> Addr(c.setShift)) & c.setMask)
}

// peekIdx returns the set index and way index of the entry holding a, or
// way -1 on miss. a must be block-aligned.
func (c *SetAssoc[V]) peekIdx(a Addr) (int, int) {
	si := c.SetIndex(a)
	set := c.entries[si*c.ways : (si+1)*c.ways]
	for m := c.occ[si]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if set[w].Tag == a {
			return si, w
		}
	}
	return si, -1
}

// Lookup returns the entry holding address a, or nil on miss. On hit the
// entry's LRU timestamp is refreshed.
func (c *SetAssoc[V]) Lookup(a Addr) *Entry[V] {
	a = a.BlockAlign(c.blockSize)
	s := int((a >> Addr(c.setShift)) & 7)
	if i := c.mruIdxs[s]; i >= 0 && c.mruTags[s] == a {
		e := &c.entries[i]
		c.clock++
		e.lastUse = c.clock
		return e
	}
	si, w := c.peekIdx(a)
	if w < 0 {
		return nil
	}
	e := &c.entries[si*c.ways+w]
	c.clock++
	e.lastUse = c.clock
	c.mruIdxs[s], c.mruTags[s] = int32(si*c.ways+w), a
	return e
}

// Peek returns the entry holding address a without refreshing LRU state, or
// nil on miss.
func (c *SetAssoc[V]) Peek(a Addr) *Entry[V] {
	a = a.BlockAlign(c.blockSize)
	si, w := c.peekIdx(a)
	if w < 0 {
		return nil
	}
	return &c.entries[si*c.ways+w]
}

// victimIdx returns the way Insert would use for (block-aligned) a: the
// lowest invalid way if one exists, otherwise the least recently used
// unpinned way. It returns -1 if every way in the set is pinned.
func (c *SetAssoc[V]) victimIdx(a Addr) (int, int) {
	si := c.SetIndex(a)
	if inv := ^c.occ[si] & c.waysMask; inv != 0 {
		return si, bits.TrailingZeros64(inv)
	}
	set := c.entries[si*c.ways : (si+1)*c.ways]
	victim := -1
	for m := c.occ[si] &^ c.pins[si]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if victim < 0 || set[w].lastUse < set[victim].lastUse {
			victim = w
		}
	}
	return si, victim
}

// Victim returns the entry that Insert would use for address a: an invalid
// way if one exists, otherwise the least recently used unpinned way. It
// returns nil if every way in the set is pinned.
func (c *SetAssoc[V]) Victim(a Addr) *Entry[V] {
	a = a.BlockAlign(c.blockSize)
	si, w := c.victimIdx(a)
	if w < 0 {
		return nil
	}
	return &c.entries[si*c.ways+w]
}

// Insert places address a into the cache and returns the entry plus, if a
// valid line was displaced, a copy of the displaced entry. The new entry's
// payload is the zero value of V; the caller fills it in. Insert panics if a
// is already present (use Lookup first) or if all ways are pinned.
func (c *SetAssoc[V]) Insert(a Addr) (*Entry[V], *Entry[V]) {
	a = a.BlockAlign(c.blockSize)
	if c.Peek(a) != nil {
		panic(fmt.Sprintf("memsys: %s: insert of resident address %s", c.name, a))
	}
	si, w := c.victimIdx(a)
	if w < 0 {
		panic(fmt.Sprintf("memsys: %s: all ways pinned in set of %s", c.name, a))
	}
	victim := &c.entries[si*c.ways+w]
	var evicted *Entry[V]
	if victim.Valid {
		ev := *victim
		evicted = &ev
	}
	var zero V
	c.clock++
	*victim = Entry[V]{Valid: true, Tag: a, Payload: zero, lastUse: c.clock}
	c.occ[si] |= 1 << uint(w)
	c.pins[si] &^= 1 << uint(w)
	c.mruIdxs = [8]int32{-1, -1, -1, -1, -1, -1, -1, -1}
	return victim, evicted
}

// Invalidate removes address a from the cache, returning the entry contents
// (by copy) if it was present.
func (c *SetAssoc[V]) Invalidate(a Addr) *Entry[V] {
	a = a.BlockAlign(c.blockSize)
	si, w := c.peekIdx(a)
	if w < 0 {
		return nil
	}
	e := &c.entries[si*c.ways+w]
	ev := *e
	var zero Entry[V]
	*e = zero
	c.occ[si] &^= 1 << uint(w)
	c.pins[si] &^= 1 << uint(w)
	c.mruIdxs = [8]int32{-1, -1, -1, -1, -1, -1, -1, -1}
	return &ev
}

// Pin marks the line holding a as ineligible for replacement. It reports
// whether the line was found.
func (c *SetAssoc[V]) Pin(a Addr) bool {
	a = a.BlockAlign(c.blockSize)
	si, w := c.peekIdx(a)
	if w < 0 {
		return false
	}
	c.entries[si*c.ways+w].pinned = true
	c.pins[si] |= 1 << uint(w)
	return true
}

// Unpin clears the replacement pin on the line holding a.
func (c *SetAssoc[V]) Unpin(a Addr) bool {
	a = a.BlockAlign(c.blockSize)
	si, w := c.peekIdx(a)
	if w < 0 {
		return false
	}
	c.entries[si*c.ways+w].pinned = false
	c.pins[si] &^= 1 << uint(w)
	return true
}

// ForEach calls fn for every valid entry. Mutating payloads inside fn is
// allowed; inserting or invalidating is not.
func (c *SetAssoc[V]) ForEach(fn func(*Entry[V])) {
	for si := 0; si < c.sets; si++ {
		set := c.entries[si*c.ways : (si+1)*c.ways]
		for m := c.occ[si]; m != 0; m &= m - 1 {
			fn(&set[bits.TrailingZeros64(m)])
		}
	}
}

// CountValid returns the number of valid entries.
func (c *SetAssoc[V]) CountValid() int {
	n := 0
	for _, m := range c.occ {
		n += bits.OnesCount64(m)
	}
	return n
}
