package memsys

import "fmt"

// Entry is one way of one set in a SetAssoc cache. Tag holds the full
// block-aligned address (not a truncated tag) for simplicity; Payload is the
// per-line state owned by the client (coherence state, data, metadata, ...).
type Entry[V any] struct {
	Valid   bool
	Tag     Addr // block-aligned address
	Payload V
	lastUse uint64 // LRU timestamp
	pinned  bool
}

// SetAssoc is a generic set-associative cache with true-LRU replacement.
// Addresses are mapped to sets by block-aligned address bits; the payload
// type V carries whatever per-line state the client needs.
type SetAssoc[V any] struct {
	name      string
	sets      int
	ways      int
	blockSize int
	setShift  int
	setMask   Addr
	entries   []Entry[V] // sets*ways, row-major by set
	clock     uint64
}

// NewSetAssoc builds a cache with the given total entry count and
// associativity. entries must be a multiple of ways and entries/ways must be a
// power of two. blockSize must be a power of two and determines how addresses
// are block-aligned before indexing.
func NewSetAssoc[V any](name string, entries, ways, blockSize int) *SetAssoc[V] {
	if ways <= 0 || entries <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("memsys: bad cache geometry %s: entries=%d ways=%d", name, entries, ways))
	}
	sets := entries / ways
	if !IsPow2(sets) {
		panic(fmt.Sprintf("memsys: sets must be a power of two, got %d (%s)", sets, name))
	}
	if !IsPow2(blockSize) {
		panic(fmt.Sprintf("memsys: block size must be a power of two, got %d (%s)", blockSize, name))
	}
	return &SetAssoc[V]{
		name:      name,
		sets:      sets,
		ways:      ways,
		blockSize: blockSize,
		setShift:  Log2(blockSize),
		setMask:   Addr(sets - 1),
		entries:   make([]Entry[V], sets*ways),
	}
}

// Sets returns the number of sets.
func (c *SetAssoc[V]) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc[V]) Ways() int { return c.ways }

// BlockSize returns the block size in bytes.
func (c *SetAssoc[V]) BlockSize() int { return c.blockSize }

// Entries returns the total number of entries.
func (c *SetAssoc[V]) Entries() int { return c.sets * c.ways }

// SetIndex returns the set index for address a.
func (c *SetAssoc[V]) SetIndex(a Addr) int {
	return int((a >> Addr(c.setShift)) & c.setMask)
}

func (c *SetAssoc[V]) set(a Addr) []Entry[V] {
	i := c.SetIndex(a)
	return c.entries[i*c.ways : (i+1)*c.ways]
}

// Lookup returns the entry holding address a, or nil on miss. On hit the
// entry's LRU timestamp is refreshed.
func (c *SetAssoc[V]) Lookup(a Addr) *Entry[V] {
	a = a.BlockAlign(c.blockSize)
	set := c.set(a)
	for i := range set {
		if set[i].Valid && set[i].Tag == a {
			c.clock++
			set[i].lastUse = c.clock
			return &set[i]
		}
	}
	return nil
}

// Peek returns the entry holding address a without refreshing LRU state, or
// nil on miss.
func (c *SetAssoc[V]) Peek(a Addr) *Entry[V] {
	a = a.BlockAlign(c.blockSize)
	set := c.set(a)
	for i := range set {
		if set[i].Valid && set[i].Tag == a {
			return &set[i]
		}
	}
	return nil
}

// Victim returns the entry that Insert would use for address a: an invalid
// way if one exists, otherwise the least recently used unpinned way. It
// returns nil if every way in the set is pinned.
func (c *SetAssoc[V]) Victim(a Addr) *Entry[V] {
	a = a.BlockAlign(c.blockSize)
	set := c.set(a)
	var victim *Entry[V]
	for i := range set {
		e := &set[i]
		if !e.Valid {
			return e
		}
		if e.pinned {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	return victim
}

// Insert places address a into the cache and returns the entry plus, if a
// valid line was displaced, a copy of the displaced entry. The new entry's
// payload is the zero value of V; the caller fills it in. Insert panics if a
// is already present (use Lookup first) or if all ways are pinned.
func (c *SetAssoc[V]) Insert(a Addr) (*Entry[V], *Entry[V]) {
	a = a.BlockAlign(c.blockSize)
	if c.Peek(a) != nil {
		panic(fmt.Sprintf("memsys: %s: insert of resident address %s", c.name, a))
	}
	victim := c.Victim(a)
	if victim == nil {
		panic(fmt.Sprintf("memsys: %s: all ways pinned in set of %s", c.name, a))
	}
	var evicted *Entry[V]
	if victim.Valid {
		ev := *victim
		evicted = &ev
	}
	var zero V
	c.clock++
	*victim = Entry[V]{Valid: true, Tag: a, Payload: zero, lastUse: c.clock}
	return victim, evicted
}

// Invalidate removes address a from the cache, returning the entry contents
// (by copy) if it was present.
func (c *SetAssoc[V]) Invalidate(a Addr) *Entry[V] {
	e := c.Peek(a)
	if e == nil {
		return nil
	}
	ev := *e
	var zero Entry[V]
	*e = zero
	return &ev
}

// Pin marks the line holding a as ineligible for replacement. It reports
// whether the line was found.
func (c *SetAssoc[V]) Pin(a Addr) bool {
	e := c.Peek(a)
	if e == nil {
		return false
	}
	e.pinned = true
	return true
}

// Unpin clears the replacement pin on the line holding a.
func (c *SetAssoc[V]) Unpin(a Addr) bool {
	e := c.Peek(a)
	if e == nil {
		return false
	}
	e.pinned = false
	return true
}

// ForEach calls fn for every valid entry. Mutating payloads inside fn is
// allowed; inserting or invalidating is not.
func (c *SetAssoc[V]) ForEach(fn func(*Entry[V])) {
	for i := range c.entries {
		if c.entries[i].Valid {
			fn(&c.entries[i])
		}
	}
}

// CountValid returns the number of valid entries.
func (c *SetAssoc[V]) CountValid() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].Valid {
			n++
		}
	}
	return n
}
