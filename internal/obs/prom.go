package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the collected metrics in the Prometheus text
// exposition format (version 0.0.4), so a long campaign can expose a
// scrape endpoint or drop a .prom file for the node-exporter textfile
// collector mid-flight.
//
// The latest counter sample becomes one `counter` family per counter name,
// and each histogram becomes a `histogram` family with cumulative `le`
// buckets derived from the deterministic power-of-two boundaries, plus the
// standard _sum and _count series. Names are sanitized to the Prometheus
// grammar ([a-zA-Z_:][a-zA-Z0-9_:]*) by mapping every other rune to '_'.
// Output is fully deterministic: families and series sort by name.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	var b strings.Builder

	if n := len(m.samples); n > 0 {
		last := m.samples[n-1]
		names := make([]string, 0, len(last.Counters))
		for k := range last.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "# Snapshot at cycle %d.\n", last.Cycle)
		for _, k := range names {
			pn := promName(k)
			fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
			fmt.Fprintf(&b, "%s %d\n", pn, last.Counters[k])
		}
	}

	for _, h := range m.Histograms() {
		pn := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		// Cumulative buckets: the power-of-two bucket [Lo, Hi] contributes
		// its count to the series with le = Hi. The top bucket's upper
		// bound is the full uint64 range, which folds into +Inf.
		var cum uint64
		for _, bk := range h.Buckets() {
			cum += bk.Count
			if bk.Hi == ^uint64(0) {
				continue
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bk.Hi, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count())
		fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum())
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count())
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps an internal metric name ("l1.miss_latency") onto the
// Prometheus metric-name grammar ("l1_miss_latency"). A leading digit gets
// an underscore prefix.
func promName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
