package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fscoherence/internal/memsys"
)

func TestTracerRingAndTotal(t *testing.T) {
	tr := NewTracer(Config{TraceCapacity: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i), Kind: KindNetSend, Core: -1, Slice: -1})
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("len(Events) = %d, want 4 (ring capacity)", len(ev))
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (oldest-first after wrap)", i, e.Cycle, want)
		}
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	tr.Reset()
	if tr.Total() != 0 || len(tr.Events()) != 0 {
		t.Errorf("Reset left events behind")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{})
	tr.AddSink(func(Event) {})
	tr.Reset()
	if tr.Events() != nil || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer should report empty state")
	}
}

func TestDisabledPathsDoNotAllocate(t *testing.T) {
	var tr *Tracer
	var h *Histogram
	var m *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Cycle: 1, Kind: KindNetSend, Core: 0, Slice: -1, Name: "GetX"})
		h.Observe(42)
		m.Sample(1, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocated %.1f times per op, want 0", allocs)
	}
}

func TestEnabledEmitDoesNotAllocateAfterWarmup(t *testing.T) {
	tr := NewTracer(Config{TraceCapacity: 64}) // small ring, wraps during the run
	h := &Histogram{Name: "x"}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Cycle: 1, Kind: KindNetSend, Core: 0, Slice: -1, Name: "GetX"})
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("enabled emit allocated %.1f times per event, want 0", allocs)
	}
}

func TestFilterMatch(t *testing.T) {
	blk := uint64(63)
	cases := []struct {
		name string
		f    Filter
		e    Event
		want bool
	}{
		{"zero matches", Filter{}, Event{Kind: KindCommit, Core: 3}, true},
		{"core hit", Filter{Core: 2, HasCore: true}, Event{Kind: KindCommit, Core: 2}, true},
		{"core miss", Filter{Core: 2, HasCore: true}, Event{Kind: KindCommit, Core: 3}, false},
		{"core filters coreless", Filter{Core: 2, HasCore: true}, Event{Kind: KindDirState, Core: -1}, false},
		{"addr block hit", Filter{Addr: 0x1040, HasAddr: true, BlockMask: blk},
			Event{Kind: KindCommit, Addr: 0x107f}, true},
		{"addr block miss", Filter{Addr: 0x1040, HasAddr: true, BlockMask: blk},
			Event{Kind: KindCommit, Addr: 0x1080}, false},
		{"kind hit", Filter{Kinds: Mask(KindNetSend, KindNetRecv)},
			Event{Kind: KindNetRecv}, true},
		{"kind miss", Filter{Kinds: Mask(KindNetSend)},
			Event{Kind: KindCommit}, false},
	}
	for _, c := range cases {
		if got := c.f.Match(c.e); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("addr=0x1040,core=3,class=net|prv", 64)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasAddr || f.Addr != 0x1040 || !f.HasCore || f.Core != 3 || f.BlockMask != 63 {
		t.Fatalf("parsed %+v", f)
	}
	if !f.Kinds.Has(KindNetSend) || !f.Kinds.Has(KindPrvBegin) || f.Kinds.Has(KindCommit) {
		t.Fatalf("kind mask %b", f.Kinds)
	}
	if _, err := ParseFilter("bogus=1", 64); err == nil {
		t.Fatal("want error for unknown key")
	}
	if _, err := ParseFilter("class=nope", 64); err == nil {
		t.Fatal("want error for unknown class")
	}
	if f, err := ParseFilter("", 64); err != nil || f.HasCore || f.HasAddr {
		t.Fatalf("empty spec: %+v, %v", f, err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{Name: "lat"}
	for _, v := range []uint64{0, 1, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	if h.Count() != 9 || h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	want := []Bucket{
		{0, 0, 1},      // 0
		{1, 1, 2},      // 1, 1
		{2, 3, 2},      // 2, 3
		{4, 7, 2},      // 4, 7
		{8, 15, 1},     // 8
		{512, 1023, 1}, // 1000
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMetricsCSV(t *testing.T) {
	m := NewMetrics(Config{MetricsInterval: 100})
	m.Sample(100, map[string]uint64{"a": 1, "b": 2})
	m.Sample(200, map[string]uint64{"a": 3, "c": 4})
	m.Hist("lat").Observe(5)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	wantLines := []string{
		"cycle,a,b,c",
		"100,1,2,0",
		"200,3,0,4",
		"# histogram lat: n=1 mean=5.00 min=5 max=5",
		"4,7,1",
	}
	for _, w := range wantLines {
		if !strings.Contains(got, w) {
			t.Errorf("CSV missing %q in:\n%s", w, got)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	events := []Event{
		{Cycle: 10, Kind: KindNetSend, Core: 0, Slice: -1, Addr: 0x40, Name: "GetX", Arg: 1, Arg2: PackSrcDst(0, 8)},
		{Cycle: 22, Kind: KindNetRecv, Core: -1, Slice: 0, Addr: 0x40, Name: "GetX", Arg: 1, Arg2: PackSrcDst(0, 8)},
		{Cycle: 23, Kind: KindDirState, Core: -1, Slice: 0, Addr: 0x40, Name: "I->M"},
		{Cycle: 30, Kind: KindPrvBegin, Core: -1, Slice: 0, Addr: 0x40, Arg: 2},
		{Cycle: 35, Kind: KindCommit, Core: 2, Slice: -1, Addr: 0x44, Name: "store", Arg: 0xff, Arg2: 4},
		{Cycle: 90, Kind: KindPrvTerminate, Core: -1, Slice: 0, Addr: 0x40, Name: "conflict", Arg: 60, Arg2: 3},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var sawSpan, sawBegin, sawTerm bool
	for _, te := range tf.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := te[field]; !ok {
				t.Fatalf("event %v missing required field %q", te, field)
			}
		}
		name := te["name"].(string)
		switch {
		case te["ph"] == "X" && strings.HasPrefix(name, "PRV"):
			sawSpan = true
			if te["dur"].(float64) != 60 {
				t.Errorf("PRV span dur = %v, want 60", te["dur"])
			}
		case name == "prv.begin":
			sawBegin = true
		case name == "prv.terminate":
			sawTerm = true
		}
	}
	if !sawSpan || !sawBegin || !sawTerm {
		t.Fatalf("span=%v begin=%v term=%v, want all true", sawSpan, sawBegin, sawTerm)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 123, Kind: KindNetSend, Core: 0, Slice: -1,
		Addr: memsys.Addr(0x40), Name: "GetX", Arg: 7, Arg2: PackSrcDst(0, 8)}
	s := e.String()
	for _, want := range []string{"C0000123", "net.send", "GetX", "n0->n8", "seq=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
