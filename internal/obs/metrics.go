package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// Metrics collects interval time series (periodic snapshots of the run's
// stats.Set counters) and named histograms with deterministic power-of-two
// bucket boundaries. A nil *Metrics is the disabled collector: Sample and
// Hist are no-ops (Hist returns a nil *Histogram, whose Observe is itself a
// no-op), so call sites pay one nil check when metrics are off.
type Metrics struct {
	// Interval is the cycle period between snapshots.
	Interval uint64

	samples []Sample
	hists   map[string]*Histogram
}

// Sample is one interval snapshot of the run's counters.
type Sample struct {
	Cycle    uint64
	Counters map[string]uint64
}

// NewMetrics returns a Metrics with the interval from cfg.
func NewMetrics(cfg Config) *Metrics {
	iv := cfg.MetricsInterval
	if iv == 0 {
		iv = DefaultMetricsInterval
	}
	return &Metrics{Interval: iv, hists: map[string]*Histogram{}}
}

// Sample appends a snapshot taken at the given cycle. The counters map is
// retained (callers pass a fresh Snapshot). Safe on a nil receiver.
func (m *Metrics) Sample(cycle uint64, counters map[string]uint64) {
	if m == nil {
		return
	}
	m.samples = append(m.samples, Sample{Cycle: cycle, Counters: counters})
}

// Samples returns the recorded snapshots, oldest-first.
func (m *Metrics) Samples() []Sample {
	if m == nil {
		return nil
	}
	return m.samples
}

// Hist returns the named histogram, creating it on first use. Returns nil
// on a nil receiver, which composes with Histogram's nil-receiver Observe.
func (m *Metrics) Hist(name string) *Histogram {
	if m == nil {
		return nil
	}
	h := m.hists[name]
	if h == nil {
		h = &Histogram{Name: name}
		m.hists[name] = h
	}
	return h
}

// Histograms returns all histograms sorted by name.
func (m *Metrics) Histograms() []*Histogram {
	if m == nil {
		return nil
	}
	names := make([]string, 0, len(m.hists))
	for n := range m.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Histogram, len(names))
	for i, n := range names {
		out[i] = m.hists[n]
	}
	return out
}

// WriteCSV renders the time series as CSV — a cycle column followed by the
// sorted union of every counter name seen in any sample — and then each
// histogram as a comment-prefixed block (bucket lower bound, upper bound,
// count). Output is fully deterministic.
func (m *Metrics) WriteCSV(w io.Writer) error {
	if m == nil {
		return nil
	}
	union := map[string]bool{}
	for _, s := range m.samples {
		for k := range s.Counters {
			union[k] = true
		}
	}
	cols := make([]string, 0, len(union))
	for k := range union {
		cols = append(cols, k)
	}
	sort.Strings(cols)

	var b strings.Builder
	b.WriteString("cycle")
	for _, c := range cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, s := range m.samples {
		fmt.Fprintf(&b, "%d", s.Cycle)
		for _, c := range cols {
			fmt.Fprintf(&b, ",%d", s.Counters[c])
		}
		b.WriteByte('\n')
	}
	for _, h := range m.Histograms() {
		fmt.Fprintf(&b, "# histogram %s: n=%d mean=%.2f min=%d max=%d\n",
			h.Name, h.Count(), h.Mean(), h.Min(), h.Max())
		b.WriteString("# lo,hi,count\n")
		for _, bk := range h.Buckets() {
			fmt.Fprintf(&b, "%d,%d,%d\n", bk.Lo, bk.Hi, bk.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Histogram counts uint64 observations in deterministic power-of-two
// buckets: bucket 0 holds the value 0, and bucket i (i >= 1) holds values v
// with 2^(i-1) <= v < 2^i, i.e. values whose bit length is i. Boundaries
// are fixed by the value domain alone, so histograms from different runs
// and hosts are directly comparable.
type Histogram struct {
	Name string

	counts [65]uint64
	total  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// Observe records v. Safe on a nil receiver (the disabled path).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bits.Len64(v)]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min returns the smallest observation (0 with no observations).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 with no observations).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Merge folds o's observations into h. Because bucket boundaries are fixed
// by the value domain, merging is exact: counts add bucket-wise and the
// summary statistics (count, sum, min, max) combine losslessly. Safe when
// either side is nil or empty; merging an empty histogram is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Bucket is one non-empty histogram bucket covering [Lo, Hi].
type Bucket struct {
	Lo    uint64
	Hi    uint64
	Count uint64
}

// Buckets returns the non-empty buckets in increasing value order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		var lo, hi uint64
		if i == 0 {
			lo, hi = 0, 0
		} else {
			lo = 1 << (i - 1)
			hi = 1<<i - 1
			if i == 64 {
				hi = ^uint64(0)
			}
		}
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}
