package obs

// Tracer records filtered events into a bounded ring buffer and fans them
// out to registered sinks. A nil *Tracer is the disabled tracer: every
// method is a no-op, and hot call sites additionally guard event
// construction behind `if t := x.trace; t != nil { ... }` so the disabled
// path costs one nil check.
//
// Tracer is not synchronized: each simulated system is single-threaded, and
// every run owns its own tracer. Parallel sweeps attach distinct tracers to
// distinct cells.
type Tracer struct {
	buf    []Event
	next   int    // ring write position
	total  uint64 // events recorded (post-filter), including overwritten
	seen   uint64 // events offered (pre-filter)
	filter Filter
	sinks  []func(Event)
}

// NewTracer returns a tracer sized and filtered per cfg.
func NewTracer(cfg Config) *Tracer {
	capacity := cfg.TraceCapacity
	switch {
	case capacity == 0:
		capacity = DefaultTraceCapacity
	case capacity < 0:
		capacity = 0
	}
	return &Tracer{buf: make([]Event, 0, capacity), filter: cfg.Filter}
}

// Emit records e if it passes the filter. Safe on a nil receiver.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.seen++
	if !t.filter.Match(e) {
		return
	}
	t.total++
	if cap(t.buf) > 0 {
		if len(t.buf) < cap(t.buf) {
			t.buf = append(t.buf, e)
		} else {
			t.buf[t.next] = e
		}
		t.next++
		if t.next == cap(t.buf) {
			t.next = 0
		}
	}
	for _, fn := range t.sinks {
		fn(e)
	}
}

// AddSink registers fn to receive every recorded (post-filter) event as it
// happens, independent of ring capacity. Safe on a nil receiver (no-op).
func (t *Tracer) AddSink(fn func(Event)) {
	if t == nil {
		return
	}
	t.sinks = append(t.sinks, fn)
}

// Events returns the buffered events oldest-first. The slice is a copy.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns the number of events recorded post-filter, including any
// that were overwritten after the ring filled.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many recorded events were overwritten by ring
// wrap-around (Total minus what Events can still return).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// Reset discards all buffered events but keeps capacity, filter and sinks.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.next = 0
	t.total = 0
	t.seen = 0
}
