package obs

import (
	"bytes"
	"testing"
)

func TestHistogramMerge(t *testing.T) {
	a := &Histogram{Name: "lat"}
	for _, v := range []uint64{0, 3, 8} {
		a.Observe(v)
	}
	b := &Histogram{Name: "lat"}
	for _, v := range []uint64{1, 1000} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count() != 5 || a.Sum() != 1012 || a.Min() != 0 || a.Max() != 1000 {
		t.Fatalf("merged: count=%d sum=%d min=%d max=%d", a.Count(), a.Sum(), a.Min(), a.Max())
	}
	want := []Bucket{{0, 0, 1}, {1, 1, 1}, {2, 3, 1}, {8, 15, 1}, {512, 1023, 1}}
	got := a.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Merging into an empty histogram must adopt o's min, not keep 0.
	c := &Histogram{Name: "lat"}
	c.Merge(b)
	if c.Min() != 1 || c.Max() != 1000 || c.Count() != 2 {
		t.Errorf("empty.Merge: min=%d max=%d count=%d, want 1/1000/2", c.Min(), c.Max(), c.Count())
	}

	// Nil receiver and nil/empty argument are all no-ops.
	var nilH *Histogram
	nilH.Merge(b)
	before := *a
	a.Merge(nil)
	a.Merge(&Histogram{})
	if *a != before {
		t.Error("merging nil/empty histograms changed the receiver")
	}
}

// TestWriteCSVGolden pins the exact byte output of WriteCSV: the CSV is
// consumed by external tooling, so its shape is a compatibility surface.
func TestWriteCSVGolden(t *testing.T) {
	m := NewMetrics(Config{MetricsInterval: 100})
	m.Sample(100, map[string]uint64{"net.msgs": 7, "l1d.misses": 2})
	m.Sample(200, map[string]uint64{"net.msgs": 19, "cycles": 200})
	h := m.Hist("dir.episode_len")
	for _, v := range []uint64{0, 5, 5, 900} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `cycle,cycles,l1d.misses,net.msgs
100,0,2,7
200,200,0,19
# histogram dir.episode_len: n=4 mean=227.50 min=0 max=900
# lo,hi,count
0,0,1
4,7,2
512,1023,1
`
	if got := buf.String(); got != want {
		t.Errorf("WriteCSV golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusGolden pins the text exposition output: last counter
// sample as counter families, histograms with cumulative le buckets.
func TestWritePrometheusGolden(t *testing.T) {
	m := NewMetrics(Config{MetricsInterval: 100})
	m.Sample(100, map[string]uint64{"net.msgs": 7})
	m.Sample(200, map[string]uint64{"net.msgs": 19, "l1d.misses": 3})
	h := m.Hist("l1.miss-latency")
	for _, v := range []uint64{0, 5, 5, 900} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `# Snapshot at cycle 200.
# TYPE l1d_misses counter
l1d_misses 3
# TYPE net_msgs counter
net_msgs 19
# TYPE l1_miss_latency histogram
l1_miss_latency_bucket{le="0"} 1
l1_miss_latency_bucket{le="7"} 3
l1_miss_latency_bucket{le="1023"} 4
l1_miss_latency_bucket{le="+Inf"} 4
l1_miss_latency_sum 910
l1_miss_latency_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("WritePrometheus golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	var nilM *Metrics
	if err := nilM.WritePrometheus(&buf); err != nil {
		t.Error("nil Metrics WritePrometheus must be a no-op")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"l1.miss_latency": "l1_miss_latency",
		"net msgs/sec":    "net_msgs_sec",
		"9lives":          "_9lives",
		"ok_name:sub":     "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
