package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the format understood by Perfetto and
// chrome://tracing. Cores appear as threads of process 0, LLC slices as
// threads of process 1, and run-level events (oracle failures) under
// process 2. One simulated cycle maps to one microsecond of trace time.
//
// Most events export as "i" (instant) samples on the relevant track; PRV
// episodes are paired begin/terminate and export as "X" (complete) spans on
// the home slice's track, so privatized-episode lifetimes render as bars.

const (
	pidCores  = 0
	pidSlices = 1
	pidSim    = 2
)

// traceEvent is one entry of the Chrome trace-event JSON array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// track places an event on its Perfetto track.
func track(e Event) (pid, tid int) {
	switch {
	case e.Kind == KindNetSend || e.Kind == KindNetRecv:
		// Net events render on the sending (send) / receiving (recv)
		// node's track.
		if e.Core >= 0 {
			return pidCores, int(e.Core)
		}
		return pidSlices, int(e.Slice)
	case e.Kind == KindL1State || e.Kind == KindCommit:
		return pidCores, int(e.Core)
	case e.Slice >= 0:
		return pidSlices, int(e.Slice)
	case e.Core >= 0:
		return pidCores, int(e.Core)
	default:
		return pidSim, 0
	}
}

// openEpisode tracks a PRV begin awaiting its terminate.
type openEpisode struct {
	begin Event
	order int
}

// WriteChromeTrace renders events (oldest-first, as returned by
// Tracer.Events) as Chrome trace-event JSON. The output is deterministic:
// event order follows the input, map keys are sorted by encoding/json, and
// no wall-clock state is consulted.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}

	// Metadata: name the processes and every thread that appears.
	type key struct{ pid, tid int }
	tracks := map[key]bool{}
	for _, e := range events {
		pid, tid := track(e)
		tracks[key{pid, tid}] = true
	}
	var keys []key
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	procName := map[int]string{pidCores: "cores", pidSlices: "llc", pidSim: "sim"}
	seenPid := map[int]bool{}
	for _, k := range keys {
		if !seenPid[k.pid] {
			seenPid[k.pid] = true
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", Pid: k.pid, Tid: 0,
				Args: map[string]any{"name": procName[k.pid]},
			})
		}
		var tname string
		switch k.pid {
		case pidCores:
			tname = fmt.Sprintf("core %d", k.tid)
		case pidSlices:
			tname = fmt.Sprintf("llc slice %d", k.tid)
		default:
			tname = "system"
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: k.pid, Tid: k.tid,
			Args: map[string]any{"name": tname},
		})
	}

	// Body. PRV begins are held open and flushed as "X" spans when their
	// terminate (or the end of the trace) arrives.
	open := map[uint64]openEpisode{} // by block address
	var lastCycle uint64
	for i, e := range events {
		if e.Cycle > lastCycle {
			lastCycle = e.Cycle
		}
		pid, tid := track(e)
		te := traceEvent{
			Name: e.Kind.String(), Ph: "i", S: "t",
			Ts: e.Cycle, Pid: pid, Tid: tid,
			Args: map[string]any{"addr": e.Addr.String()},
		}
		switch e.Kind {
		case KindNetSend, KindNetRecv:
			src, dst := e.SrcDst()
			te.Name = e.Kind.String() + " " + e.Name
			te.Cat = "net"
			te.Args["seq"] = e.Arg
			te.Args["src"] = src
			te.Args["dst"] = dst
		case KindL1State, KindDirState:
			te.Name = e.Kind.String() + " " + e.Name
			te.Cat = "state"
		case KindCommit:
			te.Name = "commit " + e.Name
			te.Cat = "commit"
			te.Args["value"] = fmt.Sprintf("0x%x", e.Arg)
			te.Args["size"] = e.Arg2
		case KindDetect, KindContended:
			te.Cat = "detect"
			te.Args["episodes"] = e.Arg
		case KindPrvBegin:
			te.Cat = "prv"
			te.Args["core"] = e.Arg
			open[uint64(e.Addr)] = openEpisode{begin: e, order: i}
		case KindPrvAbort, KindPrvMerge:
			te.Cat = "prv"
			if e.Core >= 0 {
				te.Args["core"] = e.Core
			}
			if e.Name != "" {
				te.Args["reason"] = e.Name
			}
		case KindPrvTerminate:
			te.Cat = "prv"
			te.Args["reason"] = e.Name
			te.Args["invalidations"] = e.Arg2
			if ep, ok := open[uint64(e.Addr)]; ok {
				delete(open, uint64(e.Addr))
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: "PRV " + e.Addr.String(), Ph: "X",
					Ts: ep.begin.Cycle, Dur: e.Cycle - ep.begin.Cycle,
					Pid: pid, Tid: tid, Cat: "prv",
					Args: map[string]any{
						"addr":   e.Addr.String(),
						"reason": e.Name,
					},
				})
			}
		case KindOracle:
			te.Cat = "oracle"
			te.Args["detail"] = e.Name
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}

	// Episodes still open when the trace ends render as spans reaching the
	// last traced cycle.
	var leftovers []openEpisode
	for _, ep := range open {
		leftovers = append(leftovers, ep)
	}
	sort.Slice(leftovers, func(i, j int) bool { return leftovers[i].order < leftovers[j].order })
	for _, ep := range leftovers {
		pid, tid := track(ep.begin)
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "PRV " + ep.begin.Addr.String(), Ph: "X",
			Ts: ep.begin.Cycle, Dur: lastCycle - ep.begin.Cycle,
			Pid: pid, Tid: tid, Cat: "prv",
			Args: map[string]any{"addr": ep.begin.Addr.String(), "reason": "open"},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
