package obs

import (
	"testing"

	"fscoherence/internal/memsys"
)

// The disabled/enabled pair below is the PR's throughput guard: the disabled
// path must compile down to one nil check with zero allocations per event,
// and the enabled path must stay allocation-free too (events are values
// copied into a preallocated ring).

var sinkEvent Event

// BenchmarkEmitDisabled measures the instrumented-site pattern with tracing
// off: the guard `if t := tracer; t != nil { ... }` where tracer is nil, so
// the Event literal is never built.
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t := tr; t != nil {
			t.Emit(Event{
				Cycle: uint64(i), Kind: KindNetSend, Core: 1, Slice: -1,
				Addr: memsys.Addr(i) << 6, Name: "GetS", Arg: uint64(i),
			})
		}
	}
}

// BenchmarkEmitEnabled measures the same site with a live tracer recording
// into the ring buffer (wrapping once the buffer fills).
func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer(Config{TraceCapacity: 1 << 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := tr; t != nil {
			t.Emit(Event{
				Cycle: uint64(i), Kind: KindNetSend, Core: 1, Slice: -1,
				Addr: memsys.Addr(i) << 6, Name: "GetS", Arg: uint64(i),
			})
		}
	}
}

// BenchmarkEmitEnabledFiltered measures a live tracer whose filter rejects
// every offered event (the cost of filtering without recording).
func BenchmarkEmitEnabledFiltered(b *testing.B) {
	tr := NewTracer(Config{TraceCapacity: 1 << 16, Filter: Filter{Kinds: Mask(KindOracle)}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := tr; t != nil {
			t.Emit(Event{
				Cycle: uint64(i), Kind: KindNetSend, Core: 1, Slice: -1,
				Addr: memsys.Addr(i) << 6, Name: "GetS", Arg: uint64(i),
			})
		}
	}
}

// BenchmarkHistogramObserveDisabled / -Enabled are the metrics-side pair.
func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := &Histogram{Name: "bench"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

// TestEmitBenchmarksDoNotAllocate pins the benchmark claim in a regular test
// (benchmarks do not run in the tier-1 gate): neither the disabled nor the
// enabled emit path allocates per event.
func TestEmitBenchmarksDoNotAllocate(t *testing.T) {
	var nilTr *Tracer
	live := NewTracer(Config{TraceCapacity: 1 << 10})
	ev := Event{Cycle: 1, Kind: KindNetSend, Core: 1, Slice: -1, Addr: 0x40, Name: "GetS"}
	if n := testing.AllocsPerRun(1000, func() {
		if tr := nilTr; tr != nil {
			tr.Emit(ev)
		}
	}); n != 0 {
		t.Errorf("disabled emit path allocates %.1f per event", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		live.Emit(ev)
	}); n != 0 {
		t.Errorf("enabled emit path allocates %.1f per event", n)
	}
}
