// Package obs is the unified observability layer for the simulator: a typed
// event tracer with a bounded ring buffer and per-core/per-address/per-class
// filters, exportable as Chrome trace-event JSON (loadable in Perfetto), plus
// interval metrics (periodic stats snapshots and deterministic power-of-two
// histograms).
//
// The layer is zero-cost when disabled: every component holds a *Tracer (or
// *Histogram) pointer that is nil unless observability was requested, and hot
// paths guard event construction behind a single nil check. All emit methods
// are additionally nil-receiver safe, so call sites may omit the guard where
// the construction cost does not matter.
//
// obs sits below the simulator proper: it imports only internal/memsys and
// the standard library, so network, coherence, core and sim can all depend on
// it. Event labels (opcode names, state-transition names, termination
// reasons) are passed as pre-interned strings — emitting an event never
// allocates.
package obs

import (
	"fmt"
	"strconv"
	"strings"

	"fscoherence/internal/memsys"
)

// Kind classifies a traced event.
type Kind uint8

// Event kinds, one per instrumented site class.
const (
	// KindNetSend / KindNetRecv mark a message entering / leaving the
	// interconnect. Name is the opcode, Arg the network sequence number,
	// Arg2 packs src<<32|dst node IDs.
	KindNetSend Kind = iota
	KindNetRecv

	// KindL1State / KindDirState mark a cache-line state transition.
	// Name is "From->To".
	KindL1State
	KindDirState

	// KindDetect / KindContended mark an FSDetect classification of a
	// line as falsely shared / contended truly-shared. Arg is the episode
	// ordinal for the line.
	KindDetect
	KindContended

	// PRV episode lifecycle (FSLite). For KindPrvBegin Arg is the
	// requesting core. For KindPrvTerminate Name is the termination
	// reason, Arg the episode length in cycles and Arg2 the number of
	// invalidations sent to collect private copies. KindPrvMerge marks a
	// privatized writeback being byte-merged at the directory (Core is
	// the contributing core).
	KindPrvBegin
	KindPrvAbort
	KindPrvTerminate
	KindPrvMerge

	// KindCommit marks a memory operation committing on a core. Name is
	// the operation ("load"/"store"/"rmw"...), Arg holds up to 8 data
	// bytes little-endian, Arg2 the access size in bytes.
	KindCommit

	// KindOracle marks a verification failure (golden-memory oracle or
	// SWMR invariant scan).
	KindOracle

	numKinds
)

var kindNames = [numKinds]string{
	KindNetSend:      "net.send",
	KindNetRecv:      "net.recv",
	KindL1State:      "l1.state",
	KindDirState:     "dir.state",
	KindDetect:       "fs.detect",
	KindContended:    "fs.contended",
	KindPrvBegin:     "prv.begin",
	KindPrvAbort:     "prv.abort",
	KindPrvTerminate: "prv.terminate",
	KindPrvMerge:     "prv.merge",
	KindCommit:       "commit",
	KindOracle:       "oracle",
}

// String returns the canonical dotted name for the kind ("net.send", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// KindMask selects a set of event kinds; bit i selects Kind(i).
// The zero mask means "all kinds".
type KindMask uint32

// Mask returns the mask selecting exactly the given kinds.
func Mask(kinds ...Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether the mask selects k. The zero mask selects everything.
func (m KindMask) Has(k Kind) bool {
	return m == 0 || m&(1<<k) != 0
}

// Event is one traced occurrence. Events are small value types; recording
// one copies it into the ring buffer and never allocates.
type Event struct {
	Cycle uint64
	Kind  Kind

	// Core / Slice locate the event on a hardware track; -1 means the
	// event has no core (resp. slice) affinity.
	Core  int16
	Slice int16

	// Addr is the (usually block-aligned) address involved, if any.
	Addr memsys.Addr

	// Name is a pre-interned label: opcode, "From->To" transition,
	// commit kind, or termination reason.
	Name string

	// Arg / Arg2 carry kind-specific payload (see the Kind constants).
	Arg  uint64
	Arg2 uint64
}

// SrcDst unpacks the node pair carried by net events in Arg2.
func (e Event) SrcDst() (src, dst int) {
	return int(e.Arg2 >> 32), int(e.Arg2 & 0xffffffff)
}

// PackSrcDst packs a node pair for a net event's Arg2.
func PackSrcDst(src, dst int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// String renders the event in the stable single-line format used by golden
// trace tests: cycle, kind, location, name, address, args.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "C%07d %-13s", e.Cycle, e.Kind.String())
	switch e.Kind {
	case KindNetSend, KindNetRecv:
		src, dst := e.SrcDst()
		fmt.Fprintf(&b, " %-9s n%d->n%d %s seq=%d", e.Name, src, dst, e.Addr, e.Arg)
	case KindCommit:
		fmt.Fprintf(&b, " core%-2d %-5s %s = 0x%0*x", e.Core, e.Name, e.Addr, int(e.Arg2)*2, e.Arg)
	case KindL1State:
		fmt.Fprintf(&b, " core%-2d %s %s", e.Core, e.Name, e.Addr)
	case KindDirState:
		fmt.Fprintf(&b, " slice%-2d %s %s", e.Slice, e.Name, e.Addr)
	case KindPrvBegin:
		fmt.Fprintf(&b, " slice%-2d %s core=%d", e.Slice, e.Addr, e.Arg)
	case KindPrvTerminate:
		fmt.Fprintf(&b, " slice%-2d %s reason=%s len=%d inv=%d", e.Slice, e.Addr, e.Name, e.Arg, e.Arg2)
	case KindPrvAbort, KindPrvMerge, KindDetect, KindContended:
		fmt.Fprintf(&b, " slice%-2d %s", e.Slice, e.Addr)
		if e.Core >= 0 {
			fmt.Fprintf(&b, " core=%d", e.Core)
		}
		if e.Name != "" {
			fmt.Fprintf(&b, " %s", e.Name)
		}
	default:
		if e.Name != "" {
			fmt.Fprintf(&b, " %s", e.Name)
		}
		fmt.Fprintf(&b, " %s", e.Addr)
	}
	return b.String()
}

// Filter restricts which events a Tracer records. The zero value matches
// every event.
type Filter struct {
	// Core, when HasCore is set, keeps only events whose Core matches.
	Core    int
	HasCore bool

	// Addr, when HasAddr is set, keeps only events whose block-aligned
	// address matches (Addr is aligned with BlockMask before comparing;
	// a zero BlockMask compares exact addresses).
	Addr      memsys.Addr
	HasAddr   bool
	BlockMask uint64

	// Kinds selects event classes; the zero mask keeps all.
	Kinds KindMask
}

// NewFilter returns the match-everything filter (same as the zero value).
func NewFilter() Filter { return Filter{} }

// Match reports whether the filter keeps e.
func (f Filter) Match(e Event) bool {
	if !f.Kinds.Has(e.Kind) {
		return false
	}
	if f.HasCore && int(e.Core) != f.Core {
		return false
	}
	if f.HasAddr {
		mask := memsys.Addr(f.BlockMask)
		if mask != 0 {
			if e.Addr&^mask != f.Addr&^mask {
				return false
			}
		} else if e.Addr != f.Addr {
			return false
		}
	}
	return true
}

// Named event-class groups accepted by ParseFilter's class= key.
var classMasks = map[string]KindMask{
	"net":    Mask(KindNetSend, KindNetRecv),
	"l1":     Mask(KindL1State),
	"dir":    Mask(KindDirState),
	"state":  Mask(KindL1State, KindDirState),
	"detect": Mask(KindDetect, KindContended),
	"prv":    Mask(KindPrvBegin, KindPrvAbort, KindPrvTerminate, KindPrvMerge),
	"commit": Mask(KindCommit),
	"oracle": Mask(KindOracle),
}

// ParseFilter parses a command-line filter spec of comma-separated key=value
// pairs: "addr=0x1040,core=3,class=net|prv". Addresses are matched at block
// granularity (blockSize bytes; pass 0 for exact matching). An empty spec
// yields the match-everything filter.
func ParseFilter(spec string, blockSize int) (Filter, error) {
	f := NewFilter()
	if blockSize > 0 {
		f.BlockMask = uint64(blockSize - 1)
	}
	if spec == "" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return f, fmt.Errorf("obs: filter %q: want key=value", part)
		}
		switch key {
		case "addr":
			a, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return f, fmt.Errorf("obs: filter addr %q: %v", val, err)
			}
			f.Addr = memsys.Addr(a)
			f.HasAddr = true
		case "core":
			c, err := strconv.Atoi(val)
			if err != nil {
				return f, fmt.Errorf("obs: filter core %q: %v", val, err)
			}
			f.Core = c
			f.HasCore = true
		case "class", "kind":
			var m KindMask
			for _, cls := range strings.Split(val, "|") {
				cm, ok := classMasks[cls]
				if !ok {
					return f, fmt.Errorf("obs: filter class %q (known: net l1 dir state detect prv commit oracle)", cls)
				}
				m |= cm
			}
			f.Kinds = m
		default:
			return f, fmt.Errorf("obs: filter key %q (known: addr core class)", key)
		}
	}
	return f, nil
}

// Config sizes an observability attachment.
type Config struct {
	// TraceCapacity bounds the event ring buffer; when the buffer is
	// full the oldest events are overwritten. 0 selects
	// DefaultTraceCapacity; a negative capacity keeps no events (useful
	// for sink-only tracers).
	TraceCapacity int

	// Filter restricts which events are recorded.
	Filter Filter

	// MetricsInterval is the cycle period between stats snapshots
	// (0 selects DefaultMetricsInterval).
	MetricsInterval uint64
}

// Default sizing for Config zero values.
const (
	DefaultTraceCapacity   = 1 << 18
	DefaultMetricsInterval = 4096
)

// Obs bundles the tracer and metrics attachments handed to a run. Either
// field may be nil; a nil *Obs disables observability entirely.
type Obs struct {
	Tracer  *Tracer
	Metrics *Metrics
}

// New returns an Obs with both a tracer and interval metrics per cfg.
func New(cfg Config) *Obs {
	return &Obs{Tracer: NewTracer(cfg), Metrics: NewMetrics(cfg)}
}

// GetTracer returns the tracer attachment, or nil.
func (o *Obs) GetTracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// GetMetrics returns the metrics attachment, or nil.
func (o *Obs) GetMetrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}
