package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/sample"
	"fscoherence/internal/stats"
)

// Checkpointing captures the complete architectural state of a drained
// machine — every cache line with its coherence state and LRU position, the
// directory FSMs, the FSDetect/FSLite metadata (PAM, SAM, privatization
// episodes, accumulated detections), memory contents, per-core thread replay
// state and the full counter set — as a single gob-serializable value. A
// restored system continues byte-identically to the original: same cycle
// counts, same counters, same detections.
//
// Snapshots are only taken at drained boundaries (issue held on every core,
// all in-flight transactions retired, network empty), where all transient
// state is empty by construction and none of it needs to travel. The network
// therefore needs no image at all. Draining perturbs timing relative to an
// uncheckpointed run, so a checkpoint cadence defines its own deterministic
// execution: resume byte-equality is against an uninterrupted run with the
// same cadence (sampled runs reuse their existing window boundaries, so
// checkpointing them perturbs nothing).

// MachineState is the serializable state of a drained system.
type MachineState struct {
	Cycle    uint64
	Stats    *stats.Set
	Memory   []memsys.MemBlock
	L1s      []coherence.L1Image
	Dirs     []coherence.DirImage
	PAMs     [][]core.PAMEntryImage // empty in Baseline mode
	Policies []core.PolicyImage     // empty in Baseline mode
	Threads  []cpu.ThreadImage

	// Sample carries the interval-sampling estimator state; non-nil exactly
	// when the checkpointed run was sampled.
	Sample *SampleState
}

// SampleState is the estimator side of a sampled run's checkpoint: the
// per-window observations of the cycle estimator and of each timing-domain
// counter estimator, in sampledTimingIDs order.
type SampleState struct {
	CycWindows []sample.Window
	Ests       [][]sample.Window
}

// Encode serializes the machine state (gob). Identical states encode to
// identical bytes: every map in the underlying images is flattened to a
// sorted slice and the stats set encodes through a sorted wire form.
func (ms *MachineState) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ms); err != nil {
		return nil, fmt.Errorf("sim: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeMachineState deserializes a machine state produced by Encode.
func DecodeMachineState(data []byte) (*MachineState, error) {
	ms := &MachineState{Stats: stats.NewSet()}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(ms); err != nil {
		return nil, fmt.Errorf("sim: decode checkpoint: %w", err)
	}
	return ms, nil
}

// checkpointable reports whether the system supports checkpoint/restore,
// with the reason when it cannot. The supported shape matches the sampling
// gate — sequential skip engine, in-order cores, two-level inclusive
// hierarchy — and additionally excludes every attachment whose state is not
// serialized: oracles, observers, fault plans, tracing, metrics, forensics.
func (s *System) checkpointable() error {
	switch {
	case s.par != nil:
		return fmt.Errorf("sim: checkpointing requires a sequential engine")
	case s.cfg.Engine == EngineNaive:
		return fmt.Errorf("sim: checkpointing requires the skip engine")
	case s.cfg.OOO:
		return fmt.Errorf("sim: checkpointing requires in-order cores")
	case s.cfg.Params.L2Entries > 0:
		return fmt.Errorf("sim: checkpointing requires a two-level hierarchy (no private L2)")
	case s.cfg.Params.NonInclusiveLLC:
		return fmt.Errorf("sim: checkpointing requires an inclusive LLC")
	case s.oracle != nil || s.observerInstalled:
		return fmt.Errorf("sim: checkpointing is incompatible with commit observers and the load oracle")
	case s.cfg.CheckSWMR:
		return fmt.Errorf("sim: checkpointing is incompatible with SWMR scanning (scan state is not serialized)")
	case s.cfg.Faults != nil:
		return fmt.Errorf("sim: checkpointing is incompatible with fault injection (fault clocks are not serialized)")
	case s.tracer != nil || s.metrics != nil:
		return fmt.Errorf("sim: checkpointing is incompatible with observability attachments")
	case s.cfg.Forensics != nil:
		return fmt.Errorf("sim: checkpointing is incompatible with forensics recording")
	}
	return nil
}

// Snapshot captures the machine state at a drained boundary. For sampled
// runs the caller (runSampled) attaches the estimator state afterwards.
func (s *System) Snapshot() (*MachineState, error) {
	if err := s.checkpointable(); err != nil {
		return nil, err
	}
	if !s.drained() {
		return nil, fmt.Errorf("sim: snapshot of an undrained machine (cycle %d)", s.cycle)
	}
	ms := &MachineState{
		Cycle:  s.cycle,
		Stats:  stats.NewSet(),
		Memory: s.mem.Image(),
	}
	ms.Stats.CopyFrom(s.stats)
	for _, l := range s.l1s {
		img, err := l.Snapshot()
		if err != nil {
			return nil, err
		}
		ms.L1s = append(ms.L1s, img)
	}
	for _, d := range s.dirs {
		img, err := d.Snapshot()
		if err != nil {
			return nil, err
		}
		ms.Dirs = append(ms.Dirs, img)
	}
	for _, p := range s.pams {
		ms.PAMs = append(ms.PAMs, p.Snapshot())
	}
	for _, dp := range s.dirPolicies {
		ms.Policies = append(ms.Policies, dp.Snapshot())
	}
	for i, c := range s.cores {
		io, ok := c.(*cpu.InOrder)
		if !ok {
			return nil, fmt.Errorf("sim: core %d is not in-order", i)
		}
		ms.Threads = append(ms.Threads, io.SnapshotThread())
	}
	return ms, nil
}

// Restore rebuilds the machine state on a freshly constructed system that
// has not run: caches, directories, policy metadata and memory are loaded
// from their images, the counter set is replaced, and every thread is
// replayed to its exact snapshot program point (see cpu.RestoreThread). The
// system then resumes from ms.Cycle byte-identically to the original run.
func (s *System) Restore(ms *MachineState) error {
	if err := s.checkpointable(); err != nil {
		return err
	}
	if s.cycle != 0 {
		return fmt.Errorf("sim: restore into a system that already ran (cycle %d)", s.cycle)
	}
	if len(ms.L1s) != len(s.l1s) || len(ms.Dirs) != len(s.dirs) || len(ms.Threads) != len(s.cores) {
		return fmt.Errorf("sim: checkpoint shape mismatch: %d L1s/%d slices/%d threads in checkpoint, %d/%d/%d in machine",
			len(ms.L1s), len(ms.Dirs), len(ms.Threads), len(s.l1s), len(s.dirs), len(s.cores))
	}
	if len(ms.PAMs) != len(s.pams) || len(ms.Policies) != len(s.dirPolicies) {
		return fmt.Errorf("sim: checkpoint policy shape mismatch: %d PAMs/%d policies in checkpoint, %d/%d in machine (different protocol mode?)",
			len(ms.PAMs), len(ms.Policies), len(s.pams), len(s.dirPolicies))
	}
	if (ms.Sample != nil) != s.cfg.Sample.Enabled() {
		return fmt.Errorf("sim: checkpoint sampling mode mismatch (checkpoint sampled=%v, run sampled=%v)",
			ms.Sample != nil, s.cfg.Sample.Enabled())
	}
	if ms.Sample != nil && len(ms.Sample.Ests) != len(sampledTimingIDs) {
		return fmt.Errorf("sim: checkpoint has %d timing estimators, machine tracks %d",
			len(ms.Sample.Ests), len(sampledTimingIDs))
	}
	if err := s.mem.RestoreImage(ms.Memory); err != nil {
		return err
	}
	for i, l := range s.l1s {
		if err := l.Restore(ms.L1s[i]); err != nil {
			return err
		}
	}
	for i, d := range s.dirs {
		if err := d.Restore(ms.Dirs[i]); err != nil {
			return err
		}
	}
	for i, p := range s.pams {
		p.Restore(ms.PAMs[i])
	}
	for i, dp := range s.dirPolicies {
		if err := dp.Restore(ms.Policies[i]); err != nil {
			return err
		}
	}
	for i, c := range s.cores {
		if err := c.(*cpu.InOrder).RestoreThread(ms.Threads[i]); err != nil {
			return err
		}
	}
	s.stats.CopyFrom(ms.Stats)
	s.cycle = ms.Cycle
	s.resumedSample = ms.Sample
	return nil
}

// pollCancel folds the external cancellation flag (Config.Cancel, set by the
// runner's watchdog) into the stop-reason mechanism. Polled once per loop
// iteration in every engine, so a timed-out cell stops within one quantum.
func (s *System) pollCancel() {
	if s.stopReason == "" && s.cfg.Cancel != nil && s.cfg.Cancel() {
		s.stopReason = "canceled"
	}
}

// emitCheckpoint snapshots the drained machine and hands it to the sink. A
// sink error aborts the run via ErrStopped (the supervisor uses this to stop
// a run whose checkpoint can no longer be written; tests use it to simulate
// a crash at an exact boundary).
func (s *System) emitCheckpoint(name string, smp *SampleState) error {
	ms, err := s.Snapshot()
	if err != nil {
		return err
	}
	ms.Sample = smp
	if err := s.cfg.CheckpointSink(ms); err != nil {
		return fmt.Errorf("%w: checkpoint sink: %v at cycle %d (%s)", ErrStopped, err, s.cycle, name)
	}
	return nil
}

// runCheckpointed is the detailed run loop with periodic checkpoint
// boundaries: ordinary timed windows of cfg.CheckpointEvery committed L1D
// accesses alternate with drains (issue held, outstanding accesses retired)
// at which the machine state is snapshotted and handed to the sink. The
// drain cycles charge to the run like any other stall, so a given cadence is
// its own deterministic execution — a resumed run is byte-identical to an
// uninterrupted run with the same cadence.
func (s *System) runCheckpointed(name string, maxCycles uint64) (*Result, error) {
	if err := s.checkpointable(); err != nil {
		return nil, err
	}
	st := s.stats
	every := s.cfg.CheckpointEvery
	cores := make([]*cpu.InOrder, len(s.cores))
	for i, c := range s.cores {
		cores[i] = c.(*cpu.InOrder)
	}
	for {
		// Timed window: the ordinary skip-engine loop, until the access
		// budget is spent or the workload finishes.
		winAcc := st.GetID(stats.IDL1DAccesses)
		finished := false
		for st.GetID(stats.IDL1DAccesses)-winAcc < every {
			s.cycle++
			if s.cycle > maxCycles {
				return nil, fmt.Errorf("%w at cycle %d (%s)", ErrDeadlock, s.cycle, name)
			}
			s.stepCycle()
			s.pollCancel()
			if s.stopReason != "" {
				return nil, fmt.Errorf("%w: %s at cycle %d (%s)", ErrStopped, s.stopReason, s.cycle, name)
			}
			if s.done() {
				finished = true
				break
			}
			s.skipAhead(maxCycles)
		}
		if finished {
			break
		}

		// Drain: hold issue on every core and let in-flight accesses retire.
		for _, c := range cores {
			c.HoldIssue(true)
		}
		for !s.drained() {
			s.cycle++
			if s.cycle > maxCycles {
				return nil, fmt.Errorf("%w at cycle %d (%s, draining)", ErrDeadlock, s.cycle, name)
			}
			s.stepCycle()
			s.pollCancel()
			if s.stopReason != "" {
				return nil, fmt.Errorf("%w: %s at cycle %d (%s)", ErrStopped, s.stopReason, s.cycle, name)
			}
			if !s.drained() {
				s.skipAhead(maxCycles)
			}
		}

		if s.cfg.CheckpointSink != nil {
			if err := s.emitCheckpoint(name, nil); err != nil {
				return nil, err
			}
		}
		if s.boundaryHook != nil {
			s.boundaryHook(s.cycle)
		}
		for _, c := range cores {
			c.HoldIssue(false)
		}
	}
	return s.buildResult(name), nil
}
