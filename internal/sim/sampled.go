package sim

import (
	"fmt"
	"math"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/sample"
	"fscoherence/internal/stats"
)

// sampledTimingIDs are the timing-domain counters that only accrue while the
// detailed engine runs; the sampled loop estimates their whole-run values by
// ratio extrapolation. Cycles are handled separately (the clock is not a
// counter slot during the run). Every other counter accrues functionally in
// warming windows too and stays exact.
// warmQuantum caps the operations one core commits per warming round. Large
// enough to amortize the per-quantum coroutine switch to noise, small enough
// that spin-wait loops (locks, barriers) hand off within a round and windows
// land near their spec.
const warmQuantum = 256

var sampledTimingIDs = []stats.ID{
	stats.IDStallCycles,
	stats.IDNetMessages,
	stats.IDNetBytes,
	stats.IDNetHops,
	stats.IDNetLinkWait,
}

// SampledRun reports the estimation side of an interval-sampled run.
type SampledRun struct {
	Spec     sample.Spec
	Windows  int    // completed detailed windows
	Accesses uint64 // committed L1D accesses over the whole run (exact)
	Detailed uint64 // accesses measured in detailed windows

	// Estimates maps canonical counter names (stats.CtrCycles etc.) to their
	// whole-run estimates. The rounded means are also written back into Stats
	// so downstream reporting needs no special-casing; the map carries the
	// confidence intervals.
	Estimates map[string]stats.Estimate
}

// SetBoundaryHook installs a function invoked at every sampling window
// boundary after the drain (testing: invariant oracles see a quiescent
// machine).
func (s *System) SetBoundaryHook(fn func(cycle uint64)) { s.boundaryHook = fn }

// sampleable reports whether the system can run under Config.Sample, with
// the reason when it cannot. The sampled loop supports exactly the configuration
// the warmer models: sequential skip engine, in-order cores, two-level
// inclusive hierarchy, no observers or oracles (warming commits bypass them).
func (s *System) sampleable() error {
	switch {
	case s.par != nil:
		return fmt.Errorf("sim: sampling requires a sequential engine")
	case s.cfg.Engine == EngineNaive:
		return fmt.Errorf("sim: sampling requires the skip engine")
	case s.cfg.OOO:
		return fmt.Errorf("sim: sampling requires in-order cores")
	case s.cfg.Params.L2Entries > 0:
		return fmt.Errorf("sim: sampling requires a two-level hierarchy (no private L2)")
	case s.cfg.Params.NonInclusiveLLC:
		return fmt.Errorf("sim: sampling requires an inclusive LLC")
	case s.oracle != nil || s.observerInstalled:
		return fmt.Errorf("sim: sampling is incompatible with commit observers and the load oracle")
	}
	return nil
}

// runSampled is the interval-sampling run loop: detailed windows measured by
// the ordinary skip-engine cycle loop alternate with functional-warming
// windows that commit operations through coherence.Warmer with no timing.
// Every window boundary drains the machine first (issue held, outstanding
// accesses retired), so warming always starts from — and detailed execution
// always resumes into — a quiescent architectural state.
func (s *System) runSampled(name string, maxCycles uint64) (*Result, error) {
	if err := s.sampleable(); err != nil {
		return nil, err
	}
	if s.cfg.CheckpointSink != nil || s.resumedSample != nil {
		if err := s.checkpointable(); err != nil {
			return nil, err
		}
	}
	spec := s.cfg.Sample
	st := s.stats
	warmer := coherence.NewWarmer(s.cfg.Params, s.cfg.Mode, s.l1s, s.dirs, s.mem)

	cores := make([]*cpu.InOrder, len(s.cores))
	sinks := make([]*warmSink, len(s.cores))
	for i, c := range s.cores {
		cores[i] = c.(*cpu.InOrder)
		sinks[i] = &warmSink{core: i, st: st, warmer: warmer}
	}

	var cycEst sample.Estimator
	ests := make([]sample.Estimator, len(sampledTimingIDs))
	snap := make([]uint64, len(sampledTimingIDs))

	// A restored sampled run re-seeds its estimators from the checkpoint so
	// the whole-run estimates match the uninterrupted run's exactly.
	if rs := s.resumedSample; rs != nil {
		cycEst.SetState(rs.CycWindows)
		for i := range ests {
			ests[i].SetState(rs.Ests[i])
		}
	}
	// Sampled runs checkpoint at existing post-warming boundaries (the
	// machine is already drained there), so snapshotting perturbs nothing;
	// CheckpointEvery only rate-limits which boundaries get one.
	lastCkpt := st.GetID(stats.IDL1DAccesses)

	for {
		// Detailed window: the ordinary timed loop, until the access budget
		// is spent or the workload finishes.
		winAcc := st.GetID(stats.IDL1DAccesses)
		winCyc := s.cycle
		for i, id := range sampledTimingIDs {
			snap[i] = st.GetID(id)
		}
		finished := false
		for st.GetID(stats.IDL1DAccesses)-winAcc < spec.Detailed {
			s.cycle++
			if s.cycle > maxCycles {
				return nil, fmt.Errorf("%w at cycle %d (%s)", ErrDeadlock, s.cycle, name)
			}
			s.stepCycle()
			s.pollCancel()
			if s.stopReason != "" {
				return nil, fmt.Errorf("%w: %s at cycle %d (%s)", ErrStopped, s.stopReason, s.cycle, name)
			}
			if s.done() {
				finished = true
				break
			}
			s.skipAhead(maxCycles)
		}

		// Drain: hold issue on every core and let in-flight accesses retire.
		// The drain's cycles and traffic charge to the detailed window.
		for _, c := range cores {
			c.HoldIssue(true)
		}
		for !s.drained() {
			s.cycle++
			if s.cycle > maxCycles {
				return nil, fmt.Errorf("%w at cycle %d (%s, draining)", ErrDeadlock, s.cycle, name)
			}
			s.stepCycle()
			s.pollCancel()
			if s.stopReason != "" {
				return nil, fmt.Errorf("%w: %s at cycle %d (%s)", ErrStopped, s.stopReason, s.cycle, name)
			}
			if !s.drained() {
				s.skipAhead(maxCycles)
			}
		}

		// Record the window (a zero-access tail window carries no signal).
		if acc := st.GetID(stats.IDL1DAccesses) - winAcc; acc > 0 {
			cycEst.Observe(s.cycle-winCyc, acc)
			for i, id := range sampledTimingIDs {
				ests[i].Observe(st.GetID(id)-snap[i], acc)
			}
		}
		if s.boundaryHook != nil {
			s.boundaryHook(s.cycle)
		}
		if finished || s.allFinished() {
			for _, c := range cores {
				c.HoldIssue(false)
			}
			break
		}

		// Warming window: commit operations functionally in round-robin
		// quanta — each unfinished core runs up to warmQuantum operations
		// inside its thread coroutine per round (one coroutine round trip per
		// quantum, not per op), with the clock advancing one cycle per round
		// (episode timestamps advance in compressed time). Tail rounds shrink
		// the quantum to the remaining per-core budget so the window lands
		// near its spec. Forced terminations drain each round, standing in
		// for the directory Tick.
		warmer.SetNow(s.cycle)
		warmAcc := st.GetID(stats.IDL1DAccesses)
		for {
			cur := st.GetID(stats.IDL1DAccesses) - warmAcc
			if cur >= spec.Warming {
				break
			}
			q := (spec.Warming - cur) / uint64(len(cores))
			if q == 0 {
				q = 1
			} else if q > warmQuantum {
				q = warmQuantum
			}
			progress := false
			for i, c := range cores {
				if n, _ := c.WarmRun(sinks[i], q); n > 0 {
					progress = true
				}
			}
			s.cycle++
			warmer.SetNow(s.cycle)
			warmer.DrainForcedTerminations()
			s.pollCancel()
			if s.stopReason != "" {
				return nil, fmt.Errorf("%w: %s at cycle %d (%s)", ErrStopped, s.stopReason, s.cycle, name)
			}
			if !progress {
				break
			}
		}
		if s.boundaryHook != nil {
			s.boundaryHook(s.cycle)
		}
		// Post-warming boundary: the machine is drained (warming is purely
		// functional), so this is a free checkpoint point.
		if s.cfg.CheckpointSink != nil && st.GetID(stats.IDL1DAccesses)-lastCkpt >= s.cfg.CheckpointEvery {
			smp := &SampleState{CycWindows: cycEst.State()}
			for i := range ests {
				smp.Ests = append(smp.Ests, ests[i].State())
			}
			if err := s.emitCheckpoint(name, smp); err != nil {
				return nil, err
			}
			lastCkpt = st.GetID(stats.IDL1DAccesses)
		}
		for _, c := range cores {
			c.HoldIssue(false)
		}
		if s.allFinished() {
			break
		}
	}

	res := s.buildResult(name)
	total := st.GetID(stats.IDL1DAccesses)
	sr := &SampledRun{
		Spec:      spec,
		Windows:   cycEst.Windows(),
		Accesses:  total,
		Detailed:  cycEst.DetailedAccesses(),
		Estimates: make(map[string]stats.Estimate, len(sampledTimingIDs)+1),
	}
	cyc := cycEst.Estimate(total)
	sr.Estimates[stats.CtrCycles] = cyc
	st.SetID(stats.IDCycles, uint64(math.Round(cyc.Mean)))
	res.Cycles = st.GetID(stats.IDCycles)
	for i, id := range sampledTimingIDs {
		est := ests[i].Estimate(total)
		sr.Estimates[id.Name()] = est
		st.SetID(id, uint64(math.Round(est.Mean)))
	}
	res.Sampled = sr
	return res, nil
}

// warmSink adapts one core's functional-warming commits to coherence.Warmer.
// The typed methods are the hot path (no Op is ever built); ApplyOp handles
// boundary-held ops and the kinds without a typed shortcut.
type warmSink struct {
	core   int
	st     *stats.Set
	warmer *coherence.Warmer
}

func (w *warmSink) Load(addr memsys.Addr, size int) uint64 {
	w.st.IncID(stats.IDOpsCommitted)
	return w.warmer.Access(w.core, coherence.AccessLoad, addr, size, 0, nil)
}

func (w *warmSink) Store(addr memsys.Addr, size int, v uint64) {
	w.st.IncID(stats.IDOpsCommitted)
	w.warmer.Access(w.core, coherence.AccessStore, addr, size, v, nil)
}

func (w *warmSink) AtomicAdd(addr memsys.Addr, size int, delta uint64) uint64 {
	w.st.IncID(stats.IDOpsCommitted)
	return w.warmer.Access(w.core, coherence.AccessAtomicRMW, addr, size, delta, nil)
}

func (w *warmSink) Compute(n uint64) {
	w.st.IncID(stats.IDOpsCommitted)
	w.st.AddID(stats.IDComputeCycles, n)
}

func (w *warmSink) ApplyOp(op *cpu.Op) uint64 {
	w.st.IncID(stats.IDOpsCommitted)
	var kind coherence.AccessKind
	var store uint64
	var rmw func(uint64) uint64
	switch op.Kind {
	case cpu.OpLoad:
		kind = coherence.AccessLoad
	case cpu.OpStore:
		kind, store = coherence.AccessStore, op.Value
	case cpu.OpAtomic:
		kind, store, rmw = coherence.AccessAtomicRMW, op.Value, op.Fn
	case cpu.OpPrefetch:
		kind = coherence.AccessPrefetch
	case cpu.OpReduce:
		kind, store = coherence.AccessReduce, op.Value
	case cpu.OpCompute:
		w.st.AddID(stats.IDComputeCycles, op.Cycles)
		return 0
	default:
		panic("sim: unknown op kind in warming")
	}
	return w.warmer.Access(w.core, kind, op.Addr, op.Size, store, rmw)
}

// drained reports whether the machine is architecturally quiescent under held
// issue: no outstanding core accesses, no in-flight messages, no busy
// controllers.
func (s *System) drained() bool {
	for _, c := range s.cores {
		if io, ok := c.(*cpu.InOrder); ok && io.Outstanding() {
			return false
		}
	}
	if s.net.Pending() != 0 {
		return false
	}
	for _, l := range s.l1s {
		if !l.Idle() {
			return false
		}
	}
	for _, d := range s.dirs {
		if !d.Idle() {
			return false
		}
	}
	return true
}

// allFinished reports whether every thread has run to completion.
func (s *System) allFinished() bool {
	for _, c := range s.cores {
		if !c.Finished() {
			return false
		}
	}
	return true
}
