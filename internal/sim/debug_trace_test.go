package sim

import (
	"fmt"
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
)

// TestDebugLockTrace is a development aid: it reproduces the locked-counter
// oracle failure on a minimal configuration with message tracing. Skipped
// unless -run selects it explicitly with -v.
func TestDebugLockTrace(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug tracing test; run with -v -run TestDebugLockTrace")
	}
	cfg := testConfig(coherence.Baseline)
	lock, counter := addr(0, 0), addr(1, 0)
	const threads, iters = 3, 4
	mk := func(id int) cpu.ThreadFunc {
		return func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				c.LockAcquire(lock)
				v := c.Load(counter, 8)
				c.StoreSync(counter, 8, v+1)
				c.LockRelease(lock)
			}
		}
	}
	var ths []cpu.ThreadFunc
	for i := 0; i < threads; i++ {
		ths = append(ths, mk(i))
	}
	s := New(cfg, Workload{Name: "dbg", Threads: ths})
	lockBlk := lock.BlockAlign(64)
	s.net.SetTrace(func(cycle uint64, m *network.Msg) {
		if m.Addr.BlockAlign(64) == lockBlk {
			fmt.Printf("C%06d msg %s\n", cycle, m)
		}
	})
	s.SetCommitTrace(func(cycle uint64, core int, kind string, a memsys.Addr, v []byte) {
		if a.BlockAlign(64) == lockBlk {
			fmt.Printf("C%06d commit core%d %s %v = %v\n", cycle, core, kind, a, v[0])
		}
	})
	res, err := s.Run("dbg")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.OracleViolations {
		t.Errorf("oracle: %s", v)
	}
	_ = memsys.Addr(0)
	_ = counter
}
