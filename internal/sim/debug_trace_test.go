package sim

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// TestDebugLockTrace runs a locked-counter workload with the unified tracer
// filtered to the lock block and compares the rendered event stream against a
// checked-in golden file. The simulator is deterministic, so the trace is
// byte-stable; any protocol change that alters message ordering or commit
// timing around a contended lock shows up as a golden diff. Regenerate with
// go test ./internal/sim -run TestDebugLockTrace -update.
func TestDebugLockTrace(t *testing.T) {
	cfg := testConfig(coherence.Baseline)
	lock, counter := addr(0, 0), addr(1, 0)
	lockBlk := lock.BlockAlign(blk)
	cfg.Obs = obs.New(obs.Config{
		Filter: obs.Filter{Addr: lockBlk, HasAddr: true, BlockMask: uint64(blk - 1)},
	})
	const threads, iters = 3, 4
	mk := func(id int) cpu.ThreadFunc {
		return func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				c.LockAcquire(lock)
				v := c.Load(counter, 8)
				c.StoreSync(counter, 8, v+1)
				c.LockRelease(lock)
			}
		}
	}
	var ths []cpu.ThreadFunc
	for i := 0; i < threads; i++ {
		ths = append(ths, mk(i))
	}
	res := mustRun(t, cfg, Workload{Name: "dbg", Threads: ths})
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}

	events := cfg.Obs.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("tracer recorded no events for the lock block")
	}
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "lock_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events)", golden, len(events))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		line := 0
		for line < len(gl) && line < len(wl) && gl[line] == wl[line] {
			line++
		}
		g, w := "<EOF>", "<EOF>"
		if line < len(gl) {
			g = gl[line]
		}
		if line < len(wl) {
			w = wl[line]
		}
		t.Fatalf("trace diverges from golden at line %d:\n  got:  %s\n  want: %s\n(%d got / %d want lines; regenerate with -update if intended)",
			line+1, g, w, len(gl), len(wl))
	}
}
