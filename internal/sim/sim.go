// Package sim assembles and runs a complete simulated system: cores, L1
// controllers, interconnect, LLC/directory slices and backing memory, with
// optional FSDetect/FSLite policies attached, a golden-memory oracle and an
// SWMR invariant checker for the test suite.
package sim

import (
	"errors"
	"fmt"

	"fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/cpu"
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/obs"
	"fscoherence/internal/sample"
	"fscoherence/internal/stats"
)

// Engine selects the simulation loop strategy. Both engines are cycle-exact:
// they produce byte-identical results (cycle counts, counter snapshots,
// traces, detections) for the same configuration and workload.
type Engine int

const (
	// EngineSkip, the default, is the quiescence-skipping engine: when a tick
	// round leaves nothing to do until some future cycle, the loop fast-
	// forwards to that cycle instead of ticking idle rounds. Components report
	// their earliest wake-up (NextEvent / NextArrival) and compensate skipped
	// per-cycle bookkeeping via SkipIdle, so the skip is invisible.
	EngineSkip Engine = iota

	// EngineNaive ticks every component on every cycle — the reference loop
	// the skipping engine is proven against (see TestEngineEquivalence).
	EngineNaive

	// EngineParallel is the conservative parallel discrete-event engine: it
	// shards cores+L1s (and directory slices) across OS threads, each shard
	// running its own quiescence-skipping loop over fixed lookahead epochs
	// bounded by the network's minimum delivery latency, with all network
	// traffic replayed in global order at epoch barriers (see parallel.go).
	// Byte-identical to the sequential engines; configurations it cannot
	// parallelize (fault injection, observability, verification oracles)
	// fall back to EngineSkip at construction.
	EngineParallel
)

// Config describes one simulation run.
type Config struct {
	Params coherence.Params
	Mode   coherence.Protocol

	// Engine selects the simulation loop (default EngineSkip).
	Engine Engine

	// Shards is the worker-thread count for EngineParallel (0 picks a
	// core-count-based default; ignored by the sequential engines). Results
	// are byte-identical across all shard counts.
	Shards int

	// Core holds the FSDetect/FSLite tunables; ignored in Baseline mode.
	// Cores/BlockSize/Mode are filled in from Params automatically.
	Core core.Config

	// OOO selects the out-of-order core model with the given width and ROB
	// size; MSHRs sets the per-L1 miss concurrency (1 for in-order).
	OOO      bool
	OOOWidth int
	ROBSize  int
	MSHRs    int

	// CheckOracle verifies every load against a byte-granular golden
	// memory; CheckSWMR scans coherence states every SWMRPeriod cycles.
	CheckOracle bool
	CheckSWMR   bool
	SWMRPeriod  uint64

	// MaxCycles aborts the run as deadlocked when exceeded (0 = 500M).
	MaxCycles uint64

	// Faults, when non-nil, installs a deterministic network fault-injection
	// plan (seeded delivery jitter and burst delays; see network.FaultPlan
	// and internal/fuzz). Injection stays within the protocol-legal delivery
	// contract, so all oracles must still hold.
	Faults *network.FaultPlan

	// Obs attaches the unified observability layer (event tracing and
	// interval metrics). Nil disables it entirely at zero per-event cost.
	Obs *obs.Obs

	// Forensics attaches the per-line flight recorder (access heatmaps,
	// decision timelines, repair-efficacy attribution). Nil disables it
	// entirely at zero per-event cost.
	Forensics *forensics.Recorder

	// Sample enables SMARTS-style interval sampling: detailed windows of
	// Sample.Detailed committed accesses (full timing under the skip engine)
	// alternate with functional-warming windows of Sample.Warming accesses (no
	// timing; see coherence.Warmer). Timing-domain counters are estimated from
	// the detailed windows with confidence intervals (Result.Sampled); all
	// other counters accrue exactly. Requires the in-order two-level inclusive
	// machine with no observers (see sampled.go for the full gating).
	Sample sample.Spec

	// CheckpointEvery enables periodic checkpointing: for detailed runs, a
	// drain boundary every N committed L1D accesses; for sampled runs, a
	// snapshot at the first existing window boundary after N accesses (no
	// extra drains). 0 disables. The cadence is part of the run's semantics:
	// drains perturb timing, so byte-equality is defined per cadence (see
	// checkpoint.go). Requires the same machine shape as sampling plus no
	// oracles/observers/faults/obs/forensics.
	CheckpointEvery uint64

	// CheckpointSink receives the machine state at each checkpoint boundary.
	// A sink error aborts the run with ErrStopped. Nil with CheckpointEvery
	// set keeps the boundaries (cadence semantics) without snapshotting —
	// how a resumed run that no longer writes checkpoints stays
	// byte-identical to its donor.
	CheckpointSink func(*MachineState) error

	// Cancel, when non-nil, is polled roughly once per loop iteration in
	// every engine; when it returns true the run aborts with ErrStopped.
	// Unlike RequestStop it may be flipped from another goroutine (the
	// runner's watchdog) as long as the func itself is race-free (e.g. an
	// atomic load).
	Cancel func() bool
}

// DefaultConfig returns a Table II system in the given protocol mode with
// verification disabled.
func DefaultConfig(mode coherence.Protocol) Config {
	p := coherence.DefaultParams()
	return Config{
		Params:     p,
		Mode:       mode,
		Core:       core.DefaultConfig(p.Cores, p.BlockSize, mode),
		OOOWidth:   8,
		ROBSize:    192,
		MSHRs:      1,
		SWMRPeriod: 64,
	}
}

// Workload supplies one thread function per core. Threads with index >=
// len(Threads) idle. A nil entry also idles.
type Workload struct {
	Name    string
	Threads []cpu.ThreadFunc

	// ReductionRegions are §VII reduction declarations registered with
	// every directory slice (FSDetect/FSLite modes).
	ReductionRegions []coherence.AddrRange
}

// Result summarizes a completed run.
type Result struct {
	Name       string
	Mode       coherence.Protocol
	Cycles     uint64
	Stats      *stats.Set
	Detections []core.Detection

	// Contended lists contended truly-shared lines (typically lock words) —
	// the §VII detection extension.
	Contended []core.Detection

	// OracleViolations and SWMRViolations are non-empty only when the
	// corresponding checks were enabled and a protocol bug was observed.
	OracleViolations []string
	SWMRViolations   []string

	// Sampled is non-nil for interval-sampled runs (Config.Sample): the
	// per-counter estimates with confidence intervals, plus window accounting.
	// For sampled runs, Cycles and the timing-domain counters in Stats hold
	// the rounded estimate means.
	Sampled *SampledRun
}

// System is an assembled simulation ready to run.
type System struct {
	cfg    Config
	stats  *stats.Set
	net    *network.Network
	mem    *memsys.Memory
	l1s    []*coherence.L1
	dirs   []*coherence.Dir
	cores  []cpu.Core
	oracle *memsys.Oracle
	cycle  uint64

	dirPolicies []*core.DirSide
	pams        []*core.PAM
	swmrBad     []string

	// resumedSample, set by Restore on a sampled checkpoint, carries the
	// estimator state runSampled re-seeds before its loop.
	resumedSample *SampleState

	// tracer / metrics are the unified observability attachments (nil when
	// cfg.Obs is nil or lacks the corresponding half).
	tracer  *obs.Tracer
	metrics *obs.Metrics

	// observerInstalled records whether the commit observer is wired into
	// the L1s (done at construction when the oracle or tracer needs it, or
	// lazily by SetCommitTrace).
	observerInstalled bool

	// commitTrace, when set (tests), receives every architectural commit.
	commitTrace func(cycle uint64, core int, kind string, a memsys.Addr, v []byte)

	// cycleHook, when set (tests), runs at the start of every cycle.
	cycleHook func(cycle uint64)

	// boundaryHook, when set (tests), runs at every sampling window boundary,
	// right after the drain: the machine is architecturally quiescent when it
	// fires, so invariant oracles may scan freely.
	boundaryHook func(cycle uint64)

	// stopReason, when non-empty, aborts the run loop (RequestStop).
	stopReason string

	// par, when non-nil, holds the conservative parallel engine's shard
	// structure (EngineParallel; see parallel.go).
	par *parRunner
}

// SetCommitTrace installs a commit hook (testing/debugging). The hook is fed
// by the same commit observer that drives KindCommit trace events; if the
// observer was not needed at construction it is installed now.
func (s *System) SetCommitTrace(fn func(cycle uint64, core int, kind string, a memsys.Addr, v []byte)) {
	s.commitTrace = fn
	s.ensureObserver()
}

// ensureObserver wires the commit observer into every L1 if absent.
func (s *System) ensureObserver() {
	if s.observerInstalled {
		return
	}
	s.observerInstalled = true
	ob := observer{s.oracle, s}
	for _, l1 := range s.l1s {
		l1.SetObserver(ob)
	}
}

// SetCycleHook installs a function invoked at the start of every cycle
// (testing: fault injection, external-socket accesses, live inspection).
func (s *System) SetCycleHook(fn func(cycle uint64)) { s.cycleHook = fn }

// observer adapts the oracle and the commit trace to the coherence.Observer
// interface. The oracle may be nil (trace-only observer).
type observer struct {
	o *memsys.Oracle
	s *System
}

func (ob observer) OnLoadCommit(c int, a memsys.Addr, v []byte, issue uint64) {
	if ob.o != nil {
		// A miss-path load binds its value at the directory, anywhere in
		// [issue, commit]; the oracle accepts any value live in that window.
		ob.o.CheckLoadWindow(a, v, issue, ob.s.cycle,
			fmt.Sprintf("cycle %d core %d load", ob.s.cycle, c))
	}
	ob.s.commit(c, "load", a, v)
}
func (ob observer) OnStoreCommit(c int, a memsys.Addr, v []byte) {
	if ob.o != nil {
		ob.o.CommitStore(a, v, ob.s.cycle)
	}
	ob.s.commit(c, "store", a, v)
}
func (ob observer) OnReduceCommit(c int, a memsys.Addr, delta []byte) {
	if ob.o != nil {
		ob.o.CommitReduce(a, delta, ob.s.cycle)
	}
	ob.s.commit(c, "reduce", a, delta)
}

// commit routes one architectural commit to the tracer and the test hook.
// kind is one of the static strings "load"/"store"/"reduce", so building the
// event never allocates.
func (s *System) commit(c int, kind string, a memsys.Addr, v []byte) {
	if t := s.tracer; t != nil {
		var val uint64
		for i := 0; i < len(v) && i < 8; i++ {
			val |= uint64(v[i]) << (8 * i)
		}
		t.Emit(obs.Event{
			Cycle: s.cycle, Kind: obs.KindCommit, Core: int16(c), Slice: -1,
			Addr: a, Name: kind, Arg: val, Arg2: uint64(len(v)),
		})
	}
	if s.commitTrace != nil {
		s.commitTrace(s.cycle, c, kind, a, v)
	}
}

// New assembles a system for the workload.
func New(cfg Config, wl Workload) *System {
	p := cfg.Params
	st := stats.NewSet()
	s := &System{
		cfg:     cfg,
		stats:   st,
		net:     network.New(p.Nodes(), p.NetLatency, p.BlockSize, st),
		mem:     memsys.NewMemory(p.BlockSize),
		tracer:  cfg.Obs.GetTracer(),
		metrics: cfg.Obs.GetMetrics(),
	}
	p.ApplyTopology(s.net)
	s.net.SetTracer(s.tracer, p.Cores)
	if cfg.Faults != nil {
		s.net.SetFaults(cfg.Faults)
	}

	if cfg.CheckOracle {
		s.oracle = memsys.NewOracle(p.BlockSize)
	}

	// The parallel engine gives every shard its own deferred-mode network
	// front, stats set, clock and memory partition; configurations it cannot
	// handle construct sequentially and run under EngineSkip instead.
	if k := parallelShards(cfg); k > 0 {
		s.par = newParRunner(s, k)
	} else if cfg.Engine == EngineParallel {
		s.cfg.Engine = EngineSkip
	}
	// netFor/statsFor/nowFor/memFor route each component's wiring to its
	// owning shard (identity wiring under the sequential engines).
	netFor := func(shard int) *network.Network { return s.net }
	statsFor := func(shard int) *stats.Set { return st }
	nowFor := func(shard int) func() uint64 {
		return func() uint64 { return s.cycle }
	}
	memFor := func(shard int) *memsys.Memory { return s.mem }
	shardOfCore := func(i int) int { return 0 }
	shardOfSlice := func(j int) int { return 0 }
	if s.par != nil {
		netFor = func(shard int) *network.Network { return s.par.shards[shard].net }
		statsFor = func(shard int) *stats.Set { return s.par.shards[shard].stats }
		nowFor = func(shard int) func() uint64 {
			sh := s.par.shards[shard]
			return func() uint64 { return sh.clock }
		}
		memFor = func(shard int) *memsys.Memory { return s.par.shards[shard].mem }
		shardOfCore = func(i int) int { return i * len(s.par.shards) / p.Cores }
		shardOfSlice = func(j int) int { return j * len(s.par.shards) / p.Slices }
	}

	cfg.Forensics.Begin(p.BlockSize, p.Cores)

	cc := cfg.Core
	cc.Cores = p.Cores
	cc.BlockSize = p.BlockSize
	cc.Mode = cfg.Mode
	cc.Now = nowFor(0)
	cc.Trace = s.tracer
	cc.Forensics = cfg.Forensics

	for i := 0; i < p.Cores; i++ {
		k := shardOfCore(i)
		var pol coherence.L1Policy
		if cfg.Mode != coherence.Baseline {
			ccl := cc
			ccl.Now = nowFor(k)
			pam := core.NewPAM(ccl, i, statsFor(k))
			s.pams = append(s.pams, pam)
			pol = pam
		}
		l1 := coherence.NewL1(i, p, cfg.Mode, netFor(k), pol, statsFor(k), nil)
		if cfg.MSHRs > 1 {
			l1.SetMaxMSHRs(cfg.MSHRs)
		}
		l1.SetObs(cfg.Obs)
		l1.SetForensics(cfg.Forensics)
		s.l1s = append(s.l1s, l1)
	}
	if cfg.CheckOracle || s.tracer != nil {
		s.ensureObserver()
	}
	for i := 0; i < p.Slices; i++ {
		k := shardOfSlice(i)
		var pol coherence.DirPolicy
		if cfg.Mode != coherence.Baseline {
			ccd := cc
			ccd.Now = nowFor(k)
			ds := core.NewDirSide(ccd, i, statsFor(k))
			for _, r := range wl.ReductionRegions {
				ds.RegisterReduction(r)
			}
			s.dirPolicies = append(s.dirPolicies, ds)
			pol = ds
		}
		dir := coherence.NewDir(i, p, cfg.Mode, netFor(k), memFor(k), pol, statsFor(k))
		dir.SetObs(cfg.Obs)
		dir.SetForensics(cfg.Forensics)
		s.dirs = append(s.dirs, dir)
	}
	for i := 0; i < p.Cores; i++ {
		k := shardOfCore(i)
		var fn cpu.ThreadFunc
		if i < len(wl.Threads) {
			fn = wl.Threads[i]
		}
		if fn == nil {
			fn = func(*cpu.Ctx) {}
		}
		if cfg.OOO {
			s.cores = append(s.cores, cpu.NewOOO(i, s.l1s[i], fn, cfg.OOOWidth, cfg.ROBSize, statsFor(k)))
		} else {
			s.cores = append(s.cores, cpu.NewInOrder(i, s.l1s[i], fn, statsFor(k)))
		}
	}
	if s.par != nil {
		s.par.bind()
	}
	// Checkpointing needs the result log armed from the very first committed
	// operation so threads can be replayed at any later snapshot (and so a
	// restored thread's re-seeded log keeps growing). Arming is free on the
	// shapes that can't checkpoint anyway (gated again at run time).
	if cfg.CheckpointEvery > 0 && !cfg.OOO && s.par == nil {
		for _, c := range s.cores {
			if io, ok := c.(*cpu.InOrder); ok {
				io.SetRecorder(&cpu.OpRecorder{})
			}
		}
	}
	return s
}

// Stop terminates every core's thread coroutine. Run does this itself on
// every exit path; Stop is for callers that abandon an assembled system
// without running it (e.g. a failed checkpoint restore falling back to a
// freshly built cold system).
func (s *System) Stop() {
	for _, c := range s.cores {
		c.Stop()
	}
}

// Dir returns directory slice i (testing and multi-socket hooks).
func (s *System) Dir(i int) *coherence.Dir { return s.dirs[i] }

// L1 returns core i's L1 controller (testing).
func (s *System) L1(i int) *coherence.L1 { return s.l1s[i] }

// Net returns the interconnect (testing and fault-injection hooks).
func (s *System) Net() *network.Network { return s.net }

// CoreFinished reports whether core i's thread has run to completion
// (watchdog progress checks).
func (s *System) CoreFinished(i int) bool { return s.cores[i].Finished() }

// RequestStop asks the run loop to abort at the end of the current cycle
// with ErrStopped wrapping the given reason. Intended to be called from a
// cycle hook or commit trace (e.g. the fuzzing watchdog); safe to call more
// than once — the first reason wins.
func (s *System) RequestStop(reason string) {
	if s.stopReason == "" {
		s.stopReason = reason
	}
}

// ErrStopped is returned when a hook aborted the run via RequestStop.
var ErrStopped = errors.New("sim: stopped by hook")

// ErrDeadlock is returned when the simulation exceeds MaxCycles.
var ErrDeadlock = errors.New("sim: cycle limit exceeded (deadlock?)")

// DumpState summarizes every component's in-flight work (deadlock triage):
// queued network messages with their delivery cycles, every non-idle L1 and
// directory slice's FSM state, and unfinished cores.
func (s *System) DumpState() string {
	out := fmt.Sprintf("cycle=%d net.pending=%d\n", s.cycle, s.net.Pending())
	const maxMsgs = 48
	shown := 0
	s.net.ForEachInFlight(func(m *network.Msg, readyAt uint64) {
		shown++
		if shown > maxMsgs {
			return
		}
		out += fmt.Sprintf("  in-flight: %v readyAt=%d\n", m, readyAt)
	})
	if shown > maxMsgs {
		out += fmt.Sprintf("  ... %d more in-flight messages\n", shown-maxMsgs)
	}
	for _, l := range s.l1s {
		if d := l.DebugString(); d != "" {
			out += d + "\n"
		}
	}
	for _, d := range s.dirs {
		if ds := d.DebugString(); ds != "" {
			out += ds + "\n"
		}
	}
	for i, c := range s.cores {
		if !c.Finished() {
			out += fmt.Sprintf("core %d not finished\n", i)
		}
	}
	return out
}

// Run executes the simulation to completion.
func (s *System) Run(name string) (*Result, error) {
	// Terminate thread coroutines parked mid-operation if the run ends early
	// (deadlock, cycle guard); finished threads make this a no-op.
	defer func() {
		for _, c := range s.cores {
			c.Stop()
		}
	}()
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 500_000_000
	}
	if s.cfg.Sample.Enabled() {
		return s.runSampled(name, maxCycles)
	}
	if s.cfg.CheckpointEvery > 0 {
		return s.runCheckpointed(name, maxCycles)
	}
	if s.par != nil {
		if s.cycleHook != nil || s.observerInstalled {
			panic("sim: cycle hooks and commit observers are not supported by EngineParallel")
		}
		cycle, err := s.par.run(name, maxCycles)
		if err != nil {
			return nil, err
		}
		s.cycle = cycle
		s.par.mergeStats()
	} else {
		for {
			s.cycle++
			if s.cycle > maxCycles {
				return nil, fmt.Errorf("%w at cycle %d (%s)", ErrDeadlock, s.cycle, name)
			}
			s.stepCycle()
			s.pollCancel()
			if s.stopReason != "" {
				return nil, fmt.Errorf("%w: %s at cycle %d (%s)", ErrStopped, s.stopReason, s.cycle, name)
			}
			if s.done() {
				break
			}
			if s.cfg.Engine == EngineSkip {
				s.skipAhead(maxCycles)
			}
		}
	}
	return s.buildResult(name), nil
}

// buildResult closes out observability and assembles the Result from the
// system's final state (shared by the timed and sampled run loops).
func (s *System) buildResult(name string) *Result {
	s.stats.SetID(stats.IDCycles, s.cycle)
	// Close out observability: privatized episodes still open at the end of
	// the run emit their terminate event, then a final metrics sample
	// captures the run's closing counter values.
	for _, d := range s.dirs {
		d.FinalizeObs(s.cycle)
	}
	if m := s.metrics; m != nil {
		m.Sample(s.cycle, s.stats.Snapshot())
	}
	res := &Result{
		Name:   name,
		Mode:   s.cfg.Mode,
		Cycles: s.cycle,
		Stats:  s.stats,
	}
	for _, dp := range s.dirPolicies {
		res.Detections = append(res.Detections, dp.Detections()...)
		res.Contended = append(res.Contended, dp.ContendedLines()...)
	}
	if s.oracle != nil {
		res.OracleViolations = s.oracle.Violations()
	}
	res.SWMRViolations = s.swmrBad
	return res
}

// stepCycle runs one full simulation cycle: the per-cycle hook, every
// component's Tick in deterministic order, then the cycle-boundary work
// (SWMR scan, metrics sample).
func (s *System) stepCycle() {
	s.net.SetCycle(s.cycle)
	if s.cycleHook != nil {
		s.cycleHook(s.cycle)
	}
	for _, d := range s.dirs {
		d.Tick(s.cycle)
	}
	for _, l := range s.l1s {
		l.Tick(s.cycle)
	}
	for _, c := range s.cores {
		c.Tick(s.cycle)
	}
	if s.cfg.CheckSWMR && s.cycle%s.cfg.SWMRPeriod == 0 {
		s.checkSWMR()
	}
	if m := s.metrics; m != nil && s.cycle%m.Interval == 0 {
		m.Sample(s.cycle, s.stats.Snapshot())
	}
}

// skipAhead fast-forwards s.cycle over cycles in which no component can make
// progress. It advances to one cycle before the earliest reported wake-up —
// clamped so that SWMR-check and metrics-sampling boundary cycles are still
// stepped (their output embeds cycle numbers, and byte-identical output across
// engines is the contract) and so the MaxCycles deadlock error fires at the
// same cycle as under the naive loop. Cores compensate per-cycle stall
// counters for the skipped span via SkipIdle. A registered cycle hook
// disables skipping entirely: the hook must observe every cycle.
func (s *System) skipAhead(maxCycles uint64) {
	if s.cycleHook != nil {
		return
	}
	now := s.cycle
	wake := s.net.NextArrival()
	for _, d := range s.dirs {
		if w := d.NextEvent(now); w < wake {
			wake = w
		}
	}
	for _, l := range s.l1s {
		if w := l.NextEvent(now); w < wake {
			wake = w
		}
	}
	for _, c := range s.cores {
		if w := c.NextEvent(now); w < wake {
			wake = w
		}
	}
	if wake <= now+1 {
		return // the very next cycle has (potential) work
	}
	// done() just returned false, so an all-NoEvent round means deadlock:
	// aim at maxCycles and let the loop trip the identical ErrDeadlock.
	target := maxCycles
	if wake != coherence.NoEvent && wake-1 < target {
		target = wake - 1 // last fully idle cycle before the wake-up
	}
	if s.cfg.CheckSWMR {
		if b := now - now%s.cfg.SWMRPeriod + s.cfg.SWMRPeriod; b-1 < target {
			target = b - 1
		}
	}
	if m := s.metrics; m != nil {
		if b := now - now%m.Interval + m.Interval; b-1 < target {
			target = b - 1
		}
	}
	if target <= now {
		return
	}
	delta := target - now
	for _, c := range s.cores {
		c.SkipIdle(delta)
	}
	s.cycle = target
}

// done reports whether every thread finished and the system quiesced.
func (s *System) done() bool {
	for _, c := range s.cores {
		if !c.Finished() {
			return false
		}
	}
	if s.net.Pending() != 0 {
		return false
	}
	for _, l := range s.l1s {
		if !l.Idle() {
			return false
		}
	}
	for _, d := range s.dirs {
		if !d.Idle() {
			return false
		}
	}
	return true
}

// checkSWMR validates the single-writer/multiple-reader invariant across all
// L1s: at most one E/M copy of any block, never alongside S copies; PRV
// copies may coexist only with S copies mid-privatization, never with E/M.
func (s *System) checkSWMR() {
	if len(s.swmrBad) >= 16 {
		return
	}
	type count struct{ em, sh, prv int }
	m := make(map[memsys.Addr]*count)
	for _, l1 := range s.l1s {
		l1.ForEachLine(func(a memsys.Addr, st coherence.L1State) {
			c := m[a]
			if c == nil {
				c = &count{}
				m[a] = c
			}
			switch st {
			case coherence.L1Exclusive, coherence.L1Modified:
				c.em++
			case coherence.L1Shared:
				c.sh++
			case coherence.L1Prv:
				c.prv++
			}
		})
	}
	for a, c := range m {
		if c.em > 1 || (c.em > 0 && (c.sh > 0 || c.prv > 0)) {
			s.swmrBad = append(s.swmrBad,
				fmt.Sprintf("cycle %d block %v: EM=%d S=%d PRV=%d", s.cycle, a, c.em, c.sh, c.prv))
			if t := s.tracer; t != nil {
				t.Emit(obs.Event{Cycle: s.cycle, Kind: obs.KindOracle, Core: -1, Slice: -1, Addr: a, Name: "swmr"})
			}
		}
	}
}
