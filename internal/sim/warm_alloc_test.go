package sim

import (
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
)

// TestWarmingAccessDoesNotAllocate checks the functional-warming fast path of
// the sampling engine: once the working set is resident, privatization
// episodes are established and the warmer's buffer pool has filled, the
// steady-state Access loop (local hits in M/E/PRV states, including the
// privatized-slot commits that keep detection metadata warm) allocates
// nothing. `make allocsmoke` runs this alongside the engine-loop checks —
// warming windows process ~95% of accesses in a typical spec, so a single
// alloc/op here would dominate the sampled-run profile.
func TestWarmingAccessDoesNotAllocate(t *testing.T) {
	cfg := DefaultConfig(coherence.FSLite)
	threads := make([]cpu.ThreadFunc, cfg.Params.Cores)
	for i := range threads {
		threads[i] = func(c *cpu.Ctx) {}
	}
	s := New(cfg, Workload{Name: "warm-alloc", Threads: threads})
	w := coherence.NewWarmer(cfg.Params, coherence.FSLite, s.l1s, s.dirs, s.mem)

	cores := cfg.Params.Cores
	shared := memsys.Addr(0x10000) // one falsely-shared line, slot per core
	private := func(c int) memsys.Addr { return memsys.Addr(0x20000 + c*4*int(cfg.Params.BlockSize)) }
	inc := func(v uint64) uint64 { return v + 1 }

	// Warm-up: establish residency, trigger privatization of the shared line
	// (per-core slot traffic past TauP) and record each slot's read/write
	// bytes so steady-state loads and stores both hit locally.
	for round := 0; round < 64; round++ {
		w.SetNow(uint64(round))
		for c := 0; c < cores; c++ {
			slot := shared + memsys.Addr((c%8)*8)
			w.Access(c, coherence.AccessStore, slot, 8, uint64(round), nil)
			w.Access(c, coherence.AccessLoad, slot, 8, 0, nil)
			w.Access(c, coherence.AccessAtomicRMW, private(c), 8, 0, inc)
			w.Access(c, coherence.AccessLoad, private(c)+8, 8, 0, nil)
		}
		w.DrainForcedTerminations()
	}

	step := func() {
		for c := 0; c < cores; c++ {
			slot := shared + memsys.Addr((c%8)*8)
			w.Access(c, coherence.AccessStore, slot, 8, 7, nil)
			w.Access(c, coherence.AccessLoad, slot, 8, 0, nil)
			w.Access(c, coherence.AccessAtomicRMW, private(c), 8, 0, inc)
			w.Access(c, coherence.AccessLoad, private(c)+8, 8, 0, nil)
		}
	}
	if n := testing.AllocsPerRun(1000, step); n > 0 {
		t.Fatalf("steady-state warming access allocated %.2f allocs/op", n)
	}
}
