package sim

import (
	"math/rand"
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/stats"
)

// testConfig returns a verification-heavy configuration.
func testConfig(mode coherence.Protocol) Config {
	cfg := DefaultConfig(mode)
	cfg.CheckOracle = true
	cfg.CheckSWMR = true
	cfg.SWMRPeriod = 16
	cfg.MaxCycles = 50_000_000
	return cfg
}

func mustRun(t *testing.T, cfg Config, wl Workload) *Result {
	t.Helper()
	s := New(cfg, wl)
	res, err := s.Run(wl.Name)
	if err != nil {
		t.Fatalf("run %s: %v\n%s", wl.Name, err, s.DumpState())
	}
	for _, v := range res.OracleViolations {
		t.Errorf("oracle: %s", v)
	}
	for _, v := range res.SWMRViolations {
		t.Errorf("swmr: %s", v)
	}
	if t.Failed() {
		t.Fatalf("%s failed under %v", wl.Name, cfg.Mode)
	}
	return res
}

const blk = 64

// addr computes a test address: block index * 64 + offset.
func addr(block, off int) memsys.Addr {
	return memsys.Addr(0x10000 + block*blk + off)
}

func TestSingleThreadReadBack(t *testing.T) {
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSDetect, coherence.FSLite} {
		var got [16]uint64
		wl := Workload{
			Name: "single",
			Threads: []cpu.ThreadFunc{func(c *cpu.Ctx) {
				for i := 0; i < 16; i++ {
					c.Store(addr(i, 8), 8, uint64(i*i+7))
				}
				for i := 0; i < 16; i++ {
					got[i] = c.Load(addr(i, 8), 8)
				}
			}},
		}
		mustRun(t, testConfig(mode), wl)
		for i := 0; i < 16; i++ {
			if got[i] != uint64(i*i+7) {
				t.Fatalf("%v: slot %d = %d", mode, i, got[i])
			}
		}
	}
}

func TestProducerConsumerHandoff(t *testing.T) {
	// Core 0 writes a value then sets a flag; core 1 spins on the flag and
	// must observe the value (MESI interventions + invalidations).
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSLite} {
		var seen uint64
		data, flag := addr(0, 0), addr(1, 0)
		wl := Workload{
			Name: "handoff",
			Threads: []cpu.ThreadFunc{
				func(c *cpu.Ctx) {
					c.StoreSync(data, 8, 0xdeadbeef)
					c.StoreSync(flag, 8, 1)
				},
				func(c *cpu.Ctx) {
					for c.Load(flag, 8) == 0 {
						c.Compute(2)
					}
					seen = c.Load(data, 8)
				},
			},
		}
		mustRun(t, testConfig(mode), wl)
		if seen != 0xdeadbeef {
			t.Fatalf("%v: consumer saw %#x", mode, seen)
		}
	}
}

func TestLockedSharedCounter(t *testing.T) {
	const threads, iters = 4, 25
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSDetect, coherence.FSLite} {
		lock, counter := addr(0, 0), addr(1, 0)
		bar := &cpu.Barrier{CountAddr: addr(2, 0), SenseAddr: addr(2, 8), Threads: threads}
		finals := make([]uint64, threads)
		mkThread := func(id int) cpu.ThreadFunc {
			return func(c *cpu.Ctx) {
				var sense uint64
				for i := 0; i < iters; i++ {
					c.LockAcquire(lock)
					v := c.Load(counter, 8)
					c.Compute(3)
					c.StoreSync(counter, 8, v+1)
					c.LockRelease(lock)
				}
				bar.Wait(c, &sense)
				finals[id] = c.Load(counter, 8)
			}
		}
		var ths []cpu.ThreadFunc
		for i := 0; i < threads; i++ {
			ths = append(ths, mkThread(i))
		}
		res := mustRun(t, testConfig(mode), Workload{Name: "locked-counter", Threads: ths})
		for id, v := range finals {
			if v != threads*iters {
				t.Fatalf("%v: thread %d read %d, want %d (cycles %d)", mode, id, v, threads*iters, res.Cycles)
			}
		}
	}
}

func TestAtomicFetchAddSharedCounter(t *testing.T) {
	const threads, iters = 8, 40
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSLite} {
		counter := addr(0, 16)
		var last uint64
		mk := func(id int) cpu.ThreadFunc {
			return func(c *cpu.Ctx) {
				for i := 0; i < iters; i++ {
					old := c.AtomicAdd(counter, 8, 1)
					if old == threads*iters-1 {
						last = c.Load(counter, 8)
					}
				}
			}
		}
		var ths []cpu.ThreadFunc
		for i := 0; i < threads; i++ {
			ths = append(ths, mk(i))
		}
		res := mustRun(t, testConfig(mode), Workload{Name: "fetch-add", Threads: ths})
		if last != threads*iters {
			t.Fatalf("%v: final counter %d, want %d", mode, last, threads*iters)
		}
		if mode == coherence.FSLite && res.Stats.Get(stats.CtrFSPrivatized) != 0 {
			t.Fatalf("truly shared counter line was privatized")
		}
	}
}

func TestRandomStress(t *testing.T) {
	// 8 threads hammer a 6-block region with random loads/stores/atomics.
	// The oracle verifies that every load observes the latest committed
	// store to each byte; SWMR is scanned throughout.
	const threads, ops = 8, 400
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSDetect, coherence.FSLite} {
		mk := func(id int) cpu.ThreadFunc {
			return func(c *cpu.Ctx) {
				rng := rand.New(rand.NewSource(int64(1000*id + 7)))
				for i := 0; i < ops; i++ {
					block := rng.Intn(6)
					sizes := []int{1, 2, 4, 8}
					size := sizes[rng.Intn(4)]
					off := rng.Intn(blk/size) * size
					a := addr(block, off)
					switch rng.Intn(5) {
					case 0, 1:
						c.Load(a, size)
					case 2, 3:
						c.Store(a, size, rng.Uint64())
					case 4:
						c.AtomicAdd(a, size, uint64(rng.Intn(100)))
					}
					if rng.Intn(4) == 0 {
						c.Compute(uint64(rng.Intn(8)))
					}
				}
			}
		}
		var ths []cpu.ThreadFunc
		for i := 0; i < threads; i++ {
			ths = append(ths, mk(i))
		}
		mustRun(t, testConfig(mode), Workload{Name: "stress", Threads: ths})
	}
}

// falseSharingWorkload builds the canonical write-write false sharing
// pattern: each thread RMW-increments its own 8-byte slot of one line.
func falseSharingWorkload(threads, iters int, finals []uint64) Workload {
	base := addr(0, 0)
	mk := func(id int) cpu.ThreadFunc {
		slot := base + memsys.Addr(8*id)
		return func(c *cpu.Ctx) {
			for i := 0; i < iters; i++ {
				c.AtomicAdd(slot, 8, 1)
				c.Compute(2)
			}
			if finals != nil {
				finals[id] = c.Load(slot, 8)
			}
		}
	}
	var ths []cpu.ThreadFunc
	for i := 0; i < threads; i++ {
		ths = append(ths, mk(i))
	}
	return Workload{Name: "false-sharing", Threads: ths}
}

func TestFSDetectFindsFalseSharing(t *testing.T) {
	res := mustRun(t, testConfig(coherence.FSDetect), falseSharingWorkload(4, 200, nil))
	if len(res.Detections) == 0 {
		t.Fatal("FSDetect found nothing")
	}
	want := addr(0, 0).BlockAlign(blk)
	found := false
	for _, d := range res.Detections {
		if d.Addr == want {
			found = true
			if len(d.Writers) < 2 {
				t.Errorf("detection should implicate >=2 writers, got %v", d.Writers)
			}
		} else {
			t.Errorf("spurious detection at %v", d.Addr)
		}
	}
	if !found {
		t.Fatalf("expected detection at %v, got %+v", want, res.Detections)
	}
}

func TestFSLiteRepairsFalseSharing(t *testing.T) {
	const threads, iters = 4, 400
	finB := make([]uint64, threads)
	base, err := New(testConfig(coherence.Baseline), falseSharingWorkload(threads, iters, finB)).Run("base")
	if err != nil {
		t.Fatal(err)
	}
	finF := make([]uint64, threads)
	fsl := mustRun(t, testConfig(coherence.FSLite), falseSharingWorkload(threads, iters, finF))

	for id := 0; id < threads; id++ {
		if finB[id] != iters || finF[id] != iters {
			t.Fatalf("slot %d: baseline %d fslite %d want %d", id, finB[id], finF[id], iters)
		}
	}
	if fsl.Stats.Get(stats.CtrFSPrivatized) == 0 {
		t.Fatal("FSLite never privatized the falsely shared line")
	}
	if fsl.Cycles >= base.Cycles {
		t.Fatalf("FSLite (%d cycles) not faster than baseline (%d cycles)", fsl.Cycles, base.Cycles)
	}
	t.Logf("baseline %d cycles, FSLite %d cycles (%.2fx), privatizations %d, terminations %d",
		base.Cycles, fsl.Cycles, float64(base.Cycles)/float64(fsl.Cycles),
		fsl.Stats.Get(stats.CtrFSPrivatized), fsl.Stats.Get(stats.CtrFSTerminations))
}

func TestFSLiteNoFalseSharingNoHarm(t *testing.T) {
	// Each thread works on its own blocks: FSLite must not privatize and
	// must not slow the program down materially.
	mkwl := func() Workload {
		mk := func(id int) cpu.ThreadFunc {
			return func(c *cpu.Ctx) {
				for i := 0; i < 150; i++ {
					a := addr(10+id*4+(i%4), (i*8)%blk)
					c.Store(a, 8, uint64(i))
					c.Load(a, 8)
					c.Compute(3)
				}
			}
		}
		var ths []cpu.ThreadFunc
		for i := 0; i < 8; i++ {
			ths = append(ths, mk(i))
		}
		return Workload{Name: "private", Threads: ths}
	}
	base, err := New(testConfig(coherence.Baseline), mkwl()).Run("base")
	if err != nil {
		t.Fatal(err)
	}
	fsl := mustRun(t, testConfig(coherence.FSLite), mkwl())
	if fsl.Stats.Get(stats.CtrFSPrivatized) != 0 {
		t.Fatal("private blocks were privatized")
	}
	ratio := float64(fsl.Cycles) / float64(base.Cycles)
	if ratio > 1.05 {
		t.Fatalf("FSLite overhead %.3fx on private workload", ratio)
	}
}

func TestTrueSharingTerminatesPrivatization(t *testing.T) {
	// Phase 1: pure false sharing (gets privatized). Phase 2: a thread
	// reads another thread's slot, forcing a true-sharing conflict that
	// must terminate the episode and still return correct data.
	const iters = 300
	var observed uint64
	base := addr(0, 0)
	bar := &cpu.Barrier{CountAddr: addr(5, 0), SenseAddr: addr(5, 8), Threads: 2}
	wl := Workload{
		Name: "phase-change",
		Threads: []cpu.ThreadFunc{
			func(c *cpu.Ctx) {
				var sense uint64
				for i := 0; i < iters; i++ {
					c.AtomicAdd(base, 8, 1)
				}
				bar.Wait(c, &sense)
			},
			func(c *cpu.Ctx) {
				var sense uint64
				for i := 0; i < iters; i++ {
					c.AtomicAdd(base+8, 8, 1)
				}
				bar.Wait(c, &sense)
				observed = c.Load(base, 8) // cross-slot read: true sharing
			},
		},
	}
	res := mustRun(t, testConfig(coherence.FSLite), wl)
	if observed != iters {
		t.Fatalf("cross-slot read got %d, want %d", observed, iters)
	}
	if res.Stats.Get(stats.CtrFSPrivatized) == 0 {
		t.Fatal("expected the line to be privatized in phase 1")
	}
	if res.Stats.Get(stats.CtrFSTerminations) == 0 {
		t.Fatal("expected the cross-slot read to terminate privatization")
	}
}

func TestDetectionsEmptyWithoutFalseSharing(t *testing.T) {
	mk := func(id int) cpu.ThreadFunc {
		return func(c *cpu.Ctx) {
			for i := 0; i < 100; i++ {
				c.Store(addr(20+id, 0), 8, uint64(i))
			}
		}
	}
	var ths []cpu.ThreadFunc
	for i := 0; i < 4; i++ {
		ths = append(ths, mk(i))
	}
	res := mustRun(t, testConfig(coherence.FSDetect), Workload{Name: "quiet", Threads: ths})
	if len(res.Detections) != 0 {
		t.Fatalf("spurious detections: %+v", res.Detections)
	}
}
