package sim

import (
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
)

// allocThreads is a store/load/compute false-sharing mix (no atomics: the
// AtomicAdd convenience wrapper allocates its RMW closure in the workload
// driver, which would mask what this test measures — the engine itself).
// Under FSLite the falsely shared lines privatize during warmup, after which
// every access hits locally: the measured epochs exercise the full scan /
// skip / record / barrier-replay machinery with the protocol quiesced, so any
// allocation seen is the engine's own.
func allocThreads(n int) []cpu.ThreadFunc {
	var ths []cpu.ThreadFunc
	for t := 0; t < n; t++ {
		t := t
		ths = append(ths, func(c *cpu.Ctx) {
			slot := addr(t/8, 8*(t%8))
			priv := addr(64+t*4, 0)
			for i := 0; ; i++ {
				c.Store(slot, 8, uint64(i))
				c.Load(priv+memsys.Addr(64*(i%4)), 8)
				c.Compute(uint64(i % 5))
			}
		})
	}
	return ths
}

// TestParallelEpochDoesNotAllocate drives the parallel engine's epoch
// machinery inline (no worker goroutines, so the measurement sees every
// allocation) and checks the steady-state loop — per-shard event-driven
// stepping, deferred-send recording, and the barrier replay/merge — is
// allocation-free once recorder buffers, message freelists and inbox rings
// have warmed up. `make allocsmoke` runs this alongside the network
// round-trip check.
func TestParallelEpochDoesNotAllocate(t *testing.T) {
	cfg := DefaultConfig(coherence.FSLite)
	cfg.Params = cfg.Params.ScaleToCores(16)
	cfg.Params.Topology = network.TopoMesh
	cfg.Engine = EngineParallel
	cfg.Shards = 4
	s := New(cfg, Workload{Name: "par-alloc", Threads: allocThreads(16)})
	if s.par == nil {
		t.Fatal("parallel engine not constructed")
	}
	pr := s.par
	w := s.net.MinDeliveryLatency()
	next := uint64(1)
	epoch := func() {
		end := next + w
		for _, sh := range pr.shards {
			sh.runEpoch(end)
		}
		s.net.Replay(pr.recs, pr.deliver)
		next = end
	}
	for i := 0; i < 2000; i++ {
		epoch() // warm-up: privatization episodes establish, pools fill
	}
	if n := testing.AllocsPerRun(500, epoch); n > 0 {
		t.Fatalf("steady-state epoch allocated %.2f allocs/op", n)
	}
}
