package sim

import (
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/sample"
	"fscoherence/internal/stats"
)

// sampledConfig returns a sampling configuration (no oracles: the warming
// path bypasses commit observers by design).
func sampledConfig(mode coherence.Protocol, spec string) Config {
	cfg := DefaultConfig(mode)
	cfg.MaxCycles = 50_000_000
	s, err := sample.ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	cfg.Sample = s
	return cfg
}

// TestSampledReadBack checks that values written across detailed and warming
// windows read back correctly: the warming path is architecturally exact.
func TestSampledReadBack(t *testing.T) {
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSDetect, coherence.FSLite} {
		const n = 400
		var got [n]uint64
		wl := Workload{
			Name: "sampled-readback",
			Threads: []cpu.ThreadFunc{func(c *cpu.Ctx) {
				for i := 0; i < n; i++ {
					c.Store(addr(i%32, (i%8)*8), 8, uint64(i*i+3))
				}
				for i := n - 1; i >= 0; i-- {
					got[i] = c.Load(addr(i%32, (i%8)*8), 8)
				}
			}},
		}
		res := mustRun(t, sampledConfig(mode, "50:150"), wl)
		if res.Sampled == nil {
			t.Fatalf("%v: sampled run returned no SampledRun", mode)
		}
		// The last writer of each (block, offset) slot wins.
		want := map[int]uint64{}
		for i := 0; i < n; i++ {
			want[(i%32)*8+(i%8)] = uint64(i*i + 3)
		}
		for i := 0; i < n; i++ {
			if got[i] != want[(i%32)*8+(i%8)] {
				t.Fatalf("%v: slot %d = %d, want %d", mode, i, got[i], want[(i%32)*8+(i%8)])
			}
		}
	}
}

// TestSampledFunctionalCountersExact runs the same workload fully and sampled
// and requires the functionally-accrued counters to match exactly: warming
// performs the same architectural work the detailed engine would.
func TestSampledFunctionalCountersExact(t *testing.T) {
	mkwl := func() Workload {
		threads := make([]cpu.ThreadFunc, 4)
		for i := range threads {
			tid := i
			threads[i] = func(c *cpu.Ctx) {
				// Private blocks plus a shared reduction: misses, fills,
				// evictions and (under FSLite) privatizations all exercise.
				for r := 0; r < 50; r++ {
					for b := 0; b < 8; b++ {
						a := addr(64+tid*8+b, 0)
						c.Store(a, 8, uint64(r*b+tid))
						c.Load(a, 8)
					}
					c.Store(addr(0, tid*8), 8, uint64(r))
				}
			}
		}
		return Workload{Name: "sampled-counters", Threads: threads}
	}
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSLite} {
		full := mustRun(t, func() Config {
			cfg := DefaultConfig(mode)
			cfg.MaxCycles = 50_000_000
			return cfg
		}(), mkwl())
		sampled := mustRun(t, sampledConfig(mode, "100:300"), mkwl())
		for _, id := range []stats.ID{
			stats.IDOpsCommitted, stats.IDLoadsCommitted, stats.IDStoresCommit,
			stats.IDL1DAccesses,
		} {
			if f, s := full.Stats.GetID(id), sampled.Stats.GetID(id); f != s {
				t.Errorf("%v %s: full=%d sampled=%d", mode, id.Name(), f, s)
			}
		}
		if sampled.Sampled.Windows < 2 {
			t.Errorf("%v: only %d detailed windows", mode, sampled.Sampled.Windows)
		}
	}
}

// TestSampledRepairStaysWarm checks that FSLite still detects and privatizes
// falsely-shared lines when most accesses run in warming windows.
func TestSampledRepairStaysWarm(t *testing.T) {
	threads := make([]cpu.ThreadFunc, 4)
	for i := range threads {
		tid := i
		threads[i] = func(c *cpu.Ctx) {
			for r := 0; r < 2000; r++ {
				c.Store(addr(0, tid*8), 8, uint64(r))
			}
		}
	}
	wl := Workload{Name: "sampled-fs", Threads: threads}
	res := mustRun(t, sampledConfig(coherence.FSLite, "100:900"), wl)
	if res.Stats.GetID(stats.IDFSPrivatized) == 0 {
		t.Fatal("sampled FSLite run never privatized a falsely-shared line")
	}
	if len(res.Detections) == 0 {
		t.Fatal("sampled FSLite run reported no detections")
	}
	if res.Sampled.Estimates[stats.CtrCycles].Mean <= 0 {
		t.Fatalf("cycle estimate missing: %+v", res.Sampled.Estimates)
	}
}

// TestSampledBoundaryQuiescence verifies the window-boundary contract: every
// time the hook fires, no core has an outstanding access, the network is
// empty, and the coherence metadata (PAM/SAM) agrees with the caches.
func TestSampledBoundaryQuiescence(t *testing.T) {
	threads := make([]cpu.ThreadFunc, 4)
	for i := range threads {
		tid := i
		threads[i] = func(c *cpu.Ctx) {
			for r := 0; r < 500; r++ {
				c.Store(addr(r%16, tid*8), 8, uint64(r))
				c.Load(addr((r+7)%16, tid*8), 8)
			}
		}
	}
	wl := Workload{Name: "sampled-boundary", Threads: threads}
	cfg := sampledConfig(coherence.FSLite, "64:192")
	s := New(cfg, wl)
	boundaries := 0
	s.SetBoundaryHook(func(cycle uint64) {
		boundaries++
		if !s.drained() {
			t.Fatalf("boundary at cycle %d: machine not quiescent", cycle)
		}
		for i := 0; i < cfg.Params.Cores; i++ {
			for _, v := range s.L1(i).PolicyViolations() {
				t.Fatalf("boundary at cycle %d: %s", cycle, v)
			}
		}
		for i := 0; i < cfg.Params.Slices; i++ {
			for _, v := range s.Dir(i).PolicyViolations() {
				t.Fatalf("boundary at cycle %d: %s", cycle, v)
			}
		}
	})
	if _, err := s.Run(wl.Name); err != nil {
		t.Fatalf("run: %v\n%s", err, s.DumpState())
	}
	if boundaries < 4 {
		t.Fatalf("only %d window boundaries fired", boundaries)
	}
}
