package sim

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/stats"
)

// smallConfig builds a deliberately hostile configuration: tiny L1s and LLC
// (constant inclusion recalls and SAM/metadata churn), an aggressive
// privatization threshold, and a tiny SAM table (forced terminations).
func smallConfig(mode coherence.Protocol) Config {
	cfg := testConfig(mode)
	cfg.Params.L1Entries = 16
	cfg.Params.L1Ways = 2
	cfg.Params.Slices = 2
	cfg.Params.LLCEntriesSlice = 32
	cfg.Params.LLCWays = 4
	cfg.Core.TauP = 4
	cfg.Core.TauR1 = 4
	cfg.Core.SAMEntries = 8
	cfg.Core.SAMWays = 2
	return cfg
}

// stressThread mixes private traffic, falsely shared slots, truly shared
// atomics, locks and occasional cross-slot reads over a working set larger
// than the caches.
func stressThread(id, threads, ops int, seed int64) cpu.ThreadFunc {
	return func(c *cpu.Ctx) {
		rng := rand.New(rand.NewSource(seed + int64(id)))
		fsBase := addr(0, 0) // blocks 0-1: falsely shared slots
		lock := addr(2, 0)   // block 2: lock (true sharing)
		shared := addr(3, 0) // block 3: shared atomic counter
		for i := 0; i < ops; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // false sharing: own slot in a hot line
				slot := fsBase + memsys.Addr(8*id)
				c.AtomicAdd(slot, 8, 1)
			case 3: // rare cross-slot read: forces termination
				victim := (id + 1 + rng.Intn(threads-1)) % threads
				c.Load(fsBase+memsys.Addr(8*victim), 8)
			case 4: // truly shared atomic
				c.AtomicAdd(shared, 8, 1)
			case 5: // lock-protected critical section
				c.LockAcquire(lock)
				v := c.Load(addr(4, 0), 8)
				c.StoreSync(addr(4, 0), 8, v+1)
				c.LockRelease(lock)
			default: // private traffic over a large working set
				blkIdx := 8 + id*16 + rng.Intn(16)
				off := rng.Intn(8) * 8
				a := addr(blkIdx, off)
				if rng.Intn(2) == 0 {
					c.Store(a, 8, rng.Uint64())
				} else {
					c.Load(a, 8)
				}
			}
			if rng.Intn(3) == 0 {
				c.Compute(uint64(rng.Intn(6)))
			}
		}
	}
}

func TestStressSmallCachesAllModes(t *testing.T) {
	const threads, ops = 8, 250
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSDetect, coherence.FSLite} {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%v/seed%d", mode, seed)
			t.Run(name, func(t *testing.T) {
				var ths []cpu.ThreadFunc
				for i := 0; i < threads; i++ {
					ths = append(ths, stressThread(i, threads, ops, seed*1000))
				}
				res := mustRun(t, smallConfig(mode), Workload{Name: name, Threads: ths})
				if mode == coherence.FSLite && seed == 1 {
					t.Logf("privatizations=%d terminations=%d (conflict=%d evict=%d sam=%d) aborts=%d",
						res.Stats.Get(stats.CtrFSPrivatized),
						res.Stats.Get(stats.CtrFSTerminations),
						res.Stats.Get(stats.CtrFSTermConflict),
						res.Stats.Get(stats.CtrFSTermEviction),
						res.Stats.Get(stats.CtrFSTermSAMEvict),
						res.Stats.Get(stats.CtrFSPrivAborted))
				}
			})
		}
	}
}

func TestStressPrivatizationChurn(t *testing.T) {
	// Alternating phases of pure false sharing and deliberate conflicts so
	// privatized episodes start and terminate repeatedly; the hysteresis
	// counter must keep the system live and correct throughout.
	const threads, rounds = 4, 30
	finals := make([]uint64, threads)
	mk := func(id int) cpu.ThreadFunc {
		slot := addr(0, 8*id)
		return func(c *cpu.Ctx) {
			rng := rand.New(rand.NewSource(int64(id + 42)))
			var mine uint64
			for r := 0; r < rounds; r++ {
				for i := 0; i < 12; i++ {
					c.AtomicAdd(slot, 8, 1)
					mine++
				}
				if rng.Intn(3) == 0 {
					other := (id + 1) % threads
					c.Load(addr(0, 8*other), 8) // cross read: conflict
				}
			}
			finals[id] = c.Load(slot, 8)
			_ = mine
		}
	}
	var ths []cpu.ThreadFunc
	for i := 0; i < threads; i++ {
		ths = append(ths, mk(i))
	}
	cfg := smallConfig(coherence.FSLite)
	res := mustRun(t, cfg, Workload{Name: "churn", Threads: ths})
	for id, v := range finals {
		if v != rounds*12 {
			t.Fatalf("slot %d = %d, want %d", id, v, rounds*12)
		}
	}
	if res.Stats.Get(stats.CtrFSTerminations) == 0 {
		t.Fatal("expected terminations under churn")
	}
}

func TestStressMultiBlockFalseSharing(t *testing.T) {
	// Several falsely shared lines at once: exercises SAM capacity and the
	// forced-termination path on SAM eviction (SAM has 8 entries here).
	const threads, lines, iters = 8, 12, 60
	mk := func(id int) cpu.ThreadFunc {
		return func(c *cpu.Ctx) {
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < iters; i++ {
				line := rng.Intn(lines)
				c.AtomicAdd(addr(30+line, 8*id), 8, 1)
			}
		}
	}
	var ths []cpu.ThreadFunc
	for i := 0; i < threads; i++ {
		ths = append(ths, mk(i))
	}
	mustRun(t, smallConfig(coherence.FSLite), Workload{Name: "multi-line", Threads: ths})
}

func TestOOOBasicCorrectness(t *testing.T) {
	const threads, ops = 4, 200
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSLite} {
		cfg := testConfig(mode)
		cfg.OOO = true
		cfg.MSHRs = 8
		var ths []cpu.ThreadFunc
		for i := 0; i < threads; i++ {
			ths = append(ths, stressThread(i, threads, ops, 77))
		}
		mustRun(t, cfg, Workload{Name: "ooo-stress", Threads: ths})
	}
}

func TestOOOFasterThanInOrder(t *testing.T) {
	// Independent async stores over many blocks: the OOO core must overlap
	// the misses and finish well ahead of the in-order core.
	mk := func(id int) cpu.ThreadFunc {
		return func(c *cpu.Ctx) {
			for i := 0; i < 120; i++ {
				c.Store(addr(100+id*40+i%40, (i*8)%blk), 8, uint64(i))
				c.Compute(2)
			}
		}
	}
	wl := func() Workload {
		var ths []cpu.ThreadFunc
		for i := 0; i < 4; i++ {
			ths = append(ths, mk(i))
		}
		return Workload{Name: "ooo-overlap", Threads: ths}
	}
	inCfg := testConfig(coherence.Baseline)
	inRes := mustRun(t, inCfg, wl())
	oooCfg := testConfig(coherence.Baseline)
	oooCfg.OOO = true
	oooCfg.MSHRs = 8
	oooRes := mustRun(t, oooCfg, wl())
	if oooRes.Cycles*2 >= inRes.Cycles {
		t.Fatalf("OOO %d cycles vs in-order %d: expected >2x speedup", oooRes.Cycles, inRes.Cycles)
	}
	t.Logf("in-order %d cycles, OOO %d cycles (%.1fx)", inRes.Cycles, oooRes.Cycles,
		float64(inRes.Cycles)/float64(oooRes.Cycles))
}

func TestPrefetchDoesNotDisturb(t *testing.T) {
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSLite} {
		var got uint64
		wl := Workload{
			Name: "prefetch",
			Threads: []cpu.ThreadFunc{
				func(c *cpu.Ctx) {
					c.StoreSync(addr(0, 0), 8, 99)
				},
				func(c *cpu.Ctx) {
					c.Prefetch(addr(0, 0))
					for got != 99 {
						got = c.Load(addr(0, 0), 8)
						c.Compute(4)
					}
				},
			},
		}
		mustRun(t, testConfig(mode), wl)
		if got != 99 {
			t.Fatalf("%v: prefetch-then-load got %d", mode, got)
		}
	}
}

func TestExternalSocketTerminatesPrivatization(t *testing.T) {
	// Privatize a line, then simulate an access forwarded from another
	// socket (§V-C condition iv): the episode must terminate.
	cfg := testConfig(coherence.FSLite)
	var ths []cpu.ThreadFunc
	for i := 0; i < 4; i++ {
		slot := addr(0, 8*i)
		ths = append(ths, func(c *cpu.Ctx) {
			for j := 0; j < 300; j++ {
				c.AtomicAdd(slot, 8, 1)
			}
		})
	}
	s := New(cfg, Workload{Name: "external", Threads: ths})
	target := addr(0, 0).BlockAlign(blk)
	slice := cfg.Params.HomeSlice(uint64(target))
	poked := false
	s.SetCycleHook(func(cycle uint64) {
		if !poked && cycle%500 == 0 {
			poked = s.Dir(slice).ExternalAccess(target)
		}
	})
	res, err := s.Run("external")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.OracleViolations {
		t.Errorf("oracle: %s", v)
	}
	if !poked {
		t.Skip("privatization did not overlap a poke window")
	}
	if res.Stats.Get(stats.CtrFSTerminations) == 0 {
		t.Fatal("external access did not terminate the episode")
	}
}

func TestStressThreeLevelHierarchy(t *testing.T) {
	// The §VII private L2 under full verification: tiny L1s force constant
	// L1<->L2 movement while the oracle and SWMR scanner watch.
	const threads, ops = 8, 250
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSLite} {
		cfg := smallConfig(mode)
		cfg.Params.L2Entries = 32
		cfg.Params.L2Ways = 4
		cfg.Params.L2HitCycles = 12
		var ths []cpu.ThreadFunc
		for i := 0; i < threads; i++ {
			ths = append(ths, stressThread(i, threads, ops, 4242))
		}
		mustRun(t, cfg, Workload{Name: "l2-stress", Threads: ths})
	}
}

func TestStressReductionRegions(t *testing.T) {
	// §VII reductions under duress: tiny caches evict privatized copies
	// mid-reduction and the tiny SAM forces terminations, yet the final
	// sums (validated by the oracle through the consumer's loads) must be
	// exact.
	const threads, iters, words = 4, 300, 8
	cfg := smallConfig(coherence.FSLite)
	base := memsys.Addr(0x40000)
	region := coherence.AddrRange{Start: base, Size: words * 8}
	bar := &cpu.Barrier{CountAddr: 0x50000, SenseAddr: 0x50008, Threads: threads + 1}
	var ths []cpu.ThreadFunc
	for tid := 0; tid < threads; tid++ {
		tid := tid
		ths = append(ths, func(c *cpu.Ctx) {
			rng := rand.New(rand.NewSource(int64(tid + 9)))
			var sense uint64
			for i := 0; i < iters; i++ {
				c.Reduce(base+memsys.Addr(8*rng.Intn(words)), 8, uint64(1+rng.Intn(3)))
				if rng.Intn(4) == 0 { // cache pressure: evict PRV copies
					c.Load(memsys.Addr(0x80000+tid*0x10000+rng.Intn(32)*64), 8)
				}
			}
			bar.Wait(c, &sense)
		})
	}
	sums := make([]uint64, words)
	ths = append(ths, func(c *cpu.Ctx) {
		var sense uint64
		bar.Wait(c, &sense)
		for w := 0; w < words; w++ {
			sums[w] = c.Load(base+memsys.Addr(8*w), 8)
		}
	})
	res := mustRun(t, cfg, Workload{Name: "reduce-stress", Threads: ths,
		ReductionRegions: []coherence.AddrRange{region}})
	var total uint64
	for _, s := range sums {
		total += s
	}
	if total == 0 {
		t.Fatal("no reductions observed")
	}
	t.Logf("total=%d privatizations=%d terminations=%d",
		total, res.Stats.Get(stats.CtrFSPrivatized), res.Stats.Get(stats.CtrFSTerminations))
}

// ---------------------------------------------------------------------------
// Data-value invariant: merged memory equals a sequentially-consistent
// reference execution.
// ---------------------------------------------------------------------------

// valOp is one operation of the data-value workload. The op mix is chosen so
// the final memory image is independent of thread interleaving — atomic adds
// and reductions commute, and plain stores target thread-private addresses —
// which makes a byte-precise sequentially-consistent reference computable by
// replaying the ops into a flat byte map in any order.
type valOp struct {
	kind int // 0 = atomic add (falsely shared slot), 1 = reduce, 2 = atomic add (shared), 3 = private store, 4 = private load
	a    memsys.Addr
	size int
	val  uint64
}

// refMem is the byte-granular sequentially-consistent reference memory.
type refMem map[memsys.Addr]byte

func (m refMem) load(a memsys.Addr, size int) uint64 {
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = m[a+memsys.Addr(i)]
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (m refMem) store(a memsys.Addr, size int, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for i := 0; i < size; i++ {
		m[a+memsys.Addr(i)] = buf[i]
	}
}

func (m refMem) add(a memsys.Addr, size int, delta uint64) {
	m.store(a, size, m.load(a, size)+delta)
}

// genValOps builds thread id's deterministic op stream for the data-value
// workload. Layout: falsely shared slots in blocks 0-1 (four 8-byte slots
// per line), a declared reduction region in block 40, a truly shared atomic
// counter in block 3, and a 4-line private region per thread from block 60.
func genValOps(id, threads, ops int, seed int64) []valOp {
	rng := rand.New(rand.NewSource(seed + int64(id)*7919))
	slot := addr(id%2, 16*(id/2)) // two falsely shared lines, 4 slots each
	priv := addr(60+id*4, 0)
	out := make([]valOp, 0, ops)
	for i := 0; i < ops; i++ {
		switch rng.Intn(8) {
		case 0, 1, 2:
			out = append(out, valOp{kind: 0, a: slot, size: 8, val: uint64(1 + rng.Intn(7))})
		case 3:
			out = append(out, valOp{kind: 1, a: addr(40, 8*rng.Intn(8)), size: 8, val: uint64(1 + rng.Intn(3))})
		case 4:
			out = append(out, valOp{kind: 2, a: addr(3, 0), size: 8, val: 1})
		case 5, 6:
			// Sub-word private stores make the comparison byte-precise:
			// sizes 1, 2, 4 and 8 at arbitrary aligned offsets.
			size := 1 << rng.Intn(4)
			off := rng.Intn(4*blk/size) * size
			out = append(out, valOp{kind: 3, a: priv + memsys.Addr(off), size: size, val: rng.Uint64()})
		default:
			off := rng.Intn(4*blk/8) * 8
			out = append(out, valOp{kind: 4, a: priv + memsys.Addr(off), size: 8})
		}
	}
	return out
}

// TestDataValueInvariant runs a hostile mixed workload (false sharing,
// reductions, shared atomics, sub-word private traffic, tiny caches and an
// aggressive privatization threshold) under every protocol and asserts that
// the merged memory contents — observed through coherent loads after a full
// barrier, which forces FSLite's PRV merge of every surviving privatized
// copy — are byte-for-byte equal to the sequentially-consistent reference
// execution of the same ops.
func TestDataValueInvariant(t *testing.T) {
	const threads, ops = 7, 300 // 7 workers + 1 checker = the 8 simulated cores
	region := coherence.AddrRange{Start: addr(40, 0), Size: blk}
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSDetect, coherence.FSLite} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%v/seed%d", mode, seed), func(t *testing.T) {
				// Reference execution and touched-word inventory.
				ref := refMem{}
				touched := map[memsys.Addr]bool{}
				streams := make([][]valOp, threads)
				for id := 0; id < threads; id++ {
					streams[id] = genValOps(id, threads, ops, seed*100_000)
					for _, op := range streams[id] {
						if op.kind == 4 {
							continue
						}
						switch op.kind {
						case 3:
							ref.store(op.a, op.size, op.val)
						default:
							ref.add(op.a, op.size, op.val)
						}
						touched[op.a.BlockAlign(8)] = true
					}
				}
				var words []memsys.Addr
				for a := range touched {
					words = append(words, a)
				}
				sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })

				// Simulated execution: replay each stream, then a checker
				// thread reads every touched word through the hierarchy.
				cfg := smallConfig(mode)
				bar := &cpu.Barrier{CountAddr: addr(55, 0), SenseAddr: addr(55, 8), Threads: threads + 1}
				var ths []cpu.ThreadFunc
				for id := 0; id < threads; id++ {
					stream := streams[id]
					ths = append(ths, func(c *cpu.Ctx) {
						var sense uint64
						for _, op := range stream {
							switch op.kind {
							case 0, 2:
								c.AtomicAdd(op.a, op.size, op.val)
							case 1:
								c.Reduce(op.a, op.size, op.val)
							case 3:
								c.Store(op.a, op.size, op.val)
							case 4:
								c.Load(op.a, op.size)
							}
						}
						bar.Wait(c, &sense)
					})
				}
				got := make([]uint64, len(words))
				ths = append(ths, func(c *cpu.Ctx) {
					var sense uint64
					bar.Wait(c, &sense)
					for i, a := range words {
						got[i] = c.Load(a, 8)
					}
				})
				res := mustRun(t, cfg, Workload{Name: "data-value", Threads: ths,
					ReductionRegions: []coherence.AddrRange{region}})

				bad := 0
				for i, a := range words {
					if want := ref.load(a, 8); got[i] != want {
						t.Errorf("%v: word %v = %#x, reference %#x", mode, a, got[i], want)
						if bad++; bad > 8 {
							t.Fatal("too many mismatches")
						}
					}
				}
				if mode == coherence.FSLite && res.Stats.Get(stats.CtrFSPrivatized) == 0 {
					t.Fatal("data-value workload never privatized: PRV merge path not exercised")
				}
			})
		}
	}
}

func TestStressNonInclusiveLLC(t *testing.T) {
	// §VII sparse directory / non-inclusive LLC under verification: the
	// tiny data array constantly drops and refetches blocks whose directory
	// entries (and L1 copies) survive.
	const threads, ops = 8, 200
	for _, mode := range []coherence.Protocol{coherence.Baseline, coherence.FSLite} {
		cfg := smallConfig(mode)
		cfg.Params.NonInclusiveLLC = true
		cfg.Params.LLCEntriesSlice = 16 // data slots
		cfg.Params.LLCWays = 4
		cfg.Params.DirEntriesSlice = 64
		cfg.Params.DirWays = 8
		var ths []cpu.ThreadFunc
		for i := 0; i < threads; i++ {
			ths = append(ths, stressThread(i, threads, ops, 777))
		}
		mustRun(t, cfg, Workload{Name: "noninclusive-stress", Threads: ths})
	}
}

func TestReductionAndFalseSharingOnOneLine(t *testing.T) {
	// A single line whose first half is a declared reduction region (all
	// threads accumulate into the same words) and whose second half holds
	// per-thread falsely shared slots: the privatized episode must merge
	// reduction words by delta-sum and private slots by last-writer copy.
	cfg := testConfig(coherence.FSLite)
	cfg.Core.TauP = 4
	cfg.Core.TauR1 = 4
	base := memsys.Addr(0x70000)
	region := coherence.AddrRange{Start: base, Size: 16} // words 0-1
	const threads, iters = 4, 200
	bar := &cpu.Barrier{CountAddr: 0x71000, SenseAddr: 0x71008, Threads: threads + 1}
	var ths []cpu.ThreadFunc
	for tid := 0; tid < threads; tid++ {
		tid := tid
		ths = append(ths, func(c *cpu.Ctx) {
			var sense uint64
			slot := base + memsys.Addr(16+8*tid) // private falsely shared slot
			for i := 0; i < iters; i++ {
				c.Reduce(base+memsys.Addr(8*(i%2)), 8, 1)
				c.AtomicAdd(slot, 8, 1)
			}
			bar.Wait(c, &sense)
		})
	}
	var sums [2]uint64
	var slots [4]uint64
	ths = append(ths, func(c *cpu.Ctx) {
		var sense uint64
		bar.Wait(c, &sense)
		for w := 0; w < 2; w++ {
			sums[w] = c.Load(base+memsys.Addr(8*w), 8)
		}
		for s := 0; s < 4; s++ {
			slots[s] = c.Load(base+memsys.Addr(16+8*s), 8)
		}
	})
	mustRun(t, cfg, Workload{Name: "mixed-line", Threads: ths,
		ReductionRegions: []coherence.AddrRange{region}})
	if sums[0]+sums[1] != threads*iters {
		t.Fatalf("reduction sums = %v, want total %d", sums, threads*iters)
	}
	for i, v := range slots {
		if v != iters {
			t.Fatalf("slot %d = %d, want %d", i, v, iters)
		}
	}
}

// parallelStressThreads builds an n-core false-sharing workload shaped like
// the uGRID scaling microbenchmark: eight threads per hot line (own 8-byte
// slot each), private traffic in a per-thread block range, and compute gaps.
// Everything is seeded per-thread, so any engine/shard configuration must
// reproduce it exactly.
func parallelStressThreads(n, ops int, seed int64) []cpu.ThreadFunc {
	var ths []cpu.ThreadFunc
	for t := 0; t < n; t++ {
		t := t
		ths = append(ths, func(c *cpu.Ctx) {
			rng := rand.New(rand.NewSource(seed + int64(t)))
			slot := addr(t/8, 8*(t%8)) // hot line shared by my group of 8
			priv := addr(64+t*4, 0)    // private 4-block range
			for i := 0; i < ops; i++ {
				switch rng.Intn(6) {
				case 0, 1, 2:
					c.AtomicAdd(slot, 8, 1)
				case 3:
					c.Store(priv+memsys.Addr(64*rng.Intn(4)), 8, rng.Uint64())
				default:
					c.Load(priv+memsys.Addr(64*rng.Intn(4)), 8)
				}
				if rng.Intn(3) == 0 {
					c.Compute(uint64(rng.Intn(8)))
				}
			}
		})
	}
	return ths
}

// TestStressParallelEngineRace is the parallel engine's race-detector stress:
// a 32-core mesh machine under FSLite, run under the skipping engine once for
// reference and then under the parallel engine with randomized shard counts.
// Every configuration must produce the identical cycle count and counter
// snapshot — the shard count is an execution-resource knob, never a model
// knob — and `go test -race ./internal/sim/` exercises the epoch workers'
// goroutine handoffs.
func TestStressParallelEngineRace(t *testing.T) {
	// The engine runs shards inline on a GOMAXPROCS=1 host; pin at least 4
	// scheduler threads so this test always races the worker-goroutine path.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(4, runtime.GOMAXPROCS(0))))
	const cores, ops = 32, 150
	base := DefaultConfig(coherence.FSLite)
	base.Params = base.Params.ScaleToCores(cores)
	base.Params.Topology = network.TopoMesh
	ths := parallelStressThreads(cores, ops, 7)

	ref := mustRun(t, base, Workload{Name: "par-stress-ref", Threads: ths})
	refSnap := ref.Stats.Snapshot()

	rng := rand.New(rand.NewSource(42))
	shardCounts := []int{1, 16}
	for i := 0; i < 3; i++ {
		shardCounts = append(shardCounts, 1+rng.Intn(16))
	}
	for _, k := range shardCounts {
		k := k
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			cfg := base
			cfg.Engine = EngineParallel
			cfg.Shards = k
			res := mustRun(t, cfg, Workload{Name: "par-stress", Threads: parallelStressThreads(cores, ops, 7)})
			if res.Cycles != ref.Cycles {
				t.Errorf("cycles diverge: skip=%d parallel/%d=%d", ref.Cycles, k, res.Cycles)
			}
			snap := res.Stats.Snapshot()
			for key, v := range refSnap {
				if snap[key] != v {
					t.Errorf("counter %s diverges: skip=%d parallel/%d=%d", key, v, k, snap[key])
				}
			}
			for key := range snap {
				if _, ok := refSnap[key]; !ok {
					t.Errorf("counter %s only under parallel/%d", key, k)
				}
			}
		})
	}
}

// TestStressParallelEpochChurn drives many short parallel runs back-to-back
// (fresh worker goroutines each time) to shake out lifecycle races in
// start/stop and the barrier channels under -race.
func TestStressParallelEpochChurn(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(4, runtime.GOMAXPROCS(0))))
	for seed := int64(1); seed <= 6; seed++ {
		cfg := DefaultConfig(coherence.FSLite)
		cfg.Params = cfg.Params.ScaleToCores(16)
		cfg.Params.Topology = network.TopoRing
		cfg.Engine = EngineParallel
		cfg.Shards = int(seed) // 1..6 shards
		res := mustRun(t, cfg, Workload{Name: "par-churn", Threads: parallelStressThreads(16, 40, seed)})
		if res.Cycles == 0 {
			t.Fatalf("seed %d: zero-cycle run", seed)
		}
	}
}
