package sim

// Conservative parallel discrete-event engine (-engine=parallel).
//
// The machine is partitioned into K shards, each owning a contiguous range
// of cores (with their L1s) and of LLC/directory slices. Components interact
// across shards only through network messages, and the network guarantees a
// minimum delivery latency L (the flat fabric's Latency, or one hop on a
// ring/mesh — see PROTOCOL.md §"Network timing & lookahead"). A message sent
// at cycle c can therefore never need delivery before c+L, which makes L a
// conservative lookahead: the engine advances time in epochs of width L, and
// within an epoch every shard simulates its own components independently on
// its own OS thread, running the same quiescence-skipping loop the
// sequential EngineSkip uses — restricted to local events.
//
// Correctness (byte-identical results, proven by TestEngineEquivalence*)
// rests on deferred-send replay: during an epoch a shard's network front
// records every send and receive with its global position (cycle, component
// tick rank, intra-tick index) instead of admitting it. At the epoch barrier
// the coordinator merges all shards' operation streams in that global order
// — exactly the order the sequential engines perform them — and replays the
// merged stream through the master network, which runs the full sequential
// admission path (sequence numbering, topology routing and link contention,
// per-channel FIFO clamps, statistics, in-flight peak tracking) and routes
// each message into the destination shard's inbox. Per-shard statistics sets
// merge deterministically at the end of the run; the in-flight peak, the
// only globally order-sensitive counter, is maintained by the master network
// during replay.

import (
	"fmt"
	"runtime"

	"fscoherence/internal/coherence"
	"fscoherence/internal/cpu"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/stats"
)

// parallelShards decides whether cfg can run under the parallel engine and
// with how many shards; 0 means "construct sequentially" (the run falls back
// to EngineSkip). Fault injection, observability attachments and the
// verification oracles are inherently order-sensitive mid-cycle, so those
// configurations stay sequential; their engine equivalence is covered by the
// naive-vs-skip matrix.
func parallelShards(cfg Config) int {
	if cfg.Engine != EngineParallel {
		return 0
	}
	if cfg.Faults != nil || cfg.Obs != nil || cfg.Forensics != nil || cfg.CheckOracle || cfg.CheckSWMR {
		return 0
	}
	p := cfg.Params
	if minDeliveryLatency(p) < 1 {
		return 0
	}
	k := cfg.Shards
	if k <= 0 {
		// One shard per 8 cores: big machines parallelize, the Table II
		// 8-core default degenerates to a single shard (still exercising
		// the deferred-replay path).
		k = p.Cores / 8
	}
	if k < 1 {
		k = 1
	}
	if k > p.Cores {
		k = p.Cores
	}
	if k > 16 {
		k = 16
	}
	return k
}

// minDeliveryLatency mirrors network.MinDeliveryLatency from Params alone
// (needed before the network exists).
func minDeliveryLatency(p coherence.Params) uint64 {
	if p.Topology != network.TopoFlat {
		return p.HopLatencyOrDefault()
	}
	return p.NetLatency
}

// parShard is one worker's slice of the machine.
type parShard struct {
	id    int
	clock uint64 // local current cycle; read by component Now closures

	net   *network.Network // deferred-mode network front
	rec   *network.Recorder
	stats *stats.Set
	mem   *memsys.Memory // backing memory for this shard's slices

	dirs     []*coherence.Dir
	dirRank  []int32
	l1s      []*coherence.L1
	l1Rank   []int32
	cores    []cpu.Core
	coreRank []int32

	now        uint64 // last cycle stepped or skipped over
	lastActive uint64 // last cycle actually stepped (a local event fired)
	quiet      bool   // all local components idle at epoch end
	l1Act      []bool // per-step scratch: which L1s ticked this cycle

	// Cached NextEvent per component, refreshed after each tick (a
	// component's wake-up only moves when it ticks; the zero value marks
	// everything due so the first stepped cycle ticks the full shard and
	// seeds the caches).
	dirNext  []uint64
	l1Next   []uint64
	coreNext []uint64

	cmd chan uint64 // epoch-end commands from the coordinator
}

// parRunner coordinates the shard workers.
type parRunner struct {
	s       *System
	shards  []*parShard
	recs    []*network.Recorder
	owner   []*parShard // NodeID -> owning shard
	done    chan int
	deliver func(m *network.Msg, readyAt uint64)
	started bool
}

// newParRunner builds the shard skeletons (networks, stats sets, recorders,
// memory partitions) before component construction; bind() attaches the
// components afterwards.
func newParRunner(s *System, k int) *parRunner {
	p := s.cfg.Params
	pr := &parRunner{s: s, done: make(chan int, k)}
	for i := 0; i < k; i++ {
		sh := &parShard{
			id:    i,
			net:   network.New(p.Nodes(), p.NetLatency, p.BlockSize, stats.NewSet()),
			rec:   &network.Recorder{},
			stats: stats.NewSet(),
			mem:   memsys.NewMemory(p.BlockSize),
			cmd:   make(chan uint64, 1),
		}
		sh.net.SetRecorder(sh.rec)
		pr.shards = append(pr.shards, sh)
		pr.recs = append(pr.recs, sh.rec)
	}
	pr.owner = make([]*parShard, p.Nodes())
	for i := 0; i < p.Cores; i++ {
		pr.owner[i] = pr.shards[i*k/p.Cores]
	}
	for j := 0; j < p.Slices; j++ {
		pr.owner[p.Cores+j] = pr.shards[j*k/p.Slices]
	}
	pr.deliver = func(m *network.Msg, readyAt uint64) {
		pr.owner[m.Dst].net.Deliver(m, readyAt)
	}
	return pr
}

// bind distributes the constructed components to their shards and assigns
// global tick ranks matching the sequential stepCycle order: directory
// slices first, then L1s, then cores.
func (pr *parRunner) bind() {
	s := pr.s
	p := s.cfg.Params
	k := len(pr.shards)
	for j, d := range s.dirs {
		sh := pr.shards[j*k/p.Slices]
		sh.dirs = append(sh.dirs, d)
		sh.dirRank = append(sh.dirRank, int32(j))
	}
	for i, l := range s.l1s {
		sh := pr.shards[i*k/p.Cores]
		sh.l1s = append(sh.l1s, l)
		sh.l1Rank = append(sh.l1Rank, int32(p.Slices+i))
	}
	for i, c := range s.cores {
		sh := pr.shards[i*k/p.Cores]
		sh.cores = append(sh.cores, c)
		sh.coreRank = append(sh.coreRank, int32(p.Slices+p.Cores+i))
	}
	for _, sh := range pr.shards {
		sh.dirNext = make([]uint64, len(sh.dirs))
		sh.l1Next = make([]uint64, len(sh.l1s))
		sh.coreNext = make([]uint64, len(sh.cores))
	}
}

// start launches one worker goroutine per shard.
func (pr *parRunner) start() {
	if pr.started {
		return
	}
	pr.started = true
	for _, sh := range pr.shards {
		go sh.serve(pr.done)
	}
}

// stop terminates the workers (they drain their command channels).
func (pr *parRunner) stop() {
	if !pr.started {
		return
	}
	pr.started = false
	for _, sh := range pr.shards {
		close(sh.cmd)
	}
}

// run executes the epoch loop to completion and returns the final cycle —
// the cycle at which the sequential engines' done() would first have
// reported quiescence.
//
// Two refinements keep the loop competitive with the sequential engines even
// on a single hardware thread. First, on a GOMAXPROCS=1 host the coordinator
// executes the shards inline instead of paying a goroutine barrier per epoch
// (the command/done channel round-trips dominate at W=4); the per-shard work
// is identical either way, so results are byte-equal by construction.
// Second, an epoch's end is stretched to E+W, where E is the earliest local
// event or delivered arrival across all shards: every deferred send inside
// the epoch happens at a cycle >= E, so its delivery deadline is >= E+W and
// the conservative lookahead still holds. When the whole machine is idle
// until some distant E this collapses arbitrarily many W-wide epochs into
// one, recovering the global idle-skipping the sequential EngineSkip enjoys.
func (pr *parRunner) run(name string, maxCycles uint64) (uint64, error) {
	inline := runtime.GOMAXPROCS(0) == 1
	if !inline {
		pr.start()
		defer pr.stop()
	}
	w := pr.s.net.MinDeliveryLatency()
	t := uint64(1)
	for {
		if t > maxCycles {
			return 0, fmt.Errorf("%w at cycle %d (%s)", ErrDeadlock, maxCycles+1, name)
		}
		pr.s.pollCancel()
		if pr.s.stopReason != "" {
			return 0, fmt.Errorf("%w: %s (%s)", ErrStopped, pr.s.stopReason, name)
		}
		// Stretch the epoch: no shard has an event before wake, so deferred
		// sends can only happen at cycles >= wake and end = wake+W keeps
		// every delivery deadline at or beyond the next barrier.
		wake := uint64(coherence.NoEvent)
		for _, sh := range pr.shards {
			if e := sh.nextLocal(); e < wake {
				wake = e
			}
		}
		if wake < t {
			wake = t
		}
		end := wake + w
		if end > maxCycles+1 {
			end = maxCycles + 1
		}
		if inline {
			for _, sh := range pr.shards {
				sh.runEpoch(end)
			}
		} else {
			for _, sh := range pr.shards {
				sh.cmd <- end
			}
			for range pr.shards {
				<-pr.done
			}
		}
		// Barrier: replay all deferred network traffic in global order on
		// the master network, routing each message into its destination
		// shard's inbox for the coming epochs.
		pr.s.net.Replay(pr.recs, pr.deliver)
		quiet := pr.s.net.Pending() == 0
		for _, sh := range pr.shards {
			quiet = quiet && sh.quiet
		}
		if quiet {
			cycle := uint64(0)
			for _, sh := range pr.shards {
				if sh.lastActive > cycle {
					cycle = sh.lastActive
				}
			}
			return cycle, nil
		}
		t = end
	}
}

// mergeStats folds the per-shard statistics into the master set. Sum
// counters are partitioned across shards, so summing restores the sequential
// totals; peak counters merge by max (per-slice peaks are order-insensitive;
// the global in-flight peak lives on the master set already).
func (pr *parRunner) mergeStats() {
	for _, sh := range pr.shards {
		pr.s.stats.Merge(sh.stats)
	}
}

// serve is the worker loop: run one epoch per command.
func (sh *parShard) serve(done chan<- int) {
	for end := range sh.cmd {
		sh.runEpoch(end)
		done <- sh.id
	}
}

// runEpoch advances the shard's components through cycles [sh.now+1, end)
// with the same event-driven skipping the sequential EngineSkip performs,
// restricted to local events: component wake-ups and already-delivered
// message arrivals. All sends land in the recorder for barrier replay.
func (sh *parShard) runEpoch(end uint64) {
	now := sh.now
	for {
		wake := sh.nextLocal()
		if wake >= end {
			break
		}
		if wake <= now {
			// Leftover deliverable work (e.g. a MaxMsgsPerCycle-capped
			// tick): the very next cycle has work.
			wake = now + 1
			if wake >= end {
				break
			}
		}
		if d := wake - now - 1; d > 0 {
			for _, c := range sh.cores {
				c.SkipIdle(d)
			}
		}
		now = wake
		sh.step(now)
		sh.lastActive = now
	}
	// Idle through the rest of the epoch, compensating per-cycle stall
	// accounting exactly as a sequential skip over the same span would.
	if e := end - 1; e > now {
		d := e - now
		for _, c := range sh.cores {
			c.SkipIdle(d)
		}
		now = e
	}
	sh.now = now
	sh.quiet = sh.isQuiet()
}

// nextLocal reports the earliest cycle at which any local component has
// self-driven work or a delivered message becomes consumable (values <=
// sh.now mean leftover same-cycle work). Component wake-ups come from the
// per-component caches — a component's NextEvent only changes when it ticks,
// and step refreshes the cache after every tick — so the scan is a flat
// uint64 min, not a round of interface calls. The coordinator also polls
// this at the epoch barrier to stretch the next epoch.
func (sh *parShard) nextLocal() uint64 {
	wake := sh.net.NextArrival()
	for _, v := range sh.dirNext {
		if v < wake {
			wake = v
		}
	}
	for _, v := range sh.l1Next {
		if v < wake {
			wake = v
		}
	}
	for _, v := range sh.coreNext {
		if v < wake {
			wake = v
		}
	}
	return wake
}

// step runs one local cycle in sequential component order, labelling each
// component's recorded network operations with its global tick rank.
//
// Within a stepped cycle only components that are due run: a component whose
// cached NextEvent lies beyond c would tick as a pure no-op (that is exactly
// the contract whole-machine skipping is built on), so its tick is elided.
// Three details keep that sound. An elided core still needs the per-cycle
// stall accounting a no-op tick would have performed, which SkipIdle(1)
// supplies. A core and its L1 always tick as a pair — a core Submit
// schedules completions against its L1's clock (and a retry can only clear
// after L1 state changes), while an L1 completion can unblock its core the
// same cycle — so either being due ticks both (bind distributes l1s[i] and
// cores[i] by the same index formula, so they pair up); the L1's cache is
// refreshed after its core ticks, since the core's Submit schedules into the
// L1. And delivered network arrivals are consumed inside L1/Dir ticks, so
// any due arrival runs every L1 and directory.
func (sh *parShard) step(c uint64) {
	sh.clock = c
	sh.net.SetCycle(c)
	arrivals := sh.net.NextArrival() <= c
	for i, d := range sh.dirs {
		if arrivals || sh.dirNext[i] <= c {
			sh.rec.Begin(c, sh.dirRank[i])
			d.Tick(c)
			sh.dirNext[i] = d.NextEvent(c)
		}
	}
	if cap(sh.l1Act) < len(sh.l1s) {
		sh.l1Act = make([]bool, len(sh.l1s))
	}
	l1Act := sh.l1Act[:len(sh.l1s)]
	for i, l := range sh.l1s {
		l1Act[i] = arrivals || sh.l1Next[i] <= c || sh.coreNext[i] <= c
		if l1Act[i] {
			sh.rec.Begin(c, sh.l1Rank[i])
			l.Tick(c)
		}
	}
	for i, co := range sh.cores {
		if l1Act[i] {
			sh.rec.Begin(c, sh.coreRank[i])
			co.Tick(c)
			sh.coreNext[i] = co.NextEvent(c)
			sh.l1Next[i] = sh.l1s[i].NextEvent(c)
		} else {
			co.SkipIdle(1)
		}
	}
}

// isQuiet reports whether every local component has fully drained. Undelivered
// cross-shard traffic is tracked by the master network's in-flight count, so
// the coordinator's quiescence check is quiet-everywhere && nothing in flight.
func (sh *parShard) isQuiet() bool {
	for _, c := range sh.cores {
		if !c.Finished() {
			return false
		}
	}
	for _, l := range sh.l1s {
		if !l.Idle() {
			return false
		}
	}
	for _, d := range sh.dirs {
		if !d.Idle() {
			return false
		}
	}
	return true
}
