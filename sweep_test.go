package fscoherence

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"fscoherence/internal/stats"
)

// TestRunnerDeterminism is the engine's core guarantee: the same
// (benchmark, Options) cell run twice concurrently (on separate engines, so
// memoization cannot serve one from the other) and once serially yields
// identical Result stats — cycles, misses and every per-protocol counter.
func TestRunnerDeterminism(t *testing.T) {
	cells := []struct {
		bench string
		opt   Options
	}{
		{"LT", Options{Protocol: FSLite, Scale: testScale}},
		{"RC", Options{Protocol: FSDetect, Scale: testScale}},
		{"LL", Options{Protocol: Baseline, Scale: testScale}},
	}
	serial := NewRunner(1)
	parA := NewRunner(4)
	parB := NewRunner(4)

	type outcome struct {
		ref  *Result
		a, b *Future
	}
	var outs []outcome
	// Submit every cell to both parallel engines first so the concurrent
	// copies genuinely overlap, then run the serial references.
	for _, c := range cells {
		outs = append(outs, outcome{a: parA.Submit(c.bench, c.opt), b: parB.Submit(c.bench, c.opt)})
	}
	for i, c := range cells {
		outs[i].ref = serial.MustRun(c.bench, c.opt)
	}
	for i, c := range cells {
		ra, rb := outs[i].a.Must(), outs[i].b.Must()
		ref := outs[i].ref
		for _, got := range []*Result{ra, rb} {
			if got.Cycles != ref.Cycles {
				t.Fatalf("%s/%v: cycles %d (concurrent) vs %d (serial)", c.bench, c.opt.Protocol, got.Cycles, ref.Cycles)
			}
			if got.MissFraction != ref.MissFraction {
				t.Fatalf("%s/%v: miss fraction diverged", c.bench, c.opt.Protocol)
			}
			if !reflect.DeepEqual(got.Stats.Snapshot(), ref.Stats.Snapshot()) {
				t.Fatalf("%s/%v: counter sets diverged between concurrent and serial runs", c.bench, c.opt.Protocol)
			}
		}
		// Spot-check the per-protocol counters the tables consume.
		for _, ctr := range []string{stats.CtrFSPrivatized, stats.CtrFSTerminations, stats.CtrNetMessages, stats.CtrNetBytes} {
			if ra.Stats.Get(ctr) != ref.Stats.Get(ctr) {
				t.Fatalf("%s/%v: %s = %d vs %d", c.bench, c.opt.Protocol, ctr, ra.Stats.Get(ctr), ref.Stats.Get(ctr))
			}
		}
	}
}

// TestGoldenTablesSerialVsParallel asserts the acceptance criterion
// directly: Fig 13- and Fig 14-style tables rendered from a 1-worker engine
// and an 8-worker engine are byte-identical.
func TestGoldenTablesSerialVsParallel(t *testing.T) {
	builders := []struct {
		name string
		gen  func(*Runner, float64) *Table
	}{
		{"fig13", Fig13MissFractions},
		{"fig14a", Fig14Speedup},
	}
	serial := NewRunner(1)
	parallel := NewRunner(8)
	for _, b := range builders {
		want := b.gen(serial, testScale)
		got := b.gen(parallel, testScale)
		if got.CSV() != want.CSV() {
			t.Fatalf("%s: -j 8 CSV differs from -j 1:\n--- j1 ---\n%s--- j8 ---\n%s", b.name, want.CSV(), got.CSV())
		}
		if got.String() != want.String() || got.Markdown() != want.Markdown() {
			t.Fatalf("%s: rendered table differs between -j 1 and -j 8", b.name)
		}
	}
}

// TestRunnerMemoization: a cell shared by several tables simulates once.
func TestRunnerMemoization(t *testing.T) {
	r := NewRunner(2)
	a := r.MustRun("LL", Options{Protocol: Baseline, Scale: testScale})
	b := r.MustRun("LL", Options{Protocol: Baseline, Scale: testScale})
	if a != b {
		t.Fatal("identical cells returned distinct results (memo miss)")
	}
	// Scale 0 normalizes to 1, so those two spellings share a cell too.
	c := r.Submit("LL", Options{Protocol: Baseline})
	d := r.Submit("LL", Options{Protocol: Baseline, Scale: 1})
	if c.Must() != d.Must() {
		t.Fatal("Scale 0 and Scale 1 did not share a cell")
	}
	rep := r.Report()
	if rep.Executed != 2 || rep.MemoHits != 2 {
		t.Fatalf("report = %+v, want 2 executed / 2 memo hits", rep)
	}
}

// TestRunnerErrorIsolation: a failing cell reports an error on its future
// without disturbing other cells in flight.
func TestRunnerErrorIsolation(t *testing.T) {
	r := NewRunner(2)
	bad := r.Submit("NOPE", Options{Protocol: Baseline})
	good := r.Submit("LL", Options{Protocol: Baseline, Scale: testScale})
	if _, err := bad.Result(); err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("bad cell error = %v", err)
	}
	if _, err := good.Result(); err != nil {
		t.Fatalf("good cell poisoned by bad cell: %v", err)
	}
	if rep := r.Report(); rep.Errors != 1 {
		t.Fatalf("errors = %d, want 1", rep.Errors)
	}
}

// TestRunnerConcurrentSubmitters drives one shared engine from many
// goroutines (the -race tier-1 step exercises this path for data races).
func TestRunnerConcurrentSubmitters(t *testing.T) {
	r := NewRunner(4)
	benches := []string{"LL", "LT", "BS", "SM"}
	var wg sync.WaitGroup
	results := make([]*Result, len(benches)*2)
	for i, b := range benches {
		for j, p := range []Protocol{Baseline, FSLite} {
			i, j, b, p := i, j, b, p
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[i*2+j] = r.MustRun(b, Options{Protocol: p, Scale: testScale})
			}()
		}
	}
	wg.Wait()
	for i, res := range results {
		if res == nil || res.Cycles == 0 {
			t.Fatalf("slot %d: missing or empty result", i)
		}
	}
}
