package fscoherence

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fscoherence/internal/forensics"
)

// Campaign journal tests: a crashed sweep must resume from its journal with
// completed cells primed (not rerun) and primed results indistinguishable
// from fresh ones.

// journalPath returns a fresh journal location.
func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.jsonl")
}

// TestJournalResumePrimesCompletedCells: run a small campaign with a journal,
// then resume it in a fresh Runner — every cell is served from the journal
// and the results match the originals byte for byte.
func TestJournalResumePrimesCompletedCells(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Options{
		{Protocol: Baseline, Scale: testScale},
		{Protocol: FSDetect, Scale: testScale},
	}
	r1 := NewRunner(1)
	r1.SetJournal(j)
	var ref []*Result
	for _, opt := range opts {
		res, err := r1.Run("RC", opt)
		if err != nil {
			t.Fatalf("campaign cell failed: %v", err)
		}
		ref = append(ref, res)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(1)
	primed, err := r2.ResumeJournal(path)
	if err != nil {
		t.Fatalf("ResumeJournal: %v", err)
	}
	if primed != len(opts) {
		t.Fatalf("primed %d cells, want %d", primed, len(opts))
	}
	for i, opt := range opts {
		res, err := r2.Run("RC", opt)
		if err != nil {
			t.Fatalf("resumed cell failed: %v", err)
		}
		requireByteIdentical(t, ref[i], res)
		if res.Energy != ref[i].Energy {
			t.Errorf("energy: resumed %v, original %v", res.Energy, ref[i].Energy)
		}
		if res.GroundTruth == nil {
			t.Error("resumed cell lost its ground truth")
		}
	}
	r2.Wait()
	rep := r2.Report()
	if rep.Executed != 0 {
		t.Fatalf("resumed campaign executed %d cells, want 0 (all primed)", rep.Executed)
	}
	if rep.Primed != len(opts) {
		t.Fatalf("Report.Primed = %d, want %d", rep.Primed, len(opts))
	}
}

// TestJournalRecordsFailures: a cell that exhausts its retries leaves "fail"
// (and per-attempt "attempt") records carrying the cell, seed and error, and
// is NOT primed on resume — it reruns.
func TestJournalRecordsFailures(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(1)
	r.SetJournal(j)
	r.SetSupervision(0, 1, time.Microsecond)
	if _, err := r.Run("NOPE", Options{}); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
	r.Wait()
	j.Close()

	entries, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var attempts, fails int
	for _, e := range entries {
		switch e.Status {
		case JournalAttempt:
			attempts++
		case JournalFail:
			fails++
			if e.Bench != "NOPE" || e.Seed == 0 || e.Error == "" {
				t.Errorf("fail record incomplete: %+v", e)
			}
		case JournalOK:
			t.Errorf("unexpected ok record for a failing campaign: %+v", e)
		}
	}
	if attempts != 1 || fails != 1 {
		t.Fatalf("journal has %d attempt / %d fail records, want 1/1", attempts, fails)
	}

	r2 := NewRunner(1)
	primed, err := r2.ResumeJournal(path)
	if err != nil || primed != 0 {
		t.Fatalf("failed cells must not prime: primed=%d err=%v", primed, err)
	}
}

// TestJournalTruncationTolerant: a torn final line (the record being written
// when the process died) is skipped; every complete record loads.
func TestJournalTruncationTolerant(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.record(JournalEntry{Status: JournalOK, Bench: "RC", Seed: 7, Result: &ResultWire{Benchmark: "RC"}})
	j.record(JournalEntry{Status: JournalFail, Bench: "HG", Seed: 9, Error: "boom"})
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"status":"ok","bench":"LU","result":{"cyc`) // torn mid-record
	f.Close()

	entries, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("LoadJournal on a torn file: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want the 2 complete ones", len(entries))
	}
	if entries[0].Bench != "RC" || entries[1].Bench != "HG" {
		t.Fatalf("entries = %+v", entries)
	}
}

// TestLoadJournalMissing: a missing journal is an empty campaign.
func TestLoadJournalMissing(t *testing.T) {
	entries, err := LoadJournal(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || entries != nil {
		t.Fatalf("missing journal: entries=%v err=%v, want nil/nil", entries, err)
	}
}

// TestJournalSkipsAttachmentCells: cells carrying live attachments cannot be
// reconstructed from JSON, so they are never journaled (and always rerun).
func TestJournalSkipsAttachmentCells(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(1)
	r.SetJournal(j)
	rec := forensics.New()
	if _, err := r.Run("RC", Options{Protocol: FSDetect, Scale: testScale, Forensics: rec}); err != nil {
		t.Fatalf("forensics cell failed: %v", err)
	}
	r.Wait()
	j.Close()
	entries, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("attachment cell was journaled: %+v", entries)
	}
}

// TestJournalResumeSkipsUnknownBench: records for benchmarks that no longer
// exist are skipped instead of failing the resume.
func TestJournalResumeSkipsUnknownBench(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.record(JournalEntry{Status: JournalOK, Bench: "GONE", Result: &ResultWire{Benchmark: "GONE"}})
	j.Close()
	r := NewRunner(1)
	primed, err := r.ResumeJournal(path)
	if err != nil || primed != 0 {
		t.Fatalf("unknown bench: primed=%d err=%v, want 0/nil", primed, err)
	}
}

// TestJournalSampledResume: a sampled cell's estimate report survives the
// journal round-trip and re-registers in SampledCells.
func TestJournalSampledResume(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Protocol: FSDetect, Scale: testScale, Sample: "1k:3k"}
	r1 := NewRunner(1)
	r1.SetJournal(j)
	ref, err := r1.Run("RC", opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Sampled == nil {
		t.Fatal("expected a sampled run")
	}
	j.Close()

	r2 := NewRunner(1)
	if primed, err := r2.ResumeJournal(path); err != nil || primed != 1 {
		t.Fatalf("primed=%d err=%v", primed, err)
	}
	got, err := r2.Run("RC", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Sampled, got.Sampled) {
		t.Errorf("sampled report changed over the journal round-trip:\nref %+v\ngot %+v", ref.Sampled, got.Sampled)
	}
	if cells := r2.SampledCells(); len(cells) != 1 {
		t.Fatalf("SampledCells after resume = %d, want 1", len(cells))
	}
}
