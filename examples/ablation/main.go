// Ablation: what each design ingredient of FSDetect/FSLite buys, measured on
// an adversarial phased workload (the paper's §VI scenarios).
//
// The uPH microbenchmark initializes all slots from one thread (a short
// write-write true-sharing episode) before a long falsely shared phase —
// without the periodic metadata reset, the stale TS bit would block repair
// forever. The sweep also shows the threshold trade-off and the coarse-grain
// and reader-metadata SAM optimizations.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"fscoherence"
)

func main() {
	base, err := fscoherence.Run("uPH", fscoherence.Options{Protocol: fscoherence.Baseline})
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		label string
		opt   fscoherence.Options
	}{
		{"FSLite defaults (tauP=16)", fscoherence.Options{Protocol: fscoherence.FSLite}},
		{"tauP=4 (aggressive)", fscoherence.Options{Protocol: fscoherence.FSLite, TauP: 4}},
		{"tauP=64 (conservative)", fscoherence.Options{Protocol: fscoherence.FSLite, TauP: 64}},
		{"grain=4 bytes", fscoherence.Options{Protocol: fscoherence.FSLite, Granularity: 4}},
		{"reader-opt SAM", fscoherence.Options{Protocol: fscoherence.FSLite, ReaderOpt: true}},
		{"tiny SAM (16 entries)", fscoherence.Options{Protocol: fscoherence.FSLite, SAMEntries: 16}},
	}

	fmt.Printf("phased init-then-false-sharing workload, baseline %d cycles\n\n", base.Cycles)
	fmt.Printf("%-28s %8s %8s %12s %12s\n", "CONFIG", "SPEEDUP", "PRIVAT.", "TERMINATIONS", "MD RESETS")
	for _, c := range configs {
		r, err := fscoherence.Run("uPH", c.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %7.2fx %8d %12d %12d\n",
			c.label, r.Speedup(base),
			r.Stats.Get("fs.privatizations"),
			r.Stats.Get("fs.terminations"),
			r.Stats.Get("fs.metadata_resets"))
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - every configuration recovers the phased block (metadata reset, §VI);")
	fmt.Println("  - a lower threshold privatizes sooner but reacts to noise;")
	fmt.Println("  - coarse grains and the reader-opt SAM keep the speedup at a")
	fmt.Println("    fraction of the metadata cost (Table II area).")
}
