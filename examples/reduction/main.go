// Reduction: the §VII "utility beyond false sharing" extension.
//
// A parallel histogram/accumulator where EVERY thread adds into the SAME
// words is the worst case for an invalidation-based protocol: each update
// ping-pongs the line. Declaring the words a *reduction region* lets FSLite
// privatize the line even though the writers overlap: each core accumulates
// into its private copy, and the LLC controller merges the per-core deltas
// when the episode ends — turning O(updates) coherence transactions into
// O(episodes) merges while preserving exact sums.
//
//	go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"fscoherence"
)

func main() {
	base, err := fscoherence.Run("uRED", fscoherence.Options{Protocol: fscoherence.Baseline})
	if err != nil {
		log.Fatal(err)
	}
	fsl, err := fscoherence.Run("uRED", fscoherence.Options{Protocol: fscoherence.FSLite, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	if len(fsl.Violations) > 0 {
		log.Fatalf("sums diverged: %s", fsl.Violations[0])
	}

	fmt.Println("parallel reduction: 4 threads accumulate into the same 4 words")
	fmt.Printf("  %-26s %10d cycles  %8d coherence msgs\n", "baseline MESI (ping-pong)", base.Cycles, base.Stats.Get("net.messages"))
	fmt.Printf("  %-26s %10d cycles  %8d coherence msgs\n", "FSLite + reduction region", fsl.Cycles, fsl.Stats.Get("net.messages"))
	fmt.Printf("\n%.2fx faster with exact sums (verified against the golden memory):\n", fsl.Speedup(base))
	fmt.Printf("  %d privatized episode(s), %d delta-merge termination(s)\n",
		fsl.Stats.Get("fs.privatizations"), fsl.Stats.Get("fs.terminations"))
	fmt.Println("\nThe consumer thread's reads force the merge: its byte checks conflict")
	fmt.Println("with the recorded reduction writers, the directory collects every")
	fmt.Println("private copy and sums (copy - base) into the LLC line (§VII).")
}
