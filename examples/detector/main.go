// Detector: use FSDetect as a pure diagnostics tool across a set of
// workloads, the way a performance engineer would triage a suite — who has
// harmful false sharing, on which lines, involving which cores — at a
// measured overhead of well under 1%.
//
//	go run ./examples/detector
package main

import (
	"fmt"
	"log"
)

import "fscoherence"

func main() {
	fmt.Println("FSDetect triage across the benchmark suite")
	fmt.Printf("%-5s %-14s %10s %8s  %s\n", "APP", "SUITE", "OVERHEAD", "LINES", "REPORT")
	for _, b := range fscoherence.Benchmarks() {
		if b.Suite == "micro" {
			continue
		}
		base, err := fscoherence.Run(b.Name, fscoherence.Options{Protocol: fscoherence.Baseline, Scale: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		det, err := fscoherence.Run(b.Name, fscoherence.Options{Protocol: fscoherence.FSDetect, Scale: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		overhead := float64(det.Cycles)/float64(base.Cycles) - 1
		report := "clean"
		if n := len(det.Detections); n > 0 {
			d := det.Detections[0]
			report = fmt.Sprintf("%v writers=%v episodes=%d", d.Addr, d.Writers, d.Episodes)
			if n > 1 {
				report += fmt.Sprintf(" (+%d more lines)", n-1)
			}
		}
		fmt.Printf("%-5s %-14s %9.2f%% %8d  %s\n",
			b.Name, b.Suite, 100*overhead, len(det.Detections), report)
		for _, c := range det.Contended {
			fmt.Printf("%-5s %-14s %10s %8s  contended (true sharing): %v cores=%v\n",
				"", "", "", "", c.Addr, append(c.Writers, c.Readers...))
		}
	}
	fmt.Println("\nApplications reported clean have only true sharing (or none):")
	fmt.Println("the TS bit suppresses both reporting and repair for those lines;")
	fmt.Println("heavily contended truly-shared lines (lock words) are listed")
	fmt.Println("separately — the §VII contention-detection extension.")
}
