// Quickstart: run one falsely-sharing workload under the three protocols and
// print what FSDetect finds and what FSLite wins.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fscoherence"
)

func main() {
	// RC (Reference-Count) is the paper's canonical severe case: four
	// threads hammer adjacent per-thread counters in one cache line.
	base, err := fscoherence.Run("RC", fscoherence.Options{Protocol: fscoherence.Baseline})
	if err != nil {
		log.Fatal(err)
	}
	det, err := fscoherence.Run("RC", fscoherence.Options{Protocol: fscoherence.FSDetect})
	if err != nil {
		log.Fatal(err)
	}
	fsl, err := fscoherence.Run("RC", fscoherence.Options{Protocol: fscoherence.FSLite})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Reference-Count under three coherence protocols:")
	fmt.Printf("  %-9s %10d cycles, %5.1f%% L1D miss\n", "Baseline", base.Cycles, 100*base.MissFraction)
	fmt.Printf("  %-9s %10d cycles (detection overhead %.1f%%)\n",
		"FSDetect", det.Cycles, 100*(float64(det.Cycles)/float64(base.Cycles)-1))
	fmt.Printf("  %-9s %10d cycles -> %.2fx speedup, %.0f%% energy\n",
		"FSLite", fsl.Cycles, fsl.Speedup(base), 100*fsl.NormalizedEnergy(base))

	fmt.Println("\nFSDetect's report of harmful false sharing:")
	for _, d := range det.Detections {
		fmt.Printf("  line %v: writers %v, readers %v (first flagged at cycle %d)\n",
			d.Addr, d.Writers, d.Readers, d.Cycle)
	}

	fmt.Printf("\nFSLite repaired it with %d privatization(s); invalidations fell from %d to %d.\n",
		fsl.Stats.Get("fs.privatizations"),
		base.Stats.Get("dir.invalidations")+base.Stats.Get("dir.interventions"),
		fsl.Stats.Get("dir.invalidations")+fsl.Stats.Get("dir.interventions"))
}
