// Refcount: the repair-vs-manual-fix story on the paper's hardest case.
//
// The RC workload's four reference counters share one cache line. Three ways
// to deal with it:
//
//  1. ship it as is (baseline MESI ping-pongs the line),
//  2. pad the counters in the source (the "manual fix" — but the changed
//     layout costs extra address arithmetic on every access), or
//  3. let FSLite privatize the line on the fly (no source, no recompile).
//
// This example reproduces the paper's §VIII-B finding that the transparent
// repair beats the manual fix (3.91x vs 3.06x in the paper).
//
//	go run ./examples/refcount
package main

import (
	"fmt"
	"log"

	"fscoherence"
)

func run(name string, opt fscoherence.Options) *fscoherence.Result {
	r, err := fscoherence.Run("RC", opt)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return r
}

func main() {
	base := run("baseline", fscoherence.Options{Protocol: fscoherence.Baseline})
	manual := run("manual", fscoherence.Options{Protocol: fscoherence.Baseline, Variant: fscoherence.LayoutPadded})
	fslite := run("fslite", fscoherence.Options{Protocol: fscoherence.FSLite})

	show := func(label string, r *fscoherence.Result) {
		fmt.Printf("%-22s %10d cycles  %6.2fx  %5.1f%% miss  %8d invs+interventions\n",
			label, r.Cycles, r.Speedup(base), 100*r.MissFraction,
			r.Stats.Get("dir.invalidations")+r.Stats.Get("dir.interventions"))
	}
	fmt.Println("Reference-Count: three ways to fix one cache line")
	show("unmodified (baseline)", base)
	show("manual padding", manual)
	show("FSLite (on-the-fly)", fslite)

	fmt.Printf("\nFSLite vs manual fix: %.2fx — the repair wins because it neither\n",
		float64(manual.Cycles)/float64(fslite.Cycles))
	fmt.Println("inflates the working set nor changes the data layout (no extra")
	fmt.Println("address arithmetic), while eliminating the same coherence misses.")
}
